// Package repro's root benchmarks regenerate every table and figure of
// the paper through the internal/bench experiment registry — one
// testing.B benchmark per artifact. Each iteration performs the full
// (scale-reduced) simulated experiment; reported ns/op is wall time of
// the simulation, not simulated time (the experiment tables carry the
// simulated results; run `go run ./cmd/casperbench -run <id>` to see
// them).
package repro

import (
	"testing"

	"repro/internal/bench"
)

// benchScale keeps each regeneration fast enough for -bench runs while
// preserving every experiment's qualitative shape.
const benchScale = 0.12

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		res := e.Run(bench.Options{Scale: benchScale, Seed: 42})
		if len(res.X) == 0 {
			b.Fatalf("%s: empty result", id)
		}
	}
}

// Table I.
func BenchmarkTable1Deployments(b *testing.B) { benchExperiment(b, "tab1") }

// Fig. 3: overhead analysis (Section IV-A).
func BenchmarkFig3aWindowAllocation(b *testing.B) { benchExperiment(b, "fig3a") }
func BenchmarkFig3bFencePSCW(b *testing.B)        { benchExperiment(b, "fig3b") }

// Fig. 4: asynchronous progress with two processes (Section IV-B-1).
func BenchmarkFig4aPassiveOverlap(b *testing.B) { benchExperiment(b, "fig4a") }
func BenchmarkFig4bFenceOverlap(b *testing.B)   { benchExperiment(b, "fig4b") }
func BenchmarkFig4cInterrupts(b *testing.B)     { benchExperiment(b, "fig4c") }

// Fig. 5: scalability across RMA implementations (Section IV-B-2).
func BenchmarkFig5aAccumulateCray(b *testing.B)   { benchExperiment(b, "fig5a") }
func BenchmarkFig5bPutCray(b *testing.B)          { benchExperiment(b, "fig5b") }
func BenchmarkFig5cAccumulateFusion(b *testing.B) { benchExperiment(b, "fig5c") }

// Fig. 6: static binding load balancing (Section IV-C-1/2).
func BenchmarkFig6aRankBindingProcs(b *testing.B) { benchExperiment(b, "fig6a") }
func BenchmarkFig6bRankBindingOps(b *testing.B)   { benchExperiment(b, "fig6b") }
func BenchmarkFig6cSegmentBinding(b *testing.B)   { benchExperiment(b, "fig6c") }

// Fig. 7: dynamic binding load balancing (Section IV-C-3).
func BenchmarkFig7aRandom(b *testing.B)       { benchExperiment(b, "fig7a") }
func BenchmarkFig7bOpCounting(b *testing.B)   { benchExperiment(b, "fig7b") }
func BenchmarkFig7cByteCounting(b *testing.B) { benchExperiment(b, "fig7c") }

// Fig. 8: NWChem coupled-cluster application (Section IV-D).
func BenchmarkFig8aCCSDW16(b *testing.B)        { benchExperiment(b, "fig8a") }
func BenchmarkFig8bCCSDC20(b *testing.B)        { benchExperiment(b, "fig8b") }
func BenchmarkFig8cTriplesPortion(b *testing.B) { benchExperiment(b, "fig8c") }

// Ablations of the design decisions catalogued in DESIGN.md.
func BenchmarkAbl1OverlappingWindows(b *testing.B) { benchExperiment(b, "abl1") }
func BenchmarkAbl2LazyLocks(b *testing.B)          { benchExperiment(b, "abl2") }
func BenchmarkAbl3SelfOps(b *testing.B)            { benchExperiment(b, "abl3") }
