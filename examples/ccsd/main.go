// Ccsd runs the NWChem coupled-cluster proxy (Section IV-D) under each
// of Table I's core deployments and prints the resulting iteration
// times — the Fig. 8 experiment as a standalone application.
//
// Run with:
//
//	go run ./examples/ccsd [-nodes 4] [-phase t] [-tile 24]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/tce"
)

func main() {
	nodes := flag.Int("nodes", 4, "compute nodes")
	tile := flag.Int("tile", 24, "tile dimension (doubles)")
	phaseName := flag.String("phase", "t", "workload phase: ccsd or t")
	flag.Parse()

	phase := tce.PhaseTriples
	if *phaseName == "ccsd" {
		phase = tce.PhaseCCSD
	}
	const coresPerNode = 24
	params := tce.Params{
		TilesPerDim: 4 * *nodes,
		TileSize:    *tile,
		Phase:       phase,
	}

	fmt.Printf("mini-CCSD %v phase: %d nodes x %d cores, %d tasks of %dx%d tiles\n\n",
		phase, *nodes, coresPerNode, params.TilesPerDim*params.TilesPerDim, *tile, *tile)
	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "deployment\tcompute cores\tasync cores\titeration\tvs original\n")

	var baseline sim.Duration
	for _, d := range tce.Deployments(coresPerNode) {
		elapsed := run(d, *nodes, params)
		if baseline == 0 {
			baseline = elapsed
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%.2fx\n",
			d.Name, d.UserCores, coresPerNode-d.UserCores, elapsed,
			float64(baseline)/float64(elapsed))
	}
	tw.Flush()
}

func run(d tce.Deployment, nodes int, p tce.Params) sim.Duration {
	cfg := mpi.Config{
		Machine:              cluster.Machine{Nodes: nodes, CoresPerNode: 24, NUMAPerNode: 2},
		N:                    nodes * d.PPN,
		PPN:                  d.PPN,
		Net:                  netmodel.CrayXC30(),
		Seed:                 1,
		Progress:             d.Progress,
		ThreadOversubscribed: d.Oversub,
	}
	var maxEl sim.Duration
	_, err := mpi.Run(cfg, func(r *mpi.Rank) {
		if d.Ghosts > 0 {
			cp, ghost := core.Init(r, core.Config{NumGhosts: d.Ghosts})
			if ghost {
				return
			}
			res := tce.Run(cp, p)
			if res.Elapsed > maxEl {
				maxEl = res.Elapsed
			}
			cp.Finalize()
		} else {
			res := tce.Run(r, p)
			if res.Elapsed > maxEl {
				maxEl = res.Elapsed
			}
		}
	})
	if err != nil {
		panic(err)
	}
	return maxEl
}
