// Quickstart: launch a simulated 2-node cluster, deploy Casper with one
// ghost process per node, and watch an accumulate to a busy target
// complete asynchronously — the paper's headline behaviour, in ~60
// lines of application code. A third run crashes the sequencer ghost
// mid-epoch to show the recovery machinery riding along.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// workload is ordinary MPI RMA application code, written against
// mpi.Env. It never mentions Casper: the same function runs over plain
// MPI or over Casper, exactly like a PMPI-intercepted binary.
func workload(env mpi.Env, report func(string, sim.Duration)) {
	comm := env.CommWorld()
	win, buf := env.WinAllocate(comm, 64, nil)
	comm.Barrier()

	switch env.Rank() {
	case 0:
		// Origin: accumulate into rank 1 while rank 1 is busy.
		start := env.Now()
		win.LockAll(mpi.AssertNone)
		win.Accumulate(mpi.PutFloat64s([]float64{42}), 1, 0,
			mpi.Scalar(mpi.Float64), mpi.OpSum)
		win.UnlockAll()
		report("origin epoch", env.Now().Sub(start))
	case 1:
		// Target: compute for 500us without calling MPI.
		env.Compute(500 * sim.Microsecond)
	}
	comm.Barrier()
	if env.Rank() == 1 {
		fmt.Printf("  target memory after epoch: %v\n", mpi.GetFloat64s(buf)[0])
	}
}

func run(name string, ghosts int, plan *fault.Plan) {
	fmt.Printf("%s:\n", name)
	ppn := 2
	n := 2 * ppn // 2 nodes
	if ghosts == 0 {
		ppn, n = 1, 2
	}
	cfg := mpi.Config{
		Machine: cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2},
		N:       n,
		PPN:     ppn,
		Net:     netmodel.CrayXC30(),
		Seed:    1,
	}
	cfg.Fault = plan
	report := func(what string, d sim.Duration) {
		fmt.Printf("  %s: %v\n", what, d)
	}
	w, err := mpi.Run(cfg, func(r *mpi.Rank) {
		if ghosts > 0 {
			p, ghost := core.Init(r, core.Config{NumGhosts: ghosts})
			if ghost {
				return
			}
			workload(p, report)
			p.Finalize()
		} else {
			workload(r, report)
		}
	})
	if err != nil {
		panic(err)
	}
	if plan != nil {
		// One-line recovery summary whenever a fault plan is active.
		s := w.Summary()
		fmt.Printf("  recovery: ghosts_failed=%d suspects=%d successions=%d locks_reclaimed=%d rebinds=%d reroutes=%d\n",
			s.RanksFailed, s.Suspects, s.Successions, s.LocksReclaimed, s.Rebinds, s.Reroutes)
	}
}

func main() {
	fmt.Println("Casper quickstart: accumulate to a target that computes for 500us")
	fmt.Println()
	run("Plain MPI (no asynchronous progress: origin stalls)", 0, nil)
	fmt.Println()
	run("Casper (1 ghost per node: ghost services the accumulate)", 1, nil)
	fmt.Println()

	// Crash the sequencer — the lowest ghost rank, which orders every
	// deployment command — 100us into the run, while the target is
	// still computing. The next-lowest surviving ghost takes over, the
	// dead ghost's locks are reclaimed, and the target memory comes out
	// identical to the fault-free Casper run above.
	ghosts, err := core.GhostRanks(
		cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2}, 4, 2, 1)
	if err != nil {
		panic(err)
	}
	run("Casper under fire (sequencer ghost crashes at 100us)", 1, &fault.Plan{
		Seed:    1,
		Crashes: []fault.Crash{{Rank: ghosts[0][0], At: sim.Time(100 * sim.Microsecond)}},
	})
}
