// Gups runs the HPC Challenge RandomAccess benchmark (XOR-accumulate
// updates to random words of a distributed table) over plain MPI and
// over Casper with several ghost counts, verifying the final table
// exactly against a replay of the update streams. Random accumulates
// are the hardest case for multi-ghost correctness: every update must
// stay atomic and ordered per element.
//
// Run with:
//
//	go run ./examples/gups [-words 256] [-updates 2000] [-ranks 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gups"
	"repro/internal/mpi"
	"repro/internal/netmodel"
)

func main() {
	words := flag.Int("words", 256, "table words per rank")
	updates := flag.Int("updates", 2000, "updates per rank")
	ranks := flag.Int("ranks", 8, "user processes")
	flag.Parse()

	p := gups.Params{WordsPerRank: *words, UpdatesPerRank: *updates, Seed: 17}
	fmt.Printf("RandomAccess: %d ranks x %d updates into %d words\n\n",
		*ranks, *updates, *words**ranks)
	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "configuration\telapsed\tMUPS\tverified\n")
	for _, ghosts := range []int{0, 1, 2, 4} {
		name := "plain MPI"
		if ghosts > 0 {
			name = fmt.Sprintf("casper %dg", ghosts)
		}
		res, ok := run(ghosts, *ranks, p)
		fmt.Fprintf(tw, "%s\t%v\t%.2f\t%v\n", name, res.Elapsed, res.GUPS*1e3, ok)
	}
	tw.Flush()
}

func run(ghosts, ranks int, p gups.Params) (gups.Result, bool) {
	var res gups.Result
	ok := false
	ppn := ranks/2 + ghosts
	cfg := mpi.Config{
		Machine: cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2},
		N:       2 * ppn, PPN: ppn, Net: netmodel.CrayXC30(), Seed: 6,
	}
	var err error
	if ghosts > 0 {
		_, err = mpi.Run(cfg, func(r *mpi.Rank) {
			cp, ghost := core.Init(r, core.Config{NumGhosts: ghosts})
			if ghost {
				return
			}
			out, good := gups.RunVerified(cp, p)
			if cp.Rank() == 0 {
				res, ok = out, good
			}
			cp.Finalize()
		})
	} else {
		plain := cfg
		plain.N, plain.PPN = ranks, ranks/2
		_, err = mpi.Run(plain, func(r *mpi.Rank) {
			out, good := gups.RunVerified(r, p)
			if r.Rank() == 0 {
				res, ok = out, good
			}
		})
	}
	if err != nil {
		panic(err)
	}
	return res, ok
}
