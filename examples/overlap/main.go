// Overlap compares all four asynchronous-progress strategies of the
// paper on the communication/computation overlap microbenchmark of
// Section IV-B-1: an origin issues accumulates to a target that is busy
// computing, and we measure how much of the target's compute time leaks
// into the origin's epoch.
//
// Run with:
//
//	go run ./examples/overlap [-ops 8] [-wait 200]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

type strategy struct {
	name    string
	net     *netmodel.Params
	prog    mpi.ProgressMode
	oversub bool
	ghosts  int
}

func main() {
	ops := flag.Int("ops", 8, "accumulates per epoch")
	wait := flag.Int("wait", 200, "target compute time (us)")
	flag.Parse()

	strategies := []strategy{
		{name: "Original MPI", net: netmodel.CrayXC30(), prog: mpi.ProgressNone},
		{name: "Thread (dedicated)", net: netmodel.CrayXC30(), prog: mpi.ProgressThread},
		{name: "Thread (oversubscribed)", net: netmodel.CrayXC30(), prog: mpi.ProgressThread, oversub: true},
		{name: "Interrupt (DMAPP)", net: netmodel.CrayXC30DMAPP(), prog: mpi.ProgressInterrupt},
		{name: "Casper (1 ghost)", net: netmodel.CrayXC30(), prog: mpi.ProgressNone, ghosts: 1},
		{name: "Casper (2 ghosts)", net: netmodel.CrayXC30(), prog: mpi.ProgressNone, ghosts: 2},
	}

	fmt.Printf("origin: lockall, %d accumulates, unlockall;  target: %dus compute\n\n",
		*ops, *wait)
	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "strategy\torigin epoch\ttarget compute\tinterrupts\tprogress stall\tserviced by\n")
	for _, s := range strategies {
		epoch, compute, interrupts, stall, by := measure(s, *ops, sim.Microseconds(float64(*wait)))
		fmt.Fprintf(tw, "%s\t%v\t%v\t%d\t%v\t%s\n", s.name, epoch, compute, interrupts, stall, by)
	}
	tw.Flush()
	fmt.Println("\n(progress stall = total time accumulates waited between NIC arrival and service)")
}

func measure(s strategy, ops int, wait sim.Duration) (epoch, compute sim.Duration, interrupts int64, stall sim.Duration, servicedBy string) {
	body := func(env mpi.Env) {
		c := env.CommWorld()
		win, _ := env.WinAllocate(c, 64, nil)
		c.Barrier()
		if env.Rank() == 0 {
			start := env.Now()
			win.LockAll(mpi.AssertNone)
			one := mpi.PutFloat64s([]float64{1})
			for i := 0; i < ops; i++ {
				win.Accumulate(one, 1, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
			}
			win.UnlockAll()
			epoch = env.Now().Sub(start)
		} else if env.Rank() == 1 {
			start := env.Now()
			env.Compute(wait)
			compute = env.Now().Sub(start)
		}
		c.Barrier()
	}
	ppn := 1 + s.ghosts
	cfg := mpi.Config{
		Machine:              cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2},
		N:                    2 * ppn,
		PPN:                  ppn,
		Net:                  s.net,
		Seed:                 1,
		Progress:             s.prog,
		ThreadOversubscribed: s.oversub,
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		panic(err)
	}
	tr := trace.New()
	w.SetTracer(tr)
	w.Launch(func(r *mpi.Rank) {
		if s.ghosts > 0 {
			p, ghost := core.Init(r, core.Config{NumGhosts: s.ghosts})
			if ghost {
				return
			}
			body(p)
			p.Finalize()
		} else {
			body(r)
		}
	})
	if err := w.Run(); err != nil {
		panic(err)
	}
	for i := 0; i < w.Config().N; i++ {
		interrupts += w.RankByID(i).Stats().Interrupts
	}
	stall = tr.TotalDelay()
	busiest, ams := w.BusiestRank()
	servicedBy = fmt.Sprintf("rank %d (%d AMs)", busiest, ams)
	return epoch, compute, interrupts, stall, servicedBy
}
