// Matmul runs the Global-Arrays distributed matrix multiply (C = A*B,
// owner-computes with one-sided panel Gets) under plain MPI and under
// Casper, verifying the product and showing where asynchronous progress
// pays: every panel Get targets a rank that is mostly busy in its own
// local dgemm.
//
// Run with:
//
//	go run ./examples/matmul [-n 96] [-panel 24] [-ranks 8]
package main

import (
	"flag"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

func main() {
	n := flag.Int("n", 96, "matrix dimension")
	panel := flag.Int("panel", 24, "contraction panel width")
	ranks := flag.Int("ranks", 8, "user processes")
	flag.Parse()

	fa := func(i, j int) float64 { return float64((i+j)%7) - 3 }
	fb := func(i, j int) float64 { return float64((2*i+j)%5) - 2 }

	fmt.Printf("C = A*B, %dx%d doubles, panel %d, %d ranks (GA over RMA)\n\n",
		*n, *n, *panel, *ranks)
	for _, mode := range []string{"plain MPI", "casper"} {
		elapsed, checksum := run(mode == "casper", *ranks, *n, *panel, fa, fb)
		fmt.Printf("%-10s elapsed %-12v checksum %.0f\n", mode, elapsed, checksum)
	}
}

func run(casper bool, ranks, n, panel int,
	fa, fb func(i, j int) float64) (sim.Duration, float64) {
	var maxEl sim.Duration
	var checksum float64
	body := func(env mpi.Env) {
		a := ga.MustCreate(env, "A", n, n)
		b := ga.MustCreate(env, "B", n, n)
		c := ga.MustCreate(env, "C", n, n)
		a.FillPattern(fa)
		b.FillPattern(fb)
		c.Fill(0)
		env.CommWorld().Barrier()
		start := env.Now()
		ga.MustMultiply(a, b, c, panel, 0.5)
		if el := env.Now().Sub(start); el > maxEl {
			maxEl = el
		}
		if env.Rank() == 0 {
			out := make([]float64, n*n)
			c.Get(0, n, 0, n, out)
			for _, v := range out {
				checksum += math.Abs(v)
			}
		}
		c.Sync()
		c.Destroy()
		b.Destroy()
		a.Destroy()
	}
	ghosts := 2
	ppn := ranks/2 + ghosts
	cfg := mpi.Config{
		Machine: cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2},
		N:       2 * ppn, PPN: ppn, Net: netmodel.CrayXC30(), Seed: 4,
	}
	var err error
	if casper {
		_, err = mpi.Run(cfg, func(r *mpi.Rank) {
			p, ghost := core.Init(r, core.Config{NumGhosts: ghosts})
			if ghost {
				return
			}
			body(p)
			p.Finalize()
		})
	} else {
		plain := cfg
		plain.N = ranks
		plain.PPN = ranks / 2
		_, err = mpi.Run(plain, func(r *mpi.Rank) { body(r) })
	}
	if err != nil {
		panic(err)
	}
	return maxEl, checksum
}
