// Stencil runs the 2-D Jacobi heat solver with RMA-fence halo exchange
// over plain MPI and over Casper, verifying both against the serial
// reference and comparing times. The bulk-synchronous fence pattern is
// Casper's worst case — every rank is already at the fence when the
// halo PUTs arrive, so there is nothing for ghosts to overlap, and the
// fence-to-lockall translation (paper Section III-C-1, Fig. 3(b)) shows
// as a small constant overhead per sweep. Results remain bit-identical
// to the serial solver either way.
//
// Run with:
//
//	go run ./examples/stencil [-n 66] [-iters 40] [-ranks 8]
package main

import (
	"flag"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stencil"
)

func main() {
	n := flag.Int("n", 66, "grid dimension (interior must divide ranks)")
	iters := flag.Int("iters", 40, "Jacobi sweeps")
	ranks := flag.Int("ranks", 8, "user processes")
	flag.Parse()

	p := stencil.Params{N: *n, Iterations: *iters, NsPerCell: 40}
	if err := p.Validate(*ranks); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("2-D Jacobi %dx%d, %d sweeps, %d ranks, halo exchange via MPI_WIN_FENCE\n\n",
		*n, *n, *iters, *ranks)

	serial := stencil.Serial(p)
	for _, mode := range []string{"plain MPI", "casper"} {
		elapsed, maxErr := run(mode == "casper", *ranks, p, serial)
		fmt.Printf("%-12s elapsed %-12v max |error| vs serial: %.2e\n", mode, elapsed, maxErr)
	}
}

func run(casper bool, ranks int, p stencil.Params, serial []float64) (sim.Duration, float64) {
	var maxEl sim.Duration
	maxErr := 0.0
	body := func(env mpi.Env) {
		res := stencil.Run(env, p)
		if res.Elapsed > maxEl {
			maxEl = res.Elapsed
		}
		// Compare this rank's rows against the serial solution.
		base := (1 + env.Rank()*res.Rows) * p.N
		for i, v := range res.Local {
			if d := math.Abs(v - serial[base+i]); d > maxErr {
				maxErr = d
			}
		}
	}
	var cfg mpi.Config
	if casper {
		const ghosts = 2
		ppn := ranks/2 + ghosts
		cfg = mpi.Config{
			Machine: cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2},
			N:       2 * ppn, PPN: ppn, Net: netmodel.CrayXC30(), Seed: 3,
		}
		_, err := mpi.Run(cfg, func(r *mpi.Rank) {
			cp, ghost := core.Init(r, core.Config{NumGhosts: ghosts})
			if ghost {
				return
			}
			body(cp)
			cp.Finalize()
		})
		if err != nil {
			panic(err)
		}
	} else {
		ppn := ranks / 2
		cfg = mpi.Config{
			Machine: cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2},
			N:       ranks, PPN: ppn, Net: netmodel.CrayXC30(), Seed: 3,
		}
		_, err := mpi.Run(cfg, func(r *mpi.Rank) { body(r) })
		if err != nil {
			panic(err)
		}
	}
	return maxEl, maxErr
}
