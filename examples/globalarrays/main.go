// Globalarrays demonstrates the Global-Arrays-like toolkit over Casper:
// a block-distributed matrix updated with one-sided patch operations and
// a dynamic task counter, the data-movement pattern NWChem uses
// (Section IV-D).
//
// Run with:
//
//	go run ./examples/globalarrays [-n 64] [-ghosts 2]
package main

import (
	"flag"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/mpi"
	"repro/internal/netmodel"
)

func main() {
	n := flag.Int("n", 64, "matrix dimension")
	ghosts := flag.Int("ghosts", 2, "ghost processes per node")
	flag.Parse()

	const usersPerNode = 6
	ppn := usersPerNode + *ghosts
	cfg := mpi.Config{
		Machine:  cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2},
		N:        2 * ppn,
		PPN:      ppn,
		Net:      netmodel.CrayXC30(),
		Seed:     1,
		Validate: true,
	}

	dim := *n
	w, err := mpi.Run(cfg, func(r *mpi.Rank) {
		p, ghost := core.Init(r, core.Config{NumGhosts: *ghosts})
		if ghost {
			return
		}
		env := mpi.Env(p)
		a := ga.MustCreate(env, "demo", dim, dim)
		a.Fill(0)

		// Dynamically claimed tasks: each writes a checkerboard patch.
		counter := ga.NewCounter(env)
		const patch = 8
		tiles := dim / patch
		patchBuf := make([]float64, patch*patch)
		tasks := 0
		for {
			t := counter.Next()
			if t >= int64(tiles*tiles) {
				break
			}
			i, j := int(t)/tiles, int(t)%tiles
			for k := range patchBuf {
				patchBuf[k] = float64(t + 1)
			}
			a.Put(i*patch, (i+1)*patch, j*patch, (j+1)*patch, patchBuf)
			tasks++
		}
		a.Sync()

		// Every rank checks a random remote patch.
		got := make([]float64, patch*patch)
		a.Get(0, patch, 0, patch, got)
		if got[0] != 1 {
			panic(fmt.Sprintf("rank %d read %v, want 1", env.Rank(), got[0]))
		}
		a.Sync()

		if env.Rank() == 0 {
			full := make([]float64, dim*dim)
			a.Get(0, dim, 0, dim, full)
			var sum float64
			for _, v := range full {
				sum += v
			}
			want := 0.0
			for t := 1; t <= tiles*tiles; t++ {
				want += float64(t) * patch * patch
			}
			fmt.Printf("global array %dx%d over %d user ranks (+%d ghosts/node)\n",
				dim, dim, env.Size(), *ghosts)
			fmt.Printf("checksum: %.0f (want %.0f)\n", sum, want)
		}
		fmt.Printf("rank %d completed %d tasks\n", env.Rank(), tasks)

		counter.Destroy()
		a.Destroy()
		p.Finalize()
	})
	if err != nil {
		panic(err)
	}
	if v := w.Validator(); v != nil && !v.Ok() {
		panic(fmt.Sprintf("validator: %v", v.Violations()))
	}
	fmt.Println("validator: no atomicity/ordering/lock violations")
}
