// Package osu implements OSU-microbenchmark-style one-sided latency,
// bandwidth, and message-rate tests over the simulated MPI runtime —
// the standard kit for characterizing an RMA stack (and for checking
// that Casper's redirection does not distort the basic data paths).
package osu

import (
	"fmt"
	"strings"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Result is one row of a benchmark: a message size and its measurement.
type Result struct {
	Bytes   int
	Latency sim.Duration // per-operation (latency tests)
	MBps    float64      // bandwidth tests
	MsgRate float64      // messages per simulated second (bandwidth tests)
}

// Sizes returns the default power-of-two sweep [lo, hi].
func Sizes(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v *= 2 {
		out = append(out, v)
	}
	return out
}

// Latency measures blocking op latency (osu_put_latency /
// osu_get_latency / osu_acc_latency): rank 0 issues one operation of
// each size to rank 1 under a lock epoch and flushes, iters times;
// reported is the mean per-operation time. Collective over exactly two
// user ranks.
func Latency(env mpi.Env, kind mpi.OpKind, sizes []int, iters int) []Result {
	c := env.CommWorld()
	if c.Size() != 2 {
		panic(fmt.Sprintf("osu: latency needs 2 ranks, got %d", c.Size()))
	}
	maxSize := sizes[len(sizes)-1]
	win, _ := env.WinAllocate(c, maxSize, nil)
	defer win.Free()
	var out []Result
	for _, size := range sizes {
		c.Barrier()
		if env.Rank() == 0 {
			buf := make([]byte, size)
			dt := mpi.TypeOf(mpi.Byte, size)
			win.Lock(1, mpi.LockShared, mpi.AssertNone)
			// Warm the lock acquisition out of the measurement.
			issueOp(win, kind, buf, dt)
			win.Flush(1)
			start := env.Now()
			for i := 0; i < iters; i++ {
				issueOp(win, kind, buf, dt)
				win.Flush(1)
			}
			el := env.Now().Sub(start)
			win.Unlock(1)
			out = append(out, Result{Bytes: size, Latency: el / sim.Duration(iters)})
		}
		c.Barrier()
	}
	return out
}

// Bandwidth measures streaming throughput (osu_put_bw): rank 0 issues
// window bursts of back-to-back operations then one flush, iters times.
func Bandwidth(env mpi.Env, kind mpi.OpKind, sizes []int, window, iters int) []Result {
	c := env.CommWorld()
	if c.Size() != 2 {
		panic(fmt.Sprintf("osu: bandwidth needs 2 ranks, got %d", c.Size()))
	}
	maxSize := sizes[len(sizes)-1]
	win, _ := env.WinAllocate(c, maxSize, nil)
	defer win.Free()
	var out []Result
	for _, size := range sizes {
		c.Barrier()
		if env.Rank() == 0 {
			buf := make([]byte, size)
			dt := mpi.TypeOf(mpi.Byte, size)
			win.Lock(1, mpi.LockShared, mpi.AssertNone)
			issueOp(win, kind, buf, dt)
			win.Flush(1)
			start := env.Now()
			for i := 0; i < iters; i++ {
				for j := 0; j < window; j++ {
					issueOp(win, kind, buf, dt)
				}
				win.Flush(1)
			}
			el := env.Now().Sub(start)
			win.Unlock(1)
			totalBytes := float64(size) * float64(window*iters)
			secs := el.Seconds()
			out = append(out, Result{
				Bytes:   size,
				MBps:    totalBytes / secs / 1e6,
				MsgRate: float64(window*iters) / secs,
			})
		}
		c.Barrier()
	}
	return out
}

func issueOp(win mpi.Window, kind mpi.OpKind, buf []byte, dt mpi.Datatype) {
	switch kind {
	case mpi.KindPut:
		win.Put(buf, 1, 0, dt)
	case mpi.KindGet:
		win.Get(buf, 1, 0, dt)
	case mpi.KindAcc:
		win.Accumulate(buf, 1, 0, dt, mpi.OpSum)
	default:
		panic(fmt.Sprintf("osu: unsupported op %v", kind))
	}
}

// RenderLatency formats latency rows.
func RenderLatency(name string, rows []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n%-12s %14s\n", name, "bytes", "latency")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %14v\n", r.Bytes, r.Latency)
	}
	return b.String()
}

// RenderBandwidth formats bandwidth rows.
func RenderBandwidth(name string, rows []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n%-12s %14s %14s\n", name, "bytes", "MB/s", "msg/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %14.1f %14.0f\n", r.Bytes, r.MBps, r.MsgRate)
	}
	return b.String()
}
