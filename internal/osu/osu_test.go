package osu

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

func osuConfig(net *netmodel.Params, ppn int) mpi.Config {
	return mpi.Config{
		Machine: cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2},
		N:       2 * ppn,
		PPN:     ppn,
		Net:     net,
		Seed:    2,
	}
}

func runPlain(t *testing.T, net *netmodel.Params, body func(env mpi.Env)) {
	t.Helper()
	if _, err := mpi.Run(osuConfig(net, 1), func(r *mpi.Rank) { body(r) }); err != nil {
		t.Fatal(err)
	}
}

func runCasper(t *testing.T, net *netmodel.Params, body func(env mpi.Env)) {
	t.Helper()
	_, err := mpi.Run(osuConfig(net, 2), func(r *mpi.Rank) {
		p, ghost := core.Init(r, core.Config{NumGhosts: 1})
		if ghost {
			return
		}
		body(p)
		p.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSizes(t *testing.T) {
	s := Sizes(8, 64)
	want := []int{8, 16, 32, 64}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sizes = %v", s)
		}
	}
}

func TestPutLatencyGrowsWithSize(t *testing.T) {
	var rows []Result
	runPlain(t, netmodel.CrayXC30(), func(env mpi.Env) {
		if r := Latency(env, mpi.KindPut, Sizes(8, 65536), 4); r != nil {
			rows = r
		}
	})
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Latency < rows[i-1].Latency {
			t.Fatalf("latency not monotone: %+v", rows)
		}
	}
	if rows[0].Latency <= 0 {
		t.Fatal("zero latency")
	}
}

func TestAccLatencyExceedsPutOnHardwarePlatform(t *testing.T) {
	measure := func(kind mpi.OpKind) sim.Duration {
		var lat sim.Duration
		runPlain(t, netmodel.CrayXC30DMAPP(), func(env mpi.Env) {
			if r := Latency(env, kind, []int{8}, 8); r != nil {
				lat = r[0].Latency
			}
		})
		return lat
	}
	put := measure(mpi.KindPut)
	acc := measure(mpi.KindAcc)
	if acc <= put {
		t.Fatalf("software acc (%v) should cost more than hardware put (%v)", acc, put)
	}
}

func TestBandwidthApproachesWire(t *testing.T) {
	var rows []Result
	runPlain(t, netmodel.CrayXC30(), func(env mpi.Env) {
		if r := Bandwidth(env, mpi.KindPut, Sizes(1024, 262144), 32, 2); r != nil {
			rows = r
		}
	})
	last := rows[len(rows)-1]
	// Wire model is 0.125 ns/B = 8000 MB/s; pipelined big puts should
	// reach a large fraction of it.
	if last.MBps < 2000 || last.MBps > 8200 {
		t.Fatalf("large-message bandwidth %v MB/s implausible for an 8 GB/s wire", last.MBps)
	}
	if rows[0].MBps >= last.MBps {
		t.Fatalf("bandwidth not growing with size: %+v", rows)
	}
	if last.MsgRate <= 0 {
		t.Fatal("no message rate")
	}
}

func TestCasperLatencyCloseToPlainForAcc(t *testing.T) {
	// With both sides inside MPI (latency test posture) Casper's ghost
	// adds only redirection overhead — within a small factor.
	var plain, casper sim.Duration
	runPlain(t, netmodel.CrayXC30(), func(env mpi.Env) {
		if r := Latency(env, mpi.KindAcc, []int{8}, 8); r != nil {
			plain = r[0].Latency
		}
	})
	runCasper(t, netmodel.CrayXC30(), func(env mpi.Env) {
		if r := Latency(env, mpi.KindAcc, []int{8}, 8); r != nil {
			casper = r[0].Latency
		}
	})
	if casper <= 0 || plain <= 0 {
		t.Fatal("missing measurements")
	}
	if ratio := float64(casper) / float64(plain); ratio > 1.5 {
		t.Fatalf("casper acc latency %.2fx plain (plain=%v casper=%v)", ratio, plain, casper)
	}
}

func TestGetLatency(t *testing.T) {
	var rows []Result
	runPlain(t, netmodel.CrayXC30(), func(env mpi.Env) {
		if r := Latency(env, mpi.KindGet, []int{8, 4096}, 4); r != nil {
			rows = r
		}
	})
	if len(rows) != 2 || rows[1].Latency <= rows[0].Latency {
		t.Fatalf("get latency rows: %+v", rows)
	}
}

func TestRenderers(t *testing.T) {
	rows := []Result{{Bytes: 8, Latency: 1000, MBps: 12.5, MsgRate: 100}}
	if s := RenderLatency("x", rows); !strings.Contains(s, "# x") || !strings.Contains(s, "8") {
		t.Fatalf("latency render: %s", s)
	}
	if s := RenderBandwidth("y", rows); !strings.Contains(s, "MB/s") || !strings.Contains(s, "12.5") {
		t.Fatalf("bw render: %s", s)
	}
}
