// Package trace collects per-operation service records from the
// simulated MPI runtime and aggregates them into stall and utilization
// profiles. It answers the question the paper's analysis keeps asking:
// where did
// target-side software RMA wait, and who did the work — the target
// process, a progress thread, an interrupt handler, or a Casper ghost?
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Service is one serviced RMA operation at a target.
type Service struct {
	Rank      int // servicing rank (world rank); -1 for NIC hardware
	Origin    int // issuing world rank
	Kind      string
	Bytes     int
	Arrived   sim.Time // NIC delivery
	Start     sim.Time // service start (after any progress stall)
	End       sim.Time // applied
	Interrupt bool
	Hardware  bool
}

// Delay returns how long the operation waited between arrival and
// service — the progress stall the paper's approaches compete to
// eliminate.
func (s Service) Delay() sim.Duration { return s.Start.Sub(s.Arrived) }

// Tracer accumulates Service records. The zero value is a disabled
// tracer; construct with New.
type Tracer struct {
	enabled  bool
	services []Service
	faults   []Fault
	labels   map[string]string
}

// New returns an enabled tracer.
func New() *Tracer { return &Tracer{enabled: true} }

// Enabled reports whether records are being kept.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// Reserve pre-sizes the service record buffer. Long traces append
// millions of records; reserving once avoids the doubling reallocations
// (and the copying) mid-run.
func (t *Tracer) Reserve(n int) {
	if !t.Enabled() || cap(t.services) >= n {
		return
	}
	grown := make([]Service, len(t.services), n)
	copy(grown, t.services)
	t.services = grown
}

// intern returns the canonical instance of a label. Producers that
// build label strings dynamically would otherwise leave one copy per
// retained record; deduplicating at record time keeps a trace's label
// footprint proportional to the number of distinct labels.
func (t *Tracer) intern(s string) string {
	if c, ok := t.labels[s]; ok {
		return c
	}
	if t.labels == nil {
		t.labels = make(map[string]string, 8)
	}
	t.labels[s] = s
	return s
}

// RecordService appends one record. Safe to call on a nil tracer.
func (t *Tracer) RecordService(s Service) {
	if !t.Enabled() {
		return
	}
	s.Kind = t.intern(s.Kind)
	t.services = append(t.services, s)
}

// Services returns all records in the order they completed service.
func (t *Tracer) Services() []Service {
	if t == nil {
		return nil
	}
	return t.services
}

// Fault is one fault-related event: an injected crash or stall, a
// suspicion or confirmed failure detection, a recovery action
// (sequencer succession, lock reclamation), a rerouted operation, or an
// abandoned one.
type Fault struct {
	Kind string // "crash", "stall", "suspect", "detect", "reclaim", "succession", "reroute", "abandon"
	Rank int    // world rank the event concerns
	Peer int    // counterpart world rank, or -1 when not applicable
	At   sim.Time
}

// RecordFault appends one fault record. Safe to call on a nil tracer.
func (t *Tracer) RecordFault(f Fault) {
	if !t.Enabled() {
		return
	}
	f.Kind = t.intern(f.Kind)
	t.faults = append(t.faults, f)
}

// Faults returns all fault records in event order.
func (t *Tracer) Faults() []Fault {
	if t == nil {
		return nil
	}
	return t.faults
}

// Profile aggregates records per servicing rank.
type Profile struct {
	Rank       int
	Services   int
	Bytes      int64
	Busy       sim.Duration // total service time
	Delay      sim.Duration // total arrival-to-service stall
	MaxDelay   sim.Duration
	Interrupts int
}

// Profiles returns per-rank aggregates sorted by rank; the hardware NIC
// appears as rank -1.
func (t *Tracer) Profiles() []Profile {
	if t == nil {
		return nil
	}
	byRank := map[int]*Profile{}
	for _, s := range t.services {
		p, ok := byRank[s.Rank]
		if !ok {
			p = &Profile{Rank: s.Rank}
			byRank[s.Rank] = p
		}
		p.Services++
		p.Bytes += int64(s.Bytes)
		p.Busy += s.End.Sub(s.Start)
		d := s.Delay()
		p.Delay += d
		if d > p.MaxDelay {
			p.MaxDelay = d
		}
		if s.Interrupt {
			p.Interrupts++
		}
	}
	out := make([]Profile, 0, len(byRank))
	for _, p := range byRank {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// TotalDelay sums the progress stall across all records — the headline
// "how much did operations wait for the target" number.
func (t *Tracer) TotalDelay() sim.Duration {
	var d sim.Duration
	for _, s := range t.Services() {
		d += s.Delay()
	}
	return d
}

// Render writes an aligned per-rank profile table.
func (t *Tracer) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %9s %12s %14s %14s %14s %6s\n",
		"rank", "services", "bytes", "busy", "stall", "max_stall", "intr")
	for _, p := range t.Profiles() {
		name := fmt.Sprintf("%d", p.Rank)
		if p.Rank == -1 {
			name = "NIC"
		}
		fmt.Fprintf(&b, "%6s %9d %12d %14v %14v %14v %6d\n",
			name, p.Services, p.Bytes, p.Busy, p.Delay, p.MaxDelay, p.Interrupts)
	}
	return b.String()
}
