package trace

import (
	"strings"
	"testing"
	"unsafe"

	"repro/internal/sim"
)

func svc(rank, origin int, arrived, start, end int64, intr, hw bool) Service {
	return Service{Rank: rank, Origin: origin, Kind: "ACC", Bytes: 8,
		Arrived: sim.Time(arrived), Start: sim.Time(start), End: sim.Time(end),
		Interrupt: intr, Hardware: hw}
}

func TestNilAndDisabledTracerSafe(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Error("nil tracer enabled")
	}
	nilT.RecordService(svc(0, 1, 0, 0, 1, false, false))
	if nilT.Services() != nil || nilT.Profiles() != nil || nilT.TotalDelay() != 0 {
		t.Error("nil tracer not inert")
	}
	var zero Tracer
	zero.RecordService(svc(0, 1, 0, 0, 1, false, false))
	if len(zero.Services()) != 0 {
		t.Error("zero-value tracer recorded")
	}
}

func TestDelayAndProfiles(t *testing.T) {
	tr := New()
	tr.RecordService(svc(5, 0, 100, 150, 170, false, false)) // 50 delay, 20 busy
	tr.RecordService(svc(5, 1, 200, 210, 240, true, false))  // 10 delay, 30 busy
	tr.RecordService(svc(7, 0, 0, 0, 5, false, false))
	tr.RecordService(svc(-1, 2, 9, 9, 9, false, true)) // NIC

	if got := tr.TotalDelay(); got != 60 {
		t.Fatalf("TotalDelay = %v", got)
	}
	ps := tr.Profiles()
	if len(ps) != 3 {
		t.Fatalf("%d profiles", len(ps))
	}
	if ps[0].Rank != -1 || ps[1].Rank != 5 || ps[2].Rank != 7 {
		t.Fatalf("profile order: %+v", ps)
	}
	p5 := ps[1]
	if p5.Services != 2 || p5.Busy != 50 || p5.Delay != 60 ||
		p5.MaxDelay != 50 || p5.Interrupts != 1 || p5.Bytes != 16 {
		t.Fatalf("rank5 profile: %+v", p5)
	}
	out := tr.Render()
	if !strings.Contains(out, "NIC") || !strings.Contains(out, "stall") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestServiceDelay(t *testing.T) {
	s := svc(0, 0, 10, 35, 40, false, false)
	if s.Delay() != 25 {
		t.Fatalf("delay = %v", s.Delay())
	}
}

// TestLabelInterning: records with equal but distinct label strings
// must share one canonical instance after recording, so retained traces
// hold one copy per distinct label rather than one per record.
func TestLabelInterning(t *testing.T) {
	tr := New()
	a := strings.Clone("DYN_KIND")
	b := strings.Clone("DYN_KIND")
	s := svc(0, 1, 0, 0, 1, false, false)
	s.Kind = a
	tr.RecordService(s)
	s.Kind = b
	tr.RecordService(s)
	got := tr.Services()
	if got[0].Kind != "DYN_KIND" || got[1].Kind != "DYN_KIND" {
		t.Fatalf("kinds = %q, %q", got[0].Kind, got[1].Kind)
	}
	if unsafe.StringData(got[0].Kind) != unsafe.StringData(got[1].Kind) {
		t.Error("equal service labels not interned to one instance")
	}
	tr.RecordFault(Fault{Kind: strings.Clone("reroute"), Rank: 1, Peer: 2})
	tr.RecordFault(Fault{Kind: strings.Clone("reroute"), Rank: 2, Peer: 1})
	fs := tr.Faults()
	if unsafe.StringData(fs[0].Kind) != unsafe.StringData(fs[1].Kind) {
		t.Error("equal fault labels not interned to one instance")
	}
}

func TestReserve(t *testing.T) {
	tr := New()
	tr.RecordService(svc(0, 1, 0, 0, 1, false, false))
	tr.Reserve(1024)
	if cap(tr.services) < 1024 {
		t.Fatalf("cap = %d after Reserve(1024)", cap(tr.services))
	}
	if len(tr.Services()) != 1 || tr.Services()[0].Rank != 0 {
		t.Fatal("Reserve lost existing records")
	}
	base := &tr.services[:cap(tr.services)][0]
	for i := 0; i < 1023; i++ {
		tr.RecordService(svc(i, 0, 0, 0, 1, false, false))
	}
	if &tr.services[0] != base {
		t.Error("appends within reserved capacity reallocated the buffer")
	}
	// Disabled and nil tracers ignore Reserve.
	var zero Tracer
	zero.Reserve(64)
	if cap(zero.services) != 0 {
		t.Error("disabled tracer reserved")
	}
	var nilT *Tracer
	nilT.Reserve(64) // must not panic
}
