package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func svc(rank, origin int, arrived, start, end int64, intr, hw bool) Service {
	return Service{Rank: rank, Origin: origin, Kind: "ACC", Bytes: 8,
		Arrived: sim.Time(arrived), Start: sim.Time(start), End: sim.Time(end),
		Interrupt: intr, Hardware: hw}
}

func TestNilAndDisabledTracerSafe(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Error("nil tracer enabled")
	}
	nilT.RecordService(svc(0, 1, 0, 0, 1, false, false))
	if nilT.Services() != nil || nilT.Profiles() != nil || nilT.TotalDelay() != 0 {
		t.Error("nil tracer not inert")
	}
	var zero Tracer
	zero.RecordService(svc(0, 1, 0, 0, 1, false, false))
	if len(zero.Services()) != 0 {
		t.Error("zero-value tracer recorded")
	}
}

func TestDelayAndProfiles(t *testing.T) {
	tr := New()
	tr.RecordService(svc(5, 0, 100, 150, 170, false, false)) // 50 delay, 20 busy
	tr.RecordService(svc(5, 1, 200, 210, 240, true, false))  // 10 delay, 30 busy
	tr.RecordService(svc(7, 0, 0, 0, 5, false, false))
	tr.RecordService(svc(-1, 2, 9, 9, 9, false, true)) // NIC

	if got := tr.TotalDelay(); got != 60 {
		t.Fatalf("TotalDelay = %v", got)
	}
	ps := tr.Profiles()
	if len(ps) != 3 {
		t.Fatalf("%d profiles", len(ps))
	}
	if ps[0].Rank != -1 || ps[1].Rank != 5 || ps[2].Rank != 7 {
		t.Fatalf("profile order: %+v", ps)
	}
	p5 := ps[1]
	if p5.Services != 2 || p5.Busy != 50 || p5.Delay != 60 ||
		p5.MaxDelay != 50 || p5.Interrupts != 1 || p5.Bytes != 16 {
		t.Fatalf("rank5 profile: %+v", p5)
	}
	out := tr.Render()
	if !strings.Contains(out, "NIC") || !strings.Contains(out, "stall") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestServiceDelay(t *testing.T) {
	s := svc(0, 0, 10, 35, 40, false, false)
	if s.Delay() != 25 {
		t.Fatalf("delay = %v", s.Delay())
	}
}
