package trace

import (
	"strings"
	"testing"
)

func TestRenderWaitGraphEmpty(t *testing.T) {
	if lines := RenderWaitGraph(nil); lines != nil {
		t.Fatalf("empty graph rendered %v", lines)
	}
}

func TestRenderWaitGraphReportsCycleFirst(t *testing.T) {
	lines := RenderWaitGraph([]WaitEdge{
		{From: 2, To: 0, Label: "queued behind exclusive lock"},
		{From: 0, To: 1, Label: "awaiting AM credit"},
		{From: 1, To: 2, Label: "3 unacked RMA op(s)"},
		{From: 3, To: 0, Label: "awaiting lock grant"},
	})
	if len(lines) != 5 {
		t.Fatalf("want 1 cycle + 4 edges, got %d lines: %v", len(lines), lines)
	}
	if lines[0] != "  cycle: rank0 -> rank1 -> rank2 -> rank0" {
		t.Fatalf("cycle line = %q", lines[0])
	}
	if lines[4] != "  rank3 waits on rank0: awaiting lock grant" {
		t.Fatalf("edge line = %q", lines[4])
	}
}

func TestRenderWaitGraphAcyclic(t *testing.T) {
	lines := RenderWaitGraph([]WaitEdge{
		{From: 0, To: 1, Label: "a"},
		{From: 1, To: 2, Label: "b"},
	})
	for _, l := range lines {
		if strings.Contains(l, "cycle") {
			t.Fatalf("acyclic graph reported a cycle: %v", lines)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("want 2 edge lines, got %v", lines)
	}
}

func TestRenderWaitGraphDeduplicatesCycles(t *testing.T) {
	// The same 0<->1 cycle is reachable from both nodes; it must be
	// reported once, rotated to start at its smallest rank.
	lines := RenderWaitGraph([]WaitEdge{
		{From: 1, To: 0, Label: "x"},
		{From: 0, To: 1, Label: "y"},
	})
	var cycles []string
	for _, l := range lines {
		if strings.Contains(l, "cycle") {
			cycles = append(cycles, l)
		}
	}
	if len(cycles) != 1 || cycles[0] != "  cycle: rank0 -> rank1 -> rank0" {
		t.Fatalf("cycle lines = %v", cycles)
	}
}

func TestRenderWaitGraphSelfCycle(t *testing.T) {
	lines := RenderWaitGraph([]WaitEdge{{From: 4, To: 4, Label: "self"}})
	if len(lines) != 2 || lines[0] != "  cycle: rank4 -> rank4" {
		t.Fatalf("self-cycle render = %v", lines)
	}
}
