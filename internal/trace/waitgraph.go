package trace

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// WaitEdge is one blocked-on relation in a wait-for graph: process
// From is waiting on process To for the reason in Label (a lock grant,
// an epoch close, a flow-control credit, ...).
type WaitEdge struct {
	From, To int
	Label    string
}

// RenderWaitGraph formats a wait-for graph for hang diagnostics: one
// line per edge, preceded by any cycles found (a cycle is the
// signature of a true deadlock; acyclic graphs indicate a stalled
// resource at the terminal nodes). Output order is deterministic.
func RenderWaitGraph(edges []WaitEdge) []string {
	if len(edges) == 0 {
		return nil
	}
	var lines []string
	for _, cyc := range findCycles(edges) {
		s := ""
		for _, n := range cyc {
			s += fmt.Sprintf("rank%d -> ", n)
		}
		lines = append(lines, "  cycle: "+s+fmt.Sprintf("rank%d", cyc[0]))
	}
	for _, e := range edges {
		lines = append(lines, fmt.Sprintf("  rank%d waits on rank%d: %s", e.From, e.To, e.Label))
	}
	return lines
}

// RenderSchedulerStates formats per-engine scheduler snapshots for
// hang diagnostics, one line per engine, so a frozen-clock report names
// the blocking structure — queue depth, active bucket span, peak
// residency — and not just the timestamp. Single-engine worlds get an
// unnumbered line.
func RenderSchedulerStates(states []sim.SchedulerState) []string {
	if len(states) == 0 {
		return nil
	}
	if len(states) == 1 {
		return []string{"  " + states[0].String()}
	}
	lines := make([]string, len(states))
	for i, s := range states {
		lines[i] = fmt.Sprintf("  engine %d %s", i, s)
	}
	return lines
}

// findCycles returns the elementary cycles reachable in the edge set,
// each rotated to start at its smallest rank, deduplicated, and
// sorted. A simple DFS suffices at diagnostic scale (edge counts are
// capped by callers).
func findCycles(edges []WaitEdge) [][]int {
	adj := make(map[int][]int)
	nodes := make(map[int]bool)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		nodes[e.From], nodes[e.To] = true, true
	}
	var starts []int
	for n := range nodes {
		starts = append(starts, n)
	}
	sort.Ints(starts)
	for _, tos := range adj {
		sort.Ints(tos)
	}

	seen := make(map[string]bool)
	var cycles [][]int
	var path []int
	onPath := make(map[int]int) // node -> index in path
	var dfs func(n int)
	dfs = func(n int) {
		if i, ok := onPath[n]; ok {
			cyc := canonicalCycle(path[i:])
			key := fmt.Sprint(cyc)
			if !seen[key] {
				seen[key] = true
				cycles = append(cycles, cyc)
			}
			return
		}
		onPath[n] = len(path)
		path = append(path, n)
		for _, m := range adj[n] {
			dfs(m)
		}
		path = path[:len(path)-1]
		delete(onPath, n)
	}
	for _, n := range starts {
		dfs(n)
	}
	sort.Slice(cycles, func(i, j int) bool {
		return fmt.Sprint(cycles[i]) < fmt.Sprint(cycles[j])
	})
	return cycles
}

// canonicalCycle rotates a cycle so its smallest node comes first.
func canonicalCycle(cyc []int) []int {
	min := 0
	for i, n := range cyc {
		if n < cyc[min] {
			min = i
		}
	}
	out := make([]int, 0, len(cyc))
	out = append(out, cyc[min:]...)
	out = append(out, cyc[:min]...)
	return out
}
