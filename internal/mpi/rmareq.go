package mpi

import "repro/internal/sim"

// RMARequest is the handle of a request-based RMA operation
// (MPI_Rput/MPI_Rget). Unlike flush, waiting on it completes just this
// operation. Casper returns merged requests covering every split piece.
type RMARequest struct {
	r        *Rank
	pending  sim.CompletionSet
	children []*RMARequest
}

// NewMergedRMARequest aggregates several requests into one (used by
// layers that split an operation, like Casper's segment binding).
func NewMergedRMARequest(r *Rank, children ...*RMARequest) *RMARequest {
	return &RMARequest{r: r, children: children}
}

// Done reports whether the operation (and all children) completed.
func (q *RMARequest) Done() bool {
	if q.pending.Pending() > 0 {
		return false
	}
	for _, c := range q.children {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Wait blocks until the operation is complete at the origin: for RGet
// the destination buffer is filled; for RPut the data is remotely
// applied (this model's snapshot-at-issue semantics make local
// completion immediate, so the request tracks the stronger guarantee).
func (q *RMARequest) Wait() {
	q.r.mpiEnter()
	defer q.r.mpiLeave()
	q.pending.Wait(q.r.proc, "MPI_Wait(rma)")
	for _, c := range q.children {
		c.pending.Wait(q.r.proc, "MPI_Wait(rma)")
	}
}

// RPut issues a request-based put (MPI_RPUT).
func (w *Win) RPut(src []byte, target int, disp int, dt Datatype) *RMARequest {
	q := &RMARequest{r: w.r}
	o := w.newOp(KindPut, target, disp, dt, OpReplace)
	o.data, o.req = src, q
	w.issue(o)
	return q
}

// RGet issues a request-based get (MPI_RGET); Wait returns once dst is
// filled.
func (w *Win) RGet(dst []byte, target int, disp int, dt Datatype) *RMARequest {
	q := &RMARequest{r: w.r}
	o := w.newOp(KindGet, target, disp, dt, OpNoOp)
	o.dst, o.req = dst, q
	w.issue(o)
	return q
}
