package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// WorldSummary aggregates per-rank counters over a finished (or
// running) world — the quick profile harnesses print after an
// experiment.
type WorldSummary struct {
	Ranks        int
	SoftwareAMs  int64
	HardwareOps  int64
	Interrupts   int64
	MessagesSent int64
	OpsIssued    int64
	BytesIn      int64
	StolenTime   sim.Duration
	EndTime      sim.Time

	// Fault/reliability aggregates. All exactly zero for a world
	// without a fault plan AND for a world with an all-zero-rate plan
	// and no crashes — the determinism tests compare summaries across
	// those configurations with ==.
	FaultDrops     int64
	FaultDelays    int64
	FaultDups      int64
	Retransmits    int64
	RetryTimeouts  int64
	DupsSuppressed int64
	Reroutes       int64
	Abandoned      int64
	RanksFailed    int
	P2PLost        int64

	// Flow-control aggregates. The counters are exactly zero for a
	// world without a FlowConfig, keeping historical summary strings
	// bit-identical; PeakQueueDepth is always measured.
	CreditStalls    int64
	CreditStallTime sim.Duration
	BacklogDropped  int64
	PeakQueueDepth  int // max over ranks of the AM pipeline high-water mark

	// PeakQueueResidency is the max over engines of the event
	// scheduler's pending-event high-water mark (see
	// sim.Engine.PeakQueueResidency). Always measured; deliberately
	// absent from String so historical summary lines stay bit-identical
	// — bench JSON is where it is reported.
	PeakQueueResidency int

	// Recovery aggregates (see RankStats). All exactly zero unless the
	// failure detector acted, keeping historical summary strings
	// bit-identical.
	Suspects       int64
	FalseSuspects  int64
	LocksReclaimed int64
	EpochRelocks   int64
	Successions    int64
	CmdResends     int64
	Rebinds        int64

	// Wire-corruption aggregates (zero unless the plan has a nonzero
	// CorruptRate).
	FaultCorrupts  int64
	CorruptDropped int64

	// App-rank recovery aggregates (zero unless the plan schedules
	// AppCrashes).
	AppRecoveries  int64
	SnapshotsTaken int64
	SnapshotBytes  int64
	ReplayedOps    int64
}

// Summary aggregates the counters of every rank.
func (w *World) Summary() WorldSummary {
	s := WorldSummary{Ranks: len(w.ranks), EndTime: w.now()}
	for _, r := range w.ranks {
		st := r.stats
		s.SoftwareAMs += st.SoftwareAMs
		s.HardwareOps += st.HardwareOps
		s.Interrupts += st.Interrupts
		s.MessagesSent += st.MessagesSent
		s.OpsIssued += st.OpsIssued
		s.BytesIn += st.BytesIn
		s.StolenTime += st.StolenTime
		s.Retransmits += st.Retransmits
		s.RetryTimeouts += st.RetryTimeouts
		s.DupsSuppressed += st.DupsSuppressed
		s.Reroutes += st.Reroutes
		s.Abandoned += st.Abandoned
		s.CreditStalls += st.CreditStalls
		s.CreditStallTime += st.CreditStallTime
		s.BacklogDropped += st.BacklogDropped
		s.Suspects += st.Suspects
		s.FalseSuspects += st.FalseSuspects
		s.LocksReclaimed += st.LocksReclaimed
		s.EpochRelocks += st.EpochRelocks
		s.Successions += st.Successions
		s.CmdResends += st.CmdResends
		s.Rebinds += st.Rebinds
		s.CorruptDropped += st.CorruptDropped
		s.AppRecoveries += st.AppRecoveries
		s.SnapshotsTaken += st.SnapshotsTaken
		s.SnapshotBytes += st.SnapshotBytes
		s.ReplayedOps += st.ReplayedOps
		if r.engine.peakDepth > s.PeakQueueDepth {
			s.PeakQueueDepth = r.engine.peakDepth
		}
	}
	for _, e := range w.allEngines() {
		if p := e.PeakQueueResidency(); p > s.PeakQueueResidency {
			s.PeakQueueResidency = p
		}
	}
	if w.inj != nil {
		fs := w.inj.Stats()
		s.FaultDrops = fs.Drops
		s.FaultDelays = fs.Delays
		s.FaultDups = fs.Dups
		s.FaultCorrupts = fs.Corrupts
	}
	s.RanksFailed = w.failedCount
	s.P2PLost = w.p2pLost
	return s
}

// String implements fmt.Stringer.
func (s WorldSummary) String() string {
	out := fmt.Sprintf(
		"ranks=%d end=%v rma_issued=%d software_ams=%d hardware_ops=%d interrupts=%d stolen=%v p2p_msgs=%d bytes_in=%d",
		s.Ranks, s.EndTime, s.OpsIssued, s.SoftwareAMs, s.HardwareOps,
		s.Interrupts, s.StolenTime, s.MessagesSent, s.BytesIn)
	// Fault-free worlds print exactly the historical summary line.
	if s.FaultDrops|s.FaultDelays|s.FaultDups|s.Retransmits|s.RetryTimeouts|
		s.DupsSuppressed|s.Reroutes|s.Abandoned|s.P2PLost != 0 || s.RanksFailed != 0 {
		out += fmt.Sprintf(
			" faults[drop=%d delay=%d dup=%d] retrans=%d timeouts=%d dups_supp=%d reroutes=%d abandoned=%d failed=%d p2p_lost=%d",
			s.FaultDrops, s.FaultDelays, s.FaultDups, s.Retransmits, s.RetryTimeouts,
			s.DupsSuppressed, s.Reroutes, s.Abandoned, s.RanksFailed, s.P2PLost)
	}
	// Recovery section appears only when the failure detector acted.
	if s.Suspects|s.FalseSuspects|s.LocksReclaimed|s.EpochRelocks|
		s.Successions|s.CmdResends|s.Rebinds != 0 {
		out += fmt.Sprintf(
			" recovery[suspects=%d false=%d locks_reclaimed=%d epoch_relocks=%d successions=%d cmd_resends=%d rebinds=%d]",
			s.Suspects, s.FalseSuspects, s.LocksReclaimed, s.EpochRelocks,
			s.Successions, s.CmdResends, s.Rebinds)
	}
	// Wire-corruption section appears only under a nonzero CorruptRate.
	if s.FaultCorrupts != 0 || s.CorruptDropped != 0 {
		out += fmt.Sprintf(" corrupt[injected=%d dropped=%d]",
			s.FaultCorrupts, s.CorruptDropped)
	}
	// App-recovery section appears only when an application rank crashed
	// recoverably (snapshots alone are silent — they are insurance, not
	// an event worth a changed summary line).
	if s.AppRecoveries != 0 || s.ReplayedOps != 0 {
		out += fmt.Sprintf(" apprecovery[recovered=%d snapshots=%d snap_bytes=%d replayed=%d]",
			s.AppRecoveries, s.SnapshotsTaken, s.SnapshotBytes, s.ReplayedOps)
	}
	// Flow-control section appears only when credits actually bound.
	if s.CreditStalls != 0 || s.CreditStallTime != 0 || s.BacklogDropped != 0 {
		out += fmt.Sprintf(" flow[stalls=%d stall_time=%v dropped=%d peak_depth=%d]",
			s.CreditStalls, s.CreditStallTime, s.BacklogDropped, s.PeakQueueDepth)
	}
	return out
}

// BusiestRank returns the world rank that serviced the most software
// AMs and its count — useful for spotting ghost load imbalance.
func (w *World) BusiestRank() (rank int, ams int64) {
	for i, r := range w.ranks {
		if r.stats.SoftwareAMs > ams {
			rank, ams = i, r.stats.SoftwareAMs
		}
	}
	return rank, ams
}
