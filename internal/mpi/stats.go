package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// WorldSummary aggregates per-rank counters over a finished (or
// running) world — the quick profile harnesses print after an
// experiment.
type WorldSummary struct {
	Ranks        int
	SoftwareAMs  int64
	HardwareOps  int64
	Interrupts   int64
	MessagesSent int64
	OpsIssued    int64
	BytesIn      int64
	StolenTime   sim.Duration
	EndTime      sim.Time
}

// Summary aggregates the counters of every rank.
func (w *World) Summary() WorldSummary {
	s := WorldSummary{Ranks: len(w.ranks), EndTime: w.eng.Now()}
	for _, r := range w.ranks {
		st := r.stats
		s.SoftwareAMs += st.SoftwareAMs
		s.HardwareOps += st.HardwareOps
		s.Interrupts += st.Interrupts
		s.MessagesSent += st.MessagesSent
		s.OpsIssued += st.OpsIssued
		s.BytesIn += st.BytesIn
		s.StolenTime += st.StolenTime
	}
	return s
}

// String implements fmt.Stringer.
func (s WorldSummary) String() string {
	return fmt.Sprintf(
		"ranks=%d end=%v rma_issued=%d software_ams=%d hardware_ops=%d interrupts=%d stolen=%v p2p_msgs=%d bytes_in=%d",
		s.Ranks, s.EndTime, s.OpsIssued, s.SoftwareAMs, s.HardwareOps,
		s.Interrupts, s.StolenTime, s.MessagesSent, s.BytesIn)
}

// BusiestRank returns the world rank that serviced the most software
// AMs and its count — useful for spotting ghost load imbalance.
func (w *World) BusiestRank() (rank int, ams int64) {
	for i, r := range w.ranks {
		if r.stats.SoftwareAMs > ams {
			rank, ams = i, r.stats.SoftwareAMs
		}
	}
	return rank, ams
}
