package mpi

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// commGlobal is the shared state of one communicator: the rank list and
// the rendezvous state for collectives.
type commGlobal struct {
	id    int
	w     *World
	eng   *sim.Engine // engine of comm rank 0: the collective rendezvous owner
	ranks []int       // comm rank -> world rank
	index map[int]int // world rank -> comm rank
	gen   []int       // per comm-rank collective sequence number
	colls map[int]*collOp

	// Sharded-execution state: crossShard marks a comm whose members
	// span shard engines (its collectives go through the owner-mediated
	// path in shard.go, keyed by generation in scolls). A comm contained
	// in one shard runs the serial rendezvous on that shard's engine.
	crossShard bool
	scolls     map[int]*shardColl
}

func (w *World) newCommGlobal(worldRanks []int) *commGlobal {
	if s := w.sharded; s != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return w.newCommGlobalLocked(worldRanks)
}

// newCommGlobalLocked is newCommGlobal without the registry lock, for
// callers that already hold it across a check-then-create sequence.
func (w *World) newCommGlobalLocked(worldRanks []int) *commGlobal {
	w.commSeq++
	g := &commGlobal{
		id:    w.commSeq,
		w:     w,
		eng:   w.eng,
		ranks: append([]int(nil), worldRanks...),
		index: make(map[int]int, len(worldRanks)),
		gen:   make([]int, len(worldRanks)),
		colls: make(map[int]*collOp),
	}
	for i, r := range g.ranks {
		g.index[r] = i
	}
	if s := w.sharded; s != nil {
		sh := s.shardOf[g.ranks[0]]
		g.eng = s.engines[sh]
		for _, r := range g.ranks[1:] {
			if s.shardOf[r] != sh {
				g.crossShard = true
				break
			}
		}
		g.scolls = make(map[int]*shardColl)
	}
	w.comms = append(w.comms, g)
	return g
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	g  *commGlobal
	me int // comm rank
	r  *Rank
}

// Rank returns the calling process's rank in this communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.g.ranks) }

// WorldRank translates a comm rank to a world (MPI_COMM_WORLD) rank.
func (c *Comm) WorldRank(commRank int) int { return c.g.ranks[commRank] }

// CommRankOf translates a world rank into this communicator, returning
// ok=false if the world rank is not a member.
func (c *Comm) CommRankOf(worldRank int) (int, bool) {
	i, ok := c.g.index[worldRank]
	return i, ok
}

// Group returns the communicator's members as world ranks.
func (c *Comm) Group() []int { return append([]int(nil), c.g.ranks...) }

// ID returns a process-global identifier for the communicator (used in
// message matching).
func (c *Comm) ID() int { return c.g.id }

// String implements fmt.Stringer.
func (c *Comm) String() string {
	return fmt.Sprintf("comm%d(rank %d/%d)", c.g.id, c.me, len(c.g.ranks))
}

// --- Point-to-point -------------------------------------------------

// Status describes a received message.
type Status struct {
	Source int // comm rank of the sender
	Tag    int
}

type inMsg struct {
	commID int
	src    int // comm rank
	tag    int
	data   []byte
}

// InjectLocal delivers a message straight into dest's mailbox at the
// current instant, from engine context: no wire time, no transport, no
// MPI call overhead. It is the recovery side channel for layered
// runtimes — e.g. handing the sequencer role to a successor ghost when
// the normal path's owner just died. src and dest are comm ranks; the
// injection is silently dropped at a crashed destination.
func (c *Comm) InjectLocal(src, dest, tag int, data []byte) {
	dr := c.g.w.ranks[c.g.ranks[dest]]
	if dr.failed {
		return
	}
	dr.mailbox.arrive(&inMsg{commID: c.g.id, src: src, tag: tag, data: append([]byte(nil), data...)})
}

type postedRecv struct {
	commID int
	src    int
	tag    int
	done   sim.Completion
	msg    *inMsg
}

// mailbox holds a rank's unexpected-message and posted-receive queues.
type mailbox struct {
	msgs     []*inMsg
	recvs    []*postedRecv
	probeSig sim.Signal // broadcast on unexpected-message arrival (Probe)
}

func match(commID, src, tag int, m *inMsg) bool {
	return m.commID == commID &&
		(src == AnySource || m.src == src) &&
		(tag == AnyTag || m.tag == tag)
}

// arrive runs in engine context when a message reaches its destination.
func (mb *mailbox) arrive(m *inMsg) {
	for i, pr := range mb.recvs {
		if match(pr.commID, pr.src, pr.tag, m) {
			mb.recvs = append(mb.recvs[:i], mb.recvs[i+1:]...)
			pr.msg = m
			pr.done.Complete()
			return
		}
	}
	mb.msgs = append(mb.msgs, m)
	mb.probeSig.Broadcast()
}

// Send sends data to comm rank dest with the given tag. The model is an
// eager/buffered send: it completes locally once issued; the message
// arrives after the wire time. Delivery is FIFO per (sender, receiver)
// pair, as on a connection-oriented transport — a later small message
// never overtakes an earlier large one.
func (c *Comm) Send(dest, tag int, data []byte) {
	r := c.r
	r.mpiEnter()
	defer r.mpiLeave()
	destWorld := c.g.ranks[dest]
	msg := &inMsg{commID: c.g.id, src: c.me, tag: tag, data: append([]byte(nil), data...)}
	dr := c.g.w.ranks[destWorld]
	eng := r.eng
	arrival := eng.Now().Add(r.transferTo(destWorld, len(data)))
	if r.p2pLast == nil {
		r.p2pLast = map[int]sim.Time{}
	}
	if arrival <= r.p2pLast[destWorld] {
		arrival = r.p2pLast[destWorld] + 1
	}
	r.p2pLast[destWorld] = arrival
	if rel := r.w.rel; rel != nil {
		rel.sendMsg(r, destWorld, msg, arrival)
	} else {
		r.w.schedule(eng, dr.eng, arrival, func() { dr.mailbox.arrive(msg) })
	}
	r.stats.MessagesSent++
}

// Recv blocks until a message matching (src, tag) arrives; src may be
// AnySource and tag AnyTag. While blocked the rank is inside MPI, so
// software RMA targeted at it makes progress — this is why a Casper
// ghost parked in a Recv loop provides asynchronous progress.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	r := c.r
	r.mpiEnter()
	defer r.mpiLeave()
	mb := &r.mailbox
	for i, m := range mb.msgs {
		if match(c.g.id, src, tag, m) {
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			return m.data, Status{Source: m.src, Tag: m.tag}
		}
	}
	pr := &postedRecv{commID: c.g.id, src: src, tag: tag}
	mb.recvs = append(mb.recvs, pr)
	pr.done.Await(r.proc, "MPI_Recv")
	return pr.msg.data, Status{Source: pr.msg.src, Tag: pr.msg.tag}
}

// --- Collectives ----------------------------------------------------

type collOp struct {
	name      string // collective type, to diagnose mismatched calls
	arrived   int
	left      int
	seen      []bool // per comm rank: has it arrived?
	vals      []interface{}
	result    interface{}
	reduce    func(vals []interface{}) interface{} // last arriver's reduce
	cost      sim.Duration                         // last arriver's cost
	completed bool
	done      sim.Completion
}

// rounds returns ceil(log2(n)), the depth of a dissemination/tree
// collective.
func rounds(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// collective runs a generic rendezvous: every comm rank contributes val;
// when the last arrives, reduce computes the shared result and all ranks
// resume after cost. reduce may be nil.
func (c *Comm) collective(name string, val interface{},
	cost sim.Duration, reduce func(vals []interface{}) interface{}) interface{} {
	r := c.r
	r.mpiEnter()
	defer r.mpiLeave()
	g := c.g
	if g.crossShard {
		return c.collectiveSharded(name, val, cost, reduce)
	}
	gen := g.gen[c.me]
	g.gen[c.me]++
	coll, ok := g.colls[gen]
	if !ok {
		coll = &collOp{name: name,
			seen: make([]bool, len(g.ranks)),
			vals: make([]interface{}, len(g.ranks))}
		g.colls[gen] = coll
	}
	if coll.name != name {
		panic(fmt.Sprintf("mpi: collective mismatch on comm%d: rank %d called %s while others called %s",
			g.id, c.me, name, coll.name))
	}
	coll.vals[c.me] = val
	coll.seen[c.me] = true
	coll.arrived++
	// Record the reduce and cost on every arrival so that, alive or
	// dead, the collective always completes with the *last arriver's*
	// view — exactly the fault-free semantics when nobody dies.
	coll.reduce = reduce
	coll.cost = cost
	g.maybeComplete(coll)
	coll.done.Await(r.proc, name)
	res := coll.result
	coll.left++
	if coll.left >= g.aliveN() {
		delete(g.colls, gen)
	}
	return res
}

// aliveN returns the number of comm members that have not crashed. The
// fast path keeps fault-free worlds on the seed code path.
func (g *commGlobal) aliveN() int {
	if g.w.failedCount == 0 {
		return len(g.ranks)
	}
	n := 0
	for _, wr := range g.ranks {
		if !g.w.ranks[wr].failed {
			n++
		}
	}
	return n
}

// maybeComplete fires the collective once every surviving member has
// arrived. Called on each arrival and again from reapFailed when a
// member crashes, so survivors are never held hostage by a corpse.
func (g *commGlobal) maybeComplete(coll *collOp) {
	if coll.completed || coll.arrived == 0 {
		return
	}
	if g.w.failedCount == 0 {
		if coll.arrived < len(g.ranks) {
			return
		}
	} else {
		for i, wr := range g.ranks {
			if !coll.seen[i] && !g.w.ranks[wr].failed {
				return
			}
		}
	}
	coll.completed = true
	if coll.reduce != nil {
		coll.result = coll.reduce(coll.vals)
	}
	done := coll.done.Complete
	g.eng.After(coll.cost, done)
}

// reapFailed re-examines this comm's open collectives after a crash
// (gen order, for determinism).
func (g *commGlobal) reapFailed() {
	if len(g.colls) == 0 {
		return
	}
	gens := make([]int, 0, len(g.colls))
	for gen := range g.colls {
		gens = append(gens, gen)
	}
	sort.Ints(gens)
	for _, gen := range gens {
		g.maybeComplete(g.colls[gen])
	}
}

// barrierCost models a dissemination barrier.
func (c *Comm) barrierCost() sim.Duration {
	n := len(c.g.ranks)
	per := c.g.w.net.InterLatency + c.g.w.net.CallOverhead
	return sim.Duration(rounds(n)) * per
}

// Barrier blocks until all comm members arrive (MPI_BARRIER).
func (c *Comm) Barrier() {
	c.collective("MPI_Barrier", nil, c.barrierCost(), nil)
}

// Bcast broadcasts root's buffer to all ranks, returning the received
// copy (MPI_BCAST).
func (c *Comm) Bcast(root int, data []byte) []byte {
	n := len(c.g.ranks)
	var size int
	if c.me == root {
		size = len(data)
	}
	cost := sim.Duration(rounds(n)) * (c.g.w.net.InterLatency +
		sim.Duration(float64(size)*c.g.w.net.InterPerByte))
	res := c.collective("MPI_Bcast", data, cost, func(vals []interface{}) interface{} {
		return vals[root]
	})
	b, _ := res.([]byte)
	return append([]byte(nil), b...)
}

// AllreduceFloat64 element-wise reduces each rank's vector with op and
// returns the result on every rank (MPI_ALLREDUCE).
func (c *Comm) AllreduceFloat64(vals []float64, op Op) []float64 {
	n := len(c.g.ranks)
	cost := sim.Duration(rounds(n)) * (c.g.w.net.InterLatency +
		sim.Duration(float64(8*len(vals))*c.g.w.net.InterPerByte))
	res := c.collective("MPI_Allreduce", vals, cost, func(all []interface{}) interface{} {
		var out []float64
		buf := make([]byte, 8)
		acc := make([]byte, 8)
		for _, v := range all {
			vv, ok := v.([]float64)
			if !ok {
				continue // crashed member: no contribution
			}
			if out == nil {
				out = append([]float64(nil), vv...)
				continue
			}
			for i := range out {
				// Reuse the element combiner for exact MPI semantics.
				putF64(acc, out[i])
				putF64(buf, vv[i])
				applyElem(op, Float64, acc, buf)
				out[i] = getF64(acc)
			}
		}
		return out
	})
	out, _ := res.([]float64)
	return append([]float64(nil), out...)
}

// ReduceFloat64 element-wise reduces onto root only; other ranks
// receive nil (MPI_REDUCE).
func (c *Comm) ReduceFloat64(root int, vals []float64, op Op) []float64 {
	out := c.AllreduceFloat64(vals, op)
	if c.me != root {
		return nil
	}
	return out
}

// AllgatherFloat64 concatenates each rank's equally sized vector in
// comm-rank order (MPI_ALLGATHER).
func (c *Comm) AllgatherFloat64(vals []float64) []float64 {
	n := len(c.g.ranks)
	cost := sim.Duration(rounds(n)) * (c.g.w.net.InterLatency +
		sim.Duration(float64(8*len(vals)*n)*c.g.w.net.InterPerByte))
	res := c.collective("MPI_Allgather", vals, cost, func(all []interface{}) interface{} {
		var out []float64
		for _, v := range all {
			vv, _ := v.([]float64) // crashed member: gathers nothing
			out = append(out, vv...)
		}
		return out
	})
	out, _ := res.([]float64)
	return append([]float64(nil), out...)
}

// AlltoallFloat64 exchanges personalized vectors: send[i] goes to rank
// i; the result's element i came from rank i (MPI_ALLTOALL with one
// element per peer).
func (c *Comm) AlltoallFloat64(send []float64) []float64 {
	n := len(c.g.ranks)
	if len(send) != n {
		panic(fmt.Sprintf("mpi: Alltoall send length %d != comm size %d", len(send), n))
	}
	cost := sim.Duration(rounds(n)) * (c.g.w.net.InterLatency +
		sim.Duration(float64(8*n)*c.g.w.net.InterPerByte))
	me := c.me
	res := c.collective("MPI_Alltoall", send, cost, func(all []interface{}) interface{} {
		// The reduce closure computes the full transpose once; each
		// rank extracts its row below.
		out := make([][]float64, len(all))
		for i := range out {
			out[i] = make([]float64, len(all))
			for j, v := range all {
				if vv, ok := v.([]float64); ok { // crashed member sends zeros
					out[i][j] = vv[i]
				}
			}
		}
		return out
	})
	rows, _ := res.([][]float64)
	if rows == nil {
		return nil
	}
	return append([]float64(nil), rows[me]...)
}

// AllgatherInt gathers one int from each rank, indexed by comm rank
// (MPI_ALLGATHER).
func (c *Comm) AllgatherInt(v int) []int {
	n := len(c.g.ranks)
	cost := sim.Duration(rounds(n)) * (c.g.w.net.InterLatency + c.g.w.net.CallOverhead)
	res := c.collective("MPI_Allgather", v, cost, func(all []interface{}) interface{} {
		out := make([]int, len(all))
		for i, x := range all {
			xv, _ := x.(int) // crashed member gathers zero
			out[i] = xv
		}
		return out
	})
	out, _ := res.([]int)
	return append([]int(nil), out...)
}

type splitKey struct {
	color, key int
}

// Split partitions the communicator by color, ordering ranks within each
// new communicator by (key, old rank) (MPI_COMM_SPLIT). color < 0 acts
// as MPI_UNDEFINED: the rank gets no new communicator (nil).
func (c *Comm) Split(color, key int) *Comm {
	cost := c.barrierCost()
	res := c.collective("MPI_Comm_split", splitKey{color, key}, cost,
		func(all []interface{}) interface{} {
			byColor := map[int][]int{} // color -> comm ranks
			var colors []int
			for i, v := range all {
				sk, ok := v.(splitKey)
				if !ok || sk.color < 0 { // crashed member: MPI_UNDEFINED
					continue
				}
				if _, ok := byColor[sk.color]; !ok {
					colors = append(colors, sk.color)
				}
				byColor[sk.color] = append(byColor[sk.color], i)
			}
			sort.Ints(colors)
			out := map[int]*commGlobal{}
			for _, col := range colors {
				members := byColor[col]
				sort.SliceStable(members, func(a, b int) bool {
					ka := all[members[a]].(splitKey).key
					kb := all[members[b]].(splitKey).key
					if ka != kb {
						return ka < kb
					}
					return members[a] < members[b]
				})
				world := make([]int, len(members))
				for i, m := range members {
					world[i] = c.g.ranks[m]
				}
				out[col] = c.g.w.newCommGlobal(world)
			}
			return out
		})
	if color < 0 {
		return nil
	}
	groups := res.(map[int]*commGlobal)
	ng := groups[color]
	me, ok := ng.index[c.g.ranks[c.me]]
	if !ok {
		panic("mpi: split result missing caller")
	}
	return &Comm{g: ng, me: me, r: c.r}
}

// CommFromGroup builds a communicator containing exactly the given
// world ranks, collectively over those ranks only — MPI_COMM_CREATE_
// GROUP semantics. Every member must call it with the identical rank
// list; members' nth calls with the same list yield the same
// communicator. No other rank participates (unlike Split), which is
// what lets Casper assemble per-window communicators of window users
// plus ghost processes without involving bystanders.
func (r *Rank) CommFromGroup(worldRanks []int) *Comm {
	r.mpiEnter()
	defer r.mpiLeave()
	sorted := append([]int(nil), worldRanks...)
	sort.Ints(sorted)
	key := fmt.Sprint(sorted)
	w := r.w
	if s := w.sharded; s != nil {
		// The check-then-create below must be atomic against members on
		// other shards racing to instantiate the same communicator.
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if w.groupComms == nil {
		w.groupComms = map[string][]*commGlobal{}
	}
	if r.groupUses == nil {
		r.groupUses = map[string]int{}
	}
	idx := r.groupUses[key]
	r.groupUses[key]++
	insts := w.groupComms[key]
	if idx >= len(insts) {
		insts = append(insts, w.newCommGlobalLocked(sorted))
		w.groupComms[key] = insts
	}
	return insts[idx].handleFor(r)
}

// Dup duplicates the communicator (MPI_COMM_DUP).
func (c *Comm) Dup() *Comm {
	res := c.collective("MPI_Comm_dup", nil, c.barrierCost(),
		func([]interface{}) interface{} {
			return c.g.w.newCommGlobal(c.g.ranks)
		})
	ng := res.(*commGlobal)
	return &Comm{g: ng, me: c.me, r: c.r}
}

// handleFor returns a Comm handle on g for world rank owner.
func (g *commGlobal) handleFor(r *Rank) *Comm {
	me, ok := g.index[r.id]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d not in comm%d", r.id, g.id))
	}
	return &Comm{g: g, me: me, r: r}
}

func putF64(b []byte, v float64) {
	copy(b, PutFloat64s([]float64{v}))
}

func getF64(b []byte) float64 {
	return GetFloat64s(b[:8])[0]
}
