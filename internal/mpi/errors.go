package mpi

import "fmt"

// ErrorMode is the MPI error-handler model (MPI_ERRORS_ARE_FATAL /
// MPI_ERRORS_RETURN) applied to a world. The default, ErrorsAreFatal,
// panics exactly as the runtime always has; ErrorsReturn instead
// records a typed *MPIError on the rank that suffered it and lets the
// offending call return, so applications (and the fault-tolerance
// machinery) can observe and handle the error class.
type ErrorMode int

// Error-handler modes.
const (
	ErrorsAreFatal ErrorMode = iota
	ErrorsReturn
)

// String implements fmt.Stringer.
func (m ErrorMode) String() string {
	if m == ErrorsReturn {
		return "MPI_ERRORS_RETURN"
	}
	return "MPI_ERRORS_ARE_FATAL"
}

// ErrClass is the typed error class of an MPIError, mirroring the MPI
// error classes relevant to RMA and fault tolerance.
type ErrClass int

// Error classes.
const (
	// ErrOther is any error without a more specific class.
	ErrOther ErrClass = iota
	// ErrRMARange: an RMA operation addressed memory outside the
	// target's exposed window (MPI_ERR_RMA_RANGE).
	ErrRMARange
	// ErrRMAAttach: misuse of dynamic-window attach/detach
	// (MPI_ERR_RMA_ATTACH).
	ErrRMAAttach
	// ErrProcFailed: the operation's peer process has failed and no
	// recovery path exists (MPI_ERR_PROC_FAILED, ULFM).
	ErrProcFailed
	// ErrMessageLost: the transport exhausted its retransmission
	// budget without an acknowledgment.
	ErrMessageLost
	// ErrBacklog: the flow-control credit window toward a target
	// stayed exhausted past the configured timeout — the target's AM
	// queue is full and not draining (MPI_ERR_BACKLOG).
	ErrBacklog
)

// String implements fmt.Stringer.
func (c ErrClass) String() string {
	switch c {
	case ErrRMARange:
		return "MPI_ERR_RMA_RANGE"
	case ErrRMAAttach:
		return "MPI_ERR_RMA_ATTACH"
	case ErrProcFailed:
		return "MPI_ERR_PROC_FAILED"
	case ErrMessageLost:
		return "MPI_ERR_MESSAGE_LOST"
	case ErrBacklog:
		return "MPI_ERR_BACKLOG"
	default:
		return "MPI_ERR_OTHER"
	}
}

// MPIError is a typed runtime error surfaced under ErrorsReturn.
type MPIError struct {
	Class ErrClass
	Rank  int // world rank the error was raised on
	Msg   string
}

// Error implements error.
func (e *MPIError) Error() string {
	return fmt.Sprintf("%v on rank %d: %s", e.Class, e.Rank, e.Msg)
}

// raise reports a runtime error on this rank per the world's error
// mode: panic with exactly the given message under ErrorsAreFatal (the
// historical behaviour), or record it for Err() under ErrorsReturn.
// It reports whether the caller should abort the operation (always
// true in return mode; fatal mode never returns).
func (r *Rank) raise(class ErrClass, format string, args ...interface{}) bool {
	msg := fmt.Sprintf(format, args...)
	if r.w.cfg.Errors != ErrorsReturn {
		panic(msg)
	}
	err := &MPIError{Class: class, Rank: r.id, Msg: msg}
	if r.lastErr == nil {
		r.lastErr = err
	}
	r.errCount++
	return true
}

// Err returns the first unconsumed *MPIError raised on this rank under
// ErrorsReturn, or nil. The error persists until ClearErr.
func (r *Rank) Err() *MPIError { return r.lastErr }

// ClearErr discards the recorded error, allowing the next raised error
// to be captured.
func (r *Rank) ClearErr() { r.lastErr = nil }

// ErrCount returns the total number of errors raised on this rank
// under ErrorsReturn (including ones overwritten before being read).
func (r *Rank) ErrCount() int64 { return r.errCount }
