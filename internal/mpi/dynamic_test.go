package mpi

import (
	"testing"
)

func TestDynamicWindowPutGet(t *testing.T) {
	var got []float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win := r.WinCreateDynamic(c, nil)
		var base int
		if r.Rank() == 1 {
			base = win.Attach(make([]byte, 64))
		}
		// Exchange the attached address out of band, as real apps do.
		if r.Rank() == 1 {
			c.Send(0, 1, PutInt64(int64(base)))
		} else {
			data, _ := c.Recv(1, 1)
			base = int(GetInt64(data))
		}
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Put(PutFloat64s([]float64{4.5, -1}), 1, base+16, TypeOf(Float64, 2))
			dst := make([]byte, 16)
			win.Get(dst, 1, base+16, TypeOf(Float64, 2))
			win.FlushAll()
			win.UnlockAll()
			got = GetFloat64s(dst)
		}
		c.Barrier()
		if r.Rank() == 1 {
			mem := GetFloat64s(win.AttachedBytes(base))
			if mem[2] != 4.5 || mem[3] != -1 {
				t.Errorf("attached memory = %v", mem)
			}
		}
	})
	if got[0] != 4.5 || got[1] != -1 {
		t.Fatalf("got %v", got)
	}
}

func TestDynamicWindowMultipleAttachments(t *testing.T) {
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win := r.WinCreateDynamic(c, nil)
		var b1, b2 int
		if r.Rank() == 1 {
			b1 = win.Attach(make([]byte, 32))
			b2 = win.Attach(make([]byte, 32))
			if b1 == b2 {
				t.Error("attachments share a base")
			}
			c.Send(0, 1, append(PutInt64(int64(b1)), PutInt64(int64(b2))...))
		} else {
			data, _ := c.Recv(1, 1)
			b1, b2 = int(GetInt64(data)), int(GetInt64(data[8:]))
		}
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Put(PutFloat64s([]float64{1}), 1, b1, Scalar(Float64))
			win.Put(PutFloat64s([]float64{2}), 1, b2, Scalar(Float64))
			win.FlushAll()
			win.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 1 {
			if GetFloat64s(win.AttachedBytes(b1))[0] != 1 ||
				GetFloat64s(win.AttachedBytes(b2))[0] != 2 {
				t.Error("puts landed in wrong attachments")
			}
		}
	})
}

func TestDynamicAccessToUnattachedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win := r.WinCreateDynamic(c, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Put(PutFloat64s([]float64{1}), 1, dynBaseStart, Scalar(Float64))
			win.UnlockAll()
		}
		c.Barrier()
	})
}

func TestDynamicDetachMakesAccessErroneous(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win := r.WinCreateDynamic(c, nil)
		var base int
		if r.Rank() == 1 {
			base = win.Attach(make([]byte, 16))
			win.Detach(base)
			c.Send(0, 1, PutInt64(int64(base)))
		} else {
			data, _ := c.Recv(1, 1)
			base = int(GetInt64(data))
		}
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Put(PutFloat64s([]float64{1}), 1, base, Scalar(Float64))
			win.UnlockAll()
		}
		c.Barrier()
	})
}

func TestAttachOnNormalWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win, _ := r.WinAllocateRegion(r.CommWorld(), 8, nil)
		win.Attach(make([]byte, 8))
	})
}

func TestDetachUnattachedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win := r.WinCreateDynamic(r.CommWorld(), nil)
		win.Detach(dynBaseStart)
	})
}

func TestAttachRegionSharesMemory(t *testing.T) {
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		// Expose part of an allocated window's memory through a dynamic
		// window too: both views must alias.
		w1, buf := r.WinAllocateRegion(c, 32, nil)
		dyn := r.WinCreateDynamic(c, nil)
		var base int
		if r.Rank() == 1 {
			base = dyn.AttachRegion(w1.Region())
			c.Send(0, 1, PutInt64(int64(base)))
		} else {
			data, _ := c.Recv(1, 1)
			base = int(GetInt64(data))
		}
		c.Barrier()
		if r.Rank() == 0 {
			dyn.LockAll(AssertNone)
			dyn.Put(PutFloat64s([]float64{6}), 1, base+8, Scalar(Float64))
			dyn.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 1 && GetFloat64s(buf)[1] != 6 {
			t.Errorf("aliased write not visible: %v", GetFloat64s(buf))
		}
	})
}
