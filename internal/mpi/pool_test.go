package mpi

import (
	"testing"

	"repro/internal/sim"
)

// --- Size-class boundaries ---------------------------------------------

// TestClassForBoundaries probes classFor at, one below, and one above
// every class edge: class c holds buffers of capacity 1<<(poolMinShift+c),
// so n = edge must map to c, n = edge+1 must spill into c+1, and the
// lower edge (previous class's capacity) must still belong to c-1.
func TestClassForBoundaries(t *testing.T) {
	if got := classFor(0); got != -1 {
		t.Errorf("classFor(0) = %d, want -1 (zero-length is not pooled)", got)
	}
	if got := classFor(-8); got != -1 {
		t.Errorf("classFor(-8) = %d, want -1", got)
	}
	if got := classFor(1); got != 0 {
		t.Errorf("classFor(1) = %d, want 0 (smallest class)", got)
	}
	for c := 0; c < poolClasses; c++ {
		edge := 1 << (poolMinShift + c)
		if got := classFor(edge); got != c {
			t.Errorf("classFor(%d) = %d, want %d (at class edge)", edge, got, c)
		}
		if got := classFor(edge - 1); got != c && !(c > 0 && got == c-1 && edge-1 == 1<<(poolMinShift+c-1)) {
			// edge-1 belongs to class c unless it IS the previous edge.
			if c == 0 || edge-1 != 1<<(poolMinShift+c-1) {
				t.Errorf("classFor(%d) = %d, want %d (one below class edge)", edge-1, got, c)
			}
		}
		if c+1 < poolClasses {
			if got := classFor(edge + 1); got != c+1 {
				t.Errorf("classFor(%d) = %d, want %d (one above class edge)", edge+1, got, c+1)
			}
		}
	}
	if got := classFor(poolMaxSize); got != poolClasses-1 {
		t.Errorf("classFor(poolMaxSize) = %d, want %d", got, poolClasses-1)
	}
	if got := classFor(poolMaxSize + 1); got != -1 {
		t.Errorf("classFor(poolMaxSize+1) = %d, want -1 (oversize falls to the GC)", got)
	}
}

// TestPoolGetPutBoundaries exercises get/put at the class edges: exact
// length, class-sized capacity, round-tripping through the free list,
// and the zero-length / oversize escapes.
func TestPoolGetPutBoundaries(t *testing.T) {
	var p bufPool

	if b := p.get(0); b != nil {
		t.Fatalf("get(0) = %v, want nil", b)
	}
	if g, pu := p.gets, p.puts; g != 0 || pu != 0 {
		t.Fatalf("zero-length get counted: gets=%d puts=%d", g, pu)
	}
	p.put(nil)
	if p.puts != 0 {
		t.Fatalf("put(nil) counted: puts=%d", p.puts)
	}

	for _, n := range []int{1, 15, 16, 17, 4096, 4097, poolMaxSize} {
		b := p.get(n)
		if len(b) != n {
			t.Fatalf("get(%d): len = %d", n, len(b))
		}
		want := 1 << (poolMinShift + classFor(n))
		if cap(b) != want {
			t.Fatalf("get(%d): cap = %d, want class size %d", n, cap(b), want)
		}
		p.put(b)
		b2 := p.get(n)
		if &b[0] != &b2[0] {
			t.Fatalf("get(%d) after put did not reuse the pooled buffer", n)
		}
		p.put(b2)
	}

	// Oversize: allocated exactly, never retained, but fully counted so
	// the leak audit still balances.
	big := p.get(poolMaxSize + 1)
	if len(big) != poolMaxSize+1 {
		t.Fatalf("oversize get: len = %d", len(big))
	}
	p.put(big)
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after balanced get/put", p.Outstanding())
	}
}

// TestPoolClassLimits pins the byte-budgeted retention policy: small
// classes retain many buffers (budget/classSize), large classes fall
// back to the flat floor.
func TestPoolClassLimits(t *testing.T) {
	if got := classLimit(0); got != poolClassBytes>>poolMinShift {
		t.Errorf("classLimit(0) = %d, want %d", got, poolClassBytes>>poolMinShift)
	}
	if got := classLimit(poolClasses - 1); got != poolClassMinRetain {
		t.Errorf("classLimit(max) = %d, want floor %d", got, poolClassMinRetain)
	}
	for c := 0; c < poolClasses; c++ {
		if got := classLimit(c); got < poolClassMinRetain {
			t.Errorf("classLimit(%d) = %d below floor", c, got)
		}
	}
}

// --- Leak audit --------------------------------------------------------

// auditPool asserts every pooled buffer handed out during the run came
// back: gets == puts once the world has quiesced. A nonzero difference
// means an error or early-return path dropped a payload on the floor.
func auditPool(t *testing.T, w *World, label string) {
	t.Helper()
	if n := w.PoolOutstanding(); n != 0 {
		t.Errorf("%s: %d pooled buffers leaked (gets != puts)", label, n)
	}
}

// TestPoolNoLeakAfterRMAWorkload runs every op kind through lock and
// fence epochs and asserts the pool balances.
func TestPoolNoLeakAfterRMAWorkload(t *testing.T) {
	w := mustRun(t, testConfig(4, 4), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 256, nil)
		c.Barrier()
		if r.Rank() != 0 {
			win.Lock(0, LockShared, AssertNone)
			win.Put(PutFloat64s([]float64{1, 2}), 0, 0, TypeOf(Float64, 2))
			dst := make([]byte, 16)
			win.Get(dst, 0, 0, TypeOf(Float64, 2))
			win.Accumulate(PutFloat64s([]float64{1}), 0, 16, Scalar(Float64), OpSum)
			got := make([]byte, 8)
			win.GetAccumulate(PutFloat64s([]float64{2}), got, 0, 16, Scalar(Float64), OpSum)
			win.FetchAndOp(PutFloat64s([]float64{1}), got, 0, 24, Float64, OpSum)
			win.CompareAndSwap(PutFloat64s([]float64{0}), PutFloat64s([]float64{9}), got, 0, 32, Float64)
			win.Unlock(0)
		}
		c.Barrier()
		win.Fence(AssertNone)
		if r.Rank() == 1 {
			win.Put(PutFloat64s([]float64{7}), 2, 0, Scalar(Float64))
		}
		win.Fence(AssertNone)
		win.Free()
	})
	auditPool(t, w, "rma workload")
}

// TestPoolNoLeakOnRangeError drives the ErrRMARange early return in
// issue (op dropped before send) and asserts nothing pooled leaks.
func TestPoolNoLeakOnRangeError(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Errors = ErrorsReturn
	var raised bool
	w := mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 32, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.Lock(1, LockShared, AssertNone)
			// Displacement outside the 32-byte target window.
			win.Put(PutFloat64s([]float64{1}), 1, 64, Scalar(Float64))
			if err := r.Err(); err != nil && err.Class == ErrRMARange {
				raised = true
			}
			win.Unlock(1)
		}
		c.Barrier()
		win.Free()
	})
	if !raised {
		t.Fatal("range error never raised; the early-return path was not covered")
	}
	auditPool(t, w, "range error")
}

// TestPoolNoLeakOnCreditTimeout drives the ErrBacklog early return
// (credit window exhausted past its timeout under ErrorsReturn) and
// asserts dropped ops released everything they held.
func TestPoolNoLeakOnCreditTimeout(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Errors = ErrorsReturn
	cfg.Flow = &FlowConfig{Credits: 1, Timeout: 20 * sim.Microsecond}
	var drops int64
	w := mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			// Rank 1 computes, providing no progress: with one credit the
			// second op times out waiting for the first's ack.
			win.LockAll(AssertNone)
			for i := 0; i < 16; i++ {
				win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			}
			win.UnlockAll()
			drops = r.Stats().BacklogDropped
			c.Send(1, 3, nil)
		} else {
			r.Compute(500 * sim.Microsecond)
			c.Recv(0, 3)
		}
		c.Barrier()
		win.Free()
	})
	if drops == 0 {
		t.Fatal("no op was ever dropped on credit timeout; the early-return path was not covered")
	}
	auditPool(t, w, "credit timeout")
}

// TestPoolNoLeakAfterFlushHeavyWorkload asserts the leak audit holds for
// a full experiment-shaped run: many ranks, lockall epochs, flushes.
func TestPoolNoLeakAfterFlushHeavyWorkload(t *testing.T) {
	w := mustRun(t, testConfig(8, 4), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 128, nil)
		c.Barrier()
		win.LockAll(AssertNone)
		for round := 0; round < 4; round++ {
			for tgt := 0; tgt < c.Size(); tgt++ {
				if tgt == r.Rank() {
					continue
				}
				win.Accumulate(PutFloat64s([]float64{1}), tgt, 0, Scalar(Float64), OpSum)
			}
			win.FlushAll()
		}
		win.UnlockAll()
		c.Barrier()
		win.Free()
	})
	auditPool(t, w, "flush-heavy workload")
}
