package mpi

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// OpKind enumerates RMA communication operations.
type OpKind int

// RMA operation kinds.
const (
	KindPut OpKind = iota
	KindGet
	KindAcc
	KindGetAcc
	KindFetchOp
	KindCAS
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case KindPut:
		return "PUT"
	case KindGet:
		return "GET"
	case KindAcc:
		return "ACC"
	case KindGetAcc:
		return "GET_ACC"
	case KindFetchOp:
		return "FETCH_OP"
	case KindCAS:
		return "CAS"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// isWrite reports whether the op modifies target memory.
func (k OpKind) isWrite() bool { return k != KindGet }

// isAtomicFamily reports whether MPI guarantees per-element atomicity
// and same-origin ordering for this kind (the accumulate family,
// MPI-3 §11.7.1).
func (k OpKind) isAtomicFamily() bool {
	return k == KindAcc || k == KindGetAcc || k == KindFetchOp || k == KindCAS
}

// opPhase tracks where an rmaOp is in its scheduled lifecycle, so a
// single Runner implementation (Step) can serve every stage. Each stage
// is scheduled at most once and the phases advance strictly, which is
// what lets one op be its own event payload with no per-stage closure.
type opPhase uint8

const (
	opPhaseNone    opPhase = iota
	opPhaseArrive          // software AM crossing the wire to the target NIC
	opPhaseHW              // hardware put/get applying at arrival
	opPhaseSvcDone         // target pipeline finished servicing
	opPhaseAck             // completion ack crossing back to the origin
)

// rmaOp is one in-flight RMA operation.
type rmaOp struct {
	win    *winGlobal
	kind   OpKind
	origin int // comm rank
	target int
	disp   int
	dt     Datatype
	op     Op
	data   []byte // packed origin payload (put/acc/getacc/fao src; cas new value)
	cmp    []byte // cas compare value (pooled copy)
	dst    []byte // origin result destination (get/getacc/fao/cas)
	result []byte // captured at apply time, delivered at ack

	excl bool // origin held an exclusive lock on the target when issuing
	pscw bool // issued within a PSCW access epoch
	seq  int64

	phase   opPhase
	arrived sim.Time // NIC delivery time at the target (software AM path)

	// Wire-chain bookkeeping (see targetState.wireHead): while crossing
	// the wire the op may be queued behind earlier ops of its channel
	// instead of holding its own heap event.
	wireNext *rmaOp
	wireTS   *targetState
	evSeq    uint64 // event seq reserved at send time

	pending *sim.CompletionSet // origin-side ack tracking (flush)
	req     *RMARequest        // request-based op handle (Rput/Rget), or nil
	credit  *creditChan        // flow-control credit held, or nil

	// Reliability bookkeeping (fault plans only).
	applied bool    // took effect at a target exactly once
	relPkt  *packet // current packet carrying the op

	// Service bookkeeping for the validator.
	svcStart, svcEnd sim.Time
	svcOwner         int // world rank of the servicing engine; -1 for NIC
}

// Step implements sim.Runner: it advances the op through whichever
// lifecycle stage was scheduled. Dispatching the op itself instead of a
// closure keeps the steady-state message path allocation-free.
func (o *rmaOp) Step() {
	switch o.phase {
	case opPhaseArrive:
		o.promoteWire()
		o.win.rankOf(o.target).engine.deliver(o)
	case opPhaseHW:
		o.promoteWire()
		o.applyHardware(o.win.rankOf(o.target))
	case opPhaseSvcDone:
		if o.win.w.ranks[o.svcOwner].eng.Now() != o.svcEnd {
			// Stale completion: the op was submitted to a rank that died
			// with this event still queued, then failed over and
			// resubmitted to a replacement engine (overwriting svcOwner
			// and svcEnd). Only the current submission's completion —
			// the one scheduled at o.svcEnd — may apply the op; letting
			// the orphaned event through would apply it early, against
			// the replacement's accounting, and out of stream order.
			return
		}
		e := &o.win.w.ranks[o.svcOwner].engine
		e.noteDepth(-1)
		o.applyAndAck()
	case opPhaseAck:
		o.ackDelivered()
	default:
		panic(fmt.Sprintf("mpi: rmaOp.Step in phase %d", o.phase))
	}
}

// bytes returns the payload size that determines processing and wire
// cost.
func (o *rmaOp) bytes() int { return o.dt.Size() }

func (o *rmaOp) contiguous() bool { return o.dt.Contiguous() }

// hardwareEligible reports whether this op runs on the simulated NIC
// without target CPU: contiguous put/get on platforms with hardware RMA.
// Accumulates and noncontiguous transfers are always software, matching
// both evaluation platforms in the paper.
func (o *rmaOp) hardwareEligible() bool {
	if o.kind != KindPut && o.kind != KindGet {
		return false
	}
	return o.win.w.net.HardwareEligible(o.dt.Contiguous())
}

// wireOutBytes is the request payload on the wire origin->target.
func (o *rmaOp) wireOutBytes() int {
	if o.kind == KindGet {
		return 16 // request header only
	}
	return o.bytes()
}

// ackBytes is the response payload target->origin.
func (o *rmaOp) ackBytes() int {
	switch o.kind {
	case KindGet, KindGetAcc:
		return o.bytes()
	case KindFetchOp, KindCAS:
		return o.dt.Basic.Size()
	default:
		return 0 // completion ack only
	}
}

// --- Issue path (origin side) ----------------------------------------

// newOp fetches a zeroed rmaOp from the issuing rank's freelist (or the
// heap when recycling is off) and fills the fields common to every kind.
func (w *Win) newOp(kind OpKind, target, disp int, dt Datatype, op Op) *rmaOp {
	o := w.r.getOp()
	o.kind, o.target, o.disp, o.dt, o.op = kind, target, disp, dt, op
	return o
}

// Put implements Window.
func (w *Win) Put(src []byte, target int, disp int, dt Datatype) {
	o := w.newOp(KindPut, target, disp, dt, OpReplace)
	o.data = src
	w.issue(o)
}

// Get implements Window.
func (w *Win) Get(dst []byte, target int, disp int, dt Datatype) {
	o := w.newOp(KindGet, target, disp, dt, OpNoOp)
	o.dst = dst
	w.issue(o)
}

// Accumulate implements Window.
func (w *Win) Accumulate(src []byte, target int, disp int, dt Datatype, op Op) {
	o := w.newOp(KindAcc, target, disp, dt, op)
	o.data = src
	w.issue(o)
}

// GetAccumulate implements Window.
func (w *Win) GetAccumulate(src, result []byte, target int, disp int, dt Datatype, op Op) {
	o := w.newOp(KindGetAcc, target, disp, dt, op)
	o.data, o.dst = src, result
	w.issue(o)
}

// FetchAndOp implements Window.
func (w *Win) FetchAndOp(src, result []byte, target int, disp int, b BasicType, op Op) {
	o := w.newOp(KindFetchOp, target, disp, Scalar(b), op)
	o.data, o.dst = src, result
	w.issue(o)
}

// CompareAndSwap implements Window.
func (w *Win) CompareAndSwap(compare, origin, result []byte, target int, disp int, b BasicType) {
	o := w.newOp(KindCAS, target, disp, Scalar(b), OpReplace)
	o.data, o.cmp, o.dst = origin, compare, result
	w.issue(o)
}

// issue validates the epoch, charges origin-side cost, and either sends
// the op or queues it behind a pending lazy lock acquisition.
func (w *Win) issue(op *rmaOp) {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	r.proc.Advance(r.issueCost())

	if err := op.dt.Validate(); err != nil {
		panic(err)
	}
	if !w.g.dynamic {
		// Dynamic windows cannot be bounds-checked at the origin; the
		// target resolves the address at apply time.
		reg := w.g.regions[op.target]
		if op.disp < 0 || op.disp+op.dt.Extent() > reg.n {
			if tw := w.g.comm.ranks[op.target]; op.disp >= 0 &&
				w.g.w.FaultsEnabled() && w.g.w.ranks[tw].failed {
				// The target crashed before it could expose this window,
				// so the region on record is the empty one a dead member
				// contributes. A real origin cannot see that: the
				// operation goes on the wire, is never acknowledged, and
				// fails over to a surviving server once the detector
				// confirms the death. Suppress the bounds check only the
				// omniscient simulator could perform and let the
				// reliable transport recover the op.
			} else {
				r.raise(ErrRMARange, "mpi: %v at disp %d extent %d outside %d-byte window of target %d",
					op.kind, op.disp, op.dt.Extent(), reg.n, op.target)
				// ErrorsReturn: drop the op before any accounting. data/cmp
				// still alias the caller's buffers here, so there is
				// nothing pooled to release — just the op header.
				r.putOp(op)
				return
			}
		}
	}

	if f := w.g.w.flow; f != nil {
		// Acquire a flow-control credit toward the target, blocking in
		// virtual time while the window is exhausted. We are inside an
		// MPI call here, so self-targeted AMs keep draining while the
		// proc is parked.
		ch := f.acquire(r, w.g.comm.ranks[op.target])
		if ch == nil {
			// Credit timeout under ErrorsReturn (ErrBacklog raised):
			// drop before any accounting so flushes cannot hang on the
			// op, but still notify the observer so layered in-flight
			// counters do not leak.
			if w.g.onOpDone != nil {
				w.g.onOpDone(w.me, op.target, op.disp)
			}
			r.putOp(op)
			return
		}
		op.credit = ch
	}

	op.win = w.g
	op.origin = w.me
	w.opSeq++
	op.seq = w.opSeq
	if op.data != nil {
		// Pool the packed payload copy: it lives exactly until the op's
		// terminal state (opTerminal), where it is recycled.
		n := op.dt.Size()
		buf := r.pool.get(n)
		copy(buf, op.data[:n])
		op.data = buf
	}
	if op.cmp != nil {
		// The compare value is snapshotted through the pool too, so the
		// whole op (header and payloads) recycles without garbage.
		n := len(op.cmp)
		buf := r.pool.get(n)
		copy(buf, op.cmp)
		op.cmp = buf
	}
	r.stats.OpsIssued++

	var queueOn *targetState
	switch {
	case w.access != nil: // PSCW access epoch
		if !inGroup(w.access.group, op.target) {
			panic(fmt.Sprintf("mpi: PSCW op to target %d outside access group", op.target))
		}
		op.pscw = true
		w.access.issued[op.target]++
		op.pending = &w.target(op.target).pending
	case w.fenceActive:
		op.pending = &w.target(op.target).pending
	default: // passive target
		ts := w.lookupTarget(op.target)
		if ts == nil || !ts.locked {
			if w.lockAll {
				ts = w.target(op.target)
				ts.locked = true
				ts.viaAll = true
				ts.lock = LockShared
			} else {
				panic(fmt.Sprintf("mpi: %v to target %d without an epoch", op.kind, op.target))
			}
		}
		op.excl = ts.lock == LockExclusive
		op.pending = &ts.pending
		if !ts.requested {
			w.requestLock(op.target, ts)
		}
		if !ts.granted.Done() {
			queueOn = ts
		}
	}

	// Count the op as outstanding at issue time, so that flushes and
	// fences also wait for operations still queued behind a pending
	// lazy lock acquisition. The window-global count is fence machinery,
	// unusable (and unused — Fence panics) under sharded execution.
	if w.g.w.sharded == nil {
		w.g.inflight.Add(1)
	}
	op.pending.Add(1)
	if op.req != nil {
		op.req.pending.Add(1)
	}
	if queueOn != nil {
		queueOn.queued = append(queueOn.queued, op)
		return
	}
	w.send(op)
}

func inGroup(group []int, t int) bool {
	for _, g := range group {
		if g == t {
			return true
		}
	}
	return false
}

// send puts the op on the wire. Runs in the origin's simulation context;
// in-flight accounting happened at issue. Delivery is FIFO per
// (origin, target) channel, as on a connection-oriented transport.
func (w *Win) send(op *rmaOp) {
	g := w.g
	r := w.r
	eng := r.eng
	targetWorld := g.comm.ranks[op.target]
	wire := r.transferTo(targetWorld, op.wireOutBytes())
	ts := w.target(op.target)
	arrival := eng.Now().Add(wire)
	if arrival <= ts.lastArrival {
		arrival = ts.lastArrival + 1
	}
	ts.lastArrival = arrival
	if rel := r.w.rel; rel != nil {
		rel.sendOp(op, arrival)
		return
	}
	// The op is its own arrival event (see Step), so putting it on the
	// wire allocates nothing.
	op.arrived = arrival
	if op.hardwareEligible() {
		op.phase = opPhaseHW
	} else {
		op.phase = opPhaseArrive
	}
	if tr := g.rankOf(op.target); tr.eng != eng {
		// Cross-shard: the op travels through the mailbox system instead
		// of the wire chain (whose chained heap events are an engine-local
		// optimization). The injection key reserved on the origin engine
		// keeps channel FIFO order; arrival monotonicity was enforced
		// above.
		r.w.sharded.group.InjectRun(eng, tr.eng, arrival, op)
		return
	}
	if eng.FastPathsDisabled() {
		eng.AtRun(arrival, op)
		return
	}
	// Wire chaining: channel arrivals are strictly monotone, so only the
	// channel's head op holds a heap event; later ops queue behind it
	// with their event seq reserved here, at the instant an eager
	// schedule would have assigned it (keeping the timeline identical).
	op.evSeq = eng.ReserveSeq()
	op.wireTS = ts
	if ts.wireTail != nil {
		ts.wireTail.wireNext = op
		ts.wireTail = op
		return
	}
	ts.wireHead, ts.wireTail = op, op
	eng.AtRunReserved(arrival, op.evSeq, op)
}

// promoteWire unlinks the op from its channel's wire chain as its
// arrival event fires, scheduling the successor's arrival under the seq
// reserved at send time. No-op for ops that never chained (reliable
// transport, fast paths disabled).
func (o *rmaOp) promoteWire() {
	ts := o.wireTS
	if ts == nil {
		return
	}
	o.wireTS = nil
	next := o.wireNext
	o.wireNext = nil
	ts.wireHead = next
	if next == nil {
		ts.wireTail = nil
		return
	}
	// The chain only ever forms on same-engine channels (cross-shard ops
	// go through the mailboxes), so the origin's engine is the one whose
	// seq was reserved and whose heap we are standing in.
	o.win.rankOf(o.origin).eng.AtRunReserved(next.arrived, next.evSeq, next)
}

// --- Apply path (target side) ----------------------------------------

// targetRegion resolves the op's destination memory: the static region
// for normal windows, the containing attachment for dynamic ones. ok is
// false when a dynamic resolution failed under ErrorsReturn (the error
// was already raised on the target rank).
func (o *rmaOp) targetRegion() (Region, int, bool) {
	if o.win.dynamic {
		return o.win.resolveDynamic(o.target, o.disp, o.dt.Extent())
	}
	return o.win.regions[o.target], o.disp, true
}

// apply mutates the target memory. Runs in engine context at the moment
// the op takes effect. It reports whether the op resolved and took
// effect; on false (dynamic resolution failure under ErrorsReturn) the
// op is a no-op but must still be acknowledged so the origin does not
// hang.
func (o *rmaOp) apply() bool {
	reg, disp, ok := o.targetRegion()
	o.applied = true
	if !ok {
		return false
	}
	mem := reg.seg.data
	base := reg.off + disp
	pool := o.win.rankOf(o.target).pool
	switch o.kind {
	case KindPut:
		accumulate(OpReplace, o.dt, mem, base, o.data)
	case KindGet:
		o.result = gatherPooled(o.dt, mem, base, pool)
	case KindAcc:
		accumulate(o.op, o.dt, mem, base, o.data)
	case KindGetAcc:
		o.result = gatherPooled(o.dt, mem, base, pool)
		accumulate(o.op, o.dt, mem, base, o.data)
	case KindFetchOp:
		o.result = gatherPooled(o.dt, mem, base, pool)
		accumulate(o.op, o.dt, mem, base, o.data)
	case KindCAS:
		es := o.dt.Basic.Size()
		o.result = pool.get(es)
		copy(o.result, mem[base:base+es])
		if bytesEqual(o.result, o.cmp[:es]) {
			copy(mem[base:base+es], o.data[:es])
		}
	}
	if o.kind.isWrite() && o.win.w.guards != nil {
		// Journal the post-image for any guard over this memory (app-rank
		// rollback-replay recovery; guards exist only under app-crash plans).
		o.win.w.journalWrite(reg.seg, base, o.dt.Extent())
	}
	if o.pscw {
		p := o.win.pscwState()
		if p.applied[o.target] == nil {
			p.applied[o.target] = map[int]int64{}
		}
		p.applied[o.target][o.origin]++
		o.win.sigFor(o.target).Broadcast()
	}
	return true
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyAndAck is called when the target's progress engine finishes
// servicing a software AM: apply, then send the completion ack (with any
// result data) back to the origin. The op's service interval and owner
// were recorded by the engine at submission.
func (o *rmaOp) applyAndAck() {
	if o.applied {
		// Duplicate service (a retransmission raced the original
		// through a second delivery): exactly-once semantics.
		return
	}
	if o.svcOwner >= 0 && o.win.w.ranks[o.svcOwner].failed {
		// The servicing rank died between queuing and service; the op
		// is recovered through stream failover instead.
		return
	}
	ok := o.apply()
	if v := o.win.w.validator; v != nil && ok {
		reg, disp, _ := o.targetRegion()
		v.recordApply(o, reg, disp, o.svcOwner)
	}
	if o.win.w.sharded == nil {
		o.win.inflight.Done()
	}
	o.ack()
}

// applyHardware is the NIC path: apply at arrival with no target CPU.
func (o *rmaOp) applyHardware(tr *Rank) {
	if o.applied {
		return
	}
	now := tr.eng.Now()
	o.svcStart, o.svcEnd, o.svcOwner = now, now, -1
	ok := o.apply()
	tr.stats.HardwareOps++
	tr.stats.BytesIn += int64(o.bytes())
	if v := o.win.w.validator; v != nil && ok {
		reg, disp, _ := o.targetRegion()
		v.recordApply(o, reg, disp, -1)
	}
	if t := o.win.w.tracer; t.Enabled() {
		t.RecordService(trace.Service{
			Rank: -1, Origin: o.win.comm.ranks[o.origin], Kind: o.kind.String(),
			Bytes: o.bytes(), Arrived: now, Start: now, End: now, Hardware: true,
		})
	}
	if o.win.w.sharded == nil {
		o.win.inflight.Done()
	}
	o.ack()
}

// ack returns the completion (and result payload) to the origin.
func (o *rmaOp) ack() {
	g := o.win
	originWorld := g.comm.ranks[o.origin]
	targetWorld := g.comm.ranks[o.target]
	tr := g.w.ranks[targetWorld]
	wire := tr.transferTo(originWorld, o.ackBytes())
	if rel := g.w.rel; rel != nil {
		rel.sendAck(o.relPkt, wire, true)
		return
	}
	o.phase = opPhaseAck
	or := g.w.ranks[originWorld]
	if or.eng != tr.eng {
		g.w.sharded.group.InjectRun(tr.eng, or.eng, tr.eng.Now().Add(wire), o)
		return
	}
	tr.eng.AfterRun(wire, o)
}

// ackDelivered lands the completion ack at the origin: result data is
// copied out, flush/request trackers release, and the op reaches its
// terminal state.
func (o *rmaOp) ackDelivered() {
	if o.dst != nil && o.result != nil {
		copy(o.dst, o.result)
	}
	o.pending.Done()
	if o.req != nil {
		o.req.pending.Done()
	}
	o.win.opTerminal(o)
}

// opTerminal runs exactly once per op that passed issue-time
// validation, when it reaches its terminal state (ack delivered at the
// origin, abandoned by the transport, or dropped on credit timeout):
// it returns the flow-control credit, recycles the op's pooled
// buffers, and notifies the op observer. Runs in engine context.
func (g *winGlobal) opTerminal(o *rmaOp) {
	// Buffers recycle into the origin's pool: terminal state is reached
	// in the origin's engine context, whose pool is the only one legal to
	// touch. A result buffer drawn from the target's pool migrates here —
	// harmless for a size-classed freelist, and the outstanding counters
	// still balance in aggregate (see World.PoolOutstanding).
	or := g.rankOf(o.origin)
	if o.credit != nil {
		o.credit.release()
		o.credit = nil
	}
	if o.data != nil {
		or.pool.put(o.data)
		o.data = nil
	}
	if o.cmp != nil {
		or.pool.put(o.cmp)
		o.cmp = nil
	}
	if o.result != nil {
		or.pool.put(o.result)
		o.result = nil
	}
	if g.onOpDone != nil {
		g.onOpDone(o.origin, o.target, o.disp)
	}
	// Recycle the header last: putOp zeroes the op. Under a fault plan
	// recycling is disabled (packets hold op pointers past this point).
	or.putOp(o)
}
