package mpi

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// testConfig builds a world config with enough nodes for n ranks at ppn.
func testConfig(n, ppn int) Config {
	nodes := (n + ppn - 1) / ppn
	return Config{
		Machine: cluster.Machine{Nodes: nodes, CoresPerNode: 24, NUMAPerNode: 2},
		N:       n,
		PPN:     ppn,
		Net:     netmodel.CrayXC30(),
		Seed:    7,
	}
}

func mustRun(t *testing.T, cfg Config, main func(r *Rank)) *World {
	t.Helper()
	w, err := Run(cfg, main)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return w
}

func TestSendRecvBasic(t *testing.T) {
	var got []byte
	var st Status
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 0 {
			c.Send(1, 42, []byte("hello"))
		} else {
			got, st = c.Recv(0, 42)
		}
	})
	if string(got) != "hello" || st.Source != 0 || st.Tag != 42 {
		t.Fatalf("got %q, status %+v", got, st)
	}
}

func TestRecvBeforeSendBlocks(t *testing.T) {
	var recvDone sim.Time
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 0 {
			r.Compute(50 * sim.Microsecond)
			c.Send(1, 1, []byte("x"))
		} else {
			c.Recv(0, 1)
			recvDone = r.Now()
		}
	})
	if recvDone < sim.Time(50*sim.Microsecond) {
		t.Fatalf("recv completed at %v, before the send was issued", recvDone)
	}
}

func TestRecvWildcards(t *testing.T) {
	var srcs []int
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		switch r.Rank() {
		case 0:
			for i := 0; i < 2; i++ {
				_, st := c.Recv(AnySource, AnyTag)
				srcs = append(srcs, st.Source)
			}
		default:
			r.Compute(sim.Duration(r.Rank()) * sim.Microsecond)
			c.Send(0, 100+r.Rank(), []byte{byte(r.Rank())})
		}
	})
	if len(srcs) != 2 {
		t.Fatalf("received %d messages", len(srcs))
	}
	// Rank 1 computes less, so its message arrives first.
	if srcs[0] != 1 || srcs[1] != 2 {
		t.Fatalf("srcs = %v", srcs)
	}
}

func TestRecvTagSelectivity(t *testing.T) {
	var first, second Status
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 0 {
			c.Send(1, 5, []byte("five"))
			c.Send(1, 6, []byte("six"))
		} else {
			// Receive tag 6 first even though tag 5 arrives first.
			_, first = c.Recv(0, 6)
			_, second = c.Recv(0, 5)
		}
	})
	if first.Tag != 6 || second.Tag != 5 {
		t.Fatalf("tags = %d, %d", first.Tag, second.Tag)
	}
}

func TestMessagesDoNotCrossCommunicators(t *testing.T) {
	var gotTag int
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		dup := c.Dup()
		if r.Rank() == 0 {
			c.Send(1, 9, []byte("world"))
			dup.Send(1, 9, []byte("dup"))
		} else {
			data, st := dup.Recv(0, 9)
			if string(data) != "dup" {
				t.Errorf("dup comm got %q", data)
			}
			gotTag = st.Tag
			data, _ = c.Recv(0, 9)
			if string(data) != "world" {
				t.Errorf("world comm got %q", data)
			}
		}
	})
	if gotTag != 9 {
		t.Fatalf("tag = %d", gotTag)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	exits := make([]sim.Time, 4)
	mustRun(t, testConfig(4, 4), func(r *Rank) {
		c := r.CommWorld()
		r.Compute(sim.Duration(10*r.Rank()) * sim.Microsecond)
		c.Barrier()
		exits[r.Rank()] = r.Now()
	})
	// Everyone leaves at the same instant, no earlier than the slowest
	// arrival (30us).
	for i := 1; i < 4; i++ {
		if exits[i] != exits[0] {
			t.Fatalf("exits = %v", exits)
		}
	}
	if exits[0] < sim.Time(30*sim.Microsecond) {
		t.Fatalf("barrier exited at %v before slowest arrival", exits[0])
	}
}

func TestBcast(t *testing.T) {
	vals := make([][]byte, 3)
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		var data []byte
		if r.Rank() == 1 {
			data = []byte("payload")
		}
		vals[r.Rank()] = c.Bcast(1, data)
	})
	for i, v := range vals {
		if string(v) != "payload" {
			t.Fatalf("rank %d got %q", i, v)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	results := make([][]float64, 4)
	mustRun(t, testConfig(4, 4), func(r *Rank) {
		c := r.CommWorld()
		results[r.Rank()] = c.AllreduceFloat64([]float64{float64(r.Rank()), 1}, OpSum)
	})
	for i, res := range results {
		if res[0] != 6 || res[1] != 4 {
			t.Fatalf("rank %d: %v", i, res)
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	var res []float64
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		out := c.AllreduceFloat64([]float64{float64(r.Rank() * r.Rank())}, OpMax)
		if r.Rank() == 0 {
			res = out
		}
	})
	if res[0] != 4 {
		t.Fatalf("max = %v", res)
	}
}

func TestAllgatherInt(t *testing.T) {
	var out []int
	mustRun(t, testConfig(4, 4), func(r *Rank) {
		got := r.CommWorld().AllgatherInt(r.Rank() * 10)
		if r.Rank() == 2 {
			out = got
		}
	})
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("allgather = %v", out)
		}
	}
}

func TestSplitByParity(t *testing.T) {
	type info struct{ rank, size int }
	infos := make([]info, 6)
	mustRun(t, testConfig(6, 6), func(r *Rank) {
		c := r.CommWorld()
		sub := c.Split(r.Rank()%2, r.Rank())
		infos[r.Rank()] = info{sub.Rank(), sub.Size()}
		// World rank translation must be consistent.
		if sub.WorldRank(sub.Rank()) != r.Rank() {
			t.Errorf("rank %d: WorldRank round trip failed", r.Rank())
		}
	})
	for wr, in := range infos {
		if in.size != 3 || in.rank != wr/2 {
			t.Fatalf("rank %d: %+v", wr, in)
		}
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		color := 0
		if r.Rank() == 2 {
			color = -1 // MPI_UNDEFINED
		}
		sub := c.Split(color, 0)
		if r.Rank() == 2 {
			if sub != nil {
				t.Error("undefined color returned a comm")
			}
		} else if sub.Size() != 2 {
			t.Errorf("size = %d", sub.Size())
		}
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	ranks := make([]int, 4)
	mustRun(t, testConfig(4, 4), func(r *Rank) {
		c := r.CommWorld()
		// Reverse order by key.
		sub := c.Split(0, -r.Rank())
		ranks[r.Rank()] = sub.Rank()
	})
	want := []int{3, 2, 1, 0}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestDupIsIndependent(t *testing.T) {
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		d := c.Dup()
		if d.ID() == c.ID() {
			t.Error("dup shares comm ID")
		}
		if d.Size() != c.Size() || d.Rank() != c.Rank() {
			t.Error("dup changed rank/size")
		}
	})
}

func TestCommAccessors(t *testing.T) {
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		if cr, ok := c.CommRankOf(r.Rank()); !ok || cr != r.Rank() {
			t.Error("CommRankOf world identity failed")
		}
		if _, ok := c.CommRankOf(99); ok {
			t.Error("CommRankOf accepted non-member")
		}
		g := c.Group()
		if len(g) != 3 || g[2] != 2 {
			t.Errorf("Group = %v", g)
		}
		if c.String() == "" {
			t.Error("empty comm string")
		}
	})
}

func TestManyRanksBarrierScales(t *testing.T) {
	const n = 64
	count := 0
	mustRun(t, testConfig(n, 16), func(r *Rank) {
		c := r.CommWorld()
		for i := 0; i < 3; i++ {
			c.Barrier()
		}
		count++
	})
	if count != n {
		t.Fatalf("count = %d", count)
	}
}

func TestStatsMessagesSent(t *testing.T) {
	w := mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(1, i, nil)
			}
		} else {
			for i := 0; i < 5; i++ {
				c.Recv(0, i)
			}
		}
	})
	if got := w.RankByID(0).Stats().MessagesSent; got != 5 {
		t.Fatalf("MessagesSent = %d", got)
	}
}

func TestWorldConfigErrors(t *testing.T) {
	if _, err := NewWorld(Config{N: 2, PPN: 2}); err == nil {
		t.Error("nil Net accepted")
	}
	cfg := testConfig(2, 2)
	cfg.N = 100 // exceeds machine
	if _, err := NewWorld(cfg); err == nil {
		t.Error("oversized world accepted")
	}
	bad := testConfig(2, 2)
	bad.Net = &netmodel.Params{Name: "bad", ThreadSafety: 0, ThreadAM: 0}
	if _, err := NewWorld(bad); err == nil {
		t.Error("invalid net accepted")
	}
}

func TestProgressModeString(t *testing.T) {
	for m, want := range map[ProgressMode]string{
		ProgressNone: "none", ProgressThread: "thread", ProgressInterrupt: "interrupt",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestCommFromGroup(t *testing.T) {
	mustRun(t, testConfig(6, 6), func(r *Rank) {
		// Only ranks 1, 3, 5 participate — no other rank calls anything.
		if r.Rank()%2 == 0 {
			return
		}
		g := r.CommFromGroup([]int{5, 1, 3}) // order-insensitive
		if g.Size() != 3 {
			t.Errorf("size = %d", g.Size())
		}
		if g.WorldRank(0) != 1 || g.WorldRank(2) != 5 {
			t.Errorf("membership order wrong: %v", g.Group())
		}
		// Collectives work over the group alone.
		sum := g.AllreduceFloat64([]float64{float64(r.Rank())}, OpSum)
		if sum[0] != 9 {
			t.Errorf("sum = %v", sum)
		}
		// Repeated creation yields distinct, matched instances.
		g2 := r.CommFromGroup([]int{1, 3, 5})
		if g2.ID() == g.ID() {
			t.Error("second instance shares comm ID")
		}
		g2.Barrier()
	})
}

func TestCommFromGroupP2P(t *testing.T) {
	mustRun(t, testConfig(4, 4), func(r *Rank) {
		if r.Rank() == 0 || r.Rank() == 3 {
			g := r.CommFromGroup([]int{0, 3})
			if r.Rank() == 0 {
				g.Send(1, 7, []byte("grp"))
			} else {
				data, st := g.Recv(0, 7)
				if string(data) != "grp" || st.Source != 0 {
					t.Errorf("got %q from %d", data, st.Source)
				}
			}
		}
	})
}

func TestWorldSummaryAggregates(t *testing.T) {
	w := mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			for i := 0; i < 3; i++ {
				win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			}
			win.UnlockAll()
			c.Send(1, 1, nil)
		} else {
			c.Recv(0, 1)
		}
	})
	s := w.Summary()
	if s.Ranks != 2 || s.OpsIssued != 3 || s.SoftwareAMs != 3 || s.MessagesSent != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
	rank, ams := w.BusiestRank()
	if rank != 1 || ams != 3 {
		t.Fatalf("busiest = %d/%d", rank, ams)
	}
}

func TestDeterministicWorldRuns(t *testing.T) {
	run := func() string {
		var out string
		mustRun(t, testConfig(4, 4), func(r *Rank) {
			c := r.CommWorld()
			c.Barrier()
			if r.Rank() == 0 {
				out = fmt.Sprintf("%v", r.Now())
			}
		})
		return out
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %s vs %s", a, b)
	}
}
