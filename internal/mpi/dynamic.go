package mpi

import (
	"fmt"
	"sort"
)

// Dynamic windows (MPI_WIN_CREATE_DYNAMIC + MPI_WIN_ATTACH/DETACH): a
// window with no initial memory; each rank attaches and detaches local
// regions at runtime, and origins address them by the target-assigned
// base "address" (the return of Attach, exchanged out of band exactly
// as real applications exchange attached addresses).
//
// Note the paper's Section II-B: Casper supports only the "allocate"
// model, because sharing user-allocated memory with ghost processes
// needs OS support (XPMEM/SMARTMAP). Accordingly, dynamic windows exist
// only in the base runtime; core.Process deliberately does not
// intercept them.

// attachment is one attached region in a rank's dynamic address space.
type attachment struct {
	base int
	reg  Region
}

// WinCreateDynamic creates a dynamic window over comm
// (MPI_WIN_CREATE_DYNAMIC).
func (r *Rank) WinCreateDynamic(c *Comm, info Info) *Win {
	w := r.winCollective(c, Region{}, info, r.w.net.CreateWinCost(c.Size()))
	w.g.dynamic = true
	if w.g.attached == nil {
		w.g.attached = make([][]attachment, len(c.g.ranks))
		w.g.nextBase = make([]int, len(c.g.ranks))
		for i := range w.g.nextBase {
			w.g.nextBase[i] = dynBaseStart
		}
	}
	return w
}

// dynBaseStart keeps attached "addresses" away from zero so that a
// zero displacement is never silently valid.
const dynBaseStart = 0x1000

// Attach exposes local memory in the dynamic window (MPI_WIN_ATTACH)
// and returns its base address for remote access. Local operation.
func (w *Win) Attach(buf []byte) int {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	if !w.g.dynamic {
		r.raise(ErrRMAAttach, "mpi: Attach on a non-dynamic window")
		return 0
	}
	seg := r.w.newSegment(len(buf))
	copy(seg.data, buf)
	reg := Region{seg: seg, off: 0, n: len(buf)}
	base := w.g.nextBase[w.me]
	w.g.nextBase[w.me] += (len(buf)+MaxBasicSize-1)/MaxBasicSize*MaxBasicSize + MaxBasicSize
	as := &w.g.attached[w.me]
	*as = append(*as, attachment{base: base, reg: reg})
	sort.Slice(*as, func(i, j int) bool { return (*as)[i].base < (*as)[j].base })
	return base
}

// AttachRegion attaches an existing region (memory already managed by
// the runtime, e.g. from another window's allocation) without copying.
func (w *Win) AttachRegion(reg Region) int {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	if !w.g.dynamic {
		r.raise(ErrRMAAttach, "mpi: AttachRegion on a non-dynamic window")
		return 0
	}
	base := w.g.nextBase[w.me]
	w.g.nextBase[w.me] += (reg.n+MaxBasicSize-1)/MaxBasicSize*MaxBasicSize + MaxBasicSize
	as := &w.g.attached[w.me]
	*as = append(*as, attachment{base: base, reg: reg})
	sort.Slice(*as, func(i, j int) bool { return (*as)[i].base < (*as)[j].base })
	return base
}

// AttachedBytes returns the memory attached at base on the calling
// rank (for load/store access and verification).
func (w *Win) AttachedBytes(base int) []byte {
	for _, a := range w.g.attached[w.me] {
		if a.base == base {
			return a.reg.Bytes()
		}
	}
	panic(fmt.Sprintf("mpi: no attachment at base %#x", base))
}

// Detach removes the attachment at base (MPI_WIN_DETACH). Operations
// arriving for detached memory are erroneous and panic, as real MPI
// would corrupt or crash.
func (w *Win) Detach(base int) {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	as := &w.g.attached[w.me]
	for i, a := range *as {
		if a.base == base {
			*as = append((*as)[:i], (*as)[i+1:]...)
			return
		}
	}
	r.raise(ErrRMAAttach, "mpi: Detach of unattached base %#x", base)
}

// resolveDynamic maps a target displacement to the attached region
// containing [disp, disp+extent). Runs target-side at apply time — the
// origin cannot bounds-check a dynamic window. Under ErrorsReturn the
// error is raised on the target rank and ok=false is returned; the op
// becomes a no-op (but is still acknowledged).
func (g *winGlobal) resolveDynamic(target, disp, extent int) (Region, int, bool) {
	for _, a := range g.attached[target] {
		if disp >= a.base && disp+extent <= a.base+a.reg.n {
			return a.reg, disp - a.base, true
		}
	}
	g.rankOf(target).raise(ErrRMARange,
		"mpi: dynamic-window access at [%#x,%#x) on rank %d hits no attached memory",
		disp, disp+extent, g.comm.ranks[target])
	return Region{}, 0, false
}
