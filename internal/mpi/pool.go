package mpi

// bufPool is a size-classed free list for the transient byte buffers of
// the RMA message path: the packed origin payload copied at issue time
// and the result buffer gathered at apply time. Both have a precisely
// bounded lifetime — from issue to the op's terminal state — so they
// recycle through the pool instead of pressuring the garbage collector
// once per operation.
//
// The pool is per-World: a world runs on one goroutine (the strict
// alternation of the simulation engine), so no locking is needed, and
// parallel sweep runs in separate worlds never share buffers. Buffers
// are handed out at exact request length over power-of-two capacity
// classes; callers always overwrite the full length, so stale contents
// can never leak into results.
type bufPool struct {
	classes [poolClasses][][]byte

	// gets/puts count buffers handed out and returned. Their difference
	// is the number of live (leaked, if the world is idle) buffers —
	// the leak audit in pool_test.go asserts it reaches zero after every
	// experiment. Zero-length gets return nil and count as neither.
	gets, puts int64
}

// Outstanding returns gets - puts: pooled buffers handed out and not yet
// returned. After a world has fully quiesced this must be zero, or an
// error/early-return path dropped a buffer on the floor.
func (p *bufPool) Outstanding() int64 { return p.gets - p.puts }

const (
	poolMinShift = 4 // smallest class: 16 bytes
	poolClasses  = 17
	poolMaxSize  = 1 << (poolMinShift + poolClasses - 1) // 1 MiB

	// Retention is byte-budgeted per class rather than a flat count: an
	// epoch flush returns thousands of same-class buffers at once, and a
	// flat cap makes the next issue burst miss the pool for all but the
	// first few. Small classes may retain many buffers cheaply; large
	// classes are bounded by the byte budget.
	poolClassMinRetain = 256     // floor, covers the largest classes
	poolClassBytes     = 1 << 22 // ~4 MiB retained per class
)

// classLimit returns how many buffers class c may retain.
func classLimit(c int) int {
	limit := poolClassBytes >> (poolMinShift + c)
	if limit < poolClassMinRetain {
		limit = poolClassMinRetain
	}
	return limit
}

// classFor returns the class index whose capacity is the smallest
// power-of-two >= n, or -1 when n is outside the pooled range.
func classFor(n int) int {
	if n <= 0 || n > poolMaxSize {
		return -1
	}
	c := 0
	for size := 1 << poolMinShift; size < n; size <<= 1 {
		c++
	}
	return c
}

// get returns a buffer of length n. Contents are unspecified — the
// caller must overwrite all n bytes.
func (p *bufPool) get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		if n <= 0 {
			return nil
		}
		p.gets++
		return make([]byte, n)
	}
	p.gets++
	free := p.classes[c]
	if len(free) == 0 {
		return make([]byte, n, 1<<(poolMinShift+c))
	}
	buf := free[len(free)-1]
	free[len(free)-1] = nil
	p.classes[c] = free[:len(free)-1]
	return buf[:n]
}

// put recycles a buffer obtained from get. Buffers whose capacity is
// not an exact class size (or nil) are dropped to the garbage
// collector; full classes likewise.
func (p *bufPool) put(b []byte) {
	if b == nil {
		return
	}
	p.puts++
	c := classFor(cap(b))
	if c < 0 || cap(b) != 1<<(poolMinShift+c) {
		return
	}
	if len(p.classes[c]) >= classLimit(c) {
		return
	}
	p.classes[c] = append(p.classes[c], b)
}
