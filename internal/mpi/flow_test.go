package mpi

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// creditStorm is the flow-control stress shape: three origins each
// fire ops accumulates at rank 0 while it computes (providing no
// progress), so issued AMs pile up in its queue until it finally
// parks in MPI and drains them. It returns the world and the value
// rank 0 observed after every origin finished.
func creditStorm(t *testing.T, cfg Config, ops int) (*World, float64) {
	t.Helper()
	var sum float64
	w := mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			r.Compute(200 * sim.Microsecond)
			for i := 1; i < cfg.N; i++ {
				c.Recv(i, 7)
			}
			sum = GetFloat64s(buf)[0]
		} else {
			win.LockAll(AssertNone)
			for i := 0; i < ops; i++ {
				win.Accumulate(PutFloat64s([]float64{1}), 0, 0, Scalar(Float64), OpSum)
			}
			win.UnlockAll()
			c.Send(0, 7, nil)
		}
		c.Barrier()
		win.Free()
	})
	return w, sum
}

func TestCreditWindowBoundsQueueDepth(t *testing.T) {
	const ops = 64
	unbounded, usum := creditStorm(t, testConfig(4, 4), ops)

	cfg := testConfig(4, 4)
	cfg.Flow = &FlowConfig{Credits: 2}
	bounded, bsum := creditStorm(t, cfg, ops)

	// 3 origins x 2 credits: the busy target's queue can never hold
	// more than 6 operations, while the unprotected run must exceed
	// that for the comparison to mean anything.
	const bound = 3 * 2
	if d := unbounded.Summary().PeakQueueDepth; d <= bound {
		t.Fatalf("storm too small: unprotected peak depth %d within bound %d", d, bound)
	}
	if d := bounded.Summary().PeakQueueDepth; d > bound {
		t.Fatalf("credit window leaked: peak depth %d > bound %d", d, bound)
	}
	if s := bounded.Summary().CreditStalls; s == 0 {
		t.Fatal("no origin ever stalled on a credit; the window was never exercised")
	}
	// Backpressure delays operations, it must not lose them.
	if want := float64(3 * ops); usum != want || bsum != want {
		t.Fatalf("sums = %v (unbounded) / %v (bounded), want %v", usum, bsum, want)
	}
}

func TestCreditTimeoutRaisesErrBacklog(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Errors = ErrorsReturn
	cfg.Flow = &FlowConfig{Credits: 1, Timeout: 20 * sim.Microsecond}
	var (
		sum      float64
		errClass ErrClass
		errMsg   string
		drops    int64
	)
	mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() == 0 {
			r.Compute(300 * sim.Microsecond)
			c.Recv(1, 7)
			sum = GetFloat64s(buf)[0]
		} else {
			win.LockAll(AssertNone)
			for i := 0; i < 5; i++ {
				win.Accumulate(PutFloat64s([]float64{1}), 0, 0, Scalar(Float64), OpSum)
			}
			if err := r.Err(); err != nil {
				errClass, errMsg = err.Class, err.Error()
				r.ClearErr()
			}
			win.UnlockAll()
			drops = r.Stats().BacklogDropped
			c.Send(0, 7, nil)
		}
		c.Barrier()
		win.Free()
	})
	if errClass != ErrBacklog {
		t.Fatalf("expected MPI_ERR_BACKLOG, got class %v (%q)", errClass, errMsg)
	}
	if !strings.Contains(errMsg, "credit") {
		t.Fatalf("backlog error does not explain itself: %q", errMsg)
	}
	// Op 1 takes the only credit; ops 2-5 each wait out the 20us
	// timeout against a 300us-busy target and are dropped.
	if drops != 4 {
		t.Fatalf("BacklogDropped = %d, want 4", drops)
	}
	if sum != 1 {
		t.Fatalf("target saw %v, want exactly the one undropped op", sum)
	}
}

func TestCreditsReturnedOnConfirmedDeadTarget(t *testing.T) {
	// An op in flight to a rank that crashes recoverably holds its
	// flow-control credit; once the failure detector confirms the death,
	// the credit must be returned eagerly so the origin is not starved
	// for the whole downtime. The proof is temporal: with a one-credit
	// window, the second op can only be issued before the revival if the
	// first op's credit came back at confirmation time.
	const crashAt = 50 * sim.Microsecond
	cfg := testConfig(2, 2)
	cfg.Fault = &fault.Plan{
		Seed:       1,
		AppCrashes: []fault.AppCrash{{Rank: 0, At: sim.Time(crashAt)}},
	}
	cfg.Flow = &FlowConfig{Credits: 1}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	w.SetTracer(tr)
	var (
		sum      float64
		issuedAt sim.Time
	)
	w.Launch(func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 0 {
			r.World().TrackHealth([]int{0})
		}
		win, buf := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() == 0 {
			// Busy well past the whole recovery pipeline: op 1 stays
			// unacknowledged (and its credit held) until the detector
			// acts, and the crash freezes this rank mid-compute.
			r.Compute(600 * sim.Microsecond)
			c.Recv(1, 7)
			sum = GetFloat64s(buf)[0]
		} else {
			win.LockAll(AssertNone)
			win.Accumulate(PutFloat64s([]float64{1}), 0, 0, Scalar(Float64), OpSum)
			// Blocks on the window's only credit, held by op 1 in flight
			// to the (soon to be confirmed-dead) target.
			win.Accumulate(PutFloat64s([]float64{1}), 0, 0, Scalar(Float64), OpSum)
			issuedAt = r.Now()
			win.UnlockAll()
			c.Send(0, 7, nil)
		}
		c.Barrier()
		win.Free()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var revivedAt sim.Time
	for _, f := range tr.Faults() {
		if f.Kind == "revive" && f.Rank == 0 {
			revivedAt = f.At
		}
	}
	if revivedAt == 0 {
		t.Fatal("rank 0 was never revived; recovery pipeline did not run")
	}
	if issuedAt >= revivedAt {
		t.Fatalf("op 2 issued at %v, after revival at %v: the in-flight op's credit leaked for the whole downtime",
			issuedAt, revivedAt)
	}
	if issuedAt <= sim.Time(crashAt) {
		t.Fatalf("op 2 issued at %v, before the crash at %v: the storm never contended for the credit",
			issuedAt, sim.Time(crashAt))
	}
	s := w.Summary()
	if s.AppRecoveries != 1 {
		t.Fatalf("AppRecoveries = %d, want 1", s.AppRecoveries)
	}
	// Eager return must not lose or double-apply either op.
	if sum != 2 {
		t.Fatalf("target saw %v, want both ops applied exactly once", sum)
	}
}

func TestDeadlockErrorCarriesWaitGraph(t *testing.T) {
	// A hang in a flow-controlled world must come back with the
	// wait-for graph attached, not just a list of parked procs.
	cfg := testConfig(3, 3)
	cfg.Flow = &FlowConfig{}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		c.Barrier()
		switch r.Rank() {
		case 0:
			c.Recv(1, 99) // parked in MPI forever: services AMs but never returns
		case 1:
			// Wins the exclusive lock on rank 0, then blocks holding it.
			win.Lock(0, LockExclusive, AssertNone)
			win.Accumulate(PutFloat64s([]float64{1}), 0, 0, Scalar(Float64), OpSum)
			win.Flush(0)
			c.Recv(2, 99)
		case 2:
			// Queues behind rank 1's exclusive lock and waits forever.
			r.Compute(5 * sim.Microsecond)
			win.Lock(0, LockExclusive, AssertNone)
			win.Accumulate(PutFloat64s([]float64{1}), 0, 0, Scalar(Float64), OpSum)
			win.Flush(0)
		}
	})
	err = w.Run()
	de, ok := err.(*sim.DeadlockError)
	if !ok {
		t.Fatalf("expected deadlock, got %v", err)
	}
	msg := de.Error()
	if !strings.Contains(msg, "wait-for graph") {
		t.Fatalf("deadlock report has no wait-for graph:\n%s", msg)
	}
	if !strings.Contains(msg, "queued behind exclusive lock") {
		t.Fatalf("wait-for graph does not name the blocking lock:\n%s", msg)
	}
}
