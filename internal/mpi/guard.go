package mpi

import "fmt"

// RegionGuard journals every mutation of one guarded window region so a
// crashed owner can be rolled back to its last snapshot and replayed
// forward — the rollback-replay discipline of optimistic simulation
// applied to RMA epochs. The layered runtime (Casper) guards each app
// rank's exposed region, snapshots at epoch closes (fence / unlock /
// complete — the consistency points RMA synchronization mandates), and
// restores on a confirmed recoverable crash.
//
// Two sources mutate a guarded region: remote RMA ops, journaled
// automatically by rmaOp.apply through World.journalWrite, and the
// owner's own local stores through the Go slice, which no hook can see.
// MarkCrash closes that gap at the crash instant: it reconstructs what
// the journal alone would rebuild, diffs it against live memory, and
// journals the difference as local entries. Restore then proves the
// protocol: it scrubs the region, rebuilds snapshot + journal, and
// panics unless the result is bit-identical to the pre-crash bytes.
type RegionGuard struct {
	reg     Region
	snap    []byte // region bytes at the last Snapshot
	entries []redoEntry
}

// redoEntry is one journaled mutation: the post-image a remote RMA op
// left behind, or a crash-time local-store diff run.
type redoEntry struct {
	off   int // offset within the guarded region
	post  []byte
	local bool // owner's local store, captured by MarkCrash
}

// GuardRegion registers a guard over reg and takes its initial
// snapshot. Guards are only consulted when the fault plan schedules
// AppCrashes; a world without them never builds the map and the RMA
// apply path stays on the seed code.
func (w *World) GuardRegion(reg Region) *RegionGuard {
	g := &RegionGuard{reg: reg, snap: make([]byte, reg.n)}
	copy(g.snap, reg.Bytes())
	if w.guards == nil {
		w.guards = make(map[*segment][]*RegionGuard)
	}
	w.guards[reg.seg] = append(w.guards[reg.seg], g)
	return g
}

// journalWrite records the post-image of a mutation of seg's bytes
// [base, base+n) into every guard whose region overlaps it. Called from
// rmaOp.apply after the mutation, only when guards exist.
func (w *World) journalWrite(seg *segment, base, n int) {
	for _, g := range w.guards[seg] {
		lo, hi := base, base+n
		if lo < g.reg.off {
			lo = g.reg.off
		}
		if end := g.reg.off + g.reg.n; hi > end {
			hi = end
		}
		if lo >= hi {
			continue
		}
		g.entries = append(g.entries, redoEntry{
			off:  lo - g.reg.off,
			post: append([]byte(nil), seg.data[lo:hi]...),
		})
	}
}

// Snapshot folds the journal into a fresh snapshot of the live region —
// the epoch-close consistency point — and returns the snapshot size in
// bytes (what the owning ghost ships to its buddy).
func (g *RegionGuard) Snapshot() int {
	copy(g.snap, g.reg.Bytes())
	g.entries = g.entries[:0]
	return len(g.snap)
}

// MarkCrash captures the owner's un-journaled local stores at the crash
// instant: it rebuilds snapshot + journal into a scratch copy, diffs it
// against live memory, and appends each differing run as a local entry.
// After MarkCrash the journal fully determines the live bytes.
func (g *RegionGuard) MarkCrash() {
	scratch := append([]byte(nil), g.snap...)
	for _, e := range g.entries {
		copy(scratch[e.off:], e.post)
	}
	live := g.reg.Bytes()
	for i := 0; i < len(live); {
		if scratch[i] == live[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(live) && scratch[j] != live[j] {
			j++
		}
		g.entries = append(g.entries, redoEntry{
			off:   i,
			post:  append([]byte(nil), live[i:j]...),
			local: true,
		})
		i = j
	}
}

// Restore rolls the region back to the last snapshot and replays the
// journal, returning the snapshot bytes restored and the remote RMA ops
// replayed. The region is first scrubbed so the rebuild cannot lean on
// surviving bytes, then the result is verified bit-identical to the
// pre-crash state — divergence means the journal protocol is broken,
// which is a panic, not a recovery.
func (g *RegionGuard) Restore() (bytes, replayed int) {
	live := g.reg.Bytes()
	want := append([]byte(nil), live...)
	for i := range live {
		live[i] = 0xDB
	}
	copy(live, g.snap)
	for _, e := range g.entries {
		copy(live[e.off:], e.post)
		if !e.local {
			replayed++
		}
	}
	for i := range live {
		if live[i] != want[i] {
			panic(fmt.Sprintf("mpi: region guard replay diverged at offset %d: rebuilt %#02x, lost state %#02x",
				i, live[i], want[i]))
		}
	}
	g.entries = g.entries[:0]
	copy(g.snap, live)
	return len(g.snap), replayed
}
