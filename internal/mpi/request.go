package mpi

import (
	"repro/internal/sim"
)

// Request is the handle of a nonblocking operation (MPI_Request). Wait
// or Test it for completion.
type Request struct {
	r    *Rank
	done *sim.Completion
	recv *postedRecv // nil for sends
	kind string
}

// Done reports whether the operation has completed (a non-consuming
// peek).
func (q *Request) Done() bool { return q.done.Done() }

// Wait blocks until the operation completes and returns the received
// data and status (both zero values for sends). Corresponds to
// MPI_Wait. While waiting the rank is inside MPI, so software RMA
// targeted at it progresses.
func (q *Request) Wait() ([]byte, Status) {
	q.r.mpiEnter()
	defer q.r.mpiLeave()
	q.done.Await(q.r.proc, "MPI_Wait("+q.kind+")")
	return q.result()
}

// Test returns (data, status, true) if complete, or ok=false without
// blocking. Corresponds to MPI_Test.
func (q *Request) Test() ([]byte, Status, bool) {
	q.r.mpiEnter()
	defer q.r.mpiLeave()
	if !q.done.Done() {
		return nil, Status{}, false
	}
	data, st := q.result()
	return data, st, true
}

func (q *Request) result() ([]byte, Status) {
	if q.recv != nil && q.recv.msg != nil {
		m := q.recv.msg
		return m.data, Status{Source: m.src, Tag: m.tag}
	}
	return nil, Status{}
}

// WaitAll waits for every request in order (MPI_Waitall).
func WaitAll(reqs ...*Request) {
	for _, q := range reqs {
		q.Wait()
	}
}

// Isend starts a nonblocking send (MPI_Isend). Under this runtime's
// eager-send model the request completes at issue; the handle keeps
// call sites faithful to MPI.
func (c *Comm) Isend(dest, tag int, data []byte) *Request {
	c.Send(dest, tag, data)
	done := &sim.Completion{}
	done.Complete()
	return &Request{r: c.r, done: done, kind: "isend"}
}

// Irecv posts a nonblocking receive (MPI_Irecv). Note the rank is NOT
// inside MPI while the request is pending: posting a receive and then
// computing does not give incoming RMA any progress — which is why
// applications cannot substitute Irecv for asynchronous progress.
func (c *Comm) Irecv(src, tag int) *Request {
	r := c.r
	r.mpiEnter()
	defer r.mpiLeave()
	mb := &r.mailbox
	for i, m := range mb.msgs {
		if match(c.g.id, src, tag, m) {
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			pr := &postedRecv{msg: m}
			pr.done.Complete()
			return &Request{r: r, done: &pr.done, recv: pr, kind: "irecv"}
		}
	}
	pr := &postedRecv{commID: c.g.id, src: src, tag: tag}
	mb.recvs = append(mb.recvs, pr)
	return &Request{r: r, done: &pr.done, recv: pr, kind: "irecv"}
}

// Probe blocks until a matching message is available without receiving
// it, returning its status (MPI_Probe).
func (c *Comm) Probe(src, tag int) Status {
	r := c.r
	r.mpiEnter()
	defer r.mpiLeave()
	for {
		if m := c.findUnexpected(src, tag); m != nil {
			return Status{Source: m.src, Tag: m.tag}
		}
		r.mailbox.probeSig.Wait(r.proc, "MPI_Probe")
	}
}

// Iprobe checks for a matching message without blocking (MPI_Iprobe).
func (c *Comm) Iprobe(src, tag int) (Status, bool) {
	r := c.r
	r.mpiEnter()
	defer r.mpiLeave()
	if m := c.findUnexpected(src, tag); m != nil {
		return Status{Source: m.src, Tag: m.tag}, true
	}
	return Status{}, false
}

func (c *Comm) findUnexpected(src, tag int) *inMsg {
	for _, m := range c.r.mailbox.msgs {
		if match(c.g.id, src, tag, m) {
			return m
		}
	}
	return nil
}

// Sendrecv performs a combined send and receive (MPI_Sendrecv),
// avoiding the deadlock of two blocking calls ordered oppositely.
func (c *Comm) Sendrecv(dest, sendTag int, data []byte, src, recvTag int) ([]byte, Status) {
	c.Send(dest, sendTag, data)
	return c.Recv(src, recvTag)
}
