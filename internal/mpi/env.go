package mpi

import "repro/internal/sim"

// Info carries string key/value hints to window creation, mirroring
// MPI_Info. Casper defines the "epochs_used" key (Section III-A); the
// base runtime ignores unknown keys.
type Info map[string]string

// Get returns the value for key, or def if absent.
func (i Info) Get(key, def string) string {
	if i == nil {
		return def
	}
	if v, ok := i[key]; ok {
		return v
	}
	return def
}

// Assert is a bitmask of MPI epoch assertions. They are the standard
// MPI-3 asserts Casper reuses for its optimizations (Section III-C).
type Assert int

// Standard assert flags.
const (
	AssertNone    Assert = 0
	ModeNoPrecede Assert = 1 << iota // no operations precede this fence
	ModeNoSucceed                    // no operations follow this fence
	ModeNoPut                        // no puts into my memory until next fence
	ModeNoStore                      // no local stores since last fence
	ModeNoCheck                      // PSCW: matching is already synchronized
)

// Has reports whether flag is set.
func (a Assert) Has(flag Assert) bool { return a&flag != 0 }

// LockType distinguishes passive-target lock modes.
type LockType int

// Lock modes.
const (
	LockShared LockType = iota
	LockExclusive
)

// String implements fmt.Stringer.
func (l LockType) String() string {
	if l == LockExclusive {
		return "MPI_LOCK_EXCLUSIVE"
	}
	return "MPI_LOCK_SHARED"
}

// Env is the per-process view of the MPI runtime that applications
// program against — the interception surface. The base runtime's *Rank
// implements it directly; Casper wraps a *Rank and returns its own Env
// whose CommWorld is COMM_USER_WORLD and whose windows redirect RMA
// operations to ghost processes, exactly as the PMPI shim does in the
// paper (Section II).
type Env interface {
	// Rank returns this process's rank in the world this Env presents.
	Rank() int
	// Size returns the size of the world this Env presents.
	Size() int
	// CommWorld returns the world communicator of this Env. Under
	// Casper this is COMM_USER_WORLD, not MPI_COMM_WORLD.
	CommWorld() *Comm
	// WinAllocate collectively creates an RMA window of size local
	// bytes over comm, returning the window handle and the local
	// memory. Corresponds to MPI_WIN_ALLOCATE.
	WinAllocate(comm *Comm, size int, info Info) (Window, []byte)
	// Compute consumes d of virtual time in application computation
	// (outside MPI: no progress happens on software RMA targeted at
	// this process, unless an async progress mode provides it).
	Compute(d sim.Duration)
	// Now returns the current virtual time.
	Now() sim.Time
}

// Window is the RMA window handle applications use — the second half of
// the interception surface. All displacement and size arguments are in
// bytes; target ranks are ranks in the window's communicator.
type Window interface {
	// Active-target synchronization.
	Fence(assert Assert)
	Post(group []int, assert Assert)
	Start(group []int, assert Assert)
	Complete()
	Wait()

	// Passive-target synchronization.
	Lock(target int, lock LockType, assert Assert)
	Unlock(target int)
	LockAll(assert Assert)
	UnlockAll()
	Flush(target int)
	FlushAll()
	FlushLocal(target int)
	FlushLocalAll()
	Sync()

	// Communication operations. src/dst are origin-side contiguous
	// buffers; dt describes the target-side layout at byte
	// displacement disp of the target's window memory.
	Put(src []byte, target int, disp int, dt Datatype)
	Get(dst []byte, target int, disp int, dt Datatype)
	RPut(src []byte, target int, disp int, dt Datatype) *RMARequest
	RGet(dst []byte, target int, disp int, dt Datatype) *RMARequest
	Accumulate(src []byte, target int, disp int, dt Datatype, op Op)
	GetAccumulate(src, result []byte, target int, disp int, dt Datatype, op Op)
	FetchAndOp(src, result []byte, target int, disp int, b BasicType, op Op)
	CompareAndSwap(compare, origin, result []byte, target int, disp int, b BasicType)

	// Free releases the window (collective).
	Free()
}

// Compile-time interface checks.
var (
	_ Env    = (*Rank)(nil)
	_ Window = (*Win)(nil)
)
