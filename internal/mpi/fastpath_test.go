package mpi

import (
	"testing"

	"repro/internal/sim"
)

// fastpathWorkload mixes every scheduling shape the run-to-completion
// fast paths touch: computation (inline advance), p2p messaging,
// lock/unlock and fence epochs, flushes, and the full RMA op family.
func fastpathWorkload(r *Rank) {
	c := r.CommWorld()
	win, buf := r.WinAllocate(c, 128, nil)
	c.Barrier()

	r.Compute(3 * sim.Microsecond)
	if r.Rank() == 0 {
		c.Send(1, 9, []byte("ping"))
	} else if r.Rank() == 1 {
		c.Recv(0, 9)
	}

	win.LockAll(AssertNone)
	for tgt := 0; tgt < c.Size(); tgt++ {
		if tgt == r.Rank() {
			continue
		}
		win.Accumulate(PutFloat64s([]float64{1}), tgt, 0, Scalar(Float64), OpSum)
	}
	win.FlushAll()
	win.UnlockAll()

	win.Fence(AssertNone)
	if r.Rank() == 0 {
		win.Put(PutFloat64s([]float64{42}), 1, 8, Scalar(Float64))
		dst := make([]byte, 8)
		win.Get(dst, 1, 0, Scalar(Float64))
	}
	win.Fence(AssertNone)

	c.Barrier()
	_ = buf
	win.Free()
}

// TestFastPathOnOffIdentical is the A/B contract for the
// run-to-completion optimizations: the same workload under
// NoSimFastPath (every event through the heap, every advance through a
// park/resume pair) and under the default fast paths must produce an
// identical summary — same end time, same counters, bit for bit. The
// fast paths elide scheduler mechanics, never scheduling decisions.
func TestFastPathOnOffIdentical(t *testing.T) {
	fast := mustRun(t, testConfig(8, 4), fastpathWorkload)
	if fast.Engine().InlinedAdvances() == 0 {
		t.Fatal("fast-path world never inlined an advance; the A/B comparison is vacuous")
	}

	slowCfg := testConfig(8, 4)
	slowCfg.NoSimFastPath = true
	slow := mustRun(t, slowCfg, fastpathWorkload)
	if slow.Engine().InlinedAdvances() != 0 {
		t.Fatalf("NoSimFastPath world inlined %d advances", slow.Engine().InlinedAdvances())
	}

	a, b := fast.Summary(), slow.Summary()
	// PeakQueueResidency measures scheduler occupancy — exactly what the
	// fast paths exist to reduce — so it is the one summary field allowed
	// to differ between the A/B runs.
	a.PeakQueueResidency, b.PeakQueueResidency = 0, 0
	if a != b {
		t.Fatalf("fast-path run diverged from heap-only run:\nfast: %+v\nslow: %+v", a, b)
	}
	if a, b := fast.Engine().EventsExecuted(), slow.Engine().EventsExecuted(); a != b {
		t.Fatalf("event counts differ: fast %d, slow %d", a, b)
	}
}

// TestFastPathOnOffIdenticalUnderFlowControl repeats the A/B check with
// credit flow control, whose stall/timeout bookkeeping is observed
// between events and is therefore the most fragile consumer of event
// ordering.
func TestFastPathOnOffIdenticalUnderFlowControl(t *testing.T) {
	run := func(off bool) WorldSummary {
		cfg := testConfig(4, 4)
		cfg.NoSimFastPath = off
		cfg.Flow = &FlowConfig{Credits: 2}
		return mustRun(t, cfg, func(r *Rank) {
			c := r.CommWorld()
			win, _ := r.WinAllocate(c, 64, nil)
			c.Barrier()
			if r.Rank() != 0 {
				win.Lock(0, LockShared, AssertNone)
				for i := 0; i < 8; i++ {
					win.Accumulate(PutFloat64s([]float64{1}), 0, 0, Scalar(Float64), OpSum)
				}
				win.Unlock(0)
			} else {
				r.Compute(50 * sim.Microsecond)
			}
			c.Barrier()
			win.Free()
		}).Summary()
	}
	a, b := run(false), run(true)
	a.PeakQueueResidency, b.PeakQueueResidency = 0, 0 // scheduler occupancy, not system state
	if a != b {
		t.Fatalf("flow-control run diverged:\nfast: %+v\nslow: %+v", a, b)
	}
}
