package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// --- Fence ------------------------------------------------------------

// Fence implements Window: MPI_WIN_FENCE. Closing a fence epoch
// guarantees that all operations targeting this process have been
// applied and all operations it issued are complete; the model gates the
// fence barrier on the window's global in-flight count draining (a
// piggybacked completion count, as real implementations do), so the
// origin pays no per-operation ack round trips — which is precisely the
// advantage the base implementation has over Casper's
// flushall+barrier translation (Section III-C1).
func (w *Win) Fence(assert Assert) {
	r := w.r
	if r.w.sharded != nil {
		// The piggybacked in-flight count is a single counter mutated on
		// every op issue and apply — world-global state the shards cannot
		// share. Casper's fence translation (flushall+barrier+sync) does
		// not use it; base-MPI fence workloads need Config.NoShardedSim.
		panic("mpi: MPI_Win_fence is not supported under sharded execution (set Config.NoShardedSim)")
	}
	r.mpiEnter()
	defer r.mpiLeave()
	if !assert.Has(ModeNoPrecede) {
		// While parked here the rank is inside MPI, so AMs targeted at
		// it are serviced — fence drains both directions.
		w.g.inflight.Wait(r.proc, "MPI_Win_fence drain")
	}
	w.c.collective("MPI_Win_fence", nil, w.c.barrierCost(), nil)
	w.fenceActive = !assert.Has(ModeNoSucceed)
}

// --- PSCW -------------------------------------------------------------

// Post implements Window: MPI_WIN_POST, opening an exposure epoch for
// the origins in group (comm ranks). It does not block.
func (w *Win) Post(group []int, assert Assert) {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	if w.exposure != nil {
		panic("mpi: Post with exposure epoch already open")
	}
	w.exposure = &pscwExposure{group: append([]int(nil), group...), assert: assert}
	p := w.g.pscwState()
	if p.expected[w.me] == nil {
		p.expected[w.me] = map[int]int64{}
	}
	for _, o := range w.exposure.group {
		delete(p.expected[w.me], o)
	}
	if !assert.Has(ModeNoCheck) {
		// Notify each origin that this target is posted. The notification
		// runs at the origin's engine: postSeen[origin] and the origin's
		// signal belong to it.
		for _, origin := range w.exposure.group {
			origin := origin
			or := w.g.rankOf(origin)
			wire := r.transferTo(w.g.comm.ranks[origin], 16)
			me := w.me
			sig := w.g.sigFor(origin)
			r.w.schedule(r.eng, or.eng, r.eng.Now().Add(wire), func() {
				if p.postSeen[origin] == nil {
					p.postSeen[origin] = map[int]bool{}
				}
				p.postSeen[origin][me] = true
				sig.Broadcast()
			})
		}
	}
}

// Start implements Window: MPI_WIN_START, opening an access epoch to the
// targets in group. Without ModeNoCheck it blocks until all targets have
// posted.
func (w *Win) Start(group []int, assert Assert) {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	if w.access != nil {
		panic("mpi: Start with access epoch already open")
	}
	w.access = &pscwAccess{group: append([]int(nil), group...), assert: assert,
		issued: map[int]int64{}}
	if !assert.Has(ModeNoCheck) {
		p := w.g.pscwState()
		sig := w.g.sigFor(w.me)
		for {
			ready := true
			for _, t := range w.access.group {
				if p.postSeen[w.me] == nil || !p.postSeen[w.me][t] {
					ready = false
					break
				}
			}
			if ready {
				break
			}
			sig.Wait(r.proc, "MPI_Win_start awaiting posts")
		}
		for _, t := range w.access.group {
			delete(p.postSeen[w.me], t)
		}
	}
}

// Complete implements Window: MPI_WIN_COMPLETE, closing the access
// epoch. It guarantees local completion only; each target learns the
// number of operations to expect.
func (w *Win) Complete() {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	if w.access == nil {
		panic("mpi: Complete without access epoch")
	}
	p := w.g.pscwState()
	for _, t := range w.access.group {
		t := t
		count := w.access.issued[t]
		origin := w.me
		tr := w.g.rankOf(t)
		wire := r.transferTo(w.g.comm.ranks[t], 16)
		sig := w.g.sigFor(t)
		r.w.schedule(r.eng, tr.eng, r.eng.Now().Add(wire), func() {
			if p.expected[t] == nil {
				p.expected[t] = map[int]int64{}
			}
			p.expected[t][origin] = count + 1 // +1 marks "complete received"
			sig.Broadcast()
		})
	}
	w.access = nil
}

// Wait implements Window: MPI_WIN_WAIT, closing the exposure epoch once
// every origin has called Complete and all their operations have been
// applied here.
func (w *Win) Wait() {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	if w.exposure == nil {
		panic("mpi: Wait without exposure epoch")
	}
	p := w.g.pscwState()
	sig := w.g.sigFor(w.me)
	for {
		done := true
		for _, origin := range w.exposure.group {
			exp, ok := p.expected[w.me][origin]
			if !ok {
				done = false
				break
			}
			var applied int64
			if p.applied[w.me] != nil {
				applied = p.applied[w.me][origin]
			}
			if applied < exp-1 {
				done = false
				break
			}
		}
		if done {
			break
		}
		sig.Wait(r.proc, "MPI_Win_wait")
	}
	for _, origin := range w.exposure.group {
		delete(p.expected[w.me], origin)
		if p.applied[w.me] != nil {
			p.applied[w.me][origin] = 0
		}
	}
	w.exposure = nil
}

// --- Passive target ----------------------------------------------------

// Lock implements Window: MPI_WIN_LOCK. With the platform's lazy-lock
// behaviour the acquisition is deferred to the first operation or flush
// (Section III-B: "many MPI implementations might not acquire the lock
// immediately"); a lock to self is acquired eagerly, which MPI requires
// so local load/store access is immediately legal.
func (w *Win) Lock(target int, lock LockType, assert Assert) {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	ts := w.target(target)
	if ts.locked {
		panic(fmt.Sprintf("mpi: nested Lock to target %d (disallowed by MPI)", target))
	}
	ts.locked = true
	ts.viaAll = false
	ts.lock = lock
	if target == w.me || !r.w.net.LockLazy {
		w.requestLock(target, ts)
	}
}

// Unlock implements Window: MPI_WIN_UNLOCK, completing all operations to
// the target and releasing the lock.
func (w *Win) Unlock(target int) {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	ts := w.lookupTarget(target)
	if ts == nil || !ts.locked || ts.viaAll {
		panic(fmt.Sprintf("mpi: Unlock of target %d without Lock", target))
	}
	w.closeTarget(target, ts)
	w.targets[target] = nil
}

// closeTarget finishes the passive epoch to one target: force lock
// acquisition if any op needs it, wait for acks, release the lock.
func (w *Win) closeTarget(target int, ts *targetState) {
	r := w.r
	if ts.requested {
		ts.granted.Await(r.proc, "MPI_Win_unlock awaiting lock grant")
		ts.pending.Wait(r.proc, "MPI_Win_unlock awaiting remote completion")
		// Release travels to the target's lock manager (on its engine).
		mgr := w.g.lockMgr(target)
		origin := w.me
		excl := ts.lock == LockExclusive
		wire := r.transferTo(w.g.comm.ranks[target], 16)
		tr := w.g.rankOf(target)
		r.w.schedule(r.eng, tr.eng, r.eng.Now().Add(wire), func() { mgr.release(origin, excl) })
	}
	ts.locked = false
	ts.requested = false
	ts.granted = sim.Completion{}
}

// LockAll implements Window: MPI_WIN_LOCK_ALL (shared mode on every
// rank). Acquisition is lazy per target.
func (w *Win) LockAll(assert Assert) {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	if w.lockAll {
		panic("mpi: nested LockAll")
	}
	w.lockAll = true
}

// UnlockAll implements Window: MPI_WIN_UNLOCK_ALL.
func (w *Win) UnlockAll() {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	if !w.lockAll {
		panic("mpi: UnlockAll without LockAll")
	}
	for t, ts := range w.targets {
		if ts != nil && ts.locked && ts.viaAll {
			w.closeTarget(t, ts)
			w.targets[t] = nil
		}
	}
	w.lockAll = false
}

// Flush implements Window: MPI_WIN_FLUSH — complete all outstanding
// operations to the target at both origin and target. After a flush the
// lock is necessarily acquired, which opens Casper's
// "static-binding-free" interval (Section III-B-3).
func (w *Win) Flush(target int) {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	ts := w.lookupTarget(target)
	if ts == nil || !ts.locked {
		if w.lockAll {
			return // no ops issued to this target yet; nothing to flush
		}
		panic(fmt.Sprintf("mpi: Flush of target %d without passive epoch", target))
	}
	if ts.requested {
		ts.granted.Await(r.proc, "MPI_Win_flush awaiting lock grant")
	}
	ts.pending.Wait(r.proc, "MPI_Win_flush")
}

// FlushAll implements Window: MPI_WIN_FLUSH_ALL.
func (w *Win) FlushAll() {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	for _, ts := range w.targets {
		if ts == nil || !ts.locked {
			continue
		}
		if ts.requested {
			ts.granted.Await(r.proc, "MPI_Win_flush_all awaiting lock grant")
		}
		ts.pending.Wait(r.proc, "MPI_Win_flush_all")
	}
}

// FlushLocal implements Window: MPI_WIN_FLUSH_LOCAL. Origin buffers are
// snapshotted at issue in this model, so local completion is immediate.
func (w *Win) FlushLocal(target int) {
	w.r.mpiEnter()
	w.r.mpiLeave()
}

// FlushLocalAll implements Window: MPI_WIN_FLUSH_LOCAL_ALL.
func (w *Win) FlushLocalAll() {
	w.r.mpiEnter()
	w.r.mpiLeave()
}

// Sync implements Window: MPI_WIN_SYNC, the memory barrier Casper must
// add to its fence translation (Section III-C1).
func (w *Win) Sync() {
	w.r.mpiEnter()
	w.r.mpiLeave()
}

// Acquire forces acquisition of the (lazily requested) lock on target,
// blocking until it is granted. MPI implementations do this inside
// flush; Casper calls it explicitly so that a flush opens the
// static-binding-free interval on every ghost of the node (III-B-3).
func (w *Win) Acquire(target int) {
	r := w.r
	r.mpiEnter()
	defer r.mpiLeave()
	ts := w.lookupTarget(target)
	if ts == nil || !ts.locked {
		if w.lockAll {
			ts = w.target(target)
			ts.locked = true
			ts.viaAll = true
			ts.lock = LockShared
		} else {
			panic(fmt.Sprintf("mpi: Acquire of target %d without passive epoch", target))
		}
	}
	if !ts.requested {
		w.requestLock(target, ts)
	}
	ts.granted.Await(r.proc, "MPI_Win lock acquire")
}

// requestLock sends the (possibly deferred) lock request to the
// target's lock manager and arranges for ts.granted to complete when the
// grant message returns. Queued operations are released on grant.
func (w *Win) requestLock(target int, ts *targetState) {
	r := w.r
	ts.requested = true
	mgr := w.g.lockMgr(target)
	excl := ts.lock == LockExclusive
	origin := w.me
	var wire sim.Duration
	if target != w.me {
		wire = r.transferTo(w.g.comm.ranks[target], 16)
	}
	tr := w.g.rankOf(target)
	grant := func() {
		// Runs at the target's engine (where the manager arbitrates); the
		// grant delivery travels back to the origin's engine.
		var back sim.Duration
		if target != w.me {
			back = tr.transferTo(w.g.comm.ranks[origin], 16)
		}
		r.w.schedule(tr.eng, r.eng, tr.eng.Now().Add(back), func() {
			ts.granted.Complete()
			queued := ts.queued
			ts.queued = nil
			for _, op := range queued {
				// Re-issue from the origin's window handle; the op
				// already carries all its state.
				w.send(op)
			}
		})
	}
	r.w.schedule(r.eng, tr.eng, r.eng.Now().Add(wire),
		func() { mgr.request(&lockReq{origin: origin, excl: excl, grant: grant}) })
}
