package mpi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
)

// winGlobal is the collective state of one RMA window.
type winGlobal struct {
	id      int
	w       *World
	comm    *commGlobal
	regions []Region // per comm rank: the exposed memory
	info    Info
	// freed is atomic because under sharded execution every member of
	// the MPI_Win_free collective stores it from its own shard
	// goroutine; readers are fault/flow paths and stopped-world
	// diagnostics.
	freed atomic.Bool

	lockMgrs []*lockManager // per comm rank, lazily created

	// inflight counts operations issued on this window that have not
	// yet been applied at their target; fence closing gates on it
	// draining (the target-side completion guarantee of MPI_WIN_FENCE).
	inflight sim.CompletionSet

	// PSCW bookkeeping (allocated lazily; indexes are comm ranks).
	pscw *pscwGlobal

	// Dynamic-window state (MPI_WIN_CREATE_DYNAMIC).
	dynamic  bool
	attached [][]attachment // per comm rank: attached regions by base
	nextBase []int          // per comm rank: next base address

	// reroute, when set, lets stream failover redirect an op whose
	// target crashed: given the comm ranks of origin and the dead
	// target plus the op's displacement, it returns a surviving comm
	// rank exposing the same memory (Casper's same-node ghosts) or
	// ok=false when no replacement exists.
	reroute func(origin, oldTarget, disp int) (newTarget int, ok bool)

	// onOpDone, when set, fires once per RMA op when it reaches its
	// terminal state (acked, abandoned, or dropped for lack of
	// credits), with the op's origin and final target comm ranks and
	// displacement. Layered runtimes use it to track per-origin and
	// per-target in-flight counts.
	onOpDone func(origin, target, disp int)

	handles []*Win // every rank's handle, for diagnostics
}

type pscwGlobal struct {
	postSeen []map[int]bool  // [origin][target] -> post notification received
	expected []map[int]int64 // [target][origin] -> op count announced by Complete
	applied  []map[int]int64 // [target][origin] -> PSCW ops applied so far
	sig      sim.Signal      // broadcast on any of the above changing
	sigs     []sim.Signal    // sharded: per comm-rank signals (see sigFor)
}

// sigFor returns the PSCW wakeup signal of commRank. The serial engine
// shares one signal across the window; sharded execution gives each
// rank its own, touched only from that rank's engine — Post/Complete
// notifications are routed to the destination rank's engine before
// broadcasting, and each rank waits only on its own signal.
func (g *winGlobal) sigFor(commRank int) *sim.Signal {
	p := g.pscwState()
	if g.w.sharded != nil {
		return &p.sigs[commRank]
	}
	return &p.sig
}

func (g *winGlobal) pscwState() *pscwGlobal {
	if g.pscw == nil {
		n := len(g.comm.ranks)
		g.pscw = &pscwGlobal{
			postSeen: make([]map[int]bool, n),
			expected: make([]map[int]int64, n),
			applied:  make([]map[int]int64, n),
		}
	}
	return g.pscw
}

func (g *winGlobal) lockMgr(target int) *lockManager {
	if g.lockMgrs[target] == nil {
		m := &lockManager{}
		// A manager instantiated after its target was confirmed dead
		// starts in dead mode: there is nothing left to arbitrate. A
		// down-recoverable target is not dead — it will resume.
		if tw := g.comm.ranks[target]; g.w.HealthFailed(tw) && !g.w.ranks[tw].down {
			m.dead = true
		}
		g.lockMgrs[target] = m
	}
	return g.lockMgrs[target]
}

// rankOf returns the Rank object of a comm rank of the window.
func (g *winGlobal) rankOf(commRank int) *Rank {
	return g.w.ranks[g.comm.ranks[commRank]]
}

// Win is one rank's handle on an RMA window; it implements Window.
type Win struct {
	g  *winGlobal
	c  *Comm // this rank's handle on the window communicator
	r  *Rank
	me int // comm rank

	fenceActive bool
	lockAll     bool
	access      *pscwAccess   // open access epoch (Start..Complete)
	exposure    *pscwExposure // open exposure epoch (Post..Wait)
	opSeq       int64

	// targets holds the per-target passive-epoch state, indexed by comm
	// rank. Allocated on first use (most handles of most windows never
	// issue), nil entries mean "no state" — a flat slice keeps the
	// per-op lookup off the map hash path.
	targets []*targetState
}

type pscwAccess struct {
	group  []int
	assert Assert
	issued map[int]int64 // per target: ops issued this epoch
}

type pscwExposure struct {
	group  []int
	assert Assert
}

// targetState is the origin-side per-target state of a passive epoch.
type targetState struct {
	lock      LockType
	locked    bool // Lock() called (or implied by LockAll)
	viaAll    bool
	requested bool
	granted   sim.Completion
	queued    []*rmaOp
	pending   sim.CompletionSet // issued ops not yet remotely acked

	// lastArrival enforces FIFO delivery on the (origin, target)
	// channel: a small message must not overtake a large one, or
	// same-origin accumulate ordering (MPI-3 §11.7.1) would break.
	lastArrival sim.Time

	// wireHead/wireTail chain the ops currently crossing the wire on
	// this channel. Arrivals are strictly monotone (see lastArrival), so
	// only the head op keeps an arrival event in the engine's heap; each
	// arrival promotes its successor under the seq reserved at send time
	// (see Win.send and rmaOp.promoteWire). Heap residency per channel
	// is O(1) instead of one entry per op on the wire.
	wireHead *rmaOp
	wireTail *rmaOp
}

func (w *Win) target(t int) *targetState {
	if t < 0 || t >= len(w.g.comm.ranks) {
		panic(fmt.Sprintf("mpi: window target %d out of range [0,%d)", t, len(w.g.comm.ranks)))
	}
	if w.targets == nil {
		w.targets = make([]*targetState, len(w.g.comm.ranks))
	}
	ts := w.targets[t]
	if ts == nil {
		ts = &targetState{}
		w.targets[t] = ts
	}
	return ts
}

// lookupTarget returns the existing per-target state, or nil when none
// has been created (no allocation, no bounds panic).
func (w *Win) lookupTarget(t int) *targetState {
	if t < 0 || t >= len(w.targets) {
		return nil
	}
	return w.targets[t]
}

// Region returns this rank's exposed memory region (used by Casper when
// building overlapping windows over the same memory).
func (w *Win) Region() Region { return w.g.regions[w.me] }

// RegionOf returns the exposed region of any comm rank. Within a node
// this corresponds to shared-memory visibility; Casper uses it to build
// its offset translation.
func (w *Win) RegionOf(commRank int) Region { return w.g.regions[commRank] }

// Comm returns this rank's handle on the window communicator.
func (w *Win) Comm() *Comm { return w.c }

// Info returns the info hints the window was created with.
func (w *Win) Info() Info { return w.g.info }

// SetReroute installs the window's failover hook (see winGlobal.reroute).
// The hook is window-global; any handle may install it.
func (w *Win) SetReroute(fn func(origin, oldTarget, disp int) (int, bool)) {
	w.g.reroute = fn
}

// SetOpObserver installs the window's op-terminal hook (see
// winGlobal.onOpDone). The hook is window-global; any handle may
// install it. It runs in engine context — it must not park.
func (w *Win) SetOpObserver(fn func(origin, target, disp int)) {
	w.g.onOpDone = fn
}

// newWin builds the per-rank handle.
func newWin(g *winGlobal, r *Rank) *Win {
	me, ok := g.comm.index[r.id]
	if !ok {
		panic("mpi: rank not in window comm")
	}
	win := &Win{g: g, c: &Comm{g: g.comm, me: me, r: r}, r: r, me: me}
	if s := g.w.sharded; s != nil {
		// Members return from the creation collective on their own
		// engines, in the same window.
		s.mu.Lock()
		g.handles = append(g.handles, win)
		s.mu.Unlock()
	} else {
		g.handles = append(g.handles, win)
	}
	return win
}

// winCollective performs the collective creation rendezvous: each rank
// contributes its region; the last arrival assembles the winGlobal.
func (r *Rank) winCollective(c *Comm, reg Region, info Info, cost sim.Duration) *Win {
	res := c.collective("MPI_Win_create", reg, cost, func(vals []interface{}) interface{} {
		w := c.g.w
		g := &winGlobal{
			w:        w,
			comm:     c.g,
			regions:  make([]Region, len(vals)),
			info:     info,
			lockMgrs: make([]*lockManager, len(vals)),
		}
		if s := w.sharded; s != nil {
			s.mu.Lock()
			w.winSeq++
			g.id = w.winSeq
			w.wins = append(w.wins, g)
			s.mu.Unlock()
			// Pre-create everything the epoch code otherwise allocates
			// lazily, so no two shards race to create it mid-window.
			// Dead-mode lock managers are a fault-plan concern, and fault
			// plans never run sharded.
			for i := range g.lockMgrs {
				g.lockMgrs[i] = &lockManager{}
			}
			n := len(c.g.ranks)
			g.pscw = &pscwGlobal{
				postSeen: make([]map[int]bool, n),
				expected: make([]map[int]int64, n),
				applied:  make([]map[int]int64, n),
				sigs:     make([]sim.Signal, n),
			}
			for i := 0; i < n; i++ {
				g.pscw.postSeen[i] = map[int]bool{}
				g.pscw.expected[i] = map[int]int64{}
				g.pscw.applied[i] = map[int]int64{}
			}
		} else {
			w.winSeq++
			g.id = w.winSeq
			w.wins = append(w.wins, g)
		}
		for i, v := range vals {
			if reg, ok := v.(Region); ok { // crashed member exposes nothing
				g.regions[i] = reg
			}
		}
		return g
	})
	return newWin(res.(*winGlobal), r)
}

// WinAllocate implements Env: MPI_WIN_ALLOCATE. Each rank allocates size
// bytes of remotely accessible memory.
func (r *Rank) WinAllocate(c *Comm, size int, info Info) (Window, []byte) {
	w, buf := r.WinAllocateRegion(c, size, info)
	return w, buf
}

// WinAllocateRegion is WinAllocate returning the concrete *Win (for
// layers that need the full handle, like Casper).
func (r *Rank) WinAllocateRegion(c *Comm, size int, info Info) (*Win, []byte) {
	if size < 0 {
		panic(fmt.Sprintf("mpi: WinAllocate size %d", size))
	}
	seg := r.w.newSegment(size)
	reg := Region{seg: seg, off: 0, n: size}
	w := r.winCollective(c, reg, info, r.w.net.AllocWinCost(c.Size()))
	return w, reg.Bytes()
}

// WinAllocateShared implements MPI_WIN_ALLOCATE_SHARED: the communicator
// must be intra-node; the ranks' memories are consecutive regions of one
// shared segment, so every rank (including Casper ghosts) can address
// every other rank's portion directly.
func (r *Rank) WinAllocateShared(c *Comm, size int, info Info) (*Win, []byte) {
	if size < 0 {
		panic(fmt.Sprintf("mpi: WinAllocateShared size %d", size))
	}
	// Verify the communicator is node-local.
	p := r.w.place
	for _, wr := range c.g.ranks {
		if !p.SameNode(wr, c.g.ranks[0]) {
			panic("mpi: WinAllocateShared on a communicator spanning nodes")
		}
	}
	// Region offsets are aligned to the largest basic datatype so that
	// Casper's segment binding never splits an element between ghosts
	// (Section III-B-2 relies on data alignment).
	sizes := c.AllgatherInt(size)
	total := 0
	offs := make([]int, len(sizes))
	for i, s := range sizes {
		offs[i] = total
		total += (s + MaxBasicSize - 1) / MaxBasicSize * MaxBasicSize
	}
	// One rank's reduce closure allocates the shared segment; everyone
	// shares it via the collective result.
	res := c.collective("MPI_Win_allocate_shared", nil,
		r.w.net.AllocWinCost(c.Size()),
		func([]interface{}) interface{} { return r.w.newSegment(total) })
	seg := res.(*segment)
	reg := Region{seg: seg, off: offs[c.Rank()], n: size}
	w := r.winCollective(c, reg, nil, r.w.net.CreateWinCost(c.Size()))
	w.g.info = info
	return w, reg.Bytes()
}

// WinCreate implements MPI_WIN_CREATE over existing memory: each rank
// exposes the given region. Much cheaper than WinAllocate, which is why
// Casper can afford its overlapping internal windows.
func (r *Rank) WinCreate(c *Comm, reg Region, info Info) *Win {
	return r.winCollective(c, reg, info, r.w.net.CreateWinCost(c.Size()))
}

// Free implements Window: MPI_WIN_FREE (collective).
func (w *Win) Free() {
	w.c.collective("MPI_Win_free", nil, w.c.barrierCost(), nil)
	w.g.freed.Store(true)
}
