package mpi

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Reliable transport. When a world has a fault plan, every RMA request
// and point-to-point message travels as a sequence-numbered packet on a
// per-(window, origin, target) stream — the AM ordering unit MPI-3
// §11.7.1 requires for same-origin accumulates. The receiver accepts
// packets strictly in sequence order (holding out-of-order arrivals),
// which, together with the per-op applied flag, makes delivery
// exactly-once under drop, delay and duplication. Unacknowledged
// packets are retransmitted on a timeout with exponential backoff;
// when the failure detector declares a target dead, its streams fail
// over to a replacement chosen by the window's reroute hook (Casper's
// ghost rebinding) or surface MPI_ERR_PROC_FAILED.
//
// Two deliberate simplifications exploit that this is a simulation:
//
//   - The sender can see whether the injector dropped a transmission,
//     so a timeout retransmits only genuinely lost packets; for live
//     in-flight ones it just re-arms. This keeps a zero-rate plan
//     bit-identical to no fault layer (no spurious retransmissions,
//     no perturbed counters).
//   - An op applied at a target that dies before its ack survives as
//     op.result in shared memory, so failover can synthesize the
//     completion. This is the durable operation journal a real
//     implementation would have to replicate; the simulator gets it
//     for free.
//
// All reliability housekeeping (timers, duplicate arrivals,
// retransmissions, protocol acks) is scheduled as background events,
// so it can never extend a run beyond what the application produced;
// the first transmission and first RMA ack reuse the regular event
// path of the fault-free runtime, at the exact times it would have
// used.

// Default retransmission parameters.
const (
	defaultRTOBase     = 100 * sim.Microsecond
	defaultMaxAttempts = 25
	maxBackoffShift    = 6
)

// streamKey identifies one ordered packet stream. win is nil for
// point-to-point traffic; origin/target are world ranks.
type streamKey struct {
	win    *winGlobal
	origin int
	target int
}

// packet is one payload on a stream: exactly one of op, msg is set.
type packet struct {
	st  *stream
	seq int64
	op  *rmaOp
	msg *inMsg

	attempts  int
	dataLost  bool // last data transmission dropped by the injector
	ackLost   bool // last ack transmission dropped by the injector
	delivered bool // p2p: accepted into the destination mailbox
	acked     bool
	abandoned bool

	// wireCRC is the CRC32 checksum stamped on the packet at (re)
	// transmission. A corrupting injector flips it on the wire; the
	// receiver recomputes the payload checksum and drops mismatches.
	wireCRC uint32
}

// payloadCRC is the CRC32 checksum of the packet's payload as the
// receiver would compute it.
func (pkt *packet) payloadCRC() uint32 {
	if pkt.msg != nil {
		return crc32.ChecksumIEEE(pkt.msg.data)
	}
	if op := pkt.op; op.data != nil {
		return crc32.ChecksumIEEE(op.data)
	}
	// Header-only request (e.g. GET): checksum the wire header.
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(pkt.seq))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(pkt.op.disp))
	return crc32.ChecksumIEEE(hdr[:])
}

// wireBytes is the payload size charged for (re)transmission.
func (pkt *packet) wireBytes() int {
	if pkt.op != nil {
		return pkt.op.wireOutBytes()
	}
	return len(pkt.msg.data)
}

// stream is the sender+receiver state of one streamKey (one simulated
// address space holds both ends).
type stream struct {
	key      streamKey
	nextSeq  int64
	expected int64
	held     map[int64]*packet // receiver: arrived out of order
	unacked  map[int64]*packet // sender: transmitted, not acknowledged
}

// reliability is the world's reliable-transport state.
type reliability struct {
	w           *World
	streams     map[streamKey]*stream
	order       []*stream // creation order, for deterministic failover
	rtoBase     sim.Duration
	maxAttempts int
}

func newReliability(w *World) *reliability {
	return &reliability{
		w:           w,
		streams:     map[streamKey]*stream{},
		rtoBase:     defaultRTOBase,
		maxAttempts: defaultMaxAttempts,
	}
}

func (rel *reliability) stream(key streamKey) *stream {
	st, ok := rel.streams[key]
	if !ok {
		st = &stream{key: key, held: map[int64]*packet{}, unacked: map[int64]*packet{}}
		rel.streams[key] = st
		rel.order = append(rel.order, st)
	}
	return st
}

// --- Send side --------------------------------------------------------

// sendOp puts an RMA op on its stream. arrival is the FIFO-adjusted
// arrival time Win.send computed — the first transmission lands exactly
// when the fault-free runtime would deliver it.
func (rel *reliability) sendOp(op *rmaOp, arrival sim.Time) {
	g := op.win
	key := streamKey{win: g, origin: g.comm.ranks[op.origin], target: g.comm.ranks[op.target]}
	st := rel.stream(key)
	pkt := &packet{st: st, seq: st.nextSeq, op: op}
	st.nextSeq++
	st.unacked[pkt.seq] = pkt
	op.relPkt = pkt
	if rel.w.HealthFailed(key.target) && !rel.w.ranks[key.target].down {
		// The target was already confirmed dead when this op issued —
		// the origin's goroutine ran ahead of the detection sweep in
		// virtual time, so its routing predates the failure verdict.
		// The stream's drain has already happened (onDeath); a packet
		// parked here would wait out a full RTO and join the failover
		// stream behind younger same-origin ops, breaking accumulate
		// issue order. Fail it over right now instead.
		rel.failoverPacket(pkt)
		return
	}
	rel.transmit(pkt, arrival, true)
}

// sendMsg puts a point-to-point message on its stream.
func (rel *reliability) sendMsg(r *Rank, destWorld int, msg *inMsg, arrival sim.Time) {
	st := rel.stream(streamKey{origin: r.id, target: destWorld})
	pkt := &packet{st: st, seq: st.nextSeq, msg: msg}
	st.nextSeq++
	st.unacked[pkt.seq] = pkt
	rel.transmit(pkt, arrival, true)
}

// transmit puts one packet on the wire, consulting the injector, and
// arms the retransmission timer. first marks the initial transmission,
// whose undisturbed delivery uses the regular event path for exact
// parity with the fault-free runtime.
func (rel *reliability) transmit(pkt *packet, arrival sim.Time, first bool) {
	pkt.attempts++
	pkt.dataLost = false
	eng := rel.w.eng
	dec := rel.w.inj.Transmission()
	pkt.wireCRC = pkt.payloadCRC()
	if dec.Corrupt {
		// Wire corruption: the payload arrives but its checksum no
		// longer matches; the receiver detects and drops it.
		pkt.wireCRC = ^pkt.wireCRC
	}
	if dec.Drop {
		pkt.dataLost = true
	} else {
		at := arrival.Add(dec.Extra)
		if first && dec.Extra == 0 {
			eng.At(at, func() { rel.receive(pkt) })
		} else {
			eng.AtBG(at, func() { rel.receive(pkt) })
		}
		if dec.Dup {
			eng.AtBG(at.Add(1), func() { rel.receive(pkt) })
		}
	}
	rel.armTimer(pkt)
}

func (rel *reliability) armTimer(pkt *packet) {
	shift := pkt.attempts - 1
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	rel.w.eng.AfterBG(rel.rtoBase<<uint(shift), func() { rel.timeout(pkt) })
}

// timeout decides what to do about a still-unacknowledged packet.
func (rel *reliability) timeout(pkt *packet) {
	if pkt.acked || pkt.abandoned {
		return
	}
	w := rel.w
	st := pkt.st
	dst := w.ranks[st.key.target]
	origin := w.ranks[st.key.origin]
	switch {
	case dst.down:
		// Down-recoverable peer: hold fire until the revival; the
		// retransmission then delivers in sequence order, so nothing in
		// flight to a recovering rank is lost or reordered. (Checked
		// before the failover case — a confirmed down rank is
		// health-failed too, but must not be failed over.)
		rel.armTimer(pkt)
	case w.HealthFailed(st.key.target) || (dst.failed && !w.healthTracked(st.key.target)):
		// Peer declared dead (or, when untracked, known dead to the
		// omniscient simulator): fail the whole stream over, in
		// sequence order, so accumulate ordering survives the move.
		origin.stats.RetryTimeouts++
		rel.failoverStream(st)
	case dst.failed:
		// Dead but not yet detected: hold fire until the failure
		// detector rules, rather than hammering a corpse.
		rel.armTimer(pkt)
	case pkt.dataLost || pkt.ackLost:
		origin.stats.RetryTimeouts++
		if pkt.attempts >= rel.maxAttempts {
			rel.abandon(pkt, ErrMessageLost,
				fmt.Sprintf("message to rank %d lost after %d attempts", st.key.target, pkt.attempts))
			return
		}
		origin.stats.Retransmits++
		pkt.ackLost = false
		wire := origin.transferTo(st.key.target, pkt.wireBytes())
		rel.transmit(pkt, w.eng.Now().Add(wire), false)
	default:
		// In flight or in service at a live target; await the ack.
		rel.armTimer(pkt)
	}
}

// --- Receive side -----------------------------------------------------

// receive runs at the destination when a transmission arrives:
// in-sequence packets dispatch (and release any held successors);
// out-of-sequence ones are held; duplicates are suppressed, re-acking
// completed exchanges whose ack was lost.
func (rel *reliability) receive(pkt *packet) {
	st := pkt.st
	dst := rel.w.ranks[st.key.target]
	if pkt.abandoned {
		return
	}
	if dst.failed {
		// Swallowed with the dead destination; sender-side timeout and
		// health detection handle recovery.
		return
	}
	if dst.down {
		// Down-recoverable destination: the endpoint is gone for the
		// duration; drop, and let the sender's timeout redeliver after
		// the revival.
		pkt.dataLost = true
		return
	}
	if pkt.wireCRC != pkt.payloadCRC() {
		// Checksum mismatch: the packet was corrupted on the wire. Drop
		// it exactly like a loss — the sender's timeout sees dataLost
		// and retransmits with a fresh checksum.
		dst.stats.CorruptDropped++
		pkt.dataLost = true
		return
	}
	if pkt.seq > st.expected {
		if st.held[pkt.seq] == pkt {
			// duplicate of a held packet
			dst.stats.DupsSuppressed++
			return
		}
		st.held[pkt.seq] = pkt
		return
	}
	if pkt.seq < st.expected {
		// Duplicate of an already-accepted packet: exactly-once.
		dst.stats.DupsSuppressed++
		rel.reAck(pkt)
		return
	}
	st.expected++
	rel.dispatch(pkt)
	for {
		next, ok := st.held[st.expected]
		if !ok {
			break
		}
		delete(st.held, st.expected)
		st.expected++
		rel.dispatch(next)
	}
}

// dispatch hands an accepted packet to the destination runtime: the
// mailbox for p2p, the NIC or the target progress engine for RMA.
func (rel *reliability) dispatch(pkt *packet) {
	w := rel.w
	dst := w.ranks[pkt.st.key.target]
	if pkt.msg != nil {
		pkt.delivered = true
		dst.mailbox.arrive(pkt.msg)
		rel.sendP2PAck(pkt)
		return
	}
	op := pkt.op
	if op.applied {
		// Already applied through a reroute; nothing to do (the
		// rerouted copy acks).
		return
	}
	if op.hardwareEligible() {
		op.applyHardware(dst)
		return
	}
	op.arrived = w.eng.Now()
	dst.engine.deliver(op)
}

// reAck re-sends the acknowledgment for a duplicate of a completed
// exchange (the original ack was lost).
func (rel *reliability) reAck(pkt *packet) {
	if pkt.acked {
		return
	}
	if pkt.op != nil && pkt.op.applied {
		rel.sendAck(pkt, rel.ackWire(pkt), false)
	} else if pkt.msg != nil && pkt.delivered {
		rel.sendP2PAck(pkt)
	}
	// Otherwise the original is still queued for service and will ack
	// when it completes.
}

// ackWire is the target->origin wire time of the packet's ack.
func (rel *reliability) ackWire(pkt *packet) sim.Duration {
	n := 16
	if pkt.op != nil {
		n = pkt.op.ackBytes()
	}
	return rel.w.ranks[pkt.st.key.target].transferTo(pkt.st.key.origin, n)
}

// sendAck carries an RMA completion back to the origin. first marks
// the ack generated by the op's (first) apply, which uses the regular
// event path at the exact time the fault-free runtime would.
func (rel *reliability) sendAck(pkt *packet, wire sim.Duration, first bool) {
	dec := rel.w.inj.Transmission()
	if dec.Drop {
		pkt.ackLost = true
		return
	}
	eng := rel.w.eng
	if first && dec.Extra == 0 {
		eng.After(wire, func() { rel.deliverAck(pkt) })
	} else {
		eng.AfterBG(wire+dec.Extra, func() { rel.deliverAck(pkt) })
	}
	if dec.Dup {
		eng.AfterBG(wire+dec.Extra+1, func() { rel.deliverAck(pkt) })
	}
}

// sendP2PAck acknowledges a delivered p2p packet (protocol-internal;
// the application-level eager send completed at issue).
func (rel *reliability) sendP2PAck(pkt *packet) {
	dec := rel.w.inj.Transmission()
	if dec.Drop {
		pkt.ackLost = true
		return
	}
	wire := rel.ackWire(pkt)
	rel.w.eng.AfterBG(wire+dec.Extra, func() { rel.deliverAck(pkt) })
	if dec.Dup {
		rel.w.eng.AfterBG(wire+dec.Extra+1, func() { rel.deliverAck(pkt) })
	}
}

// deliverAck lands an ack at the origin: completes the op's
// origin-side bookkeeping exactly once (duplicate acks are no-ops).
func (rel *reliability) deliverAck(pkt *packet) {
	if pkt.acked || pkt.abandoned {
		return
	}
	pkt.acked = true
	delete(pkt.st.unacked, pkt.seq)
	if op := pkt.op; op != nil {
		if op.dst != nil && op.result != nil {
			copy(op.dst, op.result)
		}
		op.pending.Done()
		if op.req != nil {
			op.req.pending.Done()
		}
		op.win.opTerminal(op)
	}
}

// --- Failure handling -------------------------------------------------

// onDeath is the death hook: fail over every stream aimed at the dead
// rank, eagerly rerouting unacknowledged packets in sequence order. A
// down-recoverable rank is not failed over — its packets are held for
// redelivery after the revival — but the flow-control credits its
// in-flight ops hold are returned eagerly, so no origin spends the
// whole downtime starved of credits it can never get back. (Ops in
// flight *from* the down rank need no cancellation: their acks land in
// shared bookkeeping and the frozen origin consumes them on thaw.)
func (rel *reliability) onDeath(worldRank int) {
	if rel.w.ranks[worldRank].down {
		rel.returnCredits(worldRank)
		return
	}
	for _, st := range rel.order {
		if st.key.target == worldRank {
			rel.failoverStream(st)
		}
	}
}

// returnCredits eagerly releases the flow-control credit of every
// unacknowledged op in flight to the rank, in stream creation and
// sequence order (deterministic wake order for parked origins). Each
// op's credit is nil'd so its eventual terminal state cannot release
// it a second time.
func (rel *reliability) returnCredits(worldRank int) {
	for _, st := range rel.order {
		if st.key.target != worldRank || len(st.unacked) == 0 {
			continue
		}
		seqs := make([]int64, 0, len(st.unacked))
		for s := range st.unacked {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			if op := st.unacked[s].op; op != nil && op.credit != nil {
				op.credit.release()
				op.credit = nil
			}
		}
	}
}

func (rel *reliability) failoverStream(st *stream) {
	if len(st.unacked) == 0 {
		return
	}
	seqs := make([]int64, 0, len(st.unacked))
	for s := range st.unacked {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		if pkt, ok := st.unacked[s]; ok {
			rel.failoverPacket(pkt)
		}
	}
}

// failoverPacket recovers one unacknowledged packet whose target died.
func (rel *reliability) failoverPacket(pkt *packet) {
	if pkt.acked || pkt.abandoned {
		return
	}
	w := rel.w
	if pkt.msg != nil {
		// P2p to a dead process is silently dropped (e.g. the shutdown
		// fan-out Finalize sends to already-dead ghosts); never fatal.
		pkt.abandoned = true
		delete(pkt.st.unacked, pkt.seq)
		w.p2pLost++
		return
	}
	op := pkt.op
	if op.applied {
		// Applied before the target died; only the ack was lost.
		// Synthesize completion from the captured result (see the
		// journal note in the package comment).
		rel.deliverAck(pkt)
		return
	}
	g := op.win
	if g.reroute == nil {
		rel.abandon(pkt, ErrProcFailed,
			fmt.Sprintf("target rank %d failed with no failover route", pkt.st.key.target))
		return
	}
	newTarget, ok := g.reroute(op.origin, op.target, op.disp)
	if !ok || g.comm.ranks[newTarget] == pkt.st.key.target {
		rel.abandon(pkt, ErrProcFailed,
			fmt.Sprintf("target rank %d failed with no surviving replacement", pkt.st.key.target))
		return
	}
	origin := w.ranks[pkt.st.key.origin]
	origin.stats.Reroutes++
	if t := w.tracer; t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "reroute", Rank: pkt.st.key.target,
			Peer: g.comm.ranks[newTarget], At: w.eng.Now()})
	}
	pkt.abandoned = true
	delete(pkt.st.unacked, pkt.seq)
	op.target = newTarget
	ns := rel.stream(streamKey{win: g, origin: pkt.st.key.origin, target: g.comm.ranks[newTarget]})
	npkt := &packet{st: ns, seq: ns.nextSeq, op: op}
	ns.nextSeq++
	ns.unacked[npkt.seq] = npkt
	op.relPkt = npkt
	wire := origin.transferTo(ns.key.target, op.wireOutBytes())
	rel.transmit(npkt, w.eng.Now().Add(wire), false)
}

// abandon gives up on a packet: release the origin-side completion so
// flushes do not hang, then surface the loss per the error mode
// (panic under ErrorsAreFatal, a typed *MPIError under ErrorsReturn).
func (rel *reliability) abandon(pkt *packet, class ErrClass, msg string) {
	pkt.abandoned = true
	delete(pkt.st.unacked, pkt.seq)
	origin := rel.w.ranks[pkt.st.key.origin]
	origin.stats.Abandoned++
	if t := rel.w.tracer; t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "abandon", Rank: pkt.st.key.target,
			Peer: pkt.st.key.origin, At: rel.w.eng.Now()})
	}
	if op := pkt.op; op != nil {
		op.win.inflight.Done()
		op.pending.Done()
		if op.req != nil {
			op.req.pending.Done()
		}
		op.win.opTerminal(op)
	} else {
		rel.w.p2pLost++
	}
	origin.raise(class, "mpi: %s", msg)
}
