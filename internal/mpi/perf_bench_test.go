package mpi

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netmodel"
)

// Go micro-benchmarks for the message-path hot spots the perf baseline
// tracks (see EXPERIMENTS.md, "Performance methodology"). ns/op and
// allocs/op here are wall-clock costs of simulating, not simulated
// time.

func benchConfig(n, ppn int) Config {
	return Config{
		Machine: cluster.Machine{Nodes: (n + ppn - 1) / ppn, CoresPerNode: 24, NUMAPerNode: 2},
		N:       n,
		PPN:     ppn,
		Net:     netmodel.CrayXC30(),
		Seed:    1,
	}
}

// BenchmarkPingPong runs a two-rank put/flush ping-pong over a full
// world per iteration batch: the per-op figure includes issue, wire,
// target service, ack, and flush — the whole simulated message path.
func BenchmarkPingPong(b *testing.B) {
	for _, size := range []int{8, 4096} {
		b.Run(fmt.Sprintf("put%d", size), func(b *testing.B) {
			b.ReportAllocs()
			const batch = 256
			rounds := (b.N + batch - 1) / batch
			buf := make([]byte, size)
			dt := TypeOf(Byte, size)
			for r := 0; r < rounds; r++ {
				_, err := Run(benchConfig(2, 1), func(rk *Rank) {
					c := rk.CommWorld()
					win, _ := rk.WinAllocate(c, size, nil)
					c.Barrier()
					if rk.Rank() == 0 {
						win.Lock(1, LockShared, AssertNone)
						for i := 0; i < batch; i++ {
							win.Put(buf, 1, 0, dt)
							win.Flush(1)
						}
						win.Unlock(1)
					}
					c.Barrier()
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch*rounds)/float64(b.N), "ops/iter")
		})
	}
}

// BenchmarkAccumulate is BenchmarkPingPong for the software-AM path:
// accumulates always need target-side service, so this exercises the
// progress engine, the serial server, and the payload pooling.
func BenchmarkAccumulate(b *testing.B) {
	b.ReportAllocs()
	const batch = 256
	rounds := (b.N + batch - 1) / batch
	one := PutFloat64s([]float64{1})
	for r := 0; r < rounds; r++ {
		_, err := Run(benchConfig(2, 1), func(rk *Rank) {
			c := rk.CommWorld()
			win, _ := rk.WinAllocate(c, 64, nil)
			c.Barrier()
			if rk.Rank() == 0 {
				win.Lock(1, LockShared, AssertNone)
				for i := 0; i < batch; i++ {
					win.Accumulate(one, 1, 0, Scalar(Float64), OpSum)
				}
				win.Flush(1)
				win.Unlock(1)
			}
			c.Barrier()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatatypePack measures the apply-path datatype engine:
// contiguous replace (the new single-memmove fast path), strided
// replace, and elementwise accumulate.
func BenchmarkDatatypePack(b *testing.B) {
	const elems = 512
	target := make([]byte, elems*8*2)
	src := make([]byte, elems*8)
	cases := []struct {
		name string
		dt   Datatype
		op   Op
	}{
		{"contig-replace", TypeOf(Float64, elems), OpReplace},
		{"vector-replace", Vector(Float64, elems/4, 4, 8), OpReplace},
		{"contig-sum", TypeOf(Float64, elems), OpSum},
		{"indexed-replace", Indexed(Float64, 2, evenOffsets(elems/2)), OpReplace},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(tc.dt.Size()))
			for i := 0; i < b.N; i++ {
				accumulate(tc.op, tc.dt, target, 0, src)
			}
		})
	}
	b.Run("gather-contig", func(b *testing.B) {
		b.ReportAllocs()
		dt := TypeOf(Float64, elems)
		b.SetBytes(int64(dt.Size()))
		var pool bufPool
		for i := 0; i < b.N; i++ {
			out := gatherPooled(dt, target, 0, &pool)
			pool.put(out)
		}
	})
}

func evenOffsets(blocks int) []int {
	out := make([]int, blocks)
	for i := range out {
		out[i] = i * 4
	}
	return out
}
