package mpi

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Process-failure model. Two layers of knowledge coexist, as in a real
// system:
//
//   - Ground truth: killRank marks a Rank failed at its crash instant.
//     From then on its goroutine never runs again, messages to it are
//     swallowed, and collectives complete over the survivors.
//   - Detection: the rest of the system only learns about the death
//     through missed heartbeats. healthState schedules a beacon per
//     tracked rank and a monitor sweep, both as background events in
//     the DES; after a grace period without a beacon the rank is marked
//     health-failed and death hooks fire (retransmission failover, the
//     Casper rebinding machinery).
//
// A stalled rank skips its beacons, so a stall longer than the grace
// period is indistinguishable from a crash to everyone else — which is
// exactly the ambiguity a real failure detector faces.

// Default health-monitoring parameters.
const (
	defaultBeaconInterval = 20 * sim.Microsecond
	defaultGracePeriod    = 80 * sim.Microsecond
)

// healthState is the world-global failure detector.
type healthState struct {
	w          *World
	interval   sim.Duration
	grace      sim.Duration
	tracked    []int // world ranks, in registration order
	lastSeen   map[int]sim.Time
	failed     map[int]bool
	nfailed    int
	monitoring bool
}

// TrackHealth begins heartbeat liveness monitoring of the given world
// ranks (typically Casper's ghosts). No-op unless the world has a fault
// plan — without one no process can fail and monitoring would be pure
// overhead. Idempotent per rank; callable from any simulation context.
func (w *World) TrackHealth(worldRanks []int) {
	if w.inj == nil {
		return
	}
	if w.health == nil {
		w.health = &healthState{
			w:        w,
			interval: defaultBeaconInterval,
			grace:    defaultGracePeriod,
			lastSeen: map[int]sim.Time{},
			failed:   map[int]bool{},
		}
	}
	h := w.health
	now := w.eng.Now()
	for _, id := range worldRanks {
		if id < 0 || id >= len(w.ranks) {
			continue
		}
		if _, ok := h.lastSeen[id]; ok {
			continue
		}
		h.tracked = append(h.tracked, id)
		h.lastSeen[id] = now
		h.beacon(id)
	}
	if !h.monitoring && len(h.tracked) > 0 {
		h.monitoring = true
		w.eng.AfterBG(h.interval, h.monitor)
	}
}

// HealthFailed reports whether the failure detector has declared the
// rank dead. False for untracked ranks and worlds without monitoring —
// ground-truth death (Rank.failed) may precede detection.
func (w *World) HealthFailed(worldRank int) bool {
	return w.health != nil && w.health.failed[worldRank]
}

// AnyHealthFailure reports whether any tracked rank has been declared
// dead — the fast path that keeps fault-free routing on the seed code
// path.
func (w *World) AnyHealthFailure() bool {
	return w.health != nil && w.health.nfailed > 0
}

// healthTracked reports whether the rank is under heartbeat monitoring.
func (w *World) healthTracked(worldRank int) bool {
	if w.health == nil {
		return false
	}
	_, ok := w.health.lastSeen[worldRank]
	return ok
}

// beacon is the recurring per-rank heartbeat. A crashed rank stops
// beating forever; a stalled one skips beats until the stall ends.
func (h *healthState) beacon(id int) {
	r := h.w.ranks[id]
	if r.failed {
		return
	}
	now := h.w.eng.Now()
	if now >= r.stalledUntil {
		h.lastSeen[id] = now
	}
	h.w.eng.AfterBG(h.interval, func() { h.beacon(id) })
}

// monitor is the recurring sweep declaring ranks dead after the grace
// period. Tracked ranks are visited in registration order so detection
// order is deterministic.
func (h *healthState) monitor() {
	now := h.w.eng.Now()
	for _, id := range h.tracked {
		if h.failed[id] {
			continue
		}
		if now.Sub(h.lastSeen[id]) > h.grace {
			h.markFailed(id)
		}
	}
	h.w.eng.AfterBG(h.interval, h.monitor)
}

// markFailed records the detection and fires the death hooks
// (retransmission failover and any layered recovery machinery).
func (h *healthState) markFailed(id int) {
	if h.failed[id] {
		return
	}
	h.failed[id] = true
	h.nfailed++
	if t := h.w.tracer; t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "detect", Rank: id, Peer: -1, At: h.w.eng.Now()})
	}
	for _, fn := range h.w.deathHooks {
		fn(id)
	}
}

// killRank is the ground-truth crash of a world rank at the current
// virtual time: its process never runs again, deferred AMs are
// discarded, and open collectives are re-examined so survivors are not
// held hostage by a corpse.
func (w *World) killRank(id int) {
	if id < 0 || id >= len(w.ranks) {
		return
	}
	r := w.ranks[id]
	if r.failed {
		return
	}
	r.failed = true
	w.failedCount++
	if r.proc != nil {
		w.eng.Kill(r.proc)
	}
	r.engine.pending = nil
	if t := w.tracer; t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "crash", Rank: id, Peer: -1, At: w.eng.Now()})
	}
	for _, g := range w.comms {
		g.reapFailed()
	}
}

// stallRank freezes the rank's progress engine until now+d.
func (w *World) stallRank(id int, d sim.Duration) {
	if id < 0 || id >= len(w.ranks) {
		return
	}
	r := w.ranks[id]
	if r.failed {
		return
	}
	until := w.eng.Now().Add(d)
	if until > r.stalledUntil {
		r.stalledUntil = until
	}
	if t := w.tracer; t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "stall", Rank: id, Peer: -1, At: w.eng.Now()})
	}
}

// scheduleFaults arms the plan's crashes and stalls as background
// events. Called by Launch.
func (w *World) scheduleFaults() {
	if w.inj == nil {
		return
	}
	plan := w.inj.Plan()
	for _, c := range plan.Crashes {
		c := c
		w.eng.AtBG(c.At, func() { w.killRank(c.Rank) })
	}
	for _, s := range plan.Stalls {
		s := s
		w.eng.AtBG(s.At, func() { w.stallRank(s.Rank, s.Duration) })
	}
}
