package mpi

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Process-failure model. Two layers of knowledge coexist, as in a real
// system:
//
//   - Ground truth: killRank marks a Rank failed at its crash instant.
//     From then on its goroutine never runs again, messages to it are
//     swallowed, and collectives complete over the survivors.
//   - Detection: the rest of the system only learns about the death
//     through missed heartbeats. healthState schedules a beacon per
//     tracked rank and a monitor sweep, both as background events in
//     the DES; after a grace period without a beacon the rank is marked
//     health-failed and death hooks fire (retransmission failover, the
//     Casper rebinding machinery).
//
// A stalled rank skips its beacons, so prolonged silence alone cannot
// distinguish a stall from a crash. Detection is therefore two-phase:
// after half the grace period of silence a rank becomes *suspected*,
// and the monitor starts direct probes — transport-level echoes that a
// stalled-but-alive rank still answers (stalls gate the active-message
// service path, not wire transit). A rank is *confirmed* dead only
// once both beacons and probe acks have been silent for the full grace
// period, and suspicion is dropped (with hysteresis counted as a false
// suspect) as soon as beacons resume. Confirmation therefore implies
// ground-truth death, which is what lets the succession and lock
// reclamation hooks act irrevocably.

// Default health-monitoring parameters.
const (
	defaultBeaconInterval = 20 * sim.Microsecond
	defaultGracePeriod    = 80 * sim.Microsecond
	defaultProbeRTT       = 10 * sim.Microsecond

	// defaultRespawnDelay models the launcher restarting a crashed
	// application process once the survivors have agreed on its death:
	// fork/exec, MPI re-initialization, rejoining the job.
	defaultRespawnDelay = 150 * sim.Microsecond
)

// healthState is the world-global failure detector.
type healthState struct {
	w          *World
	interval   sim.Duration
	grace      sim.Duration
	probeRTT   sim.Duration
	tracked    []int // world ranks, in registration order
	lastSeen   map[int]sim.Time
	lastAck    map[int]sim.Time // last probe echo per suspected rank
	suspected  map[int]bool
	failed     map[int]bool
	nfailed    int
	monitoring bool
}

// TrackHealth begins heartbeat liveness monitoring of the given world
// ranks (typically Casper's ghosts). No-op unless the world has a fault
// plan — without one no process can fail and monitoring would be pure
// overhead. Idempotent per rank; callable from any simulation context.
func (w *World) TrackHealth(worldRanks []int) {
	if w.inj == nil {
		return
	}
	if w.health == nil {
		w.health = &healthState{
			w:         w,
			interval:  defaultBeaconInterval,
			grace:     defaultGracePeriod,
			probeRTT:  defaultProbeRTT,
			lastSeen:  map[int]sim.Time{},
			lastAck:   map[int]sim.Time{},
			suspected: map[int]bool{},
			failed:    map[int]bool{},
		}
	}
	h := w.health
	now := w.eng.Now()
	for _, id := range worldRanks {
		if id < 0 || id >= len(w.ranks) {
			continue
		}
		if _, ok := h.lastSeen[id]; ok {
			continue
		}
		h.tracked = append(h.tracked, id)
		h.lastSeen[id] = now
		h.beacon(id)
	}
	if !h.monitoring && len(h.tracked) > 0 {
		h.monitoring = true
		w.eng.AfterBG(h.interval, h.monitor)
	}
}

// HealthFailed reports whether the failure detector has declared the
// rank dead. False for untracked ranks and worlds without monitoring —
// ground-truth death (Rank.failed) may precede detection.
func (w *World) HealthFailed(worldRank int) bool {
	return w.health != nil && w.health.failed[worldRank]
}

// HealthSuspected reports whether the rank is in the suspect phase:
// silent past half the grace period but not yet confirmed dead. A
// stalled rank suspends here and recovers; a crashed one proceeds to
// confirmation.
func (w *World) HealthSuspected(worldRank int) bool {
	return w.health != nil && w.health.suspected[worldRank]
}

// AnyHealthFailure reports whether any tracked rank has been declared
// dead — the fast path that keeps fault-free routing on the seed code
// path.
func (w *World) AnyHealthFailure() bool {
	return w.health != nil && w.health.nfailed > 0
}

// healthTracked reports whether the rank is under heartbeat monitoring.
func (w *World) healthTracked(worldRank int) bool {
	if w.health == nil {
		return false
	}
	_, ok := w.health.lastSeen[worldRank]
	return ok
}

// beacon is the recurring per-rank heartbeat. A crashed rank stops
// beating forever; a stalled one skips beats until the stall ends.
func (h *healthState) beacon(id int) {
	r := h.w.ranks[id]
	if r.failed {
		return
	}
	now := h.w.eng.Now()
	if now >= r.stalledUntil && !r.down {
		// A down rank is frozen: it emits no beacons, so the detector
		// confirms its death; the beat resumes by itself after revival.
		h.lastSeen[id] = now
	}
	h.w.eng.AfterBG(h.interval, func() { h.beacon(id) })
}

// monitor is the recurring suspect→confirm sweep. Tracked ranks are
// visited in registration order so detection order is deterministic.
// Suspicion begins after grace/2 of beacon silence and triggers direct
// probes; confirmation requires the full grace period without either a
// beacon or a probe ack, so the confirm instant for a plain crash is
// exactly the single-phase detector's (a corpse never acks, so the ack
// clock never moves).
func (h *healthState) monitor() {
	now := h.w.eng.Now()
	for _, id := range h.tracked {
		if h.failed[id] {
			continue
		}
		quiet := now.Sub(h.lastSeen[id])
		if h.suspected[id] {
			if quiet <= h.grace/2 {
				// Beacons resumed: the rank was stalled, not dead.
				delete(h.suspected, id)
				delete(h.lastAck, id)
				h.w.ranks[id].stats.FalseSuspects++
				continue
			}
			alive := h.lastSeen[id]
			if ack, ok := h.lastAck[id]; ok && ack > alive {
				alive = ack
			}
			if now.Sub(alive) > h.grace {
				h.markFailed(id)
				continue
			}
			h.probe(id)
			continue
		}
		if quiet > h.grace/2 {
			h.suspected[id] = true
			h.w.ranks[id].stats.Suspects++
			if t := h.w.tracer; t.Enabled() {
				t.RecordFault(trace.Fault{Kind: "suspect", Rank: id, Peer: -1, At: now})
			}
			h.probe(id)
		}
	}
	h.w.eng.AfterBG(h.interval, h.monitor)
}

// probe sends one direct liveness probe to a suspected rank. The echo
// is a transport-level round trip serviced below the active-message
// layer, so a stalled rank still answers it while a crashed one never
// does.
func (h *healthState) probe(id int) {
	r := h.w.ranks[id]
	h.w.eng.AfterBG(h.probeRTT, func() {
		if !r.failed && !r.down {
			h.lastAck[id] = h.w.eng.Now()
		}
	})
}

// markFailed records the detection and fires the death hooks
// (retransmission failover and any layered recovery machinery).
func (h *healthState) markFailed(id int) {
	if h.failed[id] {
		return
	}
	h.failed[id] = true
	h.nfailed++
	delete(h.suspected, id)
	delete(h.lastAck, id)
	if t := h.w.tracer; t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "detect", Rank: id, Peer: -1, At: h.w.eng.Now()})
	}
	for _, fn := range h.w.deathHooks {
		fn(id)
	}
	if h.w.ranks[id].down {
		h.beginRecovery(id)
	}
}

// beginRecovery starts the post-confirmation pipeline for a down
// application rank: a ULFM-style agreement round first — the survivors
// run a dissemination consensus over the acknowledged failure, so every
// rank converges on the same failure epoch before any recovery acts —
// then respawn, state restore, and thaw.
func (h *healthState) beginRecovery(id int) {
	w := h.w
	alive := 0
	for _, r := range w.ranks {
		if !r.failed && !r.down {
			alive++
		}
	}
	agree := sim.Duration(rounds(alive)) * 2 * h.probeRTT
	w.eng.AfterBG(agree, func() { h.agreeDone(id) })
}

// agreeDone runs when the failure agreement completes: the failure
// epoch advances, survivors are notified with a typed error (under
// ErrorsReturn only), and the launcher's respawn is charged.
func (h *healthState) agreeDone(id int) {
	w := h.w
	if w.ranks[id].failed {
		return // permanently killed mid-agreement
	}
	w.failureEra++
	if w.cfg.Errors == ErrorsReturn {
		// The agreed failure surfaces on every survivor as a typed
		// MPI_ERR_PROC_FAILED, ULFM-style.
		for _, r := range w.ranks {
			if r.failed || r.down {
				continue
			}
			r.raise(ErrProcFailed, "rank %d failed (failure epoch %d); recovery in progress",
				id, w.failureEra)
		}
	}
	w.eng.AfterBG(defaultRespawnDelay, func() { h.restoreRank(id) })
}

// restoreRank performs the state restore of the respawned process: the
// layered runtime rolls the rank's window state back to the last
// closed-epoch snapshot and replays the open epoch's journal, and the
// buddy ghost ships the snapshot over the interconnect before the rank
// may resume.
func (h *healthState) restoreRank(id int) {
	w := h.w
	if w.ranks[id].failed {
		return
	}
	bytes := 0
	if w.appRestore != nil {
		if b, _, ok := w.appRestore(id); ok {
			bytes = b
		}
	}
	d := w.net.InterLatency + sim.Duration(float64(bytes)*w.net.InterPerByte)
	w.eng.AfterBG(d, func() { h.reviveRank(id) })
}

// reviveRank thaws the recovered rank: the detector un-fails it, its
// beacons resume, deferred AMs drain, and the frozen process picks up
// exactly where the crash interrupted it — on restored state, so the
// recovered world stays bit-identical to its fault-free twin.
func (h *healthState) reviveRank(id int) {
	w := h.w
	r := w.ranks[id]
	if r.failed || !r.down {
		return
	}
	r.down = false
	if h.failed[id] {
		delete(h.failed, id)
		h.nfailed--
	}
	h.lastSeen[id] = w.eng.Now()
	delete(h.lastAck, id)
	delete(h.suspected, id)
	r.stats.AppRecoveries++
	if t := w.tracer; t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "revive", Rank: id, Peer: -1, At: w.eng.Now()})
	}
	r.engine.drainDeferred()
	w.eng.Thaw(r.proc)
}

// killRank is the ground-truth crash of a world rank at the current
// virtual time: its process never runs again, deferred AMs are
// discarded, and open collectives are re-examined so survivors are not
// held hostage by a corpse.
func (w *World) killRank(id int) {
	if id < 0 || id >= len(w.ranks) {
		return
	}
	r := w.ranks[id]
	if r.failed {
		return
	}
	r.failed = true
	w.failedCount++
	if r.proc != nil {
		w.eng.Kill(r.proc)
	}
	r.engine.pending = nil
	if t := w.tracer; t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "crash", Rank: id, Peer: -1, At: w.eng.Now()})
	}
	for _, g := range w.comms {
		g.reapFailed()
	}
}

// crashAppRank is the ground-truth recoverable crash of an application
// rank: the process freezes mid-flight, its beacons stop, and nothing
// is torn down — survivors block at collectives exactly as real MPI
// ranks would, until the detector confirms the death and the recovery
// pipeline (agreement → respawn → restore → thaw) brings it back.
func (w *World) crashAppRank(id int) {
	if id < 0 || id >= len(w.ranks) {
		return
	}
	r := w.ranks[id]
	if r.failed || r.down || r.proc == nil || r.proc.Done() {
		return
	}
	if !w.healthTracked(id) {
		// Nobody is watching: the death would never be confirmed and no
		// recovery could start, wedging the survivors forever. Model the
		// crash as happening before MPI initialization completed — the
		// launcher restarts the process invisibly.
		return
	}
	r.down = true
	w.eng.Freeze(r.proc)
	if t := w.tracer; t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "appcrash", Rank: id, Peer: -1, At: w.eng.Now()})
	}
}

// stallRank freezes the rank's progress engine until now+d.
func (w *World) stallRank(id int, d sim.Duration) {
	if id < 0 || id >= len(w.ranks) {
		return
	}
	r := w.ranks[id]
	if r.failed {
		return
	}
	until := w.eng.Now().Add(d)
	if until > r.stalledUntil {
		r.stalledUntil = until
	}
	if t := w.tracer; t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "stall", Rank: id, Peer: -1, At: w.eng.Now()})
	}
}

// scheduleFaults arms the plan's crashes and stalls as background
// events. Called by Launch.
func (w *World) scheduleFaults() {
	if w.inj == nil {
		return
	}
	plan := w.inj.Plan()
	for _, c := range plan.Crashes {
		c := c
		w.eng.AtBG(c.At, func() { w.killRank(c.Rank) })
	}
	for _, s := range plan.Stalls {
		s := s
		w.eng.AtBG(s.At, func() { w.stallRank(s.Rank, s.Duration) })
	}
	for _, c := range plan.AppCrashes {
		c := c
		w.eng.AtBG(c.At, func() { w.crashAppRank(c.Rank) })
	}
}
