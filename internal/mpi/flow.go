package mpi

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// FlowConfig enables credit-based flow control for software RMA
// operations. Each origin rank holds a private window of Credits
// toward every target it issues AMs at; a credit is consumed when an
// operation is issued and returned when the target acknowledges it
// (or the transport abandons it). An origin with no credits left
// blocks in virtual time inside the issuing MPI call until a credit
// drains back, so a saturated ghost's queue depth is bounded by
// Credits × #origins instead of growing without limit.
type FlowConfig struct {
	// Credits is the per-(origin,target) credit window. Zero selects
	// the default of 64 outstanding operations.
	Credits int
	// Timeout bounds how long an origin waits for a credit. Zero
	// means wait forever. A timeout only takes effect under
	// ErrorsReturn, where expiry surfaces as MPI_ERR_BACKLOG and the
	// operation is dropped; under ErrorsAreFatal it is ignored
	// (blocking forever is indistinguishable from deadlock, which the
	// stall watchdog reports).
	Timeout sim.Duration
}

const defaultCredits = 64

// flowState is the world-global credit table. Channels are created
// lazily per (origin,target) pair; order records creation order so
// diagnostics iterate deterministically.
type flowState struct {
	w       *World
	credits int
	timeout sim.Duration
	chans   map[[2]int]*creditChan
	order   [][2]int
}

// creditChan is one origin→target credit window.
type creditChan struct {
	origin, target int
	available      int
	waiters        int
	stalls         int64
	sig            sim.Signal
	waitReason     string // interned park label (built once, not per park)
}

func newFlowState(w *World, cfg *FlowConfig) *flowState {
	credits := cfg.Credits
	if credits <= 0 {
		credits = defaultCredits
	}
	return &flowState{
		w:       w,
		credits: credits,
		timeout: cfg.Timeout,
		chans:   make(map[[2]int]*creditChan),
	}
}

func (f *flowState) chanFor(origin, target int) *creditChan {
	key := [2]int{origin, target}
	ch := f.chans[key]
	if ch == nil {
		ch = &creditChan{
			origin: origin, target: target, available: f.credits,
			waitReason: fmt.Sprintf("awaiting AM credit to rank %d", target),
		}
		f.chans[key] = ch
		f.order = append(f.order, key)
	}
	return ch
}

// acquire takes one credit toward target on behalf of rank r, blocking
// the calling proc in virtual time while the window is exhausted. It
// returns the channel holding the credit, or nil if the wait timed out
// (ErrBacklog has been raised on r in that case). Must run in proc
// context; the rank is inside an MPI call, so self-targeted AMs keep
// draining while it is parked.
func (f *flowState) acquire(r *Rank, target int) *creditChan {
	ch := f.chanFor(r.id, target)
	if ch.available > 0 {
		ch.available--
		return ch
	}
	deadline := sim.Time(0)
	timed := f.timeout > 0 && f.w.cfg.Errors == ErrorsReturn
	if timed {
		deadline = f.w.eng.Now() + sim.Time(f.timeout)
		f.w.eng.AfterBG(f.timeout, func() { ch.sig.Broadcast() })
	}
	start := f.w.eng.Now()
	r.stats.CreditStalls++
	ch.stalls++
	for ch.available <= 0 {
		if timed && f.w.eng.Now() >= deadline {
			r.stats.CreditStallTime += sim.Duration(f.w.eng.Now() - start)
			r.stats.BacklogDropped++
			r.raise(ErrBacklog, "no AM credit toward rank %d after %v (window %d exhausted)",
				target, f.timeout, f.credits)
			return nil
		}
		ch.waiters++
		ch.sig.Wait(r.proc, ch.waitReason)
		ch.waiters--
	}
	r.stats.CreditStallTime += sim.Duration(f.w.eng.Now() - start)
	ch.available--
	return ch
}

// release returns one credit and wakes any origin parked on the window.
func (ch *creditChan) release() {
	ch.available++
	ch.sig.Broadcast()
}

// waitEdges reports the credit windows currently blocking an origin,
// as wait-for graph edges (origin blocked on target).
func (f *flowState) waitEdges() []waitInfo {
	var out []waitInfo
	for _, key := range f.order {
		ch := f.chans[key]
		if ch.waiters > 0 {
			out = append(out, waitInfo{
				from:  ch.origin,
				to:    ch.target,
				label: fmt.Sprintf("AM credits (%d waiting, window %d)", ch.waiters, f.credits),
			})
		}
	}
	return out
}

// waitInfo is one edge of the world's wait-for graph.
type waitInfo struct {
	from, to int
	label    string
}

// waitDiagnostics renders the world's wait-for graph: who is blocked
// on which credit window, lock, or unacknowledged epoch. Installed as
// a sim diagnostic so deadlock/watchdog errors carry it.
func (w *World) waitDiagnostics() []string {
	var edges []waitInfo
	if w.flow != nil {
		edges = append(edges, w.flow.waitEdges()...)
	}
	for _, g := range w.wins {
		if g.freed.Load() {
			continue
		}
		for _, win := range g.handles {
			for _, st := range win.targetStatesSorted() {
				if n := st.ts.pending.Pending(); n > 0 {
					edges = append(edges, waitInfo{
						from:  g.comm.ranks[win.me],
						to:    g.comm.ranks[st.target],
						label: fmt.Sprintf("win %d: %d unacked RMA op(s)", g.id, n),
					})
				}
				if st.ts.requested && !st.ts.granted.Done() {
					edges = append(edges, waitInfo{
						from:  g.comm.ranks[win.me],
						to:    g.comm.ranks[st.target],
						label: fmt.Sprintf("win %d: awaiting lock grant", g.id),
					})
				}
			}
		}
		for t, mgr := range g.lockMgrs {
			if mgr == nil || len(mgr.queue) == 0 {
				continue
			}
			shared, excl := mgr.held()
			hold := fmt.Sprintf("%d shared", shared)
			if excl {
				hold = "exclusive"
			}
			for _, req := range mgr.queue {
				edges = append(edges, waitInfo{
					from:  g.comm.ranks[req.origin],
					to:    g.comm.ranks[t],
					label: fmt.Sprintf("win %d: queued behind %s lock", g.id, hold),
				})
			}
		}
	}
	const maxEdges = 40
	if len(edges) > maxEdges {
		edges = edges[:maxEdges]
	}
	if len(edges) == 0 {
		return nil
	}
	tedges := make([]trace.WaitEdge, len(edges))
	for i, e := range edges {
		tedges[i] = trace.WaitEdge{From: e.from, To: e.to, Label: e.label}
	}
	states := make([]sim.SchedulerState, 0, 1)
	for _, e := range w.allEngines() {
		states = append(states, e.SchedulerState())
	}
	lines := []string{"wait-for graph:"}
	lines = append(lines, trace.RenderWaitGraph(tedges)...)
	lines = append(lines, trace.RenderSchedulerStates(states)...)
	return lines
}

// targetStatesSorted returns this handle's per-target passive-epoch
// states in sorted target order — a deterministic iteration over the
// lazily built map.
type targetStateRef struct {
	target int
	ts     *targetState
}

func (w *Win) targetStatesSorted() []targetStateRef {
	refs := make([]targetStateRef, 0, len(w.targets))
	for t, ts := range w.targets { // slice: already in ascending target order
		if ts == nil {
			continue
		}
		refs = append(refs, targetStateRef{target: t, ts: ts})
	}
	return refs
}
