package mpi

// lockManager arbitrates passive-target locks for one target rank of one
// window. Shared locks coexist; an exclusive lock excludes everything.
// Requests are granted in arrival order (FIFO fairness), so exclusive
// epochs from different origins to the same target serialize — the
// serialization cost that motivates Casper's per-user-process
// overlapping windows (Section III-A).
type lockManager struct {
	shared    int
	exclusive bool
	queue     []*lockReq
	grants    int64 // total grants, for tests/inspection

	// dead marks the manager's target as confirmed crashed. A dead
	// target cannot serialize anything, so the manager stops
	// arbitrating: the exclusive hold (if any) is downgraded to a
	// counted shared hold, the whole queue is admitted, and every later
	// request is granted immediately. Releases keep decrementing the
	// shared count so epoch teardown stays balanced. See reclaim.
	dead bool
}

type lockReq struct {
	origin int
	excl   bool
	grant  func() // invoked in engine context at grant time
}

// compatible reports whether a request can be granted now. To preserve
// FIFO fairness a shared request behind a queued exclusive one waits.
func (m *lockManager) compatible(req *lockReq) bool {
	if m.exclusive {
		return false
	}
	if req.excl {
		return m.shared == 0
	}
	return len(m.queue) == 0
}

// request is invoked in engine context when a lock request arrives.
func (m *lockManager) request(req *lockReq) {
	if m.dead {
		// The target is confirmed dead: grant immediately as a counted
		// shared hold so the origin's epoch can open, reroute its
		// operations, and close without waiting on a corpse.
		m.shared++
		m.grants++
		req.grant()
		return
	}
	if m.compatible(req) {
		m.admit(req)
		return
	}
	m.queue = append(m.queue, req)
}

func (m *lockManager) admit(req *lockReq) {
	if req.excl {
		m.exclusive = true
	} else {
		m.shared++
	}
	m.grants++
	req.grant()
}

// reclaim transitions the manager into dead mode after its target is
// confirmed crashed, mid-epoch if need be: the current exclusive hold
// (whose holder may itself be the dead rank, or an origin about to
// reroute) is downgraded to a counted shared hold and every queued
// waiter is admitted shared-counted, so no origin stays parked on a
// grant the dead target would never have serialized anyway. Exclusion
// is no longer meaningful — §III-B single-server ordering for the
// reclaimed target is re-established by the origins rerouting onto the
// surviving ghost's manager. Returns the number of holds and waiters
// reclaimed: standing shared holds (the manager stops enforcing their
// release ordering), a converted exclusive hold, and admitted waiters;
// 0 when the manager was idle.
func (m *lockManager) reclaim() int {
	if m.dead {
		return 0
	}
	m.dead = true
	n := m.shared
	if m.exclusive {
		m.exclusive = false
		m.shared++
		n++
	}
	for len(m.queue) > 0 {
		head := m.queue[0]
		m.queue = m.queue[1:]
		m.shared++
		m.grants++
		head.grant()
		n++
	}
	return n
}

// release is invoked in engine context when a release arrives.
func (m *lockManager) release(origin int, excl bool) {
	if m.dead {
		// Dead-mode holds are all shared-counted regardless of the mode
		// they were requested with; tolerate imbalance rather than
		// panicking over a corpse's bookkeeping.
		if m.shared > 0 {
			m.shared--
		}
		return
	}
	if excl {
		if !m.exclusive {
			panic("mpi: exclusive release without exclusive hold")
		}
		m.exclusive = false
	} else {
		if m.shared <= 0 {
			panic("mpi: shared release without shared hold")
		}
		m.shared--
	}
	// Admit from the queue head while compatible.
	for len(m.queue) > 0 {
		head := m.queue[0]
		if head.excl {
			if m.exclusive || m.shared > 0 {
				break
			}
		} else if m.exclusive {
			break
		}
		m.queue = m.queue[1:]
		m.admit(head)
	}
}

// Held reports the current hold state, for tests.
func (m *lockManager) held() (shared int, exclusive bool) {
	return m.shared, m.exclusive
}
