package mpi

// lockManager arbitrates passive-target locks for one target rank of one
// window. Shared locks coexist; an exclusive lock excludes everything.
// Requests are granted in arrival order (FIFO fairness), so exclusive
// epochs from different origins to the same target serialize — the
// serialization cost that motivates Casper's per-user-process
// overlapping windows (Section III-A).
type lockManager struct {
	shared    int
	exclusive bool
	queue     []*lockReq
	grants    int64 // total grants, for tests/inspection
}

type lockReq struct {
	origin int
	excl   bool
	grant  func() // invoked in engine context at grant time
}

// compatible reports whether a request can be granted now. To preserve
// FIFO fairness a shared request behind a queued exclusive one waits.
func (m *lockManager) compatible(req *lockReq) bool {
	if m.exclusive {
		return false
	}
	if req.excl {
		return m.shared == 0
	}
	return len(m.queue) == 0
}

// request is invoked in engine context when a lock request arrives.
func (m *lockManager) request(req *lockReq) {
	if m.compatible(req) {
		m.admit(req)
		return
	}
	m.queue = append(m.queue, req)
}

func (m *lockManager) admit(req *lockReq) {
	if req.excl {
		m.exclusive = true
	} else {
		m.shared++
	}
	m.grants++
	req.grant()
}

// release is invoked in engine context when a release arrives.
func (m *lockManager) release(origin int, excl bool) {
	if excl {
		if !m.exclusive {
			panic("mpi: exclusive release without exclusive hold")
		}
		m.exclusive = false
	} else {
		if m.shared <= 0 {
			panic("mpi: shared release without shared hold")
		}
		m.shared--
	}
	// Admit from the queue head while compatible.
	for len(m.queue) > 0 {
		head := m.queue[0]
		if head.excl {
			if m.exclusive || m.shared > 0 {
				break
			}
		} else if m.exclusive {
			break
		}
		m.queue = m.queue[1:]
		m.admit(head)
	}
}

// Held reports the current hold state, for tests.
func (m *lockManager) held() (shared int, exclusive bool) {
	return m.shared, m.exclusive
}
