package mpi

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// shardState is the parallel-execution state of a sharded world:
// min(cfg.Shards, nodes) simulation engines, each owning a contiguous
// block of nodes (ghosts co-located with the app ranks they serve),
// run under conservative safe windows by sim.ShardGroup. One engine
// per worker keeps the per-barrier cost O(shards) rather than O(nodes)
// — messages between nodes on the same engine are ordinary heap events
// with no lookahead constraint, so only genuinely cross-worker traffic
// pays for mailboxes and window limits. The window width is half the
// network model's lookahead — halving is what makes two-hop
// interactions (a member contribution relayed to an owner shard, then
// a wake relayed back) legal, since every cross-node cost is at least
// one full lookahead and therefore at least two windows.
type shardState struct {
	group   *sim.ShardGroup
	engines []*sim.Engine
	pools   []bufPool
	memos   []*netmodel.Memo
	shardOf []int // world rank -> shard (engine) index
	window  sim.Duration

	// mu guards the world-global registries mutated from arbitrary shard
	// engines while windows run in parallel: comm/window/segment sequence
	// counters and lists, groupComms, SharedState, and window handle
	// lists. Registry IDs may therefore be allocated in wall-clock order
	// across shards — they are process-local handles that never reach
	// experiment output, so observable behaviour stays deterministic.
	mu sync.Mutex
}

// shardEligible reports whether cfg selects — and the world supports —
// sharded execution. Fault plans, flow control, and the validator all
// thread world-global mutable state through every message, and a
// single-node world has no cross-node latency to hide behind; those
// worlds silently fall back to the serial engine, which is always
// correct (and for a single node, just as fast).
func shardEligible(cfg Config, place *cluster.Placement) bool {
	if cfg.Shards <= 0 || cfg.NoShardedSim {
		return false
	}
	if cfg.Fault != nil || cfg.Flow != nil || cfg.Validate {
		return false
	}
	if place.NodesUsed() < 2 {
		return false
	}
	return cfg.Net.Lookahead()/2 > 0
}

// newShardState builds the shard engines, pools, and memo caches and
// wires them into a ShardGroup with one worker per engine. Nodes are
// distributed over the engines in contiguous blocks, so placements with
// neighbour locality (stencils) keep most traffic engine-local.
func newShardState(w *World) *shardState {
	n := w.place.NodesUsed()
	ne := w.cfg.Shards
	if ne > n {
		ne = n
	}
	s := &shardState{
		engines: make([]*sim.Engine, ne),
		pools:   make([]bufPool, ne),
		memos:   make([]*netmodel.Memo, ne),
		shardOf: make([]int, w.cfg.N),
		window:  w.cfg.Net.Lookahead() / 2,
	}
	for i := range s.engines {
		s.engines[i] = sim.New(w.cfg.Seed + int64(i))
		s.engines[i].SetScheduler(w.cfg.Sched)
		s.memos[i] = netmodel.NewMemo(w.cfg.Net)
	}
	for r := range s.shardOf {
		s.shardOf[r] = w.place.Node(r) * ne / n
	}
	s.group = sim.NewShardGroup(s.engines, s.window, ne)
	return s
}

// --- Cross-shard collectives ----------------------------------------
//
// A communicator spanning shards cannot use the serial rendezvous (a
// shared collOp mutated by every member) — members run on different
// engines in the same window. Instead the comm's owner shard (the
// engine of comm rank 0) mediates: each member ships a contribution
// through the mailbox system exactly one window into its future (the
// earliest legal injection), the owner gathers them in deterministic
// (time, seq) order, and when the last arrives it runs the reduce and
// relays the result back at the collective's completion time.
//
// Timing is identical to the serial path: a contribution sent at member
// time t arrives at the owner at t+window, so the owner's last-arrival
// clock is t_last+window and the completion time
//
//	T = lastAt - window + cost = t_last + cost
//
// matches the serial engine's After(cost) from the last arriver. The
// relay back is legal because every collective's cost spans at least
// one full cross-node latency (rounds >= 1), i.e. at least two windows:
// T - lastAt = cost - window >= window.

// contribution is one member's arrival at a cross-shard collective.
type contribution struct {
	gen     int
	name    string
	member  int // comm rank
	val     interface{}
	cost    sim.Duration
	reduce  func(vals []interface{}) interface{}
	wake    func(result interface{})
	wakeEng *sim.Engine
}

type memberWake struct {
	fn  func(result interface{})
	eng *sim.Engine
}

// shardColl is the owner-side rendezvous state of one cross-shard
// collective generation.
type shardColl struct {
	name    string
	arrived int
	vals    []interface{}
	lastAt  sim.Time
	cost    sim.Duration
	reduce  func(vals []interface{}) interface{}
	wakes   []memberWake
}

// collectiveSharded is the member side: contribute to the owner shard
// and park until the relayed completion. Caller holds mpiEnter.
func (c *Comm) collectiveSharded(name string, val interface{},
	cost sim.Duration, reduce func(vals []interface{}) interface{}) interface{} {
	r := c.r
	g := c.g
	gen := g.gen[c.me]
	g.gen[c.me]++
	var done sim.Completion
	var result interface{}
	ct := &contribution{
		gen: gen, name: name, member: c.me, val: val,
		cost: cost, reduce: reduce,
		wake: func(res interface{}) {
			result = res
			done.Complete()
		},
		wakeEng: r.eng,
	}
	s := g.w.sharded
	at := r.eng.Now().Add(s.window)
	s.group.Inject(r.eng, g.eng, at, func() { g.shardArrive(ct) })
	done.Await(r.proc, name)
	return result
}

// shardArrive runs at the owner shard's engine, once per contribution,
// in deterministic (time, banded-seq) order. Like the serial
// rendezvous, the last processed contribution's cost and reduce win.
func (g *commGlobal) shardArrive(ct *contribution) {
	s := g.w.sharded
	sc, ok := g.scolls[ct.gen]
	if !ok {
		sc = &shardColl{name: ct.name, vals: make([]interface{}, len(g.ranks))}
		g.scolls[ct.gen] = sc
	}
	if sc.name != ct.name {
		panic(fmt.Sprintf("mpi: collective mismatch on comm%d: rank %d called %s while others called %s",
			g.id, ct.member, ct.name, sc.name))
	}
	sc.vals[ct.member] = ct.val
	sc.arrived++
	sc.cost = ct.cost
	sc.reduce = ct.reduce
	sc.lastAt = g.eng.Now()
	sc.wakes = append(sc.wakes, memberWake{fn: ct.wake, eng: ct.wakeEng})
	if sc.arrived < len(g.ranks) {
		return
	}
	delete(g.scolls, ct.gen)
	var res interface{}
	if sc.reduce != nil {
		res = sc.reduce(sc.vals)
	}
	at := sc.lastAt.Add(sc.cost - s.window)
	for _, mw := range sc.wakes {
		fn := mw.fn
		if mw.eng == g.eng {
			g.eng.At(at, func() { fn(res) })
		} else {
			s.group.Inject(g.eng, mw.eng, at, func() { fn(res) })
		}
	}
}
