package mpi

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// rankEngine is a rank's target-side RMA progress engine: the simulated
// MPI stack that services incoming software active messages. It is the
// heart of the reproduction — which entity runs this engine, and when,
// is exactly what distinguishes the paper's progress models:
//
//   - ProgressNone: the rank's own core services AMs, but only while the
//     rank is inside an MPI call (inMPI > 0). AMs arriving while the rank
//     computes wait in pending.
//   - ProgressThread: a background thread services AMs immediately, with
//     the ThreadAM lock-contention multiplier; when oversubscribed it
//     also steals the host's compute cycles.
//   - ProgressInterrupt: AMs arriving while the rank is outside MPI
//     raise an interrupt — the handler pays InterruptCost and steals the
//     host's cycles (the DMAPP model).
//
// A Casper ghost process needs no special mode: it parks inside MPI_RECV
// forever, so inMPI is always > 0 and its AMs are serviced on arrival at
// full speed — the paper's central mechanism.
type rankEngine struct {
	r       *Rank
	srv     *sim.Server // serial AM service pipeline of this rank
	inMPI   int         // MPI call nesting depth
	pending []*rmaOp    // software AMs deferred until the next MPI entry
	stolen  sim.Duration

	// Load telemetry for the overload rebalancer: AMs submitted to the
	// pipeline but not yet serviced, the high-water mark, and an EWMA
	// of per-AM service cost. Pure bookkeeping — never affects timing.
	depth      int
	peakDepth  int
	ewma       float64      // smoothed AM service cost, ns
	depthInteg sim.Duration // time integral of depth (depth x elapsed)
	depthAt    sim.Time     // last depth change
}

func (e *rankEngine) init(r *Rank) {
	e.r = r
	e.srv = sim.NewServer(r.eng)
}

// LoadDepth returns the number of software AMs submitted to this
// rank's service pipeline and not yet serviced.
func (r *Rank) LoadDepth() int { return r.engine.depth }

// PeakLoadDepth returns the high-water mark of LoadDepth.
func (r *Rank) PeakLoadDepth() int { return r.engine.peakDepth }

// ServiceEWMA returns the smoothed per-AM service cost observed at
// this rank, in nanoseconds (0 before the first AM).
func (r *Rank) ServiceEWMA() float64 { return r.engine.ewma }

// LoadIntegral returns the time integral of LoadDepth since the start
// of the run. The delta between two samples divided by the sampling
// interval is the average queue depth over that interval — a burst-
// and flush-dip-free load signal for the overload rebalancer.
func (r *Rank) LoadIntegral() sim.Duration {
	e := r.engine
	return e.depthInteg + sim.Duration(e.depth)*sim.Duration(r.eng.Now().Sub(e.depthAt))
}

// noteDepth accrues the depth integral and applies a depth change.
func (e *rankEngine) noteDepth(dd int) {
	now := e.r.eng.Now()
	e.depthInteg += sim.Duration(e.depth) * sim.Duration(now.Sub(e.depthAt))
	e.depthAt = now
	e.depth += dd
	if e.depth > e.peakDepth {
		e.peakDepth = e.depth
	}
}

// BacklogEstimate returns the estimated virtual time this rank needs
// to drain its queued AMs: queue depth × smoothed service cost. The
// overload rebalancer compares these across a node's ghosts.
func (r *Rank) BacklogEstimate() sim.Duration {
	return sim.Duration(float64(r.engine.depth) * r.engine.ewma)
}

// enterMPI marks the rank inside MPI, draining any deferred AMs into the
// service pipeline (the poll that blocking MPI calls perform).
func (e *rankEngine) enterMPI() {
	e.inMPI++
	if e.inMPI == 1 && len(e.pending) > 0 {
		ops := e.pending
		e.pending = nil
		for _, op := range ops {
			e.service(op, 1.0, 0)
		}
	}
}

// drainDeferred services any deferred AMs if the rank is currently
// inside MPI — the revive-time analogue of the enterMPI poll, needed
// because a rank frozen while parked inside an MPI call re-enters
// nothing on thaw.
func (e *rankEngine) drainDeferred() {
	if e.inMPI > 0 && len(e.pending) > 0 {
		ops := e.pending
		e.pending = nil
		for _, op := range ops {
			e.service(op, 1.0, 0)
		}
	}
}

func (e *rankEngine) leaveMPI() {
	e.inMPI--
	if e.inMPI < 0 {
		panic("mpi: unbalanced leaveMPI")
	}
}

// deliver is invoked (in engine context) when a software AM arrives at
// this rank. The op's arrived field carries the NIC delivery time.
func (e *rankEngine) deliver(op *rmaOp) {
	r := e.r
	if r.failed {
		// Dead target: swallow; the origin recovers via timeout/failover.
		return
	}
	if r.down {
		// Down-recoverable target: the AM waits in pending and is
		// serviced once the revived rank drains it (drainDeferred at
		// thaw, or its next MPI entry).
		e.pending = append(e.pending, op)
		return
	}
	if now := r.eng.Now(); now < r.stalledUntil {
		// Stalled progress engine: the AM sits in the NIC until the
		// stall ends. Regular event — the origin is parked waiting for
		// the ack, so this must keep the simulation alive. The original
		// arrival time is kept, so the trace shows the full stall.
		// (Cold path: a closure here is fine; it must redeliver to THIS
		// engine, which may differ from rankOf(op.target) on failover.)
		until := r.stalledUntil
		r.eng.At(until, func() { e.deliver(op) })
		return
	}
	switch e.r.w.cfg.Progress {
	case ProgressNone:
		if e.inMPI > 0 {
			e.service(op, 1.0, 0)
		} else {
			e.pending = append(e.pending, op)
		}
	case ProgressThread:
		cost := e.service(op, e.r.w.net.ThreadAM, 0)
		if e.r.w.cfg.ThreadOversubscribed {
			// The progress thread shares the host core: its service
			// time is stolen from the host's computation.
			e.stolen += cost
			e.r.stats.StolenTime += cost
		}
	case ProgressInterrupt:
		if e.inMPI > 0 {
			e.service(op, 1.0, 0)
		} else {
			cost := e.service(op, 1.0, e.r.w.net.InterruptCost)
			e.r.stats.Interrupts++
			e.stolen += cost
			e.r.stats.StolenTime += cost
		}
	}
}

// service submits the AM to the rank's serial pipeline. factor scales the
// processing cost (thread lock contention); extra adds a fixed overhead
// (interrupt entry). It returns the total service time charged.
func (e *rankEngine) service(op *rmaOp, factor float64, extra sim.Duration) sim.Duration {
	cost := sim.Duration(float64(e.r.memo.AMCost(op.bytes(), op.contiguous()))*factor) + extra
	e.noteDepth(1)
	if e.ewma == 0 {
		e.ewma = float64(cost)
	} else {
		e.ewma = 0.75*e.ewma + 0.25*float64(cost)
	}
	// The op itself is the completion event (phase opPhaseSvcDone pops
	// the depth and applies+acks), so queuing a job allocates nothing.
	op.phase = opPhaseSvcDone
	op.svcOwner = e.r.id
	end := e.srv.SubmitRun(op.arrived, cost, op)
	op.svcStart, op.svcEnd = end.Add(-cost), end
	e.r.stats.SoftwareAMs++
	e.r.stats.BytesIn += int64(op.bytes())
	if tr := e.r.w.tracer; tr.Enabled() {
		tr.RecordService(trace.Service{
			Rank:      e.r.id,
			Origin:    op.win.comm.ranks[op.origin],
			Kind:      op.kind.String(),
			Bytes:     op.bytes(),
			Arrived:   op.arrived,
			Start:     op.svcStart,
			End:       op.svcEnd,
			Interrupt: extra > 0,
		})
	}
	return cost
}
