package mpi

import (
	"testing"

	"repro/internal/sim"
)

func TestIsendIrecvRoundTrip(t *testing.T) {
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 0 {
			q := c.Isend(1, 7, []byte("async"))
			if !q.Done() {
				t.Error("eager isend should complete at issue")
			}
			q.Wait()
		} else {
			q := c.Irecv(0, 7)
			data, st := q.Wait()
			if string(data) != "async" || st.Source != 0 || st.Tag != 7 {
				t.Errorf("got %q %+v", data, st)
			}
		}
	})
}

func TestIrecvMatchesAlreadyArrived(t *testing.T) {
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 0 {
			c.Send(1, 3, []byte("early"))
			c.Send(1, 4, nil) // ordering fence
		} else {
			c.Recv(0, 4) // guarantees tag-3 message already arrived
			q := c.Irecv(0, 3)
			if !q.Done() {
				t.Error("irecv of arrived message should be complete")
			}
			data, _, ok := q.Test()
			if !ok || string(data) != "early" {
				t.Errorf("Test = %q, %v", data, ok)
			}
		}
	})
}

func TestRequestTestNonblocking(t *testing.T) {
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 1 {
			q := c.Irecv(0, 9)
			if _, _, ok := q.Test(); ok {
				t.Error("Test true before send")
			}
			c.Send(0, 1, nil) // tell rank 0 to send
			data, _ := q.Wait()
			if string(data) != "x" {
				t.Errorf("got %q", data)
			}
		} else {
			c.Recv(1, 1)
			c.Send(1, 9, []byte("x"))
		}
	})
}

func TestIrecvDoesNotProvideProgress(t *testing.T) {
	// A pending Irecv leaves the rank outside MPI: software RMA to it
	// still stalls. This distinguishes posting a receive from being
	// parked inside one.
	var originTime sim.Duration
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			start := r.Now()
			win.LockAll(AssertNone)
			win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			win.UnlockAll()
			originTime = r.Now().Sub(start)
			c.Send(1, 5, nil)
		} else {
			q := c.Irecv(0, 5)
			r.Compute(200 * sim.Microsecond) // outside MPI despite posted recv
			q.Wait()
		}
		c.Barrier()
	})
	if originTime < 150*sim.Microsecond {
		t.Fatalf("origin finished in %v; a posted Irecv must not give progress", originTime)
	}
}

func TestWaitAll(t *testing.T) {
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 0 {
			q1 := c.Irecv(1, 1)
			q2 := c.Irecv(2, 2)
			WaitAll(q1, q2)
			if !q1.Done() || !q2.Done() {
				t.Error("WaitAll left requests pending")
			}
		} else {
			r.Compute(sim.Duration(r.Rank()) * 10 * sim.Microsecond)
			c.Send(0, r.Rank(), []byte{byte(r.Rank())})
		}
	})
}

func TestProbeThenRecv(t *testing.T) {
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 0 {
			r.Compute(30 * sim.Microsecond)
			c.Send(1, 42, []byte("probed"))
		} else {
			st := c.Probe(AnySource, AnyTag)
			if st.Source != 0 || st.Tag != 42 {
				t.Errorf("probe status %+v", st)
			}
			// Message must still be receivable.
			data, _ := c.Recv(st.Source, st.Tag)
			if string(data) != "probed" {
				t.Errorf("got %q", data)
			}
		}
	})
}

func TestIprobe(t *testing.T) {
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 1 {
			if _, ok := c.Iprobe(0, 1); ok {
				t.Error("Iprobe true before send")
			}
			c.Send(0, 2, nil)
			st := c.Probe(0, 1)
			if got, ok := c.Iprobe(0, 1); !ok || got != st {
				t.Error("Iprobe after arrival disagrees with Probe")
			}
			c.Recv(0, 1)
		} else {
			c.Recv(1, 2)
			c.Send(1, 1, []byte("z"))
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	got := make([]string, 2)
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		other := 1 - r.Rank()
		data, _ := c.Sendrecv(other, 5, []byte{byte('a' + r.Rank())}, other, 5)
		got[r.Rank()] = string(data)
	})
	if got[0] != "b" || got[1] != "a" {
		t.Fatalf("exchange got %v", got)
	}
}

func TestRGetCompletesWithData(t *testing.T) {
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 16, nil)
		if r.Rank() == 1 {
			copy(buf, PutFloat64s([]float64{2.5, -4}))
		}
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			dst := make([]byte, 16)
			q := win.RGet(dst, 1, 0, TypeOf(Float64, 2))
			q.Wait()
			vals := GetFloat64s(dst)
			if vals[0] != 2.5 || vals[1] != -4 {
				t.Errorf("RGet = %v", vals)
			}
			win.UnlockAll()
		}
		c.Barrier()
	})
}

func TestRPutRemoteCompletion(t *testing.T) {
	var seen float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			q := win.RPut(PutFloat64s([]float64{6}), 1, 0, Scalar(Float64))
			if q.Done() {
				t.Error("RPut complete before any progress")
			}
			q.Wait()
			win.UnlockAll()
			c.Send(1, 1, nil)
		} else {
			c.Recv(0, 1)
			seen = GetFloat64s(buf)[0]
		}
		c.Barrier()
	})
	if seen != 6 {
		t.Fatalf("after RPut wait, target saw %v", seen)
	}
}

func TestCollectivesExtended(t *testing.T) {
	mustRun(t, testConfig(4, 4), func(r *Rank) {
		c := r.CommWorld()
		// Reduce to root 2.
		red := c.ReduceFloat64(2, []float64{float64(r.Rank())}, OpSum)
		if r.Rank() == 2 {
			if red[0] != 6 {
				t.Errorf("reduce = %v", red)
			}
		} else if red != nil {
			t.Error("non-root got reduce data")
		}
		// Allgather.
		ag := c.AllgatherFloat64([]float64{float64(r.Rank() * 2)})
		for i := 0; i < 4; i++ {
			if ag[i] != float64(2*i) {
				t.Errorf("allgather = %v", ag)
			}
		}
		// Alltoall: rank r sends value 10*r+i to rank i.
		send := make([]float64, 4)
		for i := range send {
			send[i] = float64(10*r.Rank() + i)
		}
		recv := c.AlltoallFloat64(send)
		for i := 0; i < 4; i++ {
			if recv[i] != float64(10*i+r.Rank()) {
				t.Errorf("alltoall = %v", recv)
			}
		}
	})
}

func TestAlltoallWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		r.CommWorld().AlltoallFloat64([]float64{1, 2, 3})
	})
}
