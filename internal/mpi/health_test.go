package mpi

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// The two-phase failure detector must tell a stalled ghost from a
// crashed one: both go silent past the grace period, but only the crash
// may be confirmed — a stalled rank still answers transport-level
// probes, and its resumed beacons must clear the suspicion. Confusing
// the two would trigger irrevocable recovery (succession, lock
// reclamation, rebinding) against a rank that is about to wake up.

// TestStallSuspectedNeverConfirmed stalls a tracked rank for well over
// the grace period. The detector must suspect it, keep probing, and
// clear the suspicion when the stall lifts — never confirming death.
func TestStallSuspectedNeverConfirmed(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Fault = &fault.Plan{Seed: 3, Stalls: []fault.Stall{
		// 3x the 80us grace period of beacon silence.
		{Rank: 1, At: sim.Time(30 * sim.Microsecond), Duration: 240 * sim.Microsecond},
	}}
	w := mustRun(t, cfg, func(r *Rank) {
		r.World().TrackHealth([]int{1})
		c := r.CommWorld()
		c.Barrier()
		// Keep the world alive through stall, suspicion and recovery.
		r.Compute(sim.Microseconds(500))
		c.Barrier()
	})
	s := w.Summary()
	if w.HealthFailed(1) {
		t.Fatal("stalled rank confirmed dead: probes or beacon hysteresis broken")
	}
	if s.RanksFailed != 0 {
		t.Fatalf("RanksFailed = %d for a stall-only plan", s.RanksFailed)
	}
	if s.Suspects == 0 {
		t.Fatal("a stall 3x the grace period never raised suspicion")
	}
	if s.FalseSuspects == 0 {
		t.Fatal("resumed beacons did not clear the suspicion as a false suspect")
	}
}

// TestCrashSuspectedThenConfirmed crashes a tracked rank. The detector
// must pass through the suspect phase (probes go unanswered) and then
// confirm, firing HealthFailed — with no false-suspect hysteresis.
func TestCrashSuspectedThenConfirmed(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Fault = &fault.Plan{Seed: 3, Crashes: []fault.Crash{
		{Rank: 1, At: sim.Time(50 * sim.Microsecond)},
	}}
	w := mustRun(t, cfg, func(r *Rank) {
		r.World().TrackHealth([]int{1})
		c := r.CommWorld()
		c.Barrier()
		if r.Rank() == 1 {
			r.Compute(sim.Microseconds(10000)) // parked when the crash fires
			return
		}
		r.Compute(sim.Microseconds(500)) // outlive grace + sweep slack
	})
	s := w.Summary()
	if !w.HealthFailed(1) {
		t.Fatal("crashed rank never confirmed dead")
	}
	if w.HealthSuspected(1) {
		t.Fatal("confirmation left the rank in the suspect phase")
	}
	if s.Suspects == 0 {
		t.Fatal("confirmation skipped the suspect phase")
	}
	if s.FalseSuspects != 0 {
		t.Fatalf("FalseSuspects = %d for a real crash", s.FalseSuspects)
	}
}

// TestLockManagerReclaim exercises the dead-mode transition directly:
// an exclusive hold plus queued waiters must all convert to counted
// shared holds, later requests must grant immediately, and releases
// must stay balanced — no origin may stay parked on a corpse's grant.
func TestLockManagerReclaim(t *testing.T) {
	m := &lockManager{}
	granted := make([]bool, 3)
	m.request(&lockReq{origin: 0, excl: true, grant: func() { granted[0] = true }})
	m.request(&lockReq{origin: 1, excl: true, grant: func() { granted[1] = true }})
	m.request(&lockReq{origin: 2, excl: false, grant: func() { granted[2] = true }})
	if !granted[0] || granted[1] || granted[2] {
		t.Fatalf("pre-reclaim grants = %v, want only the first", granted)
	}
	if n := m.reclaim(); n != 3 {
		t.Fatalf("reclaim() = %d, want 3 (1 hold + 2 waiters)", n)
	}
	if !granted[1] || !granted[2] {
		t.Fatalf("queued waiters not granted on reclaim: %v", granted)
	}
	if sh, ex := m.held(); ex || sh != 3 {
		t.Fatalf("post-reclaim holds = %d shared, excl=%v; want 3 shared", sh, ex)
	}
	// Dead mode: new requests grant immediately, even exclusive ones.
	var late bool
	m.request(&lockReq{origin: 1, excl: true, grant: func() { late = true }})
	if !late {
		t.Fatal("dead-mode request not granted immediately")
	}
	for i := 0; i < 4; i++ {
		m.release(i%3, i == 0) // modes may mismatch; dead mode tolerates
	}
	if sh, _ := m.held(); sh != 0 {
		t.Fatalf("releases left %d shared holds", sh)
	}
	if n := m.reclaim(); n != 0 {
		t.Fatalf("second reclaim() = %d, want 0 (idempotent)", n)
	}
}

// TestLockReclaimUnblocksWaiters is the world-level version: rank 0
// holds an exclusive lock on rank 2's window when rank 2 crashes, with
// rank 1 queued behind it. Detection must reclaim the manager mid-epoch
// so rank 1's Lock returns while rank 0 still holds — neither origin
// may hang, and the reclaim must be counted on the dead rank.
func TestLockReclaimUnblocksWaiters(t *testing.T) {
	cfg := testConfig(3, 3)
	cfg.Net.LockLazy = false // eager grants: the hold exists when the crash lands
	cfg.Fault = &fault.Plan{Seed: 3, Crashes: []fault.Crash{
		{Rank: 2, At: sim.Time(60 * sim.Microsecond)},
	}}
	var lockedAt, unlockedAt sim.Time
	w := mustRun(t, cfg, func(r *Rank) {
		r.World().TrackHealth([]int{2})
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		switch r.Rank() {
		case 0:
			win.Lock(2, LockExclusive, AssertNone)
			r.Compute(sim.Microseconds(400)) // hold across crash + detection
			win.Unlock(2)
			unlockedAt = r.Now()
		case 1:
			r.Compute(sim.Microseconds(20)) // queue behind rank 0's hold
			win.Lock(2, LockExclusive, AssertNone)
			lockedAt = r.Now()
			win.Unlock(2)
		case 2:
			r.Compute(sim.Microseconds(10000)) // parked when the crash fires
		}
	})
	s := w.Summary()
	if s.LocksReclaimed != 2 {
		t.Fatalf("LocksReclaimed = %d, want 2 (rank 0's hold + rank 1's wait)", s.LocksReclaimed)
	}
	if lockedAt == 0 || lockedAt >= unlockedAt {
		t.Fatalf("waiter granted at %v, holder released at %v: reclaim waited for the epoch boundary",
			lockedAt, unlockedAt)
	}
}
