package mpi

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// reliabilityWorkload mixes the traffic classes the reliable transport
// carries: RMA accumulates (exactly-once matters), a flush (acks
// matter), p2p messages (in-order delivery matters) and collectives.
// Every rank except 1 accumulates 20 ones into rank 1's window.
func reliabilityWorkload(r *Rank) {
	c := r.CommWorld()
	win, buf := r.WinAllocate(c, 64, nil)
	c.Barrier()
	win.LockAll(AssertNone)
	if r.Rank() != 1 {
		for i := 0; i < 20; i++ {
			win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
		}
		win.FlushAll()
	}
	win.UnlockAll()
	c.Barrier()
	if r.Rank() == 0 {
		c.Send(1, 9, []byte("ordered"))
		c.Send(1, 9, []byte("delivery"))
	} else if r.Rank() == 1 {
		if d, _ := c.Recv(0, 9); string(d) != "ordered" {
			panic("p2p message reordered: " + string(d))
		}
		if d, _ := c.Recv(0, 9); string(d) != "delivery" {
			panic("p2p message reordered: " + string(d))
		}
	}
	c.Barrier()
	if r.Rank() == 1 {
		if got := GetFloat64s(buf[:8])[0]; got != 60 {
			panic("accumulate total wrong")
		}
	}
}

func faultWorkloadConfig(plan *fault.Plan) Config {
	cfg := testConfig(4, 4)
	cfg.Fault = plan
	return cfg
}

// TestZeroRatePlanBitIdentical is the determinism regression: a world
// with an all-zero-rate fault plan must be bit-identical — same end
// time, same counters, all reliability counters zero — to a world with
// no fault layer at all.
func TestZeroRatePlanBitIdentical(t *testing.T) {
	base := mustRun(t, faultWorkloadConfig(nil), reliabilityWorkload).Summary()
	zero := mustRun(t, faultWorkloadConfig(&fault.Plan{Seed: 7}), reliabilityWorkload).Summary()
	// The reliability layer's timers occupy the event scheduler even at
	// zero rates; its occupancy gauge is the one field allowed to differ.
	base.PeakQueueResidency, zero.PeakQueueResidency = 0, 0
	if base != zero {
		t.Fatalf("zero-rate plan perturbed the world:\nbase: %v\nzero: %v", base, zero)
	}
	if zero.Retransmits|zero.FaultDrops|zero.DupsSuppressed|zero.Abandoned != 0 {
		t.Fatalf("zero-rate plan shows reliability activity: %v", zero)
	}
}

// TestDropsRecoveredExactlyOnce: under message drops the workload's
// value checks (exact accumulate total, in-order p2p) must still pass —
// retransmission with duplicate suppression gives exactly-once
// application of every operation.
func TestDropsRecoveredExactlyOnce(t *testing.T) {
	plan := &fault.Plan{Seed: 11, DropRate: 0.15}
	s := mustRun(t, faultWorkloadConfig(plan), reliabilityWorkload).Summary()
	if s.FaultDrops == 0 {
		t.Fatal("plan never dropped anything; rate too low for the traffic volume")
	}
	if s.Retransmits == 0 {
		t.Fatal("drops happened but nothing was retransmitted")
	}
	if s.Abandoned != 0 {
		t.Fatalf("%d operations abandoned under recoverable drops", s.Abandoned)
	}
}

// TestDupsSuppressed: duplicated transmissions must be detected and
// dropped at the receiver, keeping accumulates exactly-once.
func TestDupsSuppressed(t *testing.T) {
	plan := &fault.Plan{Seed: 5, DupRate: 0.3}
	s := mustRun(t, faultWorkloadConfig(plan), reliabilityWorkload).Summary()
	if s.FaultDups == 0 {
		t.Fatal("plan never duplicated anything")
	}
	if s.DupsSuppressed == 0 {
		t.Fatal("duplicates were injected but none suppressed")
	}
}

// TestDelaysReordered: delayed transmissions may overtake each other on
// the wire; sequence numbers must restore FIFO order per stream (the
// workload's p2p ordering check and same-origin accumulate ordering).
func TestDelaysReordered(t *testing.T) {
	plan := &fault.Plan{Seed: 23, DelayRate: 0.5, DelayMax: 40 * sim.Microsecond}
	s := mustRun(t, faultWorkloadConfig(plan), reliabilityWorkload).Summary()
	if s.FaultDelays == 0 {
		t.Fatal("plan never delayed anything")
	}
}

// TestSameSeedSamePlanIdenticalRuns: the full faulty execution is
// reproducible — same seed, same plan, bit-identical summary.
func TestSameSeedSamePlanIdenticalRuns(t *testing.T) {
	plan := fault.Plan{Seed: 13, DropRate: 0.1, DelayRate: 0.2, DupRate: 0.1}
	p1, p2 := plan, plan
	a := mustRun(t, faultWorkloadConfig(&p1), reliabilityWorkload).Summary()
	b := mustRun(t, faultWorkloadConfig(&p2), reliabilityWorkload).Summary()
	if a != b {
		t.Fatalf("same seed+plan diverged:\na: %v\nb: %v", a, b)
	}
}

// TestErrorsReturnRMARange: under MPI_ERRORS_RETURN an out-of-range RMA
// op surfaces a typed error on the origin instead of panicking, and the
// op becomes a no-op.
func TestErrorsReturnRMARange(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Errors = ErrorsReturn
	mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Put(PutFloat64s([]float64{1}), 1, 64, Scalar(Float64)) // outside 8-byte window
			err := r.Err()
			if err == nil {
				t.Error("no error recorded for out-of-range put")
			} else if err.Class != ErrRMARange {
				t.Errorf("class = %v, want MPI_ERR_RMA_RANGE", err.Class)
			}
			r.ClearErr()
			if r.Err() != nil {
				t.Error("ClearErr did not clear")
			}
			win.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 1 && GetFloat64s(buf)[0] != 0 {
			t.Error("erroneous put mutated target memory")
		}
		c.Barrier()
	})
}

// TestErrorsReturnProcFailed: an RMA op whose target crashed — with no
// failover route installed — surfaces MPI_ERR_PROC_FAILED on the origin
// once the transport gives up, instead of hanging or panicking.
func TestErrorsReturnProcFailed(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Errors = ErrorsReturn
	cfg.Fault = &fault.Plan{Seed: 3, Crashes: []fault.Crash{{Rank: 1, At: sim.Time(50 * sim.Microsecond)}}}
	mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() == 1 {
			r.Compute(sim.Microseconds(10000)) // parked when the crash fires
			return
		}
		r.Compute(sim.Microseconds(100)) // issue after the target is dead
		win.LockAll(AssertNone)
		win.Put(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64))
		win.FlushAll() // completes via abandonment, not a hang
		win.UnlockAll()
		err := r.Err()
		if err == nil {
			t.Error("no error for op to crashed target")
		} else if err.Class != ErrProcFailed {
			t.Errorf("class = %v, want MPI_ERR_PROC_FAILED", err.Class)
		} else if !strings.Contains(err.Msg, "failed") {
			t.Errorf("unhelpful message: %q", err.Msg)
		}
	})
}

// TestFatalModeStillPanics: the default error mode preserves the
// historical panic behaviour with the exact message.
func TestFatalModeStillPanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic in fatal mode")
		}
		if !strings.Contains(p.(string), "outside") {
			t.Fatalf("wrong panic: %v", p)
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win, _ := r.WinAllocate(r.CommWorld(), 8, nil)
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Put(PutFloat64s([]float64{1}), 1, 64, Scalar(Float64))
		}
	})
}

// TestCrashedPeerP2PSilent: point-to-point sends to a crashed rank are
// silently dropped (counted, not fatal) — the shutdown fan-out of
// layered runtimes must survive dead peers.
func TestCrashedPeerP2PSilent(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Fault = &fault.Plan{Seed: 3, Crashes: []fault.Crash{{Rank: 1, At: sim.Time(10 * sim.Microsecond)}}}
	w := mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		c.Barrier()
		if r.Rank() == 1 {
			r.Compute(sim.Microseconds(1000))
			return
		}
		r.Compute(sim.Microseconds(500))
		c.Send(1, 4, []byte("into the void"))
		// Stay alive past the retransmission timeout so the transport
		// gets to classify the loss.
		r.Compute(sim.Microseconds(500))
	})
	if s := w.Summary(); s.P2PLost == 0 {
		t.Fatalf("lost p2p send not counted: %v", s)
	}
}

// TestStallDelaysService: a stalled rank services active messages only
// after the stall ends, so an op issued into the stall completes late
// but correctly.
func TestStallDelaysService(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Fault = &fault.Plan{Seed: 3, Stalls: []fault.Stall{
		{Rank: 1, At: sim.Time(30 * sim.Microsecond), Duration: 300 * sim.Microsecond},
	}}
	var flushedAt sim.Time
	mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() == 0 {
			r.Compute(sim.Microseconds(50)) // target now mid-stall
			win.LockAll(AssertNone)
			win.Accumulate(PutFloat64s([]float64{2}), 1, 0, Scalar(Float64), OpSum)
			win.Flush(1)
			flushedAt = r.Now()
			win.UnlockAll()
			c.Send(1, 8, nil) // release the target
		} else {
			// Parked inside MPI (like a ghost), so the runtime can
			// service the accumulate — but only once the stall lifts.
			c.Recv(0, 8)
			if got := GetFloat64s(buf)[0]; got != 2 {
				t.Errorf("accumulate during stall lost: %v", got)
			}
		}
	})
	if flushedAt < sim.Time(330*sim.Microsecond) {
		t.Fatalf("flush completed at %v, inside the stall window", flushedAt)
	}
}

// TestStragglerSlowsCompute: a straggler node's Compute calls take
// longer in virtual time.
func TestStragglerSlowsCompute(t *testing.T) {
	cfg := testConfig(2, 1) // two nodes, one rank each
	cfg.Fault = &fault.Plan{Seed: 3, Stragglers: map[int]float64{1: 4}}
	var t0, t1 sim.Time
	mustRun(t, cfg, func(r *Rank) {
		r.Compute(sim.Microseconds(100))
		if r.Rank() == 0 {
			t0 = r.Now()
		} else {
			t1 = r.Now()
		}
	})
	if t0 != sim.Time(100*sim.Microsecond) {
		t.Fatalf("normal node time %v", t0)
	}
	if t1 != sim.Time(400*sim.Microsecond) {
		t.Fatalf("straggler time %v, want 4x slowdown", t1)
	}
}
