package mpi

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func TestWinAllocatePutGetLockUnlock(t *testing.T) {
	var fetched []float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 64, nil)
		if len(buf) != 64 {
			t.Errorf("buf len = %d", len(buf))
		}
		c.Barrier()
		if r.Rank() == 0 {
			win.Lock(1, LockExclusive, AssertNone)
			win.Put(PutFloat64s([]float64{3.5, -2}), 1, 8, TypeOf(Float64, 2))
			win.Unlock(1)
			win.Lock(1, LockShared, AssertNone)
			dst := make([]byte, 16)
			win.Get(dst, 1, 8, TypeOf(Float64, 2))
			win.Unlock(1)
			fetched = GetFloat64s(dst)
		}
		c.Barrier()
		win.Free()
	})
	if fetched[0] != 3.5 || fetched[1] != -2 {
		t.Fatalf("fetched %v", fetched)
	}
}

func TestAccumulateSumsAtTarget(t *testing.T) {
	var result float64
	mustRun(t, testConfig(4, 4), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() != 0 {
			win.Lock(0, LockShared, AssertNone)
			win.Accumulate(PutFloat64s([]float64{float64(r.Rank())}), 0, 0,
				Scalar(Float64), OpSum)
			win.Unlock(0)
		}
		c.Barrier()
		if r.Rank() == 0 {
			result = GetFloat64s(buf)[0]
		}
	})
	if result != 1+2+3 {
		t.Fatalf("sum = %v", result)
	}
}

func TestFenceEpochPutVisibleAfterFence(t *testing.T) {
	var seen float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		win.Fence(ModeNoPrecede)
		if r.Rank() == 0 {
			win.Put(PutFloat64s([]float64{7}), 1, 0, Scalar(Float64))
		}
		win.Fence(ModeNoSucceed)
		if r.Rank() == 1 {
			seen = GetFloat64s(buf)[0]
		}
	})
	if seen != 7 {
		t.Fatalf("after fence, target saw %v", seen)
	}
}

func TestFenceGatesOnRemoteCompletion(t *testing.T) {
	// Rank 0 issues many accumulates (software AMs) to rank 1 inside a
	// fence epoch; after the closing fence on rank 1, every accumulate
	// must be applied even though rank 1 never called flush.
	const n = 32
	var sum float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		win.Fence(ModeNoPrecede)
		if r.Rank() == 0 {
			for i := 0; i < n; i++ {
				win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			}
		}
		win.Fence(ModeNoSucceed)
		if r.Rank() == 1 {
			sum = GetFloat64s(buf)[0]
		}
	})
	if sum != n {
		t.Fatalf("sum = %v, want %d", sum, n)
	}
}

func TestLockAllAccumulateFlushUnlockAll(t *testing.T) {
	var got float64
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() != 0 {
			win.LockAll(AssertNone)
			win.Accumulate(PutFloat64s([]float64{2}), 0, 0, Scalar(Float64), OpSum)
			win.FlushAll()
			win.Accumulate(PutFloat64s([]float64{0.5}), 0, 0, Scalar(Float64), OpSum)
			win.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 0 {
			got = GetFloat64s(buf)[0]
		}
	})
	if got != 5 {
		t.Fatalf("got %v, want 5", got)
	}
}

func TestFlushForcesCompletion(t *testing.T) {
	// After Flush returns, the target memory must already contain the
	// accumulated value (remote completion), observable via a
	// subsequent Get on the same lock epoch.
	var observed float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Accumulate(PutFloat64s([]float64{4}), 1, 0, Scalar(Float64), OpSum)
			win.Flush(1)
			dst := make([]byte, 8)
			win.Get(dst, 1, 0, Scalar(Float64))
			win.Flush(1)
			observed = GetFloat64s(dst)[0]
			win.UnlockAll()
		} else {
			// Target sits in a barrier (inside MPI) so progress happens.
		}
		c.Barrier()
	})
	if observed != 4 {
		t.Fatalf("observed %v", observed)
	}
}

func TestPSCWExposureCompletes(t *testing.T) {
	var got []float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 16, nil)
		if r.Rank() == 0 {
			win.Start([]int{1}, AssertNone)
			win.Put(PutFloat64s([]float64{1.25, 2.5}), 1, 0, TypeOf(Float64, 2))
			win.Complete()
		} else {
			win.Post([]int{0}, AssertNone)
			win.Wait()
			got = GetFloat64s(buf)
		}
	})
	if got[0] != 1.25 || got[1] != 2.5 {
		t.Fatalf("got %v", got)
	}
}

func TestPSCWStartBlocksUntilPost(t *testing.T) {
	var startDone sim.Time
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		if r.Rank() == 0 {
			win.Start([]int{1}, AssertNone)
			startDone = r.Now()
			win.Complete()
		} else {
			r.Compute(80 * sim.Microsecond)
			win.Post([]int{0}, AssertNone)
			win.Wait()
		}
		c.Barrier()
	})
	if startDone < sim.Time(80*sim.Microsecond) {
		t.Fatalf("Start returned at %v, before Post", startDone)
	}
}

func TestPSCWNoCheckSkipsPostSync(t *testing.T) {
	var startCost sim.Duration
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		if r.Rank() == 0 {
			before := r.Now()
			win.Start([]int{1}, ModeNoCheck)
			startCost = r.Now().Sub(before)
			win.Put(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64))
			win.Complete()
		} else {
			win.Post([]int{0}, ModeNoCheck)
			win.Wait()
		}
		c.Barrier()
	})
	if startCost > 2*sim.Microsecond {
		t.Fatalf("NoCheck Start took %v, should not wait for Post", startCost)
	}
}

func TestGetAccumulateReturnsOldValue(t *testing.T) {
	var old, after float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		if r.Rank() == 1 {
			copy(buf, PutFloat64s([]float64{10}))
		}
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			res := make([]byte, 8)
			win.GetAccumulate(PutFloat64s([]float64{5}), res, 1, 0, Scalar(Float64), OpSum)
			win.Flush(1)
			old = GetFloat64s(res)[0]
			win.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 1 {
			after = GetFloat64s(buf)[0]
		}
	})
	if old != 10 || after != 15 {
		t.Fatalf("old=%v after=%v", old, after)
	}
}

func TestFetchAndOp(t *testing.T) {
	var fetched int64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		if r.Rank() == 1 {
			copy(buf, PutInt64(100))
		}
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			res := make([]byte, 8)
			win.FetchAndOp(PutInt64(1), res, 1, 0, Int64, OpSum)
			win.Flush(1)
			fetched = GetInt64(res)
			win.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 1 && GetInt64(buf) != 101 {
			t.Errorf("target = %d", GetInt64(buf))
		}
	})
	if fetched != 100 {
		t.Fatalf("fetched %d", fetched)
	}
}

func TestCompareAndSwap(t *testing.T) {
	var first, second int64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		if r.Rank() == 1 {
			copy(buf, PutInt64(7))
		}
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			res := make([]byte, 8)
			// Successful CAS: 7 -> 8.
			win.CompareAndSwap(PutInt64(7), PutInt64(8), res, 1, 0, Int64)
			win.Flush(1)
			first = GetInt64(res)
			// Failed CAS: compare 7 no longer matches.
			win.CompareAndSwap(PutInt64(7), PutInt64(99), res, 1, 0, Int64)
			win.Flush(1)
			second = GetInt64(res)
			win.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 1 && GetInt64(buf) != 8 {
			t.Errorf("target = %d, want 8", GetInt64(buf))
		}
	})
	if first != 7 || second != 8 {
		t.Fatalf("first=%d second=%d", first, second)
	}
}

func TestNoncontiguousPutVector(t *testing.T) {
	var got []float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 48, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			// Write elements 0, 2, 4 of the target's 6 doubles.
			win.Put(PutFloat64s([]float64{1, 2, 3}), 1, 0, Vector(Float64, 3, 1, 2))
			win.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 1 {
			got = GetFloat64s(buf)
		}
	})
	want := []float64{1, 0, 2, 0, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRMAOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-bounds RMA")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Put(PutFloat64s([]float64{1, 2}), 1, 0, TypeOf(Float64, 2)) // 16 > 8
			win.UnlockAll()
		}
		c.Barrier()
	})
}

func TestRMAWithoutEpochPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for RMA without epoch")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		if r.Rank() == 0 {
			win.Put(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64))
		}
		c.Barrier()
	})
}

func TestNestedLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for nested lock")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		if r.Rank() == 0 {
			win.Lock(1, LockExclusive, AssertNone)
			win.Lock(1, LockShared, AssertNone)
		}
		c.Barrier()
	})
}

func TestExclusiveLocksSerialize(t *testing.T) {
	// Two origins take exclusive locks on the same target and hold them
	// across a long flush; their epochs must not overlap.
	type span struct{ start, end sim.Time }
	spans := make([]span, 3)
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() != 0 {
			win.Lock(0, LockExclusive, AssertNone)
			win.Put(PutFloat64s([]float64{1}), 0, 0, Scalar(Float64))
			win.Flush(0) // forces acquisition
			start := r.Now()
			win.Accumulate(PutFloat64s([]float64{1}), 0, 0, Scalar(Float64), OpSum)
			win.Flush(0)
			end := r.Now()
			win.Unlock(0)
			spans[r.Rank()] = span{start, end}
		}
		c.Barrier()
	})
	a, b := spans[1], spans[2]
	if a.start < b.end && b.start < a.end {
		t.Fatalf("exclusive epochs overlap: %+v %+v", a, b)
	}
}

func TestSharedLocksOverlap(t *testing.T) {
	// Shared lock holders proceed concurrently: with identical work,
	// both origins' epochs span the same virtual time rather than
	// serializing one after the other.
	type span struct{ start, end sim.Time }
	spans := make([]span, 3)
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() != 0 {
			start := r.Now()
			win.Lock(0, LockShared, AssertNone)
			win.Accumulate(PutFloat64s([]float64{1}), 0, 0, Scalar(Float64), OpSum)
			win.Flush(0)
			win.Unlock(0)
			spans[r.Rank()] = span{start, r.Now()}
		}
		c.Barrier()
	})
	a, b := spans[1], spans[2]
	if !(a.start < b.end && b.start < a.end) {
		t.Fatalf("shared epochs serialized: %+v %+v", a, b)
	}
}

func TestSelfLockImmediate(t *testing.T) {
	var elapsed sim.Duration
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		if r.Rank() == 0 {
			start := r.Now()
			win.Lock(0, LockExclusive, AssertNone)
			elapsed = r.Now().Sub(start)
			win.Put(PutFloat64s([]float64{9}), 0, 0, Scalar(Float64))
			win.Unlock(0)
			if GetFloat64s(buf)[0] != 9 {
				t.Error("self put not applied")
			}
		}
		c.Barrier()
	})
	if elapsed > 5*sim.Microsecond {
		t.Fatalf("self lock took %v", elapsed)
	}
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		if r.Rank() == 0 {
			win.Unlock(1)
		}
		c.Barrier()
	})
}

func TestHardwarePutBypassesTargetCPU(t *testing.T) {
	cfg := testConfig(2, 2) // regular platform: software RMA
	wSoft := mustRun(t, cfg, putWorkload)
	cfgHW := testConfig(2, 2)
	cfgHW.Net = hwNet()
	wHW := mustRun(t, cfgHW, putWorkload)

	if soft := wSoft.RankByID(1).Stats(); soft.SoftwareAMs == 0 {
		t.Error("regular platform should process puts in software")
	}
	hw := wHW.RankByID(1).Stats()
	if hw.SoftwareAMs != 0 {
		t.Errorf("hardware platform processed %d software AMs", hw.SoftwareAMs)
	}
	if hw.HardwareOps == 0 {
		t.Error("hardware platform recorded no hardware ops")
	}
}

func TestAccumulateAlwaysSoftware(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Net = hwNet()
	w := mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			win.UnlockAll()
		}
		c.Barrier()
	})
	if w.RankByID(1).Stats().SoftwareAMs != 1 {
		t.Fatal("accumulate did not take the software path on hardware platform")
	}
}

func TestNoncontiguousPutSoftwareOnHardwarePlatform(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Net = hwNet()
	w := mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Put(PutFloat64s([]float64{1, 2}), 1, 0, Vector(Float64, 2, 1, 2))
			win.UnlockAll()
		}
		c.Barrier()
	})
	if w.RankByID(1).Stats().SoftwareAMs != 1 {
		t.Fatal("noncontiguous put must use the software path")
	}
}

func TestWinSharedAllocation(t *testing.T) {
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocateShared(c, 8*(r.Rank()+1), nil)
		if len(buf) != 8*(r.Rank()+1) {
			t.Errorf("rank %d buf = %d", r.Rank(), len(buf))
		}
		// All regions alias one segment, consecutively.
		r0 := win.RegionOf(0)
		for i := 1; i < 3; i++ {
			if !win.RegionOf(i).SameSegment(r0) {
				t.Error("shared window regions in different segments")
			}
		}
		// Offsets are 16-aligned (segment binding safety).
		if win.RegionOf(1).Offset() != 16 || win.RegionOf(2).Offset() != 32 {
			t.Errorf("offsets = %d, %d", win.RegionOf(1).Offset(), win.RegionOf(2).Offset())
		}
		if win.Region().Root().Len() != 16+16+32 {
			t.Errorf("root len = %d", win.Region().Root().Len())
		}
		c.Barrier()
	})
}

func TestWinSharedDirectStoreVisible(t *testing.T) {
	// A store through one rank's slice is visible through the shared
	// segment (load/store shared memory semantics).
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocateShared(c, 8, nil)
		if r.Rank() == 0 {
			copy(buf, PutFloat64s([]float64{6.5}))
		}
		c.Barrier()
		if r.Rank() == 1 {
			other := win.RegionOf(0).Bytes()
			if GetFloat64s(other)[0] != 6.5 {
				t.Error("store not visible through shared segment")
			}
		}
		c.Barrier()
	})
}

func TestWinSharedCrossNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for cross-node shared window")
		}
	}()
	mustRun(t, testConfig(4, 2), func(r *Rank) { // 2 nodes
		c := r.CommWorld()
		r.WinAllocateShared(c, 8, nil)
	})
}

func TestWinCreateOverExistingMemory(t *testing.T) {
	var got float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		w1, buf := r.WinAllocateRegion(c, 16, nil)
		// Second window exposing a sub-range of the same memory.
		w2 := r.WinCreate(c, w1.Region().Sub(8, 8), nil)
		c.Barrier()
		if r.Rank() == 0 {
			w2.LockAll(AssertNone)
			w2.Put(PutFloat64s([]float64{3}), 1, 0, Scalar(Float64))
			w2.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 1 {
			got = GetFloat64s(buf)[1] // second double of w1's memory
		}
		c.Barrier()
		w2.Free()
		w1.Free()
	})
	if got != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestWindowAllocationCostScalesWithHints(t *testing.T) {
	// WinCreate must be cheaper than WinAllocate (Casper's overlapping
	// windows depend on this, Fig. 3(a)).
	timeOf := func(f func(r *Rank, c *Comm)) sim.Duration {
		var d sim.Duration
		mustRun(t, testConfig(4, 4), func(r *Rank) {
			c := r.CommWorld()
			start := r.Now()
			f(r, c)
			if r.Rank() == 0 {
				d = r.Now().Sub(start)
			}
			c.Barrier()
		})
		return d
	}
	alloc := timeOf(func(r *Rank, c *Comm) { r.WinAllocate(c, 1024, nil) })
	create := timeOf(func(r *Rank, c *Comm) {
		w, _ := r.WinAllocateRegion(c, 1024, nil)
		_ = w
	})
	_ = create
	if alloc <= 0 {
		t.Fatal("allocation cost not modeled")
	}
}

func putWorkload(r *Rank) {
	c := r.CommWorld()
	win, _ := r.WinAllocate(c, 64, nil)
	c.Barrier()
	if r.Rank() == 0 {
		win.LockAll(AssertNone)
		for i := 0; i < 4; i++ {
			win.Put(PutFloat64s([]float64{float64(i)}), 1, 8*i, Scalar(Float64))
		}
		win.UnlockAll()
	}
	c.Barrier()
}

// hwNet is the DMAPP-style platform with hardware contiguous put/get.
func hwNet() *netmodel.Params { return netmodel.CrayXC30DMAPP() }

func TestAccumulateOrderingAcrossSizes(t *testing.T) {
	// MPI-3 §11.7.1: same-origin accumulates to the same location apply
	// in issue order — even when a later, smaller message could
	// physically overtake an earlier, larger one. A large REPLACE
	// followed by a small REPLACE must leave the small one's value.
	var got float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8*512, nil)
		c.Barrier()
		if r.Rank() == 0 {
			big := make([]float64, 512) // all zeros
			win.LockAll(AssertNone)
			win.Accumulate(PutFloat64s(big), 1, 0, TypeOf(Float64, 512), OpReplace)
			win.Accumulate(PutFloat64s([]float64{7}), 1, 0, Scalar(Float64), OpReplace)
			win.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 1 {
			got = GetFloat64s(buf)[0]
		}
	})
	if got != 7 {
		t.Fatalf("accumulate ordering violated: element = %v, want 7 (the later op)", got)
	}
}

func TestAccumulateOrderingAfterLazyGrant(t *testing.T) {
	// Ops queued behind a lazy lock acquisition are released together;
	// their ordering must still hold.
	var got float64
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8*512, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.Lock(1, LockExclusive, AssertNone)
			// Both issued before the (lazy) grant arrives.
			win.Accumulate(PutFloat64s(make([]float64, 512)), 1, 0, TypeOf(Float64, 512), OpReplace)
			win.Accumulate(PutFloat64s([]float64{3}), 1, 0, Scalar(Float64), OpReplace)
			win.Unlock(1)
		}
		c.Barrier()
		if r.Rank() == 1 {
			got = GetFloat64s(buf)[0]
		}
	})
	if got != 3 {
		t.Fatalf("queued accumulate ordering violated: %v", got)
	}
}
