package mpi

import (
	"testing"
	"testing/quick"
)

func TestBasicTypeSizes(t *testing.T) {
	cases := map[BasicType]int{Byte: 1, Int32: 4, Int64: 8, Float64: 8}
	for b, want := range cases {
		if b.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", b, b.Size(), want)
		}
	}
}

func TestDatatypeSizeExtent(t *testing.T) {
	cases := []struct {
		name         string
		dt           Datatype
		size, extent int
		contig       bool
	}{
		{"scalar double", Scalar(Float64), 8, 8, true},
		{"contig 10 doubles", TypeOf(Float64, 10), 80, 80, true},
		{"vector 4x2 stride 5", Vector(Float64, 4, 2, 5), 64, 136, false},
		{"vector stride==blocklen", Vector(Int32, 3, 2, 2), 24, 24, true},
		{"bytes", TypeOf(Byte, 100), 100, 100, true},
	}
	for _, c := range cases {
		if got := c.dt.Size(); got != c.size {
			t.Errorf("%s: Size = %d, want %d", c.name, got, c.size)
		}
		if got := c.dt.Extent(); got != c.extent {
			t.Errorf("%s: Extent = %d, want %d", c.name, got, c.extent)
		}
		if got := c.dt.Contiguous(); got != c.contig {
			t.Errorf("%s: Contiguous = %v, want %v", c.name, got, c.contig)
		}
		if err := c.dt.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", c.name, err)
		}
	}
}

func TestDatatypeValidateRejects(t *testing.T) {
	bad := []Datatype{
		{Basic: Float64, Count: 0, BlockLen: 1, Stride: 1},
		{Basic: Float64, Count: 1, BlockLen: 0, Stride: 1},
		{Basic: Float64, Count: 2, BlockLen: 3, Stride: 2}, // overlapping
	}
	for _, d := range bad {
		if d.Validate() == nil {
			t.Errorf("%+v validated", d)
		}
	}
}

func TestBlocksEnumeration(t *testing.T) {
	dt := Vector(Float64, 3, 2, 4)
	var offs, lens []int
	dt.Blocks(func(off, n int) { offs = append(offs, off); lens = append(lens, n) })
	wantOffs := []int{0, 32, 64}
	for i := range wantOffs {
		if offs[i] != wantOffs[i] || lens[i] != 16 {
			t.Fatalf("blocks = %v/%v, want offs %v len 16", offs, lens, wantOffs)
		}
	}
	// Contiguous type yields a single block.
	n := 0
	TypeOf(Byte, 7).Blocks(func(off, ln int) {
		n++
		if off != 0 || ln != 7 {
			t.Errorf("contig block = (%d,%d)", off, ln)
		}
	})
	if n != 1 {
		t.Errorf("contig yielded %d blocks", n)
	}
}

func TestAccumulateSumFloat64(t *testing.T) {
	target := PutFloat64s([]float64{1, 2, 3, 4})
	src := PutFloat64s([]float64{10, 20})
	accumulate(OpSum, TypeOf(Float64, 2), target, 8, src)
	got := GetFloat64s(target)
	want := []float64{1, 12, 23, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAccumulateReplaceIsPut(t *testing.T) {
	target := PutFloat64s([]float64{1, 2, 3})
	accumulate(OpReplace, TypeOf(Float64, 2), target, 0, PutFloat64s([]float64{7, 8}))
	got := GetFloat64s(target)
	if got[0] != 7 || got[1] != 8 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestAccumulateVectorScattersSource(t *testing.T) {
	// Target: 6 doubles; vector of 3 blocks of 1, stride 2 -> elements 0,2,4.
	target := PutFloat64s([]float64{0, 0, 0, 0, 0, 0})
	src := PutFloat64s([]float64{1, 2, 3})
	accumulate(OpSum, Vector(Float64, 3, 1, 2), target, 0, src)
	got := GetFloat64s(target)
	want := []float64{1, 0, 2, 0, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestGatherVector(t *testing.T) {
	target := PutFloat64s([]float64{10, 11, 12, 13, 14, 15})
	out := gather(Vector(Float64, 2, 2, 4), target, 0)
	got := GetFloat64s(out)
	want := []float64{10, 11, 14, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestIndexedDatatype(t *testing.T) {
	dt := Indexed(Float64, 2, []int{0, 4, 10})
	if err := dt.Validate(); err != nil {
		t.Fatal(err)
	}
	if dt.Size() != 6*8 || dt.Extent() != 12*8 || dt.Elems() != 6 {
		t.Fatalf("size=%d extent=%d elems=%d", dt.Size(), dt.Extent(), dt.Elems())
	}
	if dt.Contiguous() {
		t.Fatal("gappy indexed type reported contiguous")
	}
	var offs []int
	dt.Blocks(func(off, n int) {
		offs = append(offs, off)
		if n != 16 {
			t.Errorf("block len %d", n)
		}
	})
	want := []int{0, 32, 80}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offs = %v", offs)
		}
	}
	if dt.String() == "" {
		t.Error("empty string")
	}
	// Consecutive blocks from zero are contiguous.
	if !Indexed(Float64, 2, []int{0, 2, 4}).Contiguous() {
		t.Error("consecutive indexed blocks should be contiguous")
	}
}

func TestIndexedValidateRejects(t *testing.T) {
	bad := []Datatype{
		Indexed(Float64, 2, []int{}),
		Indexed(Float64, 2, []int{4, 0}),  // decreasing
		Indexed(Float64, 2, []int{0, 1}),  // overlapping
		Indexed(Float64, 2, []int{-2, 4}), // negative
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestIndexedAccumulateAndGather(t *testing.T) {
	dt := Indexed(Float64, 1, []int{1, 3, 5})
	tgt := PutFloat64s([]float64{0, 0, 0, 0, 0, 0})
	accumulate(OpSum, dt, tgt, 0, PutFloat64s([]float64{10, 20, 30}))
	got := GetFloat64s(tgt)
	want := []float64{0, 10, 0, 20, 0, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	back := GetFloat64s(gather(dt, tgt, 0))
	for i, v := range []float64{10, 20, 30} {
		if back[i] != v {
			t.Fatalf("gather = %v", back)
		}
	}
}

func TestOpsOnIntTypes(t *testing.T) {
	tgt := PutInt64(5)
	accumulate(OpSum, Scalar(Int64), tgt, 0, PutInt64(3))
	if GetInt64(tgt) != 8 {
		t.Errorf("int64 sum = %d", GetInt64(tgt))
	}
	accumulate(OpMax, Scalar(Int64), tgt, 0, PutInt64(100))
	if GetInt64(tgt) != 100 {
		t.Errorf("int64 max = %d", GetInt64(tgt))
	}
	accumulate(OpMin, Scalar(Int64), tgt, 0, PutInt64(-1))
	if GetInt64(tgt) != -1 {
		t.Errorf("int64 min = %d", GetInt64(tgt))
	}
	accumulate(OpProd, Scalar(Int64), tgt, 0, PutInt64(-6))
	if GetInt64(tgt) != 6 {
		t.Errorf("int64 prod = %d", GetInt64(tgt))
	}

	b := []byte{10}
	accumulate(OpSum, Scalar(Byte), b, 0, []byte{5})
	if b[0] != 15 {
		t.Errorf("byte sum = %d", b[0])
	}

	i32 := []byte{0, 0, 0, 0}
	accumulate(OpSum, Scalar(Int32), i32, 0, []byte{7, 0, 0, 0})
	accumulate(OpMax, Scalar(Int32), i32, 0, []byte{3, 0, 0, 0})
	if i32[0] != 7 {
		t.Errorf("int32 = %d", i32[0])
	}
}

func TestOpFloatMinMax(t *testing.T) {
	tgt := PutFloat64s([]float64{5})
	accumulate(OpMin, Scalar(Float64), tgt, 0, PutFloat64s([]float64{2}))
	if GetFloat64s(tgt)[0] != 2 {
		t.Error("float min")
	}
	accumulate(OpMax, Scalar(Float64), tgt, 0, PutFloat64s([]float64{9}))
	if GetFloat64s(tgt)[0] != 9 {
		t.Error("float max")
	}
	accumulate(OpProd, Scalar(Float64), tgt, 0, PutFloat64s([]float64{0.5}))
	if GetFloat64s(tgt)[0] != 4.5 {
		t.Error("float prod")
	}
}

func TestBitwiseOps(t *testing.T) {
	tgt := PutInt64(0b1100)
	accumulate(OpBAnd, Scalar(Int64), tgt, 0, PutInt64(0b1010))
	if GetInt64(tgt) != 0b1000 {
		t.Errorf("band = %b", GetInt64(tgt))
	}
	accumulate(OpBOr, Scalar(Int64), tgt, 0, PutInt64(0b0011))
	if GetInt64(tgt) != 0b1011 {
		t.Errorf("bor = %b", GetInt64(tgt))
	}
	accumulate(OpBXor, Scalar(Int64), tgt, 0, PutInt64(0b1111))
	if GetInt64(tgt) != 0b0100 {
		t.Errorf("bxor = %b", GetInt64(tgt))
	}
	// Full-width values survive.
	tgt = PutInt64(0)
	v := int64(-6148914691236517206) // 0xAAAA... pattern
	accumulate(OpBXor, Scalar(Int64), tgt, 0, PutInt64(v))
	if GetInt64(tgt) != v {
		t.Errorf("bxor full width = %x", GetInt64(tgt))
	}
	if OpBAnd.String() != "MPI_BAND" || OpBOr.String() != "MPI_BOR" || OpBXor.String() != "MPI_BXOR" {
		t.Error("bitwise op strings")
	}
}

func TestBitwiseOnDoublePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	tgt := PutFloat64s([]float64{1})
	accumulate(OpBXor, Scalar(Float64), tgt, 0, PutFloat64s([]float64{2}))
}

func TestNoOpLeavesTargetUntouched(t *testing.T) {
	tgt := PutFloat64s([]float64{42})
	accumulate(OpNoOp, Scalar(Float64), tgt, 0, PutFloat64s([]float64{7}))
	if GetFloat64s(tgt)[0] != 42 {
		t.Error("OpNoOp modified target")
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1.5, 3.14159, 1e300, -1e-300}
	got := GetFloat64s(PutFloat64s(vals))
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("round trip %v -> %v", vals[i], got[i])
		}
	}
}

func TestStringers(t *testing.T) {
	if Float64.String() != "MPI_DOUBLE" || Byte.String() != "MPI_BYTE" {
		t.Error("basic type strings")
	}
	if OpSum.String() != "MPI_SUM" || OpReplace.String() != "MPI_REPLACE" {
		t.Error("op strings")
	}
	if Scalar(Float64).String() == "" || Vector(Byte, 2, 1, 3).String() == "" {
		t.Error("datatype strings")
	}
	if LockExclusive.String() != "MPI_LOCK_EXCLUSIVE" || LockShared.String() != "MPI_LOCK_SHARED" {
		t.Error("lock strings")
	}
	for _, k := range []OpKind{KindPut, KindGet, KindAcc, KindGetAcc, KindFetchOp, KindCAS} {
		if k.String() == "" {
			t.Error("op kind string empty")
		}
	}
}

// Property: Blocks covers exactly Size() bytes, with nondecreasing
// non-overlapping offsets bounded by Extent().
func TestBlocksCoverageProperty(t *testing.T) {
	f := func(count, blockLen, pad uint8) bool {
		c, bl := int(count%8)+1, int(blockLen%8)+1
		dt := Vector(Float64, c, bl, bl+int(pad%8))
		if dt.Validate() != nil {
			return false
		}
		total, prevEnd := 0, -1
		ok := true
		dt.Blocks(func(off, n int) {
			if off <= prevEnd {
				ok = false
			}
			prevEnd = off + n - 1
			total += n
		})
		return ok && total == dt.Size() && prevEnd+1 == dt.Extent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: accumulate with OpSum then OpSum of the negation restores
// the target (float64 exactness for integers-as-floats).
func TestAccumulateInverseProperty(t *testing.T) {
	f := func(vals []int8, start []int8) bool {
		if len(vals) == 0 {
			return true
		}
		n := len(vals)
		if len(start) < n {
			return true
		}
		tv := make([]float64, n)
		sv := make([]float64, n)
		nv := make([]float64, n)
		for i := 0; i < n; i++ {
			tv[i] = float64(start[i])
			sv[i] = float64(vals[i])
			nv[i] = -float64(vals[i])
		}
		tgt := PutFloat64s(tv)
		dt := TypeOf(Float64, n)
		accumulate(OpSum, dt, tgt, 0, PutFloat64s(sv))
		accumulate(OpSum, dt, tgt, 0, PutFloat64s(nv))
		got := GetFloat64s(tgt)
		for i := range tv {
			if got[i] != tv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: gather after accumulate(OpReplace) returns the source.
func TestPutGatherRoundTripProperty(t *testing.T) {
	f := func(count, blockLen, pad uint8, seed int64) bool {
		c, bl := int(count%6)+1, int(blockLen%6)+1
		dt := Vector(Float64, c, bl, bl+int(pad%6))
		tgt := make([]byte, dt.Extent()+16)
		src := make([]byte, dt.Size())
		for i := range src {
			src[i] = byte(seed + int64(i)*31)
		}
		accumulate(OpReplace, dt, tgt, 8, src)
		got := gather(dt, tgt, 8)
		return bytesEqual(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
