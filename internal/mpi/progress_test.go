package mpi

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// overlapWorkload is the Fig. 4(a) microbenchmark shape: rank 0 does
// lockall–accumulate–flush–unlockall to rank 1 while rank 1 computes for
// wait; it returns rank 0's epoch time.
func overlapWorkload(t *testing.T, cfg Config, wait sim.Duration) (originTime sim.Duration, w *World) {
	t.Helper()
	w = mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			start := r.Now()
			win.LockAll(AssertNone)
			win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			win.UnlockAll()
			originTime = r.Now().Sub(start)
		} else {
			r.Compute(wait)
		}
		c.Barrier()
	})
	return originTime, w
}

func TestNoProgressStallsOnBusyTarget(t *testing.T) {
	// The motivating behaviour: without async progress, the origin's
	// epoch takes roughly the target's compute time.
	wait := 200 * sim.Microsecond
	elapsed, _ := overlapWorkload(t, testConfig(2, 2), wait)
	if elapsed < wait {
		t.Fatalf("origin epoch %v did not stall behind target compute %v", elapsed, wait)
	}
	if elapsed > wait+50*sim.Microsecond {
		t.Fatalf("origin epoch %v unreasonably larger than %v", elapsed, wait)
	}
}

func TestNoProgressOriginTimeScalesWithTargetWait(t *testing.T) {
	short, _ := overlapWorkload(t, testConfig(2, 2), 50*sim.Microsecond)
	long, _ := overlapWorkload(t, testConfig(2, 2), 400*sim.Microsecond)
	if long <= short {
		t.Fatalf("origin time not growing with target wait: %v vs %v", short, long)
	}
}

func TestRecvParkedTargetProvidesProgress(t *testing.T) {
	// A target parked inside MPI_Recv (the Casper ghost posture)
	// services software AMs immediately: the origin does not stall.
	var originTime sim.Duration
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			start := r.Now()
			win.LockAll(AssertNone)
			win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			win.UnlockAll()
			originTime = r.Now().Sub(start)
			c.Send(1, 99, []byte("done")) // release the parked target
		} else {
			c.Recv(0, 99) // parked inside MPI the whole time
		}
		c.Barrier()
	})
	if originTime > 20*sim.Microsecond {
		t.Fatalf("origin stalled %v despite target parked in MPI", originTime)
	}
}

func TestThreadProgressAvoidsStall(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Progress = ProgressThread
	wait := 300 * sim.Microsecond
	elapsed, _ := overlapWorkload(t, cfg, wait)
	if elapsed > 50*sim.Microsecond {
		t.Fatalf("thread progress still stalled: %v", elapsed)
	}
}

func TestThreadProgressCostsMoreThanGhostPosture(t *testing.T) {
	// Thread-multiple safety makes the origin's MPI calls more
	// expensive than with no progress thread (Fig. 4 commentary).
	base := testConfig(2, 2)
	thread := testConfig(2, 2)
	thread.Progress = ProgressThread
	// Use a parked-in-MPI target for the base so neither run stalls.
	var baseTime sim.Duration
	mustRun(t, base, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			start := r.Now()
			win.LockAll(AssertNone)
			for i := 0; i < 16; i++ {
				win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			}
			win.UnlockAll()
			baseTime = r.Now().Sub(start)
			c.Send(1, 99, nil)
		} else {
			c.Recv(0, 99)
		}
		c.Barrier()
	})
	threadTime, _ := overlapWorkloadN(t, thread, 0, 16)
	if threadTime <= baseTime {
		t.Fatalf("thread progress (%v) should cost more than ghost posture (%v)",
			threadTime, baseTime)
	}
}

// overlapWorkloadN issues n accumulates.
func overlapWorkloadN(t *testing.T, cfg Config, wait sim.Duration, n int) (sim.Duration, *World) {
	t.Helper()
	var originTime sim.Duration
	w := mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			start := r.Now()
			win.LockAll(AssertNone)
			for i := 0; i < n; i++ {
				win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			}
			win.UnlockAll()
			originTime = r.Now().Sub(start)
		} else if wait > 0 {
			r.Compute(wait)
		}
		c.Barrier()
	})
	return originTime, w
}

func TestInterruptProgressAvoidsStall(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Progress = ProgressInterrupt
	elapsed, w := overlapWorkload(t, cfg, 300*sim.Microsecond)
	if elapsed > 50*sim.Microsecond {
		t.Fatalf("interrupt progress still stalled: %v", elapsed)
	}
	if got := w.RankByID(1).Stats().Interrupts; got != 1 {
		t.Fatalf("interrupts = %d, want 1", got)
	}
}

func TestInterruptCountScalesWithOps(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Progress = ProgressInterrupt
	const n = 24
	_, w := overlapWorkloadN(t, cfg, 500*sim.Microsecond, n)
	if got := w.RankByID(1).Stats().Interrupts; got != n {
		t.Fatalf("interrupts = %d, want %d", got, n)
	}
}

func TestInterruptsStealTargetComputeCycles(t *testing.T) {
	// The Fig. 4(c) effect: interrupts extend the busy target's
	// computation.
	cfg := testConfig(2, 2)
	cfg.Progress = ProgressInterrupt
	const n = 16
	wait := 200 * sim.Microsecond
	var computeTook sim.Duration
	w := mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			for i := 0; i < n; i++ {
				win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			}
			win.UnlockAll()
		} else {
			start := r.Now()
			r.Compute(wait)
			computeTook = r.Now().Sub(start)
		}
		c.Barrier()
	})
	st := w.RankByID(1).Stats()
	if st.StolenTime == 0 {
		t.Fatal("no stolen time recorded")
	}
	if computeTook < wait+st.StolenTime/2 {
		t.Fatalf("compute %v not extended by stolen %v", computeTook, st.StolenTime)
	}
}

func TestOversubscribedThreadStealsCycles(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Progress = ProgressThread
	cfg.ThreadOversubscribed = true
	wait := 200 * sim.Microsecond
	var computeTook sim.Duration
	w := mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			for i := 0; i < 16; i++ {
				win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			}
			win.UnlockAll()
		} else {
			start := r.Now()
			r.Compute(wait)
			computeTook = r.Now().Sub(start)
		}
		c.Barrier()
	})
	if w.RankByID(1).Stats().StolenTime == 0 {
		t.Fatal("oversubscribed thread stole no cycles")
	}
	if computeTook <= wait {
		t.Fatal("target compute not extended")
	}
}

func TestDedicatedThreadDoesNotStealCycles(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Progress = ProgressThread
	cfg.ThreadOversubscribed = false
	_, w := overlapWorkloadN(t, cfg, 200*sim.Microsecond, 8)
	if got := w.RankByID(1).Stats().StolenTime; got != 0 {
		t.Fatalf("dedicated thread stole %v", got)
	}
}

func TestHardwarePutNeedsNoProgress(t *testing.T) {
	// On the DMAPP-style platform a contiguous put to a computing
	// target completes without any progress help.
	cfg := testConfig(2, 2)
	cfg.Net = hwNet()
	var originTime sim.Duration
	mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			start := r.Now()
			win.LockAll(AssertNone)
			win.Put(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64))
			win.UnlockAll()
			originTime = r.Now().Sub(start)
		} else {
			r.Compute(300 * sim.Microsecond)
		}
		c.Barrier()
	})
	if originTime > 20*sim.Microsecond {
		t.Fatalf("hardware put stalled: %v", originTime)
	}
}

func TestSoftwareAMsServicedInArrivalOrderSerially(t *testing.T) {
	// A target's AM pipeline is a serial server: n accumulates cost at
	// least n * AMBase of target time, observable as origin epoch time
	// when the target is parked in MPI.
	cfg := testConfig(2, 2)
	few, _ := overlapWorkloadRecvTarget(t, cfg, 4)
	many, _ := overlapWorkloadRecvTarget(t, cfg, 64)
	if many <= few {
		t.Fatalf("service not serialized: %v for 64 ops vs %v for 4", many, few)
	}
}

func overlapWorkloadRecvTarget(t *testing.T, cfg Config, n int) (sim.Duration, *World) {
	t.Helper()
	var originTime sim.Duration
	w := mustRun(t, cfg, func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			start := r.Now()
			win.LockAll(AssertNone)
			for i := 0; i < n; i++ {
				win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			}
			win.UnlockAll()
			originTime = r.Now().Sub(start)
			c.Send(1, 99, nil)
		} else {
			c.Recv(0, 99)
		}
		c.Barrier()
	})
	return originTime, w
}

func TestTracerAttributesProgressStall(t *testing.T) {
	run := func(targetParksInMPI bool) sim.Duration {
		cfg := testConfig(2, 2)
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.New()
		w.SetTracer(tr)
		w.Launch(func(r *Rank) {
			c := r.CommWorld()
			win, _ := r.WinAllocate(c, 64, nil)
			c.Barrier()
			if r.Rank() == 0 {
				win.LockAll(AssertNone)
				win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
				win.UnlockAll()
				c.Send(1, 9, nil)
			} else if targetParksInMPI {
				c.Recv(0, 9)
			} else {
				r.Compute(300 * sim.Microsecond)
				c.Recv(0, 9)
			}
			c.Barrier()
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if len(tr.Services()) != 1 {
			t.Fatalf("%d services traced", len(tr.Services()))
		}
		return tr.TotalDelay()
	}
	stalled := run(false)
	parked := run(true)
	if stalled < 250*sim.Microsecond {
		t.Fatalf("tracer missed the progress stall: %v", stalled)
	}
	if parked > 5*sim.Microsecond {
		t.Fatalf("parked target should have near-zero stall: %v", parked)
	}
}

func TestTracerRecordsHardwareOps(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Net = hwNet()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	w.SetTracer(tr)
	w.Launch(func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 64, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Put(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64))
			win.UnlockAll()
		}
		c.Barrier()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	ss := tr.Services()
	if len(ss) != 1 || !ss[0].Hardware || ss[0].Rank != -1 {
		t.Fatalf("services = %+v", ss)
	}
}

func TestComputeWithoutInterferenceIsExact(t *testing.T) {
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		start := r.Now()
		r.Compute(123 * sim.Microsecond)
		if got := r.Now().Sub(start); got != 123*sim.Microsecond {
			t.Errorf("compute took %v", got)
		}
	})
}
