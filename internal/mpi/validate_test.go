package mpi

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// fakeWin builds a minimal winGlobal over one 64-byte segment with 3
// comm ranks for direct validator tests.
func fakeWin(v *Validator) (*winGlobal, Region) {
	seg := &segment{id: 1, data: make([]byte, 64)}
	reg := Region{seg: seg, off: 0, n: 64}
	g := &winGlobal{
		comm:    &commGlobal{ranks: []int{0, 1, 2}},
		regions: []Region{reg, reg, reg},
		w:       &World{validator: v},
	}
	return g, reg
}

func rec(g *winGlobal, v *Validator, reg Region, kind OpKind, origin, owner int,
	disp int, start, end int64, seq int64, excl bool) {
	op := &rmaOp{
		win: g, kind: kind, origin: origin, target: 1, disp: disp,
		dt: Scalar(Float64), seq: seq, excl: excl,
		svcStart: sim.Time(start * 1000), svcEnd: sim.Time(end * 1000), svcOwner: owner,
	}
	v.recordApply(op, reg, disp, owner)
}

func TestValidatorCleanSequence(t *testing.T) {
	v := newValidator()
	g, reg := fakeWin(v)
	// Same server, sequential intervals: fine.
	rec(g, v, reg, KindAcc, 0, 5, 0, 0, 10, 1, false)
	rec(g, v, reg, KindAcc, 0, 5, 0, 10, 20, 2, false)
	rec(g, v, reg, KindAcc, 2, 5, 0, 20, 30, 1, false)
	if !v.Ok() {
		t.Fatalf("violations: %v", v.Violations())
	}
}

func TestValidatorAtomicityViolation(t *testing.T) {
	v := newValidator()
	g, reg := fakeWin(v)
	// Two accumulates on the same element, overlapping service windows,
	// different servers: the multi-ghost atomicity hazard.
	rec(g, v, reg, KindAcc, 0, 5, 0, 0, 10, 1, false)
	rec(g, v, reg, KindAcc, 2, 6, 0, 5, 15, 1, false)
	if v.Ok() {
		t.Fatal("atomicity violation not detected")
	}
	if !strings.Contains(v.Violations()[0], "atomicity") {
		t.Fatalf("wrong violation: %v", v.Violations())
	}
}

func TestValidatorNoAtomicityIssueOnDisjointBytes(t *testing.T) {
	v := newValidator()
	g, reg := fakeWin(v)
	rec(g, v, reg, KindAcc, 0, 5, 0, 0, 10, 1, false)
	rec(g, v, reg, KindAcc, 2, 6, 8, 5, 15, 1, false) // different element
	if !v.Ok() {
		t.Fatalf("false positive: %v", v.Violations())
	}
}

func TestValidatorOrderingViolation(t *testing.T) {
	v := newValidator()
	g, reg := fakeWin(v)
	// Same origin, same location, seq 2 applied before seq 1.
	rec(g, v, reg, KindAcc, 0, 5, 0, 0, 10, 2, false)
	rec(g, v, reg, KindAcc, 0, 6, 0, 20, 30, 1, false)
	if v.Ok() {
		t.Fatal("ordering violation not detected")
	}
	found := false
	for _, s := range v.Violations() {
		if strings.Contains(s, "ordering") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ordering violation in %v", v.Violations())
	}
}

func TestValidatorExclusivityViolation(t *testing.T) {
	v := newValidator()
	g, reg := fakeWin(v)
	// Concurrent puts from different origins, one under an exclusive
	// lock: the Section III-B corruption scenario.
	rec(g, v, reg, KindPut, 0, 5, 0, 0, 10, 1, true)
	rec(g, v, reg, KindPut, 2, 6, 0, 5, 15, 1, false)
	if v.Ok() {
		t.Fatal("exclusivity violation not detected")
	}
	if !strings.Contains(strings.Join(v.Violations(), ";"), "exclusivity") {
		t.Fatalf("wrong violations: %v", v.Violations())
	}
}

func TestValidatorPutsWithoutExclusiveLockAreLegal(t *testing.T) {
	v := newValidator()
	g, reg := fakeWin(v)
	// Concurrent unordered puts are undefined-value but not a
	// violation of MPI's guarantees.
	rec(g, v, reg, KindPut, 0, 5, 0, 0, 10, 1, false)
	rec(g, v, reg, KindPut, 2, 6, 0, 5, 15, 1, false)
	if !v.Ok() {
		t.Fatalf("false positive: %v", v.Violations())
	}
}

func TestValidatorGetsNeverConflict(t *testing.T) {
	v := newValidator()
	g, reg := fakeWin(v)
	rec(g, v, reg, KindGet, 0, 5, 0, 0, 10, 1, true)
	rec(g, v, reg, KindGet, 2, 6, 0, 5, 15, 1, true)
	if !v.Ok() {
		t.Fatalf("false positive on concurrent gets: %v", v.Violations())
	}
}

func TestValidatorRingBounded(t *testing.T) {
	v := newValidator()
	v.ringSize = 8
	g, reg := fakeWin(v)
	for i := int64(0); i < 100; i++ {
		rec(g, v, reg, KindAcc, 0, 5, 0, i*10, i*10+10, i+1, false)
	}
	if len(v.recent[1]) > 8 {
		t.Fatalf("ring grew to %d", len(v.recent[1]))
	}
	if !v.Ok() {
		t.Fatalf("violations: %v", v.Violations())
	}
}

func TestLockManagerExclusiveExcludes(t *testing.T) {
	m := &lockManager{}
	var granted []int
	g := func(id int) func() { return func() { granted = append(granted, id) } }
	m.request(&lockReq{origin: 0, excl: true, grant: g(0)})
	m.request(&lockReq{origin: 1, excl: true, grant: g(1)})
	m.request(&lockReq{origin: 2, excl: false, grant: g(2)})
	if len(granted) != 1 || granted[0] != 0 {
		t.Fatalf("granted = %v", granted)
	}
	m.release(0, true)
	if len(granted) != 2 || granted[1] != 1 {
		t.Fatalf("granted = %v (FIFO violated)", granted)
	}
	m.release(1, true)
	if len(granted) != 3 || granted[2] != 2 {
		t.Fatalf("granted = %v", granted)
	}
	m.release(2, false)
	if s, e := m.held(); s != 0 || e {
		t.Fatalf("held = %d, %v after all releases", s, e)
	}
}

func TestLockManagerSharedCoexist(t *testing.T) {
	m := &lockManager{}
	n := 0
	for i := 0; i < 3; i++ {
		m.request(&lockReq{origin: i, excl: false, grant: func() { n++ }})
	}
	if n != 3 {
		t.Fatalf("granted %d shared locks, want 3", n)
	}
	if s, _ := m.held(); s != 3 {
		t.Fatalf("shared = %d", s)
	}
}

func TestLockManagerSharedWaitsBehindQueuedExclusive(t *testing.T) {
	m := &lockManager{}
	var granted []int
	g := func(id int) func() { return func() { granted = append(granted, id) } }
	m.request(&lockReq{origin: 0, excl: false, grant: g(0)}) // granted
	m.request(&lockReq{origin: 1, excl: true, grant: g(1)})  // queued
	m.request(&lockReq{origin: 2, excl: false, grant: g(2)}) // must queue behind excl (fairness)
	if len(granted) != 1 {
		t.Fatalf("granted = %v", granted)
	}
	m.release(0, false)
	if len(granted) != 2 || granted[1] != 1 {
		t.Fatalf("granted = %v", granted)
	}
	m.release(1, true)
	if len(granted) != 3 || granted[2] != 2 {
		t.Fatalf("granted = %v", granted)
	}
}

func TestLockManagerReleaseUnderflowPanics(t *testing.T) {
	for _, excl := range []bool{true, false} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for excl=%v underflow", excl)
				}
			}()
			(&lockManager{}).release(0, excl)
		}()
	}
}

func TestLockManagerBatchReleaseAdmitsRunOfShared(t *testing.T) {
	m := &lockManager{}
	var granted []int
	g := func(id int) func() { return func() { granted = append(granted, id) } }
	m.request(&lockReq{origin: 0, excl: true, grant: g(0)})
	for i := 1; i <= 3; i++ {
		m.request(&lockReq{origin: i, excl: false, grant: g(i)})
	}
	m.release(0, true)
	if len(granted) != 4 {
		t.Fatalf("granted = %v; run of shared requests should all admit", granted)
	}
}
