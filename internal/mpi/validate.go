package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Validator detects would-be violations of the MPI-3 RMA memory model in
// the simulated timeline. In the serialized simulation data can never
// literally tear, so instead the validator flags the situations that
// would corrupt data on real hardware — exactly the hazards Section III
// of the paper designs around:
//
//   - atomicity: accumulate-family operations on overlapping bytes
//     serviced concurrently by different progress entities (e.g. two
//     ghost processes handling the same element);
//   - ordering: accumulate-family operations from one origin applied to
//     overlapping bytes out of issue order (e.g. one origin's operations
//     spread across ghosts);
//   - exclusivity: writes from different origins touching overlapping
//     bytes concurrently while at least one origin believed it held an
//     exclusive lock (the lock-bypass corruption of Section III-B).
//
// Conflict detection keys on the underlying memory segment, not the
// window, so Casper's overlapping windows over the same memory are
// checked coherently.
type Validator struct {
	recent     map[int][]applyRec // segment id -> recent applies (ring)
	violations []string
	ringSize   int
}

type applyRec struct {
	lo, hi     int // absolute byte range in the segment, [lo, hi)
	start, end sim.Time
	owner      int // world rank of the servicing engine; -1 for NIC hardware
	origin     int // world rank of the issuing process
	seq        int64
	kind       OpKind
	excl       bool
}

func newValidator() *Validator {
	return &Validator{recent: map[int][]applyRec{}, ringSize: 512}
}

// Violations returns human-readable descriptions of every detected
// violation, in detection order.
func (v *Validator) Violations() []string { return v.violations }

// Ok reports whether no violations were detected.
func (v *Validator) Ok() bool { return len(v.violations) == 0 }

func (v *Validator) addViolation(format string, args ...interface{}) {
	v.violations = append(v.violations, fmt.Sprintf(format, args...))
}

func overlaps(a, b applyRec) bool { return a.lo < b.hi && b.lo < a.hi }

func timeOverlaps(a, b applyRec) bool { return a.start < b.end && b.start < a.end }

// recordApply registers one applied operation. It runs in engine
// context; the op carries its service interval and owner. disp is the
// displacement within reg (already resolved for dynamic windows).
func (v *Validator) recordApply(o *rmaOp, reg Region, disp, ownerWorld int) {
	lo := reg.off + disp
	rec := applyRec{
		lo:     lo,
		hi:     lo + o.dt.Extent(),
		start:  o.svcStart,
		end:    o.svcEnd,
		owner:  ownerWorld,
		origin: o.win.comm.ranks[o.origin],
		seq:    o.seq,
		kind:   o.kind,
		excl:   o.excl,
	}
	if rec.end == rec.start {
		rec.end++ // give instantaneous applies a non-empty interval
	}
	segID := reg.seg.id
	for _, prev := range v.recent[segID] {
		if !overlaps(prev, rec) {
			continue
		}
		bothAtomic := prev.kind.isAtomicFamily() && rec.kind.isAtomicFamily()
		anyWrite := prev.kind.isWrite() || rec.kind.isWrite()
		if bothAtomic && anyWrite && timeOverlaps(prev, rec) && prev.owner != rec.owner {
			v.addViolation(
				"atomicity: %v from rank %d (server %d, %v-%v) and %v from rank %d (server %d, %v-%v) overlap on bytes [%d,%d)x[%d,%d)",
				prev.kind, prev.origin, prev.owner, prev.start, prev.end,
				rec.kind, rec.origin, rec.owner, rec.start, rec.end,
				prev.lo, prev.hi, rec.lo, rec.hi)
		}
		if bothAtomic && prev.origin == rec.origin && prev.seq > rec.seq {
			v.addViolation(
				"ordering: rank %d's %v seq %d applied after seq %d on overlapping bytes [%d,%d)",
				rec.origin, rec.kind, rec.seq, prev.seq, rec.lo, rec.hi)
		}
		if anyWrite && prev.origin != rec.origin && (prev.excl || rec.excl) &&
			timeOverlaps(prev, rec) {
			v.addViolation(
				"exclusivity: concurrent %v from rank %d and %v from rank %d on bytes [%d,%d) while an exclusive lock was held",
				prev.kind, prev.origin, rec.kind, rec.origin, rec.lo, rec.hi)
		}
	}
	ring := append(v.recent[segID], rec)
	if len(ring) > v.ringSize {
		ring = ring[len(ring)-v.ringSize:]
	}
	v.recent[segID] = ring
}
