// Package mpi implements the MPI-3 subset this reproduction needs, as a
// runtime over the discrete-event simulator: communicators, point-to-point
// messaging with tag matching, collectives, datatypes, and — centrally —
// the full one-sided (RMA) chapter: windows, all epoch types (fence, PSCW,
// lock/unlock, lockall), communication operations (put, get, accumulate,
// get-accumulate, fetch-and-op, compare-and-swap), flush, and window sync.
//
// The runtime reproduces the progress property the Casper paper is built
// on: operations that require target-side software (accumulates and
// noncontiguous transfers — "software active messages") complete at the
// target only while the target rank is inside an MPI call, unless an
// asynchronous progress mode (thread, interrupt) is configured or the
// target is parked inside MPI permanently (a Casper ghost process).
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// BasicType enumerates MPI basic datatypes supported by this runtime.
type BasicType int

// Supported basic datatypes.
const (
	Byte BasicType = iota
	Int32
	Int64
	Float64
)

// Size returns the size of one element in bytes.
func (b BasicType) Size() int {
	switch b {
	case Byte:
		return 1
	case Int32:
		return 4
	case Int64, Float64:
		return 8
	default:
		panic(fmt.Sprintf("mpi: unknown basic type %d", int(b)))
	}
}

// String implements fmt.Stringer.
func (b BasicType) String() string {
	switch b {
	case Byte:
		return "MPI_BYTE"
	case Int32:
		return "MPI_INT32"
	case Int64:
		return "MPI_INT64"
	case Float64:
		return "MPI_DOUBLE"
	default:
		return fmt.Sprintf("basic(%d)", int(b))
	}
}

// MaxBasicSize is the size of the largest basic datatype. Casper's
// segment binding aligns segment boundaries to this granularity so that
// no basic element is ever split between ghost processes (Section
// III-B-2). The paper uses 16 (MPI_REAL16); we keep the same constant.
const MaxBasicSize = 16

// Datatype describes the layout of data at the target of an RMA
// operation. It covers basic elements, contiguous runs, strided vectors,
// and explicit block lists (the noncontiguous cases that force the
// software path on all modeled platforms).
type Datatype struct {
	Basic    BasicType
	Count    int // number of blocks
	BlockLen int // basic elements per block
	Stride   int // basic elements between block starts (>= BlockLen)

	// Index holds explicit block offsets in basic elements (as
	// MPI_TYPE_INDEXED with constant block length). When non-nil it
	// overrides Count/Stride; offsets must be strictly increasing with
	// non-overlapping blocks.
	Index []int
}

// TypeOf returns the datatype of n contiguous elements of b.
func TypeOf(b BasicType, n int) Datatype {
	return Datatype{Basic: b, Count: 1, BlockLen: n, Stride: n}
}

// Scalar returns the datatype of a single element of b.
func Scalar(b BasicType) Datatype { return TypeOf(b, 1) }

// Vector returns a strided datatype: count blocks of blockLen elements,
// block starts stride elements apart (as MPI_TYPE_VECTOR).
func Vector(b BasicType, count, blockLen, stride int) Datatype {
	return Datatype{Basic: b, Count: count, BlockLen: blockLen, Stride: stride}
}

// Indexed returns an MPI_TYPE_INDEXED-style datatype: blocks of
// blockLen elements of b at the given element offsets (strictly
// increasing, non-overlapping).
func Indexed(b BasicType, blockLen int, offsets []int) Datatype {
	return Datatype{Basic: b, BlockLen: blockLen, Count: len(offsets),
		Index: append([]int(nil), offsets...)}
}

// Validate checks structural invariants.
func (d Datatype) Validate() error {
	if d.BlockLen <= 0 {
		return fmt.Errorf("mpi: datatype with blocklen %d", d.BlockLen)
	}
	if d.Index != nil {
		if len(d.Index) == 0 {
			return fmt.Errorf("mpi: indexed datatype with no blocks")
		}
		prevEnd := -1
		for _, off := range d.Index {
			if off < 0 {
				return fmt.Errorf("mpi: indexed datatype with negative offset %d", off)
			}
			if off < prevEnd {
				return fmt.Errorf("mpi: indexed datatype blocks overlap or decrease at %d", off)
			}
			prevEnd = off + d.BlockLen
		}
		return nil
	}
	if d.Count <= 0 {
		return fmt.Errorf("mpi: datatype with count %d", d.Count)
	}
	if d.Stride < d.BlockLen {
		return fmt.Errorf("mpi: datatype stride %d < blocklen %d (overlapping)", d.Stride, d.BlockLen)
	}
	return nil
}

// blocks returns the number of blocks.
func (d Datatype) blocks() int {
	if d.Index != nil {
		return len(d.Index)
	}
	return d.Count
}

// Size returns the number of data bytes the type describes.
func (d Datatype) Size() int { return d.blocks() * d.BlockLen * d.Basic.Size() }

// Extent returns the span in bytes from the first to one past the last
// byte touched.
func (d Datatype) Extent() int {
	if d.Index != nil {
		last := d.Index[len(d.Index)-1]
		return (last + d.BlockLen) * d.Basic.Size()
	}
	if d.Count == 0 {
		return 0
	}
	return ((d.Count-1)*d.Stride + d.BlockLen) * d.Basic.Size()
}

// Contiguous reports whether the described bytes form one run.
func (d Datatype) Contiguous() bool {
	if d.Index != nil {
		for i, off := range d.Index {
			if off != d.Index[0]+i*d.BlockLen {
				return false
			}
		}
		return d.Index[0] == 0 || len(d.Index) == 0
	}
	return d.Count == 1 || d.Stride == d.BlockLen
}

// Elems returns the number of basic elements.
func (d Datatype) Elems() int { return d.blocks() * d.BlockLen }

// Blocks calls fn for each contiguous block as (byteOffset, byteLength)
// relative to the start of the type, in ascending offset order.
func (d Datatype) Blocks(fn func(off, n int)) {
	es := d.Basic.Size()
	bl := d.BlockLen * es
	if d.Index != nil {
		for _, off := range d.Index {
			fn(off*es, bl)
		}
		return
	}
	if d.Contiguous() {
		fn(0, d.Count*bl)
		return
	}
	st := d.Stride * es
	for i := 0; i < d.Count; i++ {
		fn(i*st, bl)
	}
}

// String implements fmt.Stringer.
func (d Datatype) String() string {
	if d.Index != nil {
		return fmt.Sprintf("indexed(%v, blocks=%d, blocklen=%d)",
			d.Basic, len(d.Index), d.BlockLen)
	}
	if d.Contiguous() {
		return fmt.Sprintf("%v x%d", d.Basic, d.Elems())
	}
	return fmt.Sprintf("vector(%v, count=%d, blocklen=%d, stride=%d)",
		d.Basic, d.Count, d.BlockLen, d.Stride)
}

// Op is an MPI reduction operation used by accumulate-style calls.
type Op int

// Supported reduction operations. OpReplace corresponds to MPI_REPLACE
// (put semantics under accumulate ordering rules); OpNoOp to MPI_NO_OP
// (pure atomic read in get-accumulate).
const (
	OpReplace Op = iota
	OpSum
	OpProd
	OpMin
	OpMax
	OpBAnd
	OpBOr
	OpBXor
	OpNoOp
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpReplace:
		return "MPI_REPLACE"
	case OpSum:
		return "MPI_SUM"
	case OpProd:
		return "MPI_PROD"
	case OpMin:
		return "MPI_MIN"
	case OpMax:
		return "MPI_MAX"
	case OpBAnd:
		return "MPI_BAND"
	case OpBOr:
		return "MPI_BOR"
	case OpBXor:
		return "MPI_BXOR"
	case OpNoOp:
		return "MPI_NO_OP"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// applyElem combines one basic element: dst = dst (op) src.
func applyElem(op Op, b BasicType, dst, src []byte) {
	if op == OpNoOp {
		return
	}
	if op == OpReplace {
		copy(dst, src[:b.Size()])
		return
	}
	switch b {
	case Float64:
		if op == OpBAnd || op == OpBOr || op == OpBXor {
			panic(fmt.Sprintf("mpi: bitwise %v on MPI_DOUBLE is invalid", op))
		}
		d := math.Float64frombits(binary.LittleEndian.Uint64(dst))
		s := math.Float64frombits(binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(dst, math.Float64bits(combineF64(op, d, s)))
	case Int64:
		d := int64(binary.LittleEndian.Uint64(dst))
		s := int64(binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(dst, uint64(combineI64(op, d, s)))
	case Int32:
		d := int32(binary.LittleEndian.Uint32(dst))
		s := int32(binary.LittleEndian.Uint32(src))
		binary.LittleEndian.PutUint32(dst, uint32(combineI64(op, int64(d), int64(s))))
	case Byte:
		dst[0] = byte(combineI64(op, int64(dst[0]), int64(src[0])))
	default:
		panic(fmt.Sprintf("mpi: accumulate on unknown basic type %v", b))
	}
}

func combineF64(op Op, d, s float64) float64 {
	switch op {
	case OpSum:
		return d + s
	case OpProd:
		return d * s
	case OpMin:
		return math.Min(d, s)
	case OpMax:
		return math.Max(d, s)
	default:
		panic(fmt.Sprintf("mpi: bad float op %v", op))
	}
}

func combineI64(op Op, d, s int64) int64 {
	switch op {
	case OpSum:
		return d + s
	case OpProd:
		return d * s
	case OpMin:
		if s < d {
			return s
		}
		return d
	case OpMax:
		if s > d {
			return s
		}
		return d
	case OpBAnd:
		return d & s
	case OpBOr:
		return d | s
	case OpBXor:
		return d ^ s
	default:
		panic(fmt.Sprintf("mpi: bad int op %v", op))
	}
}

// accumulate applies src (packed, contiguous) onto the target buffer at
// disp with layout d, element-by-element with op. For OpReplace this is a
// datatype-scattered put; replace carries no element arithmetic, so each
// block moves with one copy instead of a per-element loop (and a fully
// contiguous type is a single memmove).
func accumulate(op Op, d Datatype, target []byte, disp int, src []byte) {
	if op == OpNoOp {
		return
	}
	if op == OpReplace {
		si := 0
		d.Blocks(func(off, n int) {
			copy(target[disp+off:disp+off+n], src[si:si+n])
			si += n
		})
		return
	}
	es := d.Basic.Size()
	si := 0
	d.Blocks(func(off, n int) {
		for b := 0; b < n; b += es {
			applyElem(op, d.Basic, target[disp+off+b:disp+off+b+es], src[si:si+es])
			si += es
		}
	})
}

// gather packs the bytes described by d at disp in target into a new
// contiguous buffer (the Get path).
func gather(d Datatype, target []byte, disp int) []byte {
	out := make([]byte, d.Size())
	gatherInto(out, d, target, disp)
	return out
}

// gatherPooled is gather into a recycled buffer from pool; the caller
// returns it via pool.put when the op reaches its terminal state.
func gatherPooled(d Datatype, target []byte, disp int, pool *bufPool) []byte {
	out := pool.get(d.Size())
	gatherInto(out, d, target, disp)
	return out
}

func gatherInto(out []byte, d Datatype, target []byte, disp int) {
	oi := 0
	d.Blocks(func(off, n int) {
		copy(out[oi:oi+n], target[disp+off:disp+off+n])
		oi += n
	})
}

// PutFloat64s encodes a float64 slice into bytes (little endian), the
// wire format used throughout this runtime.
func PutFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// GetFloat64s decodes bytes into float64s.
func GetFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// PutInt64 encodes one int64.
func PutInt64(v int64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(v))
	return out
}

// GetInt64 decodes one int64.
func GetInt64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }
