package mpi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// worldEvents accumulates simulation events executed by every World.Run
// in the process, across goroutines — the perf baseline's events/sec
// and allocs/event metrics are computed from deltas of this counter
// (see internal/bench.Measure and EXPERIMENTS.md).
var worldEvents atomic.Int64

// TotalEventsExecuted returns the simulation events executed by all
// completed World.Run calls in this process.
func TotalEventsExecuted() int64 { return worldEvents.Load() }

// worldInlined accumulates inline run-to-completion advances (events
// that skipped the heap and the goroutine switch entirely) across all
// World.Run calls, mirroring worldEvents.
var worldInlined atomic.Int64

// TotalInlinedAdvances returns the inline fast-path advances taken by
// all completed World.Run calls in this process.
func TotalInlinedAdvances() int64 { return worldInlined.Load() }

// worldShardRounds accumulates shard-group window barriers across all
// sharded World.Run calls, mirroring worldEvents — the synchronization
// cost the perf baseline records per sharded sweep point.
var worldShardRounds atomic.Int64

// TotalShardRounds returns the window barriers executed by all
// completed sharded World.Run calls in this process.
func TotalShardRounds() int64 { return worldShardRounds.Load() }

// worldPeakResidency tracks the maximum scheduler-queue occupancy seen
// by any engine of any completed World.Run since the last Take. Unlike
// the cumulative counters above it is a high-water gauge, so the bench
// harness reads it with swap-to-zero semantics rather than deltas.
var worldPeakResidency atomic.Int64

// TakePeakQueueResidency returns the highest scheduler-queue occupancy
// recorded by any World.Run since the previous call, and resets the
// gauge. The bench harness calls it once before a measured interval to
// discard history and once after to read the interval's peak.
func TakePeakQueueResidency() int { return int(worldPeakResidency.Swap(0)) }

func notePeakResidency(p int) {
	for {
		old := worldPeakResidency.Load()
		if int64(p) <= old || worldPeakResidency.CompareAndSwap(old, int64(p)) {
			return
		}
	}
}

// ProgressMode selects the asynchronous progress baseline configured for
// every rank of a world. Casper is not a mode: it is a library layered on
// top of ProgressNone, which is the whole point of the paper.
type ProgressMode int

// Progress modes.
const (
	// ProgressNone: software RMA targeted at a rank makes progress
	// only while that rank is inside an MPI call (default MPI
	// behaviour the paper describes).
	ProgressNone ProgressMode = iota
	// ProgressThread: a background progress thread per rank services
	// software RMA at any time, at the cost of thread-multiple
	// overhead on all MPI calls (and stolen compute cycles when
	// oversubscribed).
	ProgressThread
	// ProgressInterrupt: arriving software RMA raises a simulated
	// hardware interrupt on the busy target (the Cray DMAPP model).
	ProgressInterrupt
)

// String implements fmt.Stringer.
func (m ProgressMode) String() string {
	switch m {
	case ProgressNone:
		return "none"
	case ProgressThread:
		return "thread"
	case ProgressInterrupt:
		return "interrupt"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config describes a simulated MPI world.
type Config struct {
	Machine cluster.Machine
	N       int // world size (MPI_COMM_WORLD size, including any future ghosts)
	PPN     int // ranks per node
	Net     *netmodel.Params
	Seed    int64

	Progress             ProgressMode
	ThreadOversubscribed bool // ProgressThread: thread shares the rank's core (Thread(O)) rather than a dedicated one (Thread(D))

	Validate bool // enable the correctness validator (atomicity/ordering/lock checks)

	// Fault, when non-nil, enables the fault-injection layer: messages
	// travel over the reliable transport of reliable.go, the plan's
	// crashes/stalls/stragglers are armed, and health monitoring becomes
	// available. A nil plan leaves the seed code paths untouched.
	Fault *fault.Plan
	// Flow, when non-nil, enables credit-based flow control for
	// software RMA: origins hold a bounded credit window per target
	// and block in virtual time when it is exhausted, so a saturated
	// ghost's queue depth is bounded instead of growing without limit.
	// A nil config leaves the seed code paths untouched.
	Flow *FlowConfig
	// Errors selects the error-handler model; the zero value,
	// ErrorsAreFatal, panics exactly as the runtime always has.
	Errors ErrorMode
	// WatchdogEvents / WatchdogTime bound a run (see sim.SetWatchdog).
	// Zero means default: unlimited normally, a generous event limit
	// when a fault plan is configured (so a retransmission livelock
	// fails fast instead of spinning).
	WatchdogEvents int64
	WatchdogTime   sim.Time
	// NoSimFastPath disables the engine's run-to-completion fast paths
	// (inline advances and same-time event fusion). The schedule is
	// bit-identical either way — this exists so tests can prove it and
	// benchmarks can measure the difference.
	NoSimFastPath bool
	// Sched selects the engine's event-scheduler implementation. The
	// zero value is the ladder queue; sim.SchedHeap selects the retained
	// 4-ary heap, the differential-testing oracle. Runs are bit-identical
	// either way (see sim.SchedulerKind).
	Sched sim.SchedulerKind
	// Shards > 0 enables sharded execution: the world's processes are
	// partitioned across one simulation engine per node (ghosts co-located
	// with the app ranks they serve), executed by up to Shards worker
	// goroutines under conservative safe windows bounded by the network
	// model's minimum cross-node latency (netmodel.Params.Lookahead). The
	// executed event order, RNG draws per rank, and all experiment output
	// are identical to the serial engine and identical across any Shards
	// value — only wall-clock parallelism changes. Worlds the sharded
	// engine cannot run (fault plans, flow control, the validator, or a
	// single node) silently fall back to the serial engine.
	Shards int
	// NoShardedSim forces the serial engine even when Shards > 0 — the
	// A/B escape hatch mirroring NoSimFastPath.
	NoShardedSim bool
}

// World is one simulated MPI job: an engine, a placement, and N ranks.
type World struct {
	eng        *sim.Engine
	place      *cluster.Placement
	net        *netmodel.Params
	cfg        Config
	ranks      []*Rank
	commWorld  *commGlobal
	segSeq     int
	winSeq     int
	commSeq    int
	validator  *Validator
	tracer     *trace.Tracer
	groupComms map[string][]*commGlobal // CommFromGroup instances by rank set

	comms []*commGlobal // every live comm, for failure reaping
	wins  []*winGlobal  // every window, for wait-for diagnostics

	// Flow-control state; nil without a Config.Flow.
	flow *flowState

	// shared holds world-global state for layered runtimes (keyed
	// singletons in the single simulated address space).
	shared map[string]interface{}

	// pool recycles transient RMA message-path buffers (see pool.go).
	pool bufPool

	// memo caches the net cost-model lookups (latency memoization).
	// Owned by this world's single simulation goroutine (per-shard
	// instances live in sharded; every rank reaches its own through
	// Rank.memo).
	memo *netmodel.Memo

	// opRecycle enables rmaOp header recycling (see Rank.getOp). Disabled
	// under a fault plan, where reliability packets retain op pointers
	// past terminal state.
	opRecycle bool

	// sharded holds the parallel-execution state when Config.Shards
	// selected (and the world is eligible for) the sharded engine; nil
	// means the classic serial engine. While sharded, eng is nil so any
	// code path not routed through per-rank engines fails loudly.
	sharded *shardState

	// Fault-injection state; all nil/zero without a Config.Fault plan.
	inj         *fault.Injector
	rel         *reliability
	health      *healthState
	deathHooks  []func(worldRank int) // fire on health-failure detection
	failedCount int
	p2pLost     int64 // p2p messages abandoned at dead destinations

	// App-rank recovery state (all nil/zero unless the plan schedules
	// AppCrashes). guards journals mutations of guarded window regions
	// (see RegionGuard); appRestore is the layered runtime's restore
	// callback (see SetAppRestore); failureEra counts completed
	// failure-agreement rounds, the "failure epoch" every survivor
	// converges on.
	guards     map[*segment][]*RegionGuard
	appRestore func(worldRank int) (bytes, replayed int, ok bool)
	failureEra int64
}

// NewWorld builds a world; ranks exist but are not running until Launch.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("mpi: Config.Net is nil")
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	place, err := cluster.NewPlacement(cfg.Machine, cfg.N, cfg.PPN)
	if err != nil {
		return nil, err
	}
	w := &World{
		place:     place,
		net:       cfg.Net,
		cfg:       cfg,
		memo:      netmodel.NewMemo(cfg.Net),
		opRecycle: cfg.Fault == nil,
	}
	if shardEligible(cfg, place) {
		w.sharded = newShardState(w)
	} else {
		w.eng = sim.New(cfg.Seed)
		w.eng.SetScheduler(cfg.Sched)
	}
	if cfg.NoSimFastPath {
		for _, e := range w.allEngines() {
			e.DisableFastPaths()
		}
	}
	if cfg.Validate {
		w.validator = newValidator()
	}
	if cfg.Fault != nil {
		inj, err := fault.NewInjector(cfg.Fault)
		if err != nil {
			return nil, err
		}
		w.inj = inj
		w.rel = newReliability(w)
		w.deathHooks = append(w.deathHooks, w.rel.onDeath, w.reclaimLocksAt)
	}
	if cfg.Flow != nil {
		w.flow = newFlowState(w, cfg.Flow)
	}
	maxEvents := cfg.WatchdogEvents
	if maxEvents == 0 && cfg.Fault != nil {
		maxEvents = 250_000_000
	}
	if maxEvents != 0 || cfg.WatchdogTime != 0 {
		if s := w.sharded; s != nil {
			s.group.SetEventBudget(maxEvents)
			s.group.SetMaxTime(cfg.WatchdogTime)
		} else {
			w.eng.SetWatchdog(maxEvents, cfg.WatchdogTime)
		}
	}
	if cfg.Fault != nil || cfg.Flow != nil {
		// Hang diagnostics: if the timeline wedges (deadlock) or spins
		// without advancing (livelock), the error carries a wait-for
		// graph instead of leaving the user to guess.
		w.eng.SetStallWatchdog(2_000_000)
		w.eng.AddDiagnostic(w.waitDiagnostics)
	}
	w.ranks = make([]*Rank, cfg.N)
	for i := range w.ranks {
		w.ranks[i] = newRank(w, i)
	}
	ranks := make([]int, cfg.N)
	for i := range ranks {
		ranks[i] = i
	}
	w.commWorld = w.newCommGlobal(ranks)
	return w, nil
}

// Engine returns the simulation engine — nil under sharded execution,
// where there is one engine per node (see Rank.Engine).
func (w *World) Engine() *sim.Engine { return w.eng }

// Sharded reports whether the world runs on the sharded engine.
func (w *World) Sharded() bool { return w.sharded != nil }

// ShardCount returns the number of shards (simulation engines) of a
// sharded world, and 0 for a serial one.
func (w *World) ShardCount() int {
	if w.sharded == nil {
		return 0
	}
	return len(w.sharded.engines)
}

// ShardRounds returns how many window barriers the shard group has
// executed (0 for a serial world) — the synchronization cost of the
// run, see sim.ShardGroup.Rounds.
func (w *World) ShardRounds() int64 {
	if w.sharded == nil {
		return 0
	}
	return w.sharded.group.Rounds()
}

// allEngines returns every simulation engine of the world: the per-node
// shard engines, or the single serial engine.
func (w *World) allEngines() []*sim.Engine {
	if s := w.sharded; s != nil {
		return s.engines
	}
	return []*sim.Engine{w.eng}
}

// now returns the current global virtual time: the serial engine's
// clock, or the maximum shard clock (only meaningful between windows —
// i.e. after Run returns).
func (w *World) now() sim.Time {
	if s := w.sharded; s != nil {
		var t sim.Time
		for _, e := range s.engines {
			if n := e.Now(); n > t {
				t = n
			}
		}
		return t
	}
	return w.eng.Now()
}

// schedule runs fn at virtual time at on engine dst, from the engine
// context src. Same-engine scheduling (and every serial world) goes
// straight to the event heap; cross-shard scheduling goes through the
// shard group's mailboxes, which enforce the lookahead contract.
func (w *World) schedule(src, dst *sim.Engine, at sim.Time, fn func()) {
	if src == dst {
		src.At(at, fn)
		return
	}
	w.sharded.group.Inject(src, dst, at, fn)
}

// scheduleRun is schedule for closure-free Runner payloads.
func (w *World) scheduleRun(src, dst *sim.Engine, at sim.Time, r sim.Runner) {
	if src == dst {
		src.AtRun(at, r)
		return
	}
	w.sharded.group.InjectRun(src, dst, at, r)
}

// Placement returns the rank-to-hardware mapping.
func (w *World) Placement() *cluster.Placement { return w.place }

// Net returns the platform cost model.
func (w *World) Net() *netmodel.Params { return w.net }

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Validator returns the correctness validator, or nil when disabled.
func (w *World) Validator() *Validator { return w.validator }

// PoolOutstanding returns the number of message-path buffers handed out
// by the world's buffer pool(s) and not yet returned. Zero once the
// world has quiesced; anything else is a leak on an error/early-return
// path.
func (w *World) PoolOutstanding() int64 {
	if s := w.sharded; s != nil {
		var n int64
		for i := range s.pools {
			n += s.pools[i].Outstanding()
		}
		return n
	}
	return w.pool.Outstanding()
}

// SetTracer installs an operation tracer; pass nil to disable. Install
// before Launch. The tracer records from every rank into one stream, so
// it is incompatible with sharded execution.
func (w *World) SetTracer(t *trace.Tracer) {
	if w.sharded != nil && t.Enabled() {
		panic("mpi: tracing is not supported under sharded execution (set Config.NoShardedSim)")
	}
	w.tracer = t
}

// Tracer returns the installed tracer (possibly nil).
func (w *World) Tracer() *trace.Tracer { return w.tracer }

// RankByID returns the Rank object for a world rank (for inspection by
// tests and harnesses; application code receives its Rank from Launch).
func (w *World) RankByID(i int) *Rank { return w.ranks[i] }

// SharedState returns the world-global value under key, calling create
// to build it on first use. Layered runtimes (Casper) use it for
// singletons that live in the simulated job's single address space,
// such as the overload rebalancer.
func (w *World) SharedState(key string, create func() interface{}) interface{} {
	if s := w.sharded; s != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if w.shared == nil {
		w.shared = make(map[string]interface{})
	}
	v, ok := w.shared[key]
	if !ok {
		v = create()
		w.shared[key] = v
	}
	return v
}

// AddDeathHook registers fn to run (in engine context) when the failure
// detector confirms a rank dead, after the built-in transport failover
// and lock reclamation hooks. Layered runtimes (Casper) use it for
// recovery machinery such as sequencer succession. Hooks never fire in
// worlds without a fault plan.
func (w *World) AddDeathHook(fn func(worldRank int)) {
	w.deathHooks = append(w.deathHooks, fn)
}

// reclaimLocksAt is the built-in death hook that reclaims every lock
// manager owned by the dead rank, window by window in creation order:
// holds convert to counted shared holds, queued waiters are admitted,
// and later requests auto-admit, so no epoch blocks on a confirmed
// corpse (see lockManager.reclaim).
func (w *World) reclaimLocksAt(dead int) {
	if w.ranks[dead].down {
		// Down-recoverable rank: its lock managers keep arbitrating and
		// its holds stay held — the revived process resumes them.
		return
	}
	for _, g := range w.wins {
		if g.freed.Load() {
			continue
		}
		cr, ok := g.comm.index[dead]
		if !ok {
			continue
		}
		m := g.lockMgrs[cr]
		if m == nil {
			continue
		}
		if n := m.reclaim(); n > 0 {
			w.ranks[dead].stats.LocksReclaimed += int64(n)
			if t := w.tracer; t.Enabled() {
				t.RecordFault(trace.Fault{Kind: "reclaim", Rank: dead, Peer: -1, At: w.eng.Now()})
			}
		}
	}
}

// NoteEpochRelock, NoteSuccession, NoteCmdResend and NoteRebind credit
// recovery actions performed by layered runtimes to the acting rank's
// counters (see RankStats).
func (w *World) NoteEpochRelock(worldRank int) { w.ranks[worldRank].stats.EpochRelocks++ }

// NoteSuccession records a sequencer takeover by worldRank.
func (w *World) NoteSuccession(worldRank int) { w.ranks[worldRank].stats.Successions++ }

// NoteCmdResend records one logged-command retransmission by worldRank.
func (w *World) NoteCmdResend(worldRank int) { w.ranks[worldRank].stats.CmdResends++ }

// NoteRebind records one bound-target failover performed by worldRank.
func (w *World) NoteRebind(worldRank int) { w.ranks[worldRank].stats.Rebinds++ }

// NoteSnapshot records one epoch-close snapshot of n bytes shipped by
// worldRank (a ghost) to its buddy.
func (w *World) NoteSnapshot(worldRank, n int) {
	st := &w.ranks[worldRank].stats
	st.SnapshotsTaken++
	st.SnapshotBytes += int64(n)
}

// NoteReplayedOps records n journaled RMA ops replayed by worldRank
// during a restore.
func (w *World) NoteReplayedOps(worldRank, n int) {
	w.ranks[worldRank].stats.ReplayedOps += int64(n)
}

// SetAppRestore installs the layered runtime's restore callback for
// recovering application ranks. When the failure detector's agreement
// round on a recoverable crash completes, the runtime calls fn (engine
// context; it must not park) with the dead world rank; fn restores the
// rank's window state from its last closed-epoch snapshot plus the open
// epoch's journal and returns the snapshot bytes it had to ship from
// the buddy ghost and the ops it replayed, so the detector can charge
// the transfer before thawing the rank. ok=false means no guarded state
// exists (the rank crashed before its first window); the respawn then
// restores nothing.
func (w *World) SetAppRestore(fn func(worldRank int) (bytes, replayed int, ok bool)) {
	w.appRestore = fn
}

// Launch spawns every rank running main and schedules them at time 0,
// then arms any configured fault plan.
func (w *World) Launch(main func(r *Rank)) {
	for _, r := range w.ranks {
		r := r
		r.proc = r.eng.Spawn(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			main(r)
		})
	}
	w.scheduleFaults()
}

// FaultsEnabled reports whether the world carries a fault-injection
// layer (Config.Fault was set).
func (w *World) FaultsEnabled() bool { return w.inj != nil }

// Failed reports this rank's ground-truth crash state.
func (r *Rank) Failed() bool { return r.failed }

// Down reports whether the rank is mid-recovery from a recoverable app
// crash: frozen and unreachable, but due to be respawned.
func (r *Rank) Down() bool { return r.down }

// FailedCount returns the number of ranks that have crashed.
func (w *World) FailedCount() int { return w.failedCount }

// Run executes the simulation to completion.
func (w *World) Run() error {
	var err error
	if s := w.sharded; s != nil {
		err = s.group.Run()
		worldEvents.Add(s.group.EventsExecuted())
		worldInlined.Add(s.group.InlinedAdvances())
		worldShardRounds.Add(s.group.Rounds())
	} else {
		err = w.eng.Run()
		worldEvents.Add(w.eng.EventsExecuted())
		worldInlined.Add(w.eng.InlinedAdvances())
	}
	for _, e := range w.allEngines() {
		notePeakResidency(e.PeakQueueResidency())
	}
	return err
}

// Run is the convenience harness: build a world, run main on every rank,
// and return the world for inspection.
func Run(cfg Config, main func(r *Rank)) (*World, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	w.Launch(main)
	if err := w.Run(); err != nil {
		return nil, err
	}
	return w, nil
}

// segment is a block of simulated remotely accessible memory. Windows
// expose regions of segments; Casper's overlapping windows alias the
// same segment, and the validator keys conflict detection on (segment,
// offset) so aliased windows are checked coherently.
type segment struct {
	id   int
	data []byte
}

func (w *World) newSegment(n int) *segment {
	if s := w.sharded; s != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	w.segSeq++
	return &segment{id: w.segSeq, data: make([]byte, n)}
}

// Region is a window's view of one rank's exposed memory.
type Region struct {
	seg *segment
	off int
	n   int
}

// Bytes returns the backing memory of the region.
func (r Region) Bytes() []byte { return r.seg.data[r.off : r.off+r.n] }

// Len returns the region size in bytes.
func (r Region) Len() int { return r.n }

// Sub returns a sub-region [off, off+n) of r.
func (r Region) Sub(off, n int) Region {
	if off < 0 || n < 0 || off+n > r.n {
		panic(fmt.Sprintf("mpi: sub-region [%d,%d) outside region of %d bytes", off, off+n, r.n))
	}
	return Region{seg: r.seg, off: r.off + off, n: n}
}

// Offset returns the region's byte offset within its backing segment.
// Casper uses it to translate a user-rank displacement into a
// ghost-window displacement ("X + P1's offset in the ghost process
// address space", Section II-C).
func (r Region) Offset() int { return r.off }

// Root returns the region covering the entire backing segment — the
// whole node's shared window memory mapped into a ghost's address space.
func (r Region) Root() Region {
	return Region{seg: r.seg, off: 0, n: len(r.seg.data)}
}

// SameSegment reports whether two regions alias the same backing
// segment.
func (r Region) SameSegment(o Region) bool { return r.seg == o.seg }

// Rank is one simulated MPI process. It implements Env.
type Rank struct {
	w    *World
	id   int
	proc *sim.Proc

	// eng/pool/memo are the rank's simulation engine, buffer pool and
	// cost-model memo. Serial worlds alias the world-global instances;
	// sharded worlds point at the rank's node shard, which is what keeps
	// pooling and memoization lock-free with shards running in parallel.
	eng  *sim.Engine
	pool *bufPool
	memo *netmodel.Memo

	// opFree recycles rmaOp headers issued by this rank (acks always land
	// back at the origin, so the freelist never crosses ranks). See
	// getOp/putOp.
	opFree []*rmaOp

	engine  rankEngine
	mailbox mailbox

	groupUses map[string]int   // per-rank CommFromGroup call counts
	p2pLast   map[int]sim.Time // per-destination FIFO delivery horizon
	locTo     []uint8          // lazy per-destination locality class (0xFF unset)

	failed       bool     // ground-truth crash (see health.go)
	down         bool     // recoverable app crash in progress (see crashAppRank)
	stalledUntil sim.Time // progress engine frozen until this time

	lastErr  *MPIError // first unconsumed error under ErrorsReturn
	errCount int64

	stats RankStats
}

// RankStats counts per-rank activity, used by the experiment harnesses
// (e.g. Fig. 4(c) plots the interrupt count).
type RankStats struct {
	SoftwareAMs  int64        // software RMA ops processed at this rank
	HardwareOps  int64        // hardware RMA ops applied at this rank
	Interrupts   int64        // interrupts raised (ProgressInterrupt)
	StolenTime   sim.Duration // compute cycles stolen by interrupts/oversubscribed threads
	BytesIn      int64        // RMA payload bytes received
	OpsIssued    int64        // RMA ops issued from this rank
	MessagesSent int64        // point-to-point messages sent

	// Reliability counters (all zero without a fault plan).
	Retransmits    int64 // packets retransmitted after a loss
	RetryTimeouts  int64 // retransmission timeouts that took action
	DupsSuppressed int64 // duplicate packets discarded at this rank
	Reroutes       int64 // ops failed over to a replacement target
	Abandoned      int64 // ops given up on (error surfaced)
	CorruptDropped int64 // packets dropped at this rank on CRC mismatch

	// Flow-control counters (all zero without a FlowConfig).
	CreditStalls    int64        // issues that had to wait for a credit
	CreditStallTime sim.Duration // virtual time spent waiting for credits
	BacklogDropped  int64        // ops dropped after a credit timeout

	// Recovery counters (all zero without a fault plan). Suspects /
	// FalseSuspects / LocksReclaimed accrue on the rank the detector is
	// watching; the rest accrue on the rank performing the recovery.
	Suspects       int64 // times this rank entered the suspect phase
	FalseSuspects  int64 // suspicions cleared by resumed beacons (stalls)
	LocksReclaimed int64 // lock holds/waiters reclaimed from this rank's managers after death
	EpochRelocks   int64 // mid-epoch lock-set re-opens onto surviving progress ranks
	Successions    int64 // sequencer takeovers performed by this rank
	CmdResends     int64 // logged commands retransmitted by a successor
	Rebinds        int64 // bound targets failed over to a surviving ghost

	// App-rank recovery counters (all zero unless the plan schedules
	// AppCrashes). AppRecoveries accrues on the recovered rank;
	// SnapshotsTaken / SnapshotBytes / ReplayedOps accrue on the ghost
	// performing the snapshot or replay.
	AppRecoveries  int64 // recoverable crashes this rank came back from
	SnapshotsTaken int64 // epoch-close snapshots shipped by this ghost
	SnapshotBytes  int64 // bytes of window state shipped to buddy ghosts
	ReplayedOps    int64 // journaled RMA ops replayed during a restore

	// PeakQueueResidency is the high-water mark of events pending in the
	// scheduler of the engine this rank runs on (the world engine in
	// serial mode, the rank's node shard in sharded mode) — the
	// scheduler's working-set size. Filled on read by Stats.
	PeakQueueResidency int
}

func newRank(w *World, id int) *Rank {
	r := &Rank{w: w, id: id}
	if s := w.sharded; s != nil {
		shard := s.shardOf[id]
		r.eng = s.engines[shard]
		r.pool = &s.pools[shard]
		r.memo = s.memos[shard]
	} else {
		r.eng = w.eng
		r.pool = &w.pool
		r.memo = w.memo
	}
	r.engine.init(r)
	return r
}

// World returns the world this rank belongs to.
func (r *Rank) World() *World { return r.w }

// Rank implements Env.
func (r *Rank) Rank() int { return r.id }

// Size implements Env.
func (r *Rank) Size() int { return r.w.cfg.N }

// CommWorld implements Env: the MPI_COMM_WORLD handle of this rank.
func (r *Rank) CommWorld() *Comm { return &Comm{g: r.w.commWorld, me: r.id, r: r} }

// Now implements Env.
func (r *Rank) Now() sim.Time { return r.eng.Now() }

// Engine returns the simulation engine this rank runs on: the world
// engine in serial mode, the rank's node shard in sharded mode.
func (r *Rank) Engine() *sim.Engine { return r.eng }

// Proc returns the simulation process of this rank; harnesses use it for
// low-level waiting.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Stats returns a copy of this rank's counters.
func (r *Rank) Stats() RankStats {
	st := r.stats
	st.PeakQueueResidency = r.eng.PeakQueueResidency()
	return st
}

// Compute implements Env: application computation of duration d. An
// oversubscribed progress thread (Thread(O)) polls on the same core, so
// compute is slowed by a constant factor; interrupts and the thread's AM
// service steal further cycles. These are the effects that make
// thread-based progress degrade application compute in the paper's
// NWChem results (Section IV-D).
func (r *Rank) Compute(d sim.Duration) {
	if r.w.cfg.Progress == ProgressThread && r.w.cfg.ThreadOversubscribed &&
		r.w.net.OversubCompute > 1 {
		d = sim.Duration(float64(d) * r.w.net.OversubCompute)
	}
	if r.w.inj != nil {
		if f := r.w.inj.ComputeFactor(r.w.place.Node(r.id)); f != 1 {
			d = sim.Duration(float64(d) * f)
		}
	}
	mark := r.engine.stolen
	r.proc.Advance(d)
	for r.engine.stolen > mark {
		extra := r.engine.stolen - mark
		mark = r.engine.stolen
		r.proc.Advance(extra)
	}
}

// mpiEnter marks the rank inside an MPI call, paying the call overhead
// and draining deferred software AMs (polling progress).
func (r *Rank) mpiEnter() {
	r.engine.enterMPI()
	r.proc.Advance(r.callCost())
}

func (r *Rank) mpiLeave() { r.engine.leaveMPI() }

// callCost is the cost of entering an MPI call, inflated by
// thread-multiple safety when a progress thread is configured.
func (r *Rank) callCost() sim.Duration {
	return r.scaleBySafety(r.w.net.CallOverhead)
}

// issueCost is the origin-side cost of issuing one RMA operation.
func (r *Rank) issueCost() sim.Duration {
	return r.scaleBySafety(r.w.net.RMAIssue)
}

func (r *Rank) scaleBySafety(d sim.Duration) sim.Duration {
	if r.w.cfg.Progress == ProgressThread {
		return sim.Duration(float64(d) * r.w.net.ThreadSafety)
	}
	return d
}

// localityTo returns the placement class of the (r, dest) pair, cached
// so the placement arithmetic runs once per pair instead of per message.
func (r *Rank) localityTo(dest int) netmodel.Locality {
	if r.locTo == nil {
		lc := make([]uint8, r.w.cfg.N)
		for i := range lc {
			lc[i] = 0xFF
		}
		r.locTo = lc
	}
	if r.locTo[dest] == 0xFF {
		p := r.w.place
		r.locTo[dest] = uint8(netmodel.LocalityOf(p.SameNode(r.id, dest), p.SameNUMA(r.id, dest)))
	}
	return netmodel.Locality(r.locTo[dest])
}

// transferTo returns the wire time for n bytes from r to world rank dest.
func (r *Rank) transferTo(dest, n int) sim.Duration {
	return r.memo.TransferLoc(r.localityTo(dest), n)
}

// getOp fetches a zeroed rmaOp, reusing a recycled header when one is
// available. The freelist is per-rank: every op returns to its origin
// (ackDelivered runs there), so recycling needs no locking even with
// shards issuing in parallel.
func (r *Rank) getOp() *rmaOp {
	if n := len(r.opFree); n > 0 {
		o := r.opFree[n-1]
		r.opFree[n-1] = nil
		r.opFree = r.opFree[:n-1]
		return o
	}
	return &rmaOp{}
}

// putOp returns an op header to the issuing rank's freelist once nothing
// can reference it again. No-op under a fault plan (see opRecycle).
func (r *Rank) putOp(o *rmaOp) {
	if !r.w.opRecycle {
		return
	}
	*o = rmaOp{}
	r.opFree = append(r.opFree, o)
}
