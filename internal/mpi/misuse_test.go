package mpi

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

// These tests exercise failure modes: incorrect MPI usage must produce
// a diagnosable error (a panic with a meaningful message, or a
// DeadlockError naming the stuck call) rather than silent corruption or
// a hang without explanation.

// runExpectDeadlock runs main and asserts the world deadlocks with the
// given substring in a stuck-process reason.
func runExpectDeadlock(t *testing.T, cfg Config, substr string, main func(r *Rank)) {
	t.Helper()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(main)
	err = w.Run()
	de, ok := err.(*sim.DeadlockError)
	if !ok {
		t.Fatalf("expected deadlock, got %v", err)
	}
	if !strings.Contains(de.Error(), substr) {
		t.Fatalf("deadlock report %q does not mention %q", de.Error(), substr)
	}
}

func TestDeadlockReportNamesRecv(t *testing.T) {
	runExpectDeadlock(t, testConfig(2, 2), "MPI_Recv", func(r *Rank) {
		if r.Rank() == 0 {
			r.CommWorld().Recv(1, 5) // never sent
		}
	})
}

func TestDeadlockReportNamesWait(t *testing.T) {
	// Wait without any origin calling Complete.
	runExpectDeadlock(t, testConfig(2, 2), "MPI_Win_wait", func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		if r.Rank() == 1 {
			win.Post([]int{0}, AssertNone)
			win.Wait()
		}
		// Rank 0 never starts an access epoch.
	})
}

func TestDeadlockReportNamesBarrier(t *testing.T) {
	runExpectDeadlock(t, testConfig(2, 2), "MPI_Barrier", func(r *Rank) {
		if r.Rank() == 0 {
			r.CommWorld().Barrier() // rank 1 never arrives
		}
	})
}

func TestDeadlockReportNamesFlushWhenNoProgressPossible(t *testing.T) {
	// Flush of an accumulate to a target that exits without ever
	// re-entering MPI: no progress is possible, and the report says
	// what was being waited for.
	runExpectDeadlock(t, testConfig(2, 2), "MPI_Win_flush", func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.Accumulate(PutFloat64s([]float64{1}), 1, 0, Scalar(Float64), OpSum)
			win.Flush(1)
			win.UnlockAll()
		}
		// Rank 1 terminates immediately: its pending AMs are never
		// serviced.
	})
}

func TestMismatchedCollectivesDiagnosed(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic for mismatched collectives")
		}
		if !strings.Contains(fmt.Sprint(p), "collective mismatch") {
			t.Fatalf("unhelpful panic: %v", p)
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		if r.Rank() == 0 {
			c.Barrier()
		} else {
			c.Bcast(0, nil) // mismatched collective
		}
	})
}

func TestStartWithoutPostDeadlocks(t *testing.T) {
	runExpectDeadlock(t, testConfig(2, 2), "MPI_Win_start", func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		if r.Rank() == 0 {
			win.Start([]int{1}, AssertNone) // target never posts
		}
	})
}

func TestCompleteWithoutStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win, _ := r.WinAllocate(r.CommWorld(), 8, nil)
		if r.Rank() == 0 {
			win.Complete()
		}
	})
}

func TestWaitWithoutPostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win, _ := r.WinAllocate(r.CommWorld(), 8, nil)
		if r.Rank() == 0 {
			win.Wait()
		}
	})
}

func TestDoublePostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win, _ := r.WinAllocate(r.CommWorld(), 8, nil)
		if r.Rank() == 0 {
			win.Post([]int{1}, AssertNone)
			win.Post([]int{1}, AssertNone)
		}
	})
}

func TestNestedLockAllPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win, _ := r.WinAllocate(r.CommWorld(), 8, nil)
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			win.LockAll(AssertNone)
		}
	})
}

func TestUnlockAllWithoutLockAllPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win, _ := r.WinAllocate(r.CommWorld(), 8, nil)
		if r.Rank() == 0 {
			win.UnlockAll()
		}
	})
}

func TestPSCWOpOutsideGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(3, 3), func(r *Rank) {
		c := r.CommWorld()
		win, _ := r.WinAllocate(c, 8, nil)
		switch r.Rank() {
		case 0:
			win.Start([]int{1}, AssertNone)
			// Target 2 is not in the access group.
			win.Put(PutFloat64s([]float64{1}), 2, 0, Scalar(Float64))
			win.Complete()
		case 1:
			win.Post([]int{0}, AssertNone)
			win.Wait()
		}
	})
}

func TestNegativeWinSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		r.WinAllocate(r.CommWorld(), -1, nil)
	})
}

func TestAttachOnNonDynamicWindowPanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(fmt.Sprint(p), "Attach on a non-dynamic window") {
			t.Fatalf("unhelpful panic: %v", p)
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win, _ := r.WinAllocateRegion(r.CommWorld(), 8, nil)
		if r.Rank() == 0 {
			win.Attach(make([]byte, 8))
		}
	})
}

func TestDetachOfUnattachedBasePanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(fmt.Sprint(p), "Detach of unattached base") {
			t.Fatalf("unhelpful panic: %v", p)
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win := r.WinCreateDynamic(r.CommWorld(), nil)
		if r.Rank() == 0 {
			win.Detach(0x9999)
		}
	})
}

func TestDynamicAccessOutsideAttachedMemoryPanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(fmt.Sprint(p), "hits no attached memory") {
			t.Fatalf("unhelpful panic: %v", p)
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		c := r.CommWorld()
		win := r.WinCreateDynamic(c, nil)
		if r.Rank() == 1 {
			win.Attach(make([]byte, 64))
		}
		c.Barrier()
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			// No attachment lives at this address on rank 1.
			win.Put(PutFloat64s([]float64{1}), 1, 0x500000, Scalar(Float64))
			win.FlushAll()
			win.UnlockAll()
		}
		c.Barrier()
	})
}

func TestAttachMisuseErrorsReturn(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Errors = ErrorsReturn
	mustRun(t, cfg, func(r *Rank) {
		win, _ := r.WinAllocateRegion(r.CommWorld(), 8, nil)
		if r.Rank() == 0 {
			win.Attach(make([]byte, 8))
			err := r.Err()
			if err == nil {
				t.Error("no error recorded for Attach on non-dynamic window")
			} else if err.Class != ErrRMAAttach {
				t.Errorf("class = %v, want MPI_ERR_RMA_ATTACH", err.Class)
			}
		}
	})
}

func TestBadDatatypePanicsAtIssue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mustRun(t, testConfig(2, 2), func(r *Rank) {
		win, _ := r.WinAllocate(r.CommWorld(), 64, nil)
		if r.Rank() == 0 {
			win.LockAll(AssertNone)
			bad := Datatype{Basic: Float64, Count: 2, BlockLen: 3, Stride: 2}
			win.Put(make([]byte, 48), 1, 0, bad)
		}
	})
}
