package ga

import (
	"fmt"

	"repro/internal/sim"
)

// Multiply computes C = A*B over three equally sized square arrays
// using the owner-computes scheme of GA's classic matrix multiply: each
// rank walks panels of the contraction dimension, fetches the needed A
// and B panels with one-sided Gets, multiplies locally, and accumulates
// into its own C tile. All communication is passive-target RMA, so the
// routine runs unchanged over plain MPI or Casper.
//
// panel is the contraction block width; nsPerFlop charges simulated
// compute for the local dgemm (0 disables). Collective.
func Multiply(a, b, c *Array, panel int, nsPerFlop float64) error {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	cr, cc := c.Dims()
	if ar != ac || ar != br || br != bc || cr != cc || cr != ar {
		return fmt.Errorf("ga: Multiply needs equal square arrays (got %dx%d * %dx%d -> %dx%d)",
			ar, ac, br, bc, cr, cc)
	}
	if panel <= 0 || ar%panel != 0 {
		return fmt.Errorf("ga: panel %d must divide dimension %d", panel, ar)
	}
	n := ar
	env := c.env

	r0, r1, c0, c1 := c.Distribution()
	rows, cols := r1-r0, c1-c0
	acc := make([]float64, rows*cols)
	bufA := make([]float64, rows*panel)
	bufB := make([]float64, panel*cols)

	for k := 0; k < n; k += panel {
		a.Get(r0, r1, k, k+panel, bufA)
		b.Get(k, k+panel, c0, c1, bufB)
		for i := 0; i < rows; i++ {
			for kk := 0; kk < panel; kk++ {
				av := bufA[i*panel+kk]
				if av == 0 {
					continue
				}
				row := bufB[kk*cols : (kk+1)*cols]
				out := acc[i*cols : (i+1)*cols]
				for j := range row {
					out[j] += av * row[j]
				}
			}
		}
		if nsPerFlop > 0 {
			env.Compute(sim.Duration(2 * float64(rows*cols*panel) * nsPerFlop))
		}
	}
	c.SetLocal(acc)
	c.Sync()
	return nil
}

// MustMultiply is Multiply that panics on error.
func MustMultiply(a, b, c *Array, panel int, nsPerFlop float64) {
	if err := Multiply(a, b, c, panel, nsPerFlop); err != nil {
		panic(err)
	}
}

// FillPattern sets every element the caller owns to fn(i, j) of its
// global coordinates (collective with Sync).
func (a *Array) FillPattern(fn func(i, j int) float64) {
	r0, r1, c0, c1 := a.Distribution()
	vals := make([]float64, 0, (r1-r0)*(c1-c0))
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			vals = append(vals, fn(i, j))
		}
	}
	a.SetLocal(vals)
	a.Sync()
}
