// Package ga is a Global-Arrays-like toolkit over MPI RMA: 2-D
// block-distributed dense arrays of float64 with one-sided Get/Put/Acc
// of rectangular patches, plus an atomic task counter (the NGA_Read_inc
// pattern NWChem's tensor contraction engine uses for dynamic load
// balancing).
//
// It is written purely against mpi.Env and mpi.Window, so the same
// application code runs over plain MPI or over Casper — exactly how
// NWChem runs over Global Arrays over ARMCI-MPI over (optionally)
// Casper in the paper's Section IV-D.
package ga

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Array is one rank's handle on a block-distributed rows x cols float64
// array.
type Array struct {
	env  mpi.Env
	name string
	win  mpi.Window
	loc  []byte // local tile memory

	rows, cols int
	pr, pc     int // process grid
	tr, tc     int // nominal tile dims (last row/col of grid may be smaller)
}

// procGrid factors n into pr x pc with pr <= pc and pr maximal.
func procGrid(n int) (pr, pc int) {
	pr = int(math.Sqrt(float64(n)))
	for pr > 1 && n%pr != 0 {
		pr--
	}
	if pr < 1 {
		pr = 1
	}
	return pr, n / pr
}

// Create collectively builds a rows x cols array distributed over the
// whole communicator of env in a 2-D block layout. All ranks must call
// it with identical arguments.
func Create(env mpi.Env, name string, rows, cols int) (*Array, error) {
	n := env.Size()
	pr, pc := procGrid(n)
	if rows < pr || cols < pc {
		return nil, fmt.Errorf("ga: array %q (%dx%d) smaller than process grid %dx%d",
			name, rows, cols, pr, pc)
	}
	a := &Array{
		env: env, name: name,
		rows: rows, cols: cols,
		pr: pr, pc: pc,
		tr: (rows + pr - 1) / pr,
		tc: (cols + pc - 1) / pc,
	}
	mr0, mr1, mc0, mc1 := a.tileBounds(env.Rank())
	local := (mr1 - mr0) * (mc1 - mc0) * 8
	win, buf := env.WinAllocate(env.CommWorld(), local, mpi.Info{
		"epochs_used": "lockall", // GA uses passive target exclusively
	})
	a.win = win
	a.loc = buf
	win.LockAll(mpi.AssertNone)
	env.CommWorld().Barrier()
	return a, nil
}

// MustCreate is Create that panics on error.
func MustCreate(env mpi.Env, name string, rows, cols int) *Array {
	a, err := Create(env, name, rows, cols)
	if err != nil {
		panic(err)
	}
	return a
}

// Name returns the array's name.
func (a *Array) Name() string { return a.name }

// Dims returns the global dimensions.
func (a *Array) Dims() (rows, cols int) { return a.rows, a.cols }

// Grid returns the process-grid dimensions.
func (a *Array) Grid() (pr, pc int) { return a.pr, a.pc }

// ownerOf returns the rank owning global element (i, j).
func (a *Array) ownerOf(i, j int) int {
	return (i/a.tr)*a.pc + (j / a.tc)
}

// tileBounds returns rank's tile as [r0, r1) x [c0, c1) in global
// coordinates.
func (a *Array) tileBounds(rank int) (r0, r1, c0, c1 int) {
	gi, gj := rank/a.pc, rank%a.pc
	r0 = gi * a.tr
	r1 = r0 + a.tr
	if r1 > a.rows {
		r1 = a.rows
	}
	c0 = gj * a.tc
	c1 = c0 + a.tc
	if c1 > a.cols {
		c1 = a.cols
	}
	return r0, r1, c0, c1
}

// Distribution returns the caller's local tile bounds [r0,r1) x [c0,c1).
func (a *Array) Distribution() (r0, r1, c0, c1 int) {
	return a.tileBounds(a.env.Rank())
}

// Local returns the caller's local tile data (row-major).
func (a *Array) Local() []float64 { return mpi.GetFloat64s(a.loc) }

// SetLocal overwrites the caller's local tile data.
func (a *Array) SetLocal(vals []float64) {
	copy(a.loc, mpi.PutFloat64s(vals))
}

func (a *Array) checkPatch(r0, r1, c0, c1 int, buf []float64) {
	if r0 < 0 || c0 < 0 || r1 > a.rows || c1 > a.cols || r0 >= r1 || c0 >= c1 {
		panic(fmt.Sprintf("ga: bad patch [%d,%d)x[%d,%d) of %q (%dx%d)",
			r0, r1, c0, c1, a.name, a.rows, a.cols))
	}
	if need := (r1 - r0) * (c1 - c0); len(buf) < need {
		panic(fmt.Sprintf("ga: patch buffer %d < %d", len(buf), need))
	}
}

// visitOwners calls fn for each owner tile overlapping the patch with
// the overlap rectangle in global coordinates.
func (a *Array) visitOwners(r0, r1, c0, c1 int, fn func(rank, or0, or1, oc0, oc1 int)) {
	for gi := r0 / a.tr; gi*a.tr < r1; gi++ {
		for gj := c0 / a.tc; gj*a.tc < c1; gj++ {
			rank := gi*a.pc + gj
			tr0, tr1, tc0, tc1 := a.tileBounds(rank)
			or0, or1 := max(r0, tr0), min(r1, tr1)
			oc0, oc1 := max(c0, tc0), min(c1, tc1)
			if or0 < or1 && oc0 < oc1 {
				fn(rank, or0, or1, oc0, oc1)
			}
		}
	}
}

// pieceType builds the target-side datatype and displacement for an
// overlap rectangle within an owner's tile.
func (a *Array) pieceType(rank, or0, or1, oc0, oc1 int) (disp int, dt mpi.Datatype) {
	tr0, _, tc0, tc1 := a.tileBounds(rank)
	tileCols := tc1 - tc0
	rows := or1 - or0
	cols := oc1 - oc0
	disp = ((or0-tr0)*tileCols + (oc0 - tc0)) * 8
	if cols == tileCols {
		// Full-width rows are contiguous.
		return disp, mpi.TypeOf(mpi.Float64, rows*cols)
	}
	return disp, mpi.Vector(mpi.Float64, rows, cols, tileCols)
}

// packPatch extracts the overlap sub-rectangle from the caller's patch
// buffer (row-major over the full patch).
func packPatch(buf []float64, r0, c0, pc int, or0, or1, oc0, oc1 int, scale float64) []float64 {
	out := make([]float64, 0, (or1-or0)*(oc1-oc0))
	for i := or0; i < or1; i++ {
		row := (i-r0)*pc + (oc0 - c0)
		for j := 0; j < oc1-oc0; j++ {
			out = append(out, buf[row+j]*scale)
		}
	}
	return out
}

// Put writes buf (row-major, (r1-r0)x(c1-c0)) into the global patch. It
// returns after the data is remotely complete (NGA_Put followed by
// flush, the blocking GA semantic).
func (a *Array) Put(r0, r1, c0, c1 int, buf []float64) {
	a.checkPatch(r0, r1, c0, c1, buf)
	a.rmw(r0, r1, c0, c1, buf, 1, mpi.OpReplace)
}

// Acc atomically accumulates alpha*buf into the global patch
// (NGA_Acc). Blocking, like Put.
func (a *Array) Acc(r0, r1, c0, c1 int, buf []float64, alpha float64) {
	a.checkPatch(r0, r1, c0, c1, buf)
	a.rmw(r0, r1, c0, c1, buf, alpha, mpi.OpSum)
}

func (a *Array) rmw(r0, r1, c0, c1 int, buf []float64, alpha float64, op mpi.Op) {
	pcols := c1 - c0
	var touched []int
	a.visitOwners(r0, r1, c0, c1, func(rank, or0, or1, oc0, oc1 int) {
		disp, dt := a.pieceType(rank, or0, or1, oc0, oc1)
		data := packPatch(buf, r0, c0, pcols, or0, or1, oc0, oc1, alpha)
		if op == mpi.OpReplace {
			a.win.Put(mpi.PutFloat64s(data), rank, disp, dt)
		} else {
			a.win.Accumulate(mpi.PutFloat64s(data), rank, disp, dt, op)
		}
		touched = append(touched, rank)
	})
	for _, rank := range touched {
		a.win.Flush(rank)
	}
}

// Get reads the global patch into buf (row-major). Blocking (NGA_Get).
func (a *Array) Get(r0, r1, c0, c1 int, buf []float64) {
	a.checkPatch(r0, r1, c0, c1, buf)
	pcols := c1 - c0
	type pending struct {
		raw                []byte
		or0, or1, oc0, oc1 int
	}
	var waits []pending
	var touched []int
	a.visitOwners(r0, r1, c0, c1, func(rank, or0, or1, oc0, oc1 int) {
		disp, dt := a.pieceType(rank, or0, or1, oc0, oc1)
		raw := make([]byte, dt.Size())
		a.win.Get(raw, rank, disp, dt)
		waits = append(waits, pending{raw, or0, or1, oc0, oc1})
		touched = append(touched, rank)
	})
	for _, rank := range touched {
		a.win.Flush(rank)
	}
	for _, p := range waits {
		vals := mpi.GetFloat64s(p.raw)
		k := 0
		for i := p.or0; i < p.or1; i++ {
			row := (i-r0)*pcols + (p.oc0 - c0)
			for j := 0; j < p.oc1-p.oc0; j++ {
				buf[row+j] = vals[k]
				k++
			}
		}
	}
}

// Fill sets every element the caller owns to v (collective with Sync).
func (a *Array) Fill(v float64) {
	r0, r1, c0, c1 := a.Distribution()
	n := (r1 - r0) * (c1 - c0)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = v
	}
	a.SetLocal(vals)
	a.Sync()
}

// Sync completes all outstanding operations and synchronizes all ranks
// (GA_Sync).
func (a *Array) Sync() {
	a.win.FlushAll()
	a.env.CommWorld().Barrier()
}

// Destroy releases the array (collective).
func (a *Array) Destroy() {
	a.win.UnlockAll()
	a.win.Free()
}

// Counter is a global atomic task counter (NGA_Read_inc): the dynamic
// load-balancing primitive of NWChem's tensor contraction engine.
type Counter struct {
	env  mpi.Env
	win  mpi.Window
	home int // rank holding the counter
}

// NewCounter collectively creates a counter starting at zero, hosted on
// rank 0.
func NewCounter(env mpi.Env) *Counter {
	size := 0
	if env.Rank() == 0 {
		size = 8
	}
	win, buf := env.WinAllocate(env.CommWorld(), size, mpi.Info{
		"epochs_used": "lockall",
	})
	if env.Rank() == 0 {
		copy(buf, mpi.PutInt64(0))
	}
	win.LockAll(mpi.AssertNone)
	env.CommWorld().Barrier()
	return &Counter{env: env, win: win, home: 0}
}

// Next atomically fetches and increments the counter, returning the
// fetched value. Safe to call concurrently from all ranks.
func (c *Counter) Next() int64 {
	res := make([]byte, 8)
	c.win.FetchAndOp(mpi.PutInt64(1), res, c.home, 0, mpi.Int64, mpi.OpSum)
	c.win.Flush(c.home)
	return mpi.GetInt64(res)
}

// Destroy releases the counter (collective).
func (c *Counter) Destroy() {
	c.win.UnlockAll()
	c.win.Free()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
