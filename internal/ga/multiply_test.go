package ga

import (
	"math"
	"testing"

	"repro/internal/mpi"
)

// serialMul is the reference n x n matrix multiply.
func serialMul(n int, a, b func(i, j int) float64) []float64 {
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a(i, k) * b(k, j)
			}
			out[i*n+j] = s
		}
	}
	return out
}

func checkMultiply(t *testing.T, runner func(t *testing.T, n, ppn, ghosts int, main func(env mpi.Env)) *mpi.World,
	ranks, ghosts, n, panel int) {
	t.Helper()
	fa := func(i, j int) float64 { return float64(i + 2*j + 1) }
	fb := func(i, j int) float64 { return float64(i - j) }
	want := serialMul(n, fa, fb)
	var got []float64
	main := func(env mpi.Env) {
		a := MustCreate(env, "A", n, n)
		b := MustCreate(env, "B", n, n)
		c := MustCreate(env, "C", n, n)
		a.FillPattern(fa)
		b.FillPattern(fb)
		c.Fill(0)
		MustMultiply(a, b, c, panel, 0.25)
		if env.Rank() == 0 {
			got = make([]float64, n*n)
			c.Get(0, n, 0, n, got)
		}
		c.Sync()
		c.Destroy()
		b.Destroy()
		a.Destroy()
	}
	if ghosts == 0 {
		runner(t, ranks, ranks, 0, main)
	} else {
		runner(t, ranks, ranks, ghosts, main)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("C[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func plainRunner(t *testing.T, n, ppn, _ int, main func(env mpi.Env)) *mpi.World {
	return runPlain(t, n, ppn, main)
}

func casperRunner(t *testing.T, n, _, ghosts int, main func(env mpi.Env)) *mpi.World {
	// Single node: n user ranks plus the ghosts.
	return runCasper(t, n+ghosts, n+ghosts, ghosts, main)
}

func TestMultiplyMatchesSerial(t *testing.T) {
	checkMultiply(t, plainRunner, 4, 0, 8, 4)
	checkMultiply(t, plainRunner, 6, 0, 12, 3)
}

func TestMultiplyOverCasper(t *testing.T) {
	checkMultiply(t, casperRunner, 4, 2, 8, 2)
}

func TestMultiplyRejectsBadShapes(t *testing.T) {
	runPlain(t, 4, 4, func(env mpi.Env) {
		a := MustCreate(env, "A", 8, 8)
		b := MustCreate(env, "B", 8, 8)
		c := MustCreate(env, "C", 8, 8)
		if err := Multiply(a, b, c, 3, 0); err == nil { // 3 does not divide 8
			t.Error("bad panel accepted")
		}
		d := MustCreate(env, "D", 8, 16)
		if err := Multiply(a, b, d, 4, 0); err == nil {
			t.Error("mismatched dims accepted")
		}
		d.Destroy()
		c.Destroy()
		b.Destroy()
		a.Destroy()
	})
}

func TestFillPattern(t *testing.T) {
	runPlain(t, 4, 4, func(env mpi.Env) {
		a := MustCreate(env, "P", 6, 6)
		a.FillPattern(func(i, j int) float64 { return float64(10*i + j) })
		if env.Rank() == 0 {
			got := make([]float64, 36)
			a.Get(0, 6, 0, 6, got)
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					if got[i*6+j] != float64(10*i+j) {
						t.Fatalf("(%d,%d) = %v", i, j, got[i*6+j])
					}
				}
			}
		}
		a.Sync()
		a.Destroy()
	})
}
