package ga

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
)

func gaConfig(n, ppn int) mpi.Config {
	nodes := (n + ppn - 1) / ppn
	return mpi.Config{
		Machine:  cluster.Machine{Nodes: nodes, CoresPerNode: 24, NUMAPerNode: 2},
		N:        n,
		PPN:      ppn,
		Net:      netmodel.CrayXC30(),
		Seed:     3,
		Validate: true,
	}
}

// runPlain runs main over plain MPI.
func runPlain(t *testing.T, n, ppn int, main func(env mpi.Env)) *mpi.World {
	t.Helper()
	w, err := mpi.Run(gaConfig(n, ppn), func(r *mpi.Rank) { main(r) })
	if err != nil {
		t.Fatal(err)
	}
	if v := w.Validator(); v != nil && !v.Ok() {
		t.Fatalf("validator: %v", v.Violations())
	}
	return w
}

// runCasper runs main over Casper with g ghosts per node.
func runCasper(t *testing.T, n, ppn, g int, main func(env mpi.Env)) *mpi.World {
	t.Helper()
	w, err := mpi.Run(gaConfig(n, ppn), func(r *mpi.Rank) {
		p, ghost := core.Init(r, core.Config{NumGhosts: g})
		if ghost {
			return
		}
		main(p)
		p.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := w.Validator(); v != nil && !v.Ok() {
		t.Fatalf("validator: %v", v.Violations())
	}
	return w
}

func TestProcGrid(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 12: {3, 4},
		16: {4, 4}, 20: {4, 5}, 7: {1, 7},
	}
	for n, want := range cases {
		pr, pc := procGrid(n)
		if pr != want[0] || pc != want[1] {
			t.Errorf("procGrid(%d) = %dx%d, want %dx%d", n, pr, pc, want[0], want[1])
		}
		if pr*pc != n {
			t.Errorf("procGrid(%d) does not cover all ranks", n)
		}
	}
}

func TestTileBoundsPartition(t *testing.T) {
	runPlain(t, 6, 6, func(env mpi.Env) {
		a := MustCreate(env, "t", 10, 9)
		if env.Rank() != 0 {
			a.Sync()
			a.Destroy()
			return
		}
		covered := map[[2]int]int{}
		for r := 0; r < env.Size(); r++ {
			r0, r1, c0, c1 := a.tileBounds(r)
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					covered[[2]int{i, j}]++
					if a.ownerOf(i, j) != r {
						t.Errorf("ownerOf(%d,%d) = %d, want %d", i, j, a.ownerOf(i, j), r)
					}
				}
			}
		}
		if len(covered) != 90 {
			t.Errorf("covered %d elements, want 90", len(covered))
		}
		for k, n := range covered {
			if n != 1 {
				t.Errorf("element %v covered %d times", k, n)
			}
		}
		a.Sync()
		a.Destroy()
	})
}

func TestPutGetRoundTripAcrossTiles(t *testing.T) {
	// A patch spanning all four tiles of a 2x2 grid.
	runPlain(t, 4, 4, func(env mpi.Env) {
		a := MustCreate(env, "x", 8, 8)
		a.Fill(0)
		if env.Rank() == 0 {
			patch := make([]float64, 6*6)
			for i := range patch {
				patch[i] = float64(i + 1)
			}
			a.Put(1, 7, 1, 7, patch)
			got := make([]float64, 6*6)
			a.Get(1, 7, 1, 7, got)
			for i := range patch {
				if got[i] != patch[i] {
					t.Errorf("elem %d: got %v want %v", i, got[i], patch[i])
				}
			}
		}
		a.Sync()
		a.Destroy()
	})
}

func TestGetReflectsRemoteLocalData(t *testing.T) {
	runPlain(t, 4, 4, func(env mpi.Env) {
		a := MustCreate(env, "x", 4, 4)
		r0, r1, c0, c1 := a.Distribution()
		vals := make([]float64, (r1-r0)*(c1-c0))
		for i := range vals {
			vals[i] = float64(env.Rank()*100 + i)
		}
		a.SetLocal(vals)
		a.Sync()
		if env.Rank() == 1 {
			// Read rank 3's tile (bottom-right 2x2 of a 4x4 on 2x2 grid).
			got := make([]float64, 4)
			a.Get(2, 4, 2, 4, got)
			want := []float64{300, 301, 302, 303}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("got %v", got)
				}
			}
		}
		a.Sync()
		a.Destroy()
	})
}

func TestAccSumsAcrossRanks(t *testing.T) {
	runPlain(t, 4, 4, func(env mpi.Env) {
		a := MustCreate(env, "acc", 4, 4)
		a.Fill(1)
		patch := []float64{1, 1, 1, 1}
		// Everyone accumulates 2*1 into the same cross-tile patch.
		a.Acc(1, 3, 1, 3, patch, 2)
		a.Sync()
		if env.Rank() == 0 {
			got := make([]float64, 4)
			a.Get(1, 3, 1, 3, got)
			for i, v := range got {
				if v != 1+2*4 {
					t.Fatalf("elem %d = %v, want 9", i, v)
				}
			}
		}
		a.Sync()
		a.Destroy()
	})
}

func TestCreateRejectsTinyArrays(t *testing.T) {
	runPlain(t, 4, 4, func(env mpi.Env) {
		if _, err := Create(env, "tiny", 1, 1); err == nil {
			t.Error("no error for array smaller than grid")
		}
		// All ranks got the error before any collective call, so the
		// world terminates cleanly.
	})
}

func TestAccessorsAndLocal(t *testing.T) {
	runPlain(t, 4, 4, func(env mpi.Env) {
		a := MustCreate(env, "meta", 6, 8)
		if a.Name() != "meta" {
			t.Error("name")
		}
		if r, c := a.Dims(); r != 6 || c != 8 {
			t.Error("dims")
		}
		if pr, pc := a.Grid(); pr != 2 || pc != 2 {
			t.Errorf("grid %dx%d", pr, pc)
		}
		r0, r1, c0, c1 := a.Distribution()
		if (r1-r0)*(c1-c0) != len(a.Local()) {
			t.Error("local size mismatch")
		}
		a.Sync()
		a.Destroy()
	})
}

func TestCounterProducesUniqueDenseTasks(t *testing.T) {
	var all []int64
	runPlain(t, 4, 4, func(env mpi.Env) {
		c := NewCounter(env)
		for i := 0; i < 5; i++ {
			all = append(all, c.Next())
		}
		env.CommWorld().Barrier()
		c.Destroy()
	})
	if len(all) != 20 {
		t.Fatalf("%d tasks", len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("tasks not dense/unique: %v", all)
		}
	}
}

func TestGAOverCasperMatchesPlain(t *testing.T) {
	// The same GA program must produce identical data over Casper.
	run := func(casper bool) []float64 {
		var got []float64
		main := func(env mpi.Env) {
			a := MustCreate(env, "w", 8, 8)
			a.Fill(0)
			patch := []float64{1, 2, 3, 4}
			a.Acc(3, 5, 3, 5, patch, float64(env.Rank()+1))
			a.Sync()
			if env.Rank() == 0 {
				got = make([]float64, 4)
				a.Get(3, 5, 3, 5, got)
			}
			a.Sync()
			a.Destroy()
		}
		if casper {
			runCasper(t, 6, 6, 2, main) // 4 users
		} else {
			runPlain(t, 4, 4, main)
		}
		return got
	}
	plain := run(false)
	casper := run(true)
	// Both have 4 user ranks: sum of alphas = 1+2+3+4 = 10.
	for i := range plain {
		want := float64(10 * (i + 1))
		if plain[i] != want || casper[i] != want {
			t.Fatalf("plain %v casper %v, want %v at %d", plain, casper, want, i)
		}
	}
}

func TestCounterOverCasper(t *testing.T) {
	var all []int64
	runCasper(t, 6, 6, 2, func(env mpi.Env) {
		c := NewCounter(env)
		for i := 0; i < 4; i++ {
			all = append(all, c.Next())
		}
		env.CommWorld().Barrier()
		c.Destroy()
	})
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) != 16 {
		t.Fatalf("%d tasks", len(all))
	}
	for i, v := range all {
		if v != int64(i) {
			t.Fatalf("tasks not dense: %v", all)
		}
	}
}

// Property: packPatch extracts exactly the overlap rectangle, scaled.
func TestPackPatchProperty(t *testing.T) {
	f := func(rows, cols uint8, alpha int8) bool {
		pr := int(rows%6) + 2
		pc := int(cols%6) + 2
		buf := make([]float64, pr*pc)
		for i := range buf {
			buf[i] = float64(i)
		}
		// Overlap: inner rectangle.
		or0, or1 := 1, pr
		oc0, oc1 := 1, pc
		out := packPatch(buf, 0, 0, pc, or0, or1, oc0, oc1, float64(alpha))
		if len(out) != (or1-or0)*(oc1-oc0) {
			return false
		}
		k := 0
		for i := or0; i < or1; i++ {
			for j := oc0; j < oc1; j++ {
				if out[k] != float64(i*pc+j)*float64(alpha) {
					return false
				}
				k++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBadPatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	runPlain(t, 4, 4, func(env mpi.Env) {
		a := MustCreate(env, "bad", 4, 4)
		if env.Rank() == 0 {
			a.Get(0, 9, 0, 1, make([]float64, 100))
		}
		a.Sync()
	})
}
