// Package stencil is a 2-D Jacobi heat-diffusion solver whose halo
// exchange uses MPI RMA active-target (fence) epochs — the classic
// neighborhood communication pattern the paper's Section III-C
// translations must support. The grid is row-block distributed; each
// iteration every rank PUTs its boundary rows into its neighbors' halo
// windows between two fences, then relaxes its block.
//
// The solver computes real values (verifiable against a serial
// reference) while charging the simulated compute cost of the stencil
// sweep, so it exercises both correctness and performance of the
// underlying runtime — over plain MPI or Casper alike.
package stencil

import (
	"fmt"
	"math"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Params configures a solve.
type Params struct {
	N          int     // global grid is N x N (including fixed boundary)
	Iterations int     // Jacobi sweeps
	NsPerCell  float64 // simulated compute per cell per sweep; 0 selects 2 ns
	Asserts    bool    // pass the fence asserts (NOPRECEDE/NOSUCCEED) where legal
}

func (p Params) withDefaults() Params {
	if p.NsPerCell == 0 {
		p.NsPerCell = 2
	}
	return p
}

// Validate checks the parameters against the communicator size.
func (p Params) Validate(ranks int) error {
	if p.N < 4 {
		return fmt.Errorf("stencil: N = %d too small", p.N)
	}
	if p.Iterations < 1 {
		return fmt.Errorf("stencil: Iterations = %d", p.Iterations)
	}
	if (p.N-2)%ranks != 0 {
		return fmt.Errorf("stencil: interior rows %d not divisible by %d ranks", p.N-2, ranks)
	}
	return nil
}

// Result is one rank's view of the solve.
type Result struct {
	Elapsed  sim.Duration
	Residual float64   // global max |Δ| of the final sweep
	Local    []float64 // this rank's interior rows (rowsLocal x N), for verification
	Rows     int       // interior rows owned by this rank
}

// Run executes the solve on the calling rank. Collective; all ranks
// pass identical Params. Boundary condition: top edge fixed at 1.0, the
// other edges at 0.0; interior starts at 0.
func Run(env mpi.Env, p Params) Result {
	p = p.withDefaults()
	comm := env.CommWorld()
	size := comm.Size()
	if err := p.Validate(size); err != nil {
		panic(err)
	}
	me := comm.Rank()
	n := p.N
	rows := (n - 2) / size // interior rows per rank

	// Local block with two halo rows: cur[0] and cur[rows+1].
	cur := make([]float64, (rows+2)*n)
	next := make([]float64, (rows+2)*n)
	if me == 0 {
		for j := 0; j < n; j++ {
			cur[j] = 1.0 // global top edge in rank 0's upper halo
			next[j] = 1.0
		}
	}

	// Halo window: row 0 receives from the upper neighbor, row 1 from
	// the lower one.
	win, halo := env.WinAllocate(comm, 2*n*8, mpi.Info{"epochs_used": "fence"})
	defer win.Free()

	openAssert, closeAssert := mpi.AssertNone, mpi.AssertNone
	if p.Asserts {
		openAssert = mpi.ModeNoPrecede
	}

	comm.Barrier()
	start := env.Now()
	residual := 0.0
	for iter := 0; iter < p.Iterations; iter++ {
		// Exchange: put boundary rows into neighbor halo windows.
		win.Fence(openAssert)
		if me > 0 {
			win.Put(mpi.PutFloat64s(cur[1*n:2*n]), me-1, 1*n*8, mpi.TypeOf(mpi.Float64, n))
		}
		if me < size-1 {
			win.Put(mpi.PutFloat64s(cur[rows*n:(rows+1)*n]), me+1, 0, mpi.TypeOf(mpi.Float64, n))
		}
		win.Fence(closeAssert)

		// Import halos received this round.
		hv := mpi.GetFloat64s(halo)
		if me > 0 {
			copy(cur[0:n], hv[0:n])
		}
		if me < size-1 {
			copy(cur[(rows+1)*n:(rows+2)*n], hv[n:2*n])
		}

		// Relax the interior; charge the simulated sweep cost.
		maxDelta := 0.0
		for i := 1; i <= rows; i++ {
			for j := 1; j < n-1; j++ {
				v := 0.25 * (cur[(i-1)*n+j] + cur[(i+1)*n+j] + cur[i*n+j-1] + cur[i*n+j+1])
				next[i*n+j] = v
				if d := math.Abs(v - cur[i*n+j]); d > maxDelta {
					maxDelta = d
				}
			}
		}
		env.Compute(sim.Duration(float64(rows*n) * p.NsPerCell))
		// Swap, preserving halo rows in cur.
		for i := 1; i <= rows; i++ {
			copy(cur[i*n:(i+1)*n], next[i*n:(i+1)*n])
		}
		residual = maxDelta
	}
	// Global residual.
	residual = comm.AllreduceFloat64([]float64{residual}, mpi.OpMax)[0]
	elapsed := env.Now().Sub(start)

	out := Result{Elapsed: elapsed, Residual: residual, Rows: rows}
	out.Local = make([]float64, rows*n)
	copy(out.Local, cur[n:(rows+1)*n])
	return out
}

// Serial computes the same solve on one grid, for verification.
func Serial(p Params) []float64 {
	p = p.withDefaults()
	n := p.N
	cur := make([]float64, n*n)
	next := make([]float64, n*n)
	for j := 0; j < n; j++ {
		cur[j] = 1.0
		next[j] = 1.0
	}
	for iter := 0; iter < p.Iterations; iter++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				next[i*n+j] = 0.25 * (cur[(i-1)*n+j] + cur[(i+1)*n+j] +
					cur[i*n+j-1] + cur[i*n+j+1])
			}
		}
		cur, next = next, cur
	}
	return cur
}
