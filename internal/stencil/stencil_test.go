package stencil

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

func stencilConfig(n, ppn int) mpi.Config {
	nodes := (n + ppn - 1) / ppn
	return mpi.Config{
		Machine:  cluster.Machine{Nodes: nodes, CoresPerNode: 24, NUMAPerNode: 2},
		N:        n,
		PPN:      ppn,
		Net:      netmodel.CrayXC30(),
		Seed:     9,
		Validate: true,
	}
}

// gather runs the distributed solve and assembles the global interior.
func gather(t *testing.T, ranks int, ghosts int, p Params) ([]float64, float64) {
	t.Helper()
	interior := make([][]float64, ranks)
	var residual float64
	body := func(env mpi.Env) {
		res := Run(env, p)
		interior[env.Rank()] = res.Local
		residual = res.Residual
	}
	var w *mpi.World
	var err error
	if ghosts == 0 {
		w, err = mpi.Run(stencilConfig(ranks, ranks), func(r *mpi.Rank) { body(r) })
	} else {
		ppn := ranks/2 + ghosts // two nodes
		w, err = mpi.Run(stencilConfig(2*ppn, ppn), func(r *mpi.Rank) {
			cp, ghost := core.Init(r, core.Config{NumGhosts: ghosts})
			if ghost {
				return
			}
			body(cp)
			cp.Finalize()
		})
	}
	if err != nil {
		t.Fatal(err)
	}
	if v := w.Validator(); v != nil && !v.Ok() {
		t.Fatalf("validator: %v", v.Violations())
	}
	var all []float64
	for _, part := range interior {
		all = append(all, part...)
	}
	return all, residual
}

// serialInterior extracts the interior rows of the serial solution.
func serialInterior(p Params) []float64 {
	full := Serial(p)
	return full[p.N : (p.N-1)*p.N]
}

func TestMatchesSerialReference(t *testing.T) {
	p := Params{N: 18, Iterations: 12}
	want := serialInterior(p)
	for _, ranks := range []int{2, 4, 8} {
		got, _ := gather(t, ranks, 0, p)
		if len(got) != len(want) {
			t.Fatalf("%d ranks: %d cells, want %d", ranks, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("%d ranks: cell %d = %v, want %v", ranks, i, got[i], want[i])
			}
		}
	}
}

func TestMatchesSerialOverCasper(t *testing.T) {
	p := Params{N: 18, Iterations: 10}
	want := serialInterior(p)
	got, _ := gather(t, 4, 2, p)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("cell %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAssertsDoNotChangeResults(t *testing.T) {
	base := Params{N: 10, Iterations: 6}
	withAsserts := base
	withAsserts.Asserts = true
	a, ra := gather(t, 4, 0, base)
	b, rb := gather(t, 4, 0, withAsserts)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("asserts changed cell %d: %v vs %v", i, a[i], b[i])
		}
	}
	if ra != rb {
		t.Fatalf("residuals differ: %v vs %v", ra, rb)
	}
}

func TestResidualDecreases(t *testing.T) {
	short := Params{N: 10, Iterations: 2}
	long := Params{N: 10, Iterations: 40}
	_, rShort := gather(t, 2, 0, short)
	_, rLong := gather(t, 2, 0, long)
	if rLong >= rShort {
		t.Fatalf("residual did not decrease: %v -> %v", rShort, rLong)
	}
}

func TestHeatFlowsDownward(t *testing.T) {
	p := Params{N: 10, Iterations: 50}
	got, _ := gather(t, 2, 0, p)
	n := p.N
	// Column 4: temperature must decrease monotonically away from the
	// hot top edge.
	prev := 1.0
	for i := 0; i < n-2; i++ {
		v := got[i*n+4]
		if v > prev+1e-12 {
			t.Fatalf("temperature rose away from the hot edge at row %d: %v > %v", i, v, prev)
		}
		prev = v
	}
	if got[4] <= 0 {
		t.Fatal("no heat diffused into the interior")
	}
}

// crashRun runs the stencil over Casper with g ghosts per node on two
// nodes, optionally crashing a ghost mid-run, and returns the assembled
// interior plus recovery counters.
func crashRun(t *testing.T, users, g int, p Params, plan *fault.Plan) ([]float64, mpi.WorldSummary, int64) {
	t.Helper()
	ppn := users/2 + g
	cfg := stencilConfig(2*ppn, ppn)
	cfg.Validate = false // the validator models a fault-free world
	cfg.Fault = plan
	interior := make([][]float64, users)
	var degraded int64
	w, err := mpi.Run(cfg, func(r *mpi.Rank) {
		cp, ghost := core.Init(r, core.Config{NumGhosts: g})
		if ghost {
			return
		}
		res := Run(cp, p)
		interior[cp.Rank()] = res.Local
		cp.Finalize()
		degraded += cp.Stats().Degraded
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for _, part := range interior {
		all = append(all, part...)
	}
	return all, w.Summary(), degraded
}

// TestGhostCrashRecoversExactly kills a ghost mid-stencil and checks the
// computed grid is bit-identical to the fault-free run: with surviving
// ghosts on the node the bound targets fail over to them, and with g=1
// the node degrades to Original-mode target-side progress.
func TestGhostCrashRecoversExactly(t *testing.T) {
	p := Params{N: 18, Iterations: 30}
	const users = 4
	for _, g := range []int{1, 2} {
		ppn := users/2 + g
		n := 2 * ppn
		base, baseSum, _ := crashRun(t, users, g, p, nil)
		ghosts, err := core.GhostRanks(cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2}, n, ppn, g)
		if err != nil {
			t.Fatal(err)
		}
		// Two victims per config: the last ghost of node 1 (an ordinary
		// ghost — the sequencer, the lowest ghost rank, lives on node 0)
		// and the sequencer itself, whose death additionally forces the
		// next-lowest surviving ghost to take over command ordering.
		for _, v := range []struct {
			name   string
			victim int
		}{
			{"ordinary", ghosts[1][len(ghosts[1])-1]},
			{"sequencer", ghosts[0][0]},
		} {
			plan := &fault.Plan{Seed: 9, Crashes: []fault.Crash{
				{Rank: v.victim, At: sim.Time(0.4 * float64(baseSum.EndTime))},
			}}
			got, sum, degraded := crashRun(t, users, g, p, plan)
			if len(got) != len(base) {
				t.Fatalf("g=%d %s: %d cells, want %d", g, v.name, len(got), len(base))
			}
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("g=%d %s: cell %d = %v, want %v (not bit-identical after crash)",
						g, v.name, i, got[i], base[i])
				}
			}
			if sum.RanksFailed != 1 {
				t.Fatalf("g=%d %s: RanksFailed = %d, want 1", g, v.name, sum.RanksFailed)
			}
			if sum.Reroutes == 0 {
				t.Fatalf("g=%d %s: crash recovered without any reroutes", g, v.name)
			}
			if v.name == "sequencer" && sum.Successions == 0 {
				t.Fatalf("g=%d: sequencer killed but no ghost performed a succession", g)
			}
			if g == 1 && degraded == 0 {
				t.Fatalf("g=1 %s: node lost its only ghost but never degraded to target-side progress", v.name)
			}
			if g > 1 && degraded != 0 {
				t.Fatalf("g=%d %s: degraded %d ops despite surviving ghosts", g, v.name, degraded)
			}
		}
	}
}

func TestValidateParams(t *testing.T) {
	if (Params{N: 2, Iterations: 1}).Validate(2) == nil {
		t.Error("tiny N accepted")
	}
	if (Params{N: 10, Iterations: 0}).Validate(2) == nil {
		t.Error("zero iterations accepted")
	}
	if (Params{N: 11, Iterations: 1}).Validate(2) == nil {
		t.Error("indivisible rows accepted")
	}
	if (Params{N: 10, Iterations: 1}).Validate(4) != nil {
		t.Error("valid params rejected")
	}
}
