// Package gups implements the HPC Challenge RandomAccess (GUPS)
// benchmark over MPI RMA: every process fires XOR-accumulate updates at
// pseudo-random words of a globally distributed table. It is the
// classic stress test for exactly the properties Casper's Section III-B
// machinery protects — concurrent atomic updates from many origins to
// the same memory — and the update stream is replayable, so the final
// table is verified exactly.
package gups

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Params configures a run.
type Params struct {
	WordsPerRank   int   // table words owned by each rank (power of two not required)
	UpdatesPerRank int   // XOR updates issued by each rank
	Seed           int64 // stream seed (per-rank streams derive from it)
	FlushEvery     int   // flush the epoch every n updates; 0 = only at the end
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.WordsPerRank <= 0 || p.UpdatesPerRank < 0 {
		return fmt.Errorf("gups: bad params %+v", p)
	}
	return nil
}

// Result is one rank's view of a run.
type Result struct {
	Elapsed sim.Duration
	Updates int
	// GUPS is giga-updates per simulated second, aggregated over the
	// world by the caller (each rank reports its own issue rate).
	GUPS float64
}

// xorshift64 is the deterministic update-stream generator.
func xorshift64(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

func streamSeed(seed int64, rank int) uint64 {
	s := uint64(seed)*2654435761 + uint64(rank)*40503 + 1
	return xorshift64(xorshift64(s))
}

// Run executes the benchmark on the calling rank. Collective; all ranks
// pass identical Params. The table starts zeroed; each update XORs the
// random value into the word at (value mod tableSize).
func Run(env mpi.Env, p Params) Result {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	c := env.CommWorld()
	n := c.Size()
	totalWords := p.WordsPerRank * n
	win, _ := env.WinAllocate(c, 8*p.WordsPerRank, mpi.Info{"epochs_used": "lockall"})
	defer win.Free()

	c.Barrier()
	start := env.Now()
	win.LockAll(mpi.AssertNone)
	x := streamSeed(p.Seed, c.Rank())
	for i := 0; i < p.UpdatesPerRank; i++ {
		x = xorshift64(x)
		word := int(x % uint64(totalWords))
		target := word / p.WordsPerRank
		disp := (word % p.WordsPerRank) * 8
		win.Accumulate(mpi.PutInt64(int64(x)), target, disp, mpi.Scalar(mpi.Int64), mpi.OpBXor)
		if p.FlushEvery > 0 && (i+1)%p.FlushEvery == 0 {
			win.FlushAll()
		}
	}
	win.UnlockAll()
	c.Barrier()
	el := env.Now().Sub(start)

	res := Result{Elapsed: el, Updates: p.UpdatesPerRank}
	if secs := el.Seconds(); secs > 0 {
		res.GUPS = float64(p.UpdatesPerRank*n) / secs / 1e9
	}
	return res
}

// Expected replays every rank's update stream and returns the expected
// table contents (totalWords int64 words), for verification.
func Expected(ranks int, p Params) []int64 {
	totalWords := p.WordsPerRank * ranks
	table := make([]int64, totalWords)
	for r := 0; r < ranks; r++ {
		x := streamSeed(p.Seed, r)
		for i := 0; i < p.UpdatesPerRank; i++ {
			x = xorshift64(x)
			table[int(x%uint64(totalWords))] ^= int64(x)
		}
	}
	return table
}

// RunVerified runs the benchmark and then gathers the whole table to
// rank 0 for exact comparison with the replayed streams. It returns the
// rank-local result and, on rank 0, whether the table matched.
func RunVerified(env mpi.Env, p Params) (Result, bool) {
	c := env.CommWorld()
	n := c.Size()
	win, local := env.WinAllocate(c, 8*p.WordsPerRank, mpi.Info{"epochs_used": "lockall"})
	defer win.Free()

	c.Barrier()
	start := env.Now()
	win.LockAll(mpi.AssertNone)
	totalWords := p.WordsPerRank * n
	x := streamSeed(p.Seed, c.Rank())
	for i := 0; i < p.UpdatesPerRank; i++ {
		x = xorshift64(x)
		word := int(x % uint64(totalWords))
		target := word / p.WordsPerRank
		disp := (word % p.WordsPerRank) * 8
		win.Accumulate(mpi.PutInt64(int64(x)), target, disp, mpi.Scalar(mpi.Int64), mpi.OpBXor)
	}
	win.UnlockAll()
	c.Barrier()
	el := env.Now().Sub(start)

	// Gather local tables to rank 0 as raw bytes (XOR values use all
	// 64 bits, so they must not pass through float64).
	const gatherTag = 771
	ok := true
	if c.Rank() == 0 {
		want := Expected(n, p)
		table := make([]int64, 0, p.WordsPerRank*n)
		for i := 0; i < p.WordsPerRank; i++ {
			table = append(table, mpi.GetInt64(local[8*i:]))
		}
		for src := 1; src < n; src++ {
			data, _ := c.Recv(src, gatherTag)
			for i := 0; i < p.WordsPerRank; i++ {
				table = append(table, mpi.GetInt64(data[8*i:]))
			}
		}
		for i, w := range want {
			if table[i] != w {
				ok = false
				break
			}
		}
	} else {
		c.Send(0, gatherTag, local)
	}
	c.Barrier()
	res := Result{Elapsed: el, Updates: p.UpdatesPerRank}
	if secs := el.Seconds(); secs > 0 {
		res.GUPS = float64(p.UpdatesPerRank*n) / secs / 1e9
	}
	return res, ok
}
