package gups

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
)

func gupsConfig(n, ppn int) mpi.Config {
	nodes := (n + ppn - 1) / ppn
	return mpi.Config{
		Machine:  cluster.Machine{Nodes: nodes, CoresPerNode: 24, NUMAPerNode: 2},
		N:        n,
		PPN:      ppn,
		Net:      netmodel.CrayXC30(),
		Seed:     13,
		Validate: true,
	}
}

func TestStreamsDeterministic(t *testing.T) {
	a := Expected(4, Params{WordsPerRank: 16, UpdatesPerRank: 100, Seed: 1})
	b := Expected(4, Params{WordsPerRank: 16, UpdatesPerRank: 100, Seed: 1})
	diff := Expected(4, Params{WordsPerRank: 16, UpdatesPerRank: 100, Seed: 2})
	same, changed := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != diff[i] {
			changed = true
		}
	}
	if !same || !changed {
		t.Fatalf("same=%v changed=%v", same, changed)
	}
}

func TestVerifiedOverPlainMPI(t *testing.T) {
	p := Params{WordsPerRank: 32, UpdatesPerRank: 200, Seed: 5}
	okAll := true
	w, err := mpi.Run(gupsConfig(4, 4), func(r *mpi.Rank) {
		_, ok := RunVerified(r, p)
		if r.Rank() == 0 && !ok {
			okAll = false
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !okAll {
		t.Fatal("table mismatch over plain MPI")
	}
	if v := w.Validator(); v != nil && !v.Ok() {
		t.Fatalf("validator: %v", v.Violations())
	}
}

func TestVerifiedOverCasperMultiGhost(t *testing.T) {
	// The atomicity stress: concurrent 64-bit XOR updates from every
	// origin into shared words, redirected through 4 ghosts. Rank
	// binding must keep the table exact and the validator silent.
	p := Params{WordsPerRank: 16, UpdatesPerRank: 300, Seed: 9}
	okAll := true
	w, err := mpi.Run(gupsConfig(12, 12), func(r *mpi.Rank) {
		cp, ghost := core.Init(r, core.Config{NumGhosts: 4})
		if ghost {
			return
		}
		_, ok := RunVerified(cp, p)
		if cp.Rank() == 0 && !ok {
			okAll = false
		}
		cp.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !okAll {
		t.Fatal("table mismatch over Casper")
	}
	if v := w.Validator(); v != nil && !v.Ok() {
		t.Fatalf("validator: %v", v.Violations())
	}
}

func TestSegmentBindingAlsoExact(t *testing.T) {
	p := Params{WordsPerRank: 16, UpdatesPerRank: 200, Seed: 3}
	okAll := true
	_, err := mpi.Run(gupsConfig(12, 12), func(r *mpi.Rank) {
		cp, ghost := core.Init(r, core.Config{NumGhosts: 4, Binding: core.BindSegment})
		if ghost {
			return
		}
		_, ok := RunVerified(cp, p)
		if cp.Rank() == 0 && !ok {
			okAll = false
		}
		cp.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !okAll {
		t.Fatal("table mismatch under segment binding")
	}
}

func TestRunReportsRate(t *testing.T) {
	p := Params{WordsPerRank: 32, UpdatesPerRank: 100, Seed: 1, FlushEvery: 16}
	var res Result
	_, err := mpi.Run(gupsConfig(4, 4), func(r *mpi.Rank) {
		out := Run(r, p)
		if r.Rank() == 0 {
			res = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 100 || res.GUPS <= 0 || res.Elapsed <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestParamsValidate(t *testing.T) {
	if (Params{WordsPerRank: 0, UpdatesPerRank: 1}).Validate() == nil {
		t.Error("zero words accepted")
	}
	if (Params{WordsPerRank: 4, UpdatesPerRank: -1}).Validate() == nil {
		t.Error("negative updates accepted")
	}
}

func TestBitwiseOpsSupportGUPSSemantics(t *testing.T) {
	// Sanity of the underlying XOR accumulate: a ^ a == 0.
	_, err := mpi.Run(gupsConfig(2, 2), func(r *mpi.Rank) {
		c := r.CommWorld()
		win, buf := r.WinAllocate(c, 8, nil)
		c.Barrier()
		if r.Rank() == 0 {
			v := mpi.PutInt64(0x0123456789abcdef)
			win.LockAll(mpi.AssertNone)
			win.Accumulate(v, 1, 0, mpi.Scalar(mpi.Int64), mpi.OpBXor)
			win.Accumulate(v, 1, 0, mpi.Scalar(mpi.Int64), mpi.OpBXor)
			win.UnlockAll()
		}
		c.Barrier()
		if r.Rank() == 1 && mpi.GetInt64(buf) != 0 {
			t.Errorf("a^a = %x", mpi.GetInt64(buf))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
