package bench

// TestSchedHeapLadderIdentical is the experiment-level half of the
// scheduler identity contract (the structure-level half is the
// lockstep fuzz in internal/sim/ladder_test.go): real experiments,
// rendered to bytes, must not move when the event scheduler flips
// between the ladder queue and the heap oracle — serial or sharded.

import (
	"testing"

	"repro/internal/sim"
)

// withScheduler runs f under k and restores the package default.
func withScheduler(k sim.SchedulerKind, f func()) {
	prev := Scheduler()
	SetScheduler(k)
	defer SetScheduler(prev)
	f()
}

func TestSchedHeapLadderIdentical(t *testing.T) {
	cases := []struct {
		id     string
		o      Options
		shards []int
	}{
		{"fig5a", Options{Scale: 0.12, Seed: 42, Parallel: 1}, []int{0, 2}},
		{"fig5b", Options{Scale: 0.12, Seed: 42, Parallel: 1}, []int{0}},
		{"faultrecover", Options{Scale: 0.25, Seed: 42, Parallel: 1}, []int{0}},
	}
	for _, c := range cases {
		e, ok := Get(c.id)
		if !ok {
			t.Fatalf("%s not registered", c.id)
		}
		for _, s := range c.shards {
			o := c.o
			o.Shards = s
			var lad, heap string
			withScheduler(sim.SchedLadder, func() { lad = e.Run(o).CSV() })
			withScheduler(sim.SchedHeap, func() { heap = e.Run(o).CSV() })
			if lad != heap {
				t.Errorf("%s shards=%d: ladder and heap render different bytes:\n--- ladder ---\n%s--- heap ---\n%s",
					c.id, s, lad, heap)
			}
		}
	}
}
