package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// runBound runs a workload over Casper with the given binding/balancing
// configuration (or plain MPI when ghosts == 0) and returns the maximum
// rank time in milliseconds.
func runBound(ghosts, users, usersPerNode int, binding core.Binding,
	lb core.LoadBalance, seed int64, work func(env mpi.Env, win mpi.Window, size int)) float64 {
	var maxEl sim.Duration
	winSize := 4096
	body := func(env mpi.Env) {
		c := env.CommWorld()
		win, _ := env.WinAllocate(c, winSize, nil)
		c.Barrier()
		start := env.Now()
		work(env, win, winSize)
		c.Barrier()
		if el := env.Now().Sub(start); el > maxEl {
			maxEl = el
		}
	}
	if ghosts == 0 {
		cfg := worldConfig(netmodel.CrayXC30(), users, usersPerNode, mpi.ProgressNone, false, seed)
		runPlain(cfg, body)
		return maxEl.Millis()
	}
	ppn := usersPerNode + ghosts
	nodes := (users + usersPerNode - 1) / usersPerNode
	cfg := worldConfig(netmodel.CrayXC30(), nodes*ppn, ppn, mpi.ProgressNone, false, seed)
	runCasper(cfg, core.Config{NumGhosts: ghosts, Binding: binding, LoadBalance: lb}, body)
	return maxEl.Millis()
}

// allAcc issues n accumulates to every other process under lockall.
func allAcc(env mpi.Env, win mpi.Window, n int) {
	one := mpi.PutFloat64s([]float64{1})
	win.LockAll(mpi.AssertNone)
	for t := 0; t < env.Size(); t++ {
		if t == env.Rank() {
			continue
		}
		for i := 0; i < n; i++ {
			win.Accumulate(one, t, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
		}
	}
	win.UnlockAll()
}

// --- Fig. 6(a): static rank binding, increasing processes ---------------

func init() {
	register(Experiment{
		ID:     "fig6a",
		Figure: "Fig. 6(a)",
		Title:  "Static rank binding: increasing processes (16 users/node)",
		Run:    runFig6a,
	})
	register(Experiment{
		ID:     "fig6b",
		Figure: "Fig. 6(b)",
		Title:  "Static rank binding: increasing operations (32 user processes)",
		Run:    runFig6b,
	})
	register(Experiment{
		ID:     "fig6c",
		Figure: "Fig. 6(c)",
		Title:  "Static segment binding: uneven window sizes",
		Run:    runFig6c,
	})
}

// ghostSweep adds Original MPI plus Casper with 2/4/8 ghosts. Speedup
// columns are relative to the 2-ghost configuration, showing how added
// ghost service capacity absorbs the growing software-RMA load (the
// point of Fig. 6: "configurations with larger numbers of ghost
// processes tend to perform better").
func ghostSweep(o Options, res *Result, xs []int,
	measure func(ghosts, x int) float64) {
	variants := []int{0, 2, 4, 8} // ghost counts; 0 = Original MPI
	ys := make([][]float64, len(variants))
	for vi := range ys {
		ys[vi] = make([]float64, len(xs))
	}
	o.grid(len(variants), len(xs), func(vi, xi int) {
		ys[vi][xi] = measure(variants[vi], xs[xi])
	})
	res.Series = append(res.Series, Series{Name: "Original MPI", Y: ys[0]})
	base := ys[1] // the 2-ghost configuration
	for vi, g := range variants[1:] {
		sp := make([]float64, len(xs))
		for i := range xs {
			sp[i] = base[i] / ys[vi+1][i]
		}
		res.Series = append(res.Series,
			Series{Name: fmt.Sprintf("Casper (%d Ghosts)", g), Y: ys[vi+1]},
			Series{Name: fmt.Sprintf("Speedup (%dG vs 2G)", g), Y: sp})
	}
}

func runFig6a(o Options) *Result {
	o = o.withDefaults()
	var xs []int
	for p := 32; p <= o.scaleInt(256, 64); p *= 2 {
		xs = append(xs, p)
	}
	res := &Result{
		ID: "fig6a", Title: "one accumulate from every process to every other",
		XLabel: "user_processes", YLabel: "ms",
		Notes: []string{"16 user processes per node; rank binding"},
	}
	res.X = toF(xs)
	ghostSweep(o, res, xs, func(g, procs int) float64 {
		return runBound(g, procs, 16, core.BindRank, core.LBStatic, o.Seed,
			func(env mpi.Env, win mpi.Window, _ int) { allAcc(env, win, 1) })
	})
	return res
}

func runFig6b(o Options) *Result {
	o = o.withDefaults()
	xs := pow2Sweep(1, o.scaleInt(512, 64))
	res := &Result{
		ID: "fig6b", Title: "increasing accumulates per pair, 32 user processes",
		XLabel: "operations", YLabel: "ms",
		Notes: []string{"2 nodes x 16 users; rank binding"},
	}
	res.X = toF(xs)
	ghostSweep(o, res, xs, func(g, n int) float64 {
		return runBound(g, 32, 16, core.BindRank, core.LBStatic, o.Seed,
			func(env mpi.Env, win mpi.Window, _ int) { allAcc(env, win, n) })
	})
	return res
}

// unevenAcc sends n accumulates to each process with node-local index 0
// and one to every other process; rank-0 processes expose a large
// window, others 16 bytes (the Fig. 6(c) pattern).
func runFig6c(o Options) *Result {
	o = o.withDefaults()
	xs := pow2Sweep(1, o.scaleInt(512, 64))
	const usersPerNode = 16
	const nodes = 4
	users := usersPerNode * nodes
	res := &Result{
		ID: "fig6c", Title: "uneven windows: 4KB on local rank 0, 16B elsewhere",
		XLabel: "operations", YLabel: "ms",
		Notes: []string{fmt.Sprintf("%d nodes x %d users; segment binding", nodes, usersPerNode)},
	}
	res.X = toF(xs)

	measure := func(g, n int) float64 {
		var maxEl sim.Duration
		body := func(env mpi.Env) {
			c := env.CommWorld()
			size := 16
			if env.Rank()%usersPerNode == 0 {
				size = 4096
			}
			win, _ := env.WinAllocate(c, size, nil)
			c.Barrier()
			start := env.Now()
			one := mpi.PutFloat64s([]float64{1})
			big := mpi.PutFloat64s(make([]float64, 64)) // 512B accumulate into the 4KB window
			win.LockAll(mpi.AssertNone)
			for t := 0; t < env.Size(); t++ {
				if t == env.Rank() {
					continue
				}
				if t%usersPerNode == 0 {
					for i := 0; i < n; i++ {
						// Walk the whole 4KB window so the load spreads
						// over every memory segment (and therefore over
						// every ghost under segment binding).
						disp := (i % 8) * 512
						win.Accumulate(big, t, disp, mpi.TypeOf(mpi.Float64, 64), mpi.OpSum)
					}
				} else {
					win.Accumulate(one, t, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
				}
			}
			win.UnlockAll()
			c.Barrier()
			if el := env.Now().Sub(start); el > maxEl {
				maxEl = el
			}
		}
		if g == 0 {
			cfg := worldConfig(netmodel.CrayXC30(), users, usersPerNode, mpi.ProgressNone, false, o.Seed)
			runPlain(cfg, body)
		} else {
			ppn := usersPerNode + g
			cfg := worldConfig(netmodel.CrayXC30(), nodes*ppn, ppn, mpi.ProgressNone, false, o.Seed)
			runCasper(cfg, core.Config{NumGhosts: g, Binding: core.BindSegment}, body)
		}
		return maxEl.Millis()
	}
	ghostSweep(o, res, xs, measure)
	return res
}

// --- Fig. 7: dynamic load balancing --------------------------------------

func init() {
	register(Experiment{
		ID:     "fig7a",
		Figure: "Fig. 7(a)",
		Title:  "Dynamic binding: random balancing of uneven PUTs",
		Run:    runFig7a,
	})
	register(Experiment{
		ID:     "fig7b",
		Figure: "Fig. 7(b)",
		Title:  "Dynamic binding: op-counting with mixed PUT/ACC",
		Run:    runFig7b,
	})
	register(Experiment{
		ID:     "fig7c",
		Figure: "Fig. 7(c)",
		Title:  "Dynamic binding: byte-counting with uneven sizes",
		Run:    runFig7c,
	})
}

// fig7 fixed deployment: 2 nodes x 20 users + 4 ghosts (the paper uses
// 16 nodes; node count scales down, the contention shape is per node).
const (
	fig7Nodes = 2
	fig7Users = 20
	fig7Gh    = 4
)

// runFig7 measures one balancing policy on the uneven workload.
func runFig7(policy core.LoadBalance, original bool, seed int64,
	work func(env mpi.Env, win mpi.Window)) float64 {
	var maxEl sim.Duration
	body := func(env mpi.Env) {
		c := env.CommWorld()
		win, _ := env.WinAllocate(c, 1<<17, nil)
		c.Barrier()
		start := env.Now()
		work(env, win)
		c.Barrier()
		if el := env.Now().Sub(start); el > maxEl {
			maxEl = el
		}
	}
	if original {
		cfg := worldConfig(netmodel.CrayXC30(), fig7Nodes*fig7Users, fig7Users,
			mpi.ProgressNone, false, seed)
		runPlain(cfg, body)
	} else {
		ppn := fig7Users + fig7Gh
		cfg := worldConfig(netmodel.CrayXC30(), fig7Nodes*ppn, ppn,
			mpi.ProgressNone, false, seed)
		runCasper(cfg, core.Config{NumGhosts: fig7Gh, LoadBalance: policy}, body)
	}
	return maxEl.Millis()
}

// unevenWork builds the Fig. 7 pattern: under lockall, one op to every
// target then a flush (opening the static-binding-free interval), then
// extra traffic concentrated on each node's local rank 0.
func unevenWork(nPut, nAcc, sizeDoubles int) func(env mpi.Env, win mpi.Window) {
	return func(env mpi.Env, win mpi.Window) {
		one := mpi.PutFloat64s([]float64{1})
		payload := mpi.PutFloat64s(make([]float64, sizeDoubles))
		dt := mpi.TypeOf(mpi.Float64, sizeDoubles)
		win.LockAll(mpi.AssertNone)
		for t := 0; t < env.Size(); t++ {
			if t != env.Rank() {
				win.Put(one, t, 0, mpi.Scalar(mpi.Float64))
				win.Flush(t)
			}
		}
		for t := 0; t < env.Size(); t++ {
			if t == env.Rank() {
				continue
			}
			if t%fig7Users == 0 { // each node's first user rank
				for i := 0; i < nAcc; i++ {
					win.Accumulate(payload, t, 0, dt, mpi.OpSum)
				}
				for i := 0; i < nPut; i++ {
					win.Put(payload, t, 0, dt)
				}
			} else {
				if nAcc > 0 {
					win.Accumulate(one, t, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
				}
				win.Put(one, t, 0, mpi.Scalar(mpi.Float64))
			}
		}
		win.UnlockAll()
	}
}

func runFig7a(o Options) *Result {
	o = o.withDefaults()
	xs := pow2Sweep(2, o.scaleInt(512, 64))
	res := &Result{
		ID: "fig7a", Title: "uneven PUT counts to each node's local rank 0",
		XLabel: "puts_to_rank0", YLabel: "ms",
		Notes: []string{fmt.Sprintf("%d nodes x %d users + %d ghosts", fig7Nodes, fig7Users, fig7Gh)},
	}
	res.X = toF(xs)
	n := len(xs)
	orig, static, random := make([]float64, n), make([]float64, n), make([]float64, n)
	spS, spR := make([]float64, n), make([]float64, n)
	o.grid(n, 3, func(xi, vi int) {
		w := unevenWork(xs[xi], 0, 1)
		switch vi {
		case 0:
			orig[xi] = runFig7(core.LBStatic, true, o.Seed, w)
		case 1:
			static[xi] = runFig7(core.LBStatic, false, o.Seed, w)
		case 2:
			random[xi] = runFig7(core.LBRandom, false, o.Seed, w)
		}
	})
	for xi := range xs {
		spS[xi] = static[xi] / random[xi] // random speedup over static
		spR[xi] = orig[xi] / random[xi]
	}
	res.Series = []Series{
		{Name: "Original MPI", Y: orig},
		{Name: "Static", Y: static},
		{Name: "Random", Y: random},
		{Name: "Random/Static speedup", Y: spS},
		{Name: "Random/Original speedup", Y: spR},
	}
	return res
}

func runFig7b(o Options) *Result {
	o = o.withDefaults()
	xs := pow2Sweep(2, o.scaleInt(512, 64))
	res := &Result{
		ID: "fig7b", Title: "uneven PUT+ACC counts to each node's local rank 0",
		XLabel: "ops_to_rank0", YLabel: "ms",
	}
	res.X = toF(xs)
	n := len(xs)
	orig, static := make([]float64, n), make([]float64, n)
	random, opc, spOp := make([]float64, n), make([]float64, n), make([]float64, n)
	o.grid(n, 4, func(xi, vi int) {
		w := unevenWork(xs[xi], xs[xi], 1)
		switch vi {
		case 0:
			orig[xi] = runFig7(core.LBStatic, true, o.Seed, w)
		case 1:
			static[xi] = runFig7(core.LBStatic, false, o.Seed, w)
		case 2:
			random[xi] = runFig7(core.LBRandom, false, o.Seed, w)
		case 3:
			opc[xi] = runFig7(core.LBOpCounting, false, o.Seed, w)
		}
	})
	for xi := range xs {
		spOp[xi] = random[xi] / opc[xi] // op-counting speedup over random
	}
	res.Series = []Series{
		{Name: "Original MPI", Y: orig},
		{Name: "Static", Y: static},
		{Name: "Random", Y: random},
		{Name: "OP-counting", Y: opc},
		{Name: "OP/Random speedup", Y: spOp},
	}
	return res
}

func runFig7c(o Options) *Result {
	o = o.withDefaults()
	// Quadrupling byte sizes: the byte-counting advantage only appears
	// once per-byte processing dominates the per-message base cost.
	var xs []int
	for v := 64; v <= o.scaleInt(65536, 16384); v *= 4 {
		xs = append(xs, v)
	}
	res := &Result{
		ID: "fig7c", Title: "uneven PUT/ACC sizes to each node's local rank 0",
		XLabel: "bytes", YLabel: "ms",
	}
	res.X = toF(xs)
	n := len(xs)
	orig, static, random := make([]float64, n), make([]float64, n), make([]float64, n)
	opc, byc := make([]float64, n), make([]float64, n)
	o.grid(n, 5, func(xi, vi int) {
		w := unevenWork(4, 4, xs[xi]/8)
		switch vi {
		case 0:
			orig[xi] = runFig7(core.LBStatic, true, o.Seed, w)
		case 1:
			static[xi] = runFig7(core.LBStatic, false, o.Seed, w)
		case 2:
			random[xi] = runFig7(core.LBRandom, false, o.Seed, w)
		case 3:
			opc[xi] = runFig7(core.LBOpCounting, false, o.Seed, w)
		case 4:
			byc[xi] = runFig7(core.LBByteCounting, false, o.Seed, w)
		}
	})
	res.Series = []Series{
		{Name: "Original MPI", Y: orig},
		{Name: "Static", Y: static},
		{Name: "Random", Y: random},
		{Name: "OP-counting", Y: opc},
		{Name: "Byte-counting", Y: byc},
	}
	return res
}
