package bench

import (
	"runtime"
	"sort"
	"time"

	"repro/internal/mpi"
)

// Measurement is one timed experiment run: the wall-clock cost of
// simulating, with the simulator's own throughput counters. Events come
// from mpi.TotalEventsExecuted deltas (every World.Run adds its
// engines' executed-event counts — all shard engines on a sharded
// world), allocations from runtime.MemStats Mallocs deltas — both
// process-wide, so measure one run at a time.
//
// Contract for multi-goroutine runs (Options.Parallel > 1 or
// Options.Shards > 0): Events and EventsPerSec stay exact — the
// counter is an atomic the engines add to regardless of which
// goroutine executes an event. Mallocs does not: the process-wide
// delta picks up worker-goroutine stacks, scheduler bookkeeping, and
// mailbox growth on top of the event loop's own allocations, so
// AllocsPerEvent is only comparable against a committed baseline when
// measured with Parallel <= 1 and Shards == 0. The casperbench
// allocgate therefore always gates on the serial measurement (see
// cmd/casperbench runBench), never on a parallel or sharded one.
type Measurement struct {
	Experiment     string  `json:"experiment"`
	Parallel       int     `json:"parallel"`
	GOMAXPROCS     int     `json:"gomaxprocs"` // runtime.GOMAXPROCS during this run
	WallSeconds    float64 `json:"wall_seconds"`
	Events         int64   `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	InlinedEvents  int64   `json:"inlined_events"`         // Advance calls completed inline (run-to-completion)
	ShardRounds    int64   `json:"shard_rounds,omitempty"` // window barriers (sharded runs only)
	Mallocs        uint64  `json:"mallocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// PeakQueueResidency is the deepest any engine's scheduler queue
	// got during the run (max across worlds, engines, and shards) —
	// the working-set size the ladder queue's bucket quantization is
	// tuned around. See sim.Engine.PeakQueueResidency.
	PeakQueueResidency int    `json:"peak_queue_residency"`
	CSV                string `json:"-"` // rendered output, for bit-identity checks
}

// Measure runs the experiment once under o and returns its measurement.
func Measure(e Experiment, o Options) Measurement {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ev0 := mpi.TotalEventsExecuted()
	in0 := mpi.TotalInlinedAdvances()
	ro0 := mpi.TotalShardRounds()
	mpi.TakePeakQueueResidency() // discard history; read the interval's peak below
	t0 := time.Now()
	res := e.Run(o)
	wall := time.Since(t0).Seconds()
	events := mpi.TotalEventsExecuted() - ev0
	runtime.ReadMemStats(&after)
	m := Measurement{
		Experiment:         e.ID,
		Parallel:           o.Parallel,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		WallSeconds:        wall,
		Events:             events,
		InlinedEvents:      mpi.TotalInlinedAdvances() - in0,
		ShardRounds:        mpi.TotalShardRounds() - ro0,
		Mallocs:            after.Mallocs - before.Mallocs,
		PeakQueueResidency: mpi.TakePeakQueueResidency(),
		CSV:                res.CSV(),
	}
	if wall > 0 {
		m.EventsPerSec = float64(events) / wall
	}
	if events > 0 {
		m.AllocsPerEvent = float64(m.Mallocs) / float64(events)
	}
	return m
}

// MeasureN runs the experiment count times and returns every round plus
// the round with the median events/sec (the lower middle for even
// counts). Repeating and taking the median is the defense against a
// noisy measurement host: simulated results are bit-identical across
// rounds — MeasureN panics if they are not — so rounds differ only in
// wall-clock terms. The casperbench -benchcount flag drives this.
func MeasureN(e Experiment, o Options, count int) (rounds []Measurement, median Measurement) {
	if count < 1 {
		count = 1
	}
	rounds = make([]Measurement, count)
	for i := range rounds {
		rounds[i] = Measure(e, o)
		if rounds[i].CSV != rounds[0].CSV {
			panic("bench: output differs between measurement rounds of " + e.ID)
		}
	}
	byRate := append([]Measurement(nil), rounds...)
	sort.Slice(byRate, func(i, j int) bool { return byRate[i].EventsPerSec < byRate[j].EventsPerSec })
	return rounds, byRate[(count-1)/2]
}
