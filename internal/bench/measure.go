package bench

import (
	"runtime"
	"time"

	"repro/internal/mpi"
)

// Measurement is one timed experiment run: the wall-clock cost of
// simulating, with the simulator's own throughput counters. Events come
// from mpi.TotalEventsExecuted deltas (every World.Run adds its
// engines' executed-event counts — all shard engines on a sharded
// world), allocations from runtime.MemStats Mallocs deltas — both
// process-wide, so measure one run at a time.
//
// Contract for multi-goroutine runs (Options.Parallel > 1 or
// Options.Shards > 0): Events and EventsPerSec stay exact — the
// counter is an atomic the engines add to regardless of which
// goroutine executes an event. Mallocs does not: the process-wide
// delta picks up worker-goroutine stacks, scheduler bookkeeping, and
// mailbox growth on top of the event loop's own allocations, so
// AllocsPerEvent is only comparable against a committed baseline when
// measured with Parallel <= 1 and Shards == 0. The casperbench
// allocgate therefore always gates on the serial measurement (see
// cmd/casperbench runBench), never on a parallel or sharded one.
type Measurement struct {
	Experiment     string  `json:"experiment"`
	Parallel       int     `json:"parallel"`
	GOMAXPROCS     int     `json:"gomaxprocs"` // runtime.GOMAXPROCS during this run
	WallSeconds    float64 `json:"wall_seconds"`
	Events         int64   `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	InlinedEvents  int64   `json:"inlined_events"`         // Advance calls completed inline (run-to-completion)
	ShardRounds    int64   `json:"shard_rounds,omitempty"` // window barriers (sharded runs only)
	Mallocs        uint64  `json:"mallocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	CSV            string  `json:"-"` // rendered output, for bit-identity checks
}

// Measure runs the experiment once under o and returns its measurement.
func Measure(e Experiment, o Options) Measurement {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ev0 := mpi.TotalEventsExecuted()
	in0 := mpi.TotalInlinedAdvances()
	ro0 := mpi.TotalShardRounds()
	t0 := time.Now()
	res := e.Run(o)
	wall := time.Since(t0).Seconds()
	events := mpi.TotalEventsExecuted() - ev0
	runtime.ReadMemStats(&after)
	m := Measurement{
		Experiment:    e.ID,
		Parallel:      o.Parallel,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		WallSeconds:   wall,
		Events:        events,
		InlinedEvents: mpi.TotalInlinedAdvances() - in0,
		ShardRounds:   mpi.TotalShardRounds() - ro0,
		Mallocs:       after.Mallocs - before.Mallocs,
		CSV:           res.CSV(),
	}
	if wall > 0 {
		m.EventsPerSec = float64(events) / wall
	}
	if events > 0 {
		m.AllocsPerEvent = float64(m.Mallocs) / float64(events)
	}
	return m
}
