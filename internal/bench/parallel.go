package bench

import (
	"sync"
	"sync/atomic"
)

// Parallel sweep execution. Every sweep point of every experiment is an
// independent deterministic simulation — its own sim.Engine, World, and
// RNG — so points can run on all OS cores at once without perturbing
// results: each point writes only its own index in the preallocated
// result slices, and the rendered output is assembled in index order,
// bit-identical to a serial run (the determinism regression in
// determinism_test.go holds this invariant).

// points runs fn(i) for every i in [0,n), across min(o.Parallel, n)
// worker goroutines (serially when o.Parallel <= 1). fn must be safe to
// run concurrently with other indices and must confine its writes to
// index-i slots. A panic in any point is re-raised on the caller after
// all workers drain, preserving the experiments' panic-on-error
// convention.
func (o Options) points(n int, fn func(i int)) {
	par := o.Parallel
	if par > n {
		par = n
	}
	if par <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked bool
	var panicVal interface{}
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if !panicked {
								panicked, panicVal = true, r
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}

// grid runs fn(r, c) for every cell of a rows x cols sweep grid through
// points — the common "approaches x sweep values" shape.
func (o Options) grid(rows, cols int, fn func(r, c int)) {
	o.points(rows*cols, func(i int) { fn(i/cols, i%cols) })
}
