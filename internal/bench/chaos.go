package bench

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gups"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stencil"
	"repro/internal/trace"

	"repro/internal/ga"
)

// faultchaos — the seeded chaos-sweep verifier. Every seed derives a
// complete random fault schedule (fault.ChaosPlan: ghost crashes —
// including the sequencer — stalls, message drop/delay/dup rates,
// straggler nodes, at arbitrary times including inside lock epochs and
// window construction) and runs one of four RMA workloads under it as
// an independent deterministic world. Each world is checked against the
// recovery invariants:
//
//	complete   — the run finishes: no panic, no deadlock, no watchdog.
//	identical  — the computed data is bit-identical to the fault-free
//	             baseline of the same workload (crashes only ever hit
//	             ghosts, so user-visible results must not change).
//	verified   — the workload's own self-check passes (GUPS replays its
//	             update streams against the gathered table).
//	clean      — the MPI-3 RMA correctness validator recorded nothing.
//
// A failing seed prints its schedule and a one-command replay:
// casperbench -run faultchaos -chaosseed N reruns exactly that world,
// verbosely, with a fault-event trace.

// Chaos world shape: 2 nodes, 4 user processes, 2 ghosts per node —
// the smallest world where sequencer succession (ghost 0 dies, another
// ghost must take over command ordering), same-node rebinding, and
// cross-node degradation can all occur.
const (
	chaosUsers  = 4
	chaosGhosts = 2
	chaosNodes  = 2
	chaosPPN    = chaosUsers/chaosNodes + chaosGhosts
	chaosN      = chaosNodes * chaosPPN
)

// chaosWorkloadNames indexes the rotation: seed s runs workload
// (s-1) mod 4. Sizes are fixed (never scaled), so a seed replays the
// identical world at any -scale setting.
var chaosWorkloadNames = [4]string{"stencil", "gups", "ga-matmul", "lockloop"}

type chaosOutcome struct {
	sig        uint64 // FNV-1a over the workload's user-visible data
	selfOK     bool   // workload self-verification (GUPS table replay)
	summary    mpi.WorldSummary
	violations []string
}

// chaosSig hashes per-rank data buffers in rank order.
func chaosSig(data [][]byte) uint64 {
	h := fnv.New64a()
	for _, d := range data {
		h.Write(d)
	}
	return h.Sum64()
}

// runChaosWorld runs one workload under one fault plan (nil = the
// fault-free baseline) and captures every failure mode as an error:
// rank panics, deadlock, and watchdog all surface through the named
// return instead of killing the sweep.
func runChaosWorld(wi int, engineSeed int64, plan *fault.Plan, tr *trace.Tracer, shards int) (out chaosOutcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	cfg := worldConfig(netmodel.CrayXC30(), chaosN, chaosPPN, mpi.ProgressNone, false, engineSeed)
	cfg.Fault = plan
	cfg.Validate = true
	// Shards is threaded through for the -shards identity check. Every
	// chaos world sets Validate (and most carry a fault plan), so the
	// sharded engine declines it and falls back to serial — the option
	// must be an honest no-op here, which TestShardedIdentical verifies.
	cfg.Shards = shards
	w, werr := mpi.NewWorld(cfg)
	if werr != nil {
		return out, werr
	}
	w.SetTracer(tr)
	data := make([][]byte, chaosUsers)
	out.selfOK = true
	w.Launch(func(r *mpi.Rank) {
		p, ghost := core.Init(r, core.Config{NumGhosts: chaosGhosts})
		if ghost {
			return
		}
		switch wi {
		case 0:
			res := stencil.Run(p, stencil.Params{N: 18, Iterations: 60})
			data[p.Rank()] = mpi.PutFloat64s(res.Local)
		case 1:
			_, ok := gups.RunVerified(p, gups.Params{
				WordsPerRank: 64, UpdatesPerRank: 300, Seed: 7, FlushEvery: 50})
			if p.Rank() == 0 && !ok {
				out.selfOK = false
			}
		case 2:
			data[p.Rank()] = chaosMatmul(p)
		case 3:
			data[p.Rank()] = chaosLockloop(p)
		}
		p.Finalize()
	})
	if rerr := w.Run(); rerr != nil {
		return out, rerr
	}
	out.sig = chaosSig(data)
	out.summary = w.Summary()
	if v := w.Validator(); v != nil {
		out.violations = v.Violations()
	}
	return out, nil
}

// chaosMatmul is the GA workload: a 12x12 panel multiply whose result
// tile is gathered on rank 0. Ghost faults during Create (window
// construction), the multiply's lock epochs, or Destroy all land here.
func chaosMatmul(env mpi.Env) []byte {
	const n, panel = 12, 3
	fa := func(i, j int) float64 { return float64(i + 2*j + 1) }
	fb := func(i, j int) float64 { return float64(i - j) }
	a := ga.MustCreate(env, "A", n, n)
	b := ga.MustCreate(env, "B", n, n)
	c := ga.MustCreate(env, "C", n, n)
	a.FillPattern(fa)
	b.FillPattern(fb)
	c.Fill(0)
	ga.MustMultiply(a, b, c, panel, 0.25)
	var sig []byte
	if env.Rank() == 0 {
		got := make([]float64, n*n)
		c.Get(0, n, 0, n, got)
		sig = mpi.PutFloat64s(got)
	}
	c.Sync()
	c.Destroy()
	b.Destroy()
	a.Destroy()
	return sig
}

// chaosLockloop is the passive-target workload built to be mid-epoch
// when a fault lands: each rank cycles shared-lock epochs over rotating
// targets, issues commutative integer-sum accumulates, flushes, then
// dwells inside the open epoch — so a ghost crash frequently hits a
// window with locks held and forces mid-epoch reclamation rather than
// an epoch-boundary cleanup. The final table is order-independent, so
// it must come out bit-identical to the fault-free run.
func chaosLockloop(env mpi.Env) []byte {
	c := env.CommWorld()
	n := c.Size()
	const words, iters = 8, 24
	win, local := env.WinAllocate(c, 8*words, mpi.Info{core.InfoEpochsUsed: core.EpochLock})
	c.Barrier()
	for it := 0; it < iters; it++ {
		t := (c.Rank() + it) % n
		win.Lock(t, mpi.LockShared, mpi.AssertNone)
		for wd := 0; wd < words; wd++ {
			v := int64(c.Rank()*1000 + it*10 + wd)
			win.Accumulate(mpi.PutInt64(v), t, wd*8, mpi.Scalar(mpi.Int64), mpi.OpSum)
		}
		win.Flush(t)
		// Dwell with the epoch open. Most iterations dwell briefly; a
		// few hold the epoch well past the failure detector's grace
		// period and then issue a second batch, so a ghost death during
		// the dwell is detected while locks are still held — the op
		// after the dwell must re-acquire them on the substitute ghost
		// (mid-epoch lock reclamation), not coast to the epoch boundary.
		dwell := 2 * sim.Microsecond
		if it%8 == 3 {
			dwell = 120 * sim.Microsecond
		}
		env.Compute(dwell)
		if it%8 == 3 {
			win.Accumulate(mpi.PutInt64(int64(c.Rank()+it)), t, 0, mpi.Scalar(mpi.Int64), mpi.OpSum)
			win.Flush(t)
		}
		win.Unlock(t)
	}
	c.Barrier() // all epochs closed; every table word is settled
	sig := append([]byte(nil), local...)
	win.Free()
	return sig
}

// chaosCheck evaluates the four invariants for one chaos world against
// its workload baseline, returning the violated ones.
func chaosCheck(out chaosOutcome, err error, base chaosOutcome) []string {
	if err != nil {
		return []string{fmt.Sprintf("incomplete: %v", err)}
	}
	var bad []string
	if out.sig != base.sig {
		bad = append(bad, fmt.Sprintf("data mismatch: sig %016x want %016x", out.sig, base.sig))
	}
	if !out.selfOK {
		bad = append(bad, "workload self-verification failed")
	}
	if len(out.violations) > 0 {
		bad = append(bad, fmt.Sprintf("validator: %d violation(s), first: %s",
			len(out.violations), out.violations[0]))
	}
	return bad
}

func init() {
	register(Experiment{
		ID:     "faultchaos",
		Figure: "robustness",
		Title:  "Seeded chaos sweep: random fault schedules vs recovery invariants",
		Run: func(o Options) *Result {
			o = o.withDefaults()
			res := &Result{
				ID: "faultchaos", Title: "Seeded chaos sweep: random fault schedules vs recovery invariants",
				XLabel: "workload", YLabel: "count",
			}

			// Seed list: the full sweep, or a single replayed seed.
			var seeds []int64
			if o.ChaosSeed > 0 {
				seeds = []int64{o.ChaosSeed}
			} else {
				n := o.scaleInt(240, 8)
				for s := int64(1); s <= int64(n); s++ {
					seeds = append(seeds, s)
				}
			}

			// Fault-free baselines, one per workload, run serially: their
			// end times set the chaos horizon and their signatures define
			// bit-identity.
			var base [4]chaosOutcome
			for wi := range base {
				out, err := runChaosWorld(wi, o.Seed, nil, nil, o.Shards)
				if err != nil {
					panic(fmt.Sprintf("bench: faultchaos baseline %s: %v", chaosWorkloadNames[wi], err))
				}
				base[wi] = out
			}

			nodeGhosts, err := core.GhostRanks(machineFor(chaosN, chaosPPN), chaosN, chaosPPN, chaosGhosts)
			if err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			var ghosts []int
			for _, ng := range nodeGhosts {
				ghosts = append(ghosts, ng...)
			}
			apps := userRanks(chaosN, nodeGhosts)

			type chaosRun struct {
				out  chaosOutcome
				err  error
				plan *fault.Plan
				tr   *trace.Tracer
				wi   int
			}
			runs := make([]chaosRun, len(seeds))
			verbose := o.ChaosSeed > 0
			o.points(len(seeds), func(i int) {
				seed := seeds[i]
				wi := int((seed - 1) % 4)
				plan := fault.ChaosPlan(seed, fault.ChaosSpec{
					Ghosts:        ghosts,
					Apps:          apps,
					Nodes:         chaosNodes,
					Horizon:       base[wi].summary.EndTime,
					MaxCrashes:    3,
					MaxAppCrashes: 2,
					MaxStalls:     2,
					Rates:         true,
				})
				var tr *trace.Tracer
				if verbose {
					tr = trace.New()
				}
				out, err := runChaosWorld(wi, o.Seed, plan, tr, o.Shards)
				runs[i] = chaosRun{out: out, err: err, plan: plan, tr: tr, wi: wi}
			})

			// Aggregate per workload; collect failures in seed order.
			var okCnt, succ, locks, relocks, resends, rebinds, suspects [4]float64
			var apprec, replays [4]float64
			var failures []string
			var agg mpi.WorldSummary
			for i, r := range runs {
				seed := seeds[i]
				bad := chaosCheck(r.out, r.err, base[r.wi])
				s := r.out.summary
				succ[r.wi] += float64(s.Successions)
				locks[r.wi] += float64(s.LocksReclaimed)
				relocks[r.wi] += float64(s.EpochRelocks)
				resends[r.wi] += float64(s.CmdResends)
				rebinds[r.wi] += float64(s.Rebinds)
				suspects[r.wi] += float64(s.Suspects)
				apprec[r.wi] += float64(s.AppRecoveries)
				replays[r.wi] += float64(s.ReplayedOps)
				agg.Successions += s.Successions
				agg.LocksReclaimed += s.LocksReclaimed
				agg.EpochRelocks += s.EpochRelocks
				agg.CmdResends += s.CmdResends
				agg.Rebinds += s.Rebinds
				agg.Suspects += s.Suspects
				agg.FalseSuspects += s.FalseSuspects
				agg.RanksFailed += s.RanksFailed
				agg.AppRecoveries += s.AppRecoveries
				agg.SnapshotBytes += s.SnapshotBytes
				agg.ReplayedOps += s.ReplayedOps
				agg.FaultCorrupts += s.FaultCorrupts
				agg.CorruptDropped += s.CorruptDropped
				if len(bad) == 0 {
					okCnt[r.wi]++
					continue
				}
				res.Failed = true
				for _, b := range bad {
					failures = append(failures, fmt.Sprintf(
						"FAIL seed=%d workload=%s plan={%s}: %s — replay: casperbench -run faultchaos -chaosseed %d",
						seed, chaosWorkloadNames[r.wi], r.plan.Describe(), b, seed))
				}
			}

			res.Notes = append(res.Notes, fmt.Sprintf(
				"%d seeds; seed s attacks workload (s-1) mod 4 of [stencil gups ga-matmul lockloop]", len(seeds)))
			res.Notes = append(res.Notes,
				"per seed: <=3 ghost crashes (sequencer included), <=2 recoverable app crashes, <=2 stalls, randomized drop/delay/dup/corrupt rates, stragglers")
			res.Notes = append(res.Notes, fmt.Sprintf(
				"invariants: complete, bit-identical to fault-free, self-verified, validator-clean; violations=%d",
				len(failures)))
			res.Notes = append(res.Notes, failures...)
			if verbose {
				r := runs[0]
				outcome := "ok"
				if bad := chaosCheck(r.out, r.err, base[r.wi]); len(bad) > 0 {
					outcome = bad[0]
				}
				res.Notes = append(res.Notes, fmt.Sprintf(
					"replay seed=%d workload=%s plan={%s} outcome=%s",
					o.ChaosSeed, chaosWorkloadNames[r.wi], r.plan.Describe(), outcome))
				s := r.out.summary
				res.Notes = append(res.Notes, fmt.Sprintf(
					"replay counters: failed=%d suspects=%d false=%d successions=%d cmd_resends=%d locks_reclaimed=%d epoch_relocks=%d rebinds=%d reroutes=%d app_recovered=%d replayed=%d corrupt_dropped=%d",
					s.RanksFailed, s.Suspects, s.FalseSuspects, s.Successions, s.CmdResends,
					s.LocksReclaimed, s.EpochRelocks, s.Rebinds, s.Reroutes,
					s.AppRecoveries, s.ReplayedOps, s.CorruptDropped))
				for _, f := range r.tr.Faults() {
					res.Notes = append(res.Notes, fmt.Sprintf(
						"trace: %-10s rank=%d peer=%d at=%v", f.Kind, f.Rank, f.Peer, f.At))
				}
			}

			res.X = []float64{1, 2, 3, 4}
			res.Series = []Series{
				{Name: "ok", Y: okCnt[:]},
				{Name: "successions", Y: succ[:]},
				{Name: "locks_reclaimed", Y: locks[:]},
				{Name: "epoch_relocks", Y: relocks[:]},
				{Name: "cmd_resends", Y: resends[:]},
				{Name: "rebinds", Y: rebinds[:]},
				{Name: "suspects", Y: suspects[:]},
				{Name: "app_recoveries", Y: apprec[:]},
				{Name: "replayed_ops", Y: replays[:]},
			}
			res.Recovery = append(res.Recovery, fmt.Sprintf(
				"chaos recovery: %d/%d seeds clean; ghosts_failed=%d successions=%d cmd_resends=%d locks_reclaimed=%d epoch_relocks=%d rebinds=%d suspects=%d false_suspects=%d",
				len(seeds)-len(failures), len(seeds), agg.RanksFailed, agg.Successions,
				agg.CmdResends, agg.LocksReclaimed, agg.EpochRelocks, agg.Rebinds,
				agg.Suspects, agg.FalseSuspects))
			res.Recovery = append(res.Recovery, fmt.Sprintf(
				"chaos app recovery: apps_recovered=%d snap_bytes=%d replayed_ops=%d corrupt_injected=%d corrupt_dropped=%d",
				agg.AppRecoveries, agg.SnapshotBytes, agg.ReplayedOps,
				agg.FaultCorrupts, agg.CorruptDropped))
			return res
		},
	})
}
