package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// approach is one asynchronous-progress strategy under comparison.
type approach struct {
	name    string
	net     func() *netmodel.Params
	prog    mpi.ProgressMode
	oversub bool
	ghosts  int // per node; 0 = no Casper
}

func origMPI() approach {
	return approach{name: "Original MPI", net: netmodel.CrayXC30, prog: mpi.ProgressNone}
}
func threadAp() approach {
	return approach{name: "Thread", net: netmodel.CrayXC30, prog: mpi.ProgressThread}
}
func dmappAp() approach {
	return approach{name: "DMAPP", net: netmodel.CrayXC30DMAPP, prog: mpi.ProgressInterrupt}
}
func casperAp(g int) approach {
	return approach{name: "Casper", net: netmodel.CrayXC30, prog: mpi.ProgressNone, ghosts: g}
}

// run2 runs a two-user-process microbenchmark (one user process per
// node, as in Section IV-B) and returns the origin's measured epoch time
// in microseconds. The workload functions receive a 64 KiB window.
func run2(a approach, seed int64,
	origin func(env mpi.Env, win mpi.Window),
	target func(env mpi.Env, win mpi.Window)) (float64, *mpi.World) {
	const winBytes = 64 << 10
	var elapsed sim.Duration
	body := func(env mpi.Env) {
		c := env.CommWorld()
		win, _ := env.WinAllocate(c, winBytes, nil)
		c.Barrier()
		start := env.Now()
		if env.Rank() == 0 {
			origin(env, win)
			elapsed = env.Now().Sub(start)
		} else {
			target(env, win)
		}
		c.Barrier()
	}
	var w *mpi.World
	if a.ghosts > 0 {
		ppn := 1 + a.ghosts
		cfg := worldConfig(a.net(), 2*ppn, ppn, a.prog, a.oversub, seed)
		w = runCasper(cfg, core.Config{NumGhosts: a.ghosts}, body)
	} else {
		cfg := worldConfig(a.net(), 2, 1, a.prog, a.oversub, seed)
		w = runPlain(cfg, body)
	}
	return elapsed.Micros(), w
}

func accOnce(win mpi.Window, target, n int) {
	one := mpi.PutFloat64s([]float64{1})
	for i := 0; i < n; i++ {
		win.Accumulate(one, target, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
	}
}

// --- Fig. 3(a): window allocation overhead -----------------------------

func init() {
	register(Experiment{
		ID:     "fig3a",
		Figure: "Fig. 3(a)",
		Title:  "Window allocation overhead vs. local processes (Cray XC30, 1 node)",
		Run:    runFig3a,
	})
}

func runFig3a(o Options) *Result {
	o = o.withDefaults()
	maxLocal := o.scaleInt(22, 6)
	var xs []int
	for v := 2; v <= maxLocal; v += 4 {
		xs = append(xs, v)
	}
	res := &Result{
		ID: "fig3a", Title: "MPI_WIN_ALLOCATE time on a user process",
		XLabel: "local_procs", YLabel: "us",
		Notes: []string{"Casper uses one additional ghost process per node"},
	}
	res.X = toF(xs)
	configs := []struct {
		name string
		info mpi.Info
	}{
		{"Original MPI", nil},
		{"Casper (default)", nil},
		{"Casper (lock)", mpi.Info{core.InfoEpochsUsed: "lock"}},
		{"Casper (lockall)", mpi.Info{core.InfoEpochsUsed: "lockall"}},
		{"Casper (fence)", mpi.Info{core.InfoEpochsUsed: "fence"}},
	}
	series := make([]Series, len(configs))
	for ci := range configs {
		series[ci] = Series{Name: configs[ci].name, Y: make([]float64, len(xs))}
	}
	o.grid(len(xs), len(configs), func(xi, ci int) {
		n, cfg := xs[xi], configs[ci]
		var el sim.Duration
		body := func(env mpi.Env) {
			c := env.CommWorld()
			start := env.Now()
			env.WinAllocate(c, 4096, cfg.info)
			if env.Rank() == 0 {
				el = env.Now().Sub(start)
			}
			c.Barrier()
		}
		if ci == 0 {
			runPlain(worldConfig(netmodel.CrayXC30(), n, n, mpi.ProgressNone, false, o.Seed), body)
		} else {
			mcfg := worldConfig(netmodel.CrayXC30(), n+1, n+1, mpi.ProgressNone, false, o.Seed)
			runCasper(mcfg, core.Config{NumGhosts: 1}, body)
		}
		series[ci].Y[xi] = el.Micros()
	})
	res.Series = series
	return res
}

// --- Fig. 3(b): fence and PSCW overhead --------------------------------

func init() {
	register(Experiment{
		ID:     "fig3b",
		Figure: "Fig. 3(b)",
		Title:  "Fence and PSCW translation overhead vs. operation count",
		Run:    runFig3b,
	})
}

func runFig3b(o Options) *Result {
	o = o.withDefaults()
	ops := pow2Sweep(2, o.scaleInt(4096, 64))
	res := &Result{
		ID: "fig3b", Title: "Active-target epoch time on rank 0 (2 processes)",
		XLabel: "operations", YLabel: "us",
	}
	res.X = toF(ops)
	fence := func(a approach, n int) float64 {
		t, _ := run2(a, o.Seed, func(env mpi.Env, win mpi.Window) {
			win.Fence(mpi.ModeNoPrecede)
			accOnce(win, 1, n)
			win.Fence(mpi.ModeNoSucceed)
		}, func(env mpi.Env, win mpi.Window) {
			win.Fence(mpi.ModeNoPrecede)
			win.Fence(mpi.ModeNoSucceed)
		})
		return t
	}
	pscw := func(a approach, n int) float64 {
		t, _ := run2(a, o.Seed, func(env mpi.Env, win mpi.Window) {
			win.Start([]int{1}, mpi.AssertNone)
			accOnce(win, 1, n)
			win.Complete()
		}, func(env mpi.Env, win mpi.Window) {
			win.Post([]int{0}, mpi.AssertNone)
			win.Wait()
		})
		return t
	}
	n := len(ops)
	of, cf := make([]float64, n), make([]float64, n)
	op, cp := make([]float64, n), make([]float64, n)
	ovF, ovP := make([]float64, n), make([]float64, n)
	o.grid(n, 4, func(oi, mi int) {
		switch mi {
		case 0:
			of[oi] = fence(origMPI(), ops[oi])
		case 1:
			cf[oi] = fence(casperAp(1), ops[oi])
		case 2:
			op[oi] = pscw(origMPI(), ops[oi])
		case 3:
			cp[oi] = pscw(casperAp(1), ops[oi])
		}
	})
	for oi := range ops {
		ovF[oi] = 100 * (cf[oi] - of[oi]) / of[oi]
		ovP[oi] = 100 * (cp[oi] - op[oi]) / op[oi]
	}
	res.Series = []Series{
		{Name: "Original Fence", Y: of},
		{Name: "Casper Fence", Y: cf},
		{Name: "Original PSCW", Y: op},
		{Name: "Casper PSCW", Y: cp},
		{Name: "Fence overhead %", Y: ovF},
		{Name: "PSCW overhead %", Y: ovP},
	}
	return res
}

// --- Fig. 4(a): passive-target overlap ----------------------------------

func init() {
	register(Experiment{
		ID:     "fig4a",
		Figure: "Fig. 4(a)",
		Title:  "Passive-target RMA overlap: origin time vs. target wait time",
		Run:    runFig4a,
	})
}

func runFig4a(o Options) *Result {
	o = o.withDefaults()
	waits := pow2Sweep(1, o.scaleInt(128, 16))
	res := &Result{
		ID: "fig4a", Title: "lockall-accumulate-unlockall while the target computes",
		XLabel: "wait_us", YLabel: "us",
	}
	res.X = toF(waits)
	approaches := []approach{origMPI(), threadAp(), dmappAp(), casperAp(1)}
	series := make([]Series, len(approaches))
	for ai, a := range approaches {
		series[ai] = Series{Name: a.name, Y: make([]float64, len(waits))}
	}
	o.grid(len(approaches), len(waits), func(ai, wi int) {
		wait := sim.Microseconds(float64(waits[wi]))
		t, _ := run2(approaches[ai], o.Seed, func(env mpi.Env, win mpi.Window) {
			win.LockAll(mpi.AssertNone)
			accOnce(win, 1, 1)
			win.UnlockAll()
		}, func(env mpi.Env, win mpi.Window) {
			env.Compute(wait)
		})
		series[ai].Y[wi] = t
	})
	res.Series = series
	return res
}

// --- Fig. 4(b): fence overlap vs. operation count -----------------------

func init() {
	register(Experiment{
		ID:     "fig4b",
		Figure: "Fig. 4(b)",
		Title:  "Fence RMA overlap improvement vs. operation count",
		Run:    runFig4b,
	})
}

func runFig4b(o Options) *Result {
	o = o.withDefaults()
	ops := pow2Sweep(1, o.scaleInt(1024, 64))
	res := &Result{
		ID: "fig4b", Title: "fence-accumulate-fence against a 100us busy target",
		XLabel: "operations", YLabel: "us",
	}
	res.X = toF(ops)
	delay := sim.Microseconds(100)
	approaches := []approach{origMPI(), threadAp(), dmappAp(), casperAp(1)}
	times := make([][]float64, len(approaches))
	for ai := range times {
		times[ai] = make([]float64, len(ops))
	}
	o.grid(len(approaches), len(ops), func(ai, oi int) {
		n := ops[oi]
		t, _ := run2(approaches[ai], o.Seed, func(env mpi.Env, win mpi.Window) {
			win.Fence(mpi.ModeNoPrecede)
			accOnce(win, 1, n)
			win.Fence(mpi.ModeNoSucceed)
		}, func(env mpi.Env, win mpi.Window) {
			win.Fence(mpi.ModeNoPrecede)
			env.Compute(delay)
			win.Fence(mpi.ModeNoSucceed)
		})
		times[ai][oi] = t
	})
	for ai, a := range approaches {
		res.Series = append(res.Series, Series{Name: a.name, Y: times[ai]})
	}
	imp := make([]float64, len(ops))
	for i := range ops {
		orig, csp := times[0][i], times[3][i]
		imp[i] = 100 * (orig - csp) / orig
	}
	res.Series = append(res.Series, Series{Name: "Casper improvement %", Y: imp})
	return res
}

// --- Fig. 4(c): DMAPP interrupt overhead ---------------------------------

func init() {
	register(Experiment{
		ID:     "fig4c",
		Figure: "Fig. 4(c)",
		Title:  "Interrupt-based progress overhead vs. operation count",
		Run:    runFig4c,
	})
}

func runFig4c(o Options) *Result {
	o = o.withDefaults()
	ops := pow2Sweep(16, o.scaleInt(1024, 64))
	res := &Result{
		ID: "fig4c", Title: "lockall-accumulate-unlockall against a dgemm-busy target (DMAPP platform)",
		XLabel: "operations", YLabel: "us (and interrupt count)",
		Notes: []string{"target computes a 5 ms dgemm; interrupts counted on the target"},
	}
	res.X = toF(ops)
	dgemm := sim.Microseconds(5000)
	type row struct {
		name string
		a    approach
	}
	rows := []row{
		{"Original MPI", approach{name: "Original MPI", net: netmodel.CrayXC30DMAPP, prog: mpi.ProgressNone}},
		{"DMAPP", dmappAp()},
		{"Casper", casperAp(1)},
	}
	ys := make([][]float64, len(rows))
	for ri := range ys {
		ys[ri] = make([]float64, len(ops))
	}
	interrupts := make([]float64, len(ops))
	o.grid(len(rows), len(ops), func(ri, oi int) {
		n := ops[oi]
		t, w := run2(rows[ri].a, o.Seed, func(env mpi.Env, win mpi.Window) {
			win.LockAll(mpi.AssertNone)
			accOnce(win, 1, n)
			win.UnlockAll()
		}, func(env mpi.Env, win mpi.Window) {
			env.Compute(dgemm)
		})
		ys[ri][oi] = t
		if ri == 1 { // DMAPP: count target interrupts
			var total int64
			for i := 0; i < w.Config().N; i++ {
				total += w.RankByID(i).Stats().Interrupts
			}
			interrupts[oi] = float64(total)
		}
	})
	for ri, rw := range rows {
		res.Series = append(res.Series, Series{Name: rw.name, Y: ys[ri]})
	}
	res.Series = append(res.Series, Series{Name: "System interrupts", Y: interrupts})
	return res
}

// --- Table I -------------------------------------------------------------

func init() {
	register(Experiment{
		ID:     "tab1",
		Figure: "Table I",
		Title:  "Core deployment in the NWChem evaluation",
		Run:    runTab1,
	})
}

func runTab1(o Options) *Result {
	res := &Result{
		ID: "tab1", Title: "Computing vs. async cores per 24-core node",
		XLabel: "deployment", YLabel: "cores",
	}
	deps := tceDeployments()
	for i, d := range deps {
		res.X = append(res.X, float64(i))
		res.Notes = append(res.Notes,
			fmt.Sprintf("%d: %s — %d computing cores, %d async cores",
				i, d.Name, d.UserCores, coresPerNode-d.UserCores))
	}
	var comp, async []float64
	for _, d := range deps {
		comp = append(comp, float64(d.UserCores))
		async = append(async, float64(coresPerNode-d.UserCores))
	}
	res.Series = []Series{
		{Name: "Computing cores", Y: comp},
		{Name: "Async cores", Y: async},
	}
	return res
}
