package bench

import (
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Ablation experiments: each isolates one design decision called out in
// DESIGN.md and measures the system with the mechanism on and off.

func init() {
	register(Experiment{
		ID:     "abl1",
		Figure: "ablation (III-A)",
		Title:  "Per-user overlapping windows vs. one shared lock window",
		Run:    runAbl1,
	})
	register(Experiment{
		ID:     "abl2",
		Figure: "ablation (III-B)",
		Title:  "Lazy vs. eager lock acquisition",
		Run:    runAbl2,
	})
	register(Experiment{
		ID:     "abl3",
		Figure: "ablation (III-D)",
		Title:  "Self put/get: shared-memory local vs. ghost redirection",
		Run:    runAbl3,
	})
}

// runAbl1 measures the serialization the overlapping windows avoid:
// several origins hold exclusive locks on *different* user processes of
// one node — legal MPI, concurrent with per-user windows, serialized
// when everything funnels through one window to the same ghost.
func runAbl1(o Options) *Result {
	o = o.withDefaults()
	maxOrigins := o.scaleInt(6, 3)
	var xs []int
	for k := 1; k <= maxOrigins; k++ {
		xs = append(xs, k)
	}
	res := &Result{
		ID: "abl1", Title: "concurrent exclusive epochs to distinct co-located targets",
		XLabel: "origins", YLabel: "ms",
		Notes: []string{"each origin exclusively locks its own target on one 8-user node"},
	}
	res.X = toF(xs)

	measure := func(unsafeShared bool, k int) float64 {
		const usersPerNode = 8
		var maxEl sim.Duration
		ppn := usersPerNode + 1
		cfg := worldConfig(netmodel.CrayXC30(), 2*ppn, ppn, mpi.ProgressNone, false, o.Seed)
		ccfg := core.Config{NumGhosts: 1, UnsafeSharedLockWindow: unsafeShared}
		runCasper(cfg, ccfg, func(env mpi.Env) {
			c := env.CommWorld()
			win, _ := env.WinAllocate(c, 4096, nil)
			c.Barrier()
			start := env.Now()
			// Origins are node 1's users (ranks 8..8+k); targets are
			// node 0's users, one per origin.
			if env.Rank() >= usersPerNode && env.Rank() < usersPerNode+k {
				target := env.Rank() - usersPerNode
				win.Lock(target, mpi.LockExclusive, mpi.AssertNone)
				for i := 0; i < 16; i++ {
					win.Accumulate(mpi.PutFloat64s([]float64{1}), target, 0,
						mpi.Scalar(mpi.Float64), mpi.OpSum)
				}
				win.Flush(target) // forces acquisition: the contention point
				win.Unlock(target)
			}
			c.Barrier()
			if el := env.Now().Sub(start); el > maxEl {
				maxEl = el
			}
		})
		return maxEl.Millis()
	}

	n := len(xs)
	overlap, shared, slowdown := make([]float64, n), make([]float64, n), make([]float64, n)
	o.grid(n, 2, func(xi, vi int) {
		if vi == 0 {
			overlap[xi] = measure(false, xs[xi])
		} else {
			shared[xi] = measure(true, xs[xi])
		}
	})
	for xi := range xs {
		slowdown[xi] = shared[xi] / overlap[xi]
	}
	res.Series = []Series{
		{Name: "Overlapping windows", Y: overlap},
		{Name: "Single shared window", Y: shared},
		{Name: "Serialization factor", Y: slowdown},
	}
	return res
}

// runAbl2 compares lazy lock acquisition (acquire at first op/flush)
// with eager acquisition (acquire at MPI_WIN_LOCK): lazy epochs that
// issue no operation cost nothing, which is why implementations — and
// Casper's lockall translation — rely on it.
func runAbl2(o Options) *Result {
	o = o.withDefaults()
	xs := []int{0, 1, 2, 4, 8, 16}
	res := &Result{
		ID: "abl2", Title: "lock-put^n-unlock epoch cost",
		XLabel: "operations", YLabel: "us",
	}
	res.X = toF(xs)

	measure := func(lazy bool, n int) float64 {
		net := netmodel.CrayXC30()
		net.LockLazy = lazy
		var el sim.Duration
		cfg := worldConfig(net, 2, 1, mpi.ProgressNone, false, o.Seed)
		runPlain(cfg, func(env mpi.Env) {
			c := env.CommWorld()
			win, _ := env.WinAllocate(c, 64, nil)
			c.Barrier()
			if env.Rank() == 0 {
				start := env.Now()
				for iter := 0; iter < 8; iter++ {
					win.Lock(1, mpi.LockShared, mpi.AssertNone)
					for i := 0; i < n; i++ {
						win.Put(mpi.PutFloat64s([]float64{1}), 1, 0, mpi.Scalar(mpi.Float64))
					}
					win.Unlock(1)
				}
				el = env.Now().Sub(start)
			}
			c.Barrier()
		})
		return el.Micros() / 8
	}

	lazy, eager := make([]float64, len(xs)), make([]float64, len(xs))
	o.grid(len(xs), 2, func(xi, vi int) {
		if vi == 0 {
			lazy[xi] = measure(true, xs[xi])
		} else {
			eager[xi] = measure(false, xs[xi])
		}
	})
	res.Series = []Series{
		{Name: "Lazy acquisition", Y: lazy},
		{Name: "Eager acquisition", Y: eager},
	}
	return res
}

// runAbl3 measures the self-operation optimization: put/get to the
// calling process through the shared segment vs. redirected through the
// node's ghost.
func runAbl3(o Options) *Result {
	o = o.withDefaults()
	xs := pow2Sweep(8, o.scaleInt(65536, 8192))
	res := &Result{
		ID: "abl3", Title: "self put+get round trip",
		XLabel: "bytes", YLabel: "us",
	}
	res.X = toF(xs)

	measure := func(local bool, size int) float64 {
		var el sim.Duration
		ppn := 2
		cfg := worldConfig(netmodel.CrayXC30(), 2*ppn, ppn, mpi.ProgressNone, false, o.Seed)
		ccfg := core.Config{NumGhosts: 1, SelfOpLocal: local}
		runCasper(cfg, ccfg, func(env mpi.Env) {
			c := env.CommWorld()
			win, _ := env.WinAllocate(c, 1<<17, nil)
			c.Barrier()
			if env.Rank() == 0 {
				data := make([]byte, size)
				start := env.Now()
				win.LockAll(mpi.AssertNone)
				for i := 0; i < 8; i++ {
					win.Put(data, 0, 0, mpi.TypeOf(mpi.Byte, size))
					win.Get(data, 0, 0, mpi.TypeOf(mpi.Byte, size))
				}
				win.FlushAll()
				win.UnlockAll()
				el = env.Now().Sub(start)
			}
			c.Barrier()
		})
		return el.Micros() / 8
	}

	n := len(xs)
	local, redirected, speedup := make([]float64, n), make([]float64, n), make([]float64, n)
	o.grid(n, 2, func(xi, vi int) {
		if vi == 0 {
			local[xi] = measure(true, xs[xi])
		} else {
			redirected[xi] = measure(false, xs[xi])
		}
	})
	for xi := range xs {
		speedup[xi] = redirected[xi] / local[xi]
	}
	res.Series = []Series{
		{Name: "Self ops local", Y: local},
		{Name: "Redirected to ghost", Y: redirected},
		{Name: "Speedup", Y: speedup},
	}
	return res
}
