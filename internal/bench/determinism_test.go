package bench

import "testing"

// The simulator's whole value rests on determinism: the same options
// must reproduce the same virtual-time results bit for bit, or every
// golden comparison and regression diff in the repo is meaningless.
// These tests run an experiment twice in one process and require the
// rendered outputs to be identical — any stray map iteration, shared
// mutable state between runs, or wall-clock leak shows up here.

func assertDeterministic(t *testing.T, id string) {
	t.Helper()
	a := runExp(t, id, tiny())
	b := runExp(t, id, tiny())
	if a.CSV() != b.CSV() {
		t.Fatalf("%s: CSV differs between identical runs:\n--- first\n%s\n--- second\n%s",
			id, a.CSV(), b.CSV())
	}
	if a.Table() != b.Table() {
		t.Fatalf("%s: table differs between identical runs:\n--- first\n%s\n--- second\n%s",
			id, a.Table(), b.Table())
	}
}

func TestStencilDeterministic(t *testing.T) {
	assertDeterministic(t, "fig5a")
}

// assertParallelIdentical runs an experiment serially and with 8 sweep
// workers and requires bit-identical rendered output. This is the
// parallel harness's contract: worker count may change scheduling of
// whole sweep points across OS threads, but every point is its own
// engine writing its own result slot, so the assembled output must not
// depend on Parallel at all.
func assertParallelIdentical(t *testing.T, id string) {
	t.Helper()
	serial := runExp(t, id, tiny())
	par := tiny()
	par.Parallel = 8
	parallel := runExp(t, id, par)
	if serial.CSV() != parallel.CSV() {
		t.Fatalf("%s: CSV differs between serial and parallel runs:\n--- serial\n%s\n--- parallel=8\n%s",
			id, serial.CSV(), parallel.CSV())
	}
	if serial.Table() != parallel.Table() {
		t.Fatalf("%s: table differs between serial and parallel runs:\n--- serial\n%s\n--- parallel=8\n%s",
			id, serial.Table(), parallel.Table())
	}
}

func TestParallelSweepIdentical(t *testing.T) {
	// fig5a is the headline scaling sweep; overload and faultrecover
	// have the most intricate cross-run aggregation (notes built from
	// per-point records, sequential baseline->crash pairs), so they are
	// the most likely to betray an index mix-up under parallel order.
	// faultchaos adds hundreds of seeded fault worlds whose invariant
	// checks compare against serially-built baselines — chaos recovery
	// itself must be bit-stable under any worker count.
	for _, id := range []string{"fig5a", "overload", "faultrecover", "faultchaos"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			assertParallelIdentical(t, id)
		})
	}
}

// The overload experiment exercises every new layer at once — credit
// flow control, the rebalancer's sweeps and handover drains, and the
// watchdog arming — so a nondeterministic instant anywhere in that
// stack diverges the second run.
func TestOverloadDeterministic(t *testing.T) {
	assertDeterministic(t, "overload")
}
