package bench

import "testing"

// The simulator's whole value rests on determinism: the same options
// must reproduce the same virtual-time results bit for bit, or every
// golden comparison and regression diff in the repo is meaningless.
// These tests run an experiment twice in one process and require the
// rendered outputs to be identical — any stray map iteration, shared
// mutable state between runs, or wall-clock leak shows up here.

func assertDeterministic(t *testing.T, id string) {
	t.Helper()
	a := runExp(t, id, tiny())
	b := runExp(t, id, tiny())
	if a.CSV() != b.CSV() {
		t.Fatalf("%s: CSV differs between identical runs:\n--- first\n%s\n--- second\n%s",
			id, a.CSV(), b.CSV())
	}
	if a.Table() != b.Table() {
		t.Fatalf("%s: table differs between identical runs:\n--- first\n%s\n--- second\n%s",
			id, a.Table(), b.Table())
	}
}

func TestStencilDeterministic(t *testing.T) {
	assertDeterministic(t, "fig5a")
}

// The overload experiment exercises every new layer at once — credit
// flow control, the rebalancer's sweeps and handover drains, and the
// watchdog arming — so a nondeterministic instant anywhere in that
// stack diverges the second run.
func TestOverloadDeterministic(t *testing.T) {
	assertDeterministic(t, "overload")
}
