package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stencil"
)

// Robustness experiments: the fault-injection counterpart of the paper's
// evaluation. None of these regenerate a paper figure — Casper (IPDPS
// 2015) assumes a fault-free run — but they validate that the ghost
// redirection machinery recovers from ghost failure and that the
// reliability layer is free when unused:
//
//	faultzero    — a zero-rate fault plan is observationally identical
//	               to no plan at all (virtual time overhead must be 0%).
//	faultrecover — a ghost crash mid-stencil: the run completes and the
//	               computed grid stays bit-identical to the fault-free
//	               run (failover to surviving ghosts; with g=1 the node
//	               degrades to Original-mode target-side progress).
//	faultsweep   — message drop rates vs virtual time for Original MPI,
//	               Thread and Casper: retransmission recovers every loss.

// stencilResult is one full Casper stencil run under a fault plan.
type stencilResult struct {
	interior [][]float64 // per user rank: its interior rows
	elapsed  sim.Duration
	degraded int64 // core.Stats.Degraded summed over user processes
	summary  mpi.WorldSummary
}

// runStencilFault runs the fence stencil over Casper on 2 nodes with
// users/2 user processes and g ghosts per node.
func runStencilFault(users, g int, p stencil.Params, seed int64, plan *fault.Plan) stencilResult {
	ppn := users/2 + g
	n := 2 * ppn
	cfg := worldConfig(netmodel.CrayXC30(), n, ppn, mpi.ProgressNone, false, seed)
	cfg.Fault = plan
	out := stencilResult{interior: make([][]float64, users)}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	w.Launch(func(r *mpi.Rank) {
		pr, ghost := core.Init(r, core.Config{NumGhosts: g})
		if ghost {
			return
		}
		res := stencil.Run(pr, p)
		out.interior[pr.Rank()] = res.Local
		if res.Elapsed > out.elapsed {
			out.elapsed = res.Elapsed
		}
		pr.Finalize()
		out.degraded += pr.Stats().Degraded
	})
	if err := w.Run(); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	out.summary = w.Summary()
	return out
}

// userRanks returns the world ranks that are user (application)
// processes: everything the ghost carving did not claim.
func userRanks(n int, ghostsByNode [][]int) []int {
	isGhost := make(map[int]bool)
	for _, gs := range ghostsByNode {
		for _, g := range gs {
			isGhost[g] = true
		}
	}
	var out []int
	for r := 0; r < n; r++ {
		if !isGhost[r] {
			out = append(out, r)
		}
	}
	return out
}

// sameGrids reports whether two assembled interiors are bit-identical.
func sameGrids(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func faultStencilParams() stencil.Params {
	// 32 interior rows divide evenly across 4 or 8 users; enough
	// iterations that a mid-run crash leaves real work after detection.
	return stencil.Params{N: 34, Iterations: 120}
}

func init() {
	register(Experiment{
		ID:     "faultzero",
		Figure: "robustness",
		Title:  "Zero-rate fault plan overhead (must be 0%)",
		Run: func(o Options) *Result {
			o = o.withDefaults()
			res := &Result{
				ID: "faultzero", Title: "Zero-rate fault plan overhead (must be 0%)",
				XLabel: "user_procs", YLabel: "ms",
			}
			p := faultStencilParams()
			userCounts := []int{4, 8}
			bs := make([]stencilResult, len(userCounts))
			zs := make([]stencilResult, len(userCounts))
			o.grid(len(userCounts), 2, func(ui, vi int) {
				if vi == 0 {
					bs[ui] = runStencilFault(userCounts[ui], 1, p, o.Seed, nil)
				} else {
					zs[ui] = runStencilFault(userCounts[ui], 1, p, o.Seed, &fault.Plan{Seed: o.Seed})
				}
			})
			base, zero := make([]float64, len(userCounts)), make([]float64, len(userCounts))
			for ui, users := range userCounts {
				res.X = append(res.X, float64(users))
				b, z := bs[ui], zs[ui]
				base[ui] = b.elapsed.Millis()
				zero[ui] = z.elapsed.Millis()
				ov := 0.0
				if b.elapsed > 0 {
					ov = 100 * (float64(z.elapsed) - float64(b.elapsed)) / float64(b.elapsed)
				}
				res.Notes = append(res.Notes, fmt.Sprintf(
					"users=%d: overhead=%.3f%% identical_output=%v end_base=%v end_zero=%v",
					users, ov, sameGrids(b.interior, z.interior),
					b.summary.EndTime, z.summary.EndTime))
			}
			res.Series = []Series{{Name: "No plan", Y: base}, {Name: "Zero-rate plan", Y: zero}}
			return res
		},
	})

	register(Experiment{
		ID:     "faultrecover",
		Figure: "robustness",
		Title:  "Ghost crash mid-stencil: failover and degraded progress",
		Run: func(o Options) *Result {
			o = o.withDefaults()
			res := &Result{
				ID: "faultrecover", Title: "Ghost crash mid-stencil: failover and degraded progress",
				XLabel: "ghosts_per_node", YLabel: "ms",
			}
			const users = 8
			p := faultStencilParams()
			ghostCounts := []int{1, 2, 4}
			type recoverPoint struct {
				b, c   stencilResult
				victim int
				at     sim.Time
			}
			pts := make([]recoverPoint, len(ghostCounts))
			// The crash time derives from the fault-free run's end time,
			// so the two runs of one point stay sequential; the points
			// themselves are independent.
			o.points(len(ghostCounts), func(gi int) {
				g := ghostCounts[gi]
				ppn := users/2 + g
				n := 2 * ppn
				b := runStencilFault(users, g, p, o.Seed, nil)
				ghosts, err := core.GhostRanks(machineFor(n, ppn), n, ppn, g)
				if err != nil {
					panic(fmt.Sprintf("bench: %v", err))
				}
				// Kill the last ghost of node 1 at 40% of the fault-free
				// end time. An ordinary ghost, not the sequencer (the
				// globally lowest ghost rank, on node 0): this point
				// isolates failover/degradation cost, while sequencer
				// death — succession included — is exercised by the
				// faultchaos sweep and the stencil/core recovery tests.
				victim := ghosts[1][len(ghosts[1])-1]
				at := sim.Time(0.4 * float64(b.summary.EndTime))
				c := runStencilFault(users, g, p, o.Seed, &fault.Plan{
					Seed:    o.Seed,
					Crashes: []fault.Crash{{Rank: victim, At: at}},
				})
				pts[gi] = recoverPoint{b: b, c: c, victim: victim, at: at}
			})
			base, crash := make([]float64, len(ghostCounts)), make([]float64, len(ghostCounts))
			for gi, g := range ghostCounts {
				res.X = append(res.X, float64(g))
				pt := pts[gi]
				base[gi] = pt.b.elapsed.Millis()
				crash[gi] = pt.c.elapsed.Millis()
				res.Notes = append(res.Notes, fmt.Sprintf(
					"g=%d: victim=%d crash_at=%v bit_identical=%v reroutes=%d degraded_ops=%d failed=%d",
					g, pt.victim, pt.at, sameGrids(pt.b.interior, pt.c.interior),
					pt.c.summary.Reroutes, pt.c.degraded, pt.c.summary.RanksFailed))
				survivors := "surviving node ghosts"
				if g == 1 {
					survivors = "self (degraded)"
				}
				s := pt.c.summary
				res.Recovery = append(res.Recovery, fmt.Sprintf(
					"recovery g=%d: ghost %d crashed at %v, rebound to %s; suspects=%d locks_reclaimed=%d epoch_relocks=%d rebinds=%d retransmits=%d",
					g, pt.victim, pt.at, survivors, s.Suspects,
					s.LocksReclaimed, s.EpochRelocks, s.Rebinds, s.Retransmits))
			}
			res.Series = []Series{{Name: "Fault-free", Y: base}, {Name: "Ghost crash", Y: crash}}
			return res
		},
	})

	register(Experiment{
		ID:     "faultapp",
		Figure: "robustness",
		Title:  "App-rank crash: epoch-replicated rollback-replay recovery",
		Run: func(o Options) *Result {
			o = o.withDefaults()
			res := &Result{
				ID: "faultapp", Title: "App-rank crash: epoch-replicated rollback-replay recovery",
				XLabel: "app_crashes", YLabel: "ms",
			}
			const users, g = 8, 2
			p := faultStencilParams()
			ppn := users/2 + g
			n := 2 * ppn
			ghostsByNode, err := core.GhostRanks(machineFor(n, ppn), n, ppn, g)
			if err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			appRanks := userRanks(n, ghostsByNode)
			crashCounts := []int{1, 2, 3}
			type appPoint struct {
				b, c stencilResult
				plan *fault.Plan
			}
			pts := make([]appPoint, len(crashCounts))
			// Crash times derive from the fault-free run's end time, so
			// the two runs of one point stay sequential; the points
			// themselves are independent.
			o.points(len(crashCounts), func(ci int) {
				b := runStencilFault(users, g, p, o.Seed, nil)
				plan := &fault.Plan{Seed: o.Seed}
				for k := 0; k < crashCounts[ci]; k++ {
					// Victims spread across both nodes, crash instants
					// spread across the middle of the run — each lands
					// mid-epoch with real work before and after it.
					plan.AppCrashes = append(plan.AppCrashes, fault.AppCrash{
						Rank: appRanks[(k*3)%len(appRanks)],
						At:   sim.Time((0.3 + 0.15*float64(k)) * float64(b.summary.EndTime)),
					})
				}
				pts[ci] = appPoint{b: b, c: runStencilFault(users, g, p, o.Seed, plan), plan: plan}
			})
			base, crash := make([]float64, len(crashCounts)), make([]float64, len(crashCounts))
			recovered := make([]float64, len(crashCounts))
			snapshots := make([]float64, len(crashCounts))
			replayed := make([]float64, len(crashCounts))
			for ci, nc := range crashCounts {
				res.X = append(res.X, float64(nc))
				pt := pts[ci]
				base[ci] = pt.b.elapsed.Millis()
				crash[ci] = pt.c.elapsed.Millis()
				s := pt.c.summary
				recovered[ci] = float64(s.AppRecoveries)
				snapshots[ci] = float64(s.SnapshotsTaken)
				replayed[ci] = float64(s.ReplayedOps)
				res.Notes = append(res.Notes, fmt.Sprintf(
					"crashes=%d plan={%s}: bit_identical=%v recovered=%d snapshots=%d snap_bytes=%d replayed=%d end_base=%v end_crash=%v",
					nc, pt.plan.Describe(), sameGrids(pt.b.interior, pt.c.interior),
					s.AppRecoveries, s.SnapshotsTaken, s.SnapshotBytes, s.ReplayedOps,
					pt.b.summary.EndTime, pt.c.summary.EndTime))
				if !sameGrids(pt.b.interior, pt.c.interior) || s.AppRecoveries != int64(nc) {
					res.Failed = true
					res.Notes = append(res.Notes, fmt.Sprintf(
						"FAIL crashes=%d: recovered=%d want %d, bit_identical=%v want true",
						nc, s.AppRecoveries, nc, sameGrids(pt.b.interior, pt.c.interior)))
				}
				res.Recovery = append(res.Recovery, fmt.Sprintf(
					"app recovery crashes=%d: recovered=%d from closed-epoch snapshots (taken=%d, %d bytes shipped) + %d replayed ops; suspects=%d retransmits=%d",
					nc, s.AppRecoveries, s.SnapshotsTaken, s.SnapshotBytes,
					s.ReplayedOps, s.Suspects, s.Retransmits))
			}
			res.Series = []Series{
				{Name: "Fault-free", Y: base},
				{Name: "App crash", Y: crash},
				{Name: "recovered", Y: recovered},
				{Name: "snapshots", Y: snapshots},
				{Name: "replayed_ops", Y: replayed},
			}
			return res
		},
	})

	register(Experiment{
		ID:     "faultsweep",
		Figure: "robustness",
		Title:  "Message drop rate vs time (retransmission recovery)",
		Run: func(o Options) *Result {
			o = o.withDefaults()
			res := &Result{
				ID: "faultsweep", Title: "Message drop rate vs time (retransmission recovery)",
				XLabel: "drop_rate", YLabel: "ms",
			}
			rates := []float64{0, 0.01, 0.02, 0.05, 0.1}
			res.X = append(res.X, rates...)
			const procs = 8
			as := []approach{origMPI(), threadAp(), casperAp(1)}
			ys := make([][]float64, len(as))
			sums := make([][]mpi.WorldSummary, len(as))
			for ai := range as {
				ys[ai] = make([]float64, len(rates))
				sums[ai] = make([]mpi.WorldSummary, len(rates))
			}
			o.grid(len(as), len(rates), func(ai, ri int) {
				ys[ai][ri], sums[ai][ri] = runFaultSweep(as[ai], procs, rates[ri], o.Seed)
			})
			for ai, a := range as {
				var retrans, dups int64
				for ri := range rates {
					retrans += sums[ai][ri].Retransmits
					dups += sums[ai][ri].DupsSuppressed
				}
				res.Series = append(res.Series, Series{Name: a.name, Y: ys[ai]})
				res.Notes = append(res.Notes, fmt.Sprintf(
					"%s: retransmits=%d dups_suppressed=%d across sweep",
					a.name, retrans, dups))
			}
			return res
		},
	})
}

// runFaultSweep measures the all-to-all accumulate workload for one
// approach under a uniform message-drop plan.
func runFaultSweep(a approach, procs int, rate float64, seed int64) (float64, mpi.WorldSummary) {
	var maxEl sim.Duration
	var w *mpi.World
	jitter := func() sim.Duration {
		return sim.Duration(w.Engine().Rand().Int63n(int64(sim.Microseconds(100))))
	}
	body := func(env mpi.Env) {
		el := allToAllWorkload(mpi.KindAcc, jitter)(env)
		if el > maxEl {
			maxEl = el
		}
	}
	plan := &fault.Plan{Seed: seed, DropRate: rate}
	var cfg mpi.Config
	if a.ghosts > 0 {
		ppn := 1 + a.ghosts
		cfg = worldConfig(a.net(), procs*ppn, ppn, a.prog, a.oversub, seed)
	} else {
		cfg = worldConfig(a.net(), procs, 1, a.prog, a.oversub, seed)
	}
	cfg.Fault = plan
	var err error
	w, err = mpi.NewWorld(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	w.Launch(func(r *mpi.Rank) {
		if a.ghosts > 0 {
			p, ghost := core.Init(r, core.Config{NumGhosts: a.ghosts})
			if ghost {
				return
			}
			body(p)
			p.Finalize()
		} else {
			body(r)
		}
	})
	if err := w.Run(); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return maxEl.Millis(), w.Summary()
}
