package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stencil"
)

// Robustness experiments: the fault-injection counterpart of the paper's
// evaluation. None of these regenerate a paper figure — Casper (IPDPS
// 2015) assumes a fault-free run — but they validate that the ghost
// redirection machinery recovers from ghost failure and that the
// reliability layer is free when unused:
//
//	faultzero    — a zero-rate fault plan is observationally identical
//	               to no plan at all (virtual time overhead must be 0%).
//	faultrecover — a ghost crash mid-stencil: the run completes and the
//	               computed grid stays bit-identical to the fault-free
//	               run (failover to surviving ghosts; with g=1 the node
//	               degrades to Original-mode target-side progress).
//	faultsweep   — message drop rates vs virtual time for Original MPI,
//	               Thread and Casper: retransmission recovers every loss.

// stencilResult is one full Casper stencil run under a fault plan.
type stencilResult struct {
	interior [][]float64 // per user rank: its interior rows
	elapsed  sim.Duration
	degraded int64 // core.Stats.Degraded summed over user processes
	summary  mpi.WorldSummary
}

// runStencilFault runs the fence stencil over Casper on 2 nodes with
// users/2 user processes and g ghosts per node.
func runStencilFault(users, g int, p stencil.Params, seed int64, plan *fault.Plan) stencilResult {
	ppn := users/2 + g
	n := 2 * ppn
	cfg := worldConfig(netmodel.CrayXC30(), n, ppn, mpi.ProgressNone, false, seed)
	cfg.Fault = plan
	out := stencilResult{interior: make([][]float64, users)}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	w.Launch(func(r *mpi.Rank) {
		pr, ghost := core.Init(r, core.Config{NumGhosts: g})
		if ghost {
			return
		}
		res := stencil.Run(pr, p)
		out.interior[pr.Rank()] = res.Local
		if res.Elapsed > out.elapsed {
			out.elapsed = res.Elapsed
		}
		pr.Finalize()
		out.degraded += pr.Stats().Degraded
	})
	if err := w.Run(); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	out.summary = w.Summary()
	return out
}

// sameGrids reports whether two assembled interiors are bit-identical.
func sameGrids(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func faultStencilParams() stencil.Params {
	// 32 interior rows divide evenly across 4 or 8 users; enough
	// iterations that a mid-run crash leaves real work after detection.
	return stencil.Params{N: 34, Iterations: 120}
}

func init() {
	register(Experiment{
		ID:     "faultzero",
		Figure: "robustness",
		Title:  "Zero-rate fault plan overhead (must be 0%)",
		Run: func(o Options) *Result {
			o = o.withDefaults()
			res := &Result{
				ID: "faultzero", Title: "Zero-rate fault plan overhead (must be 0%)",
				XLabel: "user_procs", YLabel: "ms",
			}
			p := faultStencilParams()
			var base, zero []float64
			for _, users := range []int{4, 8} {
				res.X = append(res.X, float64(users))
				b := runStencilFault(users, 1, p, o.Seed, nil)
				z := runStencilFault(users, 1, p, o.Seed, &fault.Plan{Seed: o.Seed})
				base = append(base, b.elapsed.Millis())
				zero = append(zero, z.elapsed.Millis())
				ov := 0.0
				if b.elapsed > 0 {
					ov = 100 * (float64(z.elapsed) - float64(b.elapsed)) / float64(b.elapsed)
				}
				res.Notes = append(res.Notes, fmt.Sprintf(
					"users=%d: overhead=%.3f%% identical_output=%v end_base=%v end_zero=%v",
					users, ov, sameGrids(b.interior, z.interior),
					b.summary.EndTime, z.summary.EndTime))
			}
			res.Series = []Series{{Name: "No plan", Y: base}, {Name: "Zero-rate plan", Y: zero}}
			return res
		},
	})

	register(Experiment{
		ID:     "faultrecover",
		Figure: "robustness",
		Title:  "Ghost crash mid-stencil: failover and degraded progress",
		Run: func(o Options) *Result {
			o = o.withDefaults()
			res := &Result{
				ID: "faultrecover", Title: "Ghost crash mid-stencil: failover and degraded progress",
				XLabel: "ghosts_per_node", YLabel: "ms",
			}
			const users = 8
			p := faultStencilParams()
			var base, crash []float64
			for _, g := range []int{1, 2, 4} {
				ppn := users/2 + g
				n := 2 * ppn
				res.X = append(res.X, float64(g))
				b := runStencilFault(users, g, p, o.Seed, nil)
				ghosts, err := core.GhostRanks(machineFor(n, ppn), n, ppn, g)
				if err != nil {
					panic(fmt.Sprintf("bench: %v", err))
				}
				// Kill the last ghost of node 1 — never the sequencer
				// (the globally lowest ghost rank, on node 0) — at 40%
				// of the fault-free end time.
				victim := ghosts[1][len(ghosts[1])-1]
				at := sim.Time(0.4 * float64(b.summary.EndTime))
				c := runStencilFault(users, g, p, o.Seed, &fault.Plan{
					Seed:    o.Seed,
					Crashes: []fault.Crash{{Rank: victim, At: at}},
				})
				base = append(base, b.elapsed.Millis())
				crash = append(crash, c.elapsed.Millis())
				res.Notes = append(res.Notes, fmt.Sprintf(
					"g=%d: victim=%d crash_at=%v bit_identical=%v reroutes=%d degraded_ops=%d failed=%d",
					g, victim, at, sameGrids(b.interior, c.interior),
					c.summary.Reroutes, c.degraded, c.summary.RanksFailed))
			}
			res.Series = []Series{{Name: "Fault-free", Y: base}, {Name: "Ghost crash", Y: crash}}
			return res
		},
	})

	register(Experiment{
		ID:     "faultsweep",
		Figure: "robustness",
		Title:  "Message drop rate vs time (retransmission recovery)",
		Run: func(o Options) *Result {
			o = o.withDefaults()
			res := &Result{
				ID: "faultsweep", Title: "Message drop rate vs time (retransmission recovery)",
				XLabel: "drop_rate", YLabel: "ms",
			}
			rates := []float64{0, 0.01, 0.02, 0.05, 0.1}
			res.X = append(res.X, rates...)
			const procs = 8
			for _, a := range []approach{origMPI(), threadAp(), casperAp(1)} {
				var ys []float64
				var retrans, dups int64
				for _, rate := range rates {
					ms, sum := runFaultSweep(a, procs, rate, o.Seed)
					ys = append(ys, ms)
					retrans += sum.Retransmits
					dups += sum.DupsSuppressed
				}
				res.Series = append(res.Series, Series{Name: a.name, Y: ys})
				res.Notes = append(res.Notes, fmt.Sprintf(
					"%s: retransmits=%d dups_suppressed=%d across sweep",
					a.name, retrans, dups))
			}
			return res
		},
	})
}

// runFaultSweep measures the all-to-all accumulate workload for one
// approach under a uniform message-drop plan.
func runFaultSweep(a approach, procs int, rate float64, seed int64) (float64, mpi.WorldSummary) {
	var maxEl sim.Duration
	var w *mpi.World
	jitter := func() sim.Duration {
		return sim.Duration(w.Engine().Rand().Int63n(int64(sim.Microseconds(100))))
	}
	body := func(env mpi.Env) {
		el := allToAllWorkload(mpi.KindAcc, jitter)(env)
		if el > maxEl {
			maxEl = el
		}
	}
	plan := &fault.Plan{Seed: seed, DropRate: rate}
	var cfg mpi.Config
	if a.ghosts > 0 {
		ppn := 1 + a.ghosts
		cfg = worldConfig(a.net(), procs*ppn, ppn, a.prog, a.oversub, seed)
	} else {
		cfg = worldConfig(a.net(), procs, 1, a.prog, a.oversub, seed)
	}
	cfg.Fault = plan
	var err error
	w, err = mpi.NewWorld(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	w.Launch(func(r *mpi.Rank) {
		if a.ghosts > 0 {
			p, ghost := core.Init(r, core.Config{NumGhosts: a.ghosts})
			if ghost {
				return
			}
			body(p)
			p.Finalize()
		} else {
			body(r)
		}
	})
	if err := w.Run(); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return maxEl.Millis(), w.Summary()
}
