package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// The overload experiment: a skewed-target GUPS-style workload that
// funnels an increasing share of all XOR-accumulates at one user
// process, so the ghost statically bound to it becomes the node's
// bottleneck while its sibling idles. It demonstrates the three layers
// of the overload-protection stack together:
//
//   - credit-based flow control bounds every ghost's AM queue depth
//     (Credits × #origins) where the unprotected runtime grows its
//     queue with the skew;
//   - the load-aware rebalancer migrates bindings from the hot ghost
//     to the cold one, recovering most of the throughput lost to the
//     skew versus static binding;
//   - the run completes without the stall watchdog firing — livelock
//     or deadlock in the flow-control layer would trip it.

const (
	overloadGhosts  = 2
	overloadUsersPN = 4 // users per node
	overloadNodes   = 2
	overloadCredits = 8
	// The hot pair: user targets 5 and 7 (node 1, local indices 1 and
	// 3), which the static rank binding pins to the SAME ghost — the
	// unlucky collision that funnels the whole skewed load through one
	// progress engine while its sibling idles, and exactly the case a
	// binding migration repairs.
	overloadHotA = 5
	overloadHotB = 7
)

// overloadParams is the workload shape of one run.
type overloadParams struct {
	words      int // table words per user
	updates    int // updates per user
	skew       int // hot-target weight (1 = uniform)
	seed       int64
	flushEvery int
}

func xorshift64(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

func overloadStream(seed int64, rank int) uint64 {
	s := uint64(seed)*2654435761 + uint64(rank)*40503 + 1
	return xorshift64(xorshift64(s))
}

// overloadTarget picks the update's target: each hot user with weight
// skew, every other user with weight 1 (skew 1 is exactly uniform).
func overloadTarget(x uint64, n, skew int) int {
	w := int(x % uint64(2*skew+n-2))
	if w < skew {
		return overloadHotA
	}
	if w < 2*skew {
		return overloadHotB
	}
	t := w - 2*skew
	if t >= overloadHotA {
		t++
	}
	if t >= overloadHotB {
		t++
	}
	return t
}

// overloadMain is the per-user workload body.
func overloadMain(env mpi.Env, p overloadParams, elapsed *sim.Duration) {
	c := env.CommWorld()
	n := c.Size()
	win, _ := env.WinAllocate(c, 8*p.words, mpi.Info{"epochs_used": "lockall"})
	c.Barrier()
	start := env.Now()
	win.LockAll(mpi.AssertNone)
	x := overloadStream(p.seed, c.Rank())
	for i := 0; i < p.updates; i++ {
		x = xorshift64(x)
		t := overloadTarget(x, n, p.skew)
		x = xorshift64(x)
		disp := int(x%uint64(p.words)) * 8
		win.Accumulate(mpi.PutInt64(int64(x)), t, disp, mpi.Scalar(mpi.Int64), mpi.OpBXor)
		if p.flushEvery > 0 && (i+1)%p.flushEvery == 0 {
			win.FlushAll()
		}
	}
	win.UnlockAll()
	c.Barrier()
	if c.Rank() == 0 {
		*elapsed = env.Now().Sub(start)
	}
	win.Free()
}

// overloadExpected replays every user's stream for verification.
func overloadExpected(users int, p overloadParams) []int64 {
	table := make([]int64, users*p.words)
	for r := 0; r < users; r++ {
		x := overloadStream(p.seed, r)
		for i := 0; i < p.updates; i++ {
			x = xorshift64(x)
			t := overloadTarget(x, users, p.skew)
			x = xorshift64(x)
			word := int(x % uint64(p.words))
			table[t*p.words+word] ^= int64(x)
		}
	}
	return table
}

// runOverload executes one configuration and returns the world (for
// counters) and the elapsed workload time.
func runOverload(p overloadParams, seed int64, flow *mpi.FlowConfig,
	overload *core.OverloadConfig) (*mpi.World, sim.Duration) {
	ppn := overloadUsersPN + overloadGhosts
	n := overloadNodes * ppn
	cfg := worldConfig(netmodel.CrayXC30(), n, ppn, mpi.ProgressNone, false, seed)
	cfg.Flow = flow
	ccfg := core.Config{NumGhosts: overloadGhosts, Overload: overload}
	var elapsed sim.Duration
	w := runCasper(cfg, ccfg, func(env mpi.Env) {
		overloadMain(env, p, &elapsed)
	})
	return w, elapsed
}

// overloadGhostPeakDepth returns the maximum AM-pipeline high-water
// mark over the world's ghost ranks.
func overloadGhostPeakDepth(w *mpi.World) int {
	ppn := overloadUsersPN + overloadGhosts
	peak := 0
	ghosts, err := core.GhostRanks(machineFor(overloadNodes*ppn, ppn), overloadNodes*ppn, ppn, overloadGhosts)
	if err != nil {
		panic(err)
	}
	for _, gs := range ghosts {
		for _, g := range gs {
			if d := w.RankByID(g).PeakLoadDepth(); d > peak {
				peak = d
			}
		}
	}
	return peak
}

func overloadParamsFor(o Options, skew int) overloadParams {
	return overloadParams{
		words:      64,
		updates:    o.scaleInt(800, 120),
		skew:       skew,
		seed:       o.Seed,
		flushEvery: 100,
	}
}

// overloadRebalance is the rebalancer tuning of the adaptive runs: a
// short sweep interval so imbalance is detected early in the run, and
// a migrate threshold above the queue-depth noise of the uniform
// workload so only genuine skew triggers moves.
func overloadRebalance() *core.OverloadConfig {
	return &core.OverloadConfig{
		Interval:         5 * sim.Microsecond,
		MigrateThreshold: 5 * sim.Microsecond,
	}
}

func runOverloadExperiment(o Options) *Result {
	o = o.withDefaults()
	skews := []int{1, 4, 16}
	users := overloadNodes * overloadUsersPN
	flow := &mpi.FlowConfig{Credits: overloadCredits}
	creditBound := overloadCredits * users // per-ghost depth bound

	res := &Result{
		ID:     "overload",
		Title:  "Skewed GUPS under overload: static binding vs adaptive rebinding",
		XLabel: "target_skew",
		YLabel: "ms",
		X:      toF(skews),
	}
	static := Series{Name: "Static binding", Y: make([]float64, len(skews))}
	adaptive := Series{Name: "Adaptive rebinding", Y: make([]float64, len(skews))}

	// Each skew point runs a static and an adaptive configuration; one
	// extra point is the unprotected (no flow control) comparison at
	// maximum skew. All are independent worlds, so they run through the
	// sweep harness; only the per-point records below are written
	// concurrently, each to its own slot.
	type cell struct {
		elapsed    sim.Duration
		peak       int
		migrations int64
	}
	staticC := make([]cell, len(skews))
	adaptiveC := make([]cell, len(skews))
	var peakUnbounded int
	o.points(2*len(skews)+1, func(i int) {
		if i == 2*len(skews) {
			// Unprotected comparison point: no flow control at maximum skew.
			wu, _ := runOverload(overloadParamsFor(o, skews[len(skews)-1]), o.Seed, nil, nil)
			peakUnbounded = overloadGhostPeakDepth(wu)
			return
		}
		si, adaptiveRun := i/2, i%2 == 1
		p := overloadParamsFor(o, skews[si])
		if adaptiveRun {
			wa, ea := runOverload(p, o.Seed, flow, overloadRebalance())
			adaptiveC[si] = cell{ea, overloadGhostPeakDepth(wa), overloadMigrations(wa)}
		} else {
			ws, es := runOverload(p, o.Seed, flow, nil)
			staticC[si] = cell{elapsed: es, peak: overloadGhostPeakDepth(ws)}
		}
	})

	var staticT, adaptiveT []sim.Duration
	var peakStatic, peakAdaptive int
	for si := range skews {
		staticT = append(staticT, staticC[si].elapsed)
		adaptiveT = append(adaptiveT, adaptiveC[si].elapsed)
		static.Y[si] = staticC[si].elapsed.Millis()
		adaptive.Y[si] = adaptiveC[si].elapsed.Millis()
		if staticC[si].peak > peakStatic {
			peakStatic = staticC[si].peak
		}
		if adaptiveC[si].peak > peakAdaptive {
			peakAdaptive = adaptiveC[si].peak
		}
	}
	migrations := adaptiveC[len(skews)-1].migrations
	res.Series = []Series{static, adaptive}

	maxI := len(skews) - 1
	gap := staticT[maxI] - staticT[0]
	recovered := staticT[maxI] - adaptiveT[maxI]
	recovery := 0.0
	if gap > 0 {
		recovery = float64(recovered) / float64(gap)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("peak ghost queue depth at %dx skew: unprotected=%d, credit-bounded=%d (bound %d = %d credits x %d origins)",
			skews[maxI], peakUnbounded, peakStatic, creditBound, overloadCredits, users),
		fmt.Sprintf("adaptive rebinding: %d migrations at %dx skew, recovered %.0f%% of the skew-induced slowdown",
			migrations, skews[maxI], 100*recovery),
		"all runs completed without the stall watchdog firing")
	return res
}

// overloadMigrations digs the rebalancer migration count out of a
// finished adaptive world.
func overloadMigrations(w *mpi.World) int64 {
	var out int64
	core.VisitOverloadStats(w, func(s core.OverloadStats) { out = s.Migrations })
	return out
}

func init() {
	register(Experiment{
		ID:     "overload",
		Figure: "robustness",
		Title:  "Skewed-target GUPS: flow control and overload-adaptive ghost rebinding",
		Run:    runOverloadExperiment,
	})
}
