package bench

// TestShardedIdentical* are the identity gate for the sharded engine
// (mpi.Config.Shards): the same experiment, rendered to the same bytes,
// at every shard worker count. The fig5a test covers the scaling family
// (the experiments the option exists for), the stencil test covers a
// Casper world driven directly, and the faultchaos test proves the
// option is an honest no-op where fault plans force the serial
// fallback. All three run under -race in CI — the sharded runs are the
// real multi-goroutine execution, not a simulation of one.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/stencil"
)

func shardCounts() []int { return []int{1, 2, 4} }

func TestShardedIdenticalFig5a(t *testing.T) {
	e, ok := Get("fig5a")
	if !ok {
		t.Fatal("fig5a not registered")
	}
	o := Options{Scale: 0.12, Seed: 42, Parallel: 1}
	base := e.Run(o).CSV()
	for _, s := range shardCounts() {
		so := o
		so.Shards = s
		if got := e.Run(so).CSV(); got != base {
			t.Errorf("fig5a CSV at -shards %d differs from serial:\n--- serial ---\n%s--- shards=%d ---\n%s",
				s, base, s, got)
		}
	}
}

// TestShardedIdenticalStencil drives a Casper stencil world directly —
// the chaos world shape, 2 nodes x (2 users + 2 ghosts) — comparing
// the per-rank result bytes and the full world summary (end time
// included) across engines.
func TestShardedIdenticalStencil(t *testing.T) {
	run := func(shards int) (uint64, mpi.WorldSummary) {
		cfg := worldConfig(netmodel.CrayXC30(), chaosN, chaosPPN, mpi.ProgressNone, false, 42)
		cfg.Shards = shards
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 0 && !w.Sharded() {
			t.Fatalf("shards=%d: world fell back to the serial engine", shards)
		}
		data := make([][]byte, chaosUsers)
		w.Launch(func(r *mpi.Rank) {
			p, ghost := core.Init(r, core.Config{NumGhosts: chaosGhosts})
			if ghost {
				return
			}
			res := stencil.Run(p, stencil.Params{N: 18, Iterations: 60})
			data[p.Rank()] = mpi.PutFloat64s(res.Local)
			p.Finalize()
		})
		if err := w.Run(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return chaosSig(data), w.Summary()
	}
	sig, sum := run(0)
	sum.PeakQueueResidency = 0
	for _, s := range shardCounts() {
		gsig, gsum := run(s)
		// Sharding splits the event working set across engines, so the
		// scheduler-occupancy gauge is the one field allowed to differ.
		gsum.PeakQueueResidency = 0
		if gsig != sig {
			t.Errorf("stencil data sig at shards=%d: %016x want %016x", s, gsig, sig)
		}
		if gsum != sum {
			t.Errorf("stencil summary at shards=%d:\n got %v\nwant %v", s, gsum, sum)
		}
	}
}

// TestShardedIdenticalFaultChaos runs a seed subset of the chaos sweep
// with Shards set. Chaos worlds always set Config.Validate (and most
// carry fault plans), so every one of them must silently fall back to
// the serial engine — the sweep's rendered output and pass/fail flag
// must not move at any shard count.
func TestShardedIdenticalFaultChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	e, ok := Get("faultchaos")
	if !ok {
		t.Fatal("faultchaos not registered")
	}
	o := Options{Scale: 0.04, Seed: 42, Parallel: 1} // 8-seed subset
	base := e.Run(o)
	if base.Failed {
		t.Fatal("serial chaos subset failed; fix that before comparing engines")
	}
	for _, s := range shardCounts() {
		so := o
		so.Shards = s
		got := e.Run(so)
		if got.Failed {
			t.Errorf("chaos subset failed at shards=%d", s)
		}
		if got.CSV() != base.CSV() {
			t.Errorf("chaos CSV at shards=%d differs from serial:\n--- serial ---\n%s--- shards=%d ---\n%s",
				s, base.CSV(), s, got.CSV())
		}
	}
}
