package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/tce"
)

func tceDeployments() []tce.Deployment { return tce.Deployments(coresPerNode) }

// runNWChem measures one deployment at one node count.
func runNWChem(d tce.Deployment, nodes int, p tce.Params, seed int64) float64 {
	var maxEl sim.Duration
	body := func(env mpi.Env) {
		res := tce.Run(env, p)
		if res.Elapsed > maxEl {
			maxEl = res.Elapsed
		}
	}
	cfg := worldConfig(netmodel.CrayXC30(), nodes*d.PPN, d.PPN, d.Progress, d.Oversub, seed)
	if d.Ghosts > 0 {
		runCasper(cfg, core.Config{NumGhosts: d.Ghosts}, body)
	} else {
		runPlain(cfg, body)
	}
	return maxEl.Millis()
}

// tceParamsFor sizes the task grid so each configuration has roughly
// tasksPerCore tasks per computing core at the largest node count —
// fixed total work across deployments (strong scaling).
func tceParamsFor(nodes, tileSize int, phase tce.Phase) tce.Params {
	cores := nodes * coresPerNode
	tiles := int(math.Ceil(math.Sqrt(float64(3 * cores))))
	return tce.Params{TilesPerDim: tiles, TileSize: tileSize, Phase: phase}
}

func nwchemExperiment(id, figure, title string, tileSize int, phase tce.Phase) {
	register(Experiment{
		ID:     id,
		Figure: figure,
		Title:  title,
		Run: func(o Options) *Result {
			o = o.withDefaults()
			maxNodes := o.scaleInt(8, 2)
			var nodeCounts []int
			for n := 2; n <= maxNodes; n *= 2 {
				nodeCounts = append(nodeCounts, n)
			}
			res := &Result{
				ID: id, Title: title,
				XLabel: "total_cores", YLabel: "ms",
				Notes: []string{
					fmt.Sprintf("tile %dx%d doubles, %v phase; Table I core deployments",
						tileSize, tileSize, phase),
				},
			}
			for _, n := range nodeCounts {
				res.X = append(res.X, float64(n*coresPerNode))
			}
			deps := tceDeployments()
			series := make([]Series, len(deps))
			for di, d := range deps {
				series[di] = Series{Name: d.Name, Y: make([]float64, len(nodeCounts))}
			}
			o.grid(len(deps), len(nodeCounts), func(di, ni int) {
				p := tceParamsFor(nodeCounts[ni], tileSize, phase)
				series[di].Y[ni] = runNWChem(deps[di], nodeCounts[ni], p, o.Seed)
			})
			res.Series = series
			return res
		},
	})
}

func init() {
	// Fig. 8(a): CCSD iteration for the W16/pVDZ-like problem —
	// moderate tiles, communication-intensive.
	nwchemExperiment("fig8a", "Fig. 8(a)",
		"CCSD iteration, W16-like problem", 48, tce.PhaseCCSD)
	// Fig. 8(b): CCSD for the C20/pVTZ-like problem — larger tiles.
	nwchemExperiment("fig8b", "Fig. 8(b)",
		"CCSD iteration, C20-like problem", 64, tce.PhaseCCSD)
	// Fig. 8(c): the (T) portion — compute-dominant, where async
	// progress matters most.
	nwchemExperiment("fig8c", "Fig. 8(c)",
		"(T) portion of CCSD(T), C20-like problem", 24, tce.PhaseTriples)
}
