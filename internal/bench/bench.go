// Package bench contains the experiment harness: one named experiment
// per table and figure of the paper's evaluation (Section IV), each
// regenerating the corresponding rows/series from the simulated
// platforms. The cmd/casperbench CLI and the repository-root
// testing.B benchmarks both drive this registry.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Options tunes an experiment run.
type Options struct {
	// Scale shrinks sweep endpoints for quick runs: 1.0 reproduces the
	// experiment at the default (paper-shaped, simulation-sized)
	// sweep; smaller values shrink it further. Zero means 1.0.
	Scale float64
	// Seed for the simulation RNG.
	Seed int64
	// Parallel is the number of worker goroutines used to run
	// independent sweep points concurrently (see parallel.go). Each
	// point is a self-contained deterministic simulation, so results
	// are bit-identical at any setting. <= 1 runs serially.
	Parallel int
	// ChaosSeed, when positive, restricts the faultchaos experiment to
	// that single seed and reports its schedule and outcome verbosely —
	// the one-command replay for a failing seed. Zero runs the full
	// sweep. Ignored by every other experiment.
	ChaosSeed int64
	// Shards > 0 requests sharded simulation execution (one engine per
	// node, up to Shards worker goroutines; see mpi.Config.Shards) for
	// the experiments that thread it through — currently the fig5
	// scaling family and faultchaos (where fault plans fall back to the
	// serial engine, making the option an honest no-op). Output is
	// identical at any setting, including 0 (serial).
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// scaleInt shrinks a sweep endpoint by Scale, keeping at least lo.
func (o Options) scaleInt(v, lo int) int {
	s := int(float64(v) * o.Scale)
	if s < lo {
		return lo
	}
	return s
}

// Series is one line of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Result is the regenerated data of one table/figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	Notes  []string
	// Recovery carries one-line recovery summaries for runs where a
	// fault plan actually acted (failovers, successions, reclaimed
	// locks). casperbench prints these to stderr so stdout tables stay
	// byte-identical to fault-free-era output.
	Recovery []string
	// Failed marks an invariant violation (chaos seeds that broke
	// bit-identity, validator cleanliness, or completion). casperbench
	// exits nonzero when set.
	Failed bool
}

// Experiment is one registered reproduction target.
type Experiment struct {
	ID     string
	Figure string // which paper artifact it regenerates
	Title  string
	Run    func(o Options) *Result
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get looks up an experiment by ID.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	fmt.Fprintf(&b, "%-14s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %18s", s.Name)
	}
	fmt.Fprintf(&b, "   (%s)\n", r.YLabel)
	for i, x := range r.X {
		fmt.Fprintf(&b, "%-14g", x)
		for _, s := range r.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %18.3f", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the result as comma-separated values.
func (r *Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, ",%s", s.Name)
	}
	b.WriteByte('\n')
	for i, x := range r.X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range r.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, ",%g", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SeriesByName returns the named series.
func (r *Result) SeriesByName(name string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// --- world-building helpers -------------------------------------------

// edisonNode mirrors the paper's Cray XC30 nodes: 24 cores, 2 NUMA
// domains.
const (
	coresPerNode = 24
	numaPerNode  = 2
)

func machineFor(n, ppn int) cluster.Machine {
	nodes := (n + ppn - 1) / ppn
	return cluster.Machine{Nodes: nodes, CoresPerNode: coresPerNode, NUMAPerNode: numaPerNode}
}

// sched is the event scheduler every world built by this package uses.
// The zero value is the ladder queue (the default everywhere); the
// casperbench -sched flag flips it to the heap oracle for differential
// runs. Experiment output is byte-identical either way — the flag
// exists so that identity is checkable, not because the choice matters
// to results.
var sched sim.SchedulerKind

// SetScheduler selects the event scheduler for all subsequently built
// worlds. Call once at startup, before any experiment runs.
func SetScheduler(k sim.SchedulerKind) { sched = k }

// Scheduler returns the scheduler selected by SetScheduler.
func Scheduler() sim.SchedulerKind { return sched }

// worldConfig assembles an mpi.Config. It is the single assembly point
// for every world the bench experiments build, so process-wide knobs
// (the scheduler choice) apply here.
func worldConfig(net *netmodel.Params, n, ppn int, prog mpi.ProgressMode,
	oversub bool, seed int64) mpi.Config {
	return mpi.Config{
		Machine:              machineFor(n, ppn),
		N:                    n,
		PPN:                  ppn,
		Net:                  net,
		Seed:                 seed,
		Progress:             prog,
		Sched:                sched,
		ThreadOversubscribed: oversub,
	}
}

// runPlain runs main on a plain MPI world and returns the world.
func runPlain(cfg mpi.Config, main func(env mpi.Env)) *mpi.World {
	w, err := mpi.Run(cfg, func(r *mpi.Rank) { main(r) })
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return w
}

// runCasper runs main on the user processes of a Casper world.
func runCasper(cfg mpi.Config, ccfg core.Config, main func(env mpi.Env)) *mpi.World {
	w, err := mpi.Run(cfg, func(r *mpi.Rank) {
		p, ghost := core.Init(r, ccfg)
		if ghost {
			return
		}
		main(p)
		p.Finalize()
	})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return w
}

// pow2Sweep returns powers of two from lo to hi inclusive.
func pow2Sweep(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v *= 2 {
		out = append(out, v)
	}
	return out
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}
