package bench

import (
	"strings"
	"testing"
)

// tiny returns fast options for shape tests.
func tiny() Options { return Options{Scale: 0.12, Seed: 42} }

func mustSeries(t *testing.T, r *Result, name string) []float64 {
	t.Helper()
	s, ok := r.SeriesByName(name)
	if !ok {
		var names []string
		for _, ss := range r.Series {
			names = append(names, ss.Name)
		}
		t.Fatalf("series %q missing (have %v)", name, names)
	}
	if len(s.Y) != len(r.X) {
		t.Fatalf("series %q has %d points for %d xs", name, len(s.Y), len(r.X))
	}
	return s.Y
}

func last(ys []float64) float64 { return ys[len(ys)-1] }

func runExp(t *testing.T, id string, o Options) *Result {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res := e.Run(o)
	if len(res.X) == 0 || len(res.Series) == 0 {
		t.Fatalf("%s: empty result", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"abl1", "abl2", "abl3",
		"faultapp", "faultchaos", "faultrecover", "faultsweep", "faultzero",
		"fig3a", "fig3b", "fig4a", "fig4b", "fig4c",
		"fig5a", "fig5b", "fig5c",
		"fig6a", "fig6b", "fig6c",
		"fig7a", "fig7b", "fig7c",
		"fig8a", "fig8b", "fig8c", "overload", "tab1",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Figure == "" || all[i].Title == "" || all[i].Run == nil {
			t.Fatalf("%s: incomplete registration", id)
		}
	}
	if _, ok := Get("nonsense"); ok {
		t.Fatal("Get accepted unknown id")
	}
}

func TestFig3aShape(t *testing.T) {
	r := runExp(t, "fig3a", tiny())
	orig := mustSeries(t, r, "Original MPI")
	def := mustSeries(t, r, "Casper (default)")
	lock := mustSeries(t, r, "Casper (lock)")
	lockall := mustSeries(t, r, "Casper (lockall)")
	fence := mustSeries(t, r, "Casper (fence)")
	i := len(r.X) - 1
	if !(orig[i] < lockall[i] && lockall[i] < lock[i] && lock[i] < def[i]) {
		t.Fatalf("cost ordering violated: orig=%v lockall=%v lock=%v default=%v",
			orig[i], lockall[i], lock[i], def[i])
	}
	if fence[i] != lockall[i] {
		t.Fatalf("fence hint (%v) should equal lockall hint (%v): one active window each",
			fence[i], lockall[i])
	}
	// Original grows with local process count.
	if orig[i] <= orig[0] {
		t.Fatal("original allocation cost not growing")
	}
}

func TestFig3bOverheadAmortizes(t *testing.T) {
	r := runExp(t, "fig3b", tiny())
	ov := mustSeries(t, r, "Fence overhead %")
	if ov[0] <= ov[len(ov)-1] {
		t.Fatalf("fence overhead should decline with ops: %v", ov)
	}
	if ov[0] < 20 {
		t.Fatalf("small-op fence overhead should be large, got %v%%", ov[0])
	}
	cf := mustSeries(t, r, "Casper Fence")
	of := mustSeries(t, r, "Original Fence")
	for i := range cf {
		if cf[i] < of[i] {
			t.Fatalf("casper fence cheaper than original at %v ops", r.X[i])
		}
	}
}

func TestFig4aShape(t *testing.T) {
	r := runExp(t, "fig4a", Options{Scale: 1, Seed: 42})
	orig := mustSeries(t, r, "Original MPI")
	casper := mustSeries(t, r, "Casper")
	thread := mustSeries(t, r, "Thread")
	dmapp := mustSeries(t, r, "DMAPP")
	if last(orig) < 100 {
		t.Fatalf("original should stall ~128us at the end, got %v", last(orig))
	}
	if last(casper) > 20 {
		t.Fatalf("casper stalled: %v", last(casper))
	}
	// Casper is the cheapest async approach.
	if !(last(casper) < last(thread) && last(casper) < last(dmapp)) {
		t.Fatalf("casper not cheapest: c=%v t=%v d=%v", last(casper), last(thread), last(dmapp))
	}
}

func TestFig4bImprovementPeaksAndDecays(t *testing.T) {
	r := runExp(t, "fig4b", Options{Scale: 1, Seed: 42})
	imp := mustSeries(t, r, "Casper improvement %")
	peak, peakIdx := 0.0, 0
	for i, v := range imp {
		if v > peak {
			peak, peakIdx = v, i
		}
	}
	if peak < 20 {
		t.Fatalf("peak improvement %v%% too small", peak)
	}
	if peakIdx == len(imp)-1 {
		t.Fatal("improvement should decay after the crossover (~128 ops)")
	}
	if last(imp) >= peak {
		t.Fatal("no decay at the end")
	}
}

func TestFig4cInterruptsLinear(t *testing.T) {
	r := runExp(t, "fig4c", tiny())
	ints := mustSeries(t, r, "System interrupts")
	for i, x := range r.X {
		if ints[i] != x {
			t.Fatalf("interrupts[%d] = %v, want %v (one per accumulate)", i, ints[i], x)
		}
	}
	dmapp := mustSeries(t, r, "DMAPP")
	casper := mustSeries(t, r, "Casper")
	orig := mustSeries(t, r, "Original MPI")
	if last(dmapp) <= last(casper) {
		t.Fatal("DMAPP interrupt path should cost more than casper")
	}
	if last(orig) < 4000 {
		t.Fatalf("original should stall behind the 5ms dgemm, got %v", last(orig))
	}
}

func TestFig5aCasperWins(t *testing.T) {
	r := runExp(t, "fig5a", tiny())
	orig := mustSeries(t, r, "Original MPI")
	casper := mustSeries(t, r, "Casper")
	thread := mustSeries(t, r, "Thread")
	if last(casper) >= last(orig) {
		t.Fatalf("casper %v not better than original %v", last(casper), last(orig))
	}
	if last(thread) <= last(casper) {
		t.Fatal("thread should be more expensive than casper")
	}
}

func TestFig5bCasperMatchesHardware(t *testing.T) {
	r := runExp(t, "fig5b", tiny())
	casper := mustSeries(t, r, "Casper")
	dmapp := mustSeries(t, r, "DMAPP")
	orig := mustSeries(t, r, "Original MPI")
	// Hardware put/get: Casper within 15% of DMAPP (Section IV-B-2).
	ratio := last(casper) / last(dmapp)
	if ratio > 1.15 || ratio < 0.85 {
		t.Fatalf("casper/dmapp put ratio = %v, want ~1", ratio)
	}
	if last(orig) <= last(casper) {
		t.Fatal("software-put original should be slower")
	}
}

func TestFig5cCasperWinsOnFusion(t *testing.T) {
	r := runExp(t, "fig5c", tiny())
	if last(mustSeries(t, r, "Casper")) >= last(mustSeries(t, r, "Original MPI")) {
		t.Fatal("casper should win accumulate scaling on Fusion")
	}
}

func TestFig6MoreGhostsServeMoreLoad(t *testing.T) {
	for _, id := range []string{"fig6b", "fig6c"} {
		r := runExp(t, id, tiny())
		g2 := mustSeries(t, r, "Casper (2 Ghosts)")
		g8 := mustSeries(t, r, "Casper (8 Ghosts)")
		if last(g8) >= last(g2) {
			t.Fatalf("%s: 8 ghosts (%v) not faster than 2 (%v) at peak load",
				id, last(g8), last(g2))
		}
		sp := mustSeries(t, r, "Speedup (8G vs 2G)")
		if last(sp) < 1.2 {
			t.Fatalf("%s: 8G speedup %v too small", id, last(sp))
		}
	}
}

func TestFig6aGhostScaling(t *testing.T) {
	r := runExp(t, "fig6a", tiny())
	g2 := mustSeries(t, r, "Casper (2 Ghosts)")
	g8 := mustSeries(t, r, "Casper (8 Ghosts)")
	if last(g8) > last(g2) {
		t.Fatalf("8 ghosts (%v) worse than 2 (%v)", last(g8), last(g2))
	}
}

func TestFig7aRandomBeatsStatic(t *testing.T) {
	r := runExp(t, "fig7a", tiny())
	random := mustSeries(t, r, "Random")
	static := mustSeries(t, r, "Static")
	if last(random) >= last(static) {
		t.Fatalf("random (%v) not better than static (%v) under uneven puts",
			last(random), last(static))
	}
	sp := mustSeries(t, r, "Random/Static speedup")
	if last(sp) < 1.2 {
		t.Fatalf("random speedup %v too small", last(sp))
	}
}

func TestFig7bOpCountingBeatsRandom(t *testing.T) {
	r := runExp(t, "fig7b", tiny())
	opc := mustSeries(t, r, "OP-counting")
	random := mustSeries(t, r, "Random")
	if last(opc) >= last(random) {
		t.Fatalf("op-counting (%v) not better than random (%v) with mixed put/acc",
			last(opc), last(random))
	}
}

func TestFig7cByteCountingBeatsOpCounting(t *testing.T) {
	r := runExp(t, "fig7c", tiny())
	byc := mustSeries(t, r, "Byte-counting")
	opc := mustSeries(t, r, "OP-counting")
	random := mustSeries(t, r, "Random")
	if last(byc) >= last(opc) || last(byc) >= last(random) {
		t.Fatalf("byte-counting (%v) should beat op-counting (%v) and random (%v) on uneven sizes",
			last(byc), last(opc), last(random))
	}
}

func TestFig8CasperBeatsOriginal(t *testing.T) {
	for _, id := range []string{"fig8b", "fig8c"} {
		r := runExp(t, id, tiny())
		casper := mustSeries(t, r, "Casper")
		orig := mustSeries(t, r, "Original MPI")
		if last(casper) >= last(orig) {
			t.Fatalf("%s: casper (%v) not faster than original (%v)", id, last(casper), last(orig))
		}
	}
}

func TestFig8cThreadsLessEffective(t *testing.T) {
	r := runExp(t, "fig8c", tiny())
	casper := mustSeries(t, r, "Casper")
	to := mustSeries(t, r, "Thread(O)")
	td := mustSeries(t, r, "Thread(D)")
	if last(to) <= last(casper) || last(td) <= last(casper) {
		t.Fatalf("threads should be less effective than casper: c=%v to=%v td=%v",
			last(casper), last(to), last(td))
	}
}

func TestTab1Deployments(t *testing.T) {
	r := runExp(t, "tab1", tiny())
	comp := mustSeries(t, r, "Computing cores")
	async := mustSeries(t, r, "Async cores")
	want := [][2]float64{{24, 0}, {20, 4}, {24, 0}, {12, 12}}
	for i, w := range want {
		if comp[i] != w[0] || async[i] != w[1] {
			t.Fatalf("row %d: %v/%v, want %v", i, comp[i], async[i], w)
		}
	}
}

func TestAbl1OverlappingWindowsAvoidSerialization(t *testing.T) {
	r := runExp(t, "abl1", tiny())
	factor := mustSeries(t, r, "Serialization factor")
	if last(factor) <= 1.05 {
		t.Fatalf("shared window showed no serialization: %v", factor)
	}
	if factor[0] > 1.05 {
		t.Fatalf("single origin should not serialize: %v", factor[0])
	}
}

func TestAbl2LazyWinsForEmptyEpochs(t *testing.T) {
	r := runExp(t, "abl2", tiny())
	lazy := mustSeries(t, r, "Lazy acquisition")
	eager := mustSeries(t, r, "Eager acquisition")
	if lazy[0] >= eager[0] { // x = 0 ops
		t.Fatalf("lazy (%v) should beat eager (%v) on op-free epochs", lazy[0], eager[0])
	}
}

func TestAbl3SelfLocalFaster(t *testing.T) {
	r := runExp(t, "abl3", tiny())
	sp := mustSeries(t, r, "Speedup")
	if sp[0] < 2 {
		t.Fatalf("small self ops should be much faster locally: %v", sp[0])
	}
	if last(sp) >= sp[0] {
		t.Fatal("speedup should shrink as memcpy dominates")
	}
}

func TestResultFormatting(t *testing.T) {
	r := &Result{
		ID: "x", Title: "t", XLabel: "n", YLabel: "us",
		X:      []float64{1, 2},
		Series: []Series{{Name: "a", Y: []float64{1.5, 2.5}}, {Name: "b", Y: []float64{3}}},
		Notes:  []string{"note"},
	}
	tbl := r.Table()
	for _, want := range []string{"# x — t", "# note", "a", "b", "1.500", "-"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "n,a,b\n1,1.5,3\n2,2.5,\n") {
		t.Fatalf("csv = %q", csv)
	}
	if _, ok := r.SeriesByName("nope"); ok {
		t.Fatal("SeriesByName found nonexistent")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Seed != 42 {
		t.Fatalf("defaults: %+v", o)
	}
	if (Options{Scale: 0.01}).withDefaults().scaleInt(100, 10) != 10 {
		t.Fatal("scaleInt floor")
	}
	if (Options{Scale: 0.5}).withDefaults().scaleInt(100, 10) != 50 {
		t.Fatal("scaleInt half")
	}
}

func TestPow2Sweep(t *testing.T) {
	got := pow2Sweep(2, 16)
	want := []int{2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v", got)
		}
	}
}
