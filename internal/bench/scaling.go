package bench

import (
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// allToAllWorkload is the Section IV-B-2 pattern: every process
// communicates with all others in iterated communication–computation–
// communication cycles — one double-sized RMA op to each peer, ~100 us
// of computation, then ten ops to each peer, then a flush that needs
// remote completion at every peer.
//
// The computation length carries deterministic per-rank jitter. On a
// real machine system noise staggers the ranks' phases the same way;
// the stagger is what exposes the progress problem: a rank's flush
// waits on peers that are still inside their compute phase, unless an
// asynchronous progress entity services the operations meanwhile.
func allToAllWorkload(kind mpi.OpKind, jitter func() sim.Duration) func(env mpi.Env) sim.Duration {
	const iterations = 5
	return func(env mpi.Env) sim.Duration {
		c := env.CommWorld()
		win, _ := env.WinAllocate(c, 64, nil)
		c.Barrier()
		start := env.Now()
		one := mpi.PutFloat64s([]float64{1})
		issue := func(t int) {
			if kind == mpi.KindPut {
				win.Put(one, t, 0, mpi.Scalar(mpi.Float64))
			} else {
				win.Accumulate(one, t, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
			}
		}
		win.LockAll(mpi.AssertNone)
		for iter := 0; iter < iterations; iter++ {
			for t := 0; t < env.Size(); t++ {
				if t != env.Rank() {
					issue(t)
				}
			}
			env.Compute(sim.Microseconds(100) + jitter())
			for i := 0; i < 10; i++ {
				for t := 0; t < env.Size(); t++ {
					if t != env.Rank() {
						issue(t)
					}
				}
			}
			win.FlushAll()
		}
		win.UnlockAll()
		c.Barrier()
		return env.Now().Sub(start)
	}
}

// runScaling measures the all-to-all workload for one approach at one
// process count (ppn = 1 user process per node, as in the paper).
// shards > 0 runs the simulation on the sharded engine (see
// mpi.Config.Shards); the result is identical at any value.
func runScaling(a approach, kind mpi.OpKind, procs int, seed int64, shards int) float64 {
	// Rank bodies run on different shard engines concurrently; the
	// reduction below is the only cross-rank state they touch.
	var mu sync.Mutex
	var maxEl sim.Duration
	body := func(env mpi.Env) {
		// The compute jitter is a per-rank stream seeded from (seed,
		// rank), independent of the simulation engine's RNG: the draws —
		// and therefore the measured times — are identical on the serial
		// and sharded engines, for any shard worker count.
		rng := rand.New(rand.NewSource(seed + 0x9E3779B9*int64(env.Rank()+1)))
		jitter := func() sim.Duration {
			return sim.Duration(rng.Int63n(int64(sim.Microseconds(100))))
		}
		el := allToAllWorkload(kind, jitter)(env)
		mu.Lock()
		if el > maxEl {
			maxEl = el
		}
		mu.Unlock()
	}
	if a.ghosts > 0 {
		ppn := 1 + a.ghosts
		cfg := worldConfig(a.net(), procs*ppn, ppn, a.prog, a.oversub, seed)
		cfg.Shards = shards
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			panic(err)
		}
		w.Launch(func(r *mpi.Rank) {
			p, ghost := core.Init(r, core.Config{NumGhosts: a.ghosts})
			if ghost {
				return
			}
			body(p)
			p.Finalize()
		})
		if err := w.Run(); err != nil {
			panic(err)
		}
	} else {
		cfg := worldConfig(a.net(), procs, 1, a.prog, a.oversub, seed)
		cfg.Shards = shards
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			panic(err)
		}
		w.Launch(func(r *mpi.Rank) { body(r) })
		if err := w.Run(); err != nil {
			panic(err)
		}
	}
	return maxEl.Millis()
}

func scalingExperiment(id, figure, title string, kind mpi.OpKind,
	approaches func() []approach) {
	register(Experiment{
		ID:     id,
		Figure: figure,
		Title:  title,
		Run: func(o Options) *Result {
			o = o.withDefaults()
			procs := pow2Sweep(2, o.scaleInt(128, 16))
			res := &Result{
				ID: id, Title: title,
				XLabel: "processes_ppn1", YLabel: "ms",
			}
			res.X = toF(procs)
			as := approaches()
			series := make([]Series, len(as))
			for ai, a := range as {
				series[ai] = Series{Name: a.name, Y: make([]float64, len(procs))}
			}
			o.grid(len(as), len(procs), func(ai, pi int) {
				series[ai].Y[pi] = runScaling(as[ai], kind, procs[pi], o.Seed, o.Shards)
			})
			res.Series = series
			return res
		},
	})
}

func init() {
	// Fig. 5(a): accumulate on the regular XC30 — all software.
	scalingExperiment("fig5a", "Fig. 5(a)",
		"Accumulate scaling on Cray XC30", mpi.KindAcc,
		func() []approach {
			return []approach{origMPI(), threadAp(), dmappAp(), casperAp(1)}
		})
	// Fig. 5(b): put — DMAPP and Casper ride hardware RMA.
	scalingExperiment("fig5b", "Fig. 5(b)",
		"Put scaling on Cray XC30", mpi.KindPut,
		func() []approach {
			casperHW := approach{name: "Casper", net: netmodel.CrayXC30DMAPP,
				prog: mpi.ProgressNone, ghosts: 1}
			return []approach{origMPI(), threadAp(), dmappAp(), casperHW}
		})
	// Fig. 5(c): accumulate on Fusion with MVAPICH.
	scalingExperiment("fig5c", "Fig. 5(c)",
		"Accumulate scaling on Fusion (MVAPICH)", mpi.KindAcc,
		func() []approach {
			return []approach{
				{name: "Original MPI", net: netmodel.FusionMVAPICH, prog: mpi.ProgressNone},
				{name: "Thread", net: netmodel.FusionMVAPICH, prog: mpi.ProgressThread},
				{name: "Casper", net: netmodel.FusionMVAPICH, prog: mpi.ProgressNone, ghosts: 1},
			}
		})
}
