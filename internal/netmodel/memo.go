package netmodel

import "repro/internal/sim"

// Locality classifies the placement relationship between two ranks, the
// first half of the (srcNode, dstNode) part of a latency lookup. Ranks
// cache the class per destination so the placement arithmetic runs once
// per pair instead of once per message.
type Locality uint8

// Locality classes.
const (
	LocInter    Locality = iota // different nodes
	LocIntra                    // same node, same NUMA domain
	LocIntraFar                 // same node, across NUMA domains
	numLocality
)

// LocalityOf folds the two placement booleans into a Locality.
func LocalityOf(sameNode, sameNUMA bool) Locality {
	if !sameNode {
		return LocInter
	}
	if sameNUMA {
		return LocIntra
	}
	return LocIntraFar
}

// latCache is a tiny direct-mapped cache from message size to cost.
// RMA traffic uses a handful of distinct sizes (element payloads,
// 16-byte headers, the occasional large transfer), so even 8 slots hit
// almost always; a collision just recomputes. Slot 0 doubles as the
// "unset" state via the ok flag, so a zero-size entry works too.
type latCache [8]struct {
	n  int
	d  sim.Duration
	ok bool
}

func (c *latCache) slot(n int) *struct {
	n  int
	d  sim.Duration
	ok bool
} {
	return &c[(uint(n)>>3)&7]
}

// Memo wraps a Params with per-(locality, size) caches of the transfer
// and AM-cost computations, which the simulator otherwise redoes for
// every message. A Memo is NOT safe for concurrent use: each simulated
// world owns one (worlds in a parallel sweep never share state).
type Memo struct {
	p    *Params
	xfer [numLocality]latCache
	am   [2]latCache // index 1 = noncontiguous
	la   sim.Duration
	laOK bool
}

// NewMemo returns a memoizing view of p.
func NewMemo(p *Params) *Memo { return &Memo{p: p} }

// Params returns the underlying cost model.
func (m *Memo) Params() *Params { return m.p }

// Transfer is Params.Transfer with memoization.
func (m *Memo) Transfer(sameNode, sameNUMA bool, n int) sim.Duration {
	return m.TransferLoc(LocalityOf(sameNode, sameNUMA), n)
}

// TransferLoc returns the wire time for n bytes at the given locality.
func (m *Memo) TransferLoc(loc Locality, n int) sim.Duration {
	s := m.xfer[loc].slot(n)
	if s.ok && s.n == n {
		return s.d
	}
	var d sim.Duration
	switch loc {
	case LocInter:
		d = m.p.Transfer(false, false, n)
	case LocIntra:
		d = m.p.Transfer(true, true, n)
	default:
		d = m.p.Transfer(true, false, n)
	}
	s.n, s.d, s.ok = n, d, true
	return d
}

// AMCost is Params.AMCost with memoization.
func (m *Memo) AMCost(n int, contiguous bool) sim.Duration {
	idx := 0
	if !contiguous {
		idx = 1
	}
	s := m.am[idx].slot(n)
	if s.ok && s.n == n {
		return s.d
	}
	d := m.p.AMCost(n, contiguous)
	s.n, s.d, s.ok = n, d, true
	return d
}
