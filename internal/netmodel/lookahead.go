package netmodel

import "repro/internal/sim"

// Lookahead returns the conservative parallel-simulation lookahead for
// this platform: a lower bound on how far in the future any cross-node
// interaction scheduled "now" can take effect. It is the minimum over
// every off-node delivery path — wire transfer and software active
// message, contiguous or packed — evaluated at zero payload bytes.
// Both cost families are monotone non-decreasing in the byte count (all
// per-byte coefficients are validated >= 0), so the zero-byte cost is
// the true minimum.
//
// A sharded simulation that only ever schedules cross-shard events at
// least Lookahead into the future may execute shards independently
// inside a window of that width without reordering anything
// observable; see sim.ShardGroup.
func (p *Params) Lookahead() sim.Duration {
	la := p.Transfer(false, false, 0)
	if am := p.AMCost(0, true); am < la {
		la = am
	}
	if am := p.AMCost(0, false); am < la {
		la = am
	}
	return la
}

// Lookahead is Params.Lookahead memoized on the world's Memo, so the
// per-window horizon computation never re-derives it.
func (m *Memo) Lookahead() sim.Duration {
	if !m.laOK {
		m.la = m.p.Lookahead()
		m.laOK = true
	}
	return m.la
}
