package netmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPresetsValidate(t *testing.T) {
	for name, p := range Presets() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("preset key %q != Name %q", name, p.Name)
		}
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	bad := []*Params{
		{Name: "neg-lat", InterLatency: -1, ThreadSafety: 1, ThreadAM: 1},
		{Name: "neg-byte", InterPerByte: -0.1, ThreadSafety: 1, ThreadAM: 1},
		{Name: "thread-lt-1", ThreadSafety: 0.5, ThreadAM: 1},
		{Name: "am-lt-1", ThreadSafety: 1, ThreadAM: 0.2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: no error", p.Name)
		}
	}
}

func TestTransferLocalityOrdering(t *testing.T) {
	p := CrayXC30()
	n := 4096
	sameNUMA := p.Transfer(true, true, n)
	crossNUMA := p.Transfer(true, false, n)
	interNode := p.Transfer(false, false, n)
	if !(sameNUMA < crossNUMA && crossNUMA < interNode) {
		t.Fatalf("locality ordering violated: %v %v %v", sameNUMA, crossNUMA, interNode)
	}
}

func TestTransferScalesWithSize(t *testing.T) {
	p := CrayXC30()
	small := p.Transfer(false, false, 8)
	big := p.Transfer(false, false, 1<<20)
	if big <= small {
		t.Fatalf("transfer not size-sensitive: %v vs %v", small, big)
	}
	// Zero bytes still pays latency.
	if p.Transfer(false, false, 0) != p.InterLatency {
		t.Fatal("zero-byte transfer should cost exactly the latency")
	}
}

func TestAMCostNoncontiguousSurcharge(t *testing.T) {
	p := CrayXC30()
	c := p.AMCost(1024, true)
	nc := p.AMCost(1024, false)
	if nc <= c {
		t.Fatalf("noncontiguous AM not more expensive: %v vs %v", nc, c)
	}
	want := c + sim.Duration(1024*p.PackPerByte)
	if nc != want {
		t.Fatalf("surcharge = %v, want %v", nc, want)
	}
}

func TestWindowCostsScaleWithRanks(t *testing.T) {
	p := CrayXC30()
	if p.AllocWinCost(22) <= p.AllocWinCost(2) {
		t.Error("alloc cost not rank-sensitive")
	}
	if p.CreateWinCost(22) <= p.CreateWinCost(2) {
		t.Error("create cost not rank-sensitive")
	}
	// Re-exposing existing memory must be much cheaper than allocating:
	// Casper's overlapping windows rely on this (Section III-A).
	if p.CreateWinCost(22) >= p.AllocWinCost(22) {
		t.Error("WIN_CREATE should be cheaper than WIN_ALLOCATE")
	}
}

func TestHardwareEligibility(t *testing.T) {
	soft := CrayXC30()
	hw := CrayXC30DMAPP()
	if soft.HardwareEligible(true) {
		t.Error("regular XC30 must have no hardware RMA")
	}
	if !hw.HardwareEligible(true) {
		t.Error("DMAPP contiguous put/get must be hardware")
	}
	if hw.HardwareEligible(false) {
		t.Error("noncontiguous must never be hardware")
	}
	if !FusionMVAPICH().HardwareEligible(true) {
		t.Error("MVAPICH contiguous put/get must be hardware")
	}
}

func TestPlatformRelativeCosts(t *testing.T) {
	cray, fusion := CrayXC30(), FusionMVAPICH()
	// InfiniBand QDR has higher latency and lower bandwidth than Aries.
	if fusion.InterLatency <= cray.InterLatency {
		t.Error("Fusion latency should exceed XC30")
	}
	if fusion.InterPerByte <= cray.InterPerByte {
		t.Error("Fusion per-byte cost should exceed XC30")
	}
}

// Property: transfer time is monotone in message size for all localities.
func TestTransferMonotoneProperty(t *testing.T) {
	p := FusionMVAPICH()
	f := func(a, b uint32, sameNode, sameNUMA bool) bool {
		x, y := int(a%1<<22), int(b%1<<22)
		if x > y {
			x, y = y, x
		}
		return p.Transfer(sameNode, sameNUMA, x) <= p.Transfer(sameNode, sameNUMA, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: AM cost is monotone in size and the noncontiguous path never
// undercuts the contiguous one.
func TestAMCostMonotoneProperty(t *testing.T) {
	p := CrayXC30()
	f := func(a uint32, contig bool) bool {
		n := int(a % 1 << 22)
		if p.AMCost(n, false) < p.AMCost(n, true) {
			return false
		}
		return p.AMCost(n, contig) >= p.AMCost(0, contig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
