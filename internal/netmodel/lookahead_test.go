package netmodel

import (
	"math/rand"
	"testing"
)

// TestLookaheadIsCrossNodeMinimum is the property behind the sharded
// simulator's safety window: no preset can deliver a cross-node effect
// earlier than its computed lookahead, on any path — wire transfer,
// contiguous active message, or the noncontiguous datatype-pack path —
// at any payload size.
func TestLookaheadIsCrossNodeMinimum(t *testing.T) {
	sizes := []int{0, 1, 7, 8, 16, 64, 512, 4096, 65536, 1 << 20}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		sizes = append(sizes, rng.Intn(1<<22))
	}
	for name, p := range Presets() {
		la := p.Lookahead()
		if la <= 0 {
			t.Fatalf("%s: lookahead %v is not positive", name, la)
		}
		for _, n := range sizes {
			if d := p.Transfer(false, false, n); d < la {
				t.Errorf("%s: inter-node transfer of %d bytes (%v) beats lookahead %v", name, n, d, la)
			}
			if d := p.AMCost(n, true); d < la {
				t.Errorf("%s: contiguous AM of %d bytes (%v) beats lookahead %v", name, n, d, la)
			}
			if d := p.AMCost(n, false); d < la {
				t.Errorf("%s: packed AM of %d bytes (%v) beats lookahead %v", name, n, d, la)
			}
		}
		m := NewMemo(p)
		if got := m.Lookahead(); got != la {
			t.Errorf("%s: memoized lookahead %v != %v", name, got, la)
		}
		if got := m.Lookahead(); got != la { // cached path
			t.Errorf("%s: second memoized lookahead %v != %v", name, got, la)
		}
	}
}
