// Package netmodel defines the performance model of the simulated
// platforms: transfer latency/bandwidth, MPI software overheads,
// window-management costs, RMA hardware capability, and the parameters of
// the thread- and interrupt-based asynchronous progress baselines.
//
// Three presets mirror the platforms of the paper's evaluation
// (Section IV): the Cray XC30 in regular mode (all RMA in software), the
// XC30 in DMAPP mode (hardware contiguous put/get, interrupt-driven
// software accumulates), and the Fusion InfiniBand cluster running
// MVAPICH (hardware contiguous put/get, thread-progressed accumulates).
// Absolute constants are calibrated to the order of magnitude of the
// paper's plots; the experiments depend on their relative structure, not
// their exact values.
package netmodel

import (
	"fmt"

	"repro/internal/sim"
)

// Params is the full cost model for one platform.
type Params struct {
	Name string

	// Transport.
	InterLatency sim.Duration // one-way latency between nodes
	IntraLatency sim.Duration // one-way latency within a node (shared memory)
	InterPerByte float64      // ns per byte between nodes
	IntraPerByte float64      // ns per byte within a node
	NUMAPenalty  sim.Duration // extra intra-node latency across NUMA domains

	// MPI software costs.
	CallOverhead sim.Duration // entering any MPI call
	RMAIssue     sim.Duration // origin-side cost to issue one RMA operation
	AMBase       sim.Duration // target-side base cost to process one software AM
	AMPerByte    float64      // ns per byte of target-side AM processing
	PackPerByte  float64      // extra ns per byte for noncontiguous pack/unpack

	// Window management.
	AllocWinBase     sim.Duration // MPI_WIN_ALLOCATE: fixed cost (registration, setup)
	AllocWinPerRank  sim.Duration // MPI_WIN_ALLOCATE: per communicator rank
	CreateWinBase    sim.Duration // MPI_WIN_CREATE over existing memory: fixed
	CreateWinPerRank sim.Duration // MPI_WIN_CREATE: per communicator rank

	// RMA hardware capability.
	HardwarePutGet bool    // contiguous PUT/GET executed by the NIC, no target CPU
	NICPerByte     float64 // ns per byte for the hardware path

	// Progress baselines.
	ThreadSafety   float64      // multiplier on origin MPI overheads with a progress thread (thread-multiple locking)
	ThreadAM       float64      // multiplier on AM processing done by a progress thread (shared-state locking)
	OversubCompute float64      // compute slowdown when a polling progress thread shares the core (Thread(O))
	InterruptCost  sim.Duration // kernel interrupt overhead per software AM in interrupt mode

	// Lock behaviour.
	LockLazy bool // delay lock acquisition until the first operation/flush (Cray, MVAPICH behaviour)
}

// Validate checks model invariants.
func (p *Params) Validate() error {
	if p.InterLatency < 0 || p.IntraLatency < 0 || p.NUMAPenalty < 0 {
		return fmt.Errorf("netmodel %s: negative latency", p.Name)
	}
	if p.InterPerByte < 0 || p.IntraPerByte < 0 || p.NICPerByte < 0 ||
		p.AMPerByte < 0 || p.PackPerByte < 0 {
		return fmt.Errorf("netmodel %s: negative per-byte cost", p.Name)
	}
	if p.ThreadSafety < 1 || p.ThreadAM < 1 {
		return fmt.Errorf("netmodel %s: thread multipliers must be >= 1", p.Name)
	}
	if p.OversubCompute != 0 && p.OversubCompute < 1 {
		return fmt.Errorf("netmodel %s: OversubCompute must be >= 1", p.Name)
	}
	return nil
}

// Transfer returns the wire time for n bytes between two ranks with the
// given locality.
func (p *Params) Transfer(sameNode, sameNUMA bool, n int) sim.Duration {
	if sameNode {
		d := p.IntraLatency + sim.Duration(float64(n)*p.IntraPerByte)
		if !sameNUMA {
			d += p.NUMAPenalty
		}
		return d
	}
	return p.InterLatency + sim.Duration(float64(n)*p.InterPerByte)
}

// AMCost returns the target-side CPU time to process one software RMA
// active message carrying n payload bytes. Noncontiguous data pays the
// unpack surcharge.
func (p *Params) AMCost(n int, contiguous bool) sim.Duration {
	d := p.AMBase + sim.Duration(float64(n)*p.AMPerByte)
	if !contiguous {
		d += sim.Duration(float64(n) * p.PackPerByte)
	}
	return d
}

// AllocWinCost returns the cost of MPI_WIN_ALLOCATE (or
// ALLOCATE_SHARED) collective over nRanks ranks.
func (p *Params) AllocWinCost(nRanks int) sim.Duration {
	return p.AllocWinBase + sim.Duration(nRanks)*p.AllocWinPerRank
}

// CreateWinCost returns the cost of MPI_WIN_CREATE over existing memory,
// collective over nRanks ranks.
func (p *Params) CreateWinCost(nRanks int) sim.Duration {
	return p.CreateWinBase + sim.Duration(nRanks)*p.CreateWinPerRank
}

// HardwareEligible reports whether an RMA transfer of n contiguous bytes
// can complete entirely in NIC hardware on this platform.
func (p *Params) HardwareEligible(contiguous bool) bool {
	return p.HardwarePutGet && contiguous
}

// CrayXC30 models the NERSC Edison Cray XC30 with Cray MPI in regular
// mode: every RMA operation is executed in target-side software
// (Section IV: "The regular version executes all RMA operations in
// software").
func CrayXC30() *Params {
	return &Params{
		Name:             "cray-xc30",
		InterLatency:     sim.Microseconds(1.4),
		IntraLatency:     sim.Microseconds(0.45),
		InterPerByte:     0.125, // ~8 GB/s
		IntraPerByte:     0.08,  // ~12.5 GB/s
		NUMAPenalty:      sim.Microseconds(0.05),
		CallOverhead:     sim.Microseconds(0.15),
		RMAIssue:         sim.Microseconds(0.25),
		AMBase:           sim.Microseconds(0.55),
		AMPerByte:        0.12,
		PackPerByte:      0.30,
		AllocWinBase:     sim.Microseconds(12),
		AllocWinPerRank:  sim.Microseconds(7),
		CreateWinBase:    sim.Microseconds(3),
		CreateWinPerRank: sim.Microseconds(0.8),
		HardwarePutGet:   false,
		NICPerByte:       0.125,
		ThreadSafety:     1.9,
		ThreadAM:         1.6,
		OversubCompute:   1.7,
		InterruptCost:    sim.Microseconds(2.6),
		LockLazy:         true,
	}
}

// CrayXC30DMAPP models the XC30 with DMAPP enabled: contiguous PUT/GET
// run in hardware; accumulates and noncontiguous operations remain
// software, progressed by interrupts.
func CrayXC30DMAPP() *Params {
	p := CrayXC30()
	p.Name = "cray-xc30-dmapp"
	p.HardwarePutGet = true
	return p
}

// FusionMVAPICH models the Argonne Fusion InfiniBand cluster with
// MVAPICH 2.0rc1 (with the paper's bug fix enabling true hardware
// PUT/GET): contiguous PUT/GET in hardware, accumulates as software
// active messages with thread-based asynchronous progress available.
func FusionMVAPICH() *Params {
	return &Params{
		Name:             "fusion-mvapich",
		InterLatency:     sim.Microseconds(2.1),
		IntraLatency:     sim.Microseconds(0.5),
		InterPerByte:     0.31, // ~3.2 GB/s QDR IB
		IntraPerByte:     0.1,
		NUMAPenalty:      sim.Microseconds(0.05),
		CallOverhead:     sim.Microseconds(0.18),
		RMAIssue:         sim.Microseconds(0.3),
		AMBase:           sim.Microseconds(0.8),
		AMPerByte:        0.15,
		PackPerByte:      0.35,
		AllocWinBase:     sim.Microseconds(15),
		AllocWinPerRank:  sim.Microseconds(8),
		CreateWinBase:    sim.Microseconds(4),
		CreateWinPerRank: sim.Microseconds(1.0),
		HardwarePutGet:   true,
		NICPerByte:       0.31,
		ThreadSafety:     2.2,
		ThreadAM:         1.7,
		OversubCompute:   1.7,
		InterruptCost:    sim.Microseconds(3.0),
		LockLazy:         true,
	}
}

// Presets returns all built-in platform models keyed by name.
func Presets() map[string]*Params {
	ps := map[string]*Params{}
	for _, p := range []*Params{CrayXC30(), CrayXC30DMAPP(), FusionMVAPICH()} {
		ps[p.Name] = p
	}
	return ps
}
