package tce

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

func tceConfig(n, ppn int, prog mpi.ProgressMode, oversub bool) mpi.Config {
	nodes := (n + ppn - 1) / ppn
	return mpi.Config{
		Machine:              cluster.Machine{Nodes: nodes, CoresPerNode: 24, NUMAPerNode: 2},
		N:                    n,
		PPN:                  ppn,
		Net:                  netmodel.CrayXC30(),
		Seed:                 5,
		Progress:             prog,
		ThreadOversubscribed: oversub,
		Validate:             true,
	}
}

func TestParamsValidate(t *testing.T) {
	if (Params{TilesPerDim: 0, TileSize: 4}).Validate() == nil {
		t.Error("zero tiles accepted")
	}
	if (Params{TilesPerDim: 4, TileSize: 0}).Validate() == nil {
		t.Error("zero tile size accepted")
	}
	if (Params{TilesPerDim: 2, TileSize: 4}).Validate() != nil {
		t.Error("valid params rejected")
	}
}

func TestComputePerTaskPhases(t *testing.T) {
	ccsd := Params{TilesPerDim: 2, TileSize: 16, Phase: PhaseCCSD}.withDefaults()
	tri := Params{TilesPerDim: 2, TileSize: 16, Phase: PhaseTriples}.withDefaults()
	if tri.computePerTask() <= ccsd.computePerTask() {
		t.Fatal("(T) must be more compute-intensive than CCSD")
	}
	if PhaseCCSD.String() != "CCSD" || PhaseTriples.String() != "(T)" {
		t.Error("phase strings")
	}
}

func TestRunCompletesAllTasksAndData(t *testing.T) {
	p := Params{TilesPerDim: 4, TileSize: 4, Phase: PhaseCCSD}
	total := 0
	var sum float64
	w, err := mpi.Run(tceConfig(4, 4, mpi.ProgressNone, false), func(r *mpi.Rank) {
		res := Run(r, p)
		total += res.Tasks
		// Verify the output array contents via a fresh array read —
		// C was destroyed, so instead recompute expectation from task
		// count; data checked in the dedicated test below.
		_ = res
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = w
	_ = sum
	if total != 16 {
		t.Fatalf("tasks executed = %d, want 16", total)
	}
}

func TestRunDataCorrectness(t *testing.T) {
	// Run the same task loop but keep C alive to check its contents.
	p := Params{TilesPerDim: 4, TileSize: 4, Phase: PhaseCCSD}.withDefaults()
	var got []float64
	_, err := mpi.Run(tceConfig(4, 4, mpi.ProgressNone, false), func(r *mpi.Rank) {
		env := mpi.Env(r)
		n := p.TilesPerDim * p.TileSize
		a := ga.MustCreate(env, "A", n, n)
		b := ga.MustCreate(env, "B", n, n)
		c := ga.MustCreate(env, "C", n, n)
		a.Fill(1)
		b.Fill(2)
		c.Fill(0)
		counter := ga.NewCounter(env)
		tile := p.TileSize
		bufA := make([]float64, tile*tile)
		bufB := make([]float64, tile*tile)
		bufC := make([]float64, tile*tile)
		for {
			task := counter.Next()
			if task >= int64(p.TilesPerDim*p.TilesPerDim) {
				break
			}
			i, j := int(task)/p.TilesPerDim, int(task)%p.TilesPerDim
			k := (i + j + 1) % p.TilesPerDim
			a.Get(i*tile, (i+1)*tile, k*tile, (k+1)*tile, bufA)
			b.Get(k*tile, (k+1)*tile, j*tile, (j+1)*tile, bufB)
			for x := range bufC {
				bufC[x] = bufA[x] * bufB[x]
			}
			c.Acc(i*tile, (i+1)*tile, j*tile, (j+1)*tile, bufC, 1)
		}
		c.Sync()
		if env.Rank() == 0 {
			got = make([]float64, n*n)
			c.Get(0, n, 0, n, got)
		}
		c.Sync()
		counter.Destroy()
		c.Destroy()
		b.Destroy()
		a.Destroy()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != CheckSum {
			t.Fatalf("C[%d] = %v, want %v", i, v, CheckSum)
		}
	}
}

func TestRunOverCasperSameResults(t *testing.T) {
	p := Params{TilesPerDim: 4, TileSize: 4, Phase: PhaseCCSD}
	total := 0
	_, err := mpi.Run(tceConfig(6, 6, mpi.ProgressNone, false), func(r *mpi.Rank) {
		cp, ghost := core.Init(r, core.Config{NumGhosts: 2})
		if ghost {
			return
		}
		res := Run(cp, p)
		total += res.Tasks
		cp.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 16 {
		t.Fatalf("tasks = %d, want 16", total)
	}
}

func TestCasperFasterThanOriginalOnTriples(t *testing.T) {
	// The Fig. 8(c) headline on a small scale: with compute-heavy
	// tasks, Casper beats original MPI despite dedicating cores to
	// ghosts.
	// Tile 24 puts ~166us of compute between MPI calls — the
	// compute-dominant regime where lack of progress stalls fetches.
	p := Params{TilesPerDim: 4, TileSize: 24, Phase: PhaseTriples}
	elapsedMax := func(casper bool) sim.Duration {
		var maxEl sim.Duration
		var err error
		if casper {
			_, err = mpi.Run(tceConfig(12, 12, mpi.ProgressNone, false), func(r *mpi.Rank) {
				cp, ghost := core.Init(r, core.Config{NumGhosts: 2})
				if ghost {
					return
				}
				res := Run(cp, p)
				if res.Elapsed > maxEl {
					maxEl = res.Elapsed
				}
				cp.Finalize()
			})
		} else {
			_, err = mpi.Run(tceConfig(12, 12, mpi.ProgressNone, false), func(r *mpi.Rank) {
				res := Run(r, p)
				if res.Elapsed > maxEl {
					maxEl = res.Elapsed
				}
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		return maxEl
	}
	orig := elapsedMax(false)
	casper := elapsedMax(true)
	if casper >= orig {
		t.Fatalf("casper %v not faster than original %v on (T) workload", casper, orig)
	}
}

func TestGetStallsDropWithCasper(t *testing.T) {
	p := Params{TilesPerDim: 4, TileSize: 24, Phase: PhaseTriples}
	getTime := func(casper bool) sim.Duration {
		var total sim.Duration
		var err error
		if casper {
			_, err = mpi.Run(tceConfig(8, 8, mpi.ProgressNone, false), func(r *mpi.Rank) {
				cp, ghost := core.Init(r, core.Config{NumGhosts: 2})
				if ghost {
					return
				}
				total += Run(cp, p).GetTime
				cp.Finalize()
			})
		} else {
			_, err = mpi.Run(tceConfig(8, 8, mpi.ProgressNone, false), func(r *mpi.Rank) {
				total += Run(r, p).GetTime
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	orig := getTime(false)
	casper := getTime(true)
	if casper >= orig {
		t.Fatalf("GET stall time did not drop: casper %v vs original %v", casper, orig)
	}
}

func TestDeploymentsTableI(t *testing.T) {
	ds := Deployments(24)
	if len(ds) != 4 {
		t.Fatalf("%d deployments", len(ds))
	}
	byName := map[string]Deployment{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["Original MPI"]; d.PPN != 24 || d.UserCores != 24 || d.Ghosts != 0 {
		t.Errorf("original: %+v", d)
	}
	if d := byName["Casper"]; d.PPN != 24 || d.Ghosts != 4 || d.UserCores != 20 {
		t.Errorf("casper: %+v", d)
	}
	if d := byName["Thread(O)"]; d.PPN != 24 || !d.Oversub || d.Progress != mpi.ProgressThread {
		t.Errorf("thread(O): %+v", d)
	}
	if d := byName["Thread(D)"]; d.PPN != 12 || d.Oversub || d.UserCores != 12 {
		t.Errorf("thread(D): %+v", d)
	}
}

func TestDynamicTaskBalancing(t *testing.T) {
	// With the atomic counter, no rank should hog all tasks.
	p := Params{TilesPerDim: 6, TileSize: 4, Phase: PhaseCCSD}
	counts := map[int]int{}
	_, err := mpi.Run(tceConfig(4, 4, mpi.ProgressNone, false), func(r *mpi.Rank) {
		counts[r.Rank()] = Run(r, p).Tasks
	})
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, n := range counts {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d ranks executed tasks: %v", busy, counts)
	}
}
