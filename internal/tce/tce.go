// Package tce is a miniature tensor-contraction engine: a proxy for the
// NWChem coupled-cluster (CCSD(T)) workloads of the paper's Section
// IV-D. It reproduces the communication/computation structure the paper
// attributes the results to: each process repeatedly fetches remote
// tiles from Global Arrays (one-sided GETs that need target-side
// software progress), performs a long dense contraction (DGEMM), and
// accumulates the result back (one-sided ACC) — with dynamic task
// distribution through an atomic counter, so lack of asynchronous
// progress stalls every fetch behind a computing target.
//
// Two phases are modeled: the CCSD iteration (communication-intensive,
// frequent small contractions) and the (T) triples portion
// (compute-dominant, long gaps between MPI calls), which is where the
// paper shows the largest Casper gains.
package tce

import (
	"fmt"

	"repro/internal/ga"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Phase selects the workload shape.
type Phase int

// Workload phases.
const (
	// PhaseCCSD models one CCSD iteration: many small tensor
	// contractions, communication-intensive.
	PhaseCCSD Phase = iota
	// PhaseTriples models the (T) portion: few, long contractions;
	// each process fetches remote data then computes for a long time.
	PhaseTriples
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	if p == PhaseTriples {
		return "(T)"
	}
	return "CCSD"
}

// Params describes a contraction workload.
type Params struct {
	TilesPerDim   int     // task grid is TilesPerDim x TilesPerDim
	TileSize      int     // tile is TileSize x TileSize float64
	Phase         Phase   // workload shape
	GemmNsPerFlop float64 // simulated DGEMM speed; 0 selects 0.25 ns/flop
}

func (p Params) withDefaults() Params {
	if p.GemmNsPerFlop == 0 {
		p.GemmNsPerFlop = 0.25
	}
	return p
}

// Validate checks the workload parameters.
func (p Params) Validate() error {
	if p.TilesPerDim <= 0 || p.TileSize <= 0 {
		return fmt.Errorf("tce: bad dimensions %dx tiles of %d", p.TilesPerDim, p.TileSize)
	}
	return nil
}

// computePerTask returns the simulated contraction time for one task.
func (p Params) computePerTask() sim.Duration {
	t := float64(p.TileSize)
	flops := 2 * t * t * t // one DGEMM on a tile
	switch p.Phase {
	case PhaseCCSD:
		// A CCSD iteration applies several contractions to each tile
		// pair it fetches (the TCE emits dozens per term).
		flops *= 3
	case PhaseTriples:
		// Triples contractions are O(n^7) over O(n^6) data: far more
		// compute per byte moved.
		flops *= 24
	}
	return sim.Duration(flops * p.GemmNsPerFlop)
}

// Result is one rank's view of a run.
type Result struct {
	Elapsed sim.Duration // barrier-to-barrier iteration time
	Tasks   int          // tasks this rank executed
	GetTime sim.Duration // time spent blocked in GETs (stall indicator)
}

// Run executes one iteration of the phase on the calling rank. It is
// collective over env's world; every rank must call it with identical
// parameters. The returned Result is this rank's.
func Run(env mpi.Env, p Params) Result {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	n := p.TilesPerDim * p.TileSize
	a := ga.MustCreate(env, "tceA", n, n)
	b := ga.MustCreate(env, "tceB", n, n)
	c := ga.MustCreate(env, "tceC", n, n)
	a.Fill(1)
	b.Fill(2)
	c.Fill(0)
	counter := ga.NewCounter(env)

	env.CommWorld().Barrier()
	start := env.Now()

	var res Result
	numTasks := p.TilesPerDim * p.TilesPerDim
	tile := p.TileSize
	bufA := make([]float64, tile*tile)
	bufB := make([]float64, tile*tile)
	bufC := make([]float64, tile*tile)
	compute := p.computePerTask()
	for {
		t := counter.Next()
		if t >= int64(numTasks) {
			break
		}
		i := int(t) / p.TilesPerDim
		j := int(t) % p.TilesPerDim
		// Contract over the anti-diagonal partner: guarantees most
		// fetches are remote.
		k := (i + j + 1) % p.TilesPerDim

		g0 := env.Now()
		a.Get(i*tile, (i+1)*tile, k*tile, (k+1)*tile, bufA)
		b.Get(k*tile, (k+1)*tile, j*tile, (j+1)*tile, bufB)
		res.GetTime += env.Now().Sub(g0)

		// The "DGEMM": simulated compute plus a cheap real kernel so
		// the accumulated data is meaningful.
		for x := 0; x < tile*tile; x++ {
			bufC[x] = bufA[x] * bufB[x]
		}
		env.Compute(compute)

		c.Acc(i*tile, (i+1)*tile, j*tile, (j+1)*tile, bufC, 1)
		res.Tasks++
	}

	env.CommWorld().Barrier()
	res.Elapsed = env.Now().Sub(start)

	counter.Destroy()
	c.Destroy()
	b.Destroy()
	a.Destroy()
	return res
}

// CheckSum returns the expected value of every element of C after one
// Run: each task writes A*B = 2 exactly once.
const CheckSum = 2.0

// Deployment is one core-assignment strategy of Table I: how the 24
// cores of a node are divided between application processes and
// asynchronous progress helpers.
type Deployment struct {
	Name      string
	PPN       int              // MPI ranks launched per node
	Ghosts    int              // Casper ghost processes per node (0 = no Casper)
	Progress  mpi.ProgressMode // baseline async progress mode
	Oversub   bool             // progress threads share cores (Thread(O))
	UserCores int              // cores doing application compute
}

// Deployments returns Table I for nodes with coresPerNode cores: the
// same total core budget split four ways.
func Deployments(coresPerNode int) []Deployment {
	half := coresPerNode / 2
	casperGhosts := coresPerNode / 6 // 4 ghosts on a 24-core node
	return []Deployment{
		{Name: "Original MPI", PPN: coresPerNode, Progress: mpi.ProgressNone,
			UserCores: coresPerNode},
		{Name: "Casper", PPN: coresPerNode, Ghosts: casperGhosts,
			Progress: mpi.ProgressNone, UserCores: coresPerNode - casperGhosts},
		{Name: "Thread(O)", PPN: coresPerNode, Progress: mpi.ProgressThread,
			Oversub: true, UserCores: coresPerNode},
		{Name: "Thread(D)", PPN: half, Progress: mpi.ProgressThread,
			UserCores: half},
	}
}
