package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/sim"
)

// ChaosSpec bounds the chaos-plan generator: which ranks may suffer
// process faults, how many, and over what time span. The generator
// deliberately knows nothing about roles — the sequencer ghost is as
// likely a victim as any other, and fault times land anywhere in the
// run, including inside window construction and open lock epochs.
type ChaosSpec struct {
	Ghosts  []int    // crash/stall candidates (world ranks)
	Apps    []int    // recoverable app-crash candidates (user world ranks)
	Nodes   int      // node count, for straggler selection
	Horizon sim.Time // fault-free end time of the workload being attacked

	MaxCrashes    int  // per plan; actual count is seeded-random in [0, max]
	MaxAppCrashes int  // per plan; actual count is seeded-random in [0, max]
	MaxStalls     int  // per plan; actual count is seeded-random in [0, max]
	Rates         bool // allow randomized message drop/delay/dup rates
}

// ChaosPlan derives a complete fault plan from a seed — a pure
// function, so a failing seed replays the identical schedule anywhere.
// Crash and stall instants are drawn from [0, 1.15*Horizon]: mostly
// mid-run, sometimes during window construction near t=0, sometimes
// after the workload would have finished (exercising the no-op paths).
func ChaosPlan(seed int64, spec ChaosSpec) *Plan {
	if spec.Horizon <= 0 {
		panic(fmt.Sprintf("fault: chaos spec horizon %v not positive", spec.Horizon))
	}
	if len(spec.Ghosts) == 0 {
		panic("fault: chaos spec has no fault candidates")
	}
	// Mix the seed so consecutive integers decorrelate before feeding
	// the (weak) LCG-style source.
	mixed := int64(uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9)
	rng := rand.New(rand.NewSource(mixed))
	span := int64(spec.Horizon) + int64(spec.Horizon)/7 + 1
	p := &Plan{Seed: seed}

	for i, n := 0, rng.Intn(spec.MaxCrashes+1); i < n; i++ {
		p.Crashes = append(p.Crashes, Crash{
			Rank: spec.Ghosts[rng.Intn(len(spec.Ghosts))],
			At:   sim.Time(rng.Int63n(span)),
		})
	}
	for i, n := 0, rng.Intn(spec.MaxStalls+1); i < n; i++ {
		// Durations from well below to well past the detector's grace
		// period: short stalls must stay invisible, long ones must reach
		// suspicion without being confirmed dead.
		p.Stalls = append(p.Stalls, Stall{
			Rank:     spec.Ghosts[rng.Intn(len(spec.Ghosts))],
			At:       sim.Time(rng.Int63n(span)),
			Duration: 10*sim.Microsecond + sim.Duration(rng.Int63n(int64(250*sim.Microsecond))),
		})
	}
	if spec.Rates && rng.Intn(2) == 0 {
		p.DropRate = rng.Float64() * 0.02
		p.DelayRate = rng.Float64() * 0.02
		p.DelayMax = sim.Duration(1+rng.Int63n(20)) * sim.Microsecond
		p.DupRate = rng.Float64() * 0.01
	}
	if spec.Nodes > 0 && rng.Intn(3) == 0 {
		p.Stragglers = map[int]float64{
			rng.Intn(spec.Nodes): 1.05 + rng.Float64()*0.5,
		}
	}
	// Extended draws, taken strictly after the legacy ones and only when
	// the spec opts in: specs without app crashes reproduce their
	// historical plans bit-identically.
	if spec.MaxAppCrashes > 0 && len(spec.Apps) > 0 {
		for i, n := 0, rng.Intn(spec.MaxAppCrashes+1); i < n; i++ {
			p.AppCrashes = append(p.AppCrashes, AppCrash{
				Rank: spec.Apps[rng.Intn(len(spec.Apps))],
				At:   sim.Time(rng.Int63n(span)),
			})
		}
		if spec.Rates && rng.Intn(3) == 0 {
			p.CorruptRate = rng.Float64() * 0.02
		}
	}
	return p
}

// Describe renders a plan as one deterministic line, for chaos-failure
// reports.
func (p *Plan) Describe() string {
	var parts []string
	for _, c := range p.Crashes {
		parts = append(parts, fmt.Sprintf("crash[r%d@%v]", c.Rank, c.At))
	}
	for _, c := range p.AppCrashes {
		parts = append(parts, fmt.Sprintf("appcrash[r%d@%v]", c.Rank, c.At))
	}
	for _, s := range p.Stalls {
		parts = append(parts, fmt.Sprintf("stall[r%d@%v+%v]", s.Rank, s.At, s.Duration))
	}
	if !p.zeroRates() {
		parts = append(parts, fmt.Sprintf("rates[drop=%.4f delay=%.4f dup=%.4f corrupt=%.4f max=%v]",
			p.DropRate, p.DelayRate, p.DupRate, p.CorruptRate, p.DelayMax))
	}
	for node, f := range p.Stragglers { // at most one entry from ChaosPlan
		parts = append(parts, fmt.Sprintf("straggler[node%d x%.2f]", node, f))
	}
	if len(parts) == 0 {
		return "no-faults"
	}
	return strings.Join(parts, " ")
}
