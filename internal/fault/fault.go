// Package fault defines seeded, deterministic fault plans for the
// simulated MPI runtime: message-level faults (drop, delay,
// duplication) injected into the delivery path, process-level faults
// (crash or stall of a rank — in practice a Casper ghost — at a chosen
// virtual time), and straggler nodes whose computation runs slowed.
//
// A Plan is pure data; an Injector is the runtime's handle on it. The
// injector owns a private random source seeded from the plan, separate
// from the simulation engine's RNG, so enabling a fault plan never
// perturbs the engine's random sequence: a plan with all rates zero is
// observationally identical to no plan at all, and the same seed plus
// the same plan reproduces the exact same fault sequence.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Crash kills a rank at a virtual time: its process stops, in-flight
// and future messages to it are swallowed, and it never speaks again.
type Crash struct {
	Rank int      // world rank to kill
	At   sim.Time // virtual time of death
}

// AppCrash kills an application (non-ghost) rank at a virtual time,
// recoverably: the process freezes, the failure detector confirms the
// death, and the Casper recovery engine respawns it with its window
// state restored from the last closed-epoch snapshot and the open
// epoch's journaled operations replayed. Contrast Crash, which is
// permanent death.
type AppCrash struct {
	Rank int      // world rank to kill (must be an application rank)
	At   sim.Time // virtual time of death
}

// Stall freezes a rank's progress engine for a duration: active
// messages arriving in the window are serviced only after it ends, and
// the rank emits no heartbeats meanwhile. A stall past half the health
// monitor's grace period makes the rank *suspected*; only the
// two-phase detector's probes (which a stalled rank still answers at
// the transport level) keep it from being confirmed dead — which is
// the point.
type Stall struct {
	Rank     int
	At       sim.Time
	Duration sim.Duration
}

// Plan is a complete, seeded description of every fault a run will
// experience.
type Plan struct {
	// Seed for the injector's private random source. Zero selects 1 so
	// that the zero Plan is still fully deterministic.
	Seed int64

	// Per-transmission probabilities in [0, 1]. A dropped transmission
	// vanishes on the wire; a delayed one arrives up to DelayMax late;
	// a duplicated one is delivered twice.
	DropRate  float64
	DelayRate float64
	DupRate   float64

	// CorruptRate is the per-transmission probability of payload
	// corruption on the wire. The reliable transport detects a corrupt
	// packet by CRC32 checksum mismatch at the receiver, drops it, and
	// recovers by ordinary timeout/retransmission. Its random draw
	// happens only when the rate is nonzero, so plans without it keep
	// their historical fault sequences bit-identical.
	CorruptRate float64

	// DelayMax bounds the extra latency of a delayed transmission.
	// Zero selects 10 microseconds.
	DelayMax sim.Duration

	// Scheduled process faults.
	Crashes    []Crash
	AppCrashes []AppCrash
	Stalls     []Stall

	// Stragglers maps node index -> compute slowdown factor (>= 1).
	Stragglers map[int]float64
}

// Validate checks the plan for nonsense values.
func (p *Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"DropRate", p.DropRate}, {"DelayRate", p.DelayRate}, {"DupRate", p.DupRate},
		{"CorruptRate", p.CorruptRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s = %g outside [0, 1]", r.name, r.v)
		}
	}
	if p.DelayMax < 0 {
		return fmt.Errorf("fault: DelayMax = %v negative", p.DelayMax)
	}
	for _, c := range p.Crashes {
		if c.At < 0 {
			return fmt.Errorf("fault: crash of rank %d at negative time %v", c.Rank, c.At)
		}
	}
	for _, c := range p.AppCrashes {
		if c.At < 0 {
			return fmt.Errorf("fault: app crash of rank %d at negative time %v", c.Rank, c.At)
		}
	}
	for _, s := range p.Stalls {
		if s.At < 0 || s.Duration < 0 {
			return fmt.Errorf("fault: stall of rank %d with negative time", s.Rank)
		}
	}
	for node, f := range p.Stragglers {
		if f < 1 {
			return fmt.Errorf("fault: straggler factor %g on node %d below 1", f, node)
		}
	}
	return nil
}

// zeroRates reports whether no randomized transmission fault can ever
// fire, in which case Transmission never touches the random source.
func (p *Plan) zeroRates() bool {
	return p.DropRate == 0 && p.DelayRate == 0 && p.DupRate == 0 && p.CorruptRate == 0
}

// Decision is the injector's verdict on one transmission.
type Decision struct {
	Drop    bool
	Dup     bool
	Corrupt bool
	Extra   sim.Duration // added latency (zero unless delayed)
}

// Stats counts faults actually injected.
type Stats struct {
	Drops    int64
	Delays   int64
	Dups     int64
	Corrupts int64
}

// Injector evaluates a Plan at runtime with a private random source.
type Injector struct {
	plan  Plan
	zero  bool
	rng   *rand.Rand
	stats Stats
}

// NewInjector builds an injector for the plan (copied; the caller may
// reuse or mutate its Plan afterwards).
func NewInjector(p *Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	plan := *p
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	if plan.DelayMax == 0 {
		plan.DelayMax = 10 * sim.Microsecond
	}
	return &Injector{
		plan: plan,
		zero: plan.zeroRates(),
		rng:  rand.New(rand.NewSource(plan.Seed)),
	}, nil
}

// Plan returns the (defaulted) plan the injector runs.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns the counts of faults injected so far.
func (in *Injector) Stats() Stats { return in.stats }

// Transmission decides the fate of one message transmission. With all
// rates zero it returns the zero Decision without consuming any
// randomness, so a zero-rate plan cannot perturb anything.
func (in *Injector) Transmission() Decision {
	if in.zero {
		return Decision{}
	}
	var d Decision
	if in.rng.Float64() < in.plan.DropRate {
		d.Drop = true
		in.stats.Drops++
		return d
	}
	if in.rng.Float64() < in.plan.DelayRate {
		d.Extra = sim.Duration(1 + in.rng.Int63n(int64(in.plan.DelayMax)))
		in.stats.Delays++
	}
	if in.rng.Float64() < in.plan.DupRate {
		d.Dup = true
		in.stats.Dups++
	}
	// Drawn only under a nonzero rate so plans without corruption keep
	// their historical random sequences (and thus fault schedules)
	// bit-identical.
	if in.plan.CorruptRate > 0 && in.rng.Float64() < in.plan.CorruptRate {
		d.Corrupt = true
		in.stats.Corrupts++
	}
	return d
}

// ComputeFactor returns the compute slowdown for a node (1 when the
// node is not a straggler).
func (in *Injector) ComputeFactor(node int) float64 {
	if f, ok := in.plan.Stragglers[node]; ok {
		return f
	}
	return 1
}
