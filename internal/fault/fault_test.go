package fault

import (
	"testing"

	"repro/internal/sim"
)

func TestValidateRejectsNonsense(t *testing.T) {
	bad := []Plan{
		{DropRate: -0.1},
		{DropRate: 1.5},
		{DelayRate: 2},
		{DupRate: -1},
		{DelayMax: -sim.Microsecond},
		{Crashes: []Crash{{Rank: 0, At: -1}}},
		{Stalls: []Stall{{Rank: 0, At: 1, Duration: -1}}},
		{Stragglers: map[int]float64{0: 0.5}},
	}
	for i, p := range bad {
		if _, err := NewInjector(&p); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p)
		}
	}
}

func TestDefaults(t *testing.T) {
	in, err := NewInjector(&Plan{})
	if err != nil {
		t.Fatal(err)
	}
	p := in.Plan()
	if p.Seed != 1 {
		t.Errorf("zero seed not defaulted: %d", p.Seed)
	}
	if p.DelayMax != 10*sim.Microsecond {
		t.Errorf("zero DelayMax not defaulted: %v", p.DelayMax)
	}
}

func TestZeroRatePlanNeverFaults(t *testing.T) {
	in, err := NewInjector(&Plan{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if d := in.Transmission(); d.Drop || d.Dup || d.Extra != 0 {
			t.Fatalf("zero-rate plan injected a fault: %+v", d)
		}
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("zero-rate plan counted faults: %+v", s)
	}
}

func TestSameSeedSameFaultSequence(t *testing.T) {
	plan := Plan{Seed: 7, DropRate: 0.1, DelayRate: 0.2, DupRate: 0.05}
	a, _ := NewInjector(&plan)
	b, _ := NewInjector(&plan)
	for i := 0; i < 5000; i++ {
		da, db := a.Transmission(), b.Transmission()
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Drops == 0 || a.Stats().Delays == 0 || a.Stats().Dups == 0 {
		t.Fatalf("rates never fired over 5000 draws: %+v", a.Stats())
	}
}

func TestDelayBounded(t *testing.T) {
	in, _ := NewInjector(&Plan{Seed: 3, DelayRate: 1, DelayMax: 5 * sim.Microsecond})
	for i := 0; i < 1000; i++ {
		d := in.Transmission()
		if d.Extra <= 0 || d.Extra > 5*sim.Microsecond {
			t.Fatalf("delay %v outside (0, 5us]", d.Extra)
		}
	}
}

func TestComputeFactor(t *testing.T) {
	in, _ := NewInjector(&Plan{Stragglers: map[int]float64{2: 3.5}})
	if f := in.ComputeFactor(2); f != 3.5 {
		t.Errorf("straggler factor = %v, want 3.5", f)
	}
	if f := in.ComputeFactor(0); f != 1 {
		t.Errorf("non-straggler factor = %v, want 1", f)
	}
}

func TestPlanCopiedByInjector(t *testing.T) {
	plan := Plan{Seed: 5, DropRate: 0.5}
	in, _ := NewInjector(&plan)
	plan.DropRate = 0 // caller mutation must not affect the injector
	if in.Plan().DropRate != 0.5 {
		t.Fatal("injector shares the caller's plan")
	}
}
