package sim

import (
	"math/rand"
	"testing"
)

// The ladder queue's correctness contract is exact: pop order by
// (at, seq) must be byte-for-byte what the retained heap produces, or
// every experiment's determinism guarantee dies. These tests drive the
// two structures in lockstep through randomized workloads shaped like
// the engine's real traffic — same-time seq ties, reserved
// (out-of-order) sequence numbers, shard-banded seqs from mailbox
// injection, far-future events that land in overflow rungs and the top
// list — and assert identical pop streams. CI runs them under -race;
// the structures are single-goroutine, so -race here is about catching
// accidental sharing introduced by future refactors, not concurrency.

// ladTestOp is one step of a generated workload.
type ladTestOp struct {
	push bool
	ev   event
}

// genLadderOps builds a push/pop schedule honoring the engine's one
// scheduling invariant: an event is never pushed before the time of
// the last event popped. Everything else is adversarial — time
// offsets are drawn from a mixture spanning "same instant" through
// "beyond the highest rung", and seq assignment mixes the monotone
// counter with reserved blocks (scheduled late, like Server chaining)
// and high shard bands (like mailbox injection).
func genLadderOps(rng *rand.Rand, n int) []ladTestOp {
	ops := make([]ladTestOp, 0, n)
	var now Time   // time of the last pop, simulated
	var seq uint64 // monotone engine counter
	var reserved []uint64
	var bandSeq uint64 // per-band counters share one monotone stream
	depth := 0
	// A simulated pop must know what would be popped to advance now.
	// Track pending keys in a simple sorted slice — this is the test's
	// own oracle for "now", independent of both structures under test.
	var pending []evKey
	insert := func(k evKey) {
		lo, hi := 0, len(pending)
		for lo < hi {
			m := (lo + hi) / 2
			if pending[m].before(k) {
				lo = m + 1
			} else {
				hi = m
			}
		}
		pending = append(pending, evKey{})
		copy(pending[lo+1:], pending[lo:])
		pending[lo] = k
	}
	for len(ops) < n {
		if depth == 0 || rng.Intn(100) < 55 {
			// Push. Offset mixture: ties, intra-bucket, rung 0/1,
			// high rungs, and far-future top-list territory.
			var off Time
			switch rng.Intn(10) {
			case 0, 1:
				off = 0 // same-instant tie
			case 2, 3, 4:
				off = Time(rng.Intn(1 << ladShift)) // inside one bucket
			case 5, 6:
				off = Time(rng.Intn(64 << ladShift)) // rung 0 span
			case 7:
				off = Time(rng.Int63n(1 << (ladShift + ladBits + 3))) // rung 1-2
			case 8:
				off = Time(rng.Int63n(1 << (ladShift + 4*ladBits))) // high rungs
			default:
				off = Time(rng.Int63n(1<<62)) + 1<<(ladShift+ladRungs*ladBits) // top list
			}
			at := now + off
			var s uint64
			switch rng.Intn(10) {
			case 0, 1:
				// Reserve a seq now, schedule it a few pushes later —
				// the Server chaining pattern that makes seqs arrive
				// out of order.
				seq++
				reserved = append(reserved, seq)
				continue
			case 2:
				// Shard-banded seq, as produced by cross-shard mailbox
				// injection (seq = shard<<48 | counter).
				bandSeq++
				s = uint64(1+rng.Intn(3))<<48 | bandSeq
			default:
				if len(reserved) > 0 && rng.Intn(3) == 0 {
					s = reserved[0]
					reserved = reserved[1:]
				} else {
					seq++
					s = seq
				}
			}
			ops = append(ops, ladTestOp{push: true, ev: event{at: at, seq: s}})
			insert(evKey{at: at, seq: s})
			depth++
		} else {
			ops = append(ops, ladTestOp{})
			now = pending[0].at
			pending = pending[1:]
			depth--
		}
	}
	return ops
}

// TestLadderHeapLockstep is the core differential test: ladder and
// heap consume identical op streams; every pop must return the same
// (at, seq), and between ops the observable minimum must agree.
func TestLadderHeapLockstep(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(3000)
		ops := genLadderOps(rng, n)
		var lad ladder
		var heap eventHeap
		for i, op := range ops {
			if op.push {
				lad.push(op.ev)
				heap.push(op.ev)
			} else {
				le, he := lad.pop(), heap.pop()
				lk := evKey{at: le.at, seq: le.seq}
				hk := evKey{at: he.at, seq: he.seq}
				if lk != hk {
					t.Fatalf("seed %d op %d: ladder popped (%v,%d), heap popped (%v,%d)",
						seed, i, le.at, le.seq, he.at, he.seq)
				}
			}
			if lad.len() != heap.len() {
				t.Fatalf("seed %d op %d: ladder len %d, heap len %d", seed, i, lad.len(), heap.len())
			}
			if lad.len() > 0 {
				if lad.minTime() != heap.minTime() {
					t.Fatalf("seed %d op %d: ladder minTime %v, heap minTime %v",
						seed, i, lad.minTime(), heap.minTime())
				}
				if lk, hk := lad.minKey(), heap.k[0]; lk != hk {
					t.Fatalf("seed %d op %d: ladder minKey %+v, heap minKey %+v", seed, i, lk, hk)
				}
			}
		}
		// Drain: the tails must match too (exercises refill cascades
		// through every rung and the top list in one sweep).
		for lad.len() > 0 {
			le, he := lad.pop(), heap.pop()
			if le.at != he.at || le.seq != he.seq {
				t.Fatalf("seed %d drain: ladder popped (%v,%d), heap popped (%v,%d)",
					seed, le.at, le.seq, he.at, he.seq)
			}
		}
		if heap.len() != 0 {
			t.Fatalf("seed %d: heap holds %d events after ladder drained", seed, heap.len())
		}
	}
}

// TestLadderSchedQ runs the same differential through the schedQ
// dispatcher — the layer the engine actually calls — flipping useHeap,
// and checks the peak-residency gauge agrees with the test's own
// high-water count.
func TestLadderSchedQ(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ops := genLadderOps(rng, 4000)
	var lq, hq schedQ
	hq.useHeap = true
	depth, peak := 0, 0
	for i, op := range ops {
		if op.push {
			lq.push(op.ev)
			hq.push(op.ev)
			depth++
			if depth > peak {
				peak = depth
			}
		} else {
			le, he := lq.pop(), hq.pop()
			depth--
			if le.at != he.at || le.seq != he.seq {
				t.Fatalf("op %d: ladder schedQ popped (%v,%d), heap schedQ popped (%v,%d)",
					i, le.at, le.seq, he.at, he.seq)
			}
		}
	}
	if lq.peak != peak || hq.peak != peak {
		t.Fatalf("peak residency: ladder %d, heap %d, want %d", lq.peak, hq.peak, peak)
	}
}

// TestLadderEngineIdentical runs a full engine workload — randomized
// timer cascades with same-instant bursts, reserved-seq runners, and
// far-future background events — under both schedulers and requires
// identical execution traces. DisableFastPaths forces every event
// through the scheduler queue, so same-time ties exercise the queue
// rather than the nowQueue ring.
func TestLadderEngineIdentical(t *testing.T) {
	for _, fastOff := range []bool{false, true} {
		trace := func(kind SchedulerKind) []Time {
			e := New(7)
			e.SetScheduler(kind)
			if fastOff {
				e.DisableFastPaths()
			}
			rng := rand.New(rand.NewSource(7))
			var log []Time
			var tick func()
			n := 0
			tick = func() {
				log = append(log, e.Now())
				n++
				if n >= 5000 {
					return
				}
				// Burst of same-instant events plus a spread of future
				// ones, some via reserved sequence numbers.
				for i := rng.Intn(3); i > 0; i-- {
					e.At(e.Now(), func() { log = append(log, e.Now()) })
				}
				off := Duration(rng.Intn(200 << ladShift))
				if rng.Intn(20) == 0 {
					off = Duration(rng.Int63n(3600 * int64(Second))) // deep rungs / top
				}
				seq := e.ReserveSeq()
				e.After(off/2+1, tick)
				e.AtRunReserved(e.Now().Add(off), seq, runnerFunc(func() {
					log = append(log, e.Now())
				}))
			}
			e.At(0, tick)
			e.MustRun()
			return log
		}
		lad, heap := trace(SchedLadder), trace(SchedHeap)
		if len(lad) != len(heap) {
			t.Fatalf("fastOff=%v: trace lengths differ: ladder %d, heap %d", fastOff, len(lad), len(heap))
		}
		for i := range lad {
			if lad[i] != heap[i] {
				t.Fatalf("fastOff=%v: traces diverge at %d: ladder %v, heap %v", fastOff, i, lad[i], heap[i])
			}
		}
	}
}

type runnerFunc func()

func (f runnerFunc) Step() { f() }

// TestLadderReanchor covers the drain-to-empty path: after the queue
// empties, the wheel re-anchors at the next push, however far in the
// future, and ordering still holds.
func TestLadderReanchor(t *testing.T) {
	var l ladder
	var h eventHeap
	at := Time(0)
	seq := uint64(0)
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 200; round++ {
		at += Time(rng.Int63n(24 * 3600 * int64(Second)))
		burst := 1 + rng.Intn(8)
		for i := 0; i < burst; i++ {
			seq++
			ev := event{at: at + Time(rng.Intn(1<<20)), seq: seq}
			l.push(ev)
			h.push(ev)
		}
		for l.len() > 0 {
			le, he := l.pop(), h.pop()
			if le.at != he.at || le.seq != he.seq {
				t.Fatalf("round %d: ladder (%v,%d) vs heap (%v,%d)", round, le.at, le.seq, he.at, he.seq)
			}
			if le.at > at {
				at = le.at
			}
		}
	}
}
