package sim

import (
	"strings"
	"testing"
)

// The stall watchdog distinguishes livelock (events executing forever
// at a frozen clock) from legitimate long runs (many events, advancing
// clock). These tests pin both sides.

func TestStallWatchdogTripsOnZeroTimeLoop(t *testing.T) {
	e := New(1)
	e.SetStallWatchdog(500)
	e.AddDiagnostic(func() []string { return []string{"retry ring: 3 messages cycling"} })
	var spin func()
	spin = func() { e.At(e.Now(), spin) }
	e.Spawn("bystander", func(p *Proc) {
		var s Signal
		s.Wait(p, "awaiting a wakeup that never comes")
	})
	e.At(0, spin)
	err := e.Run()
	we, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("expected WatchdogError, got %v", err)
	}
	if !strings.Contains(we.Error(), "stalled") {
		t.Fatalf("error does not identify the stall: %v", we)
	}
	if !strings.Contains(we.Error(), "retry ring: 3 messages cycling") {
		t.Fatalf("error is missing the registered diagnostic: %v", we)
	}
}

func TestStallWatchdogIgnoresAdvancingRun(t *testing.T) {
	e := New(1)
	e.SetStallWatchdog(100)
	e.Spawn("runner", func(p *Proc) {
		for i := 0; i < 5000; i++ {
			p.Advance(Nanosecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("advancing run tripped the stall watchdog: %v", err)
	}
}

func TestDeadlockErrorCarriesDiagnostics(t *testing.T) {
	e := New(1)
	e.AddDiagnostic(func() []string { return []string{"lock table: rank3 holds w0 exclusive"} })
	e.Spawn("waiter", func(p *Proc) {
		var s Signal
		s.Wait(p, "never signalled")
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	msg := de.Error()
	if !strings.Contains(msg, "never signalled") {
		t.Fatalf("deadlock report lost the park reason: %v", msg)
	}
	if !strings.Contains(msg, "lock table: rank3 holds w0 exclusive") {
		t.Fatalf("deadlock report is missing the registered diagnostic: %v", msg)
	}
}
