package sim

import (
	"strings"
	"testing"
)

func TestWatchdogTripsOnEventCount(t *testing.T) {
	e := New(1)
	e.SetWatchdog(100, 0)
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Advance(Microsecond)
		}
	})
	err := e.Run()
	we, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("expected WatchdogError, got %v", err)
	}
	if we.Events < 100 {
		t.Fatalf("tripped after %d events, limit was 100", we.Events)
	}
	if !strings.Contains(we.Error(), "watchdog tripped") {
		t.Fatalf("unhelpful error: %v", we)
	}
}

func TestWatchdogTripsOnVirtualTime(t *testing.T) {
	e := New(1)
	e.SetWatchdog(0, Time(Millisecond))
	e.Spawn("runner", func(p *Proc) {
		for {
			p.Advance(100 * Microsecond)
		}
	})
	err := e.Run()
	we, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("expected WatchdogError, got %v", err)
	}
	if we.Time < Time(Millisecond) {
		t.Fatalf("tripped at %v, limit was 1ms", we.Time)
	}
}

func TestWatchdogDisabledByDefault(t *testing.T) {
	e := New(1)
	e.Spawn("runner", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Advance(Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestKillStopsProcess(t *testing.T) {
	e := New(1)
	var victim *Proc
	steps := 0
	victim = e.Spawn("victim", func(p *Proc) {
		for {
			p.Advance(10 * Microsecond)
			steps++
		}
	})
	e.Spawn("killer", func(p *Proc) {
		p.Advance(35 * Microsecond)
		e.Kill(victim)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !victim.Killed() {
		t.Fatal("victim not marked killed")
	}
	// The victim advanced at t=10,20,30 and was killed at t=35 before
	// its t=40 step could run; the already-scheduled wake still pops
	// (advancing the clock) but never resumes the corpse.
	if steps != 3 {
		t.Fatalf("victim took %d steps, want 3", steps)
	}
	if e.Now() != Time(40*Microsecond) {
		t.Fatalf("end time %v, want 40us", e.Now())
	}
}

func TestBackgroundEventsDiscardedAfterKill(t *testing.T) {
	e := New(1)
	bgRuns := 0
	var beat func()
	beat = func() {
		bgRuns++
		e.AfterBG(10*Microsecond, beat)
	}
	var never Signal
	victim := e.Spawn("victim", func(p *Proc) {
		beat()
		never.Wait(p, "waiting forever")
	})
	e.Spawn("killer", func(p *Proc) {
		p.Advance(25 * Microsecond)
		e.Kill(victim)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Beats at 0,10,20 ran; once both procs were gone (killer exits at
	// 25us) the pending bg beat was discarded without advancing time.
	if e.Now() != Time(25*Microsecond) {
		t.Fatalf("bg events extended the run to %v", e.Now())
	}
	if bgRuns != 3 {
		t.Fatalf("bg beat ran %d times, want 3", bgRuns)
	}
}
