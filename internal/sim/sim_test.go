package sim

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestAdvanceAccumulatesVirtualTime(t *testing.T) {
	e := New(1)
	var end Time
	e.Spawn("a", func(p *Proc) {
		p.Advance(10 * Microsecond)
		p.Advance(5 * Microsecond)
		end = p.Now()
	})
	e.MustRun()
	if end != Time(15*Microsecond) {
		t.Fatalf("end = %v, want 15us", end)
	}
}

func TestAdvanceZeroIsNoop(t *testing.T) {
	e := New(1)
	e.Spawn("a", func(p *Proc) {
		p.Advance(0)
		if p.Now() != 0 {
			t.Errorf("now = %v, want 0", p.Now())
		}
	})
	e.MustRun()
}

func TestAdvanceNegativePanics(t *testing.T) {
	e := New(1)
	e.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for negative Advance")
			}
		}()
		p.Advance(-1)
	})
	_ = e.Run()
}

func TestAdvanceTo(t *testing.T) {
	e := New(1)
	e.Spawn("a", func(p *Proc) {
		p.AdvanceTo(100)
		if p.Now() != 100 {
			t.Errorf("now = %v, want 100", p.Now())
		}
		p.AdvanceTo(50) // in the past: no-op
		if p.Now() != 100 {
			t.Errorf("now = %v after past AdvanceTo, want 100", p.Now())
		}
	})
	e.MustRun()
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.MustRun()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.MustRun()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	_ = e.Run()
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() []string {
		e := New(42)
		var trace []string
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Advance(Duration(1+e.Rand().Intn(5)) * Microsecond)
					trace = append(trace, fmt.Sprintf("%s@%v", p.Name(), p.Now()))
				}
			})
		}
		e.MustRun()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestCompletionReleasesAwaiters(t *testing.T) {
	e := New(1)
	var c Completion
	var wokeAt Time
	e.Spawn("waiter", func(p *Proc) {
		c.Await(p, "test")
		wokeAt = p.Now()
	})
	e.Spawn("completer", func(p *Proc) {
		p.Advance(25 * Microsecond)
		c.Complete()
	})
	e.MustRun()
	if wokeAt != Time(25*Microsecond) {
		t.Fatalf("woke at %v, want 25us", wokeAt)
	}
	if !c.Done() {
		t.Fatal("completion not done")
	}
}

func TestCompletionAwaitAfterDoneReturnsImmediately(t *testing.T) {
	e := New(1)
	var c Completion
	c.Complete()
	c.Complete() // double-complete is a no-op
	e.Spawn("w", func(p *Proc) {
		c.Await(p, "test")
		if p.Now() != 0 {
			t.Errorf("await consumed time: %v", p.Now())
		}
	})
	e.MustRun()
}

func TestCompletionSetWaitsForAll(t *testing.T) {
	e := New(1)
	var cs CompletionSet
	cs.Add(3)
	var wokeAt Time
	e.Spawn("waiter", func(p *Proc) {
		cs.Wait(p, "all ops")
		wokeAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := Duration(i*10) * Microsecond
		e.After(d, cs.Done)
	}
	e.MustRun()
	if wokeAt != Time(30*Microsecond) {
		t.Fatalf("woke at %v, want 30us", wokeAt)
	}
	if cs.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", cs.Pending())
	}
}

func TestCompletionSetUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on Done without Add")
		}
	}()
	var cs CompletionSet
	cs.Done()
}

func TestQueueFIFO(t *testing.T) {
	e := New(1)
	var q Queue[int]
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p, "consuming"))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Advance(Microsecond)
			q.Put(i)
		}
	})
	e.MustRun()
	for i := range got {
		if got[i] != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestQueueTryGet(t *testing.T) {
	var q Queue[string]
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put("x")
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	v, ok := q.TryGet()
	if !ok || v != "x" {
		t.Fatalf("TryGet = %q, %v", v, ok)
	}
}

func TestQueueMultipleBlockedGetters(t *testing.T) {
	e := New(1)
	var q Queue[int]
	sum := 0
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("g%d", i), func(p *Proc) {
			sum += q.Get(p, "get")
		})
	}
	e.Spawn("put", func(p *Proc) {
		p.Advance(Microsecond)
		q.Put(1)
		q.Put(2)
		q.Put(3)
	})
	e.MustRun()
	if sum != 6 {
		t.Fatalf("sum = %d, want 6", sum)
	}
}

func TestServerSerializesJobs(t *testing.T) {
	e := New(1)
	s := NewServer(e)
	var ends []Time
	record := func() { ends = append(ends, e.Now()) }
	// Three jobs submitted at t=0, each 10us: they must finish at 10, 20, 30.
	s.Submit(0, 10*Microsecond, record)
	s.Submit(0, 10*Microsecond, record)
	s.Submit(0, 10*Microsecond, record)
	e.MustRun()
	want := []Time{Time(10 * Microsecond), Time(20 * Microsecond), Time(30 * Microsecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if s.Jobs() != 3 || s.TotalBusy() != 30*Microsecond {
		t.Fatalf("jobs=%d busy=%v", s.Jobs(), s.TotalBusy())
	}
}

func TestServerRespectsReadyTime(t *testing.T) {
	e := New(1)
	s := NewServer(e)
	end := s.Submit(Time(100*Microsecond), 5*Microsecond, nil)
	if end != Time(105*Microsecond) {
		t.Fatalf("end = %v, want 105us", end)
	}
	// A job ready earlier but submitted after queues behind the first.
	end2 := s.Submit(0, 5*Microsecond, nil)
	if end2 != Time(110*Microsecond) {
		t.Fatalf("end2 = %v, want 110us", end2)
	}
	e.MustRun()
}

func TestServerIdleGapThenBusy(t *testing.T) {
	e := New(1)
	s := NewServer(e)
	s.Submit(0, 10*Microsecond, nil)
	// Job becoming ready after the backlog drains starts at its ready time.
	end := s.Submit(Time(50*Microsecond), 10*Microsecond, nil)
	if end != Time(60*Microsecond) {
		t.Fatalf("end = %v, want 60us", end)
	}
	e.MustRun()
}

func TestDeadlockDetection(t *testing.T) {
	e := New(1)
	var c Completion
	e.Spawn("stuck", func(p *Proc) {
		c.Await(p, "never completed")
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Stuck) != 1 || de.Stuck[0] != "stuck: never completed" {
		t.Fatalf("stuck = %v", de.Stuck)
	}
	if de.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	e := New(1)
	var s Signal
	ready := false
	woke := 0
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for !ready {
				s.Wait(p, "ready")
			}
			woke++
		})
	}
	e.Spawn("b", func(p *Proc) {
		p.Advance(Microsecond)
		ready = true
		s.Broadcast()
	})
	e.MustRun()
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
}

func TestSpawnAtDelaysStart(t *testing.T) {
	e := New(1)
	var started Time
	e.SpawnAt(Time(40*Microsecond), "late", func(p *Proc) { started = p.Now() })
	e.MustRun()
	if started != Time(40*Microsecond) {
		t.Fatalf("started at %v, want 40us", started)
	}
}

func TestProcAccessors(t *testing.T) {
	e := New(1)
	e.Spawn("alpha", func(p *Proc) {
		if p.Name() != "alpha" || p.ID() != 0 || p.Engine() != e {
			t.Errorf("accessors wrong: %v %v", p.Name(), p.ID())
		}
		if p.String() != "proc(alpha)" {
			t.Errorf("String = %q", p.String())
		}
	})
	e.MustRun()
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if d.Micros() != 1500 {
		t.Errorf("Micros = %v", d.Micros())
	}
	if d.Millis() != 1.5 {
		t.Errorf("Millis = %v", d.Millis())
	}
	if (2 * Second).Seconds() != 2 {
		t.Errorf("Seconds = %v", (2 * Second).Seconds())
	}
	if Microseconds(2.5) != 2500*Nanosecond {
		t.Errorf("Microseconds = %v", Microseconds(2.5))
	}
	tm := Time(0).Add(3 * Microsecond)
	if tm.Sub(Time(Microsecond)) != 2*Microsecond {
		t.Errorf("Sub = %v", tm.Sub(Time(Microsecond)))
	}
	if tm.Micros() != 3 {
		t.Errorf("Time.Micros = %v", tm.Micros())
	}
	if tm.String() != "3.000us" || (3*Microsecond).String() != "3.000us" {
		t.Errorf("String = %q %q", tm.String(), (3 * Microsecond).String())
	}
}

// Property: for any set of (time, payload) events, the engine fires them
// in nondecreasing time order, with ties broken by scheduling order.
func TestEventOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		e := New(1)
		type fired struct {
			at  Time
			idx int
		}
		var got []fired
		for i, raw := range times {
			i := i
			at := Time(raw)
			e.At(at, func() { got = append(got, fired{at, i}) })
		}
		e.MustRun()
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].at != got[j].at {
				return got[i].at < got[j].at
			}
			return got[i].idx < got[j].idx
		}) {
			return false
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a serial server's completions for same-ready jobs equal the
// prefix sums of their durations.
func TestServerPrefixSumProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		e := New(1)
		s := NewServer(e)
		var sum Duration
		for _, d := range durs {
			dd := Duration(d)
			sum += dd
			if s.Submit(0, dd, nil) != Time(sum) {
				return false
			}
		}
		return s.TotalBusy() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Advance in random slices always lands the process at the sum.
func TestAdvanceSumProperty(t *testing.T) {
	f := func(steps []uint16, seed int64) bool {
		e := New(seed)
		var sum Duration
		ok := true
		e.Spawn("p", func(p *Proc) {
			for _, s := range steps {
				sum += Duration(s)
				p.Advance(Duration(s))
			}
			ok = p.Now() == Time(sum)
		})
		e.MustRun()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Microsecond, tick)
		}
	}
	b.ResetTimer()
	e.After(Microsecond, tick)
	e.MustRun()
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := New(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Microsecond)
		}
	})
	b.ResetTimer()
	e.MustRun()
}
