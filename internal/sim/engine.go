// Package sim provides a deterministic discrete-event simulation engine
// with cooperatively scheduled goroutine processes running in virtual time.
//
// The engine executes exactly one goroutine at a time: either the event
// loop itself or a single resumed process. Processes hand control back by
// parking (blocking on a simulation primitive) or by returning. Because of
// this strict alternation, simulation state — including state shared
// between processes — needs no locking, and runs are fully deterministic
// given a seed.
//
// All simulated time is virtual: a Proc that calls Advance consumes
// simulated nanoseconds, not wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String formats a Time as microseconds, the natural scale of the models
// in this repository.
func (t Time) String() string { return fmt.Sprintf("%.3fus", float64(t)/1e3) }

// String formats a Duration as microseconds.
func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e3) }

// Micros converts a Duration to floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis converts a Duration to floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

// Seconds converts a Duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros converts an absolute Time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Add offsets a Time by a Duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds builds a Duration from a floating-point microsecond count.
func Microseconds(us float64) Duration { return Duration(us * 1e3) }

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq) so runs are deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. Create one with New, spawn
// processes with Spawn, then call Run.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	yield  chan struct{}
	procs  []*Proc
	live   int
	rng    *rand.Rand

	panicked bool
	panicVal interface{}
}

// New returns an Engine whose random source is seeded with seed, so that
// any randomized model decisions are reproducible.
func New(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation context (event callbacks or running processes).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the model and panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

// Spawn creates a new process named name running fn and schedules it to
// start at the current virtual time. The returned Proc may be used as a
// wake target before it has started.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with an explicit start time.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}),
		state:  stateNew,
	}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.panicVal = r
				e.panicked = true
			}
			p.state = stateDone
			e.live--
			e.yield <- struct{}{}
		}()
		<-p.resume
		fn(p)
	}()
	e.At(t, func() {
		if p.state == stateNew {
			p.state = stateRunning
			e.transfer(p)
		}
	})
	return p
}

// transfer hands control to p and blocks until p parks or terminates.
// It must only be called from engine context (inside an event callback).
// A panic inside the process is re-raised here, in the engine's
// goroutine, so it propagates out of Run to the harness or test.
func (e *Engine) transfer(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
	if e.panicked {
		panic(e.panicVal)
	}
}

// DeadlockError reports that Run exhausted all events while processes were
// still parked: the simulated system can make no further progress.
type DeadlockError struct {
	Time  Time
	Stuck []string // "name: reason" for each parked process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v; %d stuck: %s",
		d.Time, len(d.Stuck), strings.Join(d.Stuck, "; "))
}

// Run executes events until none remain. It returns a *DeadlockError if
// processes remain parked with no pending events, and nil otherwise.
func (e *Engine) Run() error {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	if e.live > 0 {
		d := &DeadlockError{Time: e.now}
		for _, p := range e.procs {
			if p.state == stateParked || p.state == stateNew {
				d.Stuck = append(d.Stuck, p.name+": "+p.parkReason)
			}
		}
		sort.Strings(d.Stuck)
		return d
	}
	return nil
}

// MustRun is Run but panics on deadlock; used by tests and benchmarks
// where a deadlock is a bug in the model.
func (e *Engine) MustRun() {
	if err := e.Run(); err != nil {
		panic(err)
	}
}
