// Package sim provides a deterministic discrete-event simulation engine
// with cooperatively scheduled goroutine processes running in virtual time.
//
// The engine executes exactly one goroutine at a time: either the event
// loop itself or a single resumed process. Processes hand control back by
// parking (blocking on a simulation primitive) or by returning. Because of
// this strict alternation, simulation state — including state shared
// between processes — needs no locking, and runs are fully deterministic
// given a seed.
//
// All simulated time is virtual: a Proc that calls Advance consumes
// simulated nanoseconds, not wall-clock time.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String formats a Time as microseconds, the natural scale of the models
// in this repository.
func (t Time) String() string { return fmt.Sprintf("%.3fus", float64(t)/1e3) }

// String formats a Duration as microseconds.
func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e3) }

// Micros converts a Duration to floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis converts a Duration to floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

// Seconds converts a Duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros converts an absolute Time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Add offsets a Time by a Duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds builds a Duration from a floating-point microsecond count.
func Microseconds(us float64) Duration { return Duration(us * 1e3) }

// eventKind discriminates the event payload, letting the hot resume
// paths (Advance, wake, Spawn start) carry a *Proc directly instead of
// allocating a closure per event.
type eventKind uint8

const (
	evFn     eventKind = iota // run fn
	evResume                  // resume a parked process
	evStart                   // first activation of a spawned process
	evRun                     // step a Runner (closure-free callback)
)

// Runner is a closure-free event callback: long-lived objects that pass
// through several scheduled stages (e.g. an RMA operation going
// arrival → service → ack) implement Step and are scheduled with AtRun,
// so the steady-state event loop allocates nothing per stage.
type Runner interface {
	Step()
}

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq) so runs are deterministic. Background events (bg) are
// housekeeping — heartbeats, retransmission timers, fault schedules —
// that must not keep the simulation alive: once every process has
// terminated they are discarded without executing or advancing the
// clock, so enabling such machinery never changes a run's end time.
type event struct {
	at   Time
	seq  uint64
	fn   func() // evFn only
	p    *Proc  // evResume/evStart only
	run  Runner // evRun only
	kind eventKind
	bg   bool
}

// evKey is the (at, seq) ordering key of an event — the total order
// every scheduler implementation must pop in. In the heap, keys live
// in their own array so a sift comparison touches 16 bytes, not the
// whole event — four keys share a cache line.
type evKey struct {
	at  Time
	seq uint64
}

// before reports (at, seq) order.
func (k evKey) before(o evKey) bool {
	return k.at < o.at || (k.at == o.at && k.seq < o.seq)
}

// evPayload is the rest of an event, moved only when a sift actually
// relocates an element.
type evPayload struct {
	fn   func() // evFn only
	p    *Proc  // evResume/evStart only
	run  Runner // evRun only
	kind eventKind
	bg   bool
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, seq),
// stored as parallel key/payload arrays. Unlike container/heap it never
// boxes an event into an interface, so push/pop allocate nothing beyond
// amortized slice growth; the shallower tree halves the sift-down depth
// of the binary version; and the split layout keeps comparisons inside
// the dense key array. Sifts percolate a hole instead of swapping.
// Formerly the engine's scheduler; today the ladder queue (ladder.go)
// holds that job and the heap survives, unchanged, as the
// differential-testing oracle behind -sched heap and the lockstep
// fuzz in ladder_test.go.
type eventHeap struct {
	k []evKey
	v []evPayload
}

func (h *eventHeap) len() int { return len(h.k) }

// minTime returns the earliest scheduled time; the heap must be
// non-empty.
func (h *eventHeap) minTime() Time { return h.k[0].at }

func (h *eventHeap) push(ev event) {
	h.k = append(h.k, evKey{at: ev.at, seq: ev.seq})
	h.v = append(h.v, evPayload{fn: ev.fn, p: ev.p, run: ev.run, kind: ev.kind, bg: ev.bg})
	k, v := h.k, h.v
	i := len(k) - 1
	kk, vv := k[i], v[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !kk.before(k[parent]) {
			break
		}
		k[i], v[i] = k[parent], v[parent]
		i = parent
	}
	k[i], v[i] = kk, vv
}

// popInto removes the minimum, writing it to *dst (see ladder.popInto
// for why the hot pop path writes through a pointer).
func (h *eventHeap) popInto(dst *event) {
	k, v := h.k, h.v
	*dst = event{at: k[0].at, seq: k[0].seq,
		fn: v[0].fn, p: v[0].p, run: v[0].run, kind: v[0].kind, bg: v[0].bg}
	n := len(k) - 1
	k[0], v[0] = k[n], v[n]
	v[n] = evPayload{} // clear fn/p/run so the recycled slot retains nothing
	h.k, h.v = k[:n], v[:n]
	if n > 1 {
		h.siftDown()
	}
}

// pop is popInto for callers off the hot path (tests, the fuzz oracle).
func (h *eventHeap) pop() event {
	var ev event
	h.popInto(&ev)
	return ev
}

func (h *eventHeap) siftDown() {
	k, v := h.k, h.v
	n := len(k)
	kk, vv := k[0], v[0] // the element being sifted, held out as a hole
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if k[c].before(k[min]) {
				min = c
			}
		}
		if !k[min].before(kk) {
			break
		}
		k[i], v[i] = k[min], v[min]
		i = min
	}
	k[i], v[i] = kk, vv
}

// SchedulerKind selects the engine's event-scheduler implementation.
type SchedulerKind uint8

// Scheduler kinds. The ladder queue is the default; the heap survives
// as the differential-testing oracle behind casperbench -sched and the
// lockstep fuzz in ladder_test.go.
const (
	SchedLadder SchedulerKind = iota
	SchedHeap
)

// String implements fmt.Stringer.
func (k SchedulerKind) String() string {
	if k == SchedHeap {
		return "heap"
	}
	return "ladder"
}

// ParseScheduler converts a -sched flag value to a SchedulerKind.
func ParseScheduler(s string) (SchedulerKind, error) {
	switch s {
	case "ladder":
		return SchedLadder, nil
	case "heap":
		return SchedHeap, nil
	}
	return 0, fmt.Errorf("sim: unknown scheduler %q (want heap or ladder)", s)
}

// SchedulerState is a diagnostic snapshot of the event scheduler,
// embedded in watchdog/stall/deadlock reports so a frozen-clock
// diagnosis names the blocking structure, not just the timestamp.
type SchedulerState struct {
	Impl   string // "ladder" or "heap"
	Depth  int    // pending events, next-event cache included
	Peak   int    // lifetime high-water mark of Depth
	SpanLo Time   // active ladder-bucket span start (ladder only)
	SpanHi Time   // exclusive span end; zero when heap or bucket inactive
}

// String formats the snapshot as a single diagnostic line.
func (s SchedulerState) String() string {
	line := fmt.Sprintf("scheduler: %s depth=%d peak=%d", s.Impl, s.Depth, s.Peak)
	if s.SpanHi > 0 {
		line += fmt.Sprintf(" active=[%v,%v)", s.SpanLo, s.SpanHi)
	}
	return line
}

// schedQ is the engine's pending-event scheduler: the ladder queue by
// default, with the 4-ary heap retained as the A/B differential-testing
// oracle. schedQ itself keeps the residency bookkeeping and dispatches;
// the next-event register the hot paths read (minTime on every inline
// advance, minKey on every merge-pop and window-horizon computation) is
// the ladder's own bottom slot, an O(1) field load either way.
type schedQ struct {
	n       int // pending events
	peak    int // high-water mark of n (see Engine.PeakQueueResidency)
	useHeap bool
	lad     ladder
	heap    eventHeap
}

func (q *schedQ) len() int { return q.n }

// minTime returns the earliest scheduled time; the queue must be
// non-empty.
func (q *schedQ) minTime() Time {
	if q.useHeap {
		return q.heap.minTime()
	}
	return q.lad.minTime()
}

// minKey returns the (at, seq) key of the earliest event; the queue
// must be non-empty.
func (q *schedQ) minKey() evKey {
	if q.useHeap {
		return q.heap.k[0]
	}
	return q.lad.minKey()
}

// minEvent returns the earliest pending event without popping it, for
// diagnostics; the queue must be non-empty.
func (q *schedQ) minEvent() event {
	if q.useHeap {
		k, v := q.heap.k[0], q.heap.v[0]
		return event{at: k.at, seq: k.seq, fn: v.fn, p: v.p, run: v.run, kind: v.kind, bg: v.bg}
	}
	return q.lad.minEvent()
}

func (q *schedQ) push(ev event) {
	q.n++
	if q.n > q.peak {
		q.peak = q.n
	}
	if q.useHeap {
		q.heap.push(ev)
	} else {
		q.lad.push(ev)
	}
}

// popInto removes the minimum, writing it to *dst (see ladder.popInto).
func (q *schedQ) popInto(dst *event) {
	q.n--
	if q.useHeap {
		q.heap.popInto(dst)
		return
	}
	q.lad.popInto(dst)
}

// pop is popInto for callers off the hot path (tests, the fuzz oracle).
func (q *schedQ) pop() event {
	var ev event
	q.popInto(&ev)
	return ev
}

// nowQueue is a FIFO of events scheduled at exactly the current virtual
// time. Same-time events fire in scheduling (seq) order, which for a
// FIFO is just insertion order — so they bypass the scheduler queue
// entirely: O(1) push and pop with no insert/sift traffic. Pop sites
// merge the FIFO head with the queue minimum by (at, seq) (see
// Engine.nextEvent), which keeps the interleaving with queued events
// exactly what a single totally-ordered structure would produce.
type nowQueue struct {
	a    []event
	head int
}

func (q *nowQueue) len() int { return len(q.a) - q.head }

// headKey returns the (at, seq) key of the oldest queued event; the
// queue must be non-empty.
func (q *nowQueue) headKey() evKey {
	ev := &q.a[q.head]
	return evKey{at: ev.at, seq: ev.seq}
}

func (q *nowQueue) push(ev event) { q.a = append(q.a, ev) }

// popInto removes the oldest queued event, writing it to *dst (see
// ladder.popInto for why the hot pop path writes through a pointer).
func (q *nowQueue) popInto(dst *event) {
	*dst = q.a[q.head]
	q.a[q.head] = event{} // clear fn/p/run so the slot retains nothing
	q.head++
	if q.head == len(q.a) {
		q.a = q.a[:0]
		q.head = 0
	}
}

// Engine is a discrete-event simulator. Create one with New, spawn
// processes with Spawn, then call Run.
type Engine struct {
	now    Time
	events schedQ
	nowq   nowQueue // same-time events, run before the scheduler
	seq    uint64
	yield  chan struct{}
	procs  []*Proc
	live   int
	rng    *rand.Rand

	executed  int64 // events executed, for the watchdog
	inlined   int64 // Advance calls completed inline (no park/resume)
	fastOff   bool  // disable run-to-completion fast paths (A/B testing)
	maxEvents int64 // watchdog: 0 disables
	maxTime   Time  // watchdog: 0 disables

	// Stall watchdog: trip when stallEvents execute without the clock
	// advancing (a livelock spinning at one instant). 0 disables.
	stallEvents     int64
	lastAdvance     Time  // now at the last observed clock advance
	lastAdvanceExec int64 // executed count when the clock last advanced

	diagnostics []func() []string // extra context appended to errors

	panicked bool
	panicVal interface{}

	// Sharded execution (see ShardGroup). limit is the exclusive upper
	// bound of the current safe window: runWindow and a driving process
	// stop before executing any event at limit or beyond. limited gates
	// the per-iteration window check out of the serial hot loops; shard
	// is this engine's index within its group; bgDiscard is set by the
	// coordinator once no process anywhere in the group is alive, so
	// background housekeeping stops exactly as in a serial run; wdErr
	// records a watchdog trip inside runWindow for the coordinator.
	limit     Time
	winCap    int64 // absolute executed-events bound for this window (0 = none)
	limited   bool
	shard     int
	bgDiscard bool
	wdErr     *WatchdogError
}

// timeMax is the largest representable Time; a serial engine's window
// limit, meaning "no limit".
const timeMax = Time(math.MaxInt64)

// New returns an Engine whose random source is seeded with seed, so that
// any randomized model decisions are reproducible.
//
// The yield channel is a one-slot semaphore, not a rendezvous: strict
// alternation guarantees at most one token is ever in flight, so a
// deposit never blocks and every park/resume costs one blocking channel
// operation instead of two (see transfer and Proc.park).
func New(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}, 1),
		rng:   rand.New(rand.NewSource(seed)),
		limit: timeMax,
	}
}

// SetScheduler selects the scheduler backing store. It must be called
// before anything is scheduled — switching with events pending would
// strand them in the other store.
func (e *Engine) SetScheduler(kind SchedulerKind) {
	if e.events.len() != 0 || e.executed != 0 {
		panic("sim: SetScheduler on an engine already in use")
	}
	e.events.useHeap = kind == SchedHeap
}

// Scheduler reports the selected scheduler kind.
func (e *Engine) Scheduler() SchedulerKind {
	if e.events.useHeap {
		return SchedHeap
	}
	return SchedLadder
}

// PeakQueueResidency returns the high-water mark of events pending in
// the scheduler (next-event cache included) over the engine's
// lifetime: the scheduler's working-set size, reported alongside
// events/sec in bench output.
func (e *Engine) PeakQueueResidency() int { return e.events.peak }

// SchedulerState snapshots the scheduler for diagnostics.
func (e *Engine) SchedulerState() SchedulerState {
	s := SchedulerState{
		Impl:  e.Scheduler().String(),
		Depth: e.events.len(),
		Peak:  e.events.peak,
	}
	if !e.events.useHeap && e.events.lad.len() > 0 {
		s.SpanLo, s.SpanHi = e.events.lad.activeSpan()
	}
	return s
}

// schedulerLines renders the scheduler snapshot for error diagnostics.
func (e *Engine) schedulerLines() []string {
	return []string{e.SchedulerState().String()}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation context (event callbacks or running processes).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// schedule routes an event to the now-queue or the scheduler queue.
// Every event at exactly the current time joins the FIFO: its entries
// are in seq order by construction (seq is monotonic), and the pop
// sites merge the FIFO head against the queue minimum by (at, seq), so
// the global execution order is exactly what a single queue would
// produce while same-time events skip the insert traffic entirely —
// the same-time event fusion of the run-to-completion fast path.
func (e *Engine) schedule(ev event) {
	if ev.at == e.now && !e.fastOff {
		e.nowq.push(ev)
		return
	}
	e.events.push(ev)
}

// nextEvent pops the globally next event by (at, seq) into *ev,
// merging the now-queue with the scheduler queue; it reports false,
// leaving *ev untouched, when both are empty. The pointer form exists
// for the hot loops (Run, runWindow, Proc.drive): writing through a
// caller-owned slot instead of returning a 56-byte event by value
// spares two struct copies per pop across non-inlined frames.
// The now-queue drains before the clock can advance: its entries carry
// at == now, which no queued event can beat without an equal at and a
// smaller seq.
func (e *Engine) nextEvent(ev *event) bool {
	if e.nowq.len() > 0 {
		if e.events.len() > 0 && e.events.minKey().before(e.nowq.headKey()) {
			e.events.popInto(ev)
		} else {
			e.nowq.popInto(ev)
		}
		return true
	}
	if e.events.len() > 0 {
		e.events.popInto(ev)
		return true
	}
	return false
}

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the model and panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.schedule(event{at: t, seq: e.seq, fn: fn})
}

// AtRun schedules r.Step() at virtual time t. It is At for Runner
// implementations: scheduling a pointer-backed Runner allocates
// nothing, which is why the RMA message path uses it for every stage of
// an operation's lifecycle.
func (e *Engine) AtRun(t Time, r Runner) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.schedule(event{at: t, seq: e.seq, run: r, kind: evRun})
}

// AfterRun schedules r.Step() d from now.
func (e *Engine) AfterRun(d Duration, r Runner) { e.AtRun(e.now.Add(d), r) }

// scheduleReserved schedules r at (t, seq) where seq was reserved at an
// earlier instant (see Server.enqueue). The event goes straight to the
// scheduler queue: the now-queue's FIFO ordering only holds for
// monotone seq, and the queue orders arbitrary keys — the pop-side
// merge keeps the global order exact either way.
func (e *Engine) scheduleReserved(t Time, seq uint64, r Runner) {
	e.events.push(event{at: t, seq: seq, run: r, kind: evRun})
}

// ReserveSeq allocates the next event sequence number without
// scheduling anything. Callers that keep their own FIFO of future
// events (completion times monotone within the FIFO) reserve each
// event's seq up front and schedule only the head via AtRunReserved;
// the executed timeline is then identical to scheduling everything
// eagerly, while the scheduler holds one resident event per FIFO.
func (e *Engine) ReserveSeq() uint64 {
	e.seq++
	return e.seq
}

// AtRunReserved schedules r.Step() at t under a previously reserved
// sequence number (see ReserveSeq).
func (e *Engine) AtRunReserved(t Time, seq uint64, r Runner) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.scheduleReserved(t, seq, r)
}

// FastPathsDisabled reports whether DisableFastPaths was called, so
// layered schedulers can keep their own fast paths aligned with the
// engine's A/B knob.
func (e *Engine) FastPathsDisabled() bool { return e.fastOff }

// atResume schedules a closure-free resume of p at t (the Advance and
// wake hot path).
func (e *Engine) atResume(t Time, p *Proc) {
	e.seq++
	e.schedule(event{at: t, seq: e.seq, p: p, kind: evResume})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

// AtBG schedules a background event at t: it runs like a normal event
// while any process is alive, but is silently discarded once all
// processes have terminated, so it can never extend a run.
func (e *Engine) AtBG(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.schedule(event{at: t, seq: e.seq, fn: fn, bg: true})
}

// AfterBG is AtBG relative to now.
func (e *Engine) AfterBG(d Duration, fn func()) { e.AtBG(e.now.Add(d), fn) }

// SetWatchdog arms limits on total events executed and on virtual time
// reached; Run fails with a *WatchdogError when either is exceeded.
// Zero disables the corresponding limit. This turns a runaway loop
// (e.g. an endless retransmission cycle) into a fast, diagnosable
// failure instead of a spin.
func (e *Engine) SetWatchdog(maxEvents int64, maxTime Time) {
	e.maxEvents = maxEvents
	e.maxTime = maxTime
}

// SetStallWatchdog arms a livelock detector: Run fails with a
// *WatchdogError when events consecutive events execute without the
// virtual clock advancing. Unlike the total-event limit this scales
// with the workload — any amount of forward progress resets it. Zero
// disables.
func (e *Engine) SetStallWatchdog(events int64) { e.stallEvents = events }

// AddDiagnostic registers a callback that contributes context lines
// (e.g. a wait-for graph) to DeadlockError and WatchdogError. The
// callback runs only when such an error is being built.
func (e *Engine) AddDiagnostic(fn func() []string) {
	e.diagnostics = append(e.diagnostics, fn)
}

func (e *Engine) collectDiagnostics() []string {
	var out []string
	for _, fn := range e.diagnostics {
		out = append(out, fn()...)
	}
	return out
}

// EventsExecuted returns the number of events Run has executed so far.
// Inline-completed advances count: they are resume events whose
// park/resume round trip was elided, not eliminated work.
func (e *Engine) EventsExecuted() int64 { return e.executed }

// InlinedAdvances returns how many Advance calls completed inline —
// without parking, waking, or touching the scheduler queue — under the
// run-to-completion fast path.
func (e *Engine) InlinedAdvances() int64 { return e.inlined }

// DisableFastPaths turns off the run-to-completion optimizations
// (inline advance and same-time event fusion), forcing every event
// through the scheduler queue and every Advance through a park/resume
// pair. Runs
// are bit-identical either way — the knob exists so tests can assert
// exactly that, and so regressions can be bisected to the fast path.
func (e *Engine) DisableFastPaths() { e.fastOff = true }

// advanceInlineOK reports whether a running process may advance the
// clock to t without parking: nothing else is scheduled to run before
// (or at) t, so popping the resume event would be the engine's
// immediate next action anyway. Inlining is also suppressed while any
// watchdog is armed, keeping watchdog trip points (which are observed
// between events) bit-identical to the slow path.
func (e *Engine) advanceInlineOK(t Time) bool {
	if e.fastOff || e.maxEvents > 0 || e.maxTime > 0 || e.stallEvents > 0 {
		return false
	}
	if t >= e.limit {
		// The advance would cross the current safe window: the process
		// must park so the window barrier sees a quiescent shard.
		return false
	}
	if e.winCap > 0 && e.executed >= e.winCap {
		// Window event cap reached (group budget backstop): park so the
		// shard returns to the barrier.
		return false
	}
	return e.nowq.len() == 0 && (e.events.len() == 0 || e.events.minTime() > t)
}

// noteInlineAdvance commits an inline advance to t: the engine state
// mutates exactly as if the resume event had been pushed, popped and
// executed — clock, event count, seq and stall bookkeeping all match
// the slow path bit for bit.
func (e *Engine) noteInlineAdvance(t Time) {
	e.seq++
	e.lastAdvance = t
	e.lastAdvanceExec = e.executed
	e.now = t
	e.executed++
	e.inlined++
}

// Kill terminates a process from engine context without resuming it:
// the process is removed from the live count and every future attempt
// to wake or resume it becomes a no-op. Its goroutine stays parked for
// the remainder of the program — the simulation analogue of a process
// that died with state intact. Killing a finished process is a no-op.
func (e *Engine) Kill(p *Proc) {
	if p.state == stateDone || p.killed {
		return
	}
	p.killed = true
	e.live--
}

// Freeze suspends a process from engine context without terminating it:
// resume and start events addressed to it are swallowed until Thaw,
// which replays at most one of them. Unlike Kill the process stays in
// the live count — a frozen process is expected back, so the simulation
// must not end (or discard background events) while it sleeps. Freezing
// a finished or killed process is a no-op; it reports whether the
// freeze took effect.
func (e *Engine) Freeze(p *Proc) bool {
	if p.state == stateDone || p.killed || p.frozen {
		return false
	}
	p.frozen = true
	return true
}

// Thaw lifts a Freeze. If any wakeup was swallowed while frozen, a
// single resume (or start) is scheduled now: the waiting primitives all
// re-check their predicates after waking, so coalescing any number of
// deferred wakeups into one is indistinguishable from delivering them
// all. Thawing a process that was never frozen is a no-op.
func (e *Engine) Thaw(p *Proc) {
	if !p.frozen {
		return
	}
	p.frozen = false
	if !p.deferredWake {
		return
	}
	p.deferredWake = false
	e.seq++
	kind := evResume
	if p.state == stateNew {
		kind = evStart
	}
	e.schedule(event{at: e.now, seq: e.seq, p: p, kind: kind})
}

// Spawn creates a new process named name running fn and schedules it to
// start at the current virtual time. The returned Proc may be used as a
// wake target before it has started.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with an explicit start time.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	p := &Proc{
		eng:    e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}, 1),
		state:  stateNew,
	}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.panicVal = r
				e.panicked = true
			}
			p.state = stateDone
			e.live--
			e.yield <- struct{}{}
		}()
		<-p.resume
		fn(p)
	}()
	e.seq++
	e.schedule(event{at: t, seq: e.seq, p: p, kind: evStart})
	return p
}

// transfer hands control to p and blocks until p parks or terminates.
// It must only be called from engine context (inside an event callback).
// A panic inside the process is re-raised here, in the engine's
// goroutine, so it propagates out of Run to the harness or test.
func (e *Engine) transfer(p *Proc) {
	if p.killed {
		return
	}
	p.resume <- struct{}{}
	<-e.yield
	if e.panicked {
		panic(e.panicVal)
	}
}

// DeadlockError reports that Run exhausted all events while processes were
// still parked: the simulated system can make no further progress.
type DeadlockError struct {
	Time        Time
	Stuck       []string // "name: reason" for each parked process
	Diagnostics []string // extra context from AddDiagnostic callbacks
}

func (d *DeadlockError) Error() string {
	msg := fmt.Sprintf("sim: deadlock at %v; %d stuck: %s",
		d.Time, len(d.Stuck), strings.Join(d.Stuck, "; "))
	if len(d.Diagnostics) > 0 {
		msg += "\n" + strings.Join(d.Diagnostics, "\n")
	}
	return msg
}

// WatchdogError reports that Run exceeded a SetWatchdog limit — the
// simulation was still generating events but not converging (e.g. an
// endless retransmission loop). It carries the same stuck-process
// diagnostics as a deadlock, plus the event count.
type WatchdogError struct {
	Time        Time
	Events      int64
	Limit       string   // which limit tripped, human-readable
	Stuck       []string // "name: reason" for each parked process
	Diagnostics []string // extra context from AddDiagnostic callbacks
}

func (w *WatchdogError) Error() string {
	msg := fmt.Sprintf("sim: watchdog tripped (%s) at %v after %d events; %d stuck: %s",
		w.Limit, w.Time, w.Events, len(w.Stuck), strings.Join(w.Stuck, "; "))
	if len(w.Diagnostics) > 0 {
		msg += "\n" + strings.Join(w.Diagnostics, "\n")
	}
	return msg
}

// stuckProcs lists parked and never-started processes (excluding killed
// ones, which are dead rather than stuck).
func (e *Engine) stuckProcs() []string {
	var out []string
	for _, p := range e.procs {
		if p.killed {
			continue
		}
		if p.state == stateParked || p.state == stateNew {
			out = append(out, p.name+": "+p.parkReason)
		}
	}
	sort.Strings(out)
	return out
}

// driveOK reports whether run-to-completion driving is enabled: a
// parked process may then execute the event loop itself (see
// Proc.drive). Disabled alongside the other fast paths whenever a
// watchdog is armed, because the Run loop checks its limits between
// events and a driving process does not.
func (e *Engine) driveOK() bool {
	return !e.fastOff && e.maxEvents == 0 && e.maxTime == 0 && e.stallEvents == 0
}

// execOne commits the clock/bookkeeping mutation for ev and runs it if
// it is an engine-context event (fn or Runner). For resume/start events
// it only does the bookkeeping and returns the process to transfer to —
// the caller decides how to hand control over (the engine blocks in
// transfer; a driving process hands off directly). A nil return with
// ok=true means the event is fully handled.
func (e *Engine) execOne(ev event) *Proc {
	if ev.at > e.now || e.executed == 0 {
		e.lastAdvance = ev.at
		e.lastAdvanceExec = e.executed
	}
	e.now = ev.at
	e.executed++
	switch ev.kind {
	case evFn:
		ev.fn()
	case evRun:
		ev.run.Step()
	case evResume:
		if p := ev.p; !p.killed {
			if p.frozen {
				p.deferredWake = true
				return nil
			}
			if p.state != stateParked {
				panic(fmt.Sprintf("sim: waking %s which is not parked", p.name))
			}
			return p
		}
	case evStart:
		if p := ev.p; p.state == stateNew && !p.killed {
			if p.frozen {
				p.deferredWake = true
				return nil
			}
			p.state = stateRunning
			return p
		}
	}
	return nil
}

// Run executes events until none remain. It returns a *DeadlockError if
// processes remain parked with no pending events, a *WatchdogError if a
// SetWatchdog limit is exceeded, and nil otherwise.
func (e *Engine) Run() error {
	var ev event
	for {
		if !e.nextEvent(&ev) {
			break
		}
		if ev.bg && e.live <= 0 {
			// Background housekeeping after the last process finished:
			// discard without running or advancing the clock, so the
			// end time is exactly what the processes produced.
			continue
		}
		if p := e.execOne(ev); p != nil {
			e.transfer(p)
		}
		if e.maxEvents > 0 && e.executed >= e.maxEvents {
			return &WatchdogError{Time: e.now, Events: e.executed,
				Limit: fmt.Sprintf("event limit %d", e.maxEvents), Stuck: e.stuckProcs(),
				Diagnostics: append(e.schedulerLines(), e.collectDiagnostics()...)}
		}
		if e.maxTime > 0 && e.now > e.maxTime {
			return &WatchdogError{Time: e.now, Events: e.executed,
				Limit: fmt.Sprintf("virtual-time limit %v", e.maxTime), Stuck: e.stuckProcs(),
				Diagnostics: append(e.schedulerLines(), e.collectDiagnostics()...)}
		}
		if e.stallEvents > 0 && e.executed-e.lastAdvanceExec >= e.stallEvents {
			return &WatchdogError{Time: e.now, Events: e.executed,
				Limit: fmt.Sprintf("stalled: %d events with no time advance since %v",
					e.stallEvents, e.lastAdvance),
				Stuck: e.stuckProcs(), Diagnostics: append(e.schedulerLines(), e.collectDiagnostics()...)}
		}
	}
	if e.live > 0 {
		d := &DeadlockError{Time: e.now, Stuck: e.stuckProcs(),
			Diagnostics: append(e.schedulerLines(), e.collectDiagnostics()...)}
		return d
	}
	return nil
}

// MustRun is Run but panics on deadlock; used by tests and benchmarks
// where a deadlock is a bug in the model.
func (e *Engine) MustRun() {
	if err := e.Run(); err != nil {
		panic(err)
	}
}

// peekTime returns the time of the next pending event without popping
// it; ok is false when nothing is pending. This is the per-shard
// horizon the window coordinator reads between windows.
func (e *Engine) peekTime() (Time, bool) {
	switch {
	case e.nowq.len() > 0 && e.events.len() > 0:
		if h := e.events.minTime(); h < e.nowq.headKey().at {
			return h, true
		}
		return e.nowq.headKey().at, true
	case e.nowq.len() > 0:
		return e.nowq.headKey().at, true
	case e.events.len() > 0:
		return e.events.minTime(), true
	}
	return 0, false
}

// nextDesc describes the next pending event for watchdog reports.
func (e *Engine) nextDesc() string {
	t, ok := e.peekTime()
	if !ok {
		return "idle (no pending events)"
	}
	// Identify the event only when it is the scheduler minimum; a
	// now-queue head is always a same-time follow-on, where the time
	// alone tells the story.
	if e.events.len() > 0 {
		if v := e.events.minEvent(); v.at == t {
			switch v.kind {
			case evResume:
				return fmt.Sprintf("next event at %v (resume %s)", t, v.p.name)
			case evStart:
				return fmt.Sprintf("next event at %v (start %s)", t, v.p.name)
			}
		}
	}
	return fmt.Sprintf("next event at %v", t)
}

// injectEvent pushes a cross-shard event straight onto the scheduler
// queue under a sequence number reserved on the sending shard's engine. Only the
// window coordinator calls it, between windows, when every shard is
// quiescent.
func (e *Engine) injectEvent(at Time, seq uint64, fn func(), r Runner) {
	kind := evFn
	if r != nil {
		kind = evRun
	}
	e.events.push(event{at: at, seq: seq, fn: fn, run: r, kind: kind})
}

// runWindow executes events strictly before e.limit, exactly as Run
// would, and returns when the next event is at or past the limit (or
// nothing is pending). Deadlock and event-budget detection move to the
// group coordinator, which sees all shards; per-engine stall and
// virtual-time watchdogs are still honored here and reported through
// e.wdErr.
func (e *Engine) runWindow() {
	var ev event
	for {
		if e.winCap > 0 && e.executed >= e.winCap {
			// Group event budget nearly spent: return to the barrier so
			// the coordinator can trip the watchdog with a full report
			// instead of letting one shard spin inside a wide window.
			return
		}
		t, ok := e.peekTime()
		if !ok || t >= e.limit {
			return
		}
		e.nextEvent(&ev)
		if ev.bg && (e.live <= 0 || e.bgDiscard) {
			continue
		}
		if p := e.execOne(ev); p != nil {
			e.transfer(p)
		}
		if e.maxTime > 0 && e.now > e.maxTime {
			e.wdErr = &WatchdogError{Time: e.now, Events: e.executed,
				Limit: fmt.Sprintf("virtual-time limit %v", e.maxTime), Stuck: e.stuckProcs(),
				Diagnostics: append(e.schedulerLines(), e.collectDiagnostics()...)}
			return
		}
		if e.stallEvents > 0 && e.executed-e.lastAdvanceExec >= e.stallEvents {
			e.wdErr = &WatchdogError{Time: e.now, Events: e.executed,
				Limit: fmt.Sprintf("stalled: %d events with no time advance since %v",
					e.stallEvents, e.lastAdvance),
				Stuck: e.stuckProcs(), Diagnostics: append(e.schedulerLines(), e.collectDiagnostics()...)}
			return
		}
	}
}
