// Package sim provides a deterministic discrete-event simulation engine
// with cooperatively scheduled goroutine processes running in virtual time.
//
// The engine executes exactly one goroutine at a time: either the event
// loop itself or a single resumed process. Processes hand control back by
// parking (blocking on a simulation primitive) or by returning. Because of
// this strict alternation, simulation state — including state shared
// between processes — needs no locking, and runs are fully deterministic
// given a seed.
//
// All simulated time is virtual: a Proc that calls Advance consumes
// simulated nanoseconds, not wall-clock time.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String formats a Time as microseconds, the natural scale of the models
// in this repository.
func (t Time) String() string { return fmt.Sprintf("%.3fus", float64(t)/1e3) }

// String formats a Duration as microseconds.
func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e3) }

// Micros converts a Duration to floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis converts a Duration to floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

// Seconds converts a Duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros converts an absolute Time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Add offsets a Time by a Duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds builds a Duration from a floating-point microsecond count.
func Microseconds(us float64) Duration { return Duration(us * 1e3) }

// eventKind discriminates the event payload, letting the hot resume
// paths (Advance, wake, Spawn start) carry a *Proc directly instead of
// allocating a closure per event.
type eventKind uint8

const (
	evFn     eventKind = iota // run fn
	evResume                  // resume a parked process
	evStart                   // first activation of a spawned process
)

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq) so runs are deterministic. Background events (bg) are
// housekeeping — heartbeats, retransmission timers, fault schedules —
// that must not keep the simulation alive: once every process has
// terminated they are discarded without executing or advancing the
// clock, so enabling such machinery never changes a run's end time.
type event struct {
	at   Time
	seq  uint64
	fn   func() // evFn only
	p    *Proc  // evResume/evStart only
	kind eventKind
	bg   bool
}

// eventHeap is a hand-rolled 4-ary min-heap over []event, ordered by
// (at, seq). Unlike container/heap it never boxes an event into an
// interface, so push/pop allocate nothing beyond amortized slice
// growth, and the shallower tree halves the sift-down depth of the
// binary version — this is the hottest data structure in the
// repository (every simulated microsecond of every experiment flows
// through it).
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) less(i, j int) bool {
	if h.a[i].at != h.a[j].at {
		return h.a[i].at < h.a[j].at
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *eventHeap) push(ev event) {
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{} // clear fn/p so the recycled slot retains nothing
	h.a = a[:n]
	if n > 1 {
		h.siftDown()
	}
	return top
}

func (h *eventHeap) siftDown() {
	a := h.a
	n := len(a)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if !h.less(min, i) {
			return
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
}

// Engine is a discrete-event simulator. Create one with New, spawn
// processes with Spawn, then call Run.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	yield  chan struct{}
	procs  []*Proc
	live   int
	rng    *rand.Rand

	executed  int64 // events executed, for the watchdog
	maxEvents int64 // watchdog: 0 disables
	maxTime   Time  // watchdog: 0 disables

	// Stall watchdog: trip when stallEvents execute without the clock
	// advancing (a livelock spinning at one instant). 0 disables.
	stallEvents     int64
	lastAdvance     Time  // now at the last observed clock advance
	lastAdvanceExec int64 // executed count when the clock last advanced

	diagnostics []func() []string // extra context appended to errors

	panicked bool
	panicVal interface{}
}

// New returns an Engine whose random source is seeded with seed, so that
// any randomized model decisions are reproducible.
//
// The yield channel is a one-slot semaphore, not a rendezvous: strict
// alternation guarantees at most one token is ever in flight, so a
// deposit never blocks and every park/resume costs one blocking channel
// operation instead of two (see transfer and Proc.park).
func New(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}, 1),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation context (event callbacks or running processes).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the model and panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// atResume schedules a closure-free resume of p at t (the Advance and
// wake hot path).
func (e *Engine) atResume(t Time, p *Proc) {
	e.seq++
	e.events.push(event{at: t, seq: e.seq, p: p, kind: evResume})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

// AtBG schedules a background event at t: it runs like a normal event
// while any process is alive, but is silently discarded once all
// processes have terminated, so it can never extend a run.
func (e *Engine) AtBG(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn, bg: true})
}

// AfterBG is AtBG relative to now.
func (e *Engine) AfterBG(d Duration, fn func()) { e.AtBG(e.now.Add(d), fn) }

// SetWatchdog arms limits on total events executed and on virtual time
// reached; Run fails with a *WatchdogError when either is exceeded.
// Zero disables the corresponding limit. This turns a runaway loop
// (e.g. an endless retransmission cycle) into a fast, diagnosable
// failure instead of a spin.
func (e *Engine) SetWatchdog(maxEvents int64, maxTime Time) {
	e.maxEvents = maxEvents
	e.maxTime = maxTime
}

// SetStallWatchdog arms a livelock detector: Run fails with a
// *WatchdogError when events consecutive events execute without the
// virtual clock advancing. Unlike the total-event limit this scales
// with the workload — any amount of forward progress resets it. Zero
// disables.
func (e *Engine) SetStallWatchdog(events int64) { e.stallEvents = events }

// AddDiagnostic registers a callback that contributes context lines
// (e.g. a wait-for graph) to DeadlockError and WatchdogError. The
// callback runs only when such an error is being built.
func (e *Engine) AddDiagnostic(fn func() []string) {
	e.diagnostics = append(e.diagnostics, fn)
}

func (e *Engine) collectDiagnostics() []string {
	var out []string
	for _, fn := range e.diagnostics {
		out = append(out, fn()...)
	}
	return out
}

// EventsExecuted returns the number of events Run has executed so far.
func (e *Engine) EventsExecuted() int64 { return e.executed }

// Kill terminates a process from engine context without resuming it:
// the process is removed from the live count and every future attempt
// to wake or resume it becomes a no-op. Its goroutine stays parked for
// the remainder of the program — the simulation analogue of a process
// that died with state intact. Killing a finished process is a no-op.
func (e *Engine) Kill(p *Proc) {
	if p.state == stateDone || p.killed {
		return
	}
	p.killed = true
	e.live--
}

// Spawn creates a new process named name running fn and schedules it to
// start at the current virtual time. The returned Proc may be used as a
// wake target before it has started.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with an explicit start time.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	p := &Proc{
		eng:    e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}, 1),
		state:  stateNew,
	}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.panicVal = r
				e.panicked = true
			}
			p.state = stateDone
			e.live--
			e.yield <- struct{}{}
		}()
		<-p.resume
		fn(p)
	}()
	e.seq++
	e.events.push(event{at: t, seq: e.seq, p: p, kind: evStart})
	return p
}

// transfer hands control to p and blocks until p parks or terminates.
// It must only be called from engine context (inside an event callback).
// A panic inside the process is re-raised here, in the engine's
// goroutine, so it propagates out of Run to the harness or test.
func (e *Engine) transfer(p *Proc) {
	if p.killed {
		return
	}
	p.resume <- struct{}{}
	<-e.yield
	if e.panicked {
		panic(e.panicVal)
	}
}

// DeadlockError reports that Run exhausted all events while processes were
// still parked: the simulated system can make no further progress.
type DeadlockError struct {
	Time        Time
	Stuck       []string // "name: reason" for each parked process
	Diagnostics []string // extra context from AddDiagnostic callbacks
}

func (d *DeadlockError) Error() string {
	msg := fmt.Sprintf("sim: deadlock at %v; %d stuck: %s",
		d.Time, len(d.Stuck), strings.Join(d.Stuck, "; "))
	if len(d.Diagnostics) > 0 {
		msg += "\n" + strings.Join(d.Diagnostics, "\n")
	}
	return msg
}

// WatchdogError reports that Run exceeded a SetWatchdog limit — the
// simulation was still generating events but not converging (e.g. an
// endless retransmission loop). It carries the same stuck-process
// diagnostics as a deadlock, plus the event count.
type WatchdogError struct {
	Time        Time
	Events      int64
	Limit       string   // which limit tripped, human-readable
	Stuck       []string // "name: reason" for each parked process
	Diagnostics []string // extra context from AddDiagnostic callbacks
}

func (w *WatchdogError) Error() string {
	msg := fmt.Sprintf("sim: watchdog tripped (%s) at %v after %d events; %d stuck: %s",
		w.Limit, w.Time, w.Events, len(w.Stuck), strings.Join(w.Stuck, "; "))
	if len(w.Diagnostics) > 0 {
		msg += "\n" + strings.Join(w.Diagnostics, "\n")
	}
	return msg
}

// stuckProcs lists parked and never-started processes (excluding killed
// ones, which are dead rather than stuck).
func (e *Engine) stuckProcs() []string {
	var out []string
	for _, p := range e.procs {
		if p.killed {
			continue
		}
		if p.state == stateParked || p.state == stateNew {
			out = append(out, p.name+": "+p.parkReason)
		}
	}
	sort.Strings(out)
	return out
}

// Run executes events until none remain. It returns a *DeadlockError if
// processes remain parked with no pending events, a *WatchdogError if a
// SetWatchdog limit is exceeded, and nil otherwise.
func (e *Engine) Run() error {
	for e.events.len() > 0 {
		ev := e.events.pop()
		if ev.bg && e.live <= 0 {
			// Background housekeeping after the last process finished:
			// discard without running or advancing the clock, so the
			// end time is exactly what the processes produced.
			continue
		}
		if ev.at > e.now || e.executed == 0 {
			e.lastAdvance = ev.at
			e.lastAdvanceExec = e.executed
		}
		e.now = ev.at
		e.executed++
		switch ev.kind {
		case evFn:
			ev.fn()
		case evResume:
			if p := ev.p; !p.killed {
				if p.state != stateParked {
					panic(fmt.Sprintf("sim: waking %s which is not parked", p.name))
				}
				e.transfer(p)
			}
		case evStart:
			if p := ev.p; p.state == stateNew && !p.killed {
				p.state = stateRunning
				e.transfer(p)
			}
		}
		if e.maxEvents > 0 && e.executed >= e.maxEvents {
			return &WatchdogError{Time: e.now, Events: e.executed,
				Limit: fmt.Sprintf("event limit %d", e.maxEvents), Stuck: e.stuckProcs(),
				Diagnostics: e.collectDiagnostics()}
		}
		if e.maxTime > 0 && e.now > e.maxTime {
			return &WatchdogError{Time: e.now, Events: e.executed,
				Limit: fmt.Sprintf("virtual-time limit %v", e.maxTime), Stuck: e.stuckProcs(),
				Diagnostics: e.collectDiagnostics()}
		}
		if e.stallEvents > 0 && e.executed-e.lastAdvanceExec >= e.stallEvents {
			return &WatchdogError{Time: e.now, Events: e.executed,
				Limit: fmt.Sprintf("stalled: %d events with no time advance since %v",
					e.stallEvents, e.lastAdvance),
				Stuck: e.stuckProcs(), Diagnostics: e.collectDiagnostics()}
		}
	}
	if e.live > 0 {
		d := &DeadlockError{Time: e.now, Stuck: e.stuckProcs(),
			Diagnostics: e.collectDiagnostics()}
		return d
	}
	return nil
}

// MustRun is Run but panics on deadlock; used by tests and benchmarks
// where a deadlock is a bug in the model.
func (e *Engine) MustRun() {
	if err := e.Run(); err != nil {
		panic(err)
	}
}
