package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkEventLoop measures the raw event-loop hot path: an engine
// executing a long chain of timer events with a pair of processes
// ping-ponging through park/resume. ns/op and allocs/op are per
// *event*, the unit every simulated microsecond of every experiment
// pays. The perf baseline in BENCH_*.json tracks this number; see
// EXPERIMENTS.md ("Performance methodology").
func BenchmarkEventLoop(b *testing.B) {
	b.Run("timers", func(b *testing.B) {
		b.ReportAllocs()
		e := New(1)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				e.After(Microsecond, tick)
			}
		}
		e.At(0, tick)
		e.MustRun()
		if n != b.N && b.N > 0 {
			b.Fatalf("executed %d ticks, want %d", n, b.N)
		}
	})
	// Two processes alternating via Advance: every iteration is one
	// park + one resume, the context-switch path of every simulated
	// MPI call.
	b.Run("advance", func(b *testing.B) {
		b.ReportAllocs()
		e := New(1)
		body := func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(Microsecond)
			}
		}
		e.Spawn("a", body)
		e.Spawn("b", body)
		e.MustRun()
	})
	// Signal wait/broadcast round trips: the synchronization primitive
	// under every blocking MPI call in the runtime.
	b.Run("signal", func(b *testing.B) {
		b.ReportAllocs()
		e := New(1)
		var sig Signal
		turn := 0
		e.Spawn("waiter", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				for turn <= i {
					sig.Wait(p, "turn")
				}
			}
		})
		e.Spawn("waker", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(Microsecond)
				turn++
				sig.Broadcast()
			}
		})
		e.MustRun()
	})
}

// BenchmarkScheduler is the isolated A/B for the event scheduler: a
// classic hold-model churn (steady queue of W pending events, each
// iteration pops the minimum and pushes a successor at a randomized
// future offset) through the ladder and the heap oracle, at working-set
// sizes bracketing what experiments actually hold (see
// Engine.PeakQueueResidency). The offset distribution mirrors the cost
// models: mostly sub-microsecond AM service steps, a tail of multi-us
// transfers, a sliver of far-future housekeeping. The end-to-end number
// that matters is BenchmarkEventLoop / BENCH_*.json; this one localizes
// the scheduler's share.
func BenchmarkScheduler(b *testing.B) {
	for _, w := range []int{16, 64, 256} {
		for _, impl := range []string{"ladder", "heap"} {
			b.Run(fmt.Sprintf("%s/w%d", impl, w), func(b *testing.B) {
				b.ReportAllocs()
				var q schedQ
				q.useHeap = impl == "heap"
				rng := rand.New(rand.NewSource(1))
				offs := make([]Time, 1024) // precomputed so rng cost stays out of the loop
				for i := range offs {
					switch rng.Intn(10) {
					case 0, 1:
						offs[i] = Time(rng.Intn(1 << ladShift))
					case 2:
						offs[i] = Time(rng.Int63n(40 * int64(Microsecond)))
					default:
						offs[i] = Time(rng.Int63n(int64(Microsecond)))
					}
				}
				var now Time
				seq := uint64(0)
				for i := 0; i < w; i++ {
					seq++
					q.push(event{at: now + offs[seq&1023], seq: seq})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := q.pop()
					now = ev.at
					seq++
					q.push(event{at: now + offs[seq&1023], seq: seq})
				}
			})
		}
	}
}

// BenchmarkInlineCompletion isolates the run-to-completion fast path for
// Advance: a lone process with nothing else scheduled advances the clock
// b.N times. "inline" completes every call without parking or touching
// the heap; "parked" forces the classic park → heap push → pop → resume
// round trip via DisableFastPaths. The gap between the two is the
// goroutine-switch tax the fast path removes per MPI-call-shaped event.
func BenchmarkInlineCompletion(b *testing.B) {
	run := func(b *testing.B, fastOff bool) {
		b.ReportAllocs()
		e := New(1)
		if fastOff {
			e.DisableFastPaths()
		}
		e.Spawn("solo", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(Microsecond)
			}
		})
		e.MustRun()
		if !fastOff && e.InlinedAdvances() != int64(b.N) {
			b.Fatalf("inlined %d of %d advances; fast path did not engage", e.InlinedAdvances(), b.N)
		}
		if fastOff && e.InlinedAdvances() != 0 {
			b.Fatalf("inlined %d advances with fast paths disabled", e.InlinedAdvances())
		}
	}
	b.Run("inline", func(b *testing.B) { run(b, false) })
	b.Run("parked", func(b *testing.B) { run(b, true) })
}

// BenchmarkSameTimeFusion isolates same-time event fusion: a chain of
// b.N callbacks all scheduled at the current instant. "fused" routes
// every equal-timestamp event through the nowQueue ring — no heap
// sift, no wakeup; "heap" (DisableFastPaths) pushes each through the
// priority heap. Execution order is identical either way — only the
// dispatch cost differs.
func BenchmarkSameTimeFusion(b *testing.B) {
	run := func(b *testing.B, fastOff bool) {
		b.ReportAllocs()
		e := New(1)
		if fastOff {
			e.DisableFastPaths()
		}
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				e.At(e.Now(), tick)
			}
		}
		e.At(0, tick)
		e.MustRun()
		if n != b.N && b.N > 0 {
			b.Fatalf("executed %d ticks, want %d", n, b.N)
		}
	}
	b.Run("fused", func(b *testing.B) { run(b, false) })
	b.Run("heap", func(b *testing.B) { run(b, true) })
}
