package sim

import "testing"

// BenchmarkEventLoop measures the raw event-loop hot path: an engine
// executing a long chain of timer events with a pair of processes
// ping-ponging through park/resume. ns/op and allocs/op are per
// *event*, the unit every simulated microsecond of every experiment
// pays. The perf baseline in BENCH_*.json tracks this number; see
// EXPERIMENTS.md ("Performance methodology").
func BenchmarkEventLoop(b *testing.B) {
	b.Run("timers", func(b *testing.B) {
		b.ReportAllocs()
		e := New(1)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				e.After(Microsecond, tick)
			}
		}
		e.At(0, tick)
		e.MustRun()
		if n != b.N && b.N > 0 {
			b.Fatalf("executed %d ticks, want %d", n, b.N)
		}
	})
	// Two processes alternating via Advance: every iteration is one
	// park + one resume, the context-switch path of every simulated
	// MPI call.
	b.Run("advance", func(b *testing.B) {
		b.ReportAllocs()
		e := New(1)
		body := func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(Microsecond)
			}
		}
		e.Spawn("a", body)
		e.Spawn("b", body)
		e.MustRun()
	})
	// Signal wait/broadcast round trips: the synchronization primitive
	// under every blocking MPI call in the runtime.
	b.Run("signal", func(b *testing.B) {
		b.ReportAllocs()
		e := New(1)
		var sig Signal
		turn := 0
		e.Spawn("waiter", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				for turn <= i {
					sig.Wait(p, "turn")
				}
			}
		})
		e.Spawn("waker", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(Microsecond)
				turn++
				sig.Broadcast()
			}
		})
		e.MustRun()
	})
}

// BenchmarkInlineCompletion isolates the run-to-completion fast path for
// Advance: a lone process with nothing else scheduled advances the clock
// b.N times. "inline" completes every call without parking or touching
// the heap; "parked" forces the classic park → heap push → pop → resume
// round trip via DisableFastPaths. The gap between the two is the
// goroutine-switch tax the fast path removes per MPI-call-shaped event.
func BenchmarkInlineCompletion(b *testing.B) {
	run := func(b *testing.B, fastOff bool) {
		b.ReportAllocs()
		e := New(1)
		if fastOff {
			e.DisableFastPaths()
		}
		e.Spawn("solo", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(Microsecond)
			}
		})
		e.MustRun()
		if !fastOff && e.InlinedAdvances() != int64(b.N) {
			b.Fatalf("inlined %d of %d advances; fast path did not engage", e.InlinedAdvances(), b.N)
		}
		if fastOff && e.InlinedAdvances() != 0 {
			b.Fatalf("inlined %d advances with fast paths disabled", e.InlinedAdvances())
		}
	}
	b.Run("inline", func(b *testing.B) { run(b, false) })
	b.Run("parked", func(b *testing.B) { run(b, true) })
}

// BenchmarkSameTimeFusion isolates same-time event fusion: a chain of
// b.N callbacks all scheduled at the current instant. "fused" routes
// every equal-timestamp event through the nowQueue ring — no heap
// sift, no wakeup; "heap" (DisableFastPaths) pushes each through the
// priority heap. Execution order is identical either way — only the
// dispatch cost differs.
func BenchmarkSameTimeFusion(b *testing.B) {
	run := func(b *testing.B, fastOff bool) {
		b.ReportAllocs()
		e := New(1)
		if fastOff {
			e.DisableFastPaths()
		}
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				e.At(e.Now(), tick)
			}
		}
		e.At(0, tick)
		e.MustRun()
		if n != b.N && b.N > 0 {
			b.Fatalf("executed %d ticks, want %d", n, b.N)
		}
	}
	b.Run("fused", func(b *testing.B) { run(b, false) })
	b.Run("heap", func(b *testing.B) { run(b, true) })
}
