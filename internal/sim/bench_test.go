package sim

import "testing"

// BenchmarkEventLoop measures the raw event-loop hot path: an engine
// executing a long chain of timer events with a pair of processes
// ping-ponging through park/resume. ns/op and allocs/op are per
// *event*, the unit every simulated microsecond of every experiment
// pays. The perf baseline in BENCH_*.json tracks this number; see
// EXPERIMENTS.md ("Performance methodology").
func BenchmarkEventLoop(b *testing.B) {
	b.Run("timers", func(b *testing.B) {
		b.ReportAllocs()
		e := New(1)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				e.After(Microsecond, tick)
			}
		}
		e.At(0, tick)
		e.MustRun()
		if n != b.N && b.N > 0 {
			b.Fatalf("executed %d ticks, want %d", n, b.N)
		}
	})
	// Two processes alternating via Advance: every iteration is one
	// park + one resume, the context-switch path of every simulated
	// MPI call.
	b.Run("advance", func(b *testing.B) {
		b.ReportAllocs()
		e := New(1)
		body := func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(Microsecond)
			}
		}
		e.Spawn("a", body)
		e.Spawn("b", body)
		e.MustRun()
	})
	// Signal wait/broadcast round trips: the synchronization primitive
	// under every blocking MPI call in the runtime.
	b.Run("signal", func(b *testing.B) {
		b.ReportAllocs()
		e := New(1)
		var sig Signal
		turn := 0
		e.Spawn("waiter", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				for turn <= i {
					sig.Wait(p, "turn")
				}
			}
		})
		e.Spawn("waker", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(Microsecond)
				turn++
				sig.Broadcast()
			}
		})
		e.MustRun()
	})
}
