package sim

import "math/bits"

// This file implements the ladder queue: the engine's default event
// scheduler (see schedQ in engine.go). It replaces the binary/4-ary
// heap family with the bucketed-timestamp structure the DES literature
// settled on for O(1) amortized enqueue/dequeue — a near-future timing
// wheel of FIFO buckets keyed by quantized event time, an overflow
// ladder of geometrically coarser rungs that re-bucket lazily on first
// touch, and a sorted "bottom" holding only the active bucket.
//
// Determinism: the scheduler's contract is to pop the exact global
// minimum by the (at, seq) total order, and every (at, seq) key is
// unique (seq is monotone per engine, banded per shard). Any correct
// implementation therefore yields byte-identical runs — bucketing
// cannot reorder anything a heap would not, it only changes how much
// work finding the minimum costs. The lockstep fuzz test in
// ladder_test.go drives this structure and the retained heap oracle
// through randomized workloads asserting exactly that.
//
// Quantization: rung-0 buckets span 2^ladShift ns (~1us), chosen to
// match the repository's cost models — AM service and issue costs are
// hundreds of ns, cross-node transfers a few us, so the resident
// working set of an experiment (tens to hundreds of events after the
// PR-4 reserved-seq chaining) spreads over a few dozen rung-0 buckets
// at a handful of events each. Each coarser rung widens the span by
// 2^ladBits; ladRungs rungs reach 2^(ladShift+ladBits*ladRungs) ns
// (~9 virtual years), with an unsorted top list beyond that for
// far-future housekeeping (heartbeat horizons, watchdog sentinels).
const (
	ladShift   = 7 // rung-0 bucket span: 2^7 ns
	ladBits    = 8 // buckets per rung: 2^8
	ladBuckets = 1 << ladBits
	ladMask    = ladBuckets - 1
	ladRungs   = 6
)

// ladRung is one wheel level: ladBuckets FIFO buckets plus an
// occupancy bitmap so find-first-non-empty is a handful of word scans
// instead of a 256-slot walk.
type ladRung struct {
	bucket [ladBuckets][]event
	occ    [ladBuckets / 64]uint64
	count  int
}

// firstFrom returns the absolute index of the first occupied bucket at
// or after absolute index base. All occupied buckets lie in the window
// [base, base+ladBuckets), so the circular bitmap scan is unambiguous.
// The rung must be non-empty.
func (r *ladRung) firstFrom(base uint64) uint64 {
	s := int(base & ladMask)
	w := s >> 6
	if word := r.occ[w] &^ (1<<uint(s&63) - 1); word != 0 {
		return base + uint64(w<<6+bits.TrailingZeros64(word)-s)
	}
	for i := 1; i <= len(r.occ); i++ {
		wi := (w + i) & (len(r.occ) - 1)
		if word := r.occ[wi]; word != 0 {
			d := (wi<<6 + bits.TrailingZeros64(word) - s) & ladMask
			return base + uint64(d)
		}
	}
	panic("sim: ladder rung bitmap empty with count > 0")
}

// ladder is the queue proper. Invariant: when n > 0 the bottom (cur)
// is non-empty — pop refills it eagerly — so the minimum is always
// cur[head] and minTime is O(1).
type ladder struct {
	cur    []event // active bucket, sorted ascending by (at, seq)
	head   int     // consumed prefix of cur
	cursor Time    // start of the active bucket's span (wheel position)
	curHi  Time    // exclusive end of the active bucket's span
	n      int
	rungs  [ladRungs]*ladRung
	top    []event // beyond the highest rung's window; unsorted
	topMin Time
}

func (l *ladder) len() int { return l.n }

// push inserts ev. Events landing inside the active bucket's span are
// merge-inserted into the sorted bottom (binary search + memmove, with
// an O(1) prepend slot when the new event precedes everything — the
// resume-chain case); everything else is an O(1) bucket append.
func (l *ladder) push(ev event) {
	if l.n == 0 {
		// Empty queue: re-anchor the wheel at the event. The common
		// near-empty regime therefore lives entirely in the bottom.
		l.cursor = ev.at &^ (1<<ladShift - 1)
		l.curHi = l.cursor + (1 << ladShift)
		l.cur = append(l.cur[:0], ev)
		l.head = 0
		l.n = 1
		return
	}
	l.n++
	if ev.at < l.curHi {
		l.insertCur(ev)
		return
	}
	l.spill(ev)
}

// insertCur merge-inserts ev into the sorted bottom.
func (l *ladder) insertCur(ev event) {
	k := evKey{at: ev.at, seq: ev.seq}
	cur := l.cur
	lo, hi := l.head, len(cur)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if (evKey{at: cur[m].at, seq: cur[m].seq}).before(k) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo == l.head && l.head > 0 {
		l.head--
		cur[l.head] = ev
		return
	}
	cur = append(cur, event{})
	copy(cur[lo+1:], cur[lo:])
	cur[lo] = ev
	l.cur = cur
}

// spill files ev into the lowest rung whose window (relative to the
// wheel cursor) covers it, or the top list beyond all rungs.
func (l *ladder) spill(ev event) {
	base := uint64(l.cursor) >> ladShift
	idx := uint64(ev.at) >> ladShift
	for k := 0; k < ladRungs; k++ {
		if idx-base < ladBuckets {
			r := l.rungs[k]
			if r == nil {
				r = new(ladRung)
				l.rungs[k] = r
			}
			b := int(idx & ladMask)
			r.bucket[b] = append(r.bucket[b], ev)
			r.occ[b>>6] |= 1 << uint(b&63)
			r.count++
			return
		}
		base >>= ladBits
		idx >>= ladBits
	}
	if len(l.top) == 0 || ev.at < l.topMin {
		l.topMin = ev.at
	}
	l.top = append(l.top, ev)
}

// minKey returns the (at, seq) key of the earliest event; the ladder
// must be non-empty.
func (l *ladder) minKey() evKey {
	ev := &l.cur[l.head]
	return evKey{at: ev.at, seq: ev.seq}
}

// minTime returns the earliest scheduled time; the ladder must be
// non-empty. The bottom slot doubles as the engine's next-event
// register: inline-advance checks and shard-horizon computations read
// it as a field load, never a structure probe.
func (l *ladder) minTime() Time { return l.cur[l.head].at }

// minEvent returns the earliest event without popping it, for
// diagnostics; the ladder must be non-empty.
func (l *ladder) minEvent() event { return l.cur[l.head] }

// popInto removes the earliest event by (at, seq), writing it to *dst.
// The pointer form exists because the event struct is 56 bytes and pop
// sits on the hottest path in the repository: writing through the
// caller's pointer once beats returning by value through two
// non-inlined frames (ladder → schedQ → nextEvent), which the profiler
// shows as pure memmove.
func (l *ladder) popInto(dst *event) {
	*dst = l.cur[l.head]
	l.cur[l.head] = event{} // clear fn/p/run so the slot retains nothing
	l.head++
	l.n--
	if l.head == len(l.cur) {
		l.cur = l.cur[:0]
		l.head = 0
		if l.n > 0 {
			l.refill()
		}
	}
}

// pop is popInto for callers off the hot path (tests, the fuzz oracle).
func (l *ladder) pop() event {
	var ev event
	l.popInto(&ev)
	return ev
}

// refill activates the next non-empty bucket as the bottom. It finds
// the rung holding the earliest bucket span; a rung-0 bucket is sorted
// and swapped in directly, while a coarser bucket is first re-bucketed
// one or more rungs down (the lazy "first touch" of the overflow
// ladder: each event moves at most once per rung on its way to the
// bottom, never per pop).
func (l *ladder) refill() {
	for {
		bestK := -1
		var bestIdx uint64
		bestStart := Time(timeMax)
		base := uint64(l.cursor) >> ladShift
		for k := 0; k < ladRungs; k++ {
			if r := l.rungs[k]; r != nil && r.count > 0 {
				idx := r.firstFrom(base)
				if start := Time(idx << uint(ladShift+k*ladBits)); start < bestStart {
					bestK, bestIdx, bestStart = k, idx, start
				}
			}
			base >>= ladBits
		}
		if len(l.top) > 0 && l.topMin < bestStart {
			l.rebaseTop()
			continue
		}
		r := l.rungs[bestK]
		b := int(bestIdx & ladMask)
		box := r.bucket[b]
		r.occ[b>>6] &^= 1 << uint(b&63)
		r.count -= len(box)
		l.cursor = bestStart
		if bestK == 0 {
			// Swap the bucket in as the new bottom, handing the old
			// bottom's capacity back to the slot — steady state moves
			// slice headers, never memory.
			r.bucket[b] = l.cur[:0]
			l.cur = box
			l.head = 0
			l.curHi = bestStart + (1 << ladShift)
			sortEvents(l.cur)
			return
		}
		// Coarser rung: re-bucket its contents downward. Every event
		// shares this bucket's span, so each lands within a lower
		// rung's window from the advanced cursor — spill never refiles
		// into this bucket, so handing its capacity back first is safe.
		r.bucket[b] = box[:0]
		for i := range box {
			l.spill(box[i])
			box[i] = event{}
		}
	}
}

// rebaseTop re-anchors the wheel at the top list's minimum and files
// its events into the rungs. Reached only when every rung has drained
// — i.e. the clock is jumping a span longer than the highest rung's
// window — so the O(len(top)) re-push amortizes to nothing.
func (l *ladder) rebaseTop() {
	l.cursor = l.topMin &^ (1<<ladShift - 1)
	box := l.top
	l.top = nil // spill may re-append; rare enough that a fresh slab is fine
	l.topMin = 0
	for i := range box {
		l.spill(box[i])
		box[i] = event{}
	}
}

// activeSpan reports the active bucket's time span, for scheduler
// diagnostics.
func (l *ladder) activeSpan() (lo, hi Time) { return l.cursor, l.curHi }

// sortEvents sorts a bucket ascending by (at, seq): insertion sort for
// the small buckets the quantization aims at, median-of-three
// quicksort (recursing into the smaller side) when a bucket grows
// past that. Keys are unique, so the order is total and the sort's
// stability is irrelevant. No allocation on any path.
//
// A bucket holds events in push order, and pushes are near-monotone in
// (at, seq) — seq increases monotonically and same-instant bursts (a
// collective fan-out, a fault schedule) append an already ordered run —
// so most buckets arrive fully sorted. The linear presorted scan makes
// that case O(n) instead of paying quicksort's partition walk.
func sortEvents(a []event) {
	sorted := true
	for i := 1; i < len(a); i++ {
		if (evKey{at: a[i].at, seq: a[i].seq}).before(evKey{at: a[i-1].at, seq: a[i-1].seq}) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	sortEventsRec(a)
}

func sortEventsRec(a []event) {
	for len(a) > 24 {
		p := pivotEvents(a)
		k := evKey{at: a[p].at, seq: a[p].seq}
		a[p], a[len(a)-1] = a[len(a)-1], a[p]
		i := 0
		for j := 0; j < len(a)-1; j++ {
			if (evKey{at: a[j].at, seq: a[j].seq}).before(k) {
				a[i], a[j] = a[j], a[i]
				i++
			}
		}
		a[i], a[len(a)-1] = a[len(a)-1], a[i]
		if i < len(a)-1-i {
			sortEventsRec(a[:i])
			a = a[i+1:]
		} else {
			sortEventsRec(a[i+1:])
			a = a[:i]
		}
	}
	for i := 1; i < len(a); i++ {
		ev := a[i]
		k := evKey{at: ev.at, seq: ev.seq}
		j := i - 1
		for j >= 0 && k.before(evKey{at: a[j].at, seq: a[j].seq}) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = ev
	}
}

// pivotEvents picks a median-of-three pivot index for sortEvents.
func pivotEvents(a []event) int {
	lo, mid, hi := 0, len(a)/2, len(a)-1
	kl := evKey{at: a[lo].at, seq: a[lo].seq}
	km := evKey{at: a[mid].at, seq: a[mid].seq}
	kh := evKey{at: a[hi].at, seq: a[hi].seq}
	if km.before(kl) {
		lo, kl, mid, km = mid, km, lo, kl
	}
	if kh.before(km) {
		mid, km = hi, kh
	}
	if km.before(kl) {
		mid = lo
	}
	return mid
}
