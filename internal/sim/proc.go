package sim

import "fmt"

type procState int

const (
	stateNew procState = iota
	stateRunning
	stateParked
	stateDone
)

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// Engine. All Proc methods must be called from the process's own
// goroutine while it is running.
type Proc struct {
	eng        *Engine
	id         int
	name       string
	resume     chan struct{}
	state      procState
	parkReason string
	killed     bool // Engine.Kill called: never resume again

	// Engine.Freeze state: while frozen, resume/start events addressed
	// to this process are swallowed; deferredWake records that at least
	// one was, so Thaw can replay a single coalesced wakeup.
	frozen       bool
	deferredWake bool
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// ID returns the process's spawn index, unique within its engine.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }

// Advance consumes d of virtual time, modeling computation or a fixed
// latency. Other processes and events run in the meantime.
//
// Run-to-completion fast path: when nothing else is scheduled before
// now+d, the park/resume round trip is pure overhead — the engine would
// immediately pop this process's own resume event and switch straight
// back. In that case the clock advances inline and the process keeps
// running, eliding two goroutine switches and a heap push/pop. The
// observable schedule is identical (see Engine.advanceInlineOK).
func (p *Proc) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s advancing by negative duration %v", p.name, d))
	}
	if d == 0 {
		return
	}
	e := p.eng
	t := e.now.Add(d)
	if e.advanceInlineOK(t) {
		e.noteInlineAdvance(t)
		return
	}
	e.atResume(t, p)
	p.park("advancing")
}

// AdvanceTo consumes virtual time until at least time t. It is a no-op if
// t is not in the future.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.eng.now {
		p.Advance(t.Sub(p.eng.now))
	}
}

// park blocks the process until something resumes it. reason appears in
// deadlock reports. With the run-to-completion fast paths enabled the
// parked process drives the event loop itself instead of bouncing
// through the engine goroutine (see drive); otherwise the yield deposit
// never blocks (one-slot semaphore under strict alternation), so a park
// is a single blocking channel operation.
func (p *Proc) park(reason string) {
	p.state = stateParked
	p.parkReason = reason
	e := p.eng
	if e.driveOK() {
		p.drive()
	} else {
		e.yield <- struct{}{}
		<-p.resume
	}
	p.state = stateRunning
	p.parkReason = ""
}

// drive runs the event loop from the parked process's own goroutine.
// fn/Runner events execute inline with no channel traffic at all; when
// the process's own resume event comes up it simply keeps running; a
// resume of a different process is handed off goroutine-to-goroutine,
// halving the switch cost of the park → engine → resume round trip.
// Event order is exactly Run's — drive pops the same queues in the same
// order and shares Run's bookkeeping (execOne) — so a run is
// bit-identical whether the engine or a process drives. The engine
// goroutine stays blocked in transfer throughout and only takes over
// again when a process exits or the queues drain.
func (p *Proc) drive() {
	e := p.eng
	var ev event
	for {
		if e.limited {
			// Sharded execution: stop at the window boundary (or the
			// window event cap) and hand back to runWindow, exactly like
			// the empty-queue case — the window barrier must observe a
			// quiescent shard.
			if e.winCap > 0 && e.executed >= e.winCap {
				e.yield <- struct{}{}
				<-p.resume
				return
			}
			if t, ok := e.peekTime(); !ok || t >= e.limit {
				e.yield <- struct{}{}
				<-p.resume
				return
			}
		}
		if !e.nextEvent(&ev) {
			// Nothing can ever wake us: hand back to Run, which
			// reports the deadlock (or finishes, after a kill).
			e.yield <- struct{}{}
			<-p.resume
			return
		}
		if ev.bg && e.live <= 0 {
			continue
		}
		if q := e.execOne(ev); q != nil {
			if q == p {
				return // own wakeup: keep running, zero channel ops
			}
			q.resume <- struct{}{}
			<-p.resume
			return
		}
	}
}

// wake schedules the parked process to resume at the current virtual
// time. It must only be called on a process that is parked (or will
// remain parked until the event fires), which the synchronization
// primitives in this package guarantee — the engine's resume dispatch
// panics otherwise.
func (p *Proc) wake() {
	p.eng.atResume(p.eng.now, p)
}

// Killed reports whether Engine.Kill has terminated this process.
func (p *Proc) Killed() bool { return p.killed }

// Done reports whether the process's function has returned.
func (p *Proc) Done() bool { return p.state == stateDone }

// Frozen reports whether Engine.Freeze currently suspends this process.
func (p *Proc) Frozen() bool { return p.frozen }

// Signal is a broadcast condition variable in virtual time. Processes
// Wait on it after observing an unsatisfied predicate; any simulation
// context that changes the predicate calls Broadcast. Waiters must
// re-check their predicate after waking (wakeups can be spurious when
// several processes share a Signal).
type Signal struct {
	waiters []*Proc
}

// Wait parks p until the next Broadcast.
func (s *Signal) Wait(p *Proc, reason string) {
	s.waiters = append(s.waiters, p)
	p.park(reason)
}

// Broadcast wakes every current waiter.
func (s *Signal) Broadcast() {
	ws := s.waiters
	if len(ws) == 0 {
		return
	}
	// Reuse the backing array: wake only schedules resume events, so no
	// waiter re-registers until after this loop returns (strict
	// alternation), and re-Waits then overwrite slots already consumed.
	s.waiters = ws[:0]
	for _, p := range ws {
		p.wake()
	}
}

// Completion is a one-shot future: it transitions to done exactly once
// and releases every process awaiting it. The zero value is ready to use.
type Completion struct {
	done bool
	sig  Signal
}

// Done reports whether Complete has been called.
func (c *Completion) Done() bool { return c.done }

// Complete marks the completion done and wakes all awaiters. Completing
// twice is a no-op.
func (c *Completion) Complete() {
	if c.done {
		return
	}
	c.done = true
	c.sig.Broadcast()
}

// Await parks p until the completion is done. Returns immediately if it
// already is.
func (c *Completion) Await(p *Proc, reason string) {
	for !c.done {
		c.sig.Wait(p, reason)
	}
}

// CompletionSet tracks a dynamic count of outstanding operations and lets
// a process wait for the count to reach zero. It is the simulation
// analogue of a WaitGroup.
type CompletionSet struct {
	pending int
	sig     Signal
}

// Add notes n more outstanding operations.
func (c *CompletionSet) Add(n int) { c.pending += n }

// Done notes one operation finished and wakes waiters when none remain.
func (c *CompletionSet) Done() {
	c.pending--
	if c.pending < 0 {
		panic("sim: CompletionSet.Done without matching Add")
	}
	if c.pending == 0 {
		c.sig.Broadcast()
	}
}

// Pending returns the number of outstanding operations.
func (c *CompletionSet) Pending() int { return c.pending }

// Wait parks p until no operations are outstanding.
func (c *CompletionSet) Wait(p *Proc, reason string) {
	for c.pending > 0 {
		c.sig.Wait(p, reason)
	}
}
