package sim

import (
	"fmt"
	"sort"
)

// crossEvent is one cross-shard injection waiting in a mailbox: an
// event key reserved on the sending engine plus its payload. Mailboxes
// drain into the destination heap at window barriers, so the (at, seq)
// key — seq banded by sending shard — totally orders injections against
// each other and against the destination's own events, independent of
// worker count or wall-clock interleaving.
type crossEvent struct {
	at  Time
	seq uint64
	fn  func()
	run Runner
}

// ShardGroup executes a set of engines (shards) in parallel under
// conservative safe windows. Each round the coordinator computes the
// global horizon h (the minimum pending-event time across shards) and
// releases every shard to execute events in [h, h+window) concurrently;
// the window width is the model's lookahead, a lower bound on how far
// in the future any cross-shard interaction can land. Cross-shard
// scheduling goes through per-(src,dst) single-producer mailboxes
// (Inject/InjectRun) that drain at the barrier, so shards share no
// mutable state while running. The executed order is a deterministic
// function of the event keys alone: runs are bit-identical for any
// worker count.
type ShardGroup struct {
	engines []*Engine
	window  Duration
	nw      int // worker goroutines

	mail [][][]crossEvent // [src][dst]

	budget  int64 // total executed events across shards; checked at barriers
	maxTime Time  // horizon bound; checked at barriers

	start  []chan Time // per-worker window release, carrying the limit
	done   chan int    // worker index completions
	panics []interface{}

	horizon Time
}

// NewShardGroup wires engines into a group executed by workers
// goroutines (clamped to the shard count; at least 1). Each engine's
// sequence counter is rebased into its own 16-bit band so event keys
// stay unique across shards; engines must be freshly created and not
// yet run.
func NewShardGroup(engines []*Engine, window Duration, workers int) *ShardGroup {
	if len(engines) == 0 {
		panic("sim: NewShardGroup with no engines")
	}
	if window <= 0 {
		panic(fmt.Sprintf("sim: NewShardGroup window %v must be positive", window))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	g := &ShardGroup{
		engines: engines,
		window:  window,
		nw:      workers,
		mail:    make([][][]crossEvent, len(engines)),
		done:    make(chan int),
		panics:  make([]interface{}, len(engines)),
	}
	for i, e := range engines {
		if e.executed != 0 || e.seq != 0 {
			panic("sim: NewShardGroup engine already used")
		}
		e.shard = i
		e.limited = true
		e.seq = uint64(i) << 48
		g.mail[i] = make([][]crossEvent, len(engines))
	}
	g.start = make([]chan Time, workers)
	for w := 0; w < workers; w++ {
		g.start[w] = make(chan Time)
		go g.worker(w)
	}
	return g
}

// Window returns the safe-window width (the lookahead bound).
func (g *ShardGroup) Window() Duration { return g.window }

// Engines returns the group's engines in shard order.
func (g *ShardGroup) Engines() []*Engine { return g.engines }

// SetEventBudget arms a total-events watchdog checked at every window
// barrier (the sharded analogue of Engine.SetWatchdog's event limit;
// granularity is one window rather than one event). Zero disables.
func (g *ShardGroup) SetEventBudget(n int64) { g.budget = n }

// SetMaxTime arms a virtual-time watchdog on the global horizon,
// checked at every window barrier. Zero disables.
func (g *ShardGroup) SetMaxTime(t Time) { g.maxTime = t }

// EventsExecuted sums executed events across shards. Only meaningful
// from outside a window (between Run rounds or after Run returns).
func (g *ShardGroup) EventsExecuted() int64 {
	var n int64
	for _, e := range g.engines {
		n += e.executed
	}
	return n
}

// InlinedAdvances sums inline-completed advances across shards.
func (g *ShardGroup) InlinedAdvances() int64 {
	var n int64
	for _, e := range g.engines {
		n += e.inlined
	}
	return n
}

// Horizon returns the global horizon of the most recent window.
func (g *ShardGroup) Horizon() Time { return g.horizon }

// Inject schedules fn at time at on dst from src's engine context. The
// event key is reserved on src, so injections from one shard arrive at
// dst in the order they were issued. at must lie at least one window
// into src's future — the conservative lookahead contract; violating it
// means the cost model produced a cross-shard interaction faster than
// netmodel's minimum latency, which is a bug worth dying loudly for.
func (g *ShardGroup) Inject(src, dst *Engine, at Time, fn func()) {
	g.inject(src, dst, at, fn, nil)
}

// InjectRun is Inject for closure-free Runner payloads.
func (g *ShardGroup) InjectRun(src, dst *Engine, at Time, r Runner) {
	g.inject(src, dst, at, nil, r)
}

func (g *ShardGroup) inject(src, dst *Engine, at Time, fn func(), r Runner) {
	if src == dst {
		if r != nil {
			src.AtRun(at, r)
		} else {
			src.At(at, fn)
		}
		return
	}
	if min := src.now.Add(g.window); at < min {
		panic(fmt.Sprintf(
			"sim: cross-shard injection at %v from shard %d (now %v) violates lookahead %v (earliest legal %v)",
			at, src.shard, src.now, g.window, min))
	}
	seq := src.ReserveSeq()
	g.mail[src.shard][dst.shard] = append(g.mail[src.shard][dst.shard],
		crossEvent{at: at, seq: seq, fn: fn, run: r})
}

// worker executes windows for the shards it owns (strided by worker
// index, ascending), reporting each round through g.done. Process
// panics re-raised by transfer are caught here and re-raised by the
// coordinator, lowest shard first, so a multi-shard failure is
// reported deterministically.
func (g *ShardGroup) worker(w int) {
	for limit := range g.start[w] {
		for i := w; i < len(g.engines); i += g.nw {
			e := g.engines[i]
			func() {
				defer func() {
					if r := recover(); r != nil {
						g.panics[i] = r
					}
				}()
				e.limit = limit
				e.runWindow()
			}()
		}
		g.done <- w
	}
}

// drain moves every mailbox entry into its destination heap. Runs only
// at barriers, when all shards are quiescent.
func (g *ShardGroup) drain() {
	for src := range g.mail {
		for dst, box := range g.mail[src] {
			if len(box) == 0 {
				continue
			}
			e := g.engines[dst]
			for i := range box {
				ev := &box[i]
				e.injectEvent(ev.at, ev.seq, ev.fn, ev.run)
				box[i] = crossEvent{}
			}
			g.mail[src][dst] = box[:0]
		}
	}
}

func (g *ShardGroup) totalLive() int {
	n := 0
	for _, e := range g.engines {
		n += e.live
	}
	return n
}

// horizonDiagnostics reports each shard's clock and next pending event
// plus which shard is holding the global horizon back — the sharded
// extension of the frozen-clock report.
func (g *ShardGroup) horizonDiagnostics() []string {
	out := []string{"per-shard horizons:"}
	blocking, blockT := -1, timeMax
	for i, e := range g.engines {
		line := fmt.Sprintf("  shard %d: clock %v, %s", i, e.now, e.nextDesc())
		if t, ok := e.peekTime(); ok && t < blockT {
			blocking, blockT = i, t
		}
		out = append(out, line)
	}
	if blocking >= 0 {
		e := g.engines[blocking]
		out = append(out, fmt.Sprintf("blocking shard %d: %s", blocking, e.nextDesc()))
	}
	return out
}

// mergedStuck concatenates stuck-process reports across shards.
func (g *ShardGroup) mergedStuck() []string {
	var out []string
	for _, e := range g.engines {
		out = append(out, e.stuckProcs()...)
	}
	sort.Strings(out)
	return out
}

func (g *ShardGroup) mergedDiagnostics() []string {
	var out []string
	for _, e := range g.engines {
		out = append(out, e.collectDiagnostics()...)
	}
	return out
}

// Run executes windows until every shard drains. It returns a
// *DeadlockError when processes remain parked with no pending events
// anywhere, and a *WatchdogError — always carrying the per-shard
// horizon report — when a budget, time, or per-engine stall limit
// trips.
func (g *ShardGroup) Run() error {
	defer func() {
		for _, ch := range g.start {
			close(ch)
		}
	}()
	bgDiscarded := false
	for {
		g.drain()
		h, ok := Time(0), false
		for _, e := range g.engines {
			if t, tok := e.peekTime(); tok && (!ok || t < h) {
				h, ok = t, true
			}
		}
		if !ok {
			if g.totalLive() > 0 {
				return &DeadlockError{Time: g.horizon, Stuck: g.mergedStuck(),
					Diagnostics: g.mergedDiagnostics()}
			}
			return nil
		}
		g.horizon = h
		if g.maxTime > 0 && h > g.maxTime {
			return &WatchdogError{Time: h, Events: g.EventsExecuted(),
				Limit:       fmt.Sprintf("virtual-time limit %v", g.maxTime),
				Stuck:       g.mergedStuck(),
				Diagnostics: append(g.horizonDiagnostics(), g.mergedDiagnostics()...)}
		}
		limit := h.Add(g.window)
		for w := 0; w < g.nw; w++ {
			g.start[w] <- limit
		}
		for w := 0; w < g.nw; w++ {
			<-g.done
		}
		for i, p := range g.panics {
			if p != nil {
				panic(fmt.Sprintf("sim: shard %d: %v", i, p))
			}
		}
		for _, e := range g.engines {
			if e.wdErr != nil {
				err := e.wdErr
				g.drain() // surface in-flight injections in the horizon report
				err.Diagnostics = append(g.horizonDiagnostics(), err.Diagnostics...)
				return err
			}
		}
		if g.budget > 0 && g.EventsExecuted() >= g.budget {
			g.drain() // surface in-flight injections in the horizon report
			return &WatchdogError{Time: g.horizon, Events: g.EventsExecuted(),
				Limit:       fmt.Sprintf("event limit %d (checked at window barriers)", g.budget),
				Stuck:       g.mergedStuck(),
				Diagnostics: append(g.horizonDiagnostics(), g.mergedDiagnostics()...)}
		}
		if !bgDiscarded && g.totalLive() == 0 {
			// Every process in the group has terminated: from here on,
			// background housekeeping is discarded without running,
			// matching the serial engine's end-of-run rule.
			bgDiscarded = true
			for _, e := range g.engines {
				e.bgDiscard = true
			}
		}
	}
}
