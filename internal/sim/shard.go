package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
)

// crossEvent is one cross-shard injection waiting in a mailbox: an
// event key reserved on the sending engine plus its payload. Mailboxes
// drain into the destination heap at window barriers, so the (at, seq)
// key — seq banded by sending shard — totally orders injections against
// each other and against the destination's own events, independent of
// worker count or wall-clock interleaving.
type crossEvent struct {
	at  Time
	seq uint64
	fn  func()
	run Runner
}

// mailRing is a single-producer single-consumer mailbox for one
// (src, dst) shard pair. It alternates between two slabs keyed by
// window parity: during window W the producer (the worker running src)
// appends to slab[W&1] while the consumer (the worker running dst)
// drains slab[(W^1)&1], which was filled during W-1 — so the two sides
// never touch the same slab concurrently and the append hot path is a
// plain bounds-checked slice append: branch-predictable and, once the
// slab has grown to the workload's high-water mark, allocation-free.
// The barrier between windows publishes each slab to the other side.
//
// minAt/lastWin are producer-owned bookkeeping read by the coordinator
// between windows: the minimum event time appended during window
// lastWin. Together with the producer's dirty list they give the
// coordinator the pending-mail component of each shard's horizon
// without touching the slabs themselves.
type mailRing struct {
	slab    [2][]crossEvent
	minAt   Time
	lastWin uint64
}

// shardSlot is the coordinator→worker per-shard window assignment,
// padded to a cache line so workers scanning their shards never false-
// share with a neighbour being written for another worker.
type shardSlot struct {
	limit  Time  // exclusive upper bound of this shard's window
	winCap int64 // absolute executed-events cap (0 = none); budget backstop
	_      [48]byte
}

// workerSlot is one worker's release gate: a sense-reversing epoch the
// coordinator bumps to start a window, with bounded spin-then-park on
// the worker side. sleeping + the 1-slot channel implement the park:
// the worker announces it is about to sleep, re-checks the epoch (the
// store/load pair is the classic Dekker handshake — Go's sequentially
// consistent atomics guarantee coordinator and worker cannot both miss
// each other), then blocks; the coordinator wakes only workers that
// announced. Spurious wake tokens are harmless: the wait loop re-checks
// the epoch. Padded so two workers' epochs never share a cache line.
type workerSlot struct {
	epoch    atomic.Uint32
	sleeping atomic.Uint32
	ch       chan struct{}
	_        [40]byte
}

// post releases the worker into the next window. All per-window data
// (active list, shard slots) must be written before post: the epoch
// store / load pair is the happens-before edge the worker reads under.
func (s *workerSlot) post() {
	s.epoch.Add(1)
	if s.sleeping.Load() == 1 {
		select {
		case s.ch <- struct{}{}:
		default:
		}
	}
}

// await blocks until the epoch moves past last, spinning at most spin
// iterations before parking. Returns the new epoch.
func (s *workerSlot) await(last uint32, spin int) uint32 {
	for i := 0; i < spin; i++ {
		if e := s.epoch.Load(); e != last {
			return e
		}
	}
	for {
		if e := s.epoch.Load(); e != last {
			return e
		}
		s.sleeping.Store(1)
		if e := s.epoch.Load(); e != last {
			s.sleeping.Store(0)
			select { // drop a wake token sent for the epoch we just saw
			case <-s.ch:
			default:
			}
			return e
		}
		<-s.ch
		s.sleeping.Store(0)
	}
}

// ShardGroup executes a set of engines (shards) in parallel under
// conservative safe windows, bit-identical to serial execution for any
// worker count.
//
// Each round the coordinator computes every shard's horizon h_i (its
// earliest pending event, mailbox entries included) and gives shard i
// the per-shard window limit
//
//	L_i = lookahead + min over j≠i of h_j
//
// — the earliest instant any other shard could still affect it. This is
// the horizon-skipping improvement over a single global window
// [h, h+lookahead): a shard whose neighbours are quiescent runs
// arbitrarily far in one window (L_i = ∞ when no other shard has
// anything pending), so long idle stretches and serialized phases cost
// one barrier instead of thousands of lookahead-wide steps. Safety for
// the unbounded case comes from dynamic self-tightening: every
// cross-shard injection at time a lowers the sender's own limit to
// a+lookahead, because the earliest possible causal echo of that
// injection is one more lookahead away. (Proof sketch for the bounded
// case: mail sent by shard j during a window carries time ≥ now_j +
// lookahead ≥ h_j + lookahead ≥ L_i, so it is always delivered at or
// past the receiver's limit — never into its past.)
//
// Cross-shard scheduling goes through per-(src,dst) SPSC mailboxes
// (Inject/InjectRun) drained on the *destination* shard's worker at the
// start of its window, so both the append and the drain run outside the
// serial coordinator section. The barrier itself is a sense-reversing
// epoch per worker with bounded spin-then-park, and the coordinator
// doubles as worker 0: windows with a single active shard (or a single
// schedulable CPU) execute entirely inline with no atomics, channel
// operations, or goroutine switches.
type ShardGroup struct {
	engines []*Engine
	window  Duration
	nw      int // requested workers (clamped to shard count)
	maxPar  int // GOMAXPROCS at creation: workers beyond this only add handoffs
	spin    int // barrier spin iterations before parking

	rings [][]mailRing // [src][dst]
	dirty [][]int      // per src: dst shards appended to this window (producer-owned)

	budget  int64 // total executed events across shards; checked at barriers
	maxTime Time  // horizon bound; checked at barriers

	slots     []workerSlot // release gates for workers 1..spawned
	remaining atomic.Int32 // workers still running the current window
	coordWake atomic.Uint32
	coordCh   chan struct{}
	stop      atomic.Bool

	sh     []shardSlot // per-shard window assignment (padded)
	active []int       // this round's active shards, ascending
	used   int         // workers participating this round (coordinator included)
	widx   uint64      // window index: mailbox slab parity
	hs     []Time      // scratch: per-shard horizons
	pend   []Time      // scratch: per-shard min pending-mail time
	inbox  [][]int     // per dst: src shards with mail to drain this window

	rounds   int64 // window barriers executed
	fixedWin bool  // A/B: single global window [h, h+lookahead) per round

	spawned int
	panics  []interface{}
	horizon Time
}

// NewShardGroup wires engines into a group executed by up to workers
// goroutines (clamped to the shard count, and to GOMAXPROCS and the
// physical core count at creation; at least 1). The hardware clamp is
// deliberate: a conservative-window simulation gains nothing from
// time-sliced workers — every window still executes the same events,
// plus a park/wake round trip per worker per barrier — so on a machine
// without the cores the group runs its windows inline instead, which
// is always at least as fast and bit-identical. Each engine's sequence
// counter is rebased into its own 16-bit band so event keys stay
// unique across shards; engines must be freshly created and not yet
// run. The group is single-use: Run tears the workers down when it
// returns.
func NewShardGroup(engines []*Engine, window Duration, workers int) *ShardGroup {
	if len(engines) == 0 {
		panic("sim: NewShardGroup with no engines")
	}
	if window <= 0 {
		panic(fmt.Sprintf("sim: NewShardGroup window %v must be positive", window))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	maxPar := runtime.GOMAXPROCS(0)
	n := len(engines)
	g := &ShardGroup{
		engines: engines,
		window:  window,
		nw:      workers,
		maxPar:  maxPar,
		rings:   make([][]mailRing, n),
		dirty:   make([][]int, n),
		sh:      make([]shardSlot, n),
		hs:      make([]Time, n),
		pend:    make([]Time, n),
		inbox:   make([][]int, n),
		coordCh: make(chan struct{}, 1),
		panics:  make([]interface{}, n),
	}
	for i, e := range engines {
		if e.executed != 0 || e.seq != 0 {
			panic("sim: NewShardGroup engine already used")
		}
		e.shard = i
		e.limited = true
		e.seq = uint64(i) << 48
		g.rings[i] = make([]mailRing, n)
		g.pend[i] = timeMax
	}
	// Spin only when every participant can hold a CPU while it spins;
	// with a single schedulable CPU — whether GOMAXPROCS=1 or a
	// GOMAXPROCS raised past the physical core count — a spinning
	// waiter just steals timeslices from the worker it is waiting for,
	// so park immediately.
	if maxPar > 1 && runtime.NumCPU() > 1 {
		g.spin = 4096
	}
	nspawn := workers - 1
	if m := maxPar - 1; nspawn > m {
		nspawn = m
	}
	if m := runtime.NumCPU() - 1; nspawn > m {
		nspawn = m
	}
	if nspawn < 0 {
		nspawn = 0
	}
	// Slots are allocated for the un-clamped worker count so the test
	// hook below can add workers past the hardware clamp without
	// reallocating under a parked worker's feet.
	g.slots = make([]workerSlot, workers-1)
	for w := range g.slots {
		g.slots[w].ch = make(chan struct{}, 1)
	}
	g.spawnWorkers(nspawn)
	return g
}

// spawnWorkers raises the spawned-worker count to n (no-op when already
// there). Only called at construction and, from package tests, before
// the first Run — never on a running group.
func (g *ShardGroup) spawnWorkers(n int) {
	if n > len(g.slots) {
		n = len(g.slots)
	}
	for w := g.spawned + 1; w <= n; w++ {
		go g.workerLoop(w)
	}
	if n > g.spawned {
		g.spawned = n
	}
}

// Window returns the safe-window width (the lookahead bound).
func (g *ShardGroup) Window() Duration { return g.window }

// Engines returns the group's engines in shard order.
func (g *ShardGroup) Engines() []*Engine { return g.engines }

// Rounds returns how many window barriers Run has executed — the
// synchronization cost of the run. With horizon skipping this is a
// function of cross-shard interaction density, not of virtual time
// over lookahead.
func (g *ShardGroup) Rounds() int64 { return g.rounds }

// DisableHorizonSkipping reverts to a single global window
// [h, h+lookahead) per barrier — the fixed-step schedule the adaptive
// limits replaced. Output is bit-identical either way; the knob exists
// so tests can assert exactly that while measuring the barrier-count
// difference, and so regressions can be bisected to the limit logic.
func (g *ShardGroup) DisableHorizonSkipping() { g.fixedWin = true }

// SetEventBudget arms a total-events watchdog checked at every window
// barrier (the sharded analogue of Engine.SetWatchdog's event limit).
// The remaining budget also caps each shard's per-window event count,
// so a runaway shard inside an unbounded horizon-skipping window still
// returns to the barrier to be diagnosed. Zero disables.
func (g *ShardGroup) SetEventBudget(n int64) { g.budget = n }

// SetMaxTime arms a virtual-time watchdog on the global horizon,
// checked at every window barrier; it also caps every per-shard window
// limit, so no shard can run unboundedly past it. Zero disables.
func (g *ShardGroup) SetMaxTime(t Time) { g.maxTime = t }

// EventsExecuted sums executed events across shards. Only meaningful
// from outside a window (between Run rounds or after Run returns).
func (g *ShardGroup) EventsExecuted() int64 {
	var n int64
	for _, e := range g.engines {
		n += e.executed
	}
	return n
}

// InlinedAdvances sums inline-completed advances across shards.
func (g *ShardGroup) InlinedAdvances() int64 {
	var n int64
	for _, e := range g.engines {
		n += e.inlined
	}
	return n
}

// Horizon returns the global horizon of the most recent window.
func (g *ShardGroup) Horizon() Time { return g.horizon }

// Inject schedules fn at time at on dst from src's engine context. The
// event key is reserved on src, so injections from one shard arrive at
// dst in the order they were issued. at must lie at least one window
// into src's future — the conservative lookahead contract; violating it
// means the cost model produced a cross-shard interaction faster than
// netmodel's minimum latency, which is a bug worth dying loudly for.
func (g *ShardGroup) Inject(src, dst *Engine, at Time, fn func()) {
	g.inject(src, dst, at, fn, nil)
}

// InjectRun is Inject for closure-free Runner payloads.
func (g *ShardGroup) InjectRun(src, dst *Engine, at Time, r Runner) {
	g.inject(src, dst, at, nil, r)
}

func (g *ShardGroup) inject(src, dst *Engine, at Time, fn func(), r Runner) {
	if src == dst {
		if r != nil {
			src.AtRun(at, r)
		} else {
			src.At(at, fn)
		}
		return
	}
	if min := src.now.Add(g.window); at < min {
		panic(fmt.Sprintf(
			"sim: cross-shard injection at %v from shard %d (now %v) violates lookahead %v (earliest legal %v)",
			at, src.shard, src.now, g.window, min))
	}
	// Self-tightening: the earliest causal echo of this injection is one
	// lookahead past it, so the sender must not outrun at+window inside
	// this window. This is what makes unbounded (L=∞) windows safe.
	if lim := at.Add(g.window); lim < src.limit {
		src.limit = lim
	}
	seq := src.ReserveSeq()
	ring := &g.rings[src.shard][dst.shard]
	// First append of this window registers the ring on the producer's
	// dirty list; the coordinator folds minAt into the destination's
	// horizon at the barrier. widx is strictly increasing, so lastWin
	// doubles as the once-per-window latch.
	w := g.widx
	if ring.lastWin != w {
		ring.lastWin = w
		ring.minAt = at
		g.dirty[src.shard] = append(g.dirty[src.shard], dst.shard)
	} else if at < ring.minAt {
		ring.minAt = at
	}
	ring.slab[w&1] = append(ring.slab[w&1], crossEvent{at: at, seq: seq, fn: fn, run: r})
}

// workerLoop is the body of workers 1..spawned: wait for release, run
// the strided share of this round's active shards, report done.
func (g *ShardGroup) workerLoop(w int) {
	slot := &g.slots[w-1]
	last := uint32(0)
	for {
		last = slot.await(last, g.spin)
		if g.stop.Load() {
			return
		}
		g.runShare(w)
		if g.remaining.Add(-1) == 0 && g.coordWake.Load() == 1 {
			select {
			case g.coordCh <- struct{}{}:
			default:
			}
		}
	}
}

// runShare executes the active shards assigned to worker w this round
// (strided by the number of participating workers, ascending).
func (g *ShardGroup) runShare(w int) {
	a := g.active
	for k := w; k < len(a); k += g.used {
		g.runShard(a[k])
	}
}

// runShard drains shard i's inbound mailboxes (the slabs filled during
// the previous window) into its heap, then executes its window. Process
// panics are captured per shard and re-raised by the coordinator,
// lowest shard first, so a multi-shard failure is reported
// deterministically.
func (g *ShardGroup) runShard(i int) {
	defer func() {
		if r := recover(); r != nil {
			g.panics[i] = r
		}
	}()
	e := g.engines[i]
	slab := int((g.widx ^ 1) & 1)
	for _, src := range g.inbox[i] {
		ring := &g.rings[src][i]
		box := ring.slab[slab]
		for k := range box {
			ev := &box[k]
			if ev.at < e.now {
				panic(fmt.Sprintf(
					"sim: cross-shard event at %v delivered into shard %d past (now %v)",
					ev.at, i, e.now))
			}
			e.injectEvent(ev.at, ev.seq, ev.fn, ev.run)
			box[k] = crossEvent{}
		}
		ring.slab[slab] = box[:0]
	}
	g.inbox[i] = g.inbox[i][:0]
	e.limit = g.sh[i].limit
	e.winCap = g.sh[i].winCap
	e.runWindow()
}

// waitWorkers blocks until every released worker has finished the
// window, spinning briefly before parking (the mirror image of
// workerSlot.await).
func (g *ShardGroup) waitWorkers() {
	for i := 0; i < g.spin; i++ {
		if g.remaining.Load() == 0 {
			return
		}
	}
	for {
		if g.remaining.Load() == 0 {
			return
		}
		g.coordWake.Store(1)
		if g.remaining.Load() == 0 {
			g.coordWake.Store(0)
			select {
			case <-g.coordCh:
			default:
			}
			return
		}
		<-g.coordCh
		g.coordWake.Store(0)
	}
}

// drainAll moves every pending mailbox entry (both slabs) into its
// destination heap so error reports see in-flight injections. Only
// called at barriers from error paths, when every worker is quiescent.
func (g *ShardGroup) drainAll() {
	for src := range g.rings {
		for dst := range g.rings[src] {
			ring := &g.rings[src][dst]
			e := g.engines[dst]
			for s := 0; s < 2; s++ {
				box := ring.slab[s]
				for k := range box {
					ev := &box[k]
					e.injectEvent(ev.at, ev.seq, ev.fn, ev.run)
					box[k] = crossEvent{}
				}
				ring.slab[s] = box[:0]
			}
		}
		g.dirty[src] = g.dirty[src][:0]
	}
}

func (g *ShardGroup) totalLive() int {
	n := 0
	for _, e := range g.engines {
		n += e.live
	}
	return n
}

// horizonDiagnostics reports each shard's clock and next pending event
// plus which shard is holding the global horizon back — the sharded
// extension of the frozen-clock report.
func (g *ShardGroup) horizonDiagnostics() []string {
	out := []string{"per-shard horizons:"}
	blocking, blockT := -1, timeMax
	for i, e := range g.engines {
		line := fmt.Sprintf("  shard %d: clock %v, %s", i, e.now, e.nextDesc())
		if t, ok := e.peekTime(); ok && t < blockT {
			blocking, blockT = i, t
		}
		out = append(out, line)
	}
	if blocking >= 0 {
		e := g.engines[blocking]
		out = append(out, fmt.Sprintf("blocking shard %d: %s", blocking, e.nextDesc()))
	}
	return out
}

// mergedStuck concatenates stuck-process reports across shards.
func (g *ShardGroup) mergedStuck() []string {
	var out []string
	for _, e := range g.engines {
		out = append(out, e.stuckProcs()...)
	}
	sort.Strings(out)
	return out
}

func (g *ShardGroup) mergedDiagnostics() []string {
	var out []string
	for i, e := range g.engines {
		out = append(out, fmt.Sprintf("shard %d %s", i, e.SchedulerState()))
		out = append(out, e.collectDiagnostics()...)
	}
	return out
}

// shutdown releases every worker with the stop flag set; they exit
// after observing it.
func (g *ShardGroup) shutdown() {
	g.stop.Store(true)
	for w := range g.slots {
		g.slots[w].post()
	}
}

// Run executes windows until every shard drains. It returns a
// *DeadlockError when processes remain parked with no pending events
// anywhere, and a *WatchdogError — always carrying the per-shard
// horizon report — when a budget, time, or per-engine stall limit
// trips.
func (g *ShardGroup) Run() error {
	defer g.shutdown()
	bgDiscarded := false
	for {
		// Fold the mail appended during the last window into per-shard
		// pending minima and inbound drain lists; shards with inbound
		// mail must run (at least to drain) next window, which keeps
		// every mailbox slab empty again by the time its producer's
		// parity comes back around. The inbox lists make the drain
		// O(mailboxes with mail) instead of O(shards) per active shard.
		for src := range g.dirty {
			for _, dst := range g.dirty[src] {
				ring := &g.rings[src][dst]
				if ring.minAt < g.pend[dst] {
					g.pend[dst] = ring.minAt
				}
				g.inbox[dst] = append(g.inbox[dst], src)
			}
			g.dirty[src] = g.dirty[src][:0]
		}

		// Per-shard horizons, global minimum and runner-up.
		h, h2, argmin := timeMax, timeMax, -1
		for i, e := range g.engines {
			ht := timeMax
			if t, ok := e.peekTime(); ok {
				ht = t
			}
			if p := g.pend[i]; p < ht {
				ht = p
			}
			g.hs[i] = ht
			if ht < h {
				h2, h, argmin = h, ht, i
			} else if ht < h2 {
				h2 = ht
			}
		}
		if h == timeMax {
			if g.totalLive() > 0 {
				return &DeadlockError{Time: g.horizon, Stuck: g.mergedStuck(),
					Diagnostics: g.mergedDiagnostics()}
			}
			return nil
		}
		g.horizon = h
		if g.maxTime > 0 && h > g.maxTime {
			return &WatchdogError{Time: h, Events: g.EventsExecuted(),
				Limit:       fmt.Sprintf("virtual-time limit %v", g.maxTime),
				Stuck:       g.mergedStuck(),
				Diagnostics: append(g.horizonDiagnostics(), g.mergedDiagnostics()...)}
		}

		// Per-shard limits and this round's active set. A shard is
		// active when it has work below its limit or mail to drain.
		var budgetLeft int64
		if g.budget > 0 {
			if budgetLeft = g.budget - g.EventsExecuted(); budgetLeft < 1 {
				budgetLeft = 1
			}
		}
		g.active = g.active[:0]
		for i := range g.engines {
			var lim Time
			switch {
			case g.fixedWin:
				lim = h.Add(g.window)
			default:
				other := h
				if i == argmin {
					other = h2
				}
				if other == timeMax {
					lim = timeMax // sole shard with pending work: see inject
				} else {
					lim = other.Add(g.window)
				}
			}
			if g.maxTime > 0 && lim > g.maxTime+1 {
				lim = g.maxTime + 1
			}
			g.sh[i].limit = lim
			g.sh[i].winCap = 0
			if budgetLeft > 0 {
				g.sh[i].winCap = g.engines[i].executed + budgetLeft
			}
			if g.hs[i] < lim || len(g.inbox[i]) > 0 {
				g.active = append(g.active, i)
			}
			g.pend[i] = timeMax
		}

		// Release: coordinator is worker 0; extra workers only when more
		// than one shard is active and CPUs are there to run them.
		g.widx++
		g.rounds++
		used := 1
		if n := len(g.active); n > 1 {
			used = g.spawned + 1
			if used > n {
				used = n
			}
		}
		g.used = used
		if used > 1 {
			g.remaining.Store(int32(used - 1))
			for w := 1; w < used; w++ {
				g.slots[w-1].post()
			}
			g.runShare(0)
			g.waitWorkers()
		} else {
			g.runShare(0)
		}

		for i, p := range g.panics {
			if p != nil {
				panic(fmt.Sprintf("sim: shard %d: %v", i, p))
			}
		}
		for _, e := range g.engines {
			if e.wdErr != nil {
				err := e.wdErr
				g.drainAll() // surface in-flight injections in the horizon report
				err.Diagnostics = append(g.horizonDiagnostics(), err.Diagnostics...)
				return err
			}
		}
		if g.budget > 0 && g.EventsExecuted() >= g.budget {
			g.drainAll() // surface in-flight injections in the horizon report
			return &WatchdogError{Time: g.horizon, Events: g.EventsExecuted(),
				Limit:       fmt.Sprintf("event limit %d (checked at window barriers)", g.budget),
				Stuck:       g.mergedStuck(),
				Diagnostics: append(g.horizonDiagnostics(), g.mergedDiagnostics()...)}
		}
		if !bgDiscarded && g.totalLive() == 0 {
			// Every process in the group has terminated: from here on,
			// background housekeeping is discarded without running,
			// matching the serial engine's end-of-run rule.
			bgDiscarded = true
			for _, e := range g.engines {
				e.bgDiscard = true
			}
		}
	}
}
