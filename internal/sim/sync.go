package sim

// Queue is an unbounded FIFO in virtual time. Any simulation context may
// Put; processes may block in Get until an item is available. The zero
// value is ready to use.
type Queue[T any] struct {
	items []T
	sig   Signal
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes blocked getters.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.sig.Broadcast()
}

// TryGet pops the head item if one is present.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Get pops the head item, parking p until one is available.
func (q *Queue[T]) Get(p *Proc, reason string) T {
	for {
		if v, ok := q.TryGet(); ok {
			return v
		}
		q.sig.Wait(p, reason)
	}
}

// Server models a serial resource (a CPU servicing a work queue): jobs
// submitted to it execute one at a time in submission order, each
// occupying the server for its duration. The zero value is an idle
// server.
type Server struct {
	eng       *Engine
	busyUntil Time
	busy      Duration // total busy time, for utilization accounting
	jobs      int
}

// NewServer returns an idle serial server on e.
func NewServer(e *Engine) *Server { return &Server{eng: e} }

// Submit enqueues a job that becomes runnable at time ready, takes d to
// service, and invokes fn (if non-nil) when it finishes. It returns the
// job's completion time. Submit does not block the caller.
func (s *Server) Submit(ready Time, d Duration, fn func()) Time {
	start := s.eng.now
	if ready > start {
		start = ready
	}
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end := start.Add(d)
	s.busyUntil = end
	s.busy += d
	s.jobs++
	if fn != nil {
		s.eng.At(end, fn)
	}
	return end
}

// BusyUntil returns the time at which the server's current backlog
// drains.
func (s *Server) BusyUntil() Time { return s.busyUntil }

// TotalBusy returns the cumulative service time of all submitted jobs.
func (s *Server) TotalBusy() Duration { return s.busy }

// Jobs returns the number of jobs ever submitted.
func (s *Server) Jobs() int { return s.jobs }
