package sim

// Queue is an unbounded FIFO in virtual time. Any simulation context may
// Put; processes may block in Get until an item is available. The zero
// value is ready to use.
type Queue[T any] struct {
	items []T
	sig   Signal
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes blocked getters.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.sig.Broadcast()
}

// TryGet pops the head item if one is present.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Get pops the head item, parking p until one is available.
func (q *Queue[T]) Get(p *Proc, reason string) T {
	for {
		if v, ok := q.TryGet(); ok {
			return v
		}
		q.sig.Wait(p, reason)
	}
}

// Server models a serial resource (a CPU servicing a work queue): jobs
// submitted to it execute one at a time in submission order, each
// occupying the server for its duration. The zero value is an idle
// server.
//
// Completion times of a serial server are monotone in submission order,
// so only the job at the head of the backlog keeps an event in the
// engine's heap; the rest wait in a private FIFO and are promoted one at
// a time as completions fire. A deep backlog (a saturated ghost under
// all-to-all load) therefore costs O(1) heap residency instead of one
// heap entry per queued job — sift depth stays flat no matter how
// overloaded the server gets. Each job's event sequence number is
// reserved at submission, which makes the executed timeline — every
// (time, seq) pair — identical to scheduling all completions eagerly.
type Server struct {
	eng       *Engine
	busyUntil Time
	busy      Duration // total busy time, for utilization accounting
	jobs      int

	headLive bool      // a completion event for head is in the heap
	head     serverJob // job whose completion event is in flight
	pending  []serverJob
	pendHead int
}

// serverJob is one queued completion callback with its reserved event
// identity.
type serverJob struct {
	end Time
	seq uint64
	fn  func()
	r   Runner
}

// NewServer returns an idle serial server on e.
func NewServer(e *Engine) *Server { return &Server{eng: e} }

// Submit enqueues a job that becomes runnable at time ready, takes d to
// service, and invokes fn (if non-nil) when it finishes. It returns the
// job's completion time. Submit does not block the caller.
func (s *Server) Submit(ready Time, d Duration, fn func()) Time {
	end := s.occupy(ready, d)
	if fn != nil {
		s.enqueue(serverJob{end: end, fn: fn})
	}
	return end
}

// SubmitRun is Submit with a closure-free completion callback: r.Step()
// runs when the job finishes. The hot AM service path uses it so that
// queuing a job allocates nothing.
func (s *Server) SubmitRun(ready Time, d Duration, r Runner) Time {
	end := s.occupy(ready, d)
	s.enqueue(serverJob{end: end, r: r})
	return end
}

// enqueue reserves the job's event seq (exactly where an eager schedule
// would have assigned it) and either schedules its completion or parks
// it behind the current head.
func (s *Server) enqueue(job serverJob) {
	e := s.eng
	if e.fastOff {
		// Slow path for A/B bisection: every completion goes through
		// the heap eagerly.
		if job.r != nil {
			e.AtRun(job.end, job.r)
		} else {
			e.At(job.end, job.fn)
		}
		return
	}
	e.seq++
	job.seq = e.seq
	if s.headLive {
		s.pending = append(s.pending, job)
		return
	}
	s.head, s.headLive = job, true
	e.scheduleReserved(job.end, job.seq, s)
}

// Step fires the head job's completion and promotes the next queued job,
// re-using the seq reserved at its submission so the event order is
// exactly the eager schedule's. It is the Runner the server registers
// for its resident heap event; promotion happens before the callback so
// a callback that resubmits sees consistent state.
func (s *Server) Step() {
	job := s.head
	if s.pendHead < len(s.pending) {
		next := s.pending[s.pendHead]
		s.pending[s.pendHead] = serverJob{}
		s.pendHead++
		if s.pendHead == len(s.pending) {
			s.pending = s.pending[:0]
			s.pendHead = 0
		}
		s.head = next
		s.eng.scheduleReserved(next.end, next.seq, s)
	} else {
		s.head = serverJob{}
		s.headLive = false
	}
	if job.r != nil {
		job.r.Step()
	} else if job.fn != nil {
		job.fn()
	}
}

// occupy reserves the server for a d-long job runnable at ready and
// returns its completion time.
func (s *Server) occupy(ready Time, d Duration) Time {
	start := s.eng.now
	if ready > start {
		start = ready
	}
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end := start.Add(d)
	s.busyUntil = end
	s.busy += d
	s.jobs++
	return end
}

// BusyUntil returns the time at which the server's current backlog
// drains.
func (s *Server) BusyUntil() Time { return s.busyUntil }

// TotalBusy returns the cumulative service time of all submitted jobs.
func (s *Server) TotalBusy() Duration { return s.busy }

// Jobs returns the number of jobs ever submitted.
func (s *Server) Jobs() int { return s.jobs }
