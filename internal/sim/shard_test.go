package sim

import (
	"fmt"
	"strings"
	"testing"
)

// runShardScenario runs a fixed 4-shard workload — processes advancing
// by per-engine random draws and injecting callbacks into each other's
// shards — and returns a transcript of everything each shard observed.
func runShardScenario(t *testing.T, workers int) ([]string, int64) {
	t.Helper()
	const nsh = 4
	engines := make([]*Engine, nsh)
	for i := range engines {
		engines[i] = New(int64(100 + i))
	}
	g := NewShardGroup(engines, Microseconds(1), workers)
	logs := make([][]string, nsh)
	for i := range engines {
		i, e := i, engines[i]
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < 60; k++ {
				p.Advance(Duration(e.Rand().Int63n(int64(Microseconds(3)))) + 1)
				dst := (i + 1 + k) % nsh
				at := e.Now().Add(Microseconds(1) + Duration(k))
				src, val := i, k
				g.Inject(e, engines[dst], at, func() {
					logs[dst] = append(logs[dst],
						fmt.Sprintf("shard%d t=%v from=%d k=%d", dst, engines[dst].Now(), src, val))
				})
			}
		})
	}
	if err := g.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var all []string
	for _, l := range logs {
		all = append(all, l...)
	}
	return all, g.EventsExecuted()
}

// TestShardGroupWorkerCountIdentical is the sharded analogue of the
// parallel-sweep determinism test: the observable execution — every
// cross-shard delivery, in order, with its virtual timestamp — must be
// identical for any worker count.
func TestShardGroupWorkerCountIdentical(t *testing.T) {
	base, baseEvents := runShardScenario(t, 1)
	if len(base) == 0 {
		t.Fatal("scenario produced no cross-shard deliveries")
	}
	for _, w := range []int{2, 3, 4, 8} {
		got, gotEvents := runShardScenario(t, w)
		if strings.Join(got, "\n") != strings.Join(base, "\n") {
			t.Fatalf("workers=%d transcript differs from workers=1", w)
		}
		if gotEvents != baseEvents {
			t.Fatalf("workers=%d executed %d events, workers=1 executed %d", w, gotEvents, baseEvents)
		}
	}
}

// TestShardGroupLookaheadViolationPanics: injecting closer than the
// window is a cost-model bug and must die loudly.
func TestShardGroupLookaheadViolationPanics(t *testing.T) {
	engines := []*Engine{New(1), New(2)}
	g := NewShardGroup(engines, Microseconds(1), 1)
	engines[0].Spawn("violator", func(p *Proc) {
		g.Inject(engines[0], engines[1], engines[0].Now().Add(Microseconds(1)-1), func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sub-lookahead injection did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "violates lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	g.Run()
	t.Fatal("unreachable: Run returned")
}

// TestShardGroupBudgetReportsHorizons: the barrier-checked event budget
// trips on a cross-shard ping-pong that never drains, and the error
// carries the per-shard horizon report (the sharded frozen-clock
// diagnostic).
func TestShardGroupBudgetReportsHorizons(t *testing.T) {
	engines := []*Engine{New(1), New(2), New(3)}
	g := NewShardGroup(engines, Microseconds(1), 2)
	g.SetEventBudget(500)
	var ping func(dst int)
	ping = func(dst int) {
		e := engines[dst]
		next := (dst + 1) % len(engines)
		g.Inject(e, engines[next], e.Now().Add(Microseconds(1)), func() { ping(next) })
	}
	engines[0].Spawn("kickoff", func(p *Proc) { ping(0) })
	// A parked process keeps the group formally alive so the ping-pong
	// cannot end in a normal drain.
	var never Completion
	engines[1].Spawn("waiter", func(p *Proc) { never.Await(p, "waiting forever") })
	err := g.Run()
	we, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("expected WatchdogError, got %v", err)
	}
	if !strings.Contains(we.Error(), "per-shard horizons:") {
		t.Fatalf("budget error lacks per-shard horizon report:\n%v", we)
	}
	if !strings.Contains(we.Error(), "blocking shard") {
		t.Fatalf("budget error lacks blocking-shard line:\n%v", we)
	}
}

// TestShardGroupStallWatchdogEnriched: a per-engine stall (frozen
// clock inside one shard) is reported with every shard's horizon and
// the blocking shard's next event, not just a single timestamp.
func TestShardGroupStallWatchdogEnriched(t *testing.T) {
	engines := []*Engine{New(1), New(2)}
	g := NewShardGroup(engines, Microseconds(1), 2)
	engines[0].SetStallWatchdog(100)
	var spin func()
	spin = func() { engines[0].At(engines[0].Now(), spin) }
	engines[0].Spawn("spinner", func(p *Proc) { spin() })
	engines[1].Spawn("healthy", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(Microseconds(5))
		}
	})
	err := g.Run()
	we, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("expected WatchdogError, got %v", err)
	}
	msg := we.Error()
	if !strings.Contains(msg, "stalled") {
		t.Fatalf("expected stall trip, got: %v", msg)
	}
	for _, want := range []string{"per-shard horizons:", "shard 0:", "shard 1:", "blocking shard"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("stall report missing %q:\n%v", want, msg)
		}
	}
}

// TestShardGroupDeadlockMerged: a cross-shard deadlock merges every
// shard's stuck processes into one report.
func TestShardGroupDeadlockMerged(t *testing.T) {
	engines := []*Engine{New(1), New(2)}
	g := NewShardGroup(engines, Microseconds(1), 2)
	var c0, c1 Completion
	engines[0].Spawn("a", func(p *Proc) { c0.Await(p, "waiting on b") })
	engines[1].Spawn("b", func(p *Proc) { c1.Await(p, "waiting on a") })
	err := g.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Stuck) != 2 {
		t.Fatalf("expected 2 stuck processes, got %v", de.Stuck)
	}
}
