package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

// forceParallel raises GOMAXPROCS to at least n for the duration of a
// test so worker goroutines really interleave. Returns a restore func
// for defer. NewShardGroup additionally clamps its spawned workers to
// the physical core count, which no test can raise — tests that need
// the multi-worker barrier paths on a small machine re-spawn past the
// clamp with g.spawnWorkers (safe before the first Run).
func forceParallel(n int) func() {
	old := runtime.GOMAXPROCS(0)
	if old < n {
		runtime.GOMAXPROCS(n)
	}
	return func() { runtime.GOMAXPROCS(old) }
}

// runShardScenario runs a fixed 4-shard workload — processes advancing
// by per-engine random draws and injecting callbacks into each other's
// shards — and returns a transcript of everything each shard observed.
func runShardScenario(t *testing.T, workers int) ([]string, int64) {
	t.Helper()
	defer forceParallel(4)()
	const nsh = 4
	engines := make([]*Engine, nsh)
	for i := range engines {
		engines[i] = New(int64(100 + i))
	}
	g := NewShardGroup(engines, Microseconds(1), workers)
	g.spawnWorkers(workers - 1)
	logs := make([][]string, nsh)
	for i := range engines {
		i, e := i, engines[i]
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < 60; k++ {
				p.Advance(Duration(e.Rand().Int63n(int64(Microseconds(3)))) + 1)
				dst := (i + 1 + k) % nsh
				at := e.Now().Add(Microseconds(1) + Duration(k))
				src, val := i, k
				g.Inject(e, engines[dst], at, func() {
					logs[dst] = append(logs[dst],
						fmt.Sprintf("shard%d t=%v from=%d k=%d", dst, engines[dst].Now(), src, val))
				})
			}
		})
	}
	if err := g.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var all []string
	for _, l := range logs {
		all = append(all, l...)
	}
	return all, g.EventsExecuted()
}

// TestShardGroupWorkerCountIdentical is the sharded analogue of the
// parallel-sweep determinism test: the observable execution — every
// cross-shard delivery, in order, with its virtual timestamp — must be
// identical for any worker count.
func TestShardGroupWorkerCountIdentical(t *testing.T) {
	base, baseEvents := runShardScenario(t, 1)
	if len(base) == 0 {
		t.Fatal("scenario produced no cross-shard deliveries")
	}
	for _, w := range []int{2, 3, 4, 8} {
		got, gotEvents := runShardScenario(t, w)
		if strings.Join(got, "\n") != strings.Join(base, "\n") {
			t.Fatalf("workers=%d transcript differs from workers=1", w)
		}
		if gotEvents != baseEvents {
			t.Fatalf("workers=%d executed %d events, workers=1 executed %d", w, gotEvents, baseEvents)
		}
	}
}

// TestShardGroupLookaheadViolationPanics: injecting closer than the
// window is a cost-model bug and must die loudly.
func TestShardGroupLookaheadViolationPanics(t *testing.T) {
	engines := []*Engine{New(1), New(2)}
	g := NewShardGroup(engines, Microseconds(1), 1)
	engines[0].Spawn("violator", func(p *Proc) {
		g.Inject(engines[0], engines[1], engines[0].Now().Add(Microseconds(1)-1), func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sub-lookahead injection did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "violates lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	g.Run()
	t.Fatal("unreachable: Run returned")
}

// TestShardGroupBudgetReportsHorizons: the barrier-checked event budget
// trips on a cross-shard ping-pong that never drains, and the error
// carries the per-shard horizon report (the sharded frozen-clock
// diagnostic).
func TestShardGroupBudgetReportsHorizons(t *testing.T) {
	engines := []*Engine{New(1), New(2), New(3)}
	g := NewShardGroup(engines, Microseconds(1), 2)
	g.SetEventBudget(500)
	var ping func(dst int)
	ping = func(dst int) {
		e := engines[dst]
		next := (dst + 1) % len(engines)
		g.Inject(e, engines[next], e.Now().Add(Microseconds(1)), func() { ping(next) })
	}
	engines[0].Spawn("kickoff", func(p *Proc) { ping(0) })
	// A parked process keeps the group formally alive so the ping-pong
	// cannot end in a normal drain.
	var never Completion
	engines[1].Spawn("waiter", func(p *Proc) { never.Await(p, "waiting forever") })
	err := g.Run()
	we, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("expected WatchdogError, got %v", err)
	}
	if !strings.Contains(we.Error(), "per-shard horizons:") {
		t.Fatalf("budget error lacks per-shard horizon report:\n%v", we)
	}
	if !strings.Contains(we.Error(), "blocking shard") {
		t.Fatalf("budget error lacks blocking-shard line:\n%v", we)
	}
}

// TestShardGroupStallWatchdogEnriched: a per-engine stall (frozen
// clock inside one shard) is reported with every shard's horizon and
// the blocking shard's next event, not just a single timestamp.
func TestShardGroupStallWatchdogEnriched(t *testing.T) {
	engines := []*Engine{New(1), New(2)}
	g := NewShardGroup(engines, Microseconds(1), 2)
	engines[0].SetStallWatchdog(100)
	var spin func()
	spin = func() { engines[0].At(engines[0].Now(), spin) }
	engines[0].Spawn("spinner", func(p *Proc) { spin() })
	engines[1].Spawn("healthy", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(Microseconds(5))
		}
	})
	err := g.Run()
	we, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("expected WatchdogError, got %v", err)
	}
	msg := we.Error()
	if !strings.Contains(msg, "stalled") {
		t.Fatalf("expected stall trip, got: %v", msg)
	}
	for _, want := range []string{"per-shard horizons:", "shard 0:", "shard 1:", "blocking shard"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("stall report missing %q:\n%v", want, msg)
		}
	}
}

// runSparseScenario is a horizon-skipping workload: shard 0 grinds
// through thousands of closely spaced local events across a long
// virtual span, with only an occasional cross-shard injection; shard 1
// is otherwise idle. With fixed lookahead-wide windows the run costs
// one barrier per window across the whole span; with adaptive limits
// it costs a handful of barriers around each injection.
func runSparseScenario(t *testing.T, fixed bool, workers int) ([]string, int64) {
	t.Helper()
	defer forceParallel(4)()
	engines := []*Engine{New(1), New(2)}
	g := NewShardGroup(engines, Microseconds(1), workers)
	g.spawnWorkers(workers - 1)
	if fixed {
		g.DisableHorizonSkipping()
	}
	var log []string
	e0 := engines[0]
	e0.Spawn("busy", func(p *Proc) {
		for k := 0; k < 2000; k++ {
			p.Advance(Duration(500)) // 0.5 us: two local events per window width
			if k%200 == 0 {
				at := e0.Now().Add(Microseconds(1))
				k := k
				g.Inject(e0, engines[1], at, func() {
					log = append(log, fmt.Sprintf("t=%v k=%d", engines[1].Now(), k))
				})
			}
		}
	})
	if err := g.Run(); err != nil {
		t.Fatalf("fixed=%v workers=%d: %v", fixed, workers, err)
	}
	return log, g.Rounds()
}

// TestShardGroupHorizonSkipping: on the sparse workload, adaptive
// per-shard limits must cut the barrier count by at least 10x versus
// fixed lookahead-wide windows, with a byte-identical transcript at
// every (mode, worker-count) combination.
func TestShardGroupHorizonSkipping(t *testing.T) {
	base, fixedRounds := runSparseScenario(t, true, 1)
	if len(base) != 10 {
		t.Fatalf("expected 10 cross-shard deliveries, got %d", len(base))
	}
	var skipRounds int64
	for _, w := range []int{1, 2, 4} {
		for _, fixed := range []bool{true, false} {
			got, rounds := runSparseScenario(t, fixed, w)
			if strings.Join(got, "\n") != strings.Join(base, "\n") {
				t.Fatalf("fixed=%v workers=%d transcript differs from baseline", fixed, w)
			}
			if !fixed {
				skipRounds = rounds
			}
		}
	}
	if skipRounds*10 > fixedRounds {
		t.Fatalf("horizon skipping used %d barriers, fixed windows %d: want >= 10x reduction",
			skipRounds, fixedRounds)
	}
}

// TestShardBarrierStress drives the sense-reversing barrier through
// thousands of windows at randomized shard counts and per-window event
// loads, at several worker counts per workload. A lost wakeup hangs the
// test (caught by the go test timeout); nondeterminism in the limit
// logic shows up as diverging event counts, barrier counts, or final
// horizons between worker counts. Run under -race in CI, with
// GOMAXPROCS forced up so the workers really interleave.
func TestShardBarrierStress(t *testing.T) {
	defer forceParallel(4)()
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nsh := 2 + rng.Intn(7)         // 2..8 shards
			iters := 1600 + rng.Intn(1000) // per-shard injection count
			run := func(workers int) (events, rounds int64, horizon Time) {
				engines := make([]*Engine, nsh)
				for i := range engines {
					engines[i] = New(seed*100 + int64(i))
				}
				g := NewShardGroup(engines, Microseconds(1), workers)
				g.spawnWorkers(workers - 1)
				for i := range engines {
					i, e := i, engines[i]
					e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
						for k := 0; k < iters; k++ {
							p.Advance(Duration(e.Rand().Int63n(int64(Microseconds(2)))) + 1)
							dst := int(e.Rand().Int63n(int64(nsh)))
							if dst == i {
								continue
							}
							at := e.Now().Add(Microseconds(1) + Duration(e.Rand().Int63n(1000)))
							g.Inject(e, engines[dst], at, func() {})
						}
					})
				}
				if err := g.Run(); err != nil {
					t.Fatalf("shards=%d workers=%d: %v", nsh, workers, err)
				}
				return g.EventsExecuted(), g.Rounds(), g.Horizon()
			}
			be, br, bh := run(1)
			if br < 1000 {
				t.Fatalf("stress workload too tame: only %d windows", br)
			}
			for _, w := range []int{2, nsh, 2 * nsh} {
				ev, ro, ho := run(w)
				if ev != be || ro != br || ho != bh {
					t.Fatalf("workers=%d diverged: events %d/%d rounds %d/%d horizon %v/%v",
						w, ev, be, ro, br, ho, bh)
				}
			}
		})
	}
}

// TestShardGroupDeadlockMerged: a cross-shard deadlock merges every
// shard's stuck processes into one report.
func TestShardGroupDeadlockMerged(t *testing.T) {
	engines := []*Engine{New(1), New(2)}
	g := NewShardGroup(engines, Microseconds(1), 2)
	var c0, c1 Completion
	engines[0].Spawn("a", func(p *Proc) { c0.Await(p, "waiting on b") })
	engines[1].Spawn("b", func(p *Proc) { c1.Await(p, "waiting on a") })
	err := g.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Stuck) != 2 {
		t.Fatalf("expected 2 stuck processes, got %v", de.Stuck)
	}
}
