package core

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestCasperPutGetRoundTrip(t *testing.T) {
	// 2 nodes x 4 ranks, 1 ghost each -> 6 users. Cross-node put/get.
	var got []float64
	casperRun(t, casperConfig(8, 4), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 64, nil)
		c.Barrier()
		if p.Rank() == 0 {
			last := p.Size() - 1 // on the other node
			win.Lock(last, mpi.LockExclusive, mpi.AssertNone)
			win.Put(mpi.PutFloat64s([]float64{2.5, -7}), last, 16, mpi.TypeOf(mpi.Float64, 2))
			win.Unlock(last)
			win.Lock(last, mpi.LockShared, mpi.AssertNone)
			dst := make([]byte, 16)
			win.Get(dst, last, 16, mpi.TypeOf(mpi.Float64, 2))
			win.Unlock(last)
			got = mpi.GetFloat64s(dst)
		}
		c.Barrier()
	})
	if got[0] != 2.5 || got[1] != -7 {
		t.Fatalf("got %v", got)
	}
}

func TestCasperPutLandsInUserMemory(t *testing.T) {
	// The redirected put must be visible in the target's own buffer
	// (offset translation into the shared segment, Section II-C).
	results := map[int]float64{}
	casperRun(t, casperConfig(8, 4), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.LockAll(mpi.AssertNone)
			for tgt := 1; tgt < p.Size(); tgt++ {
				win.Put(mpi.PutFloat64s([]float64{float64(100 + tgt)}), tgt, 0,
					mpi.Scalar(mpi.Float64))
			}
			win.UnlockAll()
		}
		c.Barrier()
		results[p.Rank()] = mpi.GetFloat64s(buf)[0]
	})
	for tgt := 1; tgt < 6; tgt++ {
		if results[tgt] != float64(100+tgt) {
			t.Fatalf("target %d saw %v", tgt, results[tgt])
		}
	}
}

func TestCasperOffsetTranslationWithUnevenSizes(t *testing.T) {
	// Ranks allocate different sizes; displacements must still land at
	// the right user bytes (prefix-sum offsets in the node segment).
	var got float64
	casperRun(t, casperConfig(6, 6), Config{NumGhosts: 2}, func(p *Process) {
		c := p.CommWorld()
		size := 8 * (p.Rank() + 1) // 8, 16, 24, 32
		win, buf := p.WinAllocate(c, size, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.LockAll(mpi.AssertNone)
			// Write the LAST double of target 3's 32-byte window.
			win.Put(mpi.PutFloat64s([]float64{55}), 3, 24, mpi.Scalar(mpi.Float64))
			win.UnlockAll()
		}
		c.Barrier()
		if p.Rank() == 3 {
			got = mpi.GetFloat64s(buf)[3]
		}
	})
	if got != 55 {
		t.Fatalf("got %v", got)
	}
}

func TestCasperAccumulateFromManyOrigins(t *testing.T) {
	var sum float64
	casperRun(t, casperConfig(16, 8), Config{NumGhosts: 2}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() != 0 {
			win.LockAll(mpi.AssertNone)
			win.Accumulate(mpi.PutFloat64s([]float64{1}), 0, 0,
				mpi.Scalar(mpi.Float64), mpi.OpSum)
			win.UnlockAll()
		}
		c.Barrier()
		if p.Rank() == 0 {
			sum = mpi.GetFloat64s(buf)[0]
		}
	})
	if sum != 11 { // 12 users - 1
		t.Fatalf("sum = %v, want 11", sum)
	}
}

func TestCasperHeadlineAsyncProgress(t *testing.T) {
	// THE paper result: an accumulate to a computing target does not
	// stall the origin, because the ghost services it. Compare with the
	// identical workload over plain MPI.
	wait := 400 * sim.Microsecond
	workload := func(env mpi.Env) sim.Duration {
		c := env.CommWorld()
		win, _ := env.WinAllocate(c, 64, nil)
		c.Barrier()
		var el sim.Duration
		if env.Rank() == 0 {
			start := env.Now()
			win.LockAll(mpi.AssertNone)
			win.Accumulate(mpi.PutFloat64s([]float64{1}), 1, 0,
				mpi.Scalar(mpi.Float64), mpi.OpSum)
			win.UnlockAll()
			el = env.Now().Sub(start)
		} else if env.Rank() == 1 {
			env.Compute(wait)
		}
		c.Barrier()
		return el
	}

	var casperTime sim.Duration
	casperRun(t, casperConfig(4, 2), Config{NumGhosts: 1}, func(p *Process) {
		if d := workload(p); d > 0 {
			casperTime = d
		}
	})

	var plainTime sim.Duration
	w, err := mpi.Run(casperConfig(2, 1), func(r *mpi.Rank) {
		if d := workload(r); d > 0 {
			plainTime = d
		}
	})
	if err != nil || w == nil {
		t.Fatal(err)
	}

	if plainTime < wait {
		t.Fatalf("plain MPI should stall ~%v, got %v", wait, plainTime)
	}
	if casperTime > wait/4 {
		t.Fatalf("casper origin stalled %v", casperTime)
	}
}

func TestCasperFenceTranslation(t *testing.T) {
	var seen float64
	casperRun(t, casperConfig(4, 2), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 8, nil)
		win.Fence(mpi.ModeNoPrecede)
		if p.Rank() == 0 {
			win.Put(mpi.PutFloat64s([]float64{3.25}), 1, 0, mpi.Scalar(mpi.Float64))
		}
		win.Fence(mpi.ModeNoSucceed)
		if p.Rank() == 1 {
			seen = mpi.GetFloat64s(buf)[0]
		}
	})
	if seen != 3.25 {
		t.Fatalf("after casper fence target saw %v", seen)
	}
}

func TestCasperFenceAssertsReduceCost(t *testing.T) {
	fenceCost := func(assert mpi.Assert) sim.Duration {
		var d sim.Duration
		casperRun(t, casperConfig(4, 2), Config{NumGhosts: 1}, func(p *Process) {
			c := p.CommWorld()
			win, _ := p.WinAllocate(c, 8, nil)
			win.Fence(mpi.ModeNoPrecede) // open
			c.Barrier()
			start := p.Now()
			win.Fence(assert)
			if p.Rank() == 0 {
				d = p.Now().Sub(start)
			}
			c.Barrier()
		})
		return d
	}
	full := fenceCost(mpi.AssertNone)
	skipped := fenceCost(mpi.ModeNoPrecede | mpi.ModeNoStore | mpi.ModeNoPut)
	if skipped >= full {
		t.Fatalf("asserts did not reduce fence cost: %v vs %v", skipped, full)
	}
}

func TestCasperPSCWTranslation(t *testing.T) {
	var got float64
	casperRun(t, casperConfig(4, 2), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.Start([]int{1}, mpi.AssertNone)
			win.Put(mpi.PutFloat64s([]float64{9.5}), 1, 0, mpi.Scalar(mpi.Float64))
			win.Complete()
		} else if p.Rank() == 1 {
			win.Post([]int{0}, mpi.AssertNone)
			win.Wait()
			got = mpi.GetFloat64s(buf)[0]
		}
		c.Barrier()
	})
	if got != 9.5 {
		t.Fatalf("got %v", got)
	}
}

func TestCasperPSCWDataCompleteAtWait(t *testing.T) {
	// Unlike plain MPI complete, Casper flushes before notifying, so at
	// Wait the data is remotely complete even with a busy target.
	var got float64
	casperRun(t, casperConfig(4, 2), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.Start([]int{1}, mpi.AssertNone)
			for i := 0; i < 8; i++ {
				win.Accumulate(mpi.PutFloat64s([]float64{1}), 1, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
			}
			win.Complete()
		} else if p.Rank() == 1 {
			win.Post([]int{0}, mpi.AssertNone)
			p.Compute(100 * sim.Microsecond)
			win.Wait()
			got = mpi.GetFloat64s(buf)[0]
		}
		c.Barrier()
	})
	if got != 8 {
		t.Fatalf("at Wait target saw %v, want 8", got)
	}
}

func TestCasperGetAccumulateAndAtomics(t *testing.T) {
	var old, fetched, casOld int64
	casperRun(t, casperConfig(4, 2), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 16, nil)
		if p.Rank() == 1 {
			copy(buf, mpi.PutInt64(40))
		}
		c.Barrier()
		if p.Rank() == 0 {
			win.LockAll(mpi.AssertNone)
			res := make([]byte, 8)
			win.FetchAndOp(mpi.PutInt64(2), res, 1, 0, mpi.Int64, mpi.OpSum)
			win.Flush(1)
			old = mpi.GetInt64(res)
			win.GetAccumulate(mpi.PutInt64(3), res, 1, 0, mpi.Scalar(mpi.Int64), mpi.OpSum)
			win.Flush(1)
			fetched = mpi.GetInt64(res)
			win.CompareAndSwap(mpi.PutInt64(45), mpi.PutInt64(99), res, 1, 0, mpi.Int64)
			win.Flush(1)
			casOld = mpi.GetInt64(res)
			win.UnlockAll()
		}
		c.Barrier()
		if p.Rank() == 1 && mpi.GetInt64(buf) != 99 {
			t.Errorf("final value %d, want 99", mpi.GetInt64(buf))
		}
	})
	if old != 40 || fetched != 42 || casOld != 45 {
		t.Fatalf("old=%d fetched=%d casOld=%d", old, fetched, casOld)
	}
}

func TestCasperLockEpochsToDistinctLocalTargetsAllowed(t *testing.T) {
	// An origin holding exclusive locks on two user processes of the
	// same node is legal; Casper's per-user overlapping windows avoid
	// funneling both into one ghost lock (Section III-A).
	casperRun(t, casperConfig(8, 8), Config{NumGhosts: 2}, func(p *Process) {
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.Lock(1, mpi.LockExclusive, mpi.AssertNone)
			win.Lock(2, mpi.LockExclusive, mpi.AssertNone) // same node!
			win.Put(mpi.PutFloat64s([]float64{1}), 1, 0, mpi.Scalar(mpi.Float64))
			win.Put(mpi.PutFloat64s([]float64{2}), 2, 0, mpi.Scalar(mpi.Float64))
			win.Unlock(1)
			win.Unlock(2)
		}
		c.Barrier()
	})
}

func TestCasperUnsafeSharedLockWindowBreaksNestedLocks(t *testing.T) {
	// Ablation: without the per-user-process overlapping windows, two
	// exclusive locks to co-located users become nested locks to the
	// same ghost — which MPI forbids.
	defer func() {
		if recover() == nil {
			t.Error("no panic in unsafe shared-lock-window mode")
		}
	}()
	mcfg := casperConfig(8, 8)
	w, _ := mpi.NewWorld(mcfg)
	w.Launch(func(r *mpi.Rank) {
		p, ghost := Init(r, Config{NumGhosts: 1, UnsafeSharedLockWindow: true})
		if ghost {
			return
		}
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.Lock(1, mpi.LockExclusive, mpi.AssertNone)
			win.Lock(2, mpi.LockExclusive, mpi.AssertNone)
		}
		c.Barrier()
	})
	w.Run()
}

func TestCasperExclusiveLockSerializesAcrossOrigins(t *testing.T) {
	type span struct{ start, end sim.Time }
	spans := map[int]span{}
	casperRun(t, casperConfig(8, 4), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 1 || p.Rank() == 2 {
			win.Lock(0, mpi.LockExclusive, mpi.AssertNone)
			win.Put(mpi.PutFloat64s([]float64{1}), 0, 0, mpi.Scalar(mpi.Float64))
			win.Flush(0)
			start := p.Now()
			win.Accumulate(mpi.PutFloat64s([]float64{1}), 0, 0,
				mpi.Scalar(mpi.Float64), mpi.OpSum)
			win.Flush(0)
			spans[p.Rank()] = span{start, p.Now()}
			win.Unlock(0)
		}
		c.Barrier()
	})
	a, b := spans[1], spans[2]
	if a.start < b.end && b.start < a.end {
		t.Fatalf("exclusive casper epochs overlap: %+v %+v", a, b)
	}
}

func TestCasperEpochHintViolationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic using undeclared epoch type")
		}
	}()
	mcfg := casperConfig(4, 4)
	w, _ := mpi.NewWorld(mcfg)
	w.Launch(func(r *mpi.Rank) {
		p, ghost := Init(r, Config{NumGhosts: 1})
		if ghost {
			return
		}
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 8, mpi.Info{InfoEpochsUsed: "lockall"})
		win.Fence(mpi.AssertNone) // fence not declared
		c.Barrier()
	})
	w.Run()
}

func TestCasperWindowCountsFollowEpochHints(t *testing.T) {
	// Fig. 3(a)'s mechanism: fewer declared epoch types -> fewer
	// internal windows -> cheaper allocation.
	allocTime := func(info mpi.Info) sim.Duration {
		var d sim.Duration
		casperRun(t, casperConfig(12, 12), Config{NumGhosts: 2}, func(p *Process) {
			c := p.CommWorld()
			start := p.Now()
			p.WinAllocate(c, 256, info)
			if p.Rank() == 0 {
				d = p.Now().Sub(start)
			}
			c.Barrier()
		})
		return d
	}
	def := allocTime(nil)
	lockOnly := allocTime(mpi.Info{InfoEpochsUsed: "lock"})
	lockallOnly := allocTime(mpi.Info{InfoEpochsUsed: "lockall"})
	if !(lockallOnly < lockOnly && lockOnly < def) {
		t.Fatalf("window allocation costs out of order: default=%v lock=%v lockall=%v",
			def, lockOnly, lockallOnly)
	}
}

func TestCasperMultipleSimultaneousEpochs(t *testing.T) {
	// The Section III-C scenario: one disjoint set of processes runs a
	// lock-unlock epoch on window A while another runs a fence epoch on
	// window B — the same ghosts must serve both without ever blocking
	// in a collective. Because Casper translates active-target epochs
	// to passive-target ones, the ghosts stay in their receive loops
	// and both groups make progress.
	var lockVal, fenceVal float64
	casperRun(t, casperConfig(12, 6), Config{NumGhosts: 2}, func(p *Process) {
		c := p.CommWorld() // 8 users
		// Disjoint groups with their own windows: ranks 0-1 run a
		// lock-unlock epoch on window A, ranks 2-7 run fence epochs on
		// window B.
		group := 0
		if p.Rank() >= 2 {
			group = 1
		}
		sub := c.Split(group, p.Rank())
		if group == 0 {
			winA, bufA := p.WinAllocate(sub, 8, mpi.Info{InfoEpochsUsed: "lock"})
			sub.Barrier()
			if sub.Rank() == 0 {
				winA.Lock(1, mpi.LockExclusive, mpi.AssertNone)
				winA.Accumulate(mpi.PutFloat64s([]float64{2}), 1, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
				winA.Unlock(1)
			}
			sub.Barrier()
			if sub.Rank() == 1 {
				lockVal = mpi.GetFloat64s(bufA)[0]
			}
		} else {
			winB, bufB := p.WinAllocate(sub, 8, mpi.Info{InfoEpochsUsed: "fence"})
			winB.Fence(mpi.ModeNoPrecede)
			if sub.Rank() == 0 {
				winB.Put(mpi.PutFloat64s([]float64{7}), 1, 0, mpi.Scalar(mpi.Float64))
			}
			winB.Fence(mpi.ModeNoSucceed)
			if sub.Rank() == 1 {
				fenceVal = mpi.GetFloat64s(bufB)[0]
			}
		}
		c.Barrier()
	})
	if lockVal != 2 || fenceVal != 7 {
		t.Fatalf("lockVal=%v fenceVal=%v", lockVal, fenceVal)
	}
}

func TestConcurrentWindowCreationByDisjointGroups(t *testing.T) {
	// Stress the sequencer protocol: disjoint groups on different
	// nodes create windows concurrently, staggered so their commands
	// race toward the ghosts; every ghost must observe one global
	// order and both creations must complete and work.
	for trial := 0; trial < 4; trial++ {
		trial := trial
		results := map[int]float64{}
		mcfg := casperConfig(12, 6) // 2 nodes x (4 users + 2 ghosts)
		mcfg.Seed = int64(100 + trial)
		casperRun(t, mcfg, Config{NumGhosts: 2}, func(p *Process) {
			c := p.CommWorld() // 8 users: 0-3 node 0, 4-7 node 1
			group := p.Rank() / 4
			sub := c.Split(group, p.Rank())
			// Stagger the groups differently each trial.
			p.Compute(sim.Duration((trial*37+group*13)%50) * sim.Microsecond)
			win, buf := p.WinAllocate(sub, 8, nil)
			sub.Barrier()
			if sub.Rank() == 0 {
				win.LockAll(mpi.AssertNone)
				win.Accumulate(mpi.PutFloat64s([]float64{float64(group + 1)}), 1, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
				win.UnlockAll()
			}
			sub.Barrier()
			if sub.Rank() == 1 {
				results[group] = mpi.GetFloat64s(buf)[0]
			}
			c.Barrier()
		})
		if results[0] != 1 || results[1] != 2 {
			t.Fatalf("trial %d: results = %v", trial, results)
		}
	}
}

func TestCasperManyWindowsSameGhosts(t *testing.T) {
	// Several windows share the same ghost processes; operations on all
	// of them progress concurrently.
	const nWins = 4
	sums := make([]float64, nWins)
	casperRun(t, casperConfig(6, 3), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		wins := make([]mpi.Window, nWins)
		bufs := make([][]byte, nWins)
		for i := range wins {
			wins[i], bufs[i] = p.WinAllocate(c, 8, nil)
		}
		c.Barrier()
		if p.Rank() != 0 {
			for i, w := range wins {
				w.LockAll(mpi.AssertNone)
				w.Accumulate(mpi.PutFloat64s([]float64{float64(i + 1)}), 0, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
				w.UnlockAll()
			}
		}
		c.Barrier()
		if p.Rank() == 0 {
			for i := range bufs {
				sums[i] = mpi.GetFloat64s(bufs[i])[0]
			}
		}
	})
	for i, s := range sums {
		if s != float64(3*(i+1)) { // 3 origins
			t.Fatalf("window %d sum = %v, want %v", i, s, 3*(i+1))
		}
	}
}

func TestCasperWindowFreeAndRecreate(t *testing.T) {
	// Windows freed out of creation order (the GA destroy pattern),
	// then recreated — ghosts must track instances correctly and the
	// run must terminate cleanly.
	casperRun(t, casperConfig(6, 3), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		w1, _ := p.WinAllocate(c, 8, nil)
		w2, _ := p.WinAllocate(c, 8, nil)
		w3, _ := p.WinAllocate(c, 8, nil)
		c.Barrier()
		// Free out of order: 2, 1, 3.
		w2.Free()
		w1.Free()
		w3.Free()
		// Recreate and use.
		w4, buf := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			w4.LockAll(mpi.AssertNone)
			w4.Accumulate(mpi.PutFloat64s([]float64{1}), 1, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
			w4.UnlockAll()
		}
		c.Barrier()
		if p.Rank() == 1 && mpi.GetFloat64s(buf)[0] != 1 {
			t.Error("recreated window does not work")
		}
		w4.Free()
		c.Barrier()
	})
}

func TestCasperDoubleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mcfg := casperConfig(4, 4)
	w, _ := mpi.NewWorld(mcfg)
	w.Launch(func(r *mpi.Rank) {
		p, ghost := Init(r, Config{NumGhosts: 1})
		if ghost {
			return
		}
		win, _ := p.WinAllocate(p.CommWorld(), 8, nil)
		win.Free()
		win.Free()
	})
	w.Run()
}

func TestCasperStatsCountRedirections(t *testing.T) {
	var st Stats
	casperRun(t, casperConfig(4, 2), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.LockAll(mpi.AssertNone)
			for i := 0; i < 5; i++ {
				win.Accumulate(mpi.PutFloat64s([]float64{1}), 1, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
			}
			win.UnlockAll()
			st = p.Stats()
		}
		c.Barrier()
	})
	if st.Redirected != 5 {
		t.Fatalf("Redirected = %d", st.Redirected)
	}
}

func TestCasperOpsGoToGhostsNotUsers(t *testing.T) {
	w := casperRun(t, casperConfig(8, 4), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.LockAll(mpi.AssertNone)
			for tgt := 1; tgt < p.Size(); tgt++ {
				win.Accumulate(mpi.PutFloat64s([]float64{1}), tgt, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
			}
			win.UnlockAll()
		}
		c.Barrier()
	})
	// Ghosts are world ranks 3 and 7 (last occupied core of each
	// 4-rank node). Six users -> five accumulate targets.
	totalGhostAMs := w.RankByID(3).Stats().SoftwareAMs + w.RankByID(7).Stats().SoftwareAMs
	if totalGhostAMs != 5 {
		t.Fatalf("ghost AMs = %d, want 5", totalGhostAMs)
	}
	for _, user := range []int{0, 1, 2, 4, 5, 6} {
		if n := w.RankByID(user).Stats().SoftwareAMs; n != 0 {
			t.Fatalf("user rank %d processed %d AMs; all should go to ghosts", user, n)
		}
	}
}
