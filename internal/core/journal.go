package core

import (
	"repro/internal/mpi"
	"repro/internal/trace"
)

// Sequencer succession (fault worlds only).
//
// Casper's one global command order normally comes from a single ghost:
// users send window-create/free/shutdown commands to the sequencer (the
// globally lowest ghost rank), which forwards them to every other ghost.
// That made the sequencer a single point of failure. The cmdJournal
// removes it:
//
//   - Every command a user sends is first appended to a world-global
//     replayable log (one simulated address space, so the log plays the
//     role a replicated command log would on real hardware). The wire
//     message to the acting sequencer is thereafter only a *doorbell*:
//     each received command message makes a ghost execute exactly one
//     logged entry, so lost, duplicated, or stale doorbells are harmless.
//   - The acting sequencer assigns each entry its global index in
//     arrival order and forwards the entry's bytes to every other ghost
//     — byte-for-byte and in the same iteration order as the legacy
//     path, so fault worlds without a sequencer crash are bit-identical
//     to the seed behavior.
//   - When the failure detector *confirms* the sequencer dead (which
//     implies ground-truth death, see internal/mpi/health.go), a death
//     hook deterministically elects the next-lowest surviving ghost,
//     orders any not-yet-ordered entries in log-append order, and hands
//     the role over by injecting a cmdSucceed doorbell. The successor
//     retransmits doorbells for every ordered entry a surviving ghost
//     has not yet executed, then drains its own backlog. Repeated
//     successions (the successor dying mid-takeover) just repeat the
//     same procedure.
type cmdJournal struct {
	w       *mpi.World
	comm    *mpi.Comm // any world-comm handle, for engine-context injection
	ghosts  []int     // every ghost world rank, ascending
	seqRank int       // acting sequencer; -1 once every ghost is confirmed dead

	entries []*cmdEntry         // log-append order (user send order)
	pending map[int][]*cmdEntry // origin -> FIFO of entries not yet ordered
	ordered []*cmdEntry         // global command order
	next    map[int]int         // ghost -> index into ordered of next entry to run
	exited  map[int]bool        // ghosts that left their service loop (shutdown)
}

// cmdEntry is one logged command.
type cmdEntry struct {
	data   []byte
	origin int          // world rank of the sending user
	idx    int          // global order index; -1 until ordered
	done   map[int]bool // ghost world rank -> executed (or executing)
}

// journalFor returns the world-global journal singleton, creating it on
// first use and registering its succession death hook. Only called in
// fault worlds.
func journalFor(r *mpi.Rank, d *deployment) *cmdJournal {
	v := r.World().SharedState("casper.cmdjournal", func() interface{} {
		j := &cmdJournal{
			w:       r.World(),
			comm:    d.world,
			seqRank: d.sequencer(),
			pending: map[int][]*cmdEntry{},
			next:    map[int]int{},
			exited:  map[int]bool{},
		}
		for _, gs := range d.ghostsByNode {
			j.ghosts = append(j.ghosts, gs...)
		}
		r.World().AddDeathHook(j.onDeath)
		return j
	})
	return v.(*cmdJournal)
}

// sendCmd delivers one command toward the ghosts. Without a journal
// (fault-free worlds) this is exactly the legacy send to the static
// sequencer. With one, the command is logged first and the send is a
// doorbell to the acting sequencer — skipped entirely once every ghost
// is confirmed dead (collectives already complete over survivors).
func (d *deployment) sendCmd(data []byte) {
	j := d.journal
	if j == nil {
		d.world.Send(d.sequencer(), tagGhostCmd, data)
		return
	}
	e := &cmdEntry{
		data:   append([]byte(nil), data...),
		origin: d.world.Rank(),
		idx:    -1,
		done:   map[int]bool{},
	}
	j.entries = append(j.entries, e)
	j.pending[e.origin] = append(j.pending[e.origin], e)
	if j.seqRank >= 0 {
		d.world.Send(j.seqRank, tagGhostCmd, data)
	}
}

// popPending removes and returns the oldest unordered entry from one
// origin, or nil when the doorbell is stale (already ordered by a
// succession, or a duplicate).
func (j *cmdJournal) popPending(origin int) *cmdEntry {
	q := j.pending[origin]
	if len(q) == 0 {
		return nil
	}
	j.pending[origin] = q[1:]
	return q[0]
}

// order assigns the next global index to an entry.
func (j *cmdJournal) order(e *cmdEntry) {
	e.idx = len(j.ordered)
	j.ordered = append(j.ordered, e)
}

// take returns the ghost's next ordered-but-unexecuted entry, or nil.
func (j *cmdJournal) take(ghost int) *cmdEntry {
	for j.next[ghost] < len(j.ordered) {
		e := j.ordered[j.next[ghost]]
		if e.done[ghost] {
			j.next[ghost]++
			continue
		}
		// Marked before execution: a succession during the (collective)
		// execution must not retransmit a doorbell for work in progress.
		e.done[ghost] = true
		j.next[ghost]++
		return e
	}
	return nil
}

// onDeath is the succession death hook, run in engine context on every
// confirmed ghost death. Non-sequencer deaths need nothing from the
// journal; the command path already tolerates them.
func (j *cmdJournal) onDeath(dead int) {
	if dead != j.seqRank {
		return
	}
	succ := -1
	for _, g := range j.ghosts {
		if !j.w.HealthFailed(g) && !j.exited[g] {
			succ = g
			break
		}
	}
	j.seqRank = succ
	if succ < 0 {
		return
	}
	// Order everything still unordered, in log-append order: the dead
	// sequencer can no longer arbitrate, and append order is the one
	// deterministic order every rank agrees on. Doorbells in flight to
	// the corpse are swallowed; the successor raises its own.
	for _, e := range j.entries {
		if e.idx < 0 {
			j.order(e)
		}
	}
	j.pending = map[int][]*cmdEntry{}
	if t := j.w.Tracer(); t.Enabled() {
		t.RecordFault(trace.Fault{Kind: "succession", Rank: succ, Peer: dead, At: j.w.Engine().Now()})
	}
	j.comm.InjectLocal(dead, succ, tagGhostCmd, []byte{cmdSucceed})
}

// takeover runs on the successor ghost when its cmdSucceed doorbell
// arrives: retransmit doorbells for every ordered entry a surviving,
// still-serving ghost has not executed, then drain the own backlog.
// Reports whether the ghost loop should exit (shutdown was replayed).
func (j *cmdJournal) takeover(r *mpi.Rank, d *deployment, wins map[string][]*ghostWinSet) bool {
	me := r.Rank()
	j.w.NoteSuccession(me)
	for _, e := range j.ordered {
		for _, g := range j.ghosts {
			if g == me || e.done[g] || j.exited[g] || j.w.HealthFailed(g) {
				continue
			}
			d.world.Send(g, tagGhostCmd, e.data)
			j.w.NoteCmdResend(me)
		}
	}
	for {
		e := j.take(me)
		if e == nil {
			return false
		}
		if handleGhostCmd(r, d, wins, e.data) {
			return true
		}
	}
}
