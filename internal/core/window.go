package core

import (
	"fmt"

	"repro/internal/mpi"
)

// casperWin is the window handle Casper returns to applications. It
// implements mpi.Window by translating every synchronization call and
// redirecting every communication operation to ghost processes on the
// internal windows (Sections II-C, III).
type casperWin struct {
	p      *Process
	epochs epochSet

	shared   *mpi.Win   // node shared-memory window (window users + ghosts)
	lockWins []*mpi.Win // per-user-process overlapping windows (III-A)
	active   *mpi.Win   // shared window for fence/PSCW/lockall epochs
	user     *mpi.Win   // the user-visible window (the users' comm)
	comm     *mpi.Comm  // user communicator of the window
	internal *mpi.Comm  // communicator of the internal windows (users + all ghosts)
	root     mpi.Region

	binding Binding
	lb      LoadBalance

	layout []tinfo // per user comm rank

	// Epoch state.
	fenceActive   bool
	lockAllActive bool
	accessGroup   []int
	exposureGroup []int
	// targets holds per-target epoch state indexed by user comm rank;
	// nil entries mean "untouched". A flat slice keeps the per-op epoch
	// lookup off the map hash path.
	targets []*ctarget
	nodeLB  map[int][]lbCount
	freed   bool

	// Request-collection state for RPut/RGet.
	collectReqs bool
	collecting  []*mpi.RMARequest

	// routeBuf is the scratch slice route() returns its pieces in. The
	// pieces are consumed synchronously inside redirect() before the next
	// route() call on this (per-rank) handle, so one buffer serves every
	// operation without allocating.
	routeBuf []piece

	cmdKey string // creation command payload; keys the free protocol
	cmdIdx int    // per-key creation index (windows may free in any order)

	// sh is the shared overload state of this window (all ranks'
	// handles point at the same object); nil without Config.Overload.
	sh *winShared

	// rec is the app-rank recovery engine; nil unless the fault plan
	// schedules AppCrashes (see recover.go).
	rec *appRecovery
}

var _ mpi.Window = (*casperWin)(nil)

// tinfo is the routing metadata of one user target.
type tinfo struct {
	world        int   // world rank of the target user process
	node         int   // its node
	base         int   // offset of its memory in the node's shared segment
	size         int   // its window size
	ghosts       []int // ghost ranks of its node, as internal-comm ranks
	bound        int   // rank-binding ghost (internal-comm rank)
	selfInternal int   // the target user itself, as an internal-comm rank (degraded routing)
	lockWinIdx   int   // which overlapping window serves lock epochs to it
	nodeTotal    int   // total user bytes exposed on its node
	chunk        int   // segment-binding chunk size on its node (16-aligned)
	rebound      bool  // a routing preference for this target already failed over once

	lbc []lbCount // cached per-node LB counters (see lbCounts)
}

// ctarget is per-target epoch state at this origin.
type ctarget struct {
	locked       bool
	lt           mpi.LockType
	viaAll       bool
	ghostsLkd    bool  // ghost locks issued on the target's window
	lockedGhosts []int // exactly which internal ranks we locked this epoch
	dynamicOK    bool  // a flush completed: static-binding-free interval open
}

type lbCount struct{ ops, bytes int64 }

// buildLayout computes, at window creation, the routing metadata for
// every user target: shared-segment base offsets (exchanged sizes),
// ghost sets (as internal-comm ranks), bindings, and segment chunking.
func (cw *casperWin) buildLayout(mySize int, topo winTopology) {
	d := cw.p.d
	sizes := cw.comm.AllgatherInt(mySize)
	n := cw.comm.Size()
	cw.layout = make([]tinfo, n)
	type nodeAcc struct {
		off   int
		total int
	}
	accs := map[int]*nodeAcc{}
	align := func(x int) int { return (x + mpi.MaxBasicSize - 1) / mpi.MaxBasicSize * mpi.MaxBasicSize }
	worldToUser := map[int]int{}
	for t := 0; t < n; t++ {
		worldToUser[cw.comm.WorldRank(t)] = t
	}
	// Per node: walk the node window's members in world-rank order,
	// accumulating 16-aligned offsets exactly as WinAllocateShared
	// does (ghosts contribute zero bytes).
	for node, winUsers := range topo.usersByNode {
		acc := &nodeAcc{}
		accs[node] = acc
		for _, wr := range winUsers { // ascending world rank
			ut := worldToUser[wr]
			cw.layout[ut] = tinfo{
				world: wr,
				node:  node,
				base:  acc.off,
				size:  sizes[ut],
			}
			acc.off += align(sizes[ut])
			acc.total += align(sizes[ut])
		}
	}
	toInternal := func(worldRank int) int {
		cr, ok := cw.internal.CommRankOf(worldRank)
		if !ok {
			panic(fmt.Sprintf("casper: rank %d missing from internal comm", worldRank))
		}
		return cr
	}
	g := d.cfg.NumGhosts
	for t := range cw.layout {
		ti := &cw.layout[t]
		for _, gw := range d.ghostsOf(ti.world) {
			ti.ghosts = append(ti.ghosts, toInternal(gw))
		}
		ti.bound = toInternal(d.boundGhost(ti.world))
		ti.selfInternal = toInternal(ti.world)
		if len(cw.lockWins) > 0 {
			ti.lockWinIdx = topo.windowLocalIndex(d, ti.world) % len(cw.lockWins)
		}
		ti.nodeTotal = accs[ti.node].total
		per := (ti.nodeTotal + g - 1) / g
		ti.chunk = align(per)
		if ti.chunk == 0 {
			ti.chunk = mpi.MaxBasicSize
		}
	}
}

func (cw *casperWin) target(t int) *ctarget {
	ts := cw.targets[t]
	if ts == nil {
		ts = &ctarget{}
		cw.targets[t] = ts
	}
	return ts
}

// lookupTarget returns the existing per-target state, or nil when none
// has been created (no allocation; out-of-range targets map to nil so
// callers keep their own diagnostics).
func (cw *casperWin) lookupTarget(t int) *ctarget {
	if t < 0 || t >= len(cw.targets) {
		return nil
	}
	return cw.targets[t]
}

// winFor returns the internal window carrying operations to target t
// under the current epoch: the target's overlapping lock window for
// lock epochs (and lockall when translated to locks, III-C-3), the
// shared active window otherwise.
func (cw *casperWin) winFor(t int, ts *ctarget) *mpi.Win {
	if ts != nil && ts.locked && !ts.viaAll {
		return cw.lockWins[cw.layout[t].lockWinIdx]
	}
	if cw.lockAllActive && cw.epochs.lock {
		// lockall translated to per-target locks on the overlapping
		// windows to avoid permission conflicts with lock epochs.
		return cw.lockWins[cw.layout[t].lockWinIdx]
	}
	if cw.active == nil {
		panic("casper: no internal window for current epoch (check epochs_used hint)")
	}
	return cw.active
}

// ensureGhostLocks opens the passive epoch toward all ghosts of t's node
// on t's window, once per epoch ("Casper will internally lock all ghost
// processes on a node", III-B). After a detected ghost failure only the
// surviving ghosts (or, fully degraded, the target itself) are locked;
// the exact set is recorded so Unlock releases what was taken.
func (cw *casperWin) ensureGhostLocks(t int, ts *ctarget, w *mpi.Win) {
	if ts.ghostsLkd || w == cw.active {
		// The active window holds a standing lockall; per-ghost lock
		// state is created lazily by the ops themselves.
		return
	}
	lt := ts.lt
	ghosts := cw.progressRanks(&cw.layout[t])
	for _, g := range ghosts {
		w.Lock(g, lt, mpi.AssertNone)
	}
	ts.lockedGhosts = append([]int(nil), ghosts...)
	ts.ghostsLkd = true
}

// reclaimEpochLocks re-opens a passive epoch's lock set mid-epoch after
// a detected ghost failure: any live progress rank for the target not
// locked when the epoch opened is locked now and added to
// lockedGhosts, so in-flight and future operations of the *current*
// epoch reroute immediately instead of waiting for the epoch boundary.
// The grant cannot deadlock — the lock manager at the dead ghost has
// already reclaimed its holds and admitted its queue (see
// mpi/lock.go), and the surviving ghost's manager orders this request
// like any other. No-op while every originally locked ghost is alive.
func (cw *casperWin) reclaimEpochLocks(t int, ts *ctarget, w *mpi.Win) {
	if !ts.ghostsLkd || w == cw.active || !cw.p.r.World().AnyHealthFailure() {
		return
	}
	ti := &cw.layout[t]
	for _, g := range cw.progressRanks(ti) {
		have := false
		for _, l := range ts.lockedGhosts {
			if l == g {
				have = true
				break
			}
		}
		if have {
			continue
		}
		w.Lock(g, ts.lt, mpi.AssertNone)
		ts.lockedGhosts = append(ts.lockedGhosts, g)
		cw.p.r.World().NoteEpochRelock(cw.p.r.Rank())
	}
}

// progressRanks returns the internal-comm ranks providing target-side
// progress for t's node: its ghosts normally, the surviving subset
// after detected failures, or the target user process itself (falling
// back to Original-mode progress) when the node has lost every ghost.
func (cw *casperWin) progressRanks(ti *tinfo) []int {
	w := cw.p.r.World()
	if !w.AnyHealthFailure() {
		return ti.ghosts
	}
	var alive []int
	for _, g := range ti.ghosts {
		if !w.HealthFailed(cw.internal.WorldRank(g)) {
			alive = append(alive, g)
		}
	}
	if len(alive) == 0 {
		cw.p.stats.Degraded++
		return []int{ti.selfInternal}
	}
	return alive
}

// progressTarget maps a preferred routing choice to a live one. The
// preference stands unless that ghost was declared dead; the substitute
// is a deterministic function of the target alone, so every origin
// redirects a given target's operations to the same surviving ghost and
// the static-binding ordering rules for accumulates (III-B) carry over.
func (cw *casperWin) progressTarget(ti *tinfo, preferred int) int {
	w := cw.p.r.World()
	if !w.AnyHealthFailure() {
		return preferred
	}
	if !w.HealthFailed(cw.internal.WorldRank(preferred)) {
		return preferred
	}
	if !ti.rebound {
		ti.rebound = true
		w.NoteRebind(cw.p.r.Rank())
	}
	alive := cw.progressRanks(ti)
	return alive[cw.p.d.userLocalIndex(ti.world)%len(alive)]
}

// rerouteGhost is the window failover hook (mpi.Win.SetReroute): when a
// stream's target ghost dies with operations still in flight, pick the
// surviving internal rank exposing the same node segment. Ranks are
// internal-comm ranks; disp is the absolute node-segment offset, which
// identifies the user target whose routing preference decides the
// replacement (so rerouted and freshly routed operations agree).
func (cw *casperWin) rerouteGhost(origin, oldTarget, disp int) (int, bool) {
	deadWorld := cw.internal.WorldRank(oldTarget)
	node := cw.p.d.place.Node(deadWorld)
	pick := func(ti *tinfo) (int, bool) {
		nt := cw.progressTarget(ti, oldTarget)
		if nt == oldTarget {
			return 0, false
		}
		return nt, true
	}
	var fallback *tinfo
	for t := range cw.layout {
		ti := &cw.layout[t]
		if ti.node != node {
			continue
		}
		if fallback == nil {
			fallback = ti
		}
		end := ti.base + ti.size
		if ti.size == 0 {
			end = ti.base + 1
		}
		if disp >= ti.base && disp < end {
			return pick(ti)
		}
	}
	if fallback != nil {
		// Displacement lands in alignment padding; every target of the
		// node shares the same ghost set, so any of them routes it.
		return pick(fallback)
	}
	return 0, false
}

// flushRanks is the set of internal ranks cw.Flush must drain for
// target t: the ghosts locked this epoch (dead ones included — their
// outstanding operations complete through reroute or synthesized acks
// into the same completion sets), plus the degraded self target on the
// active window.
func (cw *casperWin) flushRanks(t int, ts *ctarget, w *mpi.Win) []int {
	ti := &cw.layout[t]
	base := ti.ghosts
	if ts != nil && ts.lockedGhosts != nil {
		base = ts.lockedGhosts
	}
	if cw.sh != nil && w == cw.active && cw.sh.everDeg[ti.node] {
		// The node ran degraded at some point: operations may be
		// pending at the target itself, so flushes must drain it too.
		found := false
		for _, g := range base {
			if g == ti.selfInternal {
				found = true
				break
			}
		}
		if !found {
			base = append(append([]int(nil), base...), ti.selfInternal)
		}
	}
	if w != cw.active || !cw.p.r.World().AnyHealthFailure() {
		return base
	}
	alive := cw.progressRanks(ti)
	if len(alive) == 1 && alive[0] == ti.selfInternal {
		for _, g := range base {
			if g == ti.selfInternal {
				return base
			}
		}
		return append(append([]int(nil), base...), ti.selfInternal)
	}
	return base
}

// --- Synchronization translation (Section III-C) ----------------------

// Fence translates MPI_WIN_FENCE to flushall + barrier + win_sync on the
// active window's standing lockall (III-C-1). The asserts recover the
// skipped work exactly as the paper describes.
func (cw *casperWin) Fence(assert mpi.Assert) {
	cw.requireEpoch(cw.epochs.fence, EpochFence)
	if !assert.Has(mpi.ModeNoPrecede) {
		cw.active.FlushAll()
	}
	skipSync := assert.Has(mpi.ModeNoPrecede) && assert.Has(mpi.ModeNoStore) &&
		assert.Has(mpi.ModeNoPut)
	if !skipSync {
		cw.comm.Barrier()
		cw.active.Sync()
	}
	cw.fenceActive = !assert.Has(mpi.ModeNoSucceed)
	cw.resetDynamic()
	cw.snapshotEpoch()
}

// Post opens an exposure epoch: with ghosts handling all data movement,
// the target only notifies the origins (send-recv synchronization,
// III-C-2).
func (cw *casperWin) Post(group []int, assert mpi.Assert) {
	cw.requireEpoch(cw.epochs.pscw, EpochPSCW)
	if cw.exposureGroup != nil {
		panic("casper: Post with exposure epoch open")
	}
	cw.exposureGroup = append([]int(nil), group...)
	if !assert.Has(mpi.ModeNoCheck) {
		for _, o := range group {
			cw.comm.Send(o, tagPSCWPost, nil)
		}
	}
}

// Start opens an access epoch, waiting for the targets' posts unless
// MPI_MODE_NOCHECK promises external synchronization.
func (cw *casperWin) Start(group []int, assert mpi.Assert) {
	cw.requireEpoch(cw.epochs.pscw, EpochPSCW)
	if cw.accessGroup != nil {
		panic("casper: Start with access epoch open")
	}
	cw.accessGroup = append([]int(nil), group...)
	if !assert.Has(mpi.ModeNoCheck) {
		for _, t := range group {
			cw.comm.Recv(t, tagPSCWPost)
		}
	}
}

// Complete closes the access epoch: flush the ghosts (remote completion
// — stronger than MPI requires, as the paper notes), then notify the
// targets.
func (cw *casperWin) Complete() {
	if cw.accessGroup == nil {
		panic("casper: Complete without access epoch")
	}
	cw.active.FlushAll()
	for _, t := range cw.accessGroup {
		cw.comm.Send(t, tagPSCWDone, nil)
	}
	cw.accessGroup = nil
	cw.resetDynamic()
	cw.snapshotEpoch()
}

// Wait closes the exposure epoch once every origin has completed; data
// is already remotely complete because origins flushed before notifying.
func (cw *casperWin) Wait() {
	if cw.exposureGroup == nil {
		panic("casper: Wait without exposure epoch")
	}
	for _, o := range cw.exposureGroup {
		cw.comm.Recv(o, tagPSCWDone)
	}
	cw.user.Sync()
	cw.exposureGroup = nil
}

// Lock opens a passive epoch to one user target by locking all ghosts of
// the target's node on the target's own overlapping window (III-A,
// III-B).
func (cw *casperWin) Lock(t int, lt mpi.LockType, assert mpi.Assert) {
	cw.requireEpoch(cw.epochs.lock, EpochLock)
	ts := cw.target(t)
	if ts.locked {
		panic(fmt.Sprintf("casper: nested Lock to target %d", t))
	}
	ts.locked = true
	ts.viaAll = false
	ts.lt = lt
	ts.ghostsLkd = false
	ts.dynamicOK = false
	if cw.sh != nil {
		// Block binding migration of t while the epoch is open (the
		// rebalancer defers to the epoch boundary). If the target is
		// currently routed to itself (degraded node), stage a revert to
		// ghost progress: the epoch's locks live on the ghosts, so its
		// operations must be served there.
		cw.sh.lockHolds[t]++
		ti := &cw.layout[t]
		if cw.sh.serverOf(t, ti) == ti.selfInternal {
			cw.sh.setServer(t, -1)
		}
	}
	cw.ensureGhostLocks(t, ts, cw.winFor(t, ts))
}

// Unlock closes the passive epoch: unlock every ghost (completing all
// operations remotely).
func (cw *casperWin) Unlock(t int) {
	ts := cw.lookupTarget(t)
	if ts == nil || !ts.locked || ts.viaAll {
		panic(fmt.Sprintf("casper: Unlock of target %d without Lock", t))
	}
	w := cw.winFor(t, ts)
	locked := ts.lockedGhosts
	if locked == nil {
		locked = cw.layout[t].ghosts
	}
	for _, g := range locked {
		w.Unlock(g)
	}
	cw.targets[t] = nil
	if cw.sh != nil {
		cw.sh.lockHolds[t]--
	}
	cw.snapshotEpoch()
}

// LockAll opens a lockall epoch. When lock epochs are also declared it
// is converted to a series of per-target ghost locks on the overlapping
// windows (III-C-3); otherwise it rides the active window's standing
// lockall.
func (cw *casperWin) LockAll(assert mpi.Assert) {
	cw.requireEpoch(cw.epochs.lockall, EpochLockAll)
	if cw.lockAllActive {
		panic("casper: nested LockAll")
	}
	cw.lockAllActive = true
}

// UnlockAll closes the lockall epoch, completing all operations.
func (cw *casperWin) UnlockAll() {
	if !cw.lockAllActive {
		panic("casper: UnlockAll without LockAll")
	}
	if cw.epochs.lock {
		for t, ts := range cw.targets { // ascending target order
			if ts != nil && ts.viaAll && ts.locked {
				if ts.ghostsLkd {
					w := cw.lockWins[cw.layout[t].lockWinIdx]
					locked := ts.lockedGhosts
					if locked == nil {
						locked = cw.layout[t].ghosts
					}
					for _, g := range locked {
						w.Unlock(g)
					}
				}
				cw.targets[t] = nil
			}
		}
	} else {
		cw.active.FlushAll()
		for t, ts := range cw.targets {
			if ts != nil && ts.viaAll {
				cw.targets[t] = nil
			}
		}
	}
	cw.lockAllActive = false
	cw.snapshotEpoch()
}

// Flush completes all operations to target t at origin and target, and —
// by forcing lock acquisition on every ghost — opens the
// static-binding-free interval in which dynamic load balancing of
// PUT/GET is legal (III-B-3).
func (cw *casperWin) Flush(t int) {
	ts := cw.lookupTarget(t)
	if ts == nil || !ts.locked {
		switch {
		case cw.lockAllActive:
			ts = cw.epochStateFor(t) // opens the lazy per-target state
		case cw.fenceActive:
			ts = cw.target(t) // flush rides the active window
		default:
			panic(fmt.Sprintf("casper: Flush of target %d without passive epoch", t))
		}
	}
	w := cw.winFor(t, ts)
	if ts.locked {
		cw.ensureGhostLocks(t, ts, w)
		cw.reclaimEpochLocks(t, ts, w)
	}
	for _, g := range cw.flushRanks(t, ts, w) {
		w.Acquire(g)
		w.Flush(g)
	}
	ts.dynamicOK = true
}

// FlushAll flushes every target this origin has touched.
func (cw *casperWin) FlushAll() {
	for t, ts := range cw.targets { // ascending target order
		if ts == nil || !ts.locked {
			continue
		}
		w := cw.winFor(t, ts)
		cw.ensureGhostLocks(t, ts, w)
		cw.reclaimEpochLocks(t, ts, w)
		for _, g := range cw.flushRanks(t, ts, w) {
			w.Acquire(g)
			w.Flush(g)
		}
		ts.dynamicOK = true
	}
	if cw.active != nil {
		cw.active.FlushAll()
	}
}

// FlushLocal completes operations locally.
func (cw *casperWin) FlushLocal(t int) {
	if ts := cw.lookupTarget(t); ts != nil && ts.locked {
		cw.winFor(t, ts).FlushLocal(0)
	}
}

// FlushLocalAll completes all operations locally.
func (cw *casperWin) FlushLocalAll() {
	if cw.active != nil {
		cw.active.FlushLocalAll()
	}
}

// Sync issues the memory barrier on the user window.
func (cw *casperWin) Sync() { cw.user.Sync() }

// Free releases the window: the ghosts rejoin (via the sequencer) to
// free the internal overlapping windows and the node shared window,
// then the user-visible window is freed among the users. Collective
// over the window's user communicator.
func (cw *casperWin) Free() {
	if cw.freed {
		panic("casper: Free called twice")
	}
	cw.freed = true
	if cw.comm.Rank() == 0 {
		cw.p.d.sendCmd(encodeFreeCmd(cw.cmdKey, cw.cmdIdx))
	}
	if cw.active != nil {
		cw.active.UnlockAll()
	}
	// Same order as ghostWinSet.free.
	for _, w := range cw.lockWins {
		w.Free()
	}
	if cw.active != nil {
		cw.active.Free()
	}
	cw.shared.Free()
	cw.user.Free()
}

func (cw *casperWin) requireEpoch(declared bool, name string) {
	if !declared {
		panic(fmt.Sprintf("casper: %s epoch used but not declared in %s hint",
			name, InfoEpochsUsed))
	}
}

// snapshotEpoch folds this rank's region guards at an epoch close —
// the consistency point at which the bound ghost replicates the rank's
// window state to its buddy (see recover.go). No-op unless the fault
// plan schedules AppCrashes.
func (cw *casperWin) snapshotEpoch() {
	if cw.rec != nil {
		cw.rec.snapshot(cw.p.r.Rank())
	}
}

func (cw *casperWin) resetDynamic() {
	for _, ts := range cw.targets {
		if ts != nil {
			ts.dynamicOK = false
		}
	}
}
