// Package core implements Casper: a process-based asynchronous progress
// runtime for MPI RMA, reproducing Si et al., "Casper: An Asynchronous
// Progress Model for MPI RMA on Many-Core Architectures" (IPDPS 2015).
//
// Casper dedicates a user-chosen number of cores per node to "ghost
// processes". At initialization it carves the ghosts out of
// MPI_COMM_WORLD and gives applications COMM_USER_WORLD instead
// (Section II-A). When the application allocates an RMA window, Casper
// maps all user memory on a node into the ghosts' address space with a
// shared-memory window and exposes it through internal overlapping
// windows (Sections II-B, III-A). Every RMA operation is transparently
// redirected to a ghost process with a translated displacement
// (Section II-C), so software-handled operations (accumulates,
// noncontiguous transfers) are serviced by ghosts that are always inside
// MPI, while hardware put/get is unaffected.
//
// The package mirrors the paper's correctness machinery: per-user-process
// overlapping windows for lock permission management (III-A), static
// rank and 16-byte-aligned segment binding for multi-ghost atomicity and
// ordering (III-B), dynamic load balancing in static-binding-free
// intervals (III-B-3), and translation of active-target epochs to
// passive-target epochs (III-C).
//
// Applications program against mpi.Env; core.Init returns an Env whose
// windows are Casper windows — the PMPI-interception analogue.
package core

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Binding selects the static binding model of Section III-B.
type Binding int

// Binding models.
const (
	// BindRank statically binds each user process to one ghost; all
	// operations targeting that process go to that ghost (III-B-1).
	BindRank Binding = iota
	// BindSegment divides the node's exposed memory into
	// 16-byte-aligned chunks, one per ghost; operations are split and
	// routed by the bytes they touch (III-B-2).
	BindSegment
)

// String implements fmt.Stringer.
func (b Binding) String() string {
	if b == BindSegment {
		return "segment"
	}
	return "rank"
}

// LoadBalance selects the dynamic load-balancing policy applied to
// PUT/GET operations during static-binding-free intervals (III-B-3).
type LoadBalance int

// Load-balancing policies.
const (
	// LBStatic never deviates from the static binding.
	LBStatic LoadBalance = iota
	// LBRandom picks a uniformly random ghost.
	LBRandom
	// LBOpCounting picks the ghost this origin has issued the fewest
	// operations to.
	LBOpCounting
	// LBByteCounting picks the ghost this origin has issued the fewest
	// bytes to.
	LBByteCounting
)

// String implements fmt.Stringer.
func (l LoadBalance) String() string {
	switch l {
	case LBRandom:
		return "random"
	case LBOpCounting:
		return "op-counting"
	case LBByteCounting:
		return "byte-counting"
	default:
		return "static"
	}
}

// Epoch-type names accepted in the epochs_used info hint.
const (
	EpochFence   = "fence"
	EpochPSCW    = "pscw"
	EpochLock    = "lock"
	EpochLockAll = "lockall"
)

// InfoEpochsUsed is the Casper-specific info key declaring which epoch
// types the application will use on a window (Section III-A). The value
// is a comma-separated subset of "fence,pscw,lock,lockall". Fewer
// declared epoch types let Casper create fewer internal windows.
const InfoEpochsUsed = "epochs_used"

// InfoAsyncConfig ("on"/"off") controls redirection per window. With
// "off" Casper steps aside entirely: the window is an ordinary MPI
// window over COMM_USER_WORLD with no ghost mapping and no redirection
// overhead — for windows whose operations are all hardware-handled or
// latency-critical. Default "on". (Mirrors the real Casper's
// per-window async_config hint.)
const InfoAsyncConfig = "async_config"

// InfoBinding ("rank"/"segment") overrides Config.Binding per window.
const InfoBinding = "binding"

// InfoLoadBalance ("static"/"random"/"op"/"byte") overrides
// Config.LoadBalance per window.
const InfoLoadBalance = "load_balance"

// DefaultEpochs is the conservative default: all epoch types.
const DefaultEpochs = "fence,pscw,lockall,lock"

// SegmentAlign is the granularity of segment binding: the size of the
// largest MPI basic datatype, so no basic element is ever split between
// two ghost processes (Section III-B-2).
const SegmentAlign = 16

// Config controls a Casper deployment.
type Config struct {
	// NumGhosts is the number of ghost processes dedicated per node
	// (the CSP_NG environment variable in the real implementation).
	NumGhosts int

	// Binding is the static binding model. Default BindRank.
	Binding Binding

	// LoadBalance is the dynamic policy for PUT/GET in
	// static-binding-free intervals. Default LBStatic.
	LoadBalance LoadBalance

	// RedirectOverhead is the origin-side bookkeeping cost Casper adds
	// to each redirected operation. Zero selects the default (50 ns).
	RedirectOverhead sim.Duration

	// SelfOpLocal performs Put/Get whose target is the calling process
	// itself directly through the node's shared segment (a load/store,
	// no ghost round trip) — the self-operation handling Section III-D
	// alludes to. Accumulate-family operations are never taken local,
	// preserving their ordering against remotely issued ones.
	SelfOpLocal bool

	// UnsafeNoBinding disables the static binding protections and
	// distributes every operation (including accumulates) randomly
	// across ghosts. It exists to demonstrate the corruption the
	// paper's Section III-B machinery prevents; the validator flags
	// the violations. Never use outside tests/ablation.
	UnsafeNoBinding bool

	// UnsafeSharedLockWindow disables the per-user-process overlapping
	// windows of Section III-A, funneling all lock epochs through a
	// single window. Demonstrates the nested-lock error and the
	// serialization the overlapping windows avoid. Tests/ablation only.
	UnsafeSharedLockWindow bool

	// Overload, when non-nil, enables the load-aware rebalancer: a
	// periodic sweep watches every ghost's AM queue depth and service
	// EWMA, migrates rank bindings from overloaded to underloaded
	// ghosts at quiescent points, and degrades a node to original-mode
	// target-side progress when all its ghosts are saturated. The
	// paper defers this to future work (Section III-B-3 handles only
	// origin-side counting); nil leaves routing exactly static.
	Overload *OverloadConfig
}

// OverloadConfig tunes the load-aware rebalancer (see Config.Overload).
type OverloadConfig struct {
	// Interval between rebalancer sweeps. Default 20µs.
	Interval sim.Duration
	// MigrateThreshold: a ghost whose backlog estimate (queue depth ×
	// service-time EWMA) exceeds this is a migration source when
	// another ghost on the node sits at ≤ 1/4 of its backlog.
	// Default 2µs.
	MigrateThreshold sim.Duration
	// SaturateThreshold: when every ghost of a node exceeds this
	// backlog, the node degrades to original-mode target-side
	// progress until the ghosts drain to 1/4 of it. Default 200µs.
	SaturateThreshold sim.Duration
	// MaxMovesPerSweep bounds binding migrations per node per sweep,
	// so load shifts gradually instead of sloshing. Default 1.
	MaxMovesPerSweep int
}

func (c *OverloadConfig) withDefaults() OverloadConfig {
	out := *c
	if out.Interval == 0 {
		out.Interval = 20 * sim.Microsecond
	}
	if out.MigrateThreshold == 0 {
		out.MigrateThreshold = 2 * sim.Microsecond
	}
	if out.SaturateThreshold == 0 {
		out.SaturateThreshold = 200 * sim.Microsecond
	}
	if out.MaxMovesPerSweep == 0 {
		out.MaxMovesPerSweep = 1
	}
	return out
}

func (c Config) withDefaults() Config {
	if c.RedirectOverhead == 0 {
		c.RedirectOverhead = 50 * sim.Nanosecond
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumGhosts <= 0 {
		return fmt.Errorf("casper: NumGhosts = %d, need at least one ghost per node", c.NumGhosts)
	}
	return nil
}

// epochSet is the parsed epochs_used hint.
type epochSet struct {
	fence, pscw, lock, lockall bool
}

func parseEpochs(s string) (epochSet, error) {
	var e epochSet
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case EpochFence:
			e.fence = true
		case EpochPSCW:
			e.pscw = true
		case EpochLock:
			e.lock = true
		case EpochLockAll:
			e.lockall = true
		case "":
		default:
			return e, fmt.Errorf("casper: unknown epoch type %q in %s", part, InfoEpochsUsed)
		}
	}
	return e, nil
}

// needActive reports whether the one shared internal window (for
// active-target and lockall epochs) is required.
func (e epochSet) needActive() bool { return e.fence || e.pscw || e.lockall }

func (e epochSet) String() string {
	var parts []string
	if e.fence {
		parts = append(parts, EpochFence)
	}
	if e.pscw {
		parts = append(parts, EpochPSCW)
	}
	if e.lockall {
		parts = append(parts, EpochLockAll)
	}
	if e.lock {
		parts = append(parts, EpochLock)
	}
	return strings.Join(parts, ",")
}
