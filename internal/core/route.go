package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// piece is one redirected operation fragment: issued to one ghost on one
// internal window, with the displacement translated into the ghost's
// full-segment exposure ("X + P1's offset in the ghost process address
// space", Section II-C).
type piece struct {
	ghost int // ghost world rank (== rank in the internal windows)
	disp  int // absolute offset within the node shared segment
	dt    mpi.Datatype
	src   []byte
	dst   []byte
}

// Put implements mpi.Window.
func (cw *casperWin) Put(src []byte, t int, disp int, dt mpi.Datatype) {
	cw.redirect(mpi.KindPut, t, disp, dt, src, nil, mpi.OpReplace, nil)
}

// Get implements mpi.Window.
func (cw *casperWin) Get(dst []byte, t int, disp int, dt mpi.Datatype) {
	cw.redirect(mpi.KindGet, t, disp, dt, nil, dst, mpi.OpNoOp, nil)
}

// RPut implements mpi.Window: the merged request covers every split
// piece of the redirected put.
func (cw *casperWin) RPut(src []byte, t int, disp int, dt mpi.Datatype) *mpi.RMARequest {
	return cw.redirectReq(mpi.KindPut, t, disp, dt, src, nil)
}

// RGet implements mpi.Window.
func (cw *casperWin) RGet(dst []byte, t int, disp int, dt mpi.Datatype) *mpi.RMARequest {
	return cw.redirectReq(mpi.KindGet, t, disp, dt, nil, dst)
}

// redirectReq is redirect for the request-based variants: it gathers one
// sub-request per issued piece into a merged handle.
func (cw *casperWin) redirectReq(kind mpi.OpKind, t, disp int, dt mpi.Datatype,
	src, dst []byte) *mpi.RMARequest {
	cw.collectReqs = true
	cw.collecting = nil
	op := mpi.OpReplace
	if kind == mpi.KindGet {
		op = mpi.OpNoOp
	}
	cw.redirect(kind, t, disp, dt, src, dst, op, nil)
	req := mpi.NewMergedRMARequest(cw.p.r, cw.collecting...)
	cw.collectReqs = false
	cw.collecting = nil
	return req
}

// Accumulate implements mpi.Window.
func (cw *casperWin) Accumulate(src []byte, t int, disp int, dt mpi.Datatype, op mpi.Op) {
	cw.redirect(mpi.KindAcc, t, disp, dt, src, nil, op, nil)
}

// GetAccumulate implements mpi.Window.
func (cw *casperWin) GetAccumulate(src, result []byte, t int, disp int, dt mpi.Datatype, op mpi.Op) {
	cw.redirect(mpi.KindGetAcc, t, disp, dt, src, result, op, nil)
}

// FetchAndOp implements mpi.Window.
func (cw *casperWin) FetchAndOp(src, result []byte, t int, disp int, b mpi.BasicType, op mpi.Op) {
	cw.redirect(mpi.KindFetchOp, t, disp, mpi.Scalar(b), src, result, op, nil)
}

// CompareAndSwap implements mpi.Window.
func (cw *casperWin) CompareAndSwap(compare, origin, result []byte, t int, disp int, b mpi.BasicType) {
	cw.redirect(mpi.KindCAS, t, disp, mpi.Scalar(b), origin, result, mpi.OpReplace, compare)
}

// redirect validates the epoch, charges Casper's per-operation
// bookkeeping cost, routes the operation to ghost pieces, and issues
// them on the appropriate internal window.
func (cw *casperWin) redirect(kind mpi.OpKind, t, disp int, dt mpi.Datatype,
	src, dst []byte, op mpi.Op, cmp []byte) {
	if t < 0 || t >= len(cw.layout) {
		panic(fmt.Sprintf("casper: target %d out of range", t))
	}
	ts := cw.epochStateFor(t)
	cw.p.r.Proc().Advance(cw.p.d.cfg.RedirectOverhead)
	if cw.sh != nil {
		// A staged binding handover drains the target before any new
		// operation routes to it (see awaitHandover).
		cw.sh.awaitHandover(cw.p, t)
	}

	if cw.p.d.cfg.SelfOpLocal && t == cw.comm.Rank() &&
		(kind == mpi.KindPut || kind == mpi.KindGet) {
		cw.selfLocal(kind, t, disp, dt, src, dst)
		return
	}

	w := cw.winFor(t, ts)
	if ts != nil && ts.locked {
		cw.ensureGhostLocks(t, ts, w)
		cw.reclaimEpochLocks(t, ts, w)
	}

	pieces := cw.route(kind, t, disp, dt, src, dst, ts, w == cw.active)
	cw.p.stats.Redirected++
	if len(pieces) > 1 {
		cw.p.stats.Split += int64(len(pieces) - 1)
	}
	if cw.sh != nil {
		// One observer callback fires per piece at its terminal state;
		// counting here (no park between route and issue) makes the
		// in-flight window cover queued-but-unissued operations too.
		cw.sh.inflight[t] += len(pieces)
		cw.sh.routed[t]++
	}
	for _, pc := range pieces {
		switch kind {
		case mpi.KindPut:
			if cw.collectReqs {
				cw.collecting = append(cw.collecting, w.RPut(pc.src, pc.ghost, pc.disp, pc.dt))
			} else {
				w.Put(pc.src, pc.ghost, pc.disp, pc.dt)
			}
		case mpi.KindGet:
			if cw.collectReqs {
				cw.collecting = append(cw.collecting, w.RGet(pc.dst, pc.ghost, pc.disp, pc.dt))
			} else {
				w.Get(pc.dst, pc.ghost, pc.disp, pc.dt)
			}
		case mpi.KindAcc:
			w.Accumulate(pc.src, pc.ghost, pc.disp, pc.dt, op)
		case mpi.KindGetAcc:
			w.GetAccumulate(pc.src, pc.dst, pc.ghost, pc.disp, pc.dt, op)
		case mpi.KindFetchOp:
			w.FetchAndOp(pc.src, pc.dst, pc.ghost, pc.disp, pc.dt.Basic, op)
		case mpi.KindCAS:
			w.CompareAndSwap(cmp, pc.src, pc.dst, pc.ghost, pc.disp, pc.dt.Basic)
		}
		cw.countLB(t, pc)
	}
}

// epochStateFor checks the op is inside an epoch covering target t and
// returns the per-target state (nil for fence/PSCW epochs, which need
// none).
func (cw *casperWin) epochStateFor(t int) *ctarget {
	if ts := cw.lookupTarget(t); ts != nil && ts.locked {
		return ts
	}
	if cw.lockAllActive {
		ts := cw.target(t)
		if !ts.locked {
			ts.locked = true
			ts.viaAll = true
			ts.lt = mpi.LockShared
			ts.ghostsLkd = false
			ts.dynamicOK = false
		}
		return ts
	}
	if cw.fenceActive {
		return nil
	}
	if cw.accessGroup != nil {
		for _, g := range cw.accessGroup {
			if g == t {
				return nil
			}
		}
		panic(fmt.Sprintf("casper: PSCW op to target %d outside access group", t))
	}
	panic(fmt.Sprintf("casper: RMA operation to target %d without an epoch", t))
}

// route maps one user operation to ghost pieces according to the binding
// model and the dynamic load-balancing policy (Section III-B).
func (cw *casperWin) route(kind mpi.OpKind, t, disp int, dt mpi.Datatype,
	src, dst []byte, ts *ctarget, onActive bool) []piece {
	ti := &cw.layout[t]
	if disp < 0 || disp+dt.Extent() > ti.size {
		panic(fmt.Sprintf("casper: op at disp %d extent %d outside %d-byte window of target %d",
			disp, dt.Extent(), ti.size, t))
	}
	abs := ti.base + disp

	if cw.p.d.cfg.UnsafeNoBinding {
		// Ablation mode: ignore all correctness machinery.
		g := ti.ghosts[cw.rng().Intn(len(ti.ghosts))]
		cw.routeBuf = append(cw.routeBuf[:0], piece{ghost: g, disp: abs, dt: dt, src: src, dst: dst})
		return cw.routeBuf
	}

	if cw.binding == BindSegment && (kind == mpi.KindPut || kind == mpi.KindGet ||
		kind == mpi.KindAcc || kind == mpi.KindGetAcc) {
		return cw.splitBySegments(ti, abs, dt, src, dst)
	}

	// Rank binding (and single-element atomics under segment binding,
	// which always fit one chunk).
	ghost := cw.boundGhostFor(t, ti, onActive)
	if cw.binding == BindSegment {
		ghost = cw.ownerOf(ti, abs)
	} else if cw.dynamicEligible(kind, ts) {
		ghost = cw.chooseDynamic(ti)
		cw.p.stats.Dynamic++
	}
	ghost = cw.progressTarget(ti, ghost)
	cw.routeBuf = append(cw.routeBuf[:0], piece{ghost: ghost, disp: abs, dt: dt, src: src, dst: dst})
	return cw.routeBuf
}

// dynamicEligible reports whether this op may be load-balanced away from
// its static binding: only PUT/GET (never the accumulate family, which
// needs ordering/atomicity, III-B-3), only under a policy, and only in a
// static-binding-free interval (after a flush acquired all ghost locks).
func (cw *casperWin) dynamicEligible(kind mpi.OpKind, ts *ctarget) bool {
	if cw.lb == LBStatic {
		return false
	}
	if kind != mpi.KindPut && kind != mpi.KindGet {
		return false
	}
	return ts != nil && ts.dynamicOK
}

// chooseDynamic picks a ghost per the load-balancing policy, using
// per-node counters of what this origin has issued (III-B-3).
func (cw *casperWin) chooseDynamic(ti *tinfo) int {
	counts := cw.lbCounts(ti)
	switch cw.lb {
	case LBRandom:
		return ti.ghosts[cw.rng().Intn(len(ti.ghosts))]
	case LBOpCounting:
		best := 0
		for i := 1; i < len(counts); i++ {
			if counts[i].ops < counts[best].ops {
				best = i
			}
		}
		return ti.ghosts[best]
	case LBByteCounting:
		best := 0
		for i := 1; i < len(counts); i++ {
			if counts[i].bytes < counts[best].bytes {
				best = i
			}
		}
		return ti.ghosts[best]
	default:
		return ti.bound
	}
}

func (cw *casperWin) lbCounts(ti *tinfo) []lbCount {
	if ti.lbc != nil {
		return ti.lbc
	}
	c, ok := cw.nodeLB[ti.node]
	if !ok {
		c = make([]lbCount, len(ti.ghosts))
		cw.nodeLB[ti.node] = c
	}
	ti.lbc = c // cache on the target: counting stays per-node (shared slice)
	return c
}

// countLB records issued work per ghost, so op- and byte-counting see
// the accumulate load pinned to bound ghosts (Fig. 7(b), 7(c)).
func (cw *casperWin) countLB(t int, pc piece) {
	ti := &cw.layout[t]
	counts := cw.lbCounts(ti)
	for i, g := range ti.ghosts {
		if g == pc.ghost {
			counts[i].ops++
			counts[i].bytes += int64(pc.dt.Size())
			return
		}
	}
}

// ownerOf returns the ghost owning an absolute segment byte under
// segment binding.
func (cw *casperWin) ownerOf(ti *tinfo, abs int) int {
	idx := abs / ti.chunk
	if idx >= len(ti.ghosts) {
		idx = len(ti.ghosts) - 1
	}
	return ti.ghosts[idx]
}

// splitBySegments cuts the operation at 16-byte-aligned chunk
// boundaries, keeping every basic element whole so atomicity and
// ordering are preserved per element (III-B-2). It requires
// element-aligned displacements, which the paper assumes from compiler
// data alignment.
func (cw *casperWin) splitBySegments(ti *tinfo, abs int, dt mpi.Datatype,
	src, dst []byte) []piece {
	es := dt.Basic.Size()
	if abs%es != 0 {
		panic(fmt.Sprintf("casper: segment binding requires %d-byte aligned displacement (got absolute offset %d)", es, abs))
	}
	pieces := cw.routeBuf[:0]
	packed := 0 // index into the packed origin buffer
	dt.Blocks(func(off, n int) {
		lo := abs + off
		for n > 0 {
			chunkEnd := (lo/ti.chunk + 1) * ti.chunk
			run := n
			if lo+run > chunkEnd {
				run = chunkEnd - lo
			}
			if run%es != 0 {
				// Cannot happen while chunk size is a multiple of the
				// largest basic size and offsets are aligned; guard
				// against model changes.
				panic("casper: segment split tore a basic element")
			}
			pc := piece{
				ghost: cw.progressTarget(ti, cw.ownerOf(ti, lo)),
				disp:  lo,
				dt:    mpi.TypeOf(dt.Basic, run/es),
			}
			if src != nil {
				pc.src = src[packed : packed+run]
			}
			if dst != nil {
				pc.dst = dst[packed : packed+run]
			}
			pieces = append(pieces, pc)
			packed += run
			lo += run
			n -= run
		}
	})
	// Merge adjacent pieces routed to the same ghost with contiguous
	// displacements (blocks of a vector usually are not, but chunk cuts
	// within one block are reassembled when the chunk owner repeats).
	merged := pieces[:0]
	for _, pc := range pieces {
		if n := len(merged); n > 0 {
			last := &merged[n-1]
			if last.ghost == pc.ghost && last.disp+last.dt.Size() == pc.disp &&
				last.dt.Basic == pc.dt.Basic {
				last.dt = mpi.TypeOf(last.dt.Basic, last.dt.Elems()+pc.dt.Elems())
				if pc.src != nil {
					last.src = last.src[:len(last.src)+len(pc.src)]
				}
				if pc.dst != nil {
					last.dst = last.dst[:len(last.dst)+len(pc.dst)]
				}
				continue
			}
		}
		merged = append(merged, pc)
	}
	cw.routeBuf = merged // retain any growth for the next operation
	return merged
}

// selfLocal performs a Put/Get targeting the calling process directly
// through the node shared segment — a memcpy, no ghost round trip
// (Section III-D's self-operation handling). Never used for the
// accumulate family, whose ordering against remote operations must go
// through the bound ghost.
func (cw *casperWin) selfLocal(kind mpi.OpKind, t, disp int, dt mpi.Datatype, src, dst []byte) {
	ti := &cw.layout[t]
	if disp < 0 || disp+dt.Extent() > ti.size {
		panic(fmt.Sprintf("casper: self op at disp %d extent %d outside %d-byte window",
			disp, dt.Extent(), ti.size))
	}
	mem := cw.root.Bytes()
	base := ti.base + disp
	// Charge the memcpy through shared memory.
	net := cw.p.r.World().Net()
	cw.p.r.Proc().Advance(sim.Duration(float64(dt.Size()) * net.IntraPerByte))
	idx := 0
	dt.Blocks(func(off, n int) {
		if kind == mpi.KindPut {
			copy(mem[base+off:base+off+n], src[idx:idx+n])
		} else {
			copy(dst[idx:idx+n], mem[base+off:base+off+n])
		}
		idx += n
	})
	cw.p.stats.SelfLocal++
	if cw.collectReqs {
		// The operation is already complete; merged request is empty.
		return
	}
}

// rng returns the random stream for randomized routing decisions. It is
// the calling rank's engine stream: deterministic for a fixed world
// configuration (and, sharded, for any worker count), though a sharded
// world's draws differ from the serial engine's single stream — LBRandom
// and the UnsafeNoBinding ablation are the only consumers.
func (cw *casperWin) rng() rngIntn { return cw.p.r.Engine().Rand() }

// rngIntn is the subset of rand.Rand the router needs (seam for tests).
type rngIntn interface{ Intn(n int) int }
