package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mpi"
)

// TestRandomOpSequencesMatchReferenceModel drives randomized sequences
// of Put/Accumulate/Get operations (random displacements, datatypes,
// vector strides, flush points) from one origin against a reference
// memory model, through plain MPI and through every Casper binding
// configuration. Single-origin sequences are fully ordered by the
// interleaved flushes, so the reference is exact; any divergence in
// offset translation, segment splitting, or epoch translation shows up
// as a byte mismatch.
func TestRandomOpSequencesMatchReferenceModel(t *testing.T) {
	type config struct {
		name   string
		ghosts int
		bind   Binding
		lb     LoadBalance
	}
	configs := []config{
		{name: "plain"},
		{name: "casper-rank-1g", ghosts: 1, bind: BindRank},
		{name: "casper-rank-4g", ghosts: 4, bind: BindRank},
		{name: "casper-segment-2g", ghosts: 2, bind: BindSegment},
		{name: "casper-segment-4g", ghosts: 4, bind: BindSegment},
		{name: "casper-random-lb", ghosts: 4, bind: BindRank, lb: LBRandom},
	}
	const winDoubles = 64
	for _, cfg := range configs {
		cfg := cfg
		for seed := int64(1); seed <= 4; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", cfg.name, seed), func(t *testing.T) {
				runModelSequence(t, cfg.ghosts, cfg.bind, cfg.lb, seed, winDoubles)
			})
		}
	}
}

func runModelSequence(t *testing.T, ghosts int, bind Binding, lb LoadBalance,
	seed int64, winDoubles int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Pre-generate the op script so every configuration replays the
	// identical sequence.
	type op struct {
		kind     mpi.OpKind
		target   int
		elemOff  int
		count    int
		stride   int // 0 = contiguous
		vals     []float64
		flush    bool
		preFlush bool
	}
	const userCount = 4 // users in every config below
	var script []op
	ref := make([][]float64, userCount) // reference memory per target
	for i := range ref {
		ref[i] = make([]float64, winDoubles)
	}
	// MPI orders only the accumulate family (same origin, same target,
	// overlapping location); concurrent puts — and puts vs accumulates
	// — are unordered within an epoch. To keep the reference exact the
	// generator inserts a flush before any operation whose outcome
	// would otherwise be order-dependent.
	unflushedPut := make([]map[int]bool, userCount)
	unflushedAcc := make([]map[int]bool, userCount)
	for i := range unflushedPut {
		unflushedPut[i] = map[int]bool{}
		unflushedAcc[i] = map[int]bool{}
	}
	nOps := 40 + rng.Intn(40)
	for i := 0; i < nOps; i++ {
		target := 1 + rng.Intn(userCount-1) // rank 0 is the origin
		count := 1 + rng.Intn(8)
		stride := 0
		extent := count
		if rng.Intn(3) == 0 { // noncontiguous vector
			stride = count + rng.Intn(3) + 1
			extent = (count-1)*stride + 1
		}
		maxOff := winDoubles - extent
		if maxOff < 0 {
			continue
		}
		o := op{
			target:  target,
			elemOff: rng.Intn(maxOff + 1),
			count:   count,
			stride:  stride,
			flush:   rng.Intn(4) == 0,
		}
		switch rng.Intn(3) {
		case 0:
			o.kind = mpi.KindPut
		case 1:
			o.kind = mpi.KindAcc
		default:
			o.kind = mpi.KindGet
		}
		if o.kind != mpi.KindGet {
			o.vals = make([]float64, count)
			for j := range o.vals {
				o.vals[j] = float64(rng.Intn(100)) - 50
			}
			elems := make([]int, count)
			for j := range elems {
				if stride == 0 {
					elems[j] = o.elemOff + j
				} else {
					elems[j] = o.elemOff + j*stride
				}
			}
			conflict := false
			for _, e := range elems {
				if unflushedPut[target][e] {
					conflict = true // write over unordered write
				}
				if o.kind == mpi.KindPut && unflushedAcc[target][e] {
					conflict = true // put is not ordered against accs
				}
			}
			if conflict {
				o.preFlush = true
				unflushedPut[target] = map[int]bool{}
				unflushedAcc[target] = map[int]bool{}
			}
			for _, e := range elems {
				if o.kind == mpi.KindPut {
					unflushedPut[target][e] = true
				} else {
					unflushedAcc[target][e] = true
				}
			}
		}
		if o.flush {
			unflushedPut[target] = map[int]bool{}
			unflushedAcc[target] = map[int]bool{}
		}
		script = append(script, o)
	}
	// Compute the reference result (ops apply in issue order because
	// they come from a single origin: MPI orders same-origin
	// accumulates, and our interleaved flushes order everything else).
	refAt := func(o op, j int) int {
		if o.stride == 0 {
			return o.elemOff + j
		}
		return o.elemOff + j*o.stride
	}
	for _, o := range script {
		switch o.kind {
		case mpi.KindPut:
			for j := 0; j < o.count; j++ {
				ref[o.target][refAt(o, j)] = o.vals[j]
			}
		case mpi.KindAcc:
			for j := 0; j < o.count; j++ {
				ref[o.target][refAt(o, j)] += o.vals[j]
			}
		}
	}

	// Execute.
	finals := make([][]float64, userCount)
	body := func(env mpi.Env) {
		c := env.CommWorld()
		win, buf := env.WinAllocate(c, winDoubles*8, nil)
		c.Barrier()
		if env.Rank() == 0 {
			win.LockAll(mpi.AssertNone)
			lastGet := make([]byte, winDoubles*8)
			for _, o := range script {
				dt := mpi.TypeOf(mpi.Float64, o.count)
				if o.stride != 0 {
					dt = mpi.Vector(mpi.Float64, o.count, 1, o.stride)
				}
				disp := o.elemOff * 8
				if o.preFlush {
					win.Flush(o.target)
				}
				switch o.kind {
				case mpi.KindPut:
					win.Put(mpi.PutFloat64s(o.vals), o.target, disp, dt)
				case mpi.KindAcc:
					win.Accumulate(mpi.PutFloat64s(o.vals), o.target, disp, dt, mpi.OpSum)
				case mpi.KindGet:
					win.Get(lastGet[:dt.Size()], o.target, disp, dt)
				}
				if o.flush {
					win.Flush(o.target)
				}
			}
			win.UnlockAll()
		}
		c.Barrier()
		finals[env.Rank()] = mpi.GetFloat64s(buf)
		c.Barrier()
	}

	var w *mpi.World
	var err error
	if ghosts == 0 {
		w, err = mpi.Run(casperConfig(userCount, userCount), func(r *mpi.Rank) { body(r) })
	} else {
		ppn := 2 + ghosts // 2 users per node, 2 nodes
		mcfg := casperConfig(2*ppn, ppn)
		w, err = mpi.Run(mcfg, func(r *mpi.Rank) {
			p, ghost := Init(r, Config{NumGhosts: ghosts, Binding: bind, LoadBalance: lb})
			if ghost {
				return
			}
			body(p)
			p.Finalize()
		})
	}
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v := w.Validator(); v != nil && !v.Ok() {
		t.Fatalf("validator: %v", v.Violations())
	}
	for target := 1; target < userCount; target++ {
		for j, want := range ref[target] {
			if finals[target][j] != want {
				t.Fatalf("target %d elem %d = %v, want %v (ghosts=%d bind=%v)",
					target, j, finals[target][j], want, ghosts, bind)
			}
		}
	}
}
