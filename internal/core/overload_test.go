package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Topology shared by these tests: one node, ppn 6, 2 ghosts. All six
// locals land in one NUMA domain, so the ghosts take the two highest
// locals {4, 5} and bindings round-robin over the node's users: user
// comm ranks 0 and 2 are statically bound to the first ghost (internal
// rank 4) and comm ranks 1 and 3 to the second (internal rank 5). A
// "hot pair" sharing one ghost is therefore {0, 2}.
func overloadCfg(interval sim.Duration) *OverloadConfig {
	return &OverloadConfig{
		Interval:         interval,
		MigrateThreshold: sim.Nanosecond,
	}
}

func TestRebindDefersInsideOpenLockEpoch(t *testing.T) {
	// Every origin funnels accumulates at target 0 inside one long
	// explicit lock epoch. The sweeps see a hot ghost and a migratable
	// target, but the open epoch pins the binding (the epoch's locks
	// live on the current ghost), so the rebalancer must defer.
	var sum float64
	w := casperRun(t, casperConfig(6, 6), Config{
		NumGhosts: 2,
		Overload:  overloadCfg(2 * sim.Microsecond),
	}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 64, nil)
		c.Barrier()
		if p.Rank() != 0 {
			win.Lock(0, mpi.LockShared, mpi.AssertNone)
			for i := 0; i < 150; i++ {
				win.Accumulate(mpi.PutFloat64s([]float64{1}), 0, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
				p.Compute(200 * sim.Nanosecond)
			}
			win.Unlock(0)
		} else {
			p.Compute(100 * sim.Microsecond)
		}
		c.Barrier()
		if p.Rank() == 0 {
			sum = mpi.GetFloat64s(buf)[0]
		}
	})
	st := overloadStatsOf(w)
	if st.DeferredLock == 0 {
		t.Fatalf("rebalancer never deferred to the open lock epoch: %+v", st)
	}
	if want := float64(3 * 150); sum != want {
		t.Fatalf("target saw %v, want %v", sum, want)
	}
}

func TestAllGhostsSaturatedDegradesNotDeadlocks(t *testing.T) {
	// With a saturation threshold any queue at all exceeds, the node's
	// both ghosts count as saturated on the first loaded sweep and the
	// node must degrade to target-side progress — and still finish with
	// correct data rather than wedge.
	var got [4]float64
	w := casperRun(t, casperConfig(6, 6), Config{
		NumGhosts: 2,
		Overload: &OverloadConfig{
			Interval:          2 * sim.Microsecond,
			SaturateThreshold: sim.Nanosecond,
			MigrateThreshold:  sim.Second, // isolate: no migrations here
		},
	}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 64, mpi.Info{InfoEpochsUsed: "lockall"})
		c.Barrier()
		win.LockAll(mpi.AssertNone)
		for i := 0; i < 120; i++ {
			for tgt := 0; tgt < 4; tgt++ {
				if tgt == p.Rank() {
					continue
				}
				win.Accumulate(mpi.PutFloat64s([]float64{1}), tgt, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
			}
			if i%20 == 19 {
				win.FlushAll()
			}
		}
		win.UnlockAll()
		c.Barrier()
		got[p.Rank()] = mpi.GetFloat64s(buf)[0]
		c.Barrier()
	})
	st := overloadStatsOf(w)
	if st.Saturations == 0 {
		t.Fatalf("node never degraded despite saturated ghosts: %+v", st)
	}
	if st.Migrations != 0 {
		t.Fatalf("unexpected migrations with a prohibitive threshold: %+v", st)
	}
	for rk, v := range got {
		if want := float64(3 * 120); v != want {
			t.Fatalf("rank %d saw %v, want %v (stats %+v)", rk, v, want, st)
		}
	}
}

func TestRebindSurvivesGhostCrash(t *testing.T) {
	// Origins 2 and 3 hammer targets 0 and 2, both statically bound to
	// the first ghost; the rebalancer migrates one of them to the idle
	// second ghost, and then that ghost is killed mid-run. The moved
	// binding must be dropped, PR 1's failover must reroute, and no
	// update may be lost. The crash fires at 150us — after the window
	// creation collectives (~80us of virtual time here) have completed,
	// so the victim has exposed its regions and the run is mid-workload.
	mcfg := casperConfig(6, 6)
	ghosts, err := GhostRanks(mcfg.Machine, 6, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Last ghost of node 0: an ordinary ghost, so this test isolates the
	// rebind/failover path (sequencer death and succession are covered by
	// recovery_test.go and the faultchaos sweep).
	victim := ghosts[0][len(ghosts[0])-1]
	mcfg.Fault = &fault.Plan{
		Seed:    9,
		Crashes: []fault.Crash{{Rank: victim, At: sim.Time(150 * sim.Microsecond)}},
	}
	var got [4]float64
	w := casperRun(t, mcfg, Config{
		NumGhosts: 2,
		Overload:  overloadCfg(2 * sim.Microsecond),
	}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 64, mpi.Info{InfoEpochsUsed: "lockall"})
		c.Barrier()
		win.LockAll(mpi.AssertNone)
		if p.Rank() >= 2 {
			for i := 0; i < 300; i++ {
				for _, tgt := range []int{0, 2} {
					win.Accumulate(mpi.PutFloat64s([]float64{1}), tgt, 0,
						mpi.Scalar(mpi.Float64), mpi.OpSum)
				}
				p.Compute(150 * sim.Nanosecond)
				if i%25 == 24 {
					win.FlushAll()
				}
			}
		}
		win.UnlockAll()
		c.Barrier()
		if p.Rank() == 0 || p.Rank() == 2 {
			got[p.Rank()] = mpi.GetFloat64s(buf)[0]
		}
		c.Barrier()
	})
	if n := w.FailedCount(); n != 1 {
		t.Fatalf("FailedCount = %d, want 1 (victim %d)", n, victim)
	}
	st := overloadStatsOf(w)
	if st.Migrations == 0 {
		t.Fatalf("skewed load never triggered a migration: %+v", st)
	}
	for _, rk := range []int{0, 2} {
		if want := float64(2 * 300); got[rk] != want {
			t.Fatalf("target %d saw %v, want %v (stats %+v)", rk, got[rk], want, st)
		}
	}
}
