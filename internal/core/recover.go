package core

import (
	"repro/internal/mpi"
)

// Application-rank fault tolerance (the recoverable half of the fault
// model; ghost crashes are handled by rebinding and succession, see
// journal.go and window.go).
//
// When the fault plan schedules AppCrashes, every user process guards
// the window region it exposes in WinAllocate. The guard journals each
// remote RMA mutation (internal/mpi/guard.go); at every epoch close the
// owner folds the journal into a fresh snapshot, modeling the bound
// ghost replicating the rank's closed-epoch state to a buddy ghost on
// another node. Epoch closes are exactly the consistency points RMA
// synchronization mandates — between them the journal, not the
// snapshot, carries the open epoch's mutations.
//
// On a confirmed recoverable crash the detector's pipeline (agreement →
// respawn → restore → thaw, internal/mpi/health.go) calls back into
// restore below: the region is rolled back to the last snapshot and the
// open epoch's journaled operations are replayed by the first surviving
// buddy, whose shipped bytes price the revival delay. The rebuild is
// verified bit-identical to the pre-crash bytes, so the recovered world
// cannot silently diverge from its fault-free twin.
type appRecovery struct {
	w       *mpi.World
	guarded map[int][]*guardRec // app world rank -> guards over its exposed regions
}

// guardRec ties one guarded region to the ghosts responsible for it.
type guardRec struct {
	guard   *mpi.RegionGuard
	owner   int   // bound ghost (world rank): takes the epoch-close snapshots
	buddies []int // replica holders in preference order: first survivor replays
}

// recoveryFor returns the world-global recovery singleton, creating it
// and registering the restore callback on first use. Only called when
// the plan schedules AppCrashes.
func recoveryFor(r *mpi.Rank) *appRecovery {
	v := r.World().SharedState("casper.apprecovery", func() interface{} {
		rec := &appRecovery{w: r.World(), guarded: map[int][]*guardRec{}}
		rec.w.SetAppRestore(rec.restore)
		return rec
	})
	return v.(*appRecovery)
}

// register guards one region of one app rank. Guards live for the
// world's lifetime: a freed window's region stays addressable in the
// simulation, and an idle guard costs nothing on the message path.
func (rec *appRecovery) register(worldRank int, g *mpi.RegionGuard, owner int, buddies []int) {
	rec.guarded[worldRank] = append(rec.guarded[worldRank], &guardRec{
		guard:   g,
		owner:   owner,
		buddies: buddies,
	})
}

// snapshot folds every guard of the rank at an epoch close, crediting
// the owning ghost with the replication traffic. Pure memory — the
// replication is modeled as asynchronous background wire the owner
// overlaps with service, so it never perturbs the schedule.
func (rec *appRecovery) snapshot(worldRank int) {
	for _, gr := range rec.guarded[worldRank] {
		rec.w.NoteSnapshot(gr.owner, gr.guard.Snapshot())
	}
}

// restore is the World.SetAppRestore callback, run in engine context
// when a confirmed-dead app rank is respawned: capture the crash-time
// local-store diff, roll back to the last snapshot, replay the open
// epoch's journal, and credit the replaying buddy. Returns the shipped
// snapshot bytes (pricing the revival delay) and ok=false for ranks
// with nothing guarded.
func (rec *appRecovery) restore(worldRank int) (bytes, replayed int, ok bool) {
	grs := rec.guarded[worldRank]
	if len(grs) == 0 {
		return 0, 0, false
	}
	for _, gr := range grs {
		gr.guard.MarkCrash()
		b, rp := gr.guard.Restore()
		bytes += b
		replayed += rp
		rec.w.NoteReplayedOps(rec.liveBuddy(gr), rp)
	}
	return bytes, replayed, true
}

// liveBuddy returns the first surviving replica holder, falling back to
// the static first preference when every candidate is confirmed dead
// (the counters of dead ranks still aggregate).
func (rec *appRecovery) liveBuddy(gr *guardRec) int {
	for _, b := range gr.buddies {
		if !rec.w.HealthFailed(b) {
			return b
		}
	}
	return gr.buddies[0]
}

// buddyGhosts returns the replica-holder preference order for a user
// process: the ghosts of the following nodes (cyclically) first — a
// replica on the owner's node would die with the node — then the
// owner's node-mates, and the owning bound ghost itself as the final
// fallback.
func (d *deployment) buddyGhosts(worldRank int) []int {
	nodes := len(d.ghostsByNode)
	node := d.place.Node(worldRank)
	owner := d.boundGhost(worldRank)
	var out []int
	for i := 1; i <= nodes; i++ {
		for _, g := range d.ghostsByNode[(node+i)%nodes] {
			if g != owner {
				out = append(out, g)
			}
		}
	}
	return append(out, owner)
}

// appCrashesPlanned reports whether the world's fault plan schedules
// recoverable application-rank crashes — the switch that arms guarding,
// app-rank health tracking, and the restore callback.
func appCrashesPlanned(r *mpi.Rank) bool {
	plan := r.World().Config().Fault
	return plan != nil && len(plan.AppCrashes) > 0
}
