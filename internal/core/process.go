package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Process is the Casper view of one user process. It implements mpi.Env:
// applications written against mpi.Env run unmodified over Casper, with
// MPI_COMM_WORLD transparently replaced by COMM_USER_WORLD and windows
// replaced by redirecting Casper windows — the PMPI interception of
// Section II.
type Process struct {
	r *mpi.Rank
	d *deployment

	finalized bool
	winCounts map[string]int // per creation-key window instance counters
	stats     Stats
}

// Stats counts Casper-level redirection activity on this process.
type Stats struct {
	Redirected int64 // operations redirected to ghosts
	Split      int64 // extra pieces created by segment splitting
	Dynamic    int64 // operations routed by dynamic load balancing
	SelfLocal  int64 // self put/get completed through shared memory
	Degraded   int64 // routing decisions that fell back to target-side progress (all ghosts of a node dead)
}

var _ mpi.Env = (*Process)(nil)

// Rank implements mpi.Env: the rank in COMM_USER_WORLD.
func (p *Process) Rank() int { return p.d.userComm.Rank() }

// Size implements mpi.Env: the size of COMM_USER_WORLD.
func (p *Process) Size() int { return p.d.userComm.Size() }

// CommWorld implements mpi.Env: COMM_USER_WORLD, not MPI_COMM_WORLD —
// the communicator substitution of Section II-A.
func (p *Process) CommWorld() *mpi.Comm { return p.d.userComm }

// Compute implements mpi.Env.
func (p *Process) Compute(d sim.Duration) { p.r.Compute(d) }

// Now implements mpi.Env.
func (p *Process) Now() sim.Time { return p.r.Now() }

// Underlying returns the wrapped MPI rank (for harness inspection).
func (p *Process) Underlying() *mpi.Rank { return p.r }

// Stats returns the redirection counters.
func (p *Process) Stats() Stats { return p.stats }

// NumGhosts returns the per-node ghost count of this deployment.
func (p *Process) NumGhosts() int { return p.d.cfg.NumGhosts }

// Finalize shuts down the ghost processes. Collective over
// COMM_USER_WORLD; call once, after all windows are done.
func (p *Process) Finalize() {
	if p.finalized {
		panic("casper: Finalize called twice")
	}
	p.finalized = true
	p.d.userComm.Barrier()
	if p.d.userComm.Rank() == 0 {
		// The acting sequencer ghost forwards the shutdown to every
		// other ghost before exiting its own loop.
		p.d.sendCmd([]byte{cmdShutdown})
	}
}

// WinAllocate implements mpi.Env — the heart of the interception
// (Sections II-B, III-A). It
//
//  1. allocates one shared-memory window per node spanning all user
//     memory plus the ghosts' address space,
//  2. creates the internal overlapping windows over MPI_COMM_WORLD
//     (one per user process if lock epochs are declared, plus one for
//     active-target/lockall epochs), in which ghosts expose the whole
//     node segment, and
//  3. creates and returns a window over COMM_USER_WORLD whose operations
//     are redirected to ghosts.
//
// The comm may be COMM_USER_WORLD or any communicator of user
// processes (e.g. from Split) — the Section III-C scenarios need
// windows on disjoint user groups. Window creation is serialized
// globally by the ghost command protocol.
func (p *Process) WinAllocate(comm *mpi.Comm, size int, info mpi.Info) (mpi.Window, []byte) {
	if p.finalized {
		panic("casper: WinAllocate after Finalize")
	}
	switch info.Get(InfoAsyncConfig, "on") {
	case "on":
	case "off":
		// Redirection disabled for this window: plain MPI window over
		// COMM_USER_WORLD, no ghost involvement at all.
		return p.r.WinAllocate(comm, size, info)
	default:
		panic(fmt.Sprintf("casper: bad %s value %q", InfoAsyncConfig,
			info.Get(InfoAsyncConfig, "on")))
	}
	epochs, err := parseEpochs(info.Get(InfoEpochsUsed, DefaultEpochs))
	if err != nil {
		panic(err)
	}
	users := comm.Group()
	topo := p.d.topologyFor(users)

	// Summon the ghosts into the creation collectives, via the
	// sequencer so every ghost sees window creations in one global
	// order even when disjoint groups allocate concurrently.
	cmd := encodeWinCmd(epochs, users)
	if comm.Rank() == 0 {
		p.d.sendCmd(cmd)
	}

	// Step 1: node shared window (window users + ghosts), Fig. 2.
	node := p.d.place.Node(p.r.Rank())
	nodeComm := p.r.CommFromGroup(topo.nodeWinRanks(p.d, node))
	shared, buf := p.r.WinAllocateShared(nodeComm, size, nil)
	root := shared.Region().Root()

	// Step 2: internal overlapping windows over all window users plus
	// all ghosts. Every member exposes the whole node segment: ghosts
	// because they service redirected operations, users so that a node
	// that loses all its ghosts can degrade to target-side progress.
	// Operations target only ghost ranks on these windows while any
	// ghost of the node survives.
	internal := p.r.CommFromGroup(topo.internalRanks(users))
	nLock := p.d.lockWindowCount(epochs, topo.maxUsers)
	lockWins := make([]*mpi.Win, nLock)
	for i := range lockWins {
		lockWins[i] = p.r.WinCreate(internal, root, nil)
	}
	var activeWin *mpi.Win
	if epochs.needActive() {
		activeWin = p.r.WinCreate(internal, root, nil)
	}

	// Step 3: the user-visible window over the users' communicator.
	userWin := p.r.WinCreate(comm, shared.Region(), info)

	binding := p.d.cfg.Binding
	switch info.Get(InfoBinding, "") {
	case "":
	case "rank":
		binding = BindRank
	case "segment":
		binding = BindSegment
	default:
		panic(fmt.Sprintf("casper: bad %s value %q", InfoBinding, info.Get(InfoBinding, "")))
	}
	lb := p.d.cfg.LoadBalance
	switch info.Get(InfoLoadBalance, "") {
	case "":
	case "static":
		lb = LBStatic
	case "random":
		lb = LBRandom
	case "op":
		lb = LBOpCounting
	case "byte":
		lb = LBByteCounting
	default:
		panic(fmt.Sprintf("casper: bad %s value %q", InfoLoadBalance,
			info.Get(InfoLoadBalance, "")))
	}

	cw := &casperWin{
		p:        p,
		epochs:   epochs,
		shared:   shared,
		lockWins: lockWins,
		active:   activeWin,
		user:     userWin,
		comm:     comm,
		internal: internal,
		root:     root,
		binding:  binding,
		lb:       lb,
		targets:  make([]*ctarget, comm.Size()),
		nodeLB:   map[int][]lbCount{},
		cmdKey:   string(cmd[1:]),
	}
	if p.winCounts == nil {
		p.winCounts = map[string]int{}
	}
	cw.cmdIdx = p.winCounts[cw.cmdKey]
	p.winCounts[cw.cmdKey]++
	cw.buildLayout(size, topo)
	if appCrashesPlanned(p.r) {
		// Guard this rank's exposed region for rollback-replay recovery:
		// the bound ghost snapshots it at epoch closes, a buddy ghost on
		// another node holds the replica and replays after a crash.
		rec := recoveryFor(p.r)
		rec.register(p.r.Rank(), p.r.World().GuardRegion(shared.Region()),
			p.d.boundGhost(p.r.Rank()), p.d.buddyGhosts(p.r.Rank()))
		cw.rec = rec
	}
	if p.d.cfg.Overload != nil {
		cw.sh = p.attachOverload(cw)
	}
	if p.r.World().FaultsEnabled() {
		for _, w := range lockWins {
			w.SetReroute(cw.rerouteGhost)
		}
		if activeWin != nil {
			activeWin.SetReroute(cw.rerouteGhost)
		}
	}
	// The active window holds a standing lockall from every user
	// process: fence and PSCW translate onto it without any ghost
	// participation in synchronization (Section III-C-1).
	if activeWin != nil {
		activeWin.LockAll(mpi.AssertNone)
	}
	return cw, buf
}
