package core

import (
	"testing"

	"repro/internal/mpi"
)

func TestSegmentBindingSplitCorrectness(t *testing.T) {
	// One node, 8 ranks, 4 ghosts -> 4 users. Rank 0 allocates a large
	// window; a single big accumulate must be split across ghosts and
	// still produce the exact arithmetic result.
	const n = 256 // doubles
	var got []float64
	cfg := Config{NumGhosts: 4, Binding: BindSegment}
	w := casperRun(t, casperConfig(8, 8), cfg, func(p *Process) {
		c := p.CommWorld()
		size := 0
		if p.Rank() == 0 {
			size = 8 * n
		}
		win, buf := p.WinAllocate(c, size, nil)
		c.Barrier()
		if p.Rank() == 1 {
			src := make([]float64, n)
			for i := range src {
				src[i] = float64(i)
			}
			win.LockAll(mpi.AssertNone)
			win.Accumulate(mpi.PutFloat64s(src), 0, 0, mpi.TypeOf(mpi.Float64, n), mpi.OpSum)
			win.UnlockAll()
		}
		c.Barrier()
		if p.Rank() == 0 {
			got = mpi.GetFloat64s(buf)
		}
	})
	for i := 0; i < n; i++ {
		if got[i] != float64(i) {
			t.Fatalf("element %d = %v", i, got[i])
		}
	}
	// The 2048-byte extent spans all 4 ghost chunks; every ghost must
	// have processed pieces.
	ghostRanks := []int{4, 5, 6, 7}
	busy := 0
	for _, g := range ghostRanks {
		if w.RankByID(g).Stats().SoftwareAMs > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d ghosts serviced the split accumulate", busy)
	}
}

func TestSegmentBindingVectorSplit(t *testing.T) {
	// A strided vector whose blocks straddle chunk boundaries.
	const n = 64
	var got []float64
	cfg := Config{NumGhosts: 2, Binding: BindSegment}
	casperRun(t, casperConfig(8, 8), cfg, func(p *Process) {
		c := p.CommWorld()
		size := 0
		if p.Rank() == 0 {
			size = 8 * n
		}
		win, buf := p.WinAllocate(c, size, nil)
		c.Barrier()
		if p.Rank() == 1 {
			// 8 blocks of 4 doubles, stride 8: elements 0-3, 8-11, ...
			src := make([]float64, 32)
			for i := range src {
				src[i] = float64(i + 1)
			}
			win.LockAll(mpi.AssertNone)
			win.Put(mpi.PutFloat64s(src), 0, 0, mpi.Vector(mpi.Float64, 8, 4, 8))
			win.UnlockAll()
		}
		c.Barrier()
		if p.Rank() == 0 {
			got = mpi.GetFloat64s(buf)
		}
	})
	si := 0
	for b := 0; b < 8; b++ {
		for e := 0; e < 4; e++ {
			si++
			if got[b*8+e] != float64(si) {
				t.Fatalf("block %d elem %d = %v, want %d", b, e, got[b*8+e], si)
			}
		}
		for e := 4; e < 8; e++ {
			if got[b*8+e] != 0 {
				t.Fatalf("gap element written: block %d elem %d = %v", b, e, got[b*8+e])
			}
		}
	}
}

func TestSegmentBindingGetSplit(t *testing.T) {
	const n = 128
	var got []float64
	cfg := Config{NumGhosts: 4, Binding: BindSegment}
	casperRun(t, casperConfig(8, 8), cfg, func(p *Process) {
		c := p.CommWorld()
		size := 0
		if p.Rank() == 0 {
			size = 8 * n
		}
		win, buf := p.WinAllocate(c, size, nil)
		if p.Rank() == 0 {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(i * 3)
			}
			copy(buf, mpi.PutFloat64s(vals))
		}
		c.Barrier()
		if p.Rank() == 2 {
			dst := make([]byte, 8*n)
			win.LockAll(mpi.AssertNone)
			win.Get(dst, 0, 0, mpi.TypeOf(mpi.Float64, n))
			win.UnlockAll()
			got = mpi.GetFloat64s(dst)
		}
		c.Barrier()
	})
	for i := range got {
		if got[i] != float64(i*3) {
			t.Fatalf("element %d = %v", i, got[i])
		}
	}
}

func TestSegmentBindingAtomicsSingleChunk(t *testing.T) {
	// Fetch-and-op under segment binding routes to the byte owner.
	var old int64
	cfg := Config{NumGhosts: 2, Binding: BindSegment}
	casperRun(t, casperConfig(6, 6), cfg, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 32, nil)
		if p.Rank() == 1 {
			copy(buf[16:], mpi.PutInt64(5))
		}
		c.Barrier()
		if p.Rank() == 0 {
			res := make([]byte, 8)
			win.LockAll(mpi.AssertNone)
			win.FetchAndOp(mpi.PutInt64(10), res, 1, 16, mpi.Int64, mpi.OpSum)
			win.Flush(1)
			old = mpi.GetInt64(res)
			win.UnlockAll()
		}
		c.Barrier()
		if p.Rank() == 1 && mpi.GetInt64(buf[16:]) != 15 {
			t.Errorf("target = %d", mpi.GetInt64(buf[16:]))
		}
	})
	if old != 5 {
		t.Fatalf("old = %d", old)
	}
}

func TestMultiGhostAccumulatesPreserveAtomicityWithRankBinding(t *testing.T) {
	// Many origins accumulate to one target with 4 ghosts; rank binding
	// must keep all of them on one ghost so the validator stays clean
	// (the validator runs in casperRun) and the sum is exact.
	var sum float64
	const perOrigin = 16
	casperRun(t, casperConfig(16, 8), Config{NumGhosts: 4}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() != 0 {
			win.LockAll(mpi.AssertNone)
			for i := 0; i < perOrigin; i++ {
				win.Accumulate(mpi.PutFloat64s([]float64{1}), 0, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
			}
			win.UnlockAll()
		}
		c.Barrier()
		if p.Rank() == 0 {
			sum = mpi.GetFloat64s(buf)[0]
		}
	})
	if want := float64(7 * perOrigin); sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestUnsafeNoBindingTriggersValidator(t *testing.T) {
	// Ablation (DESIGN.md decision 1/5): random distribution of
	// accumulates across ghosts breaks MPI's atomicity/ordering; the
	// validator must flag it. This is exactly the hazard Section III-B
	// binding prevents.
	mcfg := casperConfig(8, 8)
	ccfg := Config{NumGhosts: 4, UnsafeNoBinding: true}
	w, err := mpi.Run(mcfg, func(r *mpi.Rank) {
		p, ghost := Init(r, ccfg)
		if ghost {
			return
		}
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() != 0 {
			win.LockAll(mpi.AssertNone)
			for i := 0; i < 64; i++ {
				win.Accumulate(mpi.PutFloat64s([]float64{1}), 0, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
			}
			win.UnlockAll()
		}
		c.Barrier()
		p.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Validator().Ok() {
		t.Fatal("validator missed the unbound multi-ghost accumulate hazard")
	}
}

func TestDynamicRandomSpreadsPutsAfterFlush(t *testing.T) {
	// After a flush (static-binding-free interval), random balancing
	// sends puts to multiple ghosts; before it, static binding pins
	// them to one.
	ghostAMs := func(lb LoadBalance) []int64 {
		cfg := Config{NumGhosts: 4, LoadBalance: lb}
		w := casperRun(t, casperConfig(8, 8), cfg, func(p *Process) {
			c := p.CommWorld()
			win, _ := p.WinAllocate(c, 1024, nil)
			c.Barrier()
			if p.Rank() == 1 {
				win.Lock(0, mpi.LockShared, mpi.AssertNone)
				win.Put(mpi.PutFloat64s([]float64{1}), 0, 0, mpi.Scalar(mpi.Float64))
				win.Flush(0) // opens the dynamic interval
				for i := 0; i < 64; i++ {
					win.Put(mpi.PutFloat64s([]float64{1}), 0, 8*(i%8), mpi.Scalar(mpi.Float64))
				}
				win.Unlock(0)
			}
			c.Barrier()
		})
		var out []int64
		for _, g := range []int{4, 5, 6, 7} {
			out = append(out, w.RankByID(g).Stats().SoftwareAMs)
		}
		return out
	}
	static := ghostAMs(LBStatic)
	random := ghostAMs(LBRandom)
	busyStatic, busyRandom := 0, 0
	for i := range static {
		if static[i] > 0 {
			busyStatic++
		}
		if random[i] > 0 {
			busyRandom++
		}
	}
	if busyStatic != 1 {
		t.Fatalf("static binding used %d ghosts (%v), want 1", busyStatic, static)
	}
	if busyRandom < 3 {
		t.Fatalf("random balancing used %d ghosts (%v), want >= 3", busyRandom, random)
	}
}

func TestDynamicAccumulatesStayBound(t *testing.T) {
	// Even with random balancing, accumulates must stay on the bound
	// ghost (ordering/atomicity, III-B-3).
	cfg := Config{NumGhosts: 4, LoadBalance: LBRandom}
	w := casperRun(t, casperConfig(8, 8), cfg, func(p *Process) {
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 64, nil)
		c.Barrier()
		if p.Rank() == 1 {
			win.Lock(0, mpi.LockShared, mpi.AssertNone)
			win.Accumulate(mpi.PutFloat64s([]float64{1}), 0, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
			win.Flush(0)
			for i := 0; i < 32; i++ {
				win.Accumulate(mpi.PutFloat64s([]float64{1}), 0, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
			}
			win.Unlock(0)
		}
		c.Barrier()
	})
	busy := 0
	for _, g := range []int{4, 5, 6, 7} {
		if w.RankByID(g).Stats().SoftwareAMs > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("accumulates leaked to %d ghosts", busy)
	}
}

func TestOpCountingBalancesMixedLoad(t *testing.T) {
	// Accumulates pin to the bound ghost; op-counting must steer the
	// puts toward the other ghosts (Fig. 7(b) mechanism).
	cfg := Config{NumGhosts: 2, LoadBalance: LBOpCounting}
	w := casperRun(t, casperConfig(8, 8), cfg, func(p *Process) {
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 1024, nil)
		c.Barrier()
		if p.Rank() == 1 {
			win.Lock(0, mpi.LockShared, mpi.AssertNone)
			win.Put(mpi.PutFloat64s([]float64{1}), 0, 0, mpi.Scalar(mpi.Float64))
			win.Flush(0)
			for i := 0; i < 40; i++ {
				win.Accumulate(mpi.PutFloat64s([]float64{1}), 0, 0,
					mpi.Scalar(mpi.Float64), mpi.OpSum)
				win.Put(mpi.PutFloat64s([]float64{1}), 0, 8, mpi.Scalar(mpi.Float64))
			}
			win.Unlock(0)
		}
		c.Barrier()
	})
	g0 := w.RankByID(6).Stats().SoftwareAMs // node ghosts at local 6? see below
	g1 := w.RankByID(7).Stats().SoftwareAMs
	total := g0 + g1
	if total != 81 {
		t.Fatalf("total ghost AMs = %d (g0=%d g1=%d)", total, g0, g1)
	}
	// Balance: neither ghost should have more than ~65% of the load.
	hi := g0
	if g1 > hi {
		hi = g1
	}
	if float64(hi)/float64(total) > 0.65 {
		t.Fatalf("op-counting failed to balance: %d vs %d", g0, g1)
	}
}

func TestByteCountingBalancesUnevenSizes(t *testing.T) {
	// Large puts to one ghost inflate its byte count; byte-counting
	// must route later puts away (Fig. 7(c) mechanism).
	cfg := Config{NumGhosts: 2, LoadBalance: LBByteCounting}
	w := casperRun(t, casperConfig(8, 8), cfg, func(p *Process) {
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 1<<16, nil)
		c.Barrier()
		if p.Rank() == 1 {
			win.Lock(0, mpi.LockShared, mpi.AssertNone)
			win.Put(mpi.PutFloat64s([]float64{1}), 0, 0, mpi.Scalar(mpi.Float64))
			win.Flush(0)
			big := make([]float64, 512)
			small := make([]float64, 2)
			for i := 0; i < 16; i++ {
				win.Put(mpi.PutFloat64s(big), 0, 0, mpi.TypeOf(mpi.Float64, 512))
				win.Put(mpi.PutFloat64s(small), 0, 8192, mpi.TypeOf(mpi.Float64, 2))
			}
			win.Unlock(0)
		}
		c.Barrier()
	})
	b0 := w.RankByID(6).Stats().BytesIn
	b1 := w.RankByID(7).Stats().BytesIn
	total := b0 + b1
	hi := b0
	if b1 > hi {
		hi = b1
	}
	if float64(hi)/float64(total) > 0.75 {
		t.Fatalf("byte-counting failed to balance bytes: %d vs %d", b0, b1)
	}
}

// TestSplitterPartitionProperty checks, for random datatypes and
// displacements, that segment splitting partitions the operation
// exactly: pieces are disjoint, ordered, within one chunk each, aligned
// to whole elements, and cover precisely the bytes of the original
// datatype with the original payload.
func TestSplitterPartitionProperty(t *testing.T) {
	var cw *casperWin
	mcfg := casperConfig(12, 12)
	w, err := mpi.NewWorld(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Launch(func(r *mpi.Rank) {
		p, ghost := Init(r, Config{NumGhosts: 4, Binding: BindSegment})
		if ghost {
			return
		}
		size := 0
		if p.Rank() == 0 {
			size = 8 * 512
		}
		win, _ := p.WinAllocate(p.CommWorld(), size, nil)
		if p.Rank() == 1 {
			cw = win.(*casperWin)
		}
		p.CommWorld().Barrier()
		p.Finalize()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if cw == nil {
		t.Fatal("no wrapper captured")
	}

	rng := w.Engine().Rand()
	ti := &cw.layout[0]
	for trial := 0; trial < 500; trial++ {
		count := 1 + rng.Intn(6)
		blockLen := 1 + rng.Intn(6)
		stride := blockLen + rng.Intn(4)
		dt := mpi.Vector(mpi.Float64, count, blockLen, stride)
		maxDisp := ti.size - dt.Extent()
		if maxDisp < 0 {
			continue
		}
		disp := (rng.Intn(maxDisp+1) / 8) * 8 // element aligned
		src := make([]byte, dt.Size())
		for i := range src {
			src[i] = byte(rng.Intn(256))
		}
		abs := ti.base + disp
		pieces := cw.splitBySegments(ti, abs, dt, src, nil)

		// Reconstruct the byte map from pieces and compare.
		type span struct{ lo, hi int }
		var want []span
		dt.Blocks(func(off, n int) { want = append(want, span{abs + off, abs + off + n}) })
		covered := map[int]byte{}
		packed := 0
		prevEnd := -1
		for _, pc := range pieces {
			if !pc.dt.Contiguous() {
				t.Fatalf("trial %d: noncontiguous piece", trial)
			}
			n := pc.dt.Size()
			if pc.disp < prevEnd {
				t.Fatalf("trial %d: pieces out of order", trial)
			}
			prevEnd = pc.disp + n
			// Piece must fit within one chunk.
			if pc.disp/ti.chunk != (pc.disp+n-1)/ti.chunk {
				// The last chunk absorbs the remainder.
				if cw.ownerOf(ti, pc.disp) != ti.ghosts[len(ti.ghosts)-1] {
					t.Fatalf("trial %d: piece [%d,%d) spans chunks (chunk=%d)",
						trial, pc.disp, pc.disp+n, ti.chunk)
				}
			}
			if cw.ownerOf(ti, pc.disp) != pc.ghost {
				t.Fatalf("trial %d: piece assigned to wrong ghost", trial)
			}
			for i := 0; i < n; i++ {
				if _, dup := covered[pc.disp+i]; dup {
					t.Fatalf("trial %d: byte %d covered twice", trial, pc.disp+i)
				}
				covered[pc.disp+i] = pc.src[i]
			}
			packed += n
		}
		if packed != dt.Size() {
			t.Fatalf("trial %d: pieces carry %d bytes, want %d", trial, packed, dt.Size())
		}
		// Every datatype byte covered with the right payload byte.
		si := 0
		for _, sp := range want {
			for b := sp.lo; b < sp.hi; b++ {
				v, ok := covered[b]
				if !ok {
					t.Fatalf("trial %d: byte %d not covered", trial, b)
				}
				if v != src[si] {
					t.Fatalf("trial %d: byte %d carries wrong payload", trial, b)
				}
				si++
				delete(covered, b)
			}
		}
		if len(covered) != 0 {
			t.Fatalf("trial %d: %d stray bytes covered", trial, len(covered))
		}
	}
}

func TestRouteBoundsChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-window op")
		}
	}()
	mcfg := casperConfig(4, 4)
	w, _ := mpi.NewWorld(mcfg)
	w.Launch(func(r *mpi.Rank) {
		p, ghost := Init(r, Config{NumGhosts: 1})
		if ghost {
			return
		}
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.LockAll(mpi.AssertNone)
			win.Put(mpi.PutFloat64s([]float64{1, 2}), 1, 0, mpi.TypeOf(mpi.Float64, 2))
			win.UnlockAll()
		}
		c.Barrier()
	})
	w.Run()
}
