package core

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/netmodel"
)

// casperConfig builds an mpi.Config sized for n total ranks at ppn.
func casperConfig(n, ppn int) mpi.Config {
	nodes := (n + ppn - 1) / ppn
	return mpi.Config{
		Machine:  cluster.Machine{Nodes: nodes, CoresPerNode: 24, NUMAPerNode: 2},
		N:        n,
		PPN:      ppn,
		Net:      netmodel.CrayXC30(),
		Seed:     11,
		Validate: true,
	}
}

// casperRun launches a world where every rank passes through core.Init;
// user ranks run main and then Finalize.
func casperRun(t *testing.T, mcfg mpi.Config, ccfg Config, main func(p *Process)) *mpi.World {
	t.Helper()
	w, err := mpi.Run(mcfg, func(r *mpi.Rank) {
		p, ghost := Init(r, ccfg)
		if ghost {
			return
		}
		main(p)
		p.Finalize()
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v := w.Validator(); v != nil && !v.Ok() {
		t.Fatalf("validator: %v", v.Violations())
	}
	return w
}

func TestGhostLocalIndicesSpreadOverNUMA(t *testing.T) {
	cases := []struct {
		ppn, numa, per, g int
		want              []int
	}{
		{24, 2, 12, 2, []int{11, 23}},
		{24, 2, 12, 4, []int{10, 11, 22, 23}},
		{16, 2, 12, 2, []int{11, 15}}, // second domain only partially occupied
		{24, 1, 24, 1, []int{23}},
		{4, 2, 12, 2, []int{2, 3}}, // all ranks in first domain
	}
	for _, c := range cases {
		got := ghostLocalIndices(c.ppn, c.numa, c.per, c.g)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ghostLocalIndices(ppn=%d numa=%d per=%d g=%d) = %v, want %v",
				c.ppn, c.numa, c.per, c.g, got, c.want)
		}
	}
}

func TestInitCarvesUserWorld(t *testing.T) {
	// 2 nodes x 8 ranks, 2 ghosts per node -> 12 user processes.
	sizes := map[int]int{}
	casperRun(t, casperConfig(16, 8), Config{NumGhosts: 2}, func(p *Process) {
		sizes[p.Rank()] = p.Size()
		if p.CommWorld().Size() != p.Size() {
			t.Error("CommWorld size mismatch")
		}
	})
	if len(sizes) != 12 {
		t.Fatalf("%d user processes ran, want 12", len(sizes))
	}
	for r, s := range sizes {
		if s != 12 {
			t.Fatalf("rank %d saw size %d", r, s)
		}
		if r < 0 || r >= 12 {
			t.Fatalf("unexpected user rank %d", r)
		}
	}
}

func TestInitRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{{NumGhosts: 0}, {NumGhosts: 8}} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			w, _ := mpi.NewWorld(casperConfig(8, 8))
			w.Launch(func(r *mpi.Rank) { Init(r, cfg) })
			w.Run()
		}()
	}
}

func TestBoundGhostPrefersSameNUMA(t *testing.T) {
	w, err := mpi.NewWorld(casperConfig(24, 24))
	if err != nil {
		t.Fatal(err)
	}
	var d *deployment
	w.Launch(func(r *mpi.Rank) {
		if r.Rank() == 0 {
			dd, err := buildDeployment(r, Config{NumGhosts: 2}.withDefaults())
			if err != nil {
				t.Errorf("buildDeployment: %v", err)
				return
			}
			d = dd
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Ghosts on a 24-core node with 2 NUMA domains: local 11 and 23.
	if !reflect.DeepEqual(d.ghostsByNode[0], []int{11, 23}) {
		t.Fatalf("ghosts = %v", d.ghostsByNode[0])
	}
	place := d.place
	for _, u := range d.usersByNode[0] {
		b := d.boundGhost(u)
		if !place.SameNUMA(u, b) {
			t.Errorf("user %d (numa %d) bound to ghost %d (numa %d)",
				u, place.NUMA(u), b, place.NUMA(b))
		}
	}
}

func TestBoundGhostBalancesWithinNUMA(t *testing.T) {
	w, _ := mpi.NewWorld(casperConfig(24, 24))
	var d *deployment
	w.Launch(func(r *mpi.Rank) {
		if r.Rank() == 0 {
			d, _ = buildDeployment(r, Config{NumGhosts: 4}.withDefaults())
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 ghosts: two per NUMA domain; users of each domain spread over
	// both of their domain's ghosts.
	counts := map[int]int{}
	for _, u := range d.usersByNode[0] {
		counts[d.boundGhost(u)]++
	}
	if len(counts) != 4 {
		t.Fatalf("users bound to %d distinct ghosts, want 4 (counts %v)", len(counts), counts)
	}
}

func TestUserLocalIndexContiguous(t *testing.T) {
	w, _ := mpi.NewWorld(casperConfig(16, 8))
	var d *deployment
	w.Launch(func(r *mpi.Rank) {
		if r.Rank() == 0 {
			d, _ = buildDeployment(r, Config{NumGhosts: 2}.withDefaults())
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 2; node++ {
		for i, u := range d.usersByNode[node] {
			if d.userLocalIndex(u) != i {
				t.Fatalf("node %d user %d localIndex = %d, want %d",
					node, u, d.userLocalIndex(u), i)
			}
		}
	}
	if d.maxUsers != 6 {
		t.Fatalf("maxUsers = %d, want 6", d.maxUsers)
	}
}

func TestFinalizeShutsDownGhostsCleanly(t *testing.T) {
	// The run must terminate without deadlock: ghosts exit their loops.
	w := casperRun(t, casperConfig(8, 4), Config{NumGhosts: 1}, func(p *Process) {
		p.CommWorld().Barrier()
	})
	if w == nil {
		t.Fatal("no world")
	}
}

func TestZeroSizeWindowsEverywhere(t *testing.T) {
	// Every rank allocating zero bytes must still produce a working
	// window object (ops are simply illegal, but sync calls work).
	casperRun(t, casperConfig(6, 3), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 0, nil)
		if len(buf) != 0 {
			t.Errorf("buf len %d", len(buf))
		}
		win.Fence(mpi.ModeNoPrecede)
		win.Fence(mpi.ModeNoSucceed)
		c.Barrier()
		win.Free()
	})
}

func TestSingleUserPerNode(t *testing.T) {
	// ppn=2 with 1 ghost leaves exactly one user per node — the Fig. 5
	// deployment shape; everything must still work.
	var got float64
	casperRun(t, casperConfig(4, 2), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		if p.Size() != 2 {
			t.Fatalf("users = %d", p.Size())
		}
		win, buf := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.Lock(1, mpi.LockExclusive, mpi.AssertNone)
			win.Put(mpi.PutFloat64s([]float64{3}), 1, 0, mpi.Scalar(mpi.Float64))
			win.Unlock(1)
		}
		c.Barrier()
		if p.Rank() == 1 {
			got = mpi.GetFloat64s(buf)[0]
		}
	})
	if got != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestMoreGhostsThanUsersPerNode(t *testing.T) {
	// 4 ghosts serving 2 users per node.
	var sum float64
	casperRun(t, casperConfig(12, 6), Config{NumGhosts: 4}, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() != 0 {
			win.LockAll(mpi.AssertNone)
			win.Accumulate(mpi.PutFloat64s([]float64{1}), 0, 0,
				mpi.Scalar(mpi.Float64), mpi.OpSum)
			win.UnlockAll()
		}
		c.Barrier()
		if p.Rank() == 0 {
			sum = mpi.GetFloat64s(buf)[0]
		}
	})
	if sum != 3 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestParseEpochs(t *testing.T) {
	e, err := parseEpochs("fence, lock")
	if err != nil || !e.fence || !e.lock || e.pscw || e.lockall {
		t.Fatalf("parse = %+v, %v", e, err)
	}
	if _, err := parseEpochs("bogus"); err == nil {
		t.Fatal("bogus epoch accepted")
	}
	d, _ := parseEpochs(DefaultEpochs)
	if !d.fence || !d.pscw || !d.lock || !d.lockall || !d.needActive() {
		t.Fatal("default epochs incomplete")
	}
	if d.String() != "fence,pscw,lockall,lock" {
		t.Fatalf("String = %q", d.String())
	}
	lockOnly, _ := parseEpochs("lock")
	if lockOnly.needActive() {
		t.Fatal("lock-only should not need the active window")
	}
}

func TestConfigStringers(t *testing.T) {
	if BindRank.String() != "rank" || BindSegment.String() != "segment" {
		t.Error("binding strings")
	}
	for lb, want := range map[LoadBalance]string{
		LBStatic: "static", LBRandom: "random",
		LBOpCounting: "op-counting", LBByteCounting: "byte-counting",
	} {
		if lb.String() != want {
			t.Errorf("%d.String() = %q", int(lb), lb.String())
		}
	}
}

func TestDoubleFinalizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mcfg := casperConfig(4, 4)
	w, _ := mpi.NewWorld(mcfg)
	w.Launch(func(r *mpi.Rank) {
		p, ghost := Init(r, Config{NumGhosts: 1})
		if ghost {
			return
		}
		p.Finalize()
		p.Finalize()
	})
	w.Run()
}
