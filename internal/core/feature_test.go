package core

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func TestAsyncConfigOffBypassesGhosts(t *testing.T) {
	// With async_config=off the window is plain MPI: ops hit the user
	// target directly and stall behind its compute.
	var originTime sim.Duration
	w := casperRun(t, casperConfig(4, 2), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 64, mpi.Info{InfoAsyncConfig: "off"})
		c.Barrier()
		if p.Rank() == 0 {
			start := p.Now()
			win.LockAll(mpi.AssertNone)
			win.Accumulate(mpi.PutFloat64s([]float64{1}), 1, 0,
				mpi.Scalar(mpi.Float64), mpi.OpSum)
			win.UnlockAll()
			originTime = p.Now().Sub(start)
		} else if p.Rank() == 1 {
			p.Compute(150 * sim.Microsecond)
		}
		c.Barrier()
	})
	if originTime < 100*sim.Microsecond {
		t.Fatalf("async_config=off should stall like plain MPI, got %v", originTime)
	}
	// No ghost should have serviced anything: world ranks 1 and 3 are
	// the ghosts (ppn=2, 1 ghost -> local index 1).
	for _, g := range []int{1, 3} {
		if n := w.RankByID(g).Stats().SoftwareAMs; n != 0 {
			t.Fatalf("ghost %d serviced %d AMs despite async_config=off", g, n)
		}
	}
}

func TestAsyncConfigOnAndOffWindowsCoexist(t *testing.T) {
	var offSum, onSum float64
	casperRun(t, casperConfig(4, 2), Config{NumGhosts: 1}, func(p *Process) {
		c := p.CommWorld()
		wOff, bufOff := p.WinAllocate(c, 8, mpi.Info{InfoAsyncConfig: "off"})
		wOn, bufOn := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			wOff.LockAll(mpi.AssertNone)
			wOff.Accumulate(mpi.PutFloat64s([]float64{3}), 1, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
			wOff.UnlockAll()
			wOn.LockAll(mpi.AssertNone)
			wOn.Accumulate(mpi.PutFloat64s([]float64{4}), 1, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
			wOn.UnlockAll()
		}
		c.Barrier()
		if p.Rank() == 1 {
			offSum = mpi.GetFloat64s(bufOff)[0]
			onSum = mpi.GetFloat64s(bufOn)[0]
		}
	})
	if offSum != 3 || onSum != 4 {
		t.Fatalf("off=%v on=%v", offSum, onSum)
	}
}

func TestAsyncConfigBadValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	mcfg := casperConfig(4, 4)
	w, _ := mpi.NewWorld(mcfg)
	w.Launch(func(r *mpi.Rank) {
		p, ghost := Init(r, Config{NumGhosts: 1})
		if ghost {
			return
		}
		p.WinAllocate(p.CommWorld(), 8, mpi.Info{InfoAsyncConfig: "maybe"})
	})
	w.Run()
}

func TestInfoBindingOverride(t *testing.T) {
	// Deployment default is rank binding; the window overrides to
	// segment binding, so a wide accumulate splits across ghosts.
	cfg := Config{NumGhosts: 4, Binding: BindRank}
	w := casperRun(t, casperConfig(8, 8), cfg, func(p *Process) {
		c := p.CommWorld()
		size := 0
		if p.Rank() == 0 {
			size = 8 * 256
		}
		win, _ := p.WinAllocate(c, size, mpi.Info{InfoBinding: "segment"})
		c.Barrier()
		if p.Rank() == 1 {
			src := make([]float64, 256)
			win.LockAll(mpi.AssertNone)
			win.Accumulate(mpi.PutFloat64s(src), 0, 0, mpi.TypeOf(mpi.Float64, 256), mpi.OpSum)
			win.UnlockAll()
		}
		c.Barrier()
	})
	busy := 0
	for _, g := range []int{4, 5, 6, 7} {
		if w.RankByID(g).Stats().SoftwareAMs > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("segment-binding override ignored: %d ghosts busy", busy)
	}
}

func TestInfoLoadBalanceOverride(t *testing.T) {
	cfg := Config{NumGhosts: 4, LoadBalance: LBStatic}
	w := casperRun(t, casperConfig(8, 8), cfg, func(p *Process) {
		c := p.CommWorld()
		win, _ := p.WinAllocate(c, 1024, mpi.Info{InfoLoadBalance: "random"})
		c.Barrier()
		if p.Rank() == 1 {
			win.Lock(0, mpi.LockShared, mpi.AssertNone)
			win.Put(mpi.PutFloat64s([]float64{1}), 0, 0, mpi.Scalar(mpi.Float64))
			win.Flush(0)
			for i := 0; i < 64; i++ {
				win.Put(mpi.PutFloat64s([]float64{1}), 0, 0, mpi.Scalar(mpi.Float64))
			}
			win.Unlock(0)
		}
		c.Barrier()
	})
	busy := 0
	for _, g := range []int{4, 5, 6, 7} {
		if w.RankByID(g).Stats().SoftwareAMs > 0 {
			busy++
		}
	}
	if busy < 3 {
		t.Fatalf("random load-balance override ignored: %d ghosts busy", busy)
	}
}

func TestInfoBadOverridesPanic(t *testing.T) {
	for _, info := range []mpi.Info{
		{InfoBinding: "diagonal"},
		{InfoLoadBalance: "vibes"},
	} {
		info := info
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", info)
				}
			}()
			mcfg := casperConfig(4, 4)
			w, _ := mpi.NewWorld(mcfg)
			w.Launch(func(r *mpi.Rank) {
				p, ghost := Init(r, Config{NumGhosts: 1})
				if ghost {
					return
				}
				p.WinAllocate(p.CommWorld(), 8, info)
			})
			w.Run()
		}()
	}
}

func TestSelfOpLocalCorrectAndFast(t *testing.T) {
	measure := func(local bool) (sim.Duration, float64, int64) {
		var el sim.Duration
		var got float64
		var count int64
		cfg := Config{NumGhosts: 1, SelfOpLocal: local}
		casperRun(t, casperConfig(4, 2), cfg, func(p *Process) {
			c := p.CommWorld()
			win, buf := p.WinAllocate(c, 64, nil)
			c.Barrier()
			if p.Rank() == 0 {
				win.LockAll(mpi.AssertNone)
				start := p.Now()
				win.Put(mpi.PutFloat64s([]float64{8.5}), 0, 8, mpi.Scalar(mpi.Float64))
				dst := make([]byte, 8)
				win.Get(dst, 0, 8, mpi.Scalar(mpi.Float64))
				win.FlushAll()
				el = p.Now().Sub(start)
				win.UnlockAll()
				got = mpi.GetFloat64s(dst)[0]
				if mpi.GetFloat64s(buf)[1] != 8.5 {
					t.Error("self put not visible in own buffer")
				}
				count = p.Stats().SelfLocal
			}
			c.Barrier()
		})
		return el, got, count
	}
	slowT, slowV, slowN := measure(false)
	fastT, fastV, fastN := measure(true)
	if slowV != 8.5 || fastV != 8.5 {
		t.Fatalf("values: redirected=%v local=%v", slowV, fastV)
	}
	if slowN != 0 || fastN != 2 {
		t.Fatalf("SelfLocal counters: %d, %d", slowN, fastN)
	}
	if fastT >= slowT {
		t.Fatalf("local self ops (%v) not faster than redirected (%v)", fastT, slowT)
	}
}

func TestSelfAccumulateStillRedirected(t *testing.T) {
	// Accumulates must keep going through the bound ghost even with
	// SelfOpLocal, to preserve ordering with remote accumulates.
	cfg := Config{NumGhosts: 1, SelfOpLocal: true}
	w := casperRun(t, casperConfig(4, 2), cfg, func(p *Process) {
		c := p.CommWorld()
		win, buf := p.WinAllocate(c, 8, nil)
		c.Barrier()
		if p.Rank() == 0 {
			win.LockAll(mpi.AssertNone)
			win.Accumulate(mpi.PutFloat64s([]float64{5}), 0, 0, mpi.Scalar(mpi.Float64), mpi.OpSum)
			win.UnlockAll()
			if mpi.GetFloat64s(buf)[0] != 5 {
				t.Error("self accumulate lost")
			}
			if p.Stats().SelfLocal != 0 {
				t.Error("accumulate taken local")
			}
		}
		c.Barrier()
	})
	if w.RankByID(1).Stats().SoftwareAMs != 1 {
		t.Fatal("self accumulate did not go through the ghost")
	}
}

func TestCasperRGetRPutThroughGhosts(t *testing.T) {
	cfg := Config{NumGhosts: 2, Binding: BindSegment}
	casperRun(t, casperConfig(8, 8), cfg, func(p *Process) {
		c := p.CommWorld()
		size := 0
		if p.Rank() == 0 {
			size = 8 * 128
		}
		win, _ := p.WinAllocate(c, size, nil)
		c.Barrier()
		if p.Rank() == 1 {
			src := make([]float64, 128)
			for i := range src {
				src[i] = float64(i)
			}
			win.LockAll(mpi.AssertNone)
			q := win.RPut(mpi.PutFloat64s(src), 0, 0, mpi.TypeOf(mpi.Float64, 128))
			q.Wait()
			dst := make([]byte, 8*128)
			g := win.RGet(dst, 0, 0, mpi.TypeOf(mpi.Float64, 128))
			g.Wait()
			got := mpi.GetFloat64s(dst)
			for i := range got {
				if got[i] != float64(i) {
					t.Errorf("elem %d = %v", i, got[i])
					break
				}
			}
			win.UnlockAll()
		}
		c.Barrier()
	})
}
