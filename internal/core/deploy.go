package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

// Reserved tags on MPI_COMM_WORLD / COMM_USER_WORLD for Casper's
// internal control traffic.
const (
	tagGhostCmd  = 1 << 20 // user -> ghost commands
	tagPSCWPost  = 1<<20 + 1
	tagPSCWDone  = 1<<20 + 2
	tagShutdown  = 1<<20 + 3
	cmdWinCreate = byte(1)
	cmdShutdown  = byte(2)
	cmdWinFree   = byte(3)
	cmdSucceed   = byte(4) // engine-injected: take over as sequencer (fault worlds)
)

// deployment is the per-rank view of the ghost-process carving performed
// at Init (Section II-A): which world ranks are ghosts, the node-local
// communicator used for shared-memory windows, and COMM_USER_WORLD.
type deployment struct {
	cfg      Config
	place    *cluster.Placement
	world    *mpi.Comm
	nodeComm *mpi.Comm // users + ghosts of this node
	userComm *mpi.Comm // COMM_USER_WORLD (nil on ghosts)

	isGhost      bool
	ghostsByNode [][]int // node -> ghost world ranks
	usersByNode  [][]int // node -> user world ranks
	maxUsers     int     // max users on any node (internal window count, III-A)

	// journal is the replayable command log enabling sequencer
	// succession; nil in fault-free worlds (see journal.go).
	journal *cmdJournal
}

// ghostLocalIndices returns the node-local indices (0..ppn-1) reserved
// for ghost processes: the last core of each NUMA domain first, so that
// ghosts are spread across NUMA domains and each can bind to the user
// ranks of its own domain (topology awareness, Section II-A).
func ghostLocalIndices(ppn, numaPerNode, coresPerNUMA, g int) []int {
	if g > ppn {
		g = ppn
	}
	picked := make(map[int]bool, g)
	var out []int
	// Walk domains round-robin, taking from the back of each domain's
	// occupied cores.
	for round := 0; len(out) < g && round <= ppn; round++ {
		for d := 0; d < numaPerNode && len(out) < g; d++ {
			start := d * coresPerNUMA
			end := (d + 1) * coresPerNUMA
			if end > ppn {
				end = ppn
			}
			idx := end - 1 - round
			if idx < start || idx < 0 {
				continue
			}
			if !picked[idx] {
				picked[idx] = true
				out = append(out, idx)
			}
		}
	}
	sort.Ints(out)
	return out
}

// partitionGhosts computes the ghost/user partition for every node from
// the placement alone — the deterministic rule both Init and external
// harnesses (via GhostRanks) must agree on.
func partitionGhosts(place *cluster.Placement, numGhosts int) (ghostsByNode, usersByNode [][]int, maxUsers int, err error) {
	m := place.Machine()
	nodes := place.NodesUsed()
	ghostsByNode = make([][]int, nodes)
	usersByNode = make([][]int, nodes)
	perNUMA := m.CoresPerNUMA()
	for node := 0; node < nodes; node++ {
		ranks := place.NodeRanks(node)
		ghostIdx := ghostLocalIndices(len(ranks), m.NUMAPerNode, perNUMA, numGhosts)
		isG := make(map[int]bool, len(ghostIdx))
		for _, i := range ghostIdx {
			isG[i] = true
		}
		for i, wr := range ranks {
			if isG[i] {
				ghostsByNode[node] = append(ghostsByNode[node], wr)
			} else {
				usersByNode[node] = append(usersByNode[node], wr)
			}
		}
		if len(usersByNode[node]) == 0 && len(ranks) > 0 {
			return nil, nil, 0, fmt.Errorf("casper: node %d has no user processes", node)
		}
		if n := len(usersByNode[node]); n > maxUsers {
			maxUsers = n
		}
	}
	return ghostsByNode, usersByNode, maxUsers, nil
}

// GhostRanks returns, per node, the world ranks Init will carve out as
// ghost processes for the given machine and placement — the same rule
// buildDeployment applies. Harnesses use it to aim fault plans (crash or
// stall a specific ghost) without reimplementing the carving.
func GhostRanks(m cluster.Machine, n, ppn, numGhosts int) ([][]int, error) {
	place, err := cluster.NewPlacement(m, n, ppn)
	if err != nil {
		return nil, err
	}
	if numGhosts >= ppn {
		return nil, fmt.Errorf("casper: %d ghosts per node leaves no user processes (ppn %d)",
			numGhosts, ppn)
	}
	ghosts, _, _, err := partitionGhosts(place, numGhosts)
	return ghosts, err
}

// buildDeployment computes the ghost/user partition deterministically on
// every rank from the placement alone.
func buildDeployment(r *mpi.Rank, cfg Config) (*deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	place := r.World().Placement()
	if cfg.NumGhosts >= place.PPN() {
		return nil, fmt.Errorf("casper: %d ghosts per node leaves no user processes (ppn %d)",
			cfg.NumGhosts, place.PPN())
	}
	d := &deployment{cfg: cfg, place: place, world: r.CommWorld()}
	var err error
	d.ghostsByNode, d.usersByNode, d.maxUsers, err = partitionGhosts(place, cfg.NumGhosts)
	if err != nil {
		return nil, err
	}
	node := place.Node(r.Rank())
	for _, g := range d.ghostsByNode[node] {
		if g == r.Rank() {
			d.isGhost = true
		}
	}
	return d, nil
}

// Init deploys Casper on this rank. On user processes it returns a
// *Process (which implements mpi.Env) and isGhost=false. On ghost
// processes it runs the ghost service loop — the process stays parked
// inside MPI servicing redirected RMA until a user calls Finalize — and
// then returns (nil, true).
func Init(r *mpi.Rank, cfg Config) (*Process, bool) {
	cfg = cfg.withDefaults()
	d, err := buildDeployment(r, cfg)
	if err != nil {
		panic(err)
	}
	world := d.world
	node := d.place.Node(r.Rank())
	// Node communicator (users + ghosts of the node), ordered by world
	// rank: offsets within the shared segment follow this order.
	d.nodeComm = world.Split(node, r.Rank())
	// COMM_USER_WORLD: ghosts get no communicator.
	color := 0
	if d.isGhost {
		color = -1
	}
	d.userComm = world.Split(color, r.Rank())

	// Fault worlds log every command so the sequencer role can migrate
	// after a crash; fault-free worlds keep the seed command path.
	if r.World().FaultsEnabled() {
		d.journal = journalFor(r, d)
	}

	if d.isGhost {
		ghostLoop(r, d)
		return nil, true
	}
	// User processes monitor ghost health so routing can fail over after
	// a detected ghost crash. No-op unless a fault plan is installed.
	var ghosts []int
	for _, gs := range d.ghostsByNode {
		ghosts = append(ghosts, gs...)
	}
	r.World().TrackHealth(ghosts)
	if appCrashesPlanned(r) {
		// Recoverable app crashes must be confirmed by the detector
		// before the recovery pipeline can start, so the user ranks are
		// monitored too.
		var users []int
		for _, us := range d.usersByNode {
			users = append(users, us...)
		}
		r.World().TrackHealth(users)
	}
	return &Process{r: r, d: d}, false
}

// sequencer returns the ghost that orders all commands: the one with
// the smallest world rank. Users send commands to it; it forwards them
// to every other ghost, so all ghosts observe commands in one global
// order even when disjoint user groups create windows concurrently.
func (d *deployment) sequencer() int {
	best := -1
	for _, gs := range d.ghostsByNode {
		for _, g := range gs {
			if best == -1 || g < best {
				best = g
			}
		}
	}
	return best
}

// ghostLoop is the ghost process service loop (Section II-A): wait for
// commands inside MPI_RECV so the MPI runtime can progress any RMA
// operations targeting this ghost, join window-creation collectives on
// command, exit on shutdown. The sequencer ghost additionally forwards
// every command to the other ghosts, in order.
func ghostLoop(r *mpi.Rank, d *deployment) {
	// Windows this ghost participates in, keyed by their creation
	// command payload and indexed by per-key creation order — the same
	// (key, index) the user side derives, so windows may be freed in
	// any order.
	wins := map[string][]*ghostWinSet{}
	if j := d.journal; j != nil {
		ghostLoopJournal(r, d, j, wins)
		j.exited[r.Rank()] = true
		return
	}
	isSeq := r.Rank() == d.sequencer()
	for {
		data, _ := d.world.Recv(mpi.AnySource, tagGhostCmd)
		if len(data) == 0 {
			panic("casper: empty ghost command")
		}
		if isSeq {
			for _, gs := range d.ghostsByNode {
				for _, g := range gs {
					if g != r.Rank() {
						d.world.Send(g, tagGhostCmd, data)
					}
				}
			}
		}
		if handleGhostCmd(r, d, wins, data) {
			return
		}
	}
}

// ghostLoopJournal is the ghost service loop of fault worlds: every
// received command message is a doorbell that executes exactly one
// logged entry, the acting-sequencer role is checked dynamically, and a
// cmdSucceed doorbell hands the role over (see journal.go). In worlds
// where the sequencer never dies the message flow — payload bytes, send
// order, and costs — is identical to the legacy loop above.
func ghostLoopJournal(r *mpi.Rank, d *deployment, j *cmdJournal, wins map[string][]*ghostWinSet) {
	for {
		data, st := d.world.Recv(mpi.AnySource, tagGhostCmd)
		if len(data) == 0 {
			panic("casper: empty ghost command")
		}
		if data[0] == cmdSucceed {
			if j.takeover(r, d, wins) {
				return
			}
			continue
		}
		if j.seqRank == r.Rank() {
			if e := j.popPending(st.Source); e != nil {
				j.order(e)
				for _, gs := range d.ghostsByNode {
					for _, g := range gs {
						if g != r.Rank() {
							d.world.Send(g, tagGhostCmd, e.data)
						}
					}
				}
			}
		}
		if e := j.take(r.Rank()); e != nil {
			if handleGhostCmd(r, d, wins, e.data) {
				return
			}
		}
	}
}

// handleGhostCmd executes one ghost command; reports whether the
// service loop should exit (shutdown).
func handleGhostCmd(r *mpi.Rank, d *deployment, wins map[string][]*ghostWinSet, data []byte) bool {
	switch data[0] {
	case cmdShutdown:
		return true
	case cmdWinCreate:
		epochs, users, err := parseWinCmd(data[1:])
		if err != nil {
			panic(err)
		}
		key := string(data[1:])
		set := ghostJoinWindow(r, d, epochs, users)
		wins[key] = append(wins[key], &set)
	case cmdWinFree:
		key, idx, err := parseFreeCmd(data[1:])
		if err != nil {
			panic(err)
		}
		sets := wins[key]
		if idx >= len(sets) || sets[idx] == nil {
			panic(fmt.Sprintf("casper: free of unknown window instance %d", idx))
		}
		set := sets[idx]
		sets[idx] = nil
		set.free()
	default:
		panic(fmt.Sprintf("casper: unknown ghost command %d", data[0]))
	}
	return false
}

// ghostWinSet holds the ghost's handles of one Casper window's internal
// windows, for the free protocol.
type ghostWinSet struct {
	shared   *mpi.Win
	lockWins []*mpi.Win
	active   *mpi.Win
}

// free releases the internal windows in the same order the user side
// does in casperWin.Free.
func (s ghostWinSet) free() {
	for _, w := range s.lockWins {
		w.Free()
	}
	if s.active != nil {
		s.active.Free()
	}
	s.shared.Free()
}

// encodeWinCmd/parseWinCmd carry the window-creation parameters to the
// ghosts: the epochs_used hint and the window's user world ranks (the
// window may live on any subset of COMM_USER_WORLD).
func encodeWinCmd(epochs epochSet, users []int) []byte {
	var b strings.Builder
	b.WriteByte(cmdWinCreate)
	b.WriteString(epochs.String())
	b.WriteByte(0)
	for i, u := range users {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", u)
	}
	return []byte(b.String())
}

// encodeFreeCmd/parseFreeCmd address a window by its creation key and
// per-key creation index.
func encodeFreeCmd(key string, idx int) []byte {
	return []byte(fmt.Sprintf("%c%d\x1f%s", cmdWinFree, idx, key))
}

func parseFreeCmd(payload []byte) (string, int, error) {
	parts := strings.SplitN(string(payload), "\x1f", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("casper: malformed free command")
	}
	idx, err := strconv.Atoi(parts[0])
	if err != nil {
		return "", 0, fmt.Errorf("casper: bad free index %q", parts[0])
	}
	return parts[1], idx, nil
}

func parseWinCmd(payload []byte) (epochSet, []int, error) {
	parts := strings.SplitN(string(payload), "\x00", 2)
	if len(parts) != 2 {
		return epochSet{}, nil, fmt.Errorf("casper: malformed window command")
	}
	epochs, err := parseEpochs(parts[0])
	if err != nil {
		return epochSet{}, nil, err
	}
	var users []int
	for _, f := range strings.Split(parts[1], ",") {
		v, err := strconv.Atoi(f)
		if err != nil {
			return epochSet{}, nil, fmt.Errorf("casper: bad rank %q in window command", f)
		}
		users = append(users, v)
	}
	return epochs, users, nil
}

// winTopology is the per-window view of which user world ranks live on
// which node, shared by users and ghosts when constructing a window.
type winTopology struct {
	usersByNode map[int][]int // node -> window user world ranks (ascending)
	maxUsers    int           // max window users on any node
	allGhosts   []int         // every ghost world rank, ascending
}

func (d *deployment) topologyFor(users []int) winTopology {
	t := winTopology{usersByNode: map[int][]int{}}
	for _, u := range users {
		node := d.place.Node(u)
		t.usersByNode[node] = append(t.usersByNode[node], u)
	}
	for _, us := range t.usersByNode {
		sort.Ints(us)
		if len(us) > t.maxUsers {
			t.maxUsers = len(us)
		}
	}
	for _, gs := range d.ghostsByNode {
		t.allGhosts = append(t.allGhosts, gs...)
	}
	sort.Ints(t.allGhosts)
	return t
}

// nodeWinRanks returns the members of the per-node shared window for
// this window: the window's users on the node plus the node's ghosts.
func (t winTopology) nodeWinRanks(d *deployment, node int) []int {
	ranks := append([]int(nil), t.usersByNode[node]...)
	ranks = append(ranks, d.ghostsByNode[node]...)
	sort.Ints(ranks)
	return ranks
}

// internalRanks returns the members of the internal overlapping
// windows: every window user plus every ghost.
func (t winTopology) internalRanks(users []int) []int {
	ranks := append([]int(nil), users...)
	ranks = append(ranks, t.allGhosts...)
	sort.Ints(ranks)
	return ranks
}

// windowLocalIndex returns the position of worldRank among the window's
// users on its node (the i of "the ith user process", III-A).
func (t winTopology) windowLocalIndex(d *deployment, worldRank int) int {
	for i, u := range t.usersByNode[d.place.Node(worldRank)] {
		if u == worldRank {
			return i
		}
	}
	panic(fmt.Sprintf("casper: rank %d not a user of this window", worldRank))
}

// ghostJoinWindow mirrors, on the ghost side, the collective window
// construction the user processes perform in Process.WinAllocate. The
// two sides must stay in lockstep.
func ghostJoinWindow(r *mpi.Rank, d *deployment, epochs epochSet, users []int) ghostWinSet {
	topo := d.topologyFor(users)
	node := d.place.Node(r.Rank())
	var set ghostWinSet
	// 1. Node shared window; ghosts contribute zero bytes but gain
	// load/store access to the whole node segment (Fig. 2).
	nodeComm := r.CommFromGroup(topo.nodeWinRanks(d, node))
	shared, _ := r.WinAllocateShared(nodeComm, 0, nil)
	set.shared = shared
	root := shared.Region().Root()
	// 2. Internal overlapping windows over users + all ghosts: the
	// ghost exposes the entire node segment in each.
	internal := r.CommFromGroup(topo.internalRanks(users))
	for i := 0; i < d.lockWindowCount(epochs, topo.maxUsers); i++ {
		set.lockWins = append(set.lockWins, r.WinCreate(internal, root, nil))
	}
	if epochs.needActive() {
		set.active = r.WinCreate(internal, root, nil)
	}
	// 3. The user-visible window is over the users' communicator only;
	// ghosts do not participate.
	return set
}

// lockWindowCount returns how many per-user-process overlapping windows
// are created (Section III-A): one per window user process on the
// fullest node when lock epochs are declared, one when the unsafe
// shared-lock-window mode is forced, zero otherwise.
func (d *deployment) lockWindowCount(epochs epochSet, maxUsers int) int {
	if !epochs.lock {
		return 0
	}
	if d.cfg.UnsafeSharedLockWindow {
		return 1
	}
	return maxUsers
}

// ghostsOf returns the ghost world ranks of the node hosting world rank.
func (d *deployment) ghostsOf(worldRank int) []int {
	return d.ghostsByNode[d.place.Node(worldRank)]
}

// userLocalIndex returns the position of worldRank among the user
// processes of its node (the i in "the ith user process", III-A).
func (d *deployment) userLocalIndex(worldRank int) int {
	users := d.usersByNode[d.place.Node(worldRank)]
	for i, u := range users {
		if u == worldRank {
			return i
		}
	}
	panic(fmt.Sprintf("casper: world rank %d is not a user process", worldRank))
}

// boundGhost returns the statically bound ghost (world rank) of a user
// process under rank binding: prefer ghosts in the target's NUMA domain,
// balance within the preferred set by local index (topology-aware
// binding, Section II-A).
func (d *deployment) boundGhost(worldRank int) int {
	ghosts := d.ghostsOf(worldRank)
	var sameNUMA []int
	for _, g := range ghosts {
		if d.place.SameNUMA(g, worldRank) {
			sameNUMA = append(sameNUMA, g)
		}
	}
	pool := ghosts
	if len(sameNUMA) > 0 {
		pool = sameNUMA
	}
	return pool[d.userLocalIndex(worldRank)%len(pool)]
}
