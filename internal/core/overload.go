package core

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Overload-adaptive rebinding. The paper's static binding (III-B-1)
// pins every user target to one ghost, so a skewed workload can funnel
// a node's whole AM load through a single ghost while its siblings
// idle. The rebalancer closes that gap: a periodic sweep reads every
// ghost's queue depth and service-time EWMA (mpi.Rank.BacklogEstimate)
// and migrates target bindings from the hottest ghost to the coldest —
// the dynamic load balancing the paper defers as future work, done
// under the same correctness rules as static binding.
//
// Correctness hinges on the single-server-per-target invariant that
// static binding provides: all accumulates addressing a target are
// applied by ONE rank, which serializes them and keeps them element-
// atomic (III-B). A rebinding therefore commits per TARGET, at an
// instant when that target has no operation in flight: the new server
// is staged as pending and adopted only when the target's in-flight
// count returns to zero (checked by the op observer at each op's
// terminal event). Every service interval under the old server has
// fully ended before any operation routes to the new one, so no two
// servers ever apply accumulates to the same bytes concurrently —
// and MPI-3's per-(origin, target) accumulate ordering is trivially
// preserved, since the switch is a full serialization point. In-flight
// counts return to zero at every flush generation (an epoch boundary)
// and usually far more often, so pending moves commit quickly.
// Migrations never start inside an open lock epoch — the epoch's ghost
// locks pin the binding until Unlock. When every ghost of a node is
// saturated the node degrades to original-mode target-side progress
// (operations go to the target user process itself, via the same
// per-target commit) until the ghosts drain.
//
// All sweep machinery runs as background events in engine context:
// it can never extend a run, and with Config.Overload nil none of it
// exists — the seed code paths are untouched.

// OverloadStats counts rebalancer decisions across a world.
type OverloadStats struct {
	Migrations   int64 // bindings moved to a colder ghost
	DeferredBusy int64 // migrations staged pending: target had in-flight ops
	DeferredLock int64 // migrations deferred: target inside an open lock epoch
	Saturations  int64 // node degradations to target-side progress
	Restores     int64 // degraded nodes restored to ghost progress
}

// rebalancer is the world-global sweep driver; one per mpi.World,
// created when the first overload-enabled window registers.
type rebalancer struct {
	p     *Process // any process; used for world/engine/placement access
	cfg   OverloadConfig
	wins  []*winShared // registration order
	stats OverloadStats
	armed bool

	// Load sampling state: per ghost world rank, the depth integral at
	// the previous sweep, and this sweep's memoized average backlog (a
	// ghost may serve several windows; its delta is taken once).
	lastInteg map[int]sim.Duration
	avg       map[int]sim.Duration
}

const rebalancerKey = "casper.overload.rebalancer"

// winShared is the per-window overload state shared by every rank's
// casperWin handle of the same window (keyed by creation command and
// index, like the ghost free protocol).
type winShared struct {
	reb *rebalancer
	cw  *casperWin // representative handle; layouts are identical

	server    map[int]int         // user target -> committed server (internal rank; selfInternal = degraded)
	pending   map[int]int         // user target -> staged next server, -1 = revert to static binding
	handover  map[int]*sim.Signal // user target -> origins parked awaiting a pending commit
	inflight  []int               // per user target: routed ops not yet terminal
	lockHolds []int               // per user target: open lock epochs (any origin)
	degraded  map[int]bool
	degHold   map[int]int  // consecutive drained sweeps of a degraded node (restore hysteresis)
	routed    []int64      // per user target: cumulative routed op count (migration decisions)
	everDeg   map[int]bool // nodes degraded at any point (flush coverage)

	nodes       []int         // sorted distinct nodes of the layout
	nodeTargets map[int][]int // node -> user targets, ascending
	freed       bool
}

// attachOverload wires a freshly created casperWin into the overload
// layer: the shared per-window state, the op observer on the internal
// windows, and the world rebalancer (armed on first registration).
// Runs during WinAllocate, in proc context.
func (p *Process) attachOverload(cw *casperWin) *winShared {
	world := p.r.World()
	if world.Sharded() {
		// The sweep driver mutates bindings across the whole node set
		// from one background event stream — world-global state the
		// shard engines cannot share.
		panic("casper: overload rebalancing is not supported under sharded execution (set Config.NoShardedSim)")
	}
	reb := world.SharedState(rebalancerKey, func() interface{} {
		return &rebalancer{
			p:         p,
			cfg:       p.d.cfg.Overload.withDefaults(),
			lastInteg: map[int]sim.Duration{},
		}
	}).(*rebalancer)

	key := "casper.overload.win/" + cw.cmdKey + "#" + fmt.Sprint(cw.cmdIdx)
	sh := world.SharedState(key, func() interface{} {
		nt := cw.comm.Size()
		s := &winShared{
			reb:         reb,
			cw:          cw,
			server:      map[int]int{},
			pending:     map[int]int{},
			handover:    map[int]*sim.Signal{},
			inflight:    make([]int, nt),
			lockHolds:   make([]int, nt),
			degraded:    map[int]bool{},
			degHold:     map[int]int{},
			routed:      make([]int64, nt),
			everDeg:     map[int]bool{},
			nodeTargets: map[int][]int{},
		}
		for t := range cw.layout {
			node := cw.layout[t].node
			if _, ok := s.nodeTargets[node]; !ok {
				s.nodes = append(s.nodes, node)
			}
			s.nodeTargets[node] = append(s.nodeTargets[node], t)
		}
		sort.Ints(s.nodes)
		reb.wins = append(reb.wins, s)
		// The observer fires in engine context at each op's terminal
		// state; a pending server change commits at the first instant
		// the target's in-flight count returns to zero.
		obs := func(origin, target, disp int) {
			if t := s.userTargetFor(target, disp); t >= 0 {
				s.inflight[t]--
				if s.inflight[t] == 0 {
					if g, ok := s.pending[t]; ok {
						s.commit(t, g)
					}
				}
			}
		}
		for _, w := range cw.lockWins {
			w.SetOpObserver(obs)
		}
		if cw.active != nil {
			cw.active.SetOpObserver(obs)
		}
		return s
	}).(*winShared)

	if !reb.armed {
		reb.armed = true
		world.Engine().AfterBG(reb.cfg.Interval, reb.tick)
	}
	return sh
}

// userTargetFor maps an op's final internal-comm target rank and
// absolute segment displacement back to the user target it addressed
// (the inverse of route's translation; same scan as rerouteGhost).
func (s *winShared) userTargetFor(internalRank, disp int) int {
	cw := s.cw
	node := cw.p.d.place.Node(cw.internal.WorldRank(internalRank))
	fallback := -1
	for _, t := range s.nodeTargets[node] {
		ti := &cw.layout[t]
		if fallback < 0 {
			fallback = t
		}
		end := ti.base + ti.size
		if ti.size == 0 {
			end = ti.base + 1
		}
		if disp >= ti.base && disp < end {
			return t
		}
	}
	return fallback
}

// setServer stages target t's effective server; g == -1 reverts to the
// static binding. The change commits immediately when t has nothing in
// flight, and is otherwise left pending for the op observer to commit
// at t's next quiescent instant — so a server change never overlaps
// service under the old server (see the header comment). Reports
// whether the change committed now.
func (sh *winShared) setServer(t, g int) bool {
	if sh.inflight[t] != 0 {
		sh.pending[t] = g
		return false
	}
	sh.commit(t, g)
	return true
}

func (sh *winShared) commit(t, g int) {
	if g < 0 {
		delete(sh.server, t)
	} else {
		sh.server[t] = g
	}
	delete(sh.pending, t)
	if sig := sh.handover[t]; sig != nil {
		delete(sh.handover, t)
		sig.Broadcast()
	}
}

// awaitHandover parks the calling origin while target t has a staged
// server change. Routing its new operation to the old server would
// keep the target busy forever under sustained traffic (the commit
// needs a quiescent instant), while routing to the new one would break
// the single-server invariant — so the issue briefly waits out the
// drain: the in-flight operations reach their terminal events, the op
// observer commits the change, and every parked origin resumes against
// the new server. The one excluded case is a change away from a
// self-routed (degraded) target: the target process itself may be the
// issuer there, and parking it would stall the drain it is waiting
// for; those revert lazily at a natural quiescent instant instead.
// Runs in proc context.
func (sh *winShared) awaitHandover(p *Process, t int) {
	ti := &sh.cw.layout[t]
	for {
		if _, ok := sh.pending[t]; !ok {
			return
		}
		if cur, ok := sh.server[t]; ok && cur == ti.selfInternal {
			return
		}
		sig := sh.handover[t]
		if sig == nil {
			sig = &sim.Signal{}
			sh.handover[t] = sig
		}
		sig.Wait(p.r.Proc(), "overload: draining target for binding handover")
	}
}

// serverOf resolves target t's destination server: the staged one when
// a change is pending (so decisions see the future binding), else the
// committed one, else the static binding.
func (sh *winShared) serverOf(t int, ti *tinfo) int {
	if g, ok := sh.pending[t]; ok {
		if g < 0 {
			return ti.bound
		}
		return g
	}
	if g, ok := sh.server[t]; ok {
		return g
	}
	return ti.bound
}

// boundGhostFor resolves the effective rank binding of target t: the
// committed server when one is installed, the static binding otherwise.
// Degraded targets route to the target user process itself
// (original-mode progress) — but only for operations riding the active
// window's standing lockall, where per-target lock state is created
// lazily; inside explicit lock epochs the ghosts are already locked, so
// degraded routing falls back to the static binding (Lock additionally
// stages a revert of the degraded server, see window.go).
func (cw *casperWin) boundGhostFor(t int, ti *tinfo, onActive bool) int {
	sh := cw.sh
	if sh == nil {
		return ti.bound
	}
	g := ti.bound
	if s, ok := sh.server[t]; ok {
		g = s
	}
	if g == ti.selfInternal {
		if !onActive {
			return ti.bound
		}
		cw.p.stats.Degraded++
	}
	return g
}

// tick is the periodic sweep, scheduled as a background event so it
// can never extend a run.
func (reb *rebalancer) tick() {
	reb.sweep()
	reb.p.r.World().Engine().AfterBG(reb.cfg.Interval, reb.tick)
}

func (reb *rebalancer) sweep() {
	reb.avg = map[int]sim.Duration{}
	for _, sh := range reb.wins {
		if sh.freed {
			continue
		}
		for _, node := range sh.nodes {
			reb.sweepNode(sh, node)
		}
	}
}

// ghostLoad is one ghost's observed backlog at sweep time.
type ghostLoad struct {
	internal int // internal-comm rank
	world    int
	backlog  sim.Duration
}

// loadOf estimates one ghost's average backlog over the last sweep
// interval: the delta of its queue-depth time integral divided by the
// interval (= average queue depth), times its smoothed per-AM service
// cost. Instantaneous depth is useless here — it collapses to zero at
// every flush boundary and spikes during issue bursts, making the
// rebalancer chase sampling noise instead of sustained load.
func (reb *rebalancer) loadOf(wr int) sim.Duration {
	if v, ok := reb.avg[wr]; ok {
		return v
	}
	rk := reb.p.r.World().RankByID(wr)
	integ := rk.LoadIntegral()
	delta := integ - reb.lastInteg[wr]
	reb.lastInteg[wr] = integ
	avgDepth := float64(delta) / float64(reb.cfg.Interval)
	v := sim.Duration(avgDepth * rk.ServiceEWMA())
	reb.avg[wr] = v
	return v
}

// sweepNode examines one node of one window: drop server entries at
// dead ghosts, handle saturation/restore, then migrate at most
// MaxMovesPerSweep bindings from the hottest ghost to the coldest.
func (reb *rebalancer) sweepNode(sh *winShared, node int) {
	cw := sh.cw
	world := cw.p.r.World()
	targets := sh.nodeTargets[node]
	if len(targets) == 0 {
		return
	}
	ti0 := &cw.layout[targets[0]]

	var loads []ghostLoad
	for _, g := range ti0.ghosts {
		wr := cw.internal.WorldRank(g)
		if world.HealthFailed(wr) {
			// Dead ghost: drop any server entry still pointing at it; the
			// health failover path owns rerouting from here.
			for _, t := range targets {
				if s, ok := sh.server[t]; ok && s == g {
					sh.setServer(t, -1)
				}
				if p, ok := sh.pending[t]; ok && p == g {
					sh.pending[t] = -1
				}
			}
			continue
		}
		loads = append(loads, ghostLoad{internal: g, world: wr,
			backlog: reb.loadOf(wr)})
	}
	if len(loads) == 0 {
		return // node lost every ghost; PR 1's failover handles it
	}

	if sh.degraded[node] {
		drained := true
		for _, l := range loads {
			if l.backlog > reb.cfg.SaturateThreshold/4 {
				drained = false
				break
			}
		}
		if !drained {
			sh.degHold[node] = 0
			return
		}
		// Hysteresis: restore only after several consecutive drained
		// sweeps, so a node does not flap between degraded and ghost
		// progress at every queue dip.
		sh.degHold[node]++
		if sh.degHold[node] >= 4 {
			sh.degraded[node] = false
			sh.degHold[node] = 0
			for _, t := range targets {
				ti := &cw.layout[t]
				if sh.serverOf(t, ti) == ti.selfInternal {
					sh.setServer(t, -1)
				}
			}
			reb.stats.Restores++
			reb.trace("restore", node, loads[0].world)
		}
		return
	}

	saturated := true
	for _, l := range loads {
		if l.backlog < reb.cfg.SaturateThreshold {
			saturated = false
			break
		}
	}
	if saturated {
		// Every ghost of the node is saturated: degrade to target-side
		// progress, per target, skipping targets pinned by an open lock
		// epoch. Each switch commits at the target's next quiescent
		// instant, so no ordering is lost and nothing deadlocks.
		moved := false
		for _, t := range targets {
			if sh.lockHolds[t] != 0 {
				continue
			}
			sh.setServer(t, cw.layout[t].selfInternal)
			moved = true
		}
		if moved {
			sh.degraded[node] = true
			sh.everDeg[node] = true
			sh.degHold[node] = 0
			reb.stats.Saturations++
			reb.trace("saturate", node, loads[0].world)
		}
		return
	}

	if len(loads) < 2 || cw.binding == BindSegment {
		// Segment binding routes by chunk owner; rank migration has no
		// effect there.
		return
	}

	// A sustained queue on some ghost is the TRIGGER for rebalancing;
	// the DECISION of what to move comes from per-target cumulative
	// arrival counts. Queue readings oscillate with issue bursts and
	// flush drains — using them to pick moves creates a feedback loop
	// where the rebalancer manufactures the imbalance it then chases.
	// Arrival counts are stable under a stationary workload: when the
	// per-ghost arrival loads are already balanced, no queue transient
	// can cause a move.
	maxBack := sim.Duration(0)
	for _, l := range loads {
		if l.backlog > maxBack {
			maxBack = l.backlog
		}
	}
	if maxBack < reb.cfg.MigrateThreshold {
		return
	}

	idxOf := map[int]int{}
	for i, l := range loads {
		idxOf[l.internal] = i
	}
	bindOf := func(t int) (int, bool) {
		i, live := idxOf[sh.serverOf(t, &cw.layout[t])]
		return i, live
	}
	loadR := make([]int64, len(loads))
	for _, t := range targets {
		if i, ok := bindOf(t); ok {
			loadR[i] += sh.routed[t]
		}
	}

	moves := 0
	for moves < reb.cfg.MaxMovesPerSweep {
		hot, cold := 0, 0
		for i := range loadR {
			if loadR[i] > loadR[hot] {
				hot = i
			}
			if loadR[i] < loadR[cold] {
				cold = i
			}
		}
		// Move only under a real arrival imbalance (hot ≥ 1.5× cold).
		if hot == cold || loadR[hot]*2 < loadR[cold]*3 {
			return
		}
		// Best single move: the hot ghost's target with the largest
		// arrival count that still shrinks the hot-cold gap.
		diff := loadR[hot] - loadR[cold]
		best, bestRate := -1, int64(0)
		for _, t := range targets {
			if i, ok := bindOf(t); !ok || i != hot {
				continue
			}
			r := sh.routed[t]
			if r > diff || r <= bestRate || r == 0 {
				continue
			}
			if sh.lockHolds[t] != 0 {
				// Migration inside an open lock epoch would change
				// which ghost orders the epoch's accumulates; defer to
				// the epoch boundary (III-B's correctness rule).
				reb.stats.DeferredLock++
				continue
			}
			best, bestRate = t, r
		}
		if best < 0 {
			return
		}
		if !sh.setServer(best, loads[cold].internal) {
			// The move still happens, but commits only at the target's
			// next quiescent instant (at latest, the next flush).
			reb.stats.DeferredBusy++
		}
		loadR[hot] -= bestRate
		loadR[cold] += bestRate
		reb.stats.Migrations++
		reb.trace("rebind", loads[hot].world, loads[cold].world)
		moves++
	}
}

func (reb *rebalancer) trace(kind string, rank, peer int) {
	w := reb.p.r.World()
	if t := w.Tracer(); t.Enabled() {
		t.RecordFault(trace.Fault{Kind: kind, Rank: rank, Peer: peer, At: w.Engine().Now()})
	}
}

// OverloadStats returns the rebalancer's decision counters for this
// process's world (zero when Config.Overload is nil or no window has
// been created yet).
func (p *Process) OverloadStats() OverloadStats {
	return overloadStatsOf(p.r.World())
}

// VisitOverloadStats calls fn with the world's rebalancer counters,
// if an overload rebalancer ever ran on it — for harnesses that only
// hold the finished *mpi.World.
func VisitOverloadStats(w *mpi.World, fn func(OverloadStats)) {
	v := w.SharedState(rebalancerKey, func() interface{} { return (*rebalancer)(nil) })
	if reb, ok := v.(*rebalancer); ok && reb != nil {
		fn(reb.stats)
	}
}

func overloadStatsOf(w *mpi.World) OverloadStats {
	v := w.SharedState(rebalancerKey, func() interface{} { return (*rebalancer)(nil) })
	if reb, ok := v.(*rebalancer); ok && reb != nil {
		return reb.stats
	}
	return OverloadStats{}
}
