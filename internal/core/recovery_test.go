package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Total-ghost-fault-tolerance regressions: killing the sequencer ghost
// (the lowest ghost rank, which orders every deployment command) at the
// nastiest instants — mid lock epoch, mid window construction — must
// leave user-visible data bit-identical to the fault-free run, with the
// succession and mid-epoch lock-reclamation machinery visibly engaged.

// recoveryWorld is the smallest world where succession, same-node
// rebinding and cross-node degradation can all occur: 2 nodes x (2
// users + 2 ghosts). Users are world ranks 0,1,4,5; ghosts 2,3 (node 0)
// and 6,7 (node 1); the sequencer is ghost 2.
const (
	recUsers  = 4
	recGhosts = 2
	recPPN    = recUsers/2 + recGhosts
	recN      = 2 * recPPN
)

// recoveryLockloop cycles shared-lock epochs over rotating targets with
// commutative accumulates, holding the first epoch open far past the
// failure detector's grace period and issuing again after the dwell —
// so a ghost killed during the dwell is detected mid-epoch and the
// post-dwell accumulate must re-acquire locks on a surviving ghost.
// Returns this rank's settled table.
func recoveryLockloop(p *Process) []byte {
	c := p.CommWorld()
	n := c.Size()
	const words, iters = 4, 6
	win, local := p.WinAllocate(c, 8*words, mpi.Info{InfoEpochsUsed: EpochLock})
	c.Barrier()
	for it := 0; it < iters; it++ {
		// +1 keeps the long-dwell epoch (it==0) off the self target,
		// whose ops take the local fast path and hold no ghost locks.
		t := (c.Rank() + it + 1) % n
		win.Lock(t, mpi.LockShared, mpi.AssertNone)
		for wd := 0; wd < words; wd++ {
			v := int64(c.Rank()*1000 + it*10 + wd)
			win.Accumulate(mpi.PutInt64(v), t, wd*8, mpi.Scalar(mpi.Int64), mpi.OpSum)
		}
		win.Flush(t)
		if it == 0 {
			p.Compute(250 * sim.Microsecond) // detector confirms mid-epoch
			win.Accumulate(mpi.PutInt64(int64(c.Rank()+1)), t, 0, mpi.Scalar(mpi.Int64), mpi.OpSum)
			win.Flush(t)
		}
		win.Unlock(t)
	}
	c.Barrier()
	sig := append([]byte(nil), local...)
	win.Free()
	return sig
}

// recoveryRun executes the lockloop under an optional fault plan and
// returns the per-rank tables plus the world summary.
func recoveryRun(t *testing.T, plan *fault.Plan) ([][]byte, mpi.WorldSummary) {
	t.Helper()
	mcfg := casperConfig(recN, recPPN)
	mcfg.Fault = plan
	data := make([][]byte, recUsers)
	w, err := mpi.Run(mcfg, func(r *mpi.Rank) {
		p, ghost := Init(r, Config{NumGhosts: recGhosts})
		if ghost {
			return
		}
		data[p.Rank()] = recoveryLockloop(p)
		p.Finalize()
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v := w.Validator(); v != nil && !v.Ok() {
		t.Fatalf("validator: %v", v.Violations())
	}
	return data, w.Summary()
}

func assertSameTables(t *testing.T, got, want [][]byte, what string) {
	t.Helper()
	for r := range want {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("%s: rank %d table %d bytes, want %d", what, r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("%s: rank %d byte %d = %#x, want %#x (not bit-identical)",
					what, r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestSequencerKillMidLockEpochBitIdentical kills the sequencer ghost
// while every origin holds an open lock epoch (the it==0 dwell). The
// next-lowest surviving ghost must take over command ordering, open
// epochs must re-acquire their locks mid-epoch on surviving ghosts, and
// the settled tables must be bit-identical to the fault-free run.
func TestSequencerKillMidLockEpochBitIdentical(t *testing.T) {
	base, _ := recoveryRun(t, nil)
	plan := &fault.Plan{Seed: 9, Crashes: []fault.Crash{
		{Rank: recUsers/2 + 0, At: sim.Time(60 * sim.Microsecond)}, // ghost 2: the sequencer
	}}
	got, sum := recoveryRun(t, plan)
	assertSameTables(t, got, base, "sequencer kill mid-epoch")
	if sum.RanksFailed != 1 {
		t.Fatalf("RanksFailed = %d, want 1", sum.RanksFailed)
	}
	if sum.Successions == 0 {
		t.Fatal("sequencer died but no ghost performed a succession")
	}
	// No EpochRelocks assertion here: epoch open locks every ghost of the
	// target's node, so with a same-node survivor the original lock set
	// already covers the rebound route — relocks only happen when the
	// progress set grows past it (see TestNodeGhostWipeoutMidLockEpoch).
	if sum.LocksReclaimed == 0 {
		t.Fatal("sequencer died holding epoch locks but none were reclaimed")
	}
	if sum.Rebinds == 0 {
		t.Fatal("no origin rebound its routing off the dead sequencer")
	}
}

// TestNodeGhostWipeoutMidLockEpoch kills BOTH ghosts of node 0 — the
// sequencer and its same-node successor — during the dwell. Node 0
// degrades to target-side self progress; epochs still relock and the
// data stays bit-identical.
func TestNodeGhostWipeoutMidLockEpoch(t *testing.T) {
	base, _ := recoveryRun(t, nil)
	plan := &fault.Plan{Seed: 9, Crashes: []fault.Crash{
		{Rank: recUsers/2 + 0, At: sim.Time(60 * sim.Microsecond)},
		{Rank: recUsers/2 + 1, At: sim.Time(90 * sim.Microsecond)},
	}}
	got, sum := recoveryRun(t, plan)
	assertSameTables(t, got, base, "node-0 ghost wipeout")
	if sum.RanksFailed != 2 {
		t.Fatalf("RanksFailed = %d, want 2", sum.RanksFailed)
	}
	if sum.Successions == 0 {
		t.Fatal("no succession after losing both node-0 ghosts")
	}
	if sum.EpochRelocks == 0 {
		t.Fatal("no mid-epoch relock after losing both node-0 ghosts")
	}
}

// TestSequencerKillMidWindowConstruction kills the sequencer so early
// that the deployment's window-creation commands are still in flight:
// the successor must replay the command log so every surviving ghost
// sees the same window order, and the run must still come out
// bit-identical.
func TestSequencerKillMidWindowConstruction(t *testing.T) {
	base, _ := recoveryRun(t, nil)
	plan := &fault.Plan{Seed: 9, Crashes: []fault.Crash{
		{Rank: recUsers/2 + 0, At: sim.Time(2 * sim.Microsecond)},
	}}
	got, sum := recoveryRun(t, plan)
	assertSameTables(t, got, base, "sequencer kill mid-construction")
	if sum.Successions == 0 {
		t.Fatal("sequencer died during construction but no succession happened")
	}
}
