// Package cluster describes the simulated machine: nodes with cores
// grouped into NUMA domains, and the placement of MPI ranks onto them.
//
// Placement is the topology substrate the paper's ghost-process binding
// relies on (Section II-A): Casper queries which ranks share a node,
// which NUMA domain each rank lives in, and binds ghost processes close
// to the user processes they serve.
package cluster

import "fmt"

// Machine describes homogeneous cluster hardware.
type Machine struct {
	Nodes        int // number of compute nodes
	CoresPerNode int // cores on each node
	NUMAPerNode  int // NUMA domains per node (divides CoresPerNode)
}

// Validate reports whether the machine description is self-consistent.
func (m Machine) Validate() error {
	switch {
	case m.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes = %d, must be positive", m.Nodes)
	case m.CoresPerNode <= 0:
		return fmt.Errorf("cluster: CoresPerNode = %d, must be positive", m.CoresPerNode)
	case m.NUMAPerNode <= 0:
		return fmt.Errorf("cluster: NUMAPerNode = %d, must be positive", m.NUMAPerNode)
	case m.CoresPerNode%m.NUMAPerNode != 0:
		return fmt.Errorf("cluster: CoresPerNode %d not divisible by NUMAPerNode %d",
			m.CoresPerNode, m.NUMAPerNode)
	}
	return nil
}

// TotalCores returns the core count of the whole machine.
func (m Machine) TotalCores() int { return m.Nodes * m.CoresPerNode }

// CoresPerNUMA returns the cores in one NUMA domain.
func (m Machine) CoresPerNUMA() int { return m.CoresPerNode / m.NUMAPerNode }

// Placement maps a world of ranks onto a machine in block order: rank r
// occupies core r mod ppn of node r div ppn. This matches the typical
// block-by-node mapping of aprun/mpiexec that the paper assumes (Fig. 1).
type Placement struct {
	m   Machine
	n   int
	ppn int
}

// NewPlacement places n ranks with ppn ranks per node. The last node may
// be partially filled.
func NewPlacement(m Machine, n, ppn int) (*Placement, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	switch {
	case n <= 0:
		return nil, fmt.Errorf("cluster: placing %d ranks", n)
	case ppn <= 0:
		return nil, fmt.Errorf("cluster: ppn = %d", ppn)
	case ppn > m.CoresPerNode:
		return nil, fmt.Errorf("cluster: ppn %d exceeds %d cores per node", ppn, m.CoresPerNode)
	}
	needed := (n + ppn - 1) / ppn
	if needed > m.Nodes {
		return nil, fmt.Errorf("cluster: %d ranks at ppn %d need %d nodes, machine has %d",
			n, ppn, needed, m.Nodes)
	}
	return &Placement{m: m, n: n, ppn: ppn}, nil
}

// MustPlace is NewPlacement but panics on error; for tests and benchmarks
// with known-good parameters.
func MustPlace(m Machine, n, ppn int) *Placement {
	p, err := NewPlacement(m, n, ppn)
	if err != nil {
		panic(err)
	}
	return p
}

// Machine returns the underlying machine description.
func (p *Placement) Machine() Machine { return p.m }

// N returns the number of placed ranks.
func (p *Placement) N() int { return p.n }

// PPN returns the ranks-per-node density.
func (p *Placement) PPN() int { return p.ppn }

// NodesUsed returns how many nodes hold at least one rank.
func (p *Placement) NodesUsed() int { return (p.n + p.ppn - 1) / p.ppn }

func (p *Placement) check(rank int) {
	if rank < 0 || rank >= p.n {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, p.n))
	}
}

// Node returns the node index hosting rank.
func (p *Placement) Node(rank int) int {
	p.check(rank)
	return rank / p.ppn
}

// Core returns the on-node core index of rank.
func (p *Placement) Core(rank int) int {
	p.check(rank)
	return rank % p.ppn
}

// LocalIndex returns rank's position among the ranks of its node
// (identical to Core under block placement, but kept distinct for
// clarity at call sites).
func (p *Placement) LocalIndex(rank int) int { return p.Core(rank) }

// NUMA returns the NUMA domain (within its node) of rank.
func (p *Placement) NUMA(rank int) int {
	return p.Core(rank) / p.m.CoresPerNUMA()
}

// SameNode reports whether two ranks share a node.
func (p *Placement) SameNode(a, b int) bool { return p.Node(a) == p.Node(b) }

// SameNUMA reports whether two ranks share both node and NUMA domain.
func (p *Placement) SameNUMA(a, b int) bool {
	return p.SameNode(a, b) && p.NUMA(a) == p.NUMA(b)
}

// NodeRanks returns the ranks hosted on node, in rank order.
func (p *Placement) NodeRanks(node int) []int {
	lo := node * p.ppn
	if lo >= p.n {
		return nil
	}
	hi := lo + p.ppn
	if hi > p.n {
		hi = p.n
	}
	ranks := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		ranks = append(ranks, r)
	}
	return ranks
}

// MaxRanksPerNode returns the largest number of ranks on any node; Casper
// sizes its internal overlapping-window set by this (Section III-A).
func (p *Placement) MaxRanksPerNode() int {
	if p.n >= p.ppn {
		return p.ppn
	}
	return p.n
}
