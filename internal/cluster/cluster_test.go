package cluster

import (
	"testing"
	"testing/quick"
)

func edison() Machine { return Machine{Nodes: 64, CoresPerNode: 24, NUMAPerNode: 2} }

func TestMachineValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Machine
		ok   bool
	}{
		{"edison", edison(), true},
		{"zero nodes", Machine{0, 24, 2}, false},
		{"zero cores", Machine{4, 0, 2}, false},
		{"zero numa", Machine{4, 24, 0}, false},
		{"indivisible numa", Machine{4, 24, 5}, false},
		{"single core", Machine{1, 1, 1}, true},
	}
	for _, c := range cases {
		if err := c.m.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestMachineDerived(t *testing.T) {
	m := edison()
	if m.TotalCores() != 64*24 {
		t.Errorf("TotalCores = %d", m.TotalCores())
	}
	if m.CoresPerNUMA() != 12 {
		t.Errorf("CoresPerNUMA = %d", m.CoresPerNUMA())
	}
}

func TestPlacementBlockMapping(t *testing.T) {
	p := MustPlace(edison(), 48, 16)
	if p.NodesUsed() != 3 {
		t.Fatalf("NodesUsed = %d, want 3", p.NodesUsed())
	}
	if p.Node(0) != 0 || p.Node(15) != 0 || p.Node(16) != 1 || p.Node(47) != 2 {
		t.Error("block node mapping wrong")
	}
	if p.Core(16) != 0 || p.Core(17) != 1 {
		t.Error("core mapping wrong")
	}
	if p.LocalIndex(17) != 1 {
		t.Error("LocalIndex wrong")
	}
}

func TestPlacementNUMA(t *testing.T) {
	p := MustPlace(edison(), 24, 24)
	if p.NUMA(0) != 0 || p.NUMA(11) != 0 || p.NUMA(12) != 1 || p.NUMA(23) != 1 {
		t.Error("NUMA domain mapping wrong")
	}
	if !p.SameNUMA(0, 11) || p.SameNUMA(11, 12) {
		t.Error("SameNUMA wrong")
	}
}

func TestPlacementSameNode(t *testing.T) {
	p := MustPlace(edison(), 32, 16)
	if !p.SameNode(0, 15) || p.SameNode(15, 16) {
		t.Error("SameNode wrong")
	}
}

func TestNodeRanks(t *testing.T) {
	p := MustPlace(edison(), 20, 16)
	r0 := p.NodeRanks(0)
	if len(r0) != 16 || r0[0] != 0 || r0[15] != 15 {
		t.Errorf("NodeRanks(0) = %v", r0)
	}
	r1 := p.NodeRanks(1)
	if len(r1) != 4 || r1[0] != 16 || r1[3] != 19 {
		t.Errorf("NodeRanks(1) = %v (partial node)", r1)
	}
	if p.NodeRanks(5) != nil {
		t.Error("NodeRanks beyond used nodes should be nil")
	}
}

func TestMaxRanksPerNode(t *testing.T) {
	if got := MustPlace(edison(), 40, 16).MaxRanksPerNode(); got != 16 {
		t.Errorf("MaxRanksPerNode = %d, want 16", got)
	}
	if got := MustPlace(edison(), 5, 16).MaxRanksPerNode(); got != 5 {
		t.Errorf("MaxRanksPerNode = %d, want 5 (fewer ranks than ppn)", got)
	}
}

func TestPlacementErrors(t *testing.T) {
	m := edison()
	cases := []struct {
		name   string
		n, ppn int
	}{
		{"zero ranks", 0, 16},
		{"zero ppn", 8, 0},
		{"ppn exceeds cores", 8, 25},
		{"too many ranks", 64*24 + 1, 24},
	}
	for _, c := range cases {
		if _, err := NewPlacement(m, c.n, c.ppn); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if _, err := NewPlacement(Machine{0, 1, 1}, 1, 1); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestRankRangePanics(t *testing.T) {
	p := MustPlace(edison(), 8, 8)
	for _, bad := range []int{-1, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for rank %d", bad)
				}
			}()
			p.Node(bad)
		}()
	}
}

func TestMustPlacePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPlace did not panic")
		}
	}()
	MustPlace(edison(), 0, 1)
}

// Property: every rank appears in exactly one node's NodeRanks, at
// position LocalIndex, and node/core round-trip to the rank id.
func TestPlacementPartitionProperty(t *testing.T) {
	f := func(nRaw, ppnRaw uint8) bool {
		n := int(nRaw%200) + 1
		ppn := int(ppnRaw%24) + 1
		m := Machine{Nodes: (n+ppn-1)/ppn + 1, CoresPerNode: 24, NUMAPerNode: 2}
		p, err := NewPlacement(m, n, ppn)
		if err != nil {
			return false
		}
		seen := 0
		for node := 0; node < p.NodesUsed(); node++ {
			for i, r := range p.NodeRanks(node) {
				if p.Node(r) != node || p.LocalIndex(r) != i {
					return false
				}
				if r != node*ppn+i {
					return false
				}
				seen++
			}
		}
		return seen == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
