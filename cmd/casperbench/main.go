// Command casperbench regenerates the tables and figures of the Casper
// paper (Si et al., IPDPS 2015) from the simulated reproduction.
//
// Usage:
//
//	casperbench -list
//	casperbench -run fig4a [-csv] [-scale 0.5] [-seed 7]
//	casperbench -all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		run   = flag.String("run", "", "experiment id to run (e.g. fig4a)")
		all   = flag.Bool("all", false, "run every experiment")
		csv   = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		scale = flag.Float64("scale", 1.0, "sweep scale factor (smaller = faster)")
		seed  = flag.Int64("seed", 42, "simulation seed")
		quick = flag.Bool("quick", false, "CI smoke mode: shorthand for -scale 0.12")
	)
	flag.Parse()
	if *quick {
		*scale = 0.12
	}

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-8s %-12s %s\n", e.ID, e.Figure, e.Title)
		}
	case *all:
		for _, e := range bench.All() {
			emit(e, bench.Options{Scale: *scale, Seed: *seed}, *csv)
		}
	case *run != "":
		e, ok := bench.Get(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "casperbench: unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		emit(e, bench.Options{Scale: *scale, Seed: *seed}, *csv)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(e bench.Experiment, o bench.Options, csv bool) {
	res := e.Run(o)
	if csv {
		fmt.Print(res.CSV())
	} else {
		fmt.Print(res.Table())
	}
	fmt.Println()
}
