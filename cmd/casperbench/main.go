// Command casperbench regenerates the tables and figures of the Casper
// paper (Si et al., IPDPS 2015) from the simulated reproduction.
//
// Usage:
//
//	casperbench -list
//	casperbench -run fig4a [-csv] [-scale 0.5] [-seed 7] [-parallel 8]
//	casperbench -run fig5a -shards 4
//	casperbench -all [-sched heap]
//	casperbench -bench fig5a -shards 4 -benchcount 5 -benchout BENCH_fig5a.json
//
// -bench runs one experiment twice — serially and with -parallel
// workers — and writes a JSON perf baseline (wall-clock, events/sec,
// allocs/event, parallel speedup, bit-identity of the two outputs).
// With -benchcount N the serial and parallel measurements repeat N
// times; the baseline's headline blocks hold the median round (by
// events/sec) and the per-round numbers are recorded alongside. With
// -shards > 0 it additionally sweeps the sharded engine at shards
// 1/2/4/8 and records a "sharded" block, failing if any run's output
// differs from the serial engine's. -cpuprofile and -memprofile write
// pprof profiles of the run.
//
// -sched selects the event scheduler for every world: "ladder" (the
// default) or "heap" (the differential-testing oracle the ladder
// queue replaced). Output is byte-identical either way; the flag
// exists to keep that claim one diff away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/sim"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		run        = flag.String("run", "", "experiment id to run (e.g. fig4a)")
		all        = flag.Bool("all", false, "run every experiment")
		csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		scale      = flag.Float64("scale", 1.0, "sweep scale factor (smaller = faster)")
		seed       = flag.Int64("seed", 42, "simulation seed")
		quick      = flag.Bool("quick", false, "CI smoke mode: shorthand for -scale 0.12")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker goroutines (1 = serial)")
		shards     = flag.Int("shards", 0, "sharded simulation: per-node engines driven by up to N worker goroutines (0 = serial engine); output is identical at any value")
		chaosSeed  = flag.Int64("chaosseed", 0, "faultchaos: replay this single chaos seed verbosely (0 = full sweep; implies -run faultchaos)")
		schedName  = flag.String("sched", "ladder", "event scheduler: ladder (default) or heap (the differential-testing oracle)")
		benchID    = flag.String("bench", "", "experiment id to benchmark serial vs -parallel")
		benchCount = flag.Int("benchcount", 1, "with -bench: repeat the serial and parallel measurements N times and report the median round")
		benchOut   = flag.String("benchout", "", "write the -bench JSON baseline to this file (default stdout)")
		allocGate  = flag.String("allocgate", "", "with -bench: fail if allocs/event exceeds this committed baseline JSON by more than 0.05")
		shardGate  = flag.String("shardgate", "", "with -bench -shards: fail if the sharded-4/serial events/sec ratio drops below 1.0 or regresses versus this committed baseline JSON (15% slack)")
		schedGate  = flag.String("schedgate", "", "with -bench: fail if serial events/sec drops more than 15% below this committed baseline JSON (same-host comparison)")
		maxProcs   = flag.Int("gomaxprocs", 0, "set runtime.GOMAXPROCS for the run (0 = inherit; the -bench sharded sweep otherwise runs each point at GOMAXPROCS = its shard count)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file")
	)
	flag.Parse()
	if *quick {
		*scale = 0.12
	}
	sched, err := sim.ParseScheduler(*schedName)
	if err != nil {
		fatalf("casperbench: %v", err)
	}
	bench.SetScheduler(sched)
	if *maxProcs > 0 {
		runtime.GOMAXPROCS(*maxProcs)
	}
	if lim := min(runtime.GOMAXPROCS(0), runtime.NumCPU()); *shards > lim {
		// Not an error: the runs are still bit-identical (the engine
		// clamps its workers to what the hardware can schedule and runs
		// the rest inline), but their wall-clock must never be mistaken
		// for an N-way parallel speedup.
		fmt.Fprintf(os.Stderr,
			"casperbench: warning: -shards %d exceeds the %d schedulable CPUs (GOMAXPROCS %d, NumCPU %d) — shard workers beyond that run inline, so events/sec is an overhead measurement, not a speedup\n",
			*shards, lim, runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	if *chaosSeed > 0 {
		// -chaosseed only means something to faultchaos: a bare
		// invocation implies the replay run, anything else is a mistake
		// the user should hear about rather than a silently ignored flag.
		switch {
		case *run == "" && *benchID == "" && !*all && !*list:
			*run = "faultchaos"
		case *run != "" && *run != "faultchaos":
			fatalf("casperbench: -chaosseed applies only to faultchaos, not -run %s", *run)
		case *benchID != "" && *benchID != "faultchaos":
			fatalf("casperbench: -chaosseed applies only to faultchaos, not -bench %s", *benchID)
		}
	}
	opts := bench.Options{Scale: *scale, Seed: *seed, Parallel: *parallel, ChaosSeed: *chaosSeed, Shards: *shards}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("casperbench: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("casperbench: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatalf("casperbench: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatalf("casperbench: %v", err)
			}
		}()
	}

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-8s %-12s %s\n", e.ID, e.Figure, e.Title)
		}
	case *benchID != "":
		e, ok := bench.Get(*benchID)
		if !ok {
			fatalf("casperbench: unknown experiment %q (try -list)", *benchID)
		}
		if err := runBench(e, opts, benchConfig{
			out:       *benchOut,
			allocGate: *allocGate,
			shardGate: *shardGate,
			schedGate: *schedGate,
			pinned:    *maxProcs,
			count:     *benchCount,
			sched:     sched,
		}); err != nil {
			fatalf("casperbench: %v", err)
		}
	case *all:
		failed := false
		for _, e := range bench.All() {
			failed = emit(e, opts, *csv) || failed
		}
		if failed {
			os.Exit(1)
		}
	case *run != "":
		e, ok := bench.Get(*run)
		if !ok {
			fatalf("casperbench: unknown experiment %q (try -list)", *run)
		}
		if emit(e, opts, *csv) {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// emit renders one experiment. Recovery summaries go to stderr so the
// stdout tables stay byte-comparable across releases; the return value
// reports an invariant violation (the process then exits nonzero).
func emit(e bench.Experiment, o bench.Options, csv bool) bool {
	res := e.Run(o)
	if csv {
		fmt.Print(res.CSV())
	} else {
		fmt.Print(res.Table())
	}
	fmt.Println()
	for _, line := range res.Recovery {
		fmt.Fprintln(os.Stderr, line)
	}
	if res.Failed {
		fmt.Fprintf(os.Stderr, "casperbench: %s: invariant violations (see FAIL notes above)\n", res.ID)
	}
	return res.Failed
}

// baseline is the BENCH_*.json schema: one serial and one parallel
// measurement of the same experiment plus derived comparisons, with
// enough environment detail to interpret the numbers later.
type baseline struct {
	Experiment string            `json:"experiment"`
	Scale      float64           `json:"scale"`
	Seed       int64             `json:"seed"`
	Sched      string            `json:"sched"` // event scheduler (-sched): "ladder" or "heap"
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"` // physical honesty: GOMAXPROCS above this is time-slicing
	Serial     bench.Measurement `json:"serial"`
	Parallel   bench.Measurement `json:"parallel"`

	// With -benchcount > 1, Serial and Parallel hold the median round
	// (by events/sec; lower middle for even counts) and these arrays
	// record every round, fastest variance check included. The sharded
	// sweep below stays single-round: its gate (checkShardGate) is a
	// same-process ratio with its own slack, and an 8-point sweep
	// repeated N times would dominate the bench's runtime for numbers
	// nothing gates on.
	BenchCount     int                 `json:"bench_count,omitempty"`
	SerialRounds   []bench.Measurement `json:"serial_rounds,omitempty"`
	ParallelRounds []bench.Measurement `json:"parallel_rounds,omitempty"`

	// Sharded sweeps the same experiment over shard counts (-shards;
	// Parallel pinned to 1 so sweep workers don't pollute the timing),
	// each point at GOMAXPROCS equal to its shard count unless
	// -gomaxprocs pins it. Present only when the -bench invocation
	// passed -shards > 0. Each entry records the gomaxprocs it actually
	// ran under — a point with gomaxprocs < shards (or num_cpu <
	// shards) is time-sliced and its events/sec is an overhead
	// measurement, not a speedup.
	Sharded []shardPoint `json:"sharded,omitempty"`

	// SpeedupExpected is false when the run cannot exhibit a parallel
	// speedup — a single worker requested, or a single schedulable CPU —
	// in which case ParallelSpeedup is omitted rather than reported as a
	// misleading sub-1.0 ratio of two serial runs.
	SpeedupExpected bool    `json:"speedup_expected"`
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	OutputIdentical bool    `json:"output_identical"`
}

// shardPoint is one entry of the baseline's sharded sweep.
type shardPoint struct {
	Shards          int     `json:"shards"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	WallSeconds     float64 `json:"wall_seconds"`
	Events          int64   `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	Rounds          int64   `json:"rounds"` // window barriers: the synchronization cost
	OutputIdentical bool    `json:"output_identical"`
}

// allocGateSlack is how far allocs/event may drift above the committed
// baseline before the gate fails. Allocation counts are deterministic
// modulo GC-triggered map/slice growth timing, so the tolerance is
// small but nonzero.
const allocGateSlack = 0.05

// checkAllocGate compares the serial measurement against a committed
// baseline JSON and errors when allocs/event regressed by more than
// allocGateSlack — the CI regression gate for the zero-alloc event loop.
func checkAllocGate(path string, m bench.Measurement) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("allocgate: %w", err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("allocgate: parsing %s: %w", path, err)
	}
	limit := base.Serial.AllocsPerEvent + allocGateSlack
	if m.AllocsPerEvent > limit {
		return fmt.Errorf("allocgate: allocs/event %.4f exceeds baseline %.4f + %.2f slack (%s)",
			m.AllocsPerEvent, base.Serial.AllocsPerEvent, allocGateSlack, path)
	}
	fmt.Fprintf(os.Stderr, "allocgate: ok — %.4f allocs/event vs baseline %.4f (+%.2f slack)\n",
		m.AllocsPerEvent, base.Serial.AllocsPerEvent, allocGateSlack)
	return nil
}

// shardGateSlack is the fractional wall-clock tolerance of the sharded
// speedup gate. Unlike the allocgate, both sides of the ratio are
// wall-clock measurements on a shared CI runner, so the slack must
// absorb scheduler noise on two runs, not allocator jitter on one;
// 15% is comfortably above observed run-to-run variance (~5%) while
// still catching any real regression of the barrier or drain paths,
// which cost multiples of that when they misbehave.
const shardGateSlack = 0.15

// checkShardGate is the multi-core speedup gate: the sharded-4 /
// serial events-per-second ratio of the current run must (a) not drop
// below 1.0 — sharded execution must beat the serial engine — and (b)
// not regress versus the same ratio in the committed baseline JSON,
// both within shardGateSlack. Gating on the ratio rather than absolute
// events/sec keeps the gate portable across machines: both numbers
// come from the same process on the same host seconds apart.
func checkShardGate(path string, b *baseline) error {
	ratio, point, err := shardRatio(b)
	if err != nil {
		return fmt.Errorf("shardgate: current run: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("shardgate: %w", err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("shardgate: parsing %s: %w", path, err)
	}
	baseRatio, _, err := shardRatio(&base)
	if err != nil {
		return fmt.Errorf("shardgate: %s: %w", path, err)
	}
	if floor := 1.0 * (1 - shardGateSlack); ratio < floor {
		return fmt.Errorf(
			"shardgate: sharded-4 (gomaxprocs %d) runs at %.2fx the serial engine, below the %.2f floor (serial %.0f ev/s, sharded %.0f ev/s)",
			point.GOMAXPROCS, ratio, floor, b.Serial.EventsPerSec, point.EventsPerSec)
	}
	if floor := baseRatio * (1 - shardGateSlack); ratio < floor {
		return fmt.Errorf(
			"shardgate: sharded-4/serial ratio %.2f regressed below committed %.2f - %d%% slack (%s)",
			ratio, baseRatio, int(shardGateSlack*100), path)
	}
	fmt.Fprintf(os.Stderr, "shardgate: ok — sharded-4/serial ratio %.2f (committed %.2f, slack %d%%)\n",
		ratio, baseRatio, int(shardGateSlack*100))
	return nil
}

// schedGateSlack is the fractional events/sec tolerance of the
// scheduler throughput gate. Both sides are absolute wall-clock
// measurements taken in different processes (the committed baseline
// was regenerated on an earlier run of the same host class), so this
// is the noisiest of the three gates and carries the same 15% slack
// as the shardgate; use -benchcount so the gated number is a median,
// not a single roll of the scheduler dice. The gate's job is to catch
// a scheduler regression that erases the ladder queue's win over the
// heap (~8-13% end-to-end), which would show up as a >15% drop against
// a ladder baseline only in combination with other regressions — the
// finer-grained guard is BenchmarkScheduler in internal/sim.
const schedGateSlack = 0.15

// checkSchedGate compares the serial events/sec of the current run
// against the committed baseline JSON and errors on a drop beyond
// schedGateSlack — the CI regression gate for scheduler throughput.
func checkSchedGate(path string, m bench.Measurement) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("schedgate: %w", err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("schedgate: parsing %s: %w", path, err)
	}
	if base.Serial.EventsPerSec <= 0 {
		return fmt.Errorf("schedgate: %s has no serial events/sec", path)
	}
	floor := base.Serial.EventsPerSec * (1 - schedGateSlack)
	if m.EventsPerSec < floor {
		return fmt.Errorf("schedgate: serial %.0f ev/s fell below committed %.0f - %d%% slack = %.0f (%s)",
			m.EventsPerSec, base.Serial.EventsPerSec, int(schedGateSlack*100), floor, path)
	}
	fmt.Fprintf(os.Stderr, "schedgate: ok — serial %.0f ev/s vs committed %.0f (slack %d%%)\n",
		m.EventsPerSec, base.Serial.EventsPerSec, int(schedGateSlack*100))
	return nil
}

// shardRatio extracts a baseline's sharded-4 / serial events-per-second
// ratio.
func shardRatio(b *baseline) (float64, shardPoint, error) {
	for _, p := range b.Sharded {
		if p.Shards == 4 {
			if b.Serial.EventsPerSec <= 0 || p.EventsPerSec <= 0 {
				return 0, p, fmt.Errorf("sharded-4 or serial events/sec missing")
			}
			return p.EventsPerSec / b.Serial.EventsPerSec, p, nil
		}
	}
	return 0, shardPoint{}, fmt.Errorf("no sharded-4 sweep point (run with -shards 4)")
}

// benchConfig carries runBench's knobs.
type benchConfig struct {
	out       string
	allocGate string
	shardGate string
	schedGate string
	pinned    int // -gomaxprocs, 0 = per-point
	count     int // -benchcount
	sched     sim.SchedulerKind
}

func runBench(e bench.Experiment, o bench.Options, c benchConfig) error {
	// Both named measurements run on the serial engine: the allocgate's
	// 0.05 slack is only meaningful against a single-goroutine run (see
	// bench.Measurement), and "parallel" measures sweep workers, not
	// shard workers. Shard workers get their own sweep below.
	serial := o
	serial.Parallel = 1
	serial.Shards = 0
	par := o
	par.Shards = 0
	serialRounds, ms := bench.MeasureN(e, serial, c.count)
	parRounds, mp := bench.MeasureN(e, par, c.count)
	b := baseline{
		Experiment:      e.ID,
		Scale:           o.Scale,
		Seed:            o.Seed,
		Sched:           c.sched.String(),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Serial:          ms,
		Parallel:        mp,
		SpeedupExpected: o.Parallel > 1 && runtime.GOMAXPROCS(0) > 1,
		OutputIdentical: ms.CSV == mp.CSV,
	}
	if c.count > 1 {
		b.BenchCount = c.count
		b.SerialRounds = serialRounds
		b.ParallelRounds = parRounds
	}
	if b.SpeedupExpected && mp.WallSeconds > 0 {
		b.ParallelSpeedup = ms.WallSeconds / mp.WallSeconds
	}
	if !b.OutputIdentical {
		return fmt.Errorf("%s: parallel output differs from serial", e.ID)
	}
	if o.Shards > 0 {
		ambient := runtime.GOMAXPROCS(0)
		for _, s := range []int{1, 2, 4, 8} {
			// Each sweep point runs at GOMAXPROCS = its shard count —
			// the configuration whose events/sec is a real speedup
			// claim — unless -gomaxprocs pinned the whole run. Capped
			// at the physical core count: past it, a higher GOMAXPROCS
			// only adds scheduler noise (idle Ps woken on every
			// channel op) without any parallelism, skewing the point
			// against configurations the hardware can actually run.
			// The entry records the gomaxprocs it really used.
			if c.pinned <= 0 {
				runtime.GOMAXPROCS(min(s, runtime.NumCPU()))
			}
			so := serial
			so.Shards = s
			m := bench.Measure(e, so)
			if c.pinned <= 0 {
				runtime.GOMAXPROCS(ambient)
			}
			p := shardPoint{
				Shards:          s,
				GOMAXPROCS:      m.GOMAXPROCS,
				WallSeconds:     m.WallSeconds,
				Events:          m.Events,
				EventsPerSec:    m.EventsPerSec,
				Rounds:          m.ShardRounds,
				OutputIdentical: m.CSV == ms.CSV,
			}
			b.Sharded = append(b.Sharded, p)
			if !p.OutputIdentical {
				return fmt.Errorf("%s: -shards %d output differs from serial", e.ID, s)
			}
		}
	}
	if c.allocGate != "" {
		if err := checkAllocGate(c.allocGate, ms); err != nil {
			return err
		}
	}
	if c.shardGate != "" {
		if err := checkShardGate(c.shardGate, &b); err != nil {
			return err
		}
	}
	if c.schedGate != "" {
		if err := checkSchedGate(c.schedGate, ms); err != nil {
			return err
		}
	}
	enc, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if c.out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(c.out, enc, 0o644)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
