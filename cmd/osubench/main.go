// Command osubench runs the OSU-style one-sided microbenchmarks
// (put/get/accumulate latency and bandwidth) over any platform model and
// progress strategy, including Casper.
//
// Usage:
//
//	osubench -bench put_latency
//	osubench -bench acc_latency -casper -ghosts 2
//	osubench -bench put_bw -platform cray-xc30-dmapp
//	osubench -bench acc_latency -progress thread
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/osu"
)

func main() {
	var (
		benchName = flag.String("bench", "put_latency",
			"put_latency | get_latency | acc_latency | put_bw | get_bw")
		platform = flag.String("platform", "cray-xc30", "platform model (see netmodel.Presets)")
		casper   = flag.Bool("casper", false, "run over Casper")
		ghosts   = flag.Int("ghosts", 1, "ghost processes per node (with -casper)")
		progress = flag.String("progress", "none", "none | thread | interrupt")
		minSize  = flag.Int("min", 8, "smallest message (bytes)")
		maxSize  = flag.Int("max", 1<<20, "largest message (bytes)")
		iters    = flag.Int("iters", 16, "iterations per size")
		window   = flag.Int("window", 32, "ops per flush (bandwidth tests)")
		seed     = flag.Int64("seed", 7, "simulation seed")
	)
	flag.Parse()

	net, ok := netmodel.Presets()[*platform]
	if !ok {
		fmt.Fprintf(os.Stderr, "osubench: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	var prog mpi.ProgressMode
	switch *progress {
	case "none":
		prog = mpi.ProgressNone
	case "thread":
		prog = mpi.ProgressThread
	case "interrupt":
		prog = mpi.ProgressInterrupt
	default:
		fmt.Fprintf(os.Stderr, "osubench: unknown progress %q\n", *progress)
		os.Exit(2)
	}

	var kind mpi.OpKind
	bw := false
	switch *benchName {
	case "put_latency":
		kind = mpi.KindPut
	case "get_latency":
		kind = mpi.KindGet
	case "acc_latency":
		kind = mpi.KindAcc
	case "put_bw":
		kind, bw = mpi.KindPut, true
	case "get_bw":
		kind, bw = mpi.KindGet, true
	default:
		fmt.Fprintf(os.Stderr, "osubench: unknown bench %q\n", *benchName)
		os.Exit(2)
	}

	sizes := osu.Sizes(*minSize, *maxSize)
	var rows []osu.Result
	body := func(env mpi.Env) {
		var r []osu.Result
		if bw {
			r = osu.Bandwidth(env, kind, sizes, *window, *iters)
		} else {
			r = osu.Latency(env, kind, sizes, *iters)
		}
		if r != nil {
			rows = r
		}
	}

	ppn := 1
	if *casper {
		ppn = 1 + *ghosts
	}
	cfg := mpi.Config{
		Machine:  cluster.Machine{Nodes: 2, CoresPerNode: 24, NUMAPerNode: 2},
		N:        2 * ppn,
		PPN:      ppn,
		Net:      net,
		Seed:     *seed,
		Progress: prog,
	}
	var err error
	if *casper {
		_, err = mpi.Run(cfg, func(r *mpi.Rank) {
			p, ghost := core.Init(r, core.Config{NumGhosts: *ghosts})
			if ghost {
				return
			}
			body(p)
			p.Finalize()
		})
	} else {
		_, err = mpi.Run(cfg, func(r *mpi.Rank) { body(r) })
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "osubench:", err)
		os.Exit(1)
	}

	title := fmt.Sprintf("%s on %s (progress=%s casper=%v)",
		*benchName, *platform, *progress, *casper)
	if bw {
		fmt.Print(osu.RenderBandwidth(title, rows))
	} else {
		fmt.Print(osu.RenderLatency(title, rows))
	}
}
